// Package repro's root benchmark harness: one benchmark per figure of the
// paper's evaluation (the paper has no numeric tables), plus rendering and
// scalability benches and the ablations called out in DESIGN.md. Run with
//
//	go test -bench=. -benchmem
//
// Each BenchmarkFigNN regenerates the complete artifact of figure NN; the
// reported time is the cost of reproducing that experiment end to end.
package repro

import (
	"bytes"
	"fmt"
	"io"
	"math/rand"
	"net/http/httptest"
	"sync"
	"testing"

	"repro/internal/api"
	"repro/internal/campaign"
	"repro/internal/colormap"
	"repro/internal/core"
	"repro/internal/dag"
	"repro/internal/figures"
	"repro/internal/jedxml"
	"repro/internal/pdf"
	"repro/internal/persist"
	"repro/internal/platform"
	"repro/internal/raster"
	"repro/internal/render"
	"repro/internal/sched"
	"repro/internal/sched/cpa"
	"repro/internal/sched/cra"
	"repro/internal/sched/heft"
	"repro/internal/sim"
	"repro/internal/svg"
	"repro/internal/taskpool"
	"repro/internal/workload"
)

// --- Figures -------------------------------------------------------------

func BenchmarkFig01XMLRoundTrip(b *testing.B) {
	s := figures.Fig1Schedule()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if err := jedxml.Write(&buf, s); err != nil {
			b.Fatal(err)
		}
		if _, err := jedxml.Read(&buf); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig02ColorMap(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if err := colormap.Write(&buf, colormap.Default()); err != nil {
			b.Fatal(err)
		}
		m, err := colormap.Read(&buf)
		if err != nil {
			b.Fatal(err)
		}
		_ = m.LookupComposite([]string{"computation", "transfer"})
	}
}

func BenchmarkFig03Composite(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := figures.Fig3Composite()
		if len(s.Tasks) == 0 {
			b.Fatal("empty")
		}
	}
}

func BenchmarkFig04CPAvsMCPA(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := figures.Fig4()
		if err != nil {
			b.Fatal(err)
		}
		if r.MakespanCPA >= r.MakespanMCPA {
			b.Fatal("figure 4 property violated")
		}
	}
}

func BenchmarkFig05CRA(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := figures.Fig5()
		if err != nil {
			b.Fatal(err)
		}
		if r.IdleAfter > r.IdleBefore+1e-6 {
			b.Fatal("backfilling increased idle time")
		}
	}
}

func BenchmarkFig06MontageDOT(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := figures.Fig6DOT(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig07Platform(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p := platform.Figure7(platform.Figure7RealisticLatency)
		if err := p.Validate(); err != nil {
			b.Fatal(err)
		}
		if _, err := p.CommTime(0, 11, 1e7); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig08HEFTFlawed(b *testing.B) {
	g := dag.Montage(12)
	p := platform.Figure7(platform.Figure7FlawedLatency)
	for i := 0; i < b.N; i++ {
		if _, err := heft.Schedule(g, p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig09HEFTRealistic(b *testing.B) {
	g := dag.Montage(12)
	p := platform.Figure7(platform.Figure7RealisticLatency)
	for i := 0; i < b.N; i++ {
		if _, err := heft.Schedule(g, p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig11QuicksortRandom(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := figures.Fig11()
		if err != nil {
			b.Fatal(err)
		}
		if r.Executed < 100 {
			b.Fatal("too few tasks")
		}
	}
}

func BenchmarkFig12QuicksortInverse(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := figures.Fig12()
		if err != nil {
			b.Fatal(err)
		}
		if f := r.BusyFractionWithOneWorker(200); f < 0.2 {
			b.Fatal("serial prefix lost")
		}
	}
}

func BenchmarkFig13Workload(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := figures.Fig13()
		if err != nil {
			b.Fatal(err)
		}
		if len(r.Schedule.Tasks) != 834 {
			b.Fatal("job count wrong")
		}
	}
}

// --- Rendering backends (ablation: raster vs pdf vs svg) -----------------

func benchSchedule() *core.Schedule {
	r, err := figures.Fig13()
	if err != nil {
		panic(err)
	}
	return r.Schedule
}

func BenchmarkRenderPNG(b *testing.B) {
	s := benchSchedule()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := raster.New(1200, 800)
		render.Render(c, s, render.Options{})
	}
}

func BenchmarkRenderPDF(b *testing.B) {
	s := benchSchedule()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := pdf.New(1200, 800)
		render.Render(c, s, render.Options{})
		if err := c.Encode(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRenderSVG(b *testing.B) {
	s := benchSchedule()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := svg.New(1200, 800)
		render.Render(c, s, render.Options{})
		if err := c.Encode(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Parallel rasterization (per-panel/per-band sharding) ----------------

// parallelBenchSchedule is the acceptance workload of the parallel render
// pipeline: 4 clusters, 200k tasks ("some experiments ... created more than
// 200,000 individual tasks"), randomly placed — a multi-megapixel Gantt
// export dominated by per-task rasterization.
func parallelBenchSchedule() *core.Schedule {
	clusters := make([]core.Cluster, 4)
	for i := range clusters {
		clusters[i] = core.Cluster{ID: i, Name: string(rune('a' + i)), Hosts: 64}
	}
	s := core.New(clusters...)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 200_000; i++ {
		start := rng.Float64() * 1e4
		s.AddTask(core.Task{
			ID: taskID(i), Type: []string{"computation", "transfer"}[i%2],
			Start: start, End: start + 0.5 + rng.Float64()*5,
			Allocations: []core.Allocation{{
				Cluster: i % 4,
				Hosts:   []core.HostRange{{Start: rng.Intn(63), N: 1 + rng.Intn(2)}},
			}},
		})
	}
	return s
}

func benchRenderWorkers(b *testing.B, workers int) {
	s := parallelBenchSchedule()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := raster.New(1600, 1000)
		render.Render(c, s, render.Options{Workers: workers})
	}
}

func BenchmarkRenderSerial(b *testing.B)   { benchRenderWorkers(b, 1) }
func BenchmarkRenderParallel(b *testing.B) { benchRenderWorkers(b, 4) }

// --- Ablations called out in DESIGN.md ------------------------------------

// Composite construction: sweep vs naive reference on a dense schedule.
func compositeInput() *core.Schedule {
	rng := rand.New(rand.NewSource(9))
	s := core.NewSingleCluster("c", 32)
	for i := 0; i < 400; i++ {
		start := rng.Float64() * 100
		first := rng.Intn(32)
		n := 1 + rng.Intn(32-first)
		s.Add(taskID(i), []string{"computation", "transfer"}[i%2],
			start, start+rng.Float64()*10, first, n)
	}
	return s
}

func taskID(i int) string {
	return string(rune('a'+i%26)) + string(rune('a'+(i/26)%26)) + string(rune('a'+i/676))
}

func BenchmarkAblationCompositeSweep(b *testing.B) {
	s := compositeInput()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := s.CompositeTasks(); len(got) == 0 {
			b.Fatal("no composites")
		}
	}
}

func BenchmarkAblationCompositeNaive(b *testing.B) {
	s := compositeInput()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := s.CompositeTasksNaive(); len(got) == 0 {
			b.Fatal("no composites")
		}
	}
}

// Task pool organization: central queue vs work stealing.
func BenchmarkAblationPoolCentral(b *testing.B) {
	cfg := taskpool.DefaultConfig()
	cfg.Pool = taskpool.Central
	for i := 0; i < b.N; i++ {
		if _, err := taskpool.RunQuicksort(cfg, taskpool.Figure11Config()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationPoolStealing(b *testing.B) {
	cfg := taskpool.DefaultConfig()
	cfg.Pool = taskpool.Stealing
	for i := 0; i < b.N; i++ {
		if _, err := taskpool.RunQuicksort(cfg, taskpool.Figure11Config()); err != nil {
			b.Fatal(err)
		}
	}
}

// CPA variants across DAG shapes (allocation-phase sensitivity).
func BenchmarkAblationCPAVariants(b *testing.B) {
	g := dag.Generate(dag.ShapeRandom, dag.DefaultGenOptions(60), rand.New(rand.NewSource(3)))
	p := platform.Homogeneous(32, 1e9)
	for _, v := range []cpa.Variant{cpa.CPA, cpa.MCPA, cpa.MCPA2} {
		b.Run(v.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := cpa.Schedule(g, p, v); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// CRA share strategies.
func BenchmarkAblationCRAStrategies(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	graphs := []*dag.Graph{
		dag.Generate(dag.ShapeRandom, dag.DefaultGenOptions(20), rng),
		dag.Generate(dag.ShapeForkJoin, dag.DefaultGenOptions(20), rng),
		dag.Generate(dag.ShapeLong, dag.DefaultGenOptions(20), rng),
	}
	p := platform.Homogeneous(24, 1e9)
	for _, strat := range []cra.Strategy{cra.Work, cra.Width, cra.Equal} {
		b.Run(strat.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := cra.Schedule(graphs, p, strat, 0.5); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Scalability ----------------------------------------------------------

// The simulator kernel on large synthetic workflows.
func BenchmarkSimLargeWorkflow(b *testing.B) {
	p := platform.Homogeneous(64, 1e9)
	rng := rand.New(rand.NewSource(8))
	n := 2000
	tasks := make([]sim.PlannedTask, n)
	for i := range tasks {
		tasks[i] = sim.PlannedTask{
			ID: taskID(i), Type: "computation",
			Hosts: []int{rng.Intn(64)}, Duration: rng.Float64(),
		}
		if i > 0 {
			tasks[i].Deps = []sim.Dep{{From: taskID(rng.Intn(i)), Bytes: 1e6}}
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.Execute(p, tasks, sim.ExecOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

// Big-trace handling: "some experiments ... created more than 200,000
// individual tasks". Parse-and-stat a 200k-task schedule.
func BenchmarkLargeTraceStats(b *testing.B) {
	s := core.NewSingleCluster("big", 64)
	rng := rand.New(rand.NewSource(10))
	for i := 0; i < 200_000; i++ {
		start := rng.Float64() * 1e4
		s.Add(taskID(i), "computation", start, start+rng.Float64(), rng.Intn(64), 1)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st := s.ComputeStats()
		if st.TaskCount != 200_000 {
			b.Fatal("task count")
		}
	}
}

// SWF parsing throughput.
func BenchmarkSWFParse(b *testing.B) {
	jobs := workload.Thunder(workload.Figure13Config())
	var buf bytes.Buffer
	if err := workload.WriteSWF(&buf, jobs, nil); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := workload.ReadSWF(bytes.NewReader(data)); err != nil {
			b.Fatal(err)
		}
	}
}

// The case-study-III experiment campaign (CPA vs MCPA factorial).
func BenchmarkCampaign(b *testing.B) {
	cfg := campaign.DefaultConfig()
	cfg.Replicates = 2
	for i := 0; i < b.N; i++ {
		res, err := campaign.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if res.Total == 0 {
			b.Fatal("no runs")
		}
	}
}

// A cross-family campaign: every cell compares CPA variants against HEFT
// through the scheduler registry.
func BenchmarkCampaignCrossAlgo(b *testing.B) {
	cfg := campaign.Config{
		Shapes:       []dag.Shape{dag.ShapeRandom, dag.ShapeForkJoin},
		DAGSizes:     []int{20, 40},
		ClusterSizes: []int{32},
		Algos:        []string{"cpa", "mcpa2", "heft"},
		Replicates:   2,
		Seed:         1,
	}
	for i := 0; i < b.N; i++ {
		res, err := campaign.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if res.Total == 0 {
			b.Fatal("no runs")
		}
	}
}

// Every registered scheduler on the same DAG through the unified interface.
func BenchmarkRegistrySchedulers(b *testing.B) {
	g := dag.Generate(dag.ShapeRandom, dag.DefaultGenOptions(60), rand.New(rand.NewSource(3)))
	p := platform.Homogeneous(32, 1e9)
	for _, name := range sched.List() {
		s, err := sched.Lookup(name)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := s.Schedule(g, p)
				if err != nil {
					b.Fatal(err)
				}
				if res.Makespan <= 0 {
					b.Fatal("no makespan")
				}
			}
		})
	}
}

// The shared host timeline under heavy gap insertion (the list-scheduling
// hot path shared by HEFT and the CPA mapping phase).
func BenchmarkTimelineGapInsert(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	type req struct{ ready, dur float64 }
	reqs := make([]req, 5000)
	for i := range reqs {
		reqs[i] = req{ready: rng.Float64() * 1000, dur: 0.1 + rng.Float64()}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tl := sched.NewTimeline(1)
		for _, r := range reqs {
			start := tl.EarliestGap(0, r.ready, r.dur)
			tl.Reserve(0, start, start+r.dur)
		}
	}
}

// --- Million-task fast path --------------------------------------------------

// The 1M-task synthetic trace and its render index are built once and
// shared: the benchmarks measure rendering and scanning, not generation.
var bench1M struct {
	once sync.Once
	s    *core.Schedule
	idx  *render.TaskIndex
	win  core.Extent
}

func schedule1M() (*core.Schedule, *render.TaskIndex, core.Extent) {
	bench1M.once.Do(func() {
		cfg := workload.DefaultGenerateConfig(1_000_000)
		bench1M.s = workload.GenerateSchedule(cfg)
		bench1M.idx = render.BuildIndex(bench1M.s)
		// A deep zoom: 0.05% of the horizon, the interactive pan/zoom shape.
		h := float64(cfg.Horizon)
		bench1M.win = core.Extent{Min: 0.5 * h, Max: 0.5005 * h}
	})
	return bench1M.s, bench1M.idx, bench1M.win
}

// BenchmarkRender1M: a zoomed-in window over the 1M-task trace with the
// prebuilt index — the per-panel binary search visits only the tasks that
// can intersect the window.
func BenchmarkRender1M(b *testing.B) {
	s, idx, win := schedule1M()
	opt := render.Options{Workers: 1, Index: idx, Window: &win, LOD: true}
	// The canvas is reused across iterations: every pixel a render touches
	// is overwritten deterministically, and allocating the 3.8 MB backing
	// image would otherwise dominate the fast path being measured.
	c := raster.New(1200, 800)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		render.Render(c, s, opt)
	}
}

// BenchmarkRender1MFullScan is the ablation baseline: the same render with
// culling and LOD disabled, so every panel pass scans all indexed tasks —
// the pre-index code path. The acceptance criterion is Render1M >= 10x
// faster than this.
func BenchmarkRender1MFullScan(b *testing.B) {
	s, idx, win := schedule1M()
	opt := render.Options{Workers: 1, Index: idx, Window: &win, NoCull: true}
	c := raster.New(1200, 800)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		render.Render(c, s, opt)
	}
}

// BenchmarkRender1MLODFull: the bird's-eye view of the whole trace with
// density-band aggregation — the paper's Figure 13 shape at a thousand
// times the job count.
func BenchmarkRender1MLODFull(b *testing.B) {
	s, idx, _ := schedule1M()
	opt := render.Options{Workers: 1, Index: idx, LOD: true}
	c := raster.New(1200, 800)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		render.Render(c, s, opt)
	}
}

// BenchmarkScanSWF1M: streaming parse of a million-job SWF trace; the
// allocs/op column is the O(1)-allocations-per-job acceptance criterion.
func BenchmarkScanSWF1M(b *testing.B) {
	jobs := workload.Generate(workload.DefaultGenerateConfig(1_000_000))
	var buf bytes.Buffer
	if err := workload.WriteSWF(&buf, jobs, nil); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 0
		err := workload.ScanSWF(bytes.NewReader(data), nil, func(workload.Job) error {
			n++
			return nil
		})
		if err != nil || n != len(jobs) {
			b.Fatalf("scan: %v (%d jobs)", err, n)
		}
	}
}

// BenchmarkRenderColorMemo: a composite-heavy render; the per-render color
// memo resolves each composite's member types once instead of per panel
// pass, which shows up in the allocs/op column.
func BenchmarkRenderColorMemo(b *testing.B) {
	s := compositeInput().WithComposites()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := raster.New(800, 500)
		render.Render(c, s, render.Options{Workers: 1})
	}
}

// Multi-page PDF documents ("documents with hundreds of schedule pictures").
func BenchmarkPDFBook(b *testing.B) {
	s := benchSchedule()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		doc := pdf.NewDocument()
		for p := 0; p < 10; p++ {
			render.Render(doc.AddPage(800, 500), s, render.Options{})
		}
		if err := doc.Encode(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// Side-by-side comparison rendering (the Figure 4 layout).
func BenchmarkSideBySide(b *testing.B) {
	r, err := figures.Fig4()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := raster.New(1400, 500)
		render.SideBySide(c, "cpa vs mcpa", []*core.Schedule{r.CPA, r.MCPA},
			[]render.Options{{Labels: true}, {Labels: true}})
	}
}

// BenchmarkRender1MHTTP: the full HTTP path of the interactive pan/zoom
// shape — obs middleware, routing, rate-limit check, render cache — over the
// 1M-task trace. The warm-up request populates the render cache, so the
// steady state measured here is exactly the per-request overhead the
// observability middleware must keep inside the render regression gate.
func BenchmarkRender1MHTTP(b *testing.B) {
	s, _, win := schedule1M()
	srv := api.NewServer(api.NewStore())
	defer srv.Close()
	sess := srv.Store().Add("bench1m", "generated", s)
	h := srv.Handler()
	target := fmt.Sprintf("/api/v1/sessions/%s/render?width=1200&height=800&lod=true&window=%g,%g",
		sess.ID, win.Min, win.Max)
	run := func() {
		req := httptest.NewRequest("GET", target, nil)
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code != 200 {
			b.Fatalf("render = %d: %s", rec.Code, rec.Body.String())
		}
	}
	run() // warm the render cache
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		run()
	}
}

// --- Durable state -------------------------------------------------------

// persistPayload is a session-descriptor-sized record: what one jedserve
// write-path Put carries.
func persistPayload() []byte {
	payload := make([]byte, 512)
	rng := rand.New(rand.NewSource(7))
	rng.Read(payload)
	return payload
}

// BenchmarkPersistPutMemory is the write path of the default in-memory
// backend — the floor the filesystem backend is compared against.
func BenchmarkPersistPutMemory(b *testing.B) {
	ps := persist.Memory()
	defer ps.Close()
	payload := persistPayload()
	keys := make([]string, 256)
	for i := range keys {
		keys[i] = fmt.Sprintf("j%d", i)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := ps.Put("jobs", keys[i%len(keys)], payload); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPersistPutFS is the filesystem backend's non-durable append path
// (the per-cell journal write of a running campaign job), including the
// compactions it periodically triggers.
func BenchmarkPersistPutFS(b *testing.B) {
	ps, err := persist.Open(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	defer ps.Close()
	payload := persistPayload()
	keys := make([]string, 256)
	for i := range keys {
		keys[i] = fmt.Sprintf("j%d", i)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := ps.Put("jobs", keys[i%len(keys)], payload); err != nil {
			b.Fatal(err)
		}
	}
}
