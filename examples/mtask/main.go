// M-task scheduling example (paper case study III): schedule the same
// mixed-parallel DAG with CPA, MCPA, and the MCPA2 poly-algorithm on a
// homogeneous cluster, compare makespans and utilization, and render the
// CPA/MCPA pair side by side as in Figure 4.
package main

import (
	"fmt"
	"log"

	"repro/internal/dag"
	"repro/internal/platform"
	"repro/internal/render"
	"repro/internal/sched/cpa"
)

func main() {
	// The Figure 4 scenario: a precedence layer with one task ten times
	// more expensive than its 13 siblings, on a 16-processor cluster.
	g := dag.ImbalancedLayer(14, 10)
	p := platform.Homogeneous(16, 1e9)
	fmt.Println(g.Stats())

	for _, variant := range []cpa.Variant{cpa.CPA, cpa.MCPA, cpa.MCPA2} {
		res, err := cpa.Schedule(g, p, variant)
		if err != nil {
			log.Fatal(err)
		}
		wr, err := cpa.Execute(res, p)
		if err != nil {
			log.Fatal(err)
		}
		st := wr.Schedule.ComputeStats()
		fmt.Printf("%-6s makespan %6.2f s  utilization %5.1f%%  T_CP %.2f  T_A %.2f",
			variant, wr.Makespan, 100*st.Utilization, res.TCP, res.TA)
		if variant == cpa.MCPA2 {
			fmt.Printf("  (chose %s)", res.Chosen)
		}
		fmt.Println()

		out := fmt.Sprintf("mtask_%s.png", variant)
		err = render.ToFile(out, wr.Schedule, 800, 500, render.Options{
			Labels: true, Title: variant.String(), ShowMeta: true,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println("wrote", out)
	}
	fmt.Println("\ncompare mtask_cpa.png and mtask_mcpa.png: the MCPA chart shows")
	fmt.Println("the idle hole the paper describes; MCPA2 recovers CPA's schedule.")
}
