// Heterogeneous platform example (paper case study V): schedule the
// 50-node Montage workflow with HEFT on the Figure 7 multi-cluster
// platform, once with the flawed backbone description and once with the
// realistic one, reproducing the Figure 8 anomaly and its Figure 9 fix.
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/dag"
	"repro/internal/figures"
	"repro/internal/platform"
	"repro/internal/render"
	"repro/internal/sched/heft"
)

func main() {
	g := dag.Montage(12) // 50 compute nodes
	fmt.Println(g.Stats())

	// Emit the workflow structure (Figure 6 equivalent).
	f, err := os.Create("montage.dot")
	if err != nil {
		log.Fatal(err)
	}
	if err := g.WriteDOT(f); err != nil {
		log.Fatal(err)
	}
	f.Close()
	fmt.Println("wrote montage.dot")

	for _, setting := range []struct {
		name    string
		latency float64
	}{
		{"flawed", platform.Figure7FlawedLatency},
		{"realistic", platform.Figure7RealisticLatency},
	} {
		p := platform.Figure7(setting.latency)
		res, err := heft.Schedule(g, p)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-9s backbone latency %g s: makespan %6.2f s, %2d cross-cluster edges, mBackground on clusters %v\n",
			setting.name, setting.latency, res.Makespan,
			res.CrossClusterEdges(), res.ClustersUsedBy("mBackground"))

		trace, err := res.Trace(heft.TraceOptions{Transfers: true, TransferFloor: 0.05})
		if err != nil {
			log.Fatal(err)
		}
		out := "heft_" + setting.name + ".png"
		err = render.ToFile(out, trace, 1000, 700, render.Options{
			Map: figures.MontageMap(), ShowMeta: true,
			Title: "HEFT Montage(50), " + setting.name + " backbone",
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println("wrote", out)
	}
	fmt.Println("\nwith the flawed backbone, related stages scatter across clusters")
	fmt.Println("(the Figure 8 anomaly); the realistic latency consolidates them.")
}
