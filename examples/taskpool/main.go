// Task pool example (paper case study VI): simulate parallel quicksort on
// a 32-worker task pool over a NUMA machine model, for both the random
// input of Figure 11 and the adversarial inversely-sorted input of
// Figure 12, and render the execution/waiting charts.
package main

import (
	"fmt"
	"log"

	"repro/internal/render"
	"repro/internal/taskpool"
)

func main() {
	pool := taskpool.DefaultConfig()

	for _, scenario := range []struct {
		name string
		cfg  taskpool.QuicksortConfig
	}{
		{"random", taskpool.Figure11Config()},
		{"inverse", taskpool.Figure12Config()},
	} {
		res, err := taskpool.RunQuicksort(pool, scenario.cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8s n=%-11d tasks=%-6d makespan %7.3f s  utilization %5.1f%%  1-busy %4.1f%%\n",
			scenario.name, scenario.cfg.N, res.Executed, res.Makespan,
			100*res.Utilization(), 100*res.BusyFractionWithOneWorker(500))

		out := "quicksort_" + scenario.name + ".png"
		err = render.ToFile(out, res.Schedule, 1100, 700, render.Options{
			ShowMeta: true,
			Title:    "parallel quicksort (" + scenario.name + " input), blue=execute red=wait",
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println("wrote", out)
	}

	// Ablation: central pool vs work stealing on the random input.
	for _, kind := range []taskpool.PoolKind{taskpool.Central, taskpool.Stealing} {
		cfg := pool
		cfg.Pool = kind
		res, err := taskpool.RunQuicksort(cfg, taskpool.Figure11Config())
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("pool=%-9s makespan %7.3f s  utilization %5.1f%%\n",
			kind, res.Makespan, 100*res.Utilization())
	}
}
