// Multi-DAG scheduling example (paper case study IV): schedule a batch of
// four mixed-parallel applications on one 20-processor cluster with
// constrained resource allocations (CRA), compare the share strategies,
// report stretch and fairness, and apply the conservative backfilling step.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/core"
	"repro/internal/dag"
	"repro/internal/figures"
	"repro/internal/platform"
	"repro/internal/render"
	"repro/internal/sched/cra"
)

func main() {
	rng := rand.New(rand.NewSource(2024))
	graphs := []*dag.Graph{
		dag.Montage(6),
		dag.Generate(dag.ShapeForkJoin, dag.DefaultGenOptions(24), rng),
		dag.Generate(dag.ShapeRandom, dag.DefaultGenOptions(30), rng),
		dag.Generate(dag.ShapeLong, dag.DefaultGenOptions(18), rng),
	}
	p := platform.Homogeneous(20, 1e9)

	for _, strat := range []cra.Strategy{cra.Work, cra.Width, cra.Equal} {
		res, err := cra.Schedule(graphs, p, strat, 0.5)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s makespan %7.2f  unfairness %.2f  shares/stretches:",
			strat, res.Makespan, res.Unfairness())
		for _, a := range res.Apps {
			fmt.Printf("  %d procs (stretch %.2f)", a.Share, a.Stretch)
		}
		fmt.Println()
	}

	// The CRA_WORK schedule with per-application colors, before and after
	// conservative backfilling (no task may be delayed).
	res, err := cra.Schedule(graphs, p, cra.Work, 0.5)
	if err != nil {
		log.Fatal(err)
	}
	bf, err := cra.Backfill(res.Placed, 20)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("backfilling: idle %0.1f -> %0.1f host-seconds, makespan %0.2f -> %0.2f\n",
		cra.TotalIdle(res.Placed, 20), cra.TotalIdle(bf, 20),
		cra.Makespan(res.Placed), cra.Makespan(bf))

	am := figures.AppMap(len(graphs))
	meta := core.Property{Name: "algorithm", Value: res.Strategy.String()}
	for name, placed := range map[string][]cra.PlacedTask{
		"multidag.png": res.Placed, "multidag_backfilled.png": bf,
	} {
		trace := cra.Trace(placed, 20, meta)
		if err := render.ToFile(name, trace, 900, 520, render.Options{Map: am, Title: name}); err != nil {
			log.Fatal(err)
		}
		fmt.Println("wrote", name)
	}
}
