// Quickstart: build a schedule in code, save it as Jedule XML, and render
// it to PNG and PDF — the minimal end-to-end tour of the library.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/jedxml"
	"repro/internal/render"
)

func main() {
	// A two-cluster platform: an 8-host cluster and a 4-host cluster.
	s := core.New(
		core.Cluster{ID: 0, Name: "cluster-a", Hosts: 8},
		core.Cluster{ID: 1, Name: "cluster-b", Hosts: 4},
	)
	s.SetMeta("algorithm", "quickstart")

	// A multiprocessor computation on all of cluster A.
	s.Add("setup", "computation", 0, 2.5, 0, 8)

	// An inter-cluster transfer: one task, two allocations.
	s.AddTask(core.Task{
		ID: "move", Type: "transfer", Start: 2.5, End: 3.2,
		Allocations: []core.Allocation{
			{Cluster: 0, Hosts: []core.HostRange{{Start: 0, N: 2}}},
			{Cluster: 1, Hosts: []core.HostRange{{Start: 0, N: 2}}},
		},
	})

	// A scattered (non-contiguous) allocation on cluster A, overlapping
	// the tail of the transfer — Jedule will derive a composite task.
	s.AddTask(core.Task{
		ID: "solve", Type: "computation", Start: 3.0, End: 6.0,
		Allocations: []core.Allocation{
			{Cluster: 0, Hosts: []core.HostRange{{Start: 0, N: 3}, {Start: 5, N: 3}}},
		},
	})
	s.Add("post", "io", 3.2, 5.0, 4, 1)

	if err := s.Validate(); err != nil {
		log.Fatal(err)
	}
	st := s.ComputeStats()
	fmt.Printf("schedule: %s\n", s)
	fmt.Printf("makespan %.2f s, utilization %.1f%%, idle %.2f host-seconds\n",
		st.Makespan, 100*st.Utilization, st.IdleArea)

	// Persist as Jedule XML (re-loadable by cmd/jedule and cmd/jeduleview).
	if err := jedxml.WriteFile("quickstart.jed", s); err != nil {
		log.Fatal(err)
	}
	fmt.Println("wrote quickstart.jed")

	// Render with composite overlay to both a bitmap and a vector format.
	opt := render.Options{Labels: true, Composites: true, Title: "quickstart", ShowMeta: true}
	for _, out := range []string{"quickstart.png", "quickstart.pdf"} {
		if err := render.ToFile(out, s, 900, 500, opt); err != nil {
			log.Fatal(err)
		}
		fmt.Println("wrote", out)
	}
}
