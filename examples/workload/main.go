// Workload example (paper case study VII): a bird's-eye view of a parallel
// production workload. Generates the synthetic LLNL Thunder day (or loads a
// real SWF trace if a path is given), places the jobs on concrete nodes,
// and renders the day with one user's jobs highlighted — Figure 13.
//
// Usage:
//
//	workload [path/to/trace.swf [highlightUser]]
package main

import (
	"fmt"
	"log"
	"os"
	"strconv"

	"repro/internal/render"
	"repro/internal/workload"
)

func main() {
	cfg := workload.Figure13Config()
	var jobs []workload.Job

	if len(os.Args) > 1 {
		var hdr workload.Header
		var err error
		jobs, hdr, err = workload.ReadSWFFile(os.Args[1])
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("loaded %d jobs from %s (computer: %s)\n",
			len(jobs), os.Args[1], hdr.Get("Computer"))
		if len(os.Args) > 2 {
			u, err := strconv.Atoi(os.Args[2])
			if err != nil {
				log.Fatal(err)
			}
			cfg.HighlightUser = u
		}
		// One day, as in the paper's selection of jobs finishing on 02/02.
		jobs = workload.FilterWindow(jobs, 0, cfg.DaySeconds)
		fmt.Printf("%d jobs finished within the first day\n", len(jobs))
	} else {
		jobs = workload.Thunder(cfg)
		fmt.Printf("generated %d synthetic Thunder jobs\n", len(jobs))
	}

	placements, err := workload.Place(jobs, cfg.Nodes, cfg.Reserved)
	if err != nil {
		log.Fatal(err)
	}
	sched := workload.ToSchedule(placements, cfg.Nodes, cfg.HighlightUser)
	st := sched.ComputeStats()
	fmt.Printf("cluster utilization %.1f%% over %d nodes; nodes 0-%d reserved\n",
		100*st.Utilization, cfg.Nodes, cfg.Reserved-1)

	highlighted := 0
	for i := range sched.Tasks {
		if sched.Tasks[i].Type == "highlight" {
			highlighted++
		}
	}
	fmt.Printf("user %d has %d jobs (highlighted yellow)\n", cfg.HighlightUser, highlighted)

	if err := render.ToFile("thunder_day.png", sched, 1200, 800, render.Options{
		Title: "parallel workload, one day", ShowMeta: true,
	}); err != nil {
		log.Fatal(err)
	}
	fmt.Println("wrote thunder_day.png")
}
