// Any-algorithm scheduling example: every algorithm registered with the
// sched registry plans the same DAG on the same cluster through the common
// Scheduler interface — the workflow the unified scheduler layer enables.
// The winner's simulated schedule is rendered as a Gantt chart.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/dag"
	"repro/internal/platform"
	"repro/internal/render"
	"repro/internal/sched"
	_ "repro/internal/sched/all"
	"repro/internal/sim"
)

func main() {
	g := dag.Generate(dag.ShapeRandom, dag.DefaultGenOptions(40), rand.New(rand.NewSource(2)))
	p := platform.Homogeneous(16, 1e9)
	fmt.Println(g.Stats())
	fmt.Printf("%d registered schedulers: %v\n\n", len(sched.List()), sched.List())

	var bestName string
	var best *sched.Result
	var bestWR *sim.WorkflowResult
	for _, name := range sched.List() {
		s, err := sched.Lookup(name)
		if err != nil {
			log.Fatal(err)
		}
		res, err := s.Schedule(g, p)
		if err != nil {
			log.Fatal(err)
		}
		if err := res.Validate(); err != nil {
			log.Fatal(err)
		}
		wr, err := res.Execute(sim.ExecOptions{})
		if err != nil {
			log.Fatal(err)
		}
		st := wr.Schedule.ComputeStats()
		fmt.Printf("%-10s planned %7.2f s  simulated %7.2f s  utilization %5.1f%%\n",
			name, res.Makespan, wr.Makespan, 100*st.Utilization)
		if best == nil || res.Makespan < best.Makespan {
			bestName, best, bestWR = name, res, wr
		}
	}

	out := "anysched_" + bestName + ".png"
	if err := render.ToFile(out, bestWR.Schedule, 900, 550, render.Options{
		Labels: true, Title: "best planner: " + bestName, ShowMeta: true,
	}); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nbest planner: %s — wrote %s\n", bestName, out)
}
