// Package apierr is the one JSON error envelope of the HTTP surface. Every
// non-2xx API response carries
//
//	{"error": {"code": "...", "message": "...", "detail": "..."}}
//
// where code is a stable machine-readable string (session_not_found,
// rate_limited, campaign_header_mismatch, ...), message is human-readable,
// and detail is optional context. Writers across internal/api, internal/
// fleet, and internal/view all go through Write, so the contract cannot
// drift between subsystems; clients go through Decode, which also still
// understands the legacy flat {"error": "message"} shape of pre-v1 servers.
package apierr

import (
	"encoding/json"
	"fmt"
	"net/http"
)

// E is the decoded error envelope.
type E struct {
	Code    string `json:"code"`
	Message string `json:"message"`
	Detail  string `json:"detail,omitempty"`
}

// envelope is the wire shape: the error object under one "error" key.
type envelope struct {
	Error E `json:"error"`
}

// Write answers the request with the JSON error envelope. code is the
// machine-readable error code; the formatted message is for humans.
func Write(w http.ResponseWriter, status int, code, format string, args ...any) {
	WriteDetail(w, status, code, "", format, args...)
}

// WriteDetail is Write with the optional detail field set.
func WriteDetail(w http.ResponseWriter, status int, code, detail, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(envelope{Error: E{ //nolint:errcheck // headers already sent
		Code:    code,
		Message: fmt.Sprintf(format, args...),
		Detail:  detail,
	}})
}

// Decode extracts the error envelope from a response body. It understands
// both the structured v1 shape and the legacy flat {"error": "message"}
// string, so clients can talk to servers from before the envelope existed.
// ok reports whether any recognizable envelope was present.
func Decode(raw []byte) (e E, ok bool) {
	var probe struct {
		Error json.RawMessage `json:"error"`
	}
	if json.Unmarshal(raw, &probe) != nil || len(probe.Error) == 0 {
		return E{}, false
	}
	if json.Unmarshal(probe.Error, &e) == nil && (e.Code != "" || e.Message != "") {
		return e, true
	}
	var msg string
	if json.Unmarshal(probe.Error, &msg) == nil && msg != "" {
		return E{Message: msg}, true
	}
	return E{}, false
}
