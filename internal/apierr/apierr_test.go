package apierr

import (
	"encoding/json"
	"net/http/httptest"
	"testing"
)

func TestWriteRoundTrips(t *testing.T) {
	rec := httptest.NewRecorder()
	Write(rec, 404, "session_not_found", "no session %q", "s9")

	if rec.Code != 404 {
		t.Fatalf("status = %d, want 404", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/json; charset=utf-8" {
		t.Fatalf("content type = %q", ct)
	}
	e, ok := Decode(rec.Body.Bytes())
	if !ok {
		t.Fatalf("Decode failed on own output: %s", rec.Body.String())
	}
	if e.Code != "session_not_found" || e.Message != `no session "s9"` || e.Detail != "" {
		t.Fatalf("round-trip = %+v", e)
	}
}

func TestWriteDetail(t *testing.T) {
	rec := httptest.NewRecorder()
	WriteDetail(rec, 409, "campaign_header_mismatch", "replicates 2 != 4", "spec disagrees")
	e, ok := Decode(rec.Body.Bytes())
	if !ok || e.Code != "campaign_header_mismatch" || e.Detail != "replicates 2 != 4" {
		t.Fatalf("decoded = %+v (ok=%v)", e, ok)
	}
	// The wire shape nests under one "error" key.
	var wire map[string]json.RawMessage
	if err := json.Unmarshal(rec.Body.Bytes(), &wire); err != nil || len(wire) != 1 || wire["error"] == nil {
		t.Fatalf("wire shape = %s", rec.Body.String())
	}
}

func TestDecode(t *testing.T) {
	cases := []struct {
		name string
		raw  string
		want E
		ok   bool
	}{
		{"structured", `{"error":{"code":"rate_limited","message":"slow down","detail":"1 rps"}}`,
			E{Code: "rate_limited", Message: "slow down", Detail: "1 rps"}, true},
		{"structured no detail", `{"error":{"code":"bad_wait","message":"bad duration"}}`,
			E{Code: "bad_wait", Message: "bad duration"}, true},
		{"legacy flat string", `{"error":"job j9 not found"}`,
			E{Message: "job j9 not found"}, true},
		{"empty object", `{"error":{}}`, E{}, false},
		{"empty string", `{"error":""}`, E{}, false},
		{"no error key", `{"status":"ok"}`, E{}, false},
		{"not json", `<html>502 Bad Gateway</html>`, E{}, false},
		{"null error", `{"error":null}`, E{}, false},
	}
	for _, tc := range cases {
		e, ok := Decode([]byte(tc.raw))
		if ok != tc.ok || e != tc.want {
			t.Errorf("%s: Decode = %+v, %v; want %+v, %v", tc.name, e, ok, tc.want, tc.ok)
		}
	}
}
