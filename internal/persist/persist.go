// Package persist is the pluggable durable-state subsystem behind the
// server's stateful layers: the session store, the async job engine, and
// the campaign coordinator all journal their state through one small
// namespaced key-value interface, so a jedserve killed mid-flight can be
// restarted (or replaced by another replica pointed at the same state
// directory) without losing sessions, finished job results, or campaign
// progress.
//
// Two stdlib-only implementations ship: Memory, which keeps records in a
// map and therefore reproduces the pre-persistence behavior (state dies
// with the process), and the filesystem store returned by Open, which
// writes each namespace as an append-only JSONL record log next to a
// periodically compacted snapshot. The log format is schema-versioned and
// torn-tail tolerant exactly like the campaign checkpoint format: a record
// only counts once its trailing newline reached storage, so a crash
// mid-write costs at most the final record, never the file.
package persist

import (
	"fmt"
	"sync"
)

// Store is the persistence interface the stateful layers write through.
// Implementations must be safe for concurrent use.
//
// A namespace groups the records of one subsystem ("sessions", "jobs",
// "runs", ...); keys are free-form within it. Values are opaque bytes —
// callers own their encoding (all current callers write JSON).
type Store interface {
	// Put upserts one record. Durability is best-effort: the record is in
	// the OS page cache, not necessarily on stable storage.
	Put(ns, key string, value []byte) error
	// PutDurable upserts one record and does not return before the record
	// is synced to stable storage — for critical records (session
	// descriptors, terminal job outcomes, run headers) whose loss would
	// silently restart finished work.
	PutDurable(ns, key string, value []byte) error
	// Delete removes one record. Deleting an absent key is a no-op.
	Delete(ns, key string) error
	// DeletePrefix removes every record whose key starts with prefix — how
	// a job's journaled cells are dropped in one append when the job
	// reaches a terminal state or is evicted.
	DeletePrefix(ns, prefix string) error
	// Get returns the current value of one record.
	Get(ns, key string) (value []byte, ok bool, err error)
	// Load returns a copy of every record in the namespace — the recovery
	// read a restarted server performs once per subsystem.
	Load(ns string) (map[string][]byte, error)
	// Compact rewrites the namespace to its minimal form now (the
	// filesystem store also compacts automatically once a log grows well
	// past its live record count). A no-op for Memory.
	Compact(ns string) error
	// Stats snapshots the operation counters.
	Stats() Stats
	// Close flushes and releases the store. The store must not be used
	// afterwards.
	Close() error
}

// Stats are the observable counters of a store, served under the "persist"
// key of GET /api/v1/meta.
type Stats struct {
	Backend     string `json:"backend"`
	Namespaces  int    `json:"namespaces"`
	Records     int    `json:"records"`
	Puts        int64  `json:"puts"`
	Syncs       int64  `json:"syncs"`
	Deletes     int64  `json:"deletes"`
	Compactions int64  `json:"compactions"`
}

// validNS reports whether the namespace is filename- and wire-safe:
// non-empty ASCII letters, digits, '_', '-'.
func validNS(ns string) error {
	if ns == "" {
		return fmt.Errorf("persist: empty namespace")
	}
	for _, r := range ns {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '_', r == '-':
		default:
			return fmt.Errorf("persist: bad namespace %q (want [A-Za-z0-9_-]+)", ns)
		}
	}
	return nil
}

// memory is the in-process implementation: the pre-persistence default,
// useful as the zero-configuration backend and for tests of the wiring.
type memory struct {
	mu     sync.Mutex
	spaces map[string]map[string][]byte
	stats  Stats
}

// Memory returns an empty in-memory store. Records live exactly as long as
// the process — the behavior every layer had before persistence existed.
func Memory() Store {
	return &memory{spaces: map[string]map[string][]byte{}, stats: Stats{Backend: "memory"}}
}

func (m *memory) space(ns string) (map[string][]byte, error) {
	if err := validNS(ns); err != nil {
		return nil, err
	}
	sp, ok := m.spaces[ns]
	if !ok {
		sp = map[string][]byte{}
		m.spaces[ns] = sp
	}
	return sp, nil
}

func (m *memory) Put(ns, key string, value []byte) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	sp, err := m.space(ns)
	if err != nil {
		return err
	}
	sp[key] = append([]byte(nil), value...)
	m.stats.Puts++
	return nil
}

func (m *memory) PutDurable(ns, key string, value []byte) error {
	if err := m.Put(ns, key, value); err != nil {
		return err
	}
	m.mu.Lock()
	m.stats.Syncs++
	m.mu.Unlock()
	return nil
}

func (m *memory) Delete(ns, key string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	sp, err := m.space(ns)
	if err != nil {
		return err
	}
	delete(sp, key)
	m.stats.Deletes++
	return nil
}

func (m *memory) DeletePrefix(ns, prefix string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	sp, err := m.space(ns)
	if err != nil {
		return err
	}
	for k := range sp {
		if len(k) >= len(prefix) && k[:len(prefix)] == prefix {
			delete(sp, k)
		}
	}
	m.stats.Deletes++
	return nil
}

func (m *memory) Get(ns, key string) ([]byte, bool, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	sp, err := m.space(ns)
	if err != nil {
		return nil, false, err
	}
	v, ok := sp[key]
	if !ok {
		return nil, false, nil
	}
	return append([]byte(nil), v...), true, nil
}

func (m *memory) Load(ns string) (map[string][]byte, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	sp, err := m.space(ns)
	if err != nil {
		return nil, err
	}
	out := make(map[string][]byte, len(sp))
	for k, v := range sp {
		out[k] = append([]byte(nil), v...)
	}
	return out, nil
}

func (m *memory) Compact(ns string) error { return validNS(ns) }

func (m *memory) Stats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	st := m.stats
	st.Namespaces = len(m.spaces)
	for _, sp := range m.spaces {
		st.Records += len(sp)
	}
	return st
}

func (m *memory) Close() error { return nil }
