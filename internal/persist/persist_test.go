package persist

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

// backends runs a subtest against each Store implementation.
func backends(t *testing.T, run func(t *testing.T, open func(t *testing.T) Store)) {
	t.Helper()
	t.Run("memory", func(t *testing.T) {
		run(t, func(t *testing.T) Store { return Memory() })
	})
	t.Run("fs", func(t *testing.T) {
		dir := t.TempDir()
		run(t, func(t *testing.T) Store {
			st, err := Open(dir)
			if err != nil {
				t.Fatalf("Open: %v", err)
			}
			return st
		})
	})
}

func TestRoundTrip(t *testing.T) {
	backends(t, func(t *testing.T, open func(t *testing.T) Store) {
		st := open(t)
		defer st.Close()
		if err := st.Put("ns", "a", []byte("one")); err != nil {
			t.Fatalf("Put: %v", err)
		}
		if err := st.PutDurable("ns", "b", []byte("two")); err != nil {
			t.Fatalf("PutDurable: %v", err)
		}
		if err := st.Put("ns", "a", []byte("one-v2")); err != nil {
			t.Fatalf("Put upsert: %v", err)
		}
		v, ok, err := st.Get("ns", "a")
		if err != nil || !ok || string(v) != "one-v2" {
			t.Fatalf("Get a = %q, %v, %v; want one-v2", v, ok, err)
		}
		if _, ok, _ := st.Get("ns", "missing"); ok {
			t.Fatal("Get missing reported ok")
		}
		if err := st.Delete("ns", "b"); err != nil {
			t.Fatalf("Delete: %v", err)
		}
		if _, ok, _ := st.Get("ns", "b"); ok {
			t.Fatal("deleted key still present")
		}
		all, err := st.Load("ns")
		if err != nil || len(all) != 1 || string(all["a"]) != "one-v2" {
			t.Fatalf("Load = %v, %v; want one key a=one-v2", all, err)
		}
		// Mutating the returned map/values must not affect the store.
		all["a"][0] = 'X'
		v, _, _ = st.Get("ns", "a")
		if string(v) != "one-v2" {
			t.Fatal("Load returned aliased bytes")
		}
		if err := st.Put("bad ns", "k", nil); err == nil {
			t.Fatal("namespace with a space accepted")
		}
		if err := st.Put("", "k", nil); err == nil {
			t.Fatal("empty namespace accepted")
		}
	})
}

func TestDeletePrefix(t *testing.T) {
	backends(t, func(t *testing.T, open func(t *testing.T) Store) {
		st := open(t)
		defer st.Close()
		for _, k := range []string{"j1/c/1", "j1/c/2", "j10/c/1", "j2/c/1"} {
			if err := st.Put("cells", k, []byte(k)); err != nil {
				t.Fatalf("Put: %v", err)
			}
		}
		if err := st.DeletePrefix("cells", "j1/"); err != nil {
			t.Fatalf("DeletePrefix: %v", err)
		}
		all, _ := st.Load("cells")
		if len(all) != 2 {
			t.Fatalf("after DeletePrefix(j1/): %d keys left, want 2 (j10 and j2 untouched)", len(all))
		}
		for _, want := range []string{"j10/c/1", "j2/c/1"} {
			if _, ok := all[want]; !ok {
				t.Fatalf("key %s missing after unrelated prefix delete", want)
			}
		}
	})
}

func TestFSReopen(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if err := st.PutDurable("sessions", "s1", []byte(`{"id":"s1"}`)); err != nil {
		t.Fatalf("PutDurable: %v", err)
	}
	if err := st.Put("jobs", "j1", []byte("pending")); err != nil {
		t.Fatalf("Put: %v", err)
	}
	if err := st.Put("jobs", "j1", []byte("done")); err != nil {
		t.Fatalf("Put: %v", err)
	}
	if err := st.Delete("jobs", "gone"); err != nil {
		t.Fatalf("Delete absent: %v", err)
	}
	if err := st.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	st2, err := Open(dir)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer st2.Close()
	v, ok, _ := st2.Get("sessions", "s1")
	if !ok || string(v) != `{"id":"s1"}` {
		t.Fatalf("sessions/s1 after reopen = %q, %v", v, ok)
	}
	v, ok, _ = st2.Get("jobs", "j1")
	if !ok || string(v) != "done" {
		t.Fatalf("jobs/j1 after reopen = %q, %v; want the upserted value", v, ok)
	}
	if got := st2.Stats().Namespaces; got != 2 {
		t.Fatalf("namespaces after reopen = %d, want 2", got)
	}
}

func TestFSTornTail(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	for i := 0; i < 3; i++ {
		if err := st.Put("ns", fmt.Sprintf("k%d", i), []byte{byte('0' + i)}); err != nil {
			t.Fatalf("Put: %v", err)
		}
	}
	st.Close()

	// Simulate a crash mid-append: a final record missing its newline.
	logPath := filepath.Join(dir, "ns.log")
	f, err := os.OpenFile(logPath, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"op":"put","key":"torn","val":"A`); err != nil {
		t.Fatal(err)
	}
	f.Close()
	tornSize := fileSize(t, logPath)

	st2, err := Open(dir)
	if err != nil {
		t.Fatalf("reopen with torn tail: %v", err)
	}
	if _, ok, _ := st2.Get("ns", "torn"); ok {
		t.Fatal("torn record surfaced after reopen")
	}
	all, _ := st2.Load("ns")
	if len(all) != 3 {
		t.Fatalf("torn tail cost more than the torn record: %d keys, want 3", len(all))
	}
	if got := fileSize(t, logPath); got >= tornSize {
		t.Fatalf("torn tail not truncated: size %d, was %d", got, tornSize)
	}
	// The log must be appendable again after the truncation.
	if err := st2.Put("ns", "k3", []byte("3")); err != nil {
		t.Fatalf("Put after truncation: %v", err)
	}
	st2.Close()
	st3, err := Open(dir)
	if err != nil {
		t.Fatalf("third open: %v", err)
	}
	defer st3.Close()
	if v, ok, _ := st3.Get("ns", "k3"); !ok || string(v) != "3" {
		t.Fatalf("record appended after truncation lost: %q, %v", v, ok)
	}
}

func TestFSCompaction(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	// Overwrite few keys many times: log length far exceeds live count,
	// which must trip automatic compaction.
	for i := 0; i < 600; i++ {
		if err := st.Put("ns", fmt.Sprintf("k%d", i%4), []byte(strings.Repeat("x", i%17))); err != nil {
			t.Fatalf("Put: %v", err)
		}
	}
	if got := st.Stats().Compactions; got == 0 {
		t.Fatal("600 overwrites of 4 keys never compacted")
	}
	if _, err := os.Stat(filepath.Join(dir, "ns.snap")); err != nil {
		t.Fatalf("no snapshot after compaction: %v", err)
	}
	if size := fileSize(t, filepath.Join(dir, "ns.log")); size > 4096 {
		t.Fatalf("log still %d bytes after compaction", size)
	}
	want, _ := st.Load("ns")
	st.Close()

	st2, err := Open(dir)
	if err != nil {
		t.Fatalf("reopen after compaction: %v", err)
	}
	defer st2.Close()
	got, _ := st2.Load("ns")
	if len(got) != len(want) {
		t.Fatalf("reopen lost records: %d != %d", len(got), len(want))
	}
	for k, v := range want {
		if !bytes.Equal(got[k], v) {
			t.Fatalf("key %s differs after compacted reopen", k)
		}
	}

	// Explicit Compact must also work and keep every record.
	if err := st2.Compact("ns"); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	again, _ := st2.Load("ns")
	if len(again) != len(want) {
		t.Fatalf("explicit Compact lost records: %d != %d", len(again), len(want))
	}
}

func TestFSVersionMismatch(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "ns.log"),
		[]byte("{\"persist\":99,\"ns\":\"ns\"}\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir); err == nil || !strings.Contains(err.Error(), "schema version") {
		t.Fatalf("future schema version opened without error: %v", err)
	}
}

func TestFSCorruptLine(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "ns.log"), []byte(
		"{\"persist\":1,\"ns\":\"ns\"}\n{\"op\":\"put\",\"key\":\"a\"}\nnot json\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir); err == nil || !strings.Contains(err.Error(), "corrupt") {
		t.Fatalf("complete garbage line accepted: %v", err)
	}
}

func TestFSIgnoresForeignAndTmpFiles(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "README"), []byte("hi"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "ns.snap.tmp"), []byte("partial"), 0o644); err != nil {
		t.Fatal(err)
	}
	st, err := Open(dir)
	if err != nil {
		t.Fatalf("Open with foreign files: %v", err)
	}
	defer st.Close()
	if _, err := os.Stat(filepath.Join(dir, "ns.snap.tmp")); !os.IsNotExist(err) {
		t.Fatal("stale compaction tmp file not removed at open")
	}
	if _, err := os.Stat(filepath.Join(dir, "README")); err != nil {
		t.Fatal("foreign file was touched")
	}
}

func TestConcurrent(t *testing.T) {
	backends(t, func(t *testing.T, open func(t *testing.T) Store) {
		st := open(t)
		defer st.Close()
		var wg sync.WaitGroup
		for g := 0; g < 8; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				ns := fmt.Sprintf("ns%d", g%2)
				for i := 0; i < 50; i++ {
					key := fmt.Sprintf("g%d-k%d", g, i)
					if err := st.Put(ns, key, []byte(key)); err != nil {
						t.Errorf("Put: %v", err)
						return
					}
					if _, _, err := st.Get(ns, key); err != nil {
						t.Errorf("Get: %v", err)
						return
					}
					if i%10 == 9 {
						if _, err := st.Load(ns); err != nil {
							t.Errorf("Load: %v", err)
							return
						}
						st.Stats()
					}
				}
			}(g)
		}
		wg.Wait()
		for g := 0; g < 2; g++ {
			all, err := st.Load(fmt.Sprintf("ns%d", g))
			if err != nil || len(all) != 200 {
				t.Fatalf("ns%d holds %d records, want 200 (%v)", g, len(all), err)
			}
		}
	})
}

func fileSize(t *testing.T, path string) int64 {
	t.Helper()
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatalf("stat %s: %v", path, err)
	}
	return fi.Size()
}
