package persist

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// fileVersion guards the on-disk record format.
const fileVersion = 1

// compactMinRecords is how many log appends a namespace accumulates before
// compaction is even considered; beyond it, a log holding more than twice
// its live record count is rewritten as a snapshot.
const compactMinRecords = 256

// fileHeader is the first line of every log and snapshot file.
type fileHeader struct {
	Version int    `json:"persist"`
	NS      string `json:"ns"`
}

// fileRecord is one JSONL line after the header. Exactly one op:
// "put" upserts Key to Val, "del" removes Key, "delprefix" removes every
// key with prefix Key. Val marshals as base64 (encoding/json []byte).
type fileRecord struct {
	Op  string `json:"op"`
	Key string `json:"key"`
	Val []byte `json:"val,omitempty"`
}

// fsNamespace is the in-memory mirror of one namespace: the live records
// plus the open append handle of its log.
type fsNamespace struct {
	log      *os.File
	live     map[string][]byte
	appended int // log records since the last compaction
}

// fsStore is the filesystem implementation: per namespace an append-only
// record log (<ns>.log) and a compacted snapshot (<ns>.snap), both
// newline-framed JSON with a schema-version header line.
type fsStore struct {
	mu     sync.Mutex
	dir    string
	spaces map[string]*fsNamespace
	stats  Stats
}

// Open opens (or initializes) a filesystem store rooted at dir, replaying
// every namespace found there: snapshot first, then the log, with a torn
// final log record cut before the log is reopened for append.
func Open(dir string) (Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("persist: %w", err)
	}
	st := &fsStore{dir: dir, spaces: map[string]*fsNamespace{}, stats: Stats{Backend: "fs"}}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("persist: %w", err)
	}
	names := map[string]bool{}
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		name := e.Name()
		switch {
		case strings.HasSuffix(name, ".tmp"):
			// Leftover of a compaction that never reached its rename —
			// the pre-crash files are still authoritative.
			os.Remove(filepath.Join(dir, name)) //nolint:errcheck
		case strings.HasSuffix(name, ".log"):
			names[strings.TrimSuffix(name, ".log")] = true
		case strings.HasSuffix(name, ".snap"):
			names[strings.TrimSuffix(name, ".snap")] = true
		}
	}
	for ns := range names {
		if err := validNS(ns); err != nil {
			continue // foreign file; leave it alone
		}
		if _, err := st.openNamespace(ns); err != nil {
			st.Close() //nolint:errcheck
			return nil, err
		}
	}
	return st, nil
}

func (st *fsStore) logPath(ns string) string  { return filepath.Join(st.dir, ns+".log") }
func (st *fsStore) snapPath(ns string) string { return filepath.Join(st.dir, ns+".snap") }

// openNamespace replays snapshot and log into a live map and opens the log
// for append, truncating a torn tail first. Callers hold st.mu (or are
// single-threaded in Open).
func (st *fsStore) openNamespace(ns string) (*fsNamespace, error) {
	sp := &fsNamespace{live: map[string][]byte{}}
	if err := replayFile(st.snapPath(ns), ns, sp.live, nil); err != nil && !os.IsNotExist(err) {
		return nil, err
	}
	var valid int64
	records := 0
	err := replayFile(st.logPath(ns), ns, sp.live, func(off int64, n int) { valid, records = off, n })
	switch {
	case os.IsNotExist(err):
		// Fresh namespace: start a new log with just the header.
		f, err := st.freshLog(ns)
		if err != nil {
			return nil, err
		}
		sp.log = f
	case err != nil:
		return nil, err
	default:
		f, err := os.OpenFile(st.logPath(ns), os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, fmt.Errorf("persist: %w", err)
		}
		// Cut a record torn by a crash mid-write, or the first append
		// would be concatenated onto it and lost with it.
		if err := f.Truncate(valid); err != nil {
			f.Close()
			return nil, fmt.Errorf("persist: %w", err)
		}
		sp.log = f
		sp.appended = records
	}
	st.spaces[ns] = sp
	return sp, nil
}

// freshLog creates <ns>.log containing only the header, atomically via a
// tmp file so a crash can never leave a header-less log behind.
func (st *fsStore) freshLog(ns string) (*os.File, error) {
	tmp := st.logPath(ns) + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return nil, fmt.Errorf("persist: %w", err)
	}
	line, err := json.Marshal(fileHeader{Version: fileVersion, NS: ns})
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("persist: %w", err)
	}
	if _, err := f.Write(append(line, '\n')); err != nil {
		f.Close()
		return nil, fmt.Errorf("persist: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return nil, fmt.Errorf("persist: %w", err)
	}
	if err := os.Rename(tmp, st.logPath(ns)); err != nil {
		f.Close()
		return nil, fmt.Errorf("persist: %w", err)
	}
	st.syncDir()
	return f, nil
}

// replayFile applies every complete record of one file onto live. A final
// line without its newline — the signature of a crash mid-write — is
// dropped silently; a complete line that does not parse is corruption.
// onExtent, when set, receives the byte extent of the newline-terminated
// records and the record count (what a log replay reports so the caller can
// truncate the torn tail).
func replayFile(path, ns string, live map[string][]byte, onExtent func(valid int64, records int)) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	br := bufio.NewReader(f)
	var (
		offset, valid int64
		lineNo        int
		records       int
		sawHeader     bool
	)
	for {
		line, readErr := br.ReadBytes('\n')
		offset += int64(len(line))
		if readErr != nil && readErr != io.EOF {
			return fmt.Errorf("persist: %s: %w", path, readErr)
		}
		if readErr == io.EOF && len(line) > 0 {
			break // unterminated tail: torn record, drop it
		}
		if len(line) == 0 {
			break // clean EOF
		}
		lineNo++
		trimmed := bytes.TrimSpace(line)
		if len(trimmed) == 0 {
			valid = offset
			continue
		}
		if !sawHeader {
			var h fileHeader
			if err := json.Unmarshal(trimmed, &h); err != nil || h.Version == 0 {
				return fmt.Errorf("persist: %s: missing header line", path)
			}
			if h.Version != fileVersion {
				return fmt.Errorf("persist: %s: schema version %d (this build reads %d)", path, h.Version, fileVersion)
			}
			if h.NS != ns {
				return fmt.Errorf("persist: %s: header names namespace %q", path, h.NS)
			}
			sawHeader = true
			valid = offset
			continue
		}
		var rec fileRecord
		if err := json.Unmarshal(trimmed, &rec); err != nil {
			return fmt.Errorf("persist: %s corrupt at line %d: %v", path, lineNo, err)
		}
		switch rec.Op {
		case "put":
			live[rec.Key] = rec.Val
		case "del":
			delete(live, rec.Key)
		case "delprefix":
			for k := range live {
				if strings.HasPrefix(k, rec.Key) {
					delete(live, k)
				}
			}
		default:
			return fmt.Errorf("persist: %s corrupt at line %d: unknown op %q", path, lineNo, rec.Op)
		}
		records++
		valid = offset
	}
	if !sawHeader {
		return fmt.Errorf("persist: %s: missing header line", path)
	}
	if onExtent != nil {
		onExtent(valid, records)
	}
	return nil
}

// space returns the namespace, creating its log on first use when create
// is set. Callers hold st.mu.
func (st *fsStore) space(ns string, create bool) (*fsNamespace, error) {
	if err := validNS(ns); err != nil {
		return nil, err
	}
	sp, ok := st.spaces[ns]
	if ok {
		return sp, nil
	}
	if !create {
		return nil, nil
	}
	return st.openNamespace(ns)
}

// appendRecord writes one record line to the namespace log in a single
// write call. A failed write reseals the log with a newline best-effort so
// a partial line cannot swallow the next record.
func (st *fsStore) appendRecord(sp *fsNamespace, rec fileRecord) error {
	line, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("persist: %w", err)
	}
	if _, err := sp.log.Write(append(line, '\n')); err != nil {
		sp.log.Write([]byte("\n")) //nolint:errcheck // reseal a torn line
		return fmt.Errorf("persist: %w", err)
	}
	sp.appended++
	return nil
}

func (st *fsStore) put(ns, key string, value []byte, durable bool) error {
	st.mu.Lock()
	defer st.mu.Unlock()
	sp, err := st.space(ns, true)
	if err != nil {
		return err
	}
	if err := st.appendRecord(sp, fileRecord{Op: "put", Key: key, Val: value}); err != nil {
		return err
	}
	sp.live[key] = append([]byte(nil), value...)
	st.stats.Puts++
	if durable {
		if err := sp.log.Sync(); err != nil {
			return fmt.Errorf("persist: %w", err)
		}
		st.stats.Syncs++
	}
	return st.maybeCompactLocked(ns, sp)
}

func (st *fsStore) Put(ns, key string, value []byte) error {
	return st.put(ns, key, value, false)
}

func (st *fsStore) PutDurable(ns, key string, value []byte) error {
	return st.put(ns, key, value, true)
}

func (st *fsStore) Delete(ns, key string) error {
	st.mu.Lock()
	defer st.mu.Unlock()
	sp, err := st.space(ns, false)
	if err != nil || sp == nil {
		return err
	}
	if _, ok := sp.live[key]; !ok {
		return nil
	}
	if err := st.appendRecord(sp, fileRecord{Op: "del", Key: key}); err != nil {
		return err
	}
	delete(sp.live, key)
	st.stats.Deletes++
	return st.maybeCompactLocked(ns, sp)
}

func (st *fsStore) DeletePrefix(ns, prefix string) error {
	st.mu.Lock()
	defer st.mu.Unlock()
	sp, err := st.space(ns, false)
	if err != nil || sp == nil {
		return err
	}
	any := false
	for k := range sp.live {
		if strings.HasPrefix(k, prefix) {
			any = true
			break
		}
	}
	if !any {
		return nil
	}
	if err := st.appendRecord(sp, fileRecord{Op: "delprefix", Key: prefix}); err != nil {
		return err
	}
	for k := range sp.live {
		if strings.HasPrefix(k, prefix) {
			delete(sp.live, k)
		}
	}
	st.stats.Deletes++
	return st.maybeCompactLocked(ns, sp)
}

func (st *fsStore) Get(ns, key string) ([]byte, bool, error) {
	st.mu.Lock()
	defer st.mu.Unlock()
	sp, err := st.space(ns, false)
	if err != nil || sp == nil {
		return nil, false, err
	}
	v, ok := sp.live[key]
	if !ok {
		return nil, false, nil
	}
	return append([]byte(nil), v...), true, nil
}

func (st *fsStore) Load(ns string) (map[string][]byte, error) {
	st.mu.Lock()
	defer st.mu.Unlock()
	sp, err := st.space(ns, false)
	if err != nil || sp == nil {
		return map[string][]byte{}, err
	}
	out := make(map[string][]byte, len(sp.live))
	for k, v := range sp.live {
		out[k] = append([]byte(nil), v...)
	}
	return out, nil
}

// maybeCompactLocked compacts once the log has accumulated well more
// records than the namespace holds live — the point where replay cost and
// file size are dominated by overwritten history.
func (st *fsStore) maybeCompactLocked(ns string, sp *fsNamespace) error {
	if sp.appended < compactMinRecords || sp.appended < 2*len(sp.live)+16 {
		return nil
	}
	return st.compactLocked(ns, sp)
}

func (st *fsStore) Compact(ns string) error {
	st.mu.Lock()
	defer st.mu.Unlock()
	sp, err := st.space(ns, false)
	if err != nil || sp == nil {
		return err
	}
	return st.compactLocked(ns, sp)
}

// compactLocked rewrites the namespace: the live records become a fresh
// snapshot (written to a tmp file, synced, renamed), then the log is
// atomically replaced by a header-only file. A crash between the two
// renames replays the old log over the new snapshot — puts are upserts and
// deletes idempotent, so that replay is harmless.
func (st *fsStore) compactLocked(ns string, sp *fsNamespace) error {
	snapTmp := st.snapPath(ns) + ".tmp"
	f, err := os.Create(snapTmp)
	if err != nil {
		return fmt.Errorf("persist: %w", err)
	}
	w := bufio.NewWriter(f)
	enc := json.NewEncoder(w)
	if err := enc.Encode(fileHeader{Version: fileVersion, NS: ns}); err != nil {
		f.Close()
		return fmt.Errorf("persist: %w", err)
	}
	keys := make([]string, 0, len(sp.live))
	for k := range sp.live {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		if err := enc.Encode(fileRecord{Op: "put", Key: k, Val: sp.live[k]}); err != nil {
			f.Close()
			return fmt.Errorf("persist: %w", err)
		}
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return fmt.Errorf("persist: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("persist: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("persist: %w", err)
	}
	if err := os.Rename(snapTmp, st.snapPath(ns)); err != nil {
		return fmt.Errorf("persist: %w", err)
	}
	fresh, err := st.freshLog(ns)
	if err != nil {
		return err
	}
	sp.log.Close() //nolint:errcheck // replaced handle; contents already snapshotted
	sp.log = fresh
	sp.appended = 0
	st.stats.Compactions++
	st.syncDir()
	return nil
}

// syncDir fsyncs the state directory so renames survive a power cut;
// best-effort because not every platform supports directory syncs.
func (st *fsStore) syncDir() {
	d, err := os.Open(st.dir)
	if err != nil {
		return
	}
	d.Sync() //nolint:errcheck
	d.Close()
}

func (st *fsStore) Stats() Stats {
	st.mu.Lock()
	defer st.mu.Unlock()
	s := st.stats
	s.Namespaces = len(st.spaces)
	for _, sp := range st.spaces {
		s.Records += len(sp.live)
	}
	return s
}

func (st *fsStore) Close() error {
	st.mu.Lock()
	defer st.mu.Unlock()
	var firstErr error
	for _, sp := range st.spaces {
		if sp.log == nil {
			continue
		}
		if err := sp.log.Sync(); err != nil && firstErr == nil {
			firstErr = err
		}
		if err := sp.log.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
		sp.log = nil
	}
	return firstErr
}
