package coord_test

// Fleet-mode coordinator tests: real fleet.Manager behind a real HTTP
// handler, real fleet.RunWorker loops pulling shards, and the coordinator
// merging their completions — the elastic counterpart of the static-pool
// tests above, held to the same byte-identical standard.

import (
	"context"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/campaign"
	"repro/internal/coord"
	"repro/internal/fleet"
	"repro/internal/jobs"
)

// wideSpec is an 8-cell campaign — enough shards that stealing one still
// leaves plenty to balance.
func wideSpec() jobs.CampaignSpec {
	return jobs.CampaignSpec{
		Algos:        []string{"cpa", "mcpa"},
		Shapes:       []string{"serial", "wide"},
		DAGSizes:     []int{15, 20},
		ClusterSizes: []int{16, 32},
		Replicates:   2,
		Seed:         7,
	}
}

// newFleet builds a manager and serves its worker protocol over httptest.
func newFleet(t *testing.T, cfg fleet.Config) (*fleet.Manager, string) {
	t.Helper()
	m := fleet.NewManager(cfg)
	ts := httptest.NewServer(fleet.Handler(m))
	t.Cleanup(ts.Close)
	return m, ts.URL
}

// startFleetWorker runs a worker loop until the test ends; runner nil means
// the genuine shard computation.
func startFleetWorker(t *testing.T, url, name string, runner fleet.Runner) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		fleet.RunWorker(ctx, fleet.WorkerConfig{ //nolint:errcheck // exits on cancel
			Coordinator: url,
			Name:        name,
			Poll:        10 * time.Millisecond,
			Run:         runner,
		})
	}()
	t.Cleanup(func() { cancel(); <-done })
}

// TestFleetMatchesSingleProcess is fleet-mode acceptance: two pull workers,
// four shards, merged summary and checkpoint byte-identical to the
// in-process run — and the coordinator waited for the -min-workers quorum.
func TestFleetMatchesSingleProcess(t *testing.T) {
	m, url := newFleet(t, fleet.Config{
		HeartbeatInterval: 100 * time.Millisecond,
		LeaseTTL:          time.Minute,
	})
	startFleetWorker(t, url, "w-a", nil)
	startFleetWorker(t, url, "w-b", nil)

	path := filepath.Join(t.TempDir(), "fleet.jsonl")
	c, err := coord.New(coord.Config{
		Fleet:      m,
		MinWorkers: 2,
		Spec:       testSpec(),
		Shards:     4,
		Checkpoint: path,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if got, want := summaryOf(t, res), summaryOf(t, singleProcess(t, testSpec())); got != want {
		t.Fatalf("fleet summary differs:\n%s\nvs\n%s", got, want)
	}

	// The checkpoint is complete and in the cmd/campaign format.
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	cp, err := campaign.LoadCheckpoint(f)
	f.Close()
	if err != nil {
		t.Fatal(err)
	}
	if err := cp.Result().Complete(cp.Header.Cells); err != nil {
		t.Fatalf("fleet checkpoint incomplete: %v", err)
	}

	st := m.Stats()
	if st.ShardsCompleted != 4 || st.WorkersJoined < 2 {
		t.Fatalf("fleet stats = %+v", st)
	}
	p := c.Progress()
	if p.ShardsDone != 4 || len(p.Workers) < 2 {
		t.Fatalf("progress = %+v", p)
	}
}

// TestFleetWorkStealing wedges one worker on its first shard: the lease
// expires, the healthy worker steals the shard, and the run completes
// byte-identically — with the imbalance visible in the per-worker and
// fleet counters (the acceptance criterion's "slow worker finished fewer
// shards").
func TestFleetWorkStealing(t *testing.T) {
	m, url := newFleet(t, fleet.Config{
		HeartbeatInterval: 100 * time.Millisecond,
		LeaseTTL:          400 * time.Millisecond,
	})

	// The stuck runner blocks its first (and only) assignment until the test
	// tears it down; its heartbeats keep the worker registered throughout,
	// so losing the shard is a steal, not a retirement.
	stuck := func(ctx context.Context, a *fleet.Assignment) (campaign.Header, []campaign.Cell, error) {
		<-ctx.Done()
		return campaign.Header{}, nil, ctx.Err()
	}
	startFleetWorker(t, url, "stuck", stuck)
	startFleetWorker(t, url, "healthy", nil)

	c, err := coord.New(coord.Config{
		Fleet:      m,
		MinWorkers: 2,
		Spec:       wideSpec(),
		Shards:     8,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if got, want := summaryOf(t, res), summaryOf(t, singleProcess(t, wideSpec())); got != want {
		t.Fatalf("summary differs after stealing:\n%s\nvs\n%s", got, want)
	}

	st := m.Stats()
	if st.ShardsStolen < 1 {
		t.Fatalf("no shard was stolen: %+v", st)
	}
	if st.ShardsCompleted != 8 {
		t.Fatalf("shards completed = %d, want 8", st.ShardsCompleted)
	}
	var stuckDone, healthyDone = -1, -1
	for _, w := range m.Workers() {
		switch w.Name {
		case "stuck":
			stuckDone = w.ShardsDone
		case "healthy":
			healthyDone = w.ShardsDone
		}
	}
	if stuckDone != 0 || healthyDone != 8 {
		t.Fatalf("shards done: stuck=%d healthy=%d, want 0 and 8", stuckDone, healthyDone)
	}
}

// TestFleetWorkerJoinsMidRun starts the campaign with one worker and adds a
// second while shards are still queued: the newcomer participates with no
// reconfiguration, which is the elasticity the subsystem exists for.
func TestFleetWorkerJoinsMidRun(t *testing.T) {
	m, url := newFleet(t, fleet.Config{
		HeartbeatInterval: 100 * time.Millisecond,
		LeaseTTL:          time.Minute,
	})
	startFleetWorker(t, url, "founder", nil)

	c, err := coord.New(coord.Config{
		Fleet:      m,
		MinWorkers: 1,
		Spec:       wideSpec(),
		Shards:     8,
	})
	if err != nil {
		t.Fatal(err)
	}

	// Join the latecomer as soon as the first shard lands.
	joined := make(chan struct{})
	c.SetOnCell(func(campaign.Cell) {
		select {
		case <-joined:
		default:
			close(joined)
			startFleetWorker(t, url, "latecomer", nil)
		}
	})
	res, err := c.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if got, want := summaryOf(t, res), summaryOf(t, singleProcess(t, wideSpec())); got != want {
		t.Fatalf("summary differs after mid-run join:\n%s\nvs\n%s", got, want)
	}
	if st := m.Stats(); st.WorkersJoined < 2 {
		t.Fatalf("latecomer never joined: %+v", st)
	}
}

// TestFleetConfigValidation pins the fleet-mode rejects.
func TestFleetConfigValidation(t *testing.T) {
	m := fleet.NewManager(fleet.Config{})
	if _, err := coord.New(coord.Config{
		Workers: []string{"http://x"}, Fleet: m, Spec: testSpec(),
	}); err == nil {
		t.Error("static pool + fleet accepted")
	}
	if _, err := coord.New(coord.Config{Spec: testSpec()}); err == nil {
		t.Error("neither pool nor fleet accepted")
	}
	// Default shard count in fleet mode scales with the quorum.
	c, err := coord.New(coord.Config{Fleet: m, MinWorkers: 2, Spec: wideSpec()})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(c.Progress().Shard); got != 8 {
		t.Errorf("default fleet shards = %d, want 8 (4x min-workers)", got)
	}
}

// TestFleetMinWorkersTimeout pins that a fleet run with nobody joining is
// cancellable rather than hung.
func TestFleetMinWorkersTimeout(t *testing.T) {
	m, _ := newFleet(t, fleet.Config{})
	c, err := coord.New(coord.Config{Fleet: m, MinWorkers: 1, Spec: testSpec(), Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 200*time.Millisecond)
	defer cancel()
	if _, err := c.Run(ctx); err == nil {
		t.Fatal("run with no workers succeeded")
	}
}
