package client_test

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/api"
	"repro/internal/coord/client"
	"repro/internal/jobs"
)

var quickSpec = jobs.CampaignSpec{
	Algos:        []string{"cpa", "mcpa"},
	Shapes:       []string{"serial"},
	DAGSizes:     []int{15},
	ClusterSizes: []int{16},
	Replicates:   2,
	Seed:         7,
}

// logRecorder captures the client's connection-mode notes.
type logRecorder struct {
	mu    sync.Mutex
	lines []string
}

func (lr *logRecorder) logf(format string, args ...any) {
	lr.mu.Lock()
	defer lr.mu.Unlock()
	lr.lines = append(lr.lines, fmt.Sprintf(format, args...))
}

func (lr *logRecorder) has(substr string) bool {
	lr.mu.Lock()
	defer lr.mu.Unlock()
	for _, l := range lr.lines {
		if strings.Contains(l, substr) {
			return true
		}
	}
	return false
}

// TestWaitUsesEventStream is the zero-poll contract: against a server with
// /api/v1/events, Wait learns of completion from the stream and never issues
// a ?wait= long-poll.
func TestWaitUsesEventStream(t *testing.T) {
	srv := api.NewServer(api.NewStore())
	t.Cleanup(srv.Close)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	var lr logRecorder
	cl := client.New(ts.URL)
	cl.Logf = lr.logf
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()

	j, err := cl.Submit(ctx, quickSpec)
	if err != nil {
		t.Fatal(err)
	}
	j, err = cl.Wait(ctx, j.ID, 10*time.Millisecond)
	if err != nil || j.State != string(jobs.Done) {
		t.Fatalf("wait = %+v, %v", j, err)
	}
	if n := srv.LongPolls(); n != 0 {
		t.Fatalf("server answered %d ?wait= long-polls; the event stream should make it 0", n)
	}
	if !lr.has("subscribed to events") {
		t.Fatalf("client never logged the subscription: %v", lr.lines)
	}
	if lr.has("falling back") {
		t.Fatalf("client fell back unexpectedly: %v", lr.lines)
	}
}

// TestWaitFallsBackToLongPoll points the client at a worker whose
// /api/v1/events does not exist (a pre-events server): Wait must degrade to
// the ?wait= loop and still complete.
func TestWaitFallsBackToLongPoll(t *testing.T) {
	srv := api.NewServer(api.NewStore())
	t.Cleanup(srv.Close)
	inner := srv.Handler()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/api/v1/events" {
			http.NotFound(w, r) // simulate a server that predates the stream
			return
		}
		inner.ServeHTTP(w, r)
	}))
	t.Cleanup(ts.Close)

	var lr logRecorder
	cl := client.New(ts.URL)
	cl.Logf = lr.logf
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()

	j, err := cl.Submit(ctx, quickSpec)
	if err != nil {
		t.Fatal(err)
	}
	j, err = cl.Wait(ctx, j.ID, 10*time.Millisecond)
	if err != nil || j.State != string(jobs.Done) {
		t.Fatalf("wait = %+v, %v", j, err)
	}
	if !lr.has("falling back to ?wait= long-poll") {
		t.Fatalf("client never logged the fallback: %v", lr.lines)
	}
	if n := srv.LongPolls(); n < 1 {
		t.Fatalf("long polls = %d, want >= 1 on the fallback path", n)
	}

	// The unsupported answer is remembered: a second Wait skips the probe.
	j2, err := cl.Submit(ctx, quickSpec)
	if err != nil {
		t.Fatal(err)
	}
	if j2, err = cl.Wait(ctx, j2.ID, 10*time.Millisecond); err != nil || j2.State != string(jobs.Done) {
		t.Fatalf("second wait = %+v, %v", j2, err)
	}
}

// TestWaitEventStreamAlreadyTerminal covers the subscribe/terminal race: a
// job that finished before Wait subscribes is still learned of promptly.
func TestWaitEventStreamAlreadyTerminal(t *testing.T) {
	srv := api.NewServer(api.NewStore())
	t.Cleanup(srv.Close)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	cl := client.New(ts.URL)
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()

	j, err := cl.Submit(ctx, quickSpec)
	if err != nil {
		t.Fatal(err)
	}
	if j, err = cl.Wait(ctx, j.ID, 10*time.Millisecond); err != nil || j.State != string(jobs.Done) {
		t.Fatalf("first wait = %+v, %v", j, err)
	}
	// The job is terminal; a fresh Wait must return without hanging on a
	// stream that will never produce another event for it.
	done := make(chan error, 1)
	go func() {
		j2, err := cl.Wait(ctx, j.ID, 10*time.Millisecond)
		if err == nil && j2.State != string(jobs.Done) {
			err = fmt.Errorf("state = %s", j2.State)
		}
		done <- err
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("wait on terminal job: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("Wait hung on an already-terminal job")
	}
}

// TestAPIErrorCode asserts the machine-readable code decodes end to end.
func TestAPIErrorCode(t *testing.T) {
	ts := newWorker(t)
	cl := client.New(ts.URL)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	_, err := cl.Job(ctx, "j99")
	apiErr, ok := err.(*client.APIError)
	if !ok {
		t.Fatalf("err = %T %v", err, err)
	}
	if apiErr.Code != "job_not_found" || apiErr.Status != 404 {
		t.Fatalf("decoded = %+v, want 404 job_not_found", apiErr)
	}
}
