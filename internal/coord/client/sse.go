package client

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"
)

// The event-stream half of Wait: subscribe to GET /api/v1/events filtered
// to one job, and return when a terminal job event arrives. Everything that
// can go wrong — a worker predating the stream, a connection that wedges, a
// proxy that buffers — degrades to the ?wait= long-poll loop, so Wait's
// contract never depends on the stream existing.

// sseIdleTimeout bounds how long the stream may stay completely silent.
// The server heartbeats every few seconds, so a stream this quiet is a
// dead connection no FIN ever reported.
const sseIdleTimeout = time.Minute

// waitEvents tries to learn of the job's completion from the event stream.
// handled=false means the caller should long-poll instead: the worker has
// no stream, or the stream broke before a terminal event arrived.
func (c *Client) waitEvents(ctx context.Context, id string) (j Job, handled bool, err error) {
	if c.sseUnsupported.Load() {
		return Job{}, false, nil
	}
	sctx, cancel := context.WithCancel(ctx)
	defer cancel()
	req, err := http.NewRequestWithContext(sctx, http.MethodGet,
		c.Base+"/api/v1/events?topic=job&job="+url.QueryEscape(id), nil)
	if err != nil {
		return Job{}, false, nil
	}
	req.Header.Set("Accept", "text/event-stream")
	resp, err := c.httpClient().Do(req)
	if err != nil {
		// Transport trouble is the long-poll loop's to diagnose — it owns
		// the retry/health logic.
		return Job{}, false, nil
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusTooManyRequests {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4096)) //nolint:errcheck
		apiErr := &APIError{Status: resp.StatusCode, Code: "rate_limited"}
		if sec, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && sec > 0 {
			apiErr.RetryAfter = time.Duration(sec) * time.Second
		}
		return Job{}, true, apiErr // proof of life; the coordinator backs off
	}
	if resp.StatusCode != http.StatusOK ||
		!strings.HasPrefix(resp.Header.Get("Content-Type"), "text/event-stream") {
		c.sseUnsupported.Store(true)
		c.logOnce(&c.fellBack, "client: %s has no event stream, falling back to ?wait= long-poll", c.Base)
		return Job{}, false, nil
	}
	c.logOnce(&c.subscribed, "client: subscribed to events on %s", c.Base)

	// Close the subscribe/terminal race: a job that finished before the
	// stream opened will never produce another event.
	j, err = c.Job(ctx, id)
	if err != nil {
		var apiErr *APIError
		if errors.As(err, &apiErr) {
			return Job{}, true, err // the job is gone or we are throttled: report it
		}
		return Job{}, false, nil
	}
	if j.Terminal() {
		return j, true, nil
	}

	// Idle watchdog: cancelling the request context unblocks the read below,
	// and the broken stream falls back to long-polling.
	watchdog := time.AfterFunc(sseIdleTimeout, cancel)
	defer watchdog.Stop()

	fr := newFrameReader(resp.Body)
	for {
		f, ferr := fr.next()
		if ferr != nil {
			if ctx.Err() != nil {
				return j, true, ctx.Err()
			}
			return Job{}, false, nil // stream broke or watchdog fired
		}
		watchdog.Reset(sseIdleTimeout)
		if len(f.data) == 0 {
			continue // heartbeat / comment frame: liveness only
		}
		var ev struct {
			Data json.RawMessage `json:"data"`
		}
		if json.Unmarshal(f.data, &ev) != nil || len(ev.Data) == 0 {
			continue
		}
		var ju Job
		if json.Unmarshal(ev.Data, &ju) != nil || ju.ID != id {
			continue
		}
		if ju.Terminal() {
			return ju, true, nil
		}
	}
}

// sseFrame is one server-sent event: the fields of contiguous non-blank
// lines. A comment-only frame has empty data.
type sseFrame struct {
	id    string
	event string
	data  []byte
}

type frameReader struct {
	r *bufio.Reader
}

func newFrameReader(r io.Reader) *frameReader {
	return &frameReader{r: bufio.NewReader(r)}
}

// next reads one frame, terminated by a blank line. Comments reset the
// caller's idle watchdog but carry no payload.
func (fr *frameReader) next() (sseFrame, error) {
	var f sseFrame
	seen := false
	for {
		line, err := fr.r.ReadString('\n')
		if err != nil {
			return f, err
		}
		line = strings.TrimRight(line, "\r\n")
		if line == "" {
			if seen {
				return f, nil
			}
			continue // leading blank lines between frames
		}
		seen = true
		switch {
		case strings.HasPrefix(line, ":"):
			// comment — heartbeat or advisory; nothing to record
		case strings.HasPrefix(line, "id:"):
			f.id = strings.TrimSpace(line[len("id:"):])
		case strings.HasPrefix(line, "event:"):
			f.event = strings.TrimSpace(line[len("event:"):])
		case strings.HasPrefix(line, "data:"):
			if len(f.data) > 0 {
				f.data = append(f.data, '\n')
			}
			f.data = append(f.data, strings.TrimPrefix(line[len("data:"):], " ")...)
		}
	}
}
