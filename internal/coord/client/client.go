// Package client is the typed Go client for the /api/v1/jobs surface of a
// jedserve worker: submit a campaign job, poll (or long-poll) its state,
// cancel it, and fetch the completed result including the campaign-identity
// header. The distributed coordinator drives a pool of workers through this
// client; it is also usable standalone for scripting against one server.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/apierr"
	"repro/internal/campaign"
	"repro/internal/jobs"
	"repro/internal/obs"
)

// maxResponseBytes bounds how much of a worker response the client is
// willing to buffer (results of paper-sized campaigns are a few hundred KB).
const maxResponseBytes = 256 << 20

// APIError is a non-2xx answer from the worker, carrying the decoded
// error envelope when the body had one. Both the current nested shape
// ({"error": {"code", "message"}}) and the legacy flat {"error": "..."} of
// older workers decode; Code is empty for the latter.
type APIError struct {
	Status  int
	Code    string // machine-readable, e.g. "job_not_found", "rate_limited"
	Message string
	// RetryAfter is the parsed Retry-After header of a 429 (zero when the
	// server sent none) — how long the worker's rate limiter asks callers
	// to back off.
	RetryAfter time.Duration
}

func (e *APIError) Error() string {
	if e.Message == "" {
		return fmt.Sprintf("worker answered %d", e.Status)
	}
	return fmt.Sprintf("worker answered %d: %s", e.Status, e.Message)
}

// Job mirrors the wire state of one remote job.
type Job struct {
	ID       string `json:"id"`
	Kind     string `json:"kind"`
	State    string `json:"state"`
	Progress struct {
		Done  int `json:"done"`
		Total int `json:"total"`
	} `json:"progress"`
	Error string `json:"error,omitempty"`
}

// Terminal reports whether the job reached a final state.
func (j Job) Terminal() bool {
	switch jobs.State(j.State) {
	case jobs.Done, jobs.Failed, jobs.Cancelled:
		return true
	}
	return false
}

// Result is the payload of GET /api/v1/jobs/{id}/result: the campaign
// identity plus the (possibly shard-partial) cells. The coordinator
// verifies Header against its own before merging — the same guard the
// server's ?merge= path enforces with a 409.
type Result struct {
	Header campaign.Header `json:"header"`
	Algos  []string        `json:"algos"`
	Total  int             `json:"total"`
	Cells  []campaign.Cell `json:"cells"`
}

// Client talks to one worker.
type Client struct {
	// Base is the worker's base URL, e.g. "http://host:8080".
	Base string
	// HTTP is the underlying client; nil means a default without a global
	// timeout (per-call contexts bound every request, and long-polls must
	// outlive any fixed timeout).
	HTTP *http.Client
	// Logf, when set, receives the client's connection-mode notes (event
	// subscription, long-poll fallback). Set it before the first Wait.
	Logf func(format string, args ...any)
	// Trace, when non-empty, is sent as the X-Jed-Trace header on every
	// request, so the worker's access log ties its jobs back to the
	// coordinated run that dispatched them.
	Trace string

	// sseUnsupported remembers a worker that answered the event stream with
	// 404 (it predates /api/v1/events), so later Waits skip the attempt.
	sseUnsupported atomic.Bool
	subscribed     sync.Once
	fellBack       sync.Once
}

func (c *Client) logOnce(once *sync.Once, format string, args ...any) {
	once.Do(func() {
		if c.Logf != nil {
			c.Logf(format, args...)
		}
	})
}

// New returns a client for the worker at base.
func New(base string) *Client {
	return &Client{Base: strings.TrimRight(base, "/")}
}

func (c *Client) httpClient() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

// do issues one request and decodes the JSON answer into out (skipped when
// out is nil). Non-2xx answers come back as *APIError.
func (c *Client) do(ctx context.Context, method, path string, body, out any) error {
	var rd io.Reader
	if body != nil {
		raw, err := json.Marshal(body)
		if err != nil {
			return fmt.Errorf("client: encode request: %w", err)
		}
		rd = bytes.NewReader(raw)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.Base+path, rd)
	if err != nil {
		return fmt.Errorf("client: %w", err)
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if c.Trace != "" {
		req.Header.Set(obs.TraceHeader, c.Trace)
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return fmt.Errorf("client: %s: %w", c.Base, err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, maxResponseBytes))
	if err != nil {
		return fmt.Errorf("client: %s: read: %w", c.Base, err)
	}
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		apiErr := &APIError{Status: resp.StatusCode}
		if e, ok := apierr.Decode(raw); ok {
			apiErr.Code, apiErr.Message = e.Code, e.Message
		}
		if sec, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && sec > 0 {
			apiErr.RetryAfter = time.Duration(sec) * time.Second
		}
		return apiErr
	}
	if out == nil {
		return nil
	}
	if err := json.Unmarshal(raw, out); err != nil {
		return fmt.Errorf("client: %s: decode: %w", c.Base, err)
	}
	return nil
}

// Submit launches a campaign job and returns its initial state.
func (c *Client) Submit(ctx context.Context, spec jobs.CampaignSpec) (Job, error) {
	var j Job
	err := c.do(ctx, http.MethodPost, "/api/v1/jobs", spec, &j)
	return j, err
}

// Job fetches the current state of one job.
func (c *Client) Job(ctx context.Context, id string) (Job, error) {
	var j Job
	err := c.do(ctx, http.MethodGet, "/api/v1/jobs/"+id, nil, &j)
	return j, err
}

// Wait blocks until the job reaches a terminal state or ctx expires. It
// subscribes to the worker's /api/v1/events stream first — one connection
// learns of completion with no polling at all — and falls back to the
// ?wait= long-poll loop against workers that predate the stream (or when
// the stream breaks mid-wait). poll paces the fallback loop's retry
// cadence (0 means a default).
func (c *Client) Wait(ctx context.Context, id string, poll time.Duration) (Job, error) {
	if poll <= 0 {
		poll = 200 * time.Millisecond
	}
	if j, handled, err := c.waitEvents(ctx, id); handled {
		return j, err
	}
	for {
		j, err := c.jobAt(ctx, "/api/v1/jobs/"+id+"?wait=15s")
		if err != nil {
			return Job{}, err
		}
		if j.Terminal() {
			return j, nil
		}
		select {
		case <-ctx.Done():
			return j, ctx.Err()
		case <-time.After(poll):
		}
	}
}

// jobAt is Job for a raw path (id plus query parameters).
func (c *Client) jobAt(ctx context.Context, path string) (Job, error) {
	var j Job
	err := c.do(ctx, http.MethodGet, path, nil, &j)
	return j, err
}

// Cancel requests cancellation of the job.
func (c *Client) Cancel(ctx context.Context, id string) error {
	return c.do(ctx, http.MethodDelete, "/api/v1/jobs/"+id, nil, nil)
}

// Result fetches the completed job's campaign result.
func (c *Client) Result(ctx context.Context, id string) (*Result, error) {
	var res Result
	if err := c.do(ctx, http.MethodGet, "/api/v1/jobs/"+id+"/result", nil, &res); err != nil {
		return nil, err
	}
	return &res, nil
}

// Health probes the worker (GET /api/v1/meta); nil means the worker is up
// and answering the API.
func (c *Client) Health(ctx context.Context) error {
	return c.do(ctx, http.MethodGet, "/api/v1/meta", nil, nil)
}
