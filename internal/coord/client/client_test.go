package client_test

// External test package: the client is exercised against a real api.Server,
// which itself imports coord (and thus this package's subject).

import (
	"context"
	"errors"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/api"
	"repro/internal/campaign"
	"repro/internal/coord/client"
	"repro/internal/jobs"
	_ "repro/internal/sched/all"
)

func newWorker(t *testing.T) *httptest.Server {
	t.Helper()
	srv := api.NewServer(api.NewStore())
	t.Cleanup(srv.Close)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return ts
}

func TestClientRoundTrip(t *testing.T) {
	ts := newWorker(t)
	cl := client.New(ts.URL + "/") // trailing slash is trimmed
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()

	if err := cl.Health(ctx); err != nil {
		t.Fatalf("health = %v", err)
	}

	spec := jobs.CampaignSpec{
		Algos:        []string{"cpa", "mcpa"},
		Shapes:       []string{"serial"},
		DAGSizes:     []int{15},
		ClusterSizes: []int{16},
		Replicates:   2,
		Seed:         7,
	}
	j, err := cl.Submit(ctx, spec)
	if err != nil {
		t.Fatalf("submit = %v", err)
	}
	if j.ID == "" || j.Terminal() {
		t.Fatalf("initial job = %+v", j)
	}
	j, err = cl.Wait(ctx, j.ID, 10*time.Millisecond)
	if err != nil || j.State != string(jobs.Done) {
		t.Fatalf("wait = %+v, %v", j, err)
	}
	res, err := cl.Result(ctx, j.ID)
	if err != nil {
		t.Fatalf("result = %v", err)
	}
	cfg, _, err := spec.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Header.Equal(campaign.NewHeader(cfg)); err != nil {
		t.Fatalf("result header: %v", err)
	}
	if len(res.Cells) != 1 || res.Total != 2 {
		t.Fatalf("result = %d cells, %d runs", len(res.Cells), res.Total)
	}

	// Errors surface as *APIError with the decoded message.
	var apiErr *client.APIError
	if _, err := cl.Job(ctx, "j99"); !errors.As(err, &apiErr) || apiErr.Status != 404 {
		t.Fatalf("unknown job err = %v", err)
	}
	if _, err := cl.Submit(ctx, jobs.CampaignSpec{Algos: []string{"cpa"}}); !errors.As(err, &apiErr) || apiErr.Status != 400 {
		t.Fatalf("bad spec err = %v", err)
	}
	if apiErr.Message == "" {
		t.Fatalf("error message not decoded: %v", apiErr)
	}
}

func TestClientCancel(t *testing.T) {
	ts := newWorker(t)
	cl := client.New(ts.URL)
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()

	// A heavyweight campaign so cancellation strikes before completion.
	j, err := cl.Submit(ctx, jobs.CampaignSpec{
		Algos:      []string{"cpa", "mcpa"},
		Replicates: 6,
		Seed:       5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.Cancel(ctx, j.ID); err != nil {
		t.Fatalf("cancel = %v", err)
	}
	j, err = cl.Wait(ctx, j.ID, 10*time.Millisecond)
	if err != nil || j.State != string(jobs.Cancelled) {
		t.Fatalf("after cancel: %+v, %v", j, err)
	}
}
