package coord_test

// Store-backed run journal: a coordinator pointed at a persist.Store writes
// its identity header and every fetched cell under its run ID, so a second
// coordinator sharing the store resumes exactly like a file-checkpoint
// resume — and refuses a journal written by a different campaign.

import (
	"context"
	"encoding/json"
	"sync/atomic"
	"testing"

	"repro/internal/campaign"
	"repro/internal/coord"
	"repro/internal/jobs"
	"repro/internal/persist"
)

func TestRunJournalResume(t *testing.T) {
	ps, err := persist.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer ps.Close()
	worker := newWorker(t)

	// First coordinator: one worker processes the four 1-cell shards
	// serially; cancel after the first recorded cell tears the run down
	// with the rest of the factorial unfetched.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var firstRun int64
	c1, err := coord.New(coord.Config{
		Workers: []string{worker.URL},
		Spec:    testSpec(),
		Shards:  4,
		Persist: ps,
		RunID:   "r1",
		OnCell: func(campaign.Cell) {
			if atomic.AddInt64(&firstRun, 1) == 1 {
				cancel()
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c1.Run(ctx); err == nil {
		t.Fatal("interrupted run reported success")
	}
	if _, ok, err := ps.Get("runs", "r1/header"); err != nil || !ok {
		t.Fatalf("run header not journaled (ok=%v err=%v)", ok, err)
	}

	// Second coordinator, same store and run ID: the journaled cells
	// preload, the rest is fetched, and the merged result matches the
	// single-process run byte for byte.
	var secondRun int64
	c2, err := coord.New(coord.Config{
		Workers: []string{worker.URL},
		Spec:    testSpec(),
		Shards:  4,
		Persist: ps,
		RunID:   "r1",
		Resume:  true,
		OnCell:  func(campaign.Cell) { atomic.AddInt64(&secondRun, 1) },
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := c2.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	want := singleProcess(t, testSpec())
	if got, wantS := summaryOf(t, res), summaryOf(t, want); got != wantS {
		t.Fatalf("resumed summary differs:\n%s\nvs\n%s", got, wantS)
	}
	total := atomic.LoadInt64(&firstRun) + atomic.LoadInt64(&secondRun)
	if total != int64(len(want.Cells)) {
		t.Fatalf("cells fetched across both runs = %d, want %d (journaled cells were recomputed)",
			total, len(want.Cells))
	}
	// A completed run drops its journal.
	if _, ok, err := ps.Get("runs", "r1/header"); err != nil || ok {
		t.Fatalf("journal of completed run not dropped (ok=%v err=%v)", ok, err)
	}
}

func TestRunJournalHeaderMismatch(t *testing.T) {
	ps, err := persist.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer ps.Close()

	// Journal a header of a *different* campaign under the run ID.
	other := testSpec()
	other.Seed = 99
	cfg, _, err := other.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(campaign.NewHeader(cfg))
	if err != nil {
		t.Fatal(err)
	}
	if err := ps.PutDurable("runs", "r1/header", b); err != nil {
		t.Fatal(err)
	}

	worker := newWorker(t)
	c, err := coord.New(coord.Config{
		Workers: []string{worker.URL},
		Spec:    testSpec(),
		Shards:  2,
		Persist: ps,
		RunID:   "r1",
		Resume:  true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Run(context.Background()); err == nil {
		t.Fatal("resume against a foreign run journal succeeded")
	}

	// Without Resume the stale journal is simply replaced.
	c2, err := coord.New(coord.Config{
		Workers: []string{worker.URL},
		Spec:    testSpec(),
		Shards:  2,
		Persist: ps,
		RunID:   "r1",
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c2.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
}

func TestPersistNeedsRunID(t *testing.T) {
	ps := persist.Memory()
	_, err := coord.New(coord.Config{
		Workers: []string{"http://example.invalid"},
		Spec:    jobs.CampaignSpec{Algos: []string{"cpa", "mcpa"}},
		Persist: ps,
	})
	if err == nil {
		t.Fatal("Persist without RunID accepted")
	}
}
