package coord_test

// The coordinator tests run real api.Server instances as workers (the same
// handler jedserve serves), so dispatch, long-poll, result fetch, and the
// campaign-identity guard are exercised over genuine HTTP. The package is
// an external test package because api imports coord.

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/api"
	"repro/internal/campaign"
	"repro/internal/coord"
	"repro/internal/jobs"
	_ "repro/internal/sched/all"
)

// testSpec is a small two-shape campaign (4 cells) that completes in well
// under a second per shard.
func testSpec() jobs.CampaignSpec {
	return jobs.CampaignSpec{
		Algos:        []string{"cpa", "mcpa"},
		Shapes:       []string{"serial", "wide"},
		DAGSizes:     []int{15},
		ClusterSizes: []int{16, 32},
		Replicates:   2,
		Seed:         11,
	}
}

// singleProcess runs the same campaign in-process — the golden result every
// coordinated run must reproduce exactly.
func singleProcess(t *testing.T, spec jobs.CampaignSpec) *campaign.Result {
	t.Helper()
	cfg, _, err := spec.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	res, err := campaign.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func newWorker(t *testing.T) *httptest.Server {
	t.Helper()
	srv := api.NewServer(api.NewStore())
	t.Cleanup(srv.Close)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return ts
}

// summaryOf renders the canonical summary text used for byte-equality
// comparisons.
func summaryOf(t *testing.T, res *campaign.Result) string {
	t.Helper()
	var sb strings.Builder
	if err := res.WriteSummary(&sb, 1.2); err != nil {
		t.Fatal(err)
	}
	return sb.String()
}

// jobCount asks a worker how many jobs it has accepted so far.
func jobCount(t *testing.T, workerURL string) int {
	t.Helper()
	resp, err := http.Get(workerURL + "/api/v1/jobs")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out struct {
		Jobs []any `json:"jobs"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return len(out.Jobs)
}

// TestCoordinatedMatchesSingleProcess is the acceptance path: two workers,
// four shards, merged result byte-identical to the in-process run.
func TestCoordinatedMatchesSingleProcess(t *testing.T) {
	w1, w2 := newWorker(t), newWorker(t)
	var cells int64
	c, err := coord.New(coord.Config{
		Workers: []string{w1.URL, w2.URL},
		Spec:    testSpec(),
		Shards:  4,
		OnCell:  func(campaign.Cell) { atomic.AddInt64(&cells, 1) },
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	want := singleProcess(t, testSpec())
	if got, wantS := summaryOf(t, res), summaryOf(t, want); got != wantS {
		t.Fatalf("coordinated summary differs:\n%s\nvs\n%s", got, wantS)
	}
	if atomic.LoadInt64(&cells) != int64(len(want.Cells)) {
		t.Fatalf("OnCell fired %d times, want %d", cells, len(want.Cells))
	}
	p := c.Progress()
	if p.ShardsDone != 4 || p.CellsDone != len(want.Cells) {
		t.Fatalf("progress = %+v", p)
	}
	for _, wp := range p.Workers {
		if wp.State != "live" {
			t.Fatalf("worker %s = %s", wp.URL, wp.State)
		}
	}
}

// TestWorkerDownAtDispatch points one pool slot at a dead address: its
// shards must be reassigned to the live worker and the merged output stay
// byte-identical.
func TestWorkerDownAtDispatch(t *testing.T) {
	dead := httptest.NewServer(http.NotFoundHandler())
	dead.Close() // nothing listens: dials fail at dispatch
	live := newWorker(t)
	c, err := coord.New(coord.Config{
		Workers: []string{dead.URL, live.URL},
		Spec:    testSpec(),
		Shards:  4,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if got, want := summaryOf(t, res), summaryOf(t, singleProcess(t, testSpec())); got != want {
		t.Fatalf("summary differs after dispatch failure:\n%s\nvs\n%s", got, want)
	}
	states := map[string]string{}
	for _, wp := range c.Progress().Workers {
		states[wp.URL] = wp.State
	}
	if states[dead.URL] != "dead" || states[live.URL] != "live" {
		t.Fatalf("worker states = %v", states)
	}
}

// flakyWorker proxies a real worker until it has accepted one job, then
// fails every request — the deterministic stand-in for a worker dying
// mid-shard: the job was accepted, then the machine went away, and health
// probes fail too. The kill is synchronous with the accepting request, so
// the very next poll is guaranteed to hit a dead worker.
type flakyWorker struct {
	inner  http.Handler
	killed atomic.Bool
}

func (f *flakyWorker) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if f.killed.Load() {
		http.Error(w, "worker gone", http.StatusBadGateway)
		return
	}
	f.inner.ServeHTTP(w, r)
	if r.Method == http.MethodPost && strings.HasSuffix(r.URL.Path, "/jobs") {
		f.killed.Store(true)
	}
}

// TestWorkerDiesMidShard kills a worker right after it accepted a job; the
// shard must be reassigned and the merged output stay byte-identical.
func TestWorkerDiesMidShard(t *testing.T) {
	stable := newWorker(t)
	srv := api.NewServer(api.NewStore())
	t.Cleanup(srv.Close)
	flaky := &flakyWorker{inner: srv.Handler()}
	flakyTS := httptest.NewServer(flaky)
	t.Cleanup(flakyTS.Close)

	c, err := coord.New(coord.Config{
		Workers: []string{flakyTS.URL, stable.URL},
		Spec:    testSpec(),
		Shards:  4,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if got, want := summaryOf(t, res), summaryOf(t, singleProcess(t, testSpec())); got != want {
		t.Fatalf("summary differs after mid-shard death:\n%s\nvs\n%s", got, want)
	}
	for _, wp := range c.Progress().Workers {
		if wp.URL == flakyTS.URL && wp.State != "dead" {
			t.Fatalf("flaky worker not retired: %+v", c.Progress().Workers)
		}
	}
}

// stubWorker mimics the job API but every job it accepts reports failure —
// an alive but useless worker, for exhausting the per-shard attempt budget.
func stubWorker(t *testing.T) *httptest.Server {
	t.Helper()
	mux := http.NewServeMux()
	fail := func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(map[string]any{ //nolint:errcheck
			"id": "j1", "kind": "campaign", "state": "failed",
			"progress": map[string]int{"done": 0, "total": 0},
			"error":    "stub always fails",
		})
	}
	mux.HandleFunc("POST /api/v1/jobs", fail)
	mux.HandleFunc("GET /api/v1/jobs/{id}", fail)
	mux.HandleFunc("GET /api/v1/meta", func(w http.ResponseWriter, _ *http.Request) {
		w.Write([]byte("{}")) //nolint:errcheck
	})
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	return ts
}

// TestShardAttemptsExhausted pins that a shard failing on a healthy worker
// burns the attempt budget and fails the run (rather than looping forever).
func TestShardAttemptsExhausted(t *testing.T) {
	stub := stubWorker(t)
	c, err := coord.New(coord.Config{
		Workers:     []string{stub.URL},
		Spec:        testSpec(),
		Shards:      1,
		MaxAttempts: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	_, err = c.Run(context.Background())
	if err == nil || !strings.Contains(err.Error(), "after 2 attempts") {
		t.Fatalf("err = %v, want attempt exhaustion", err)
	}
}

// TestAllWorkersDead pins the no-live-workers failure mode.
func TestAllWorkersDead(t *testing.T) {
	dead := httptest.NewServer(http.NotFoundHandler())
	dead.Close()
	c, err := coord.New(coord.Config{
		Workers: []string{dead.URL},
		Spec:    testSpec(),
		Shards:  2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Run(context.Background()); err == nil {
		t.Fatal("run with no live workers succeeded")
	}
}

// TestHeaderGuard pins the campaign-identity check: a worker answering with
// cells of a different campaign (a restarted worker recycling job IDs) must
// never be merged.
func TestHeaderGuard(t *testing.T) {
	// A worker that truthfully runs a *different* campaign: it rewrites the
	// submitted spec's seed, so the job lifecycle is genuine but the result
	// header mismatches the coordinator's.
	srv := api.NewServer(api.NewStore())
	t.Cleanup(srv.Close)
	inner := srv.Handler()
	mux := http.NewServeMux()
	mux.HandleFunc("POST /api/v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		var spec map[string]any
		if err := json.NewDecoder(r.Body).Decode(&spec); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		spec["seed"] = float64(999)
		raw, err := json.Marshal(spec)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		r2 := r.Clone(r.Context())
		r2.Body = io.NopCloser(bytes.NewReader(raw))
		r2.ContentLength = int64(len(raw))
		inner.ServeHTTP(w, r2)
	})
	mux.Handle("/", inner)
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)

	c, err := coord.New(coord.Config{
		Workers:     []string{ts.URL},
		Spec:        testSpec(),
		Shards:      1,
		MaxAttempts: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	_, err = c.Run(context.Background())
	if err == nil || !strings.Contains(err.Error(), "header") {
		t.Fatalf("err = %v, want header mismatch", err)
	}
}

// TestCheckpointAndResume tears a coordinator checkpoint mid-record and
// resumes it: finished shards are not re-dispatched, and the final summary
// is byte-identical to the first run's.
func TestCheckpointAndResume(t *testing.T) {
	w := newWorker(t)
	path := filepath.Join(t.TempDir(), "coord.jsonl")

	// First run writes the full checkpoint: one job per shard on the worker.
	c1, err := coord.New(coord.Config{
		Workers:    []string{w.URL},
		Spec:       testSpec(),
		Shards:     4,
		Checkpoint: path,
	})
	if err != nil {
		t.Fatal(err)
	}
	res1, err := c1.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if n := jobCount(t, w.URL); n != 4 {
		t.Fatalf("first run dispatched %d jobs, want 4", n)
	}

	// The checkpoint is the cmd/campaign format: loadable, full campaign.
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	cp, err := campaign.LoadCheckpoint(f)
	f.Close()
	if err != nil {
		t.Fatal(err)
	}
	if len(cp.Cells) != len(res1.Cells) {
		t.Fatalf("checkpoint holds %d cells, want %d", len(cp.Cells), len(res1.Cells))
	}

	// Tear the tail mid-record, as a coordinator killed mid-write would.
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, raw[:len(raw)-20], 0o644); err != nil {
		t.Fatal(err)
	}

	// Resume: only the torn record's shard is re-dispatched (job 5).
	c2, err := coord.New(coord.Config{
		Workers:    []string{w.URL},
		Spec:       testSpec(),
		Shards:     4,
		Checkpoint: path,
		Resume:     true,
	})
	if err != nil {
		t.Fatal(err)
	}
	res2, err := c2.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if got, want := summaryOf(t, res2), summaryOf(t, res1); got != want {
		t.Fatalf("resumed summary differs:\n%s\nvs\n%s", got, want)
	}
	if n := jobCount(t, w.URL); n != 5 {
		t.Fatalf("resume left %d jobs on the worker, want 5 (one re-dispatched shard)", n)
	}
	// The repaired checkpoint loads cleanly and is complete again.
	f, err = os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	cp, err = campaign.LoadCheckpoint(f)
	f.Close()
	if err != nil {
		t.Fatal(err)
	}
	if err := cp.Result().Complete(cp.Header.Cells); err != nil {
		t.Fatalf("repaired checkpoint incomplete: %v", err)
	}

	// Resuming with different campaign flags must refuse.
	other := testSpec()
	other.Seed = 999
	c3, err := coord.New(coord.Config{
		Workers:    []string{w.URL},
		Spec:       other,
		Shards:     4,
		Checkpoint: path,
		Resume:     true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c3.Run(context.Background()); err == nil {
		t.Fatal("resume with mismatched config succeeded")
	}
}

// TestConfigValidation covers New's rejects plus the run-once guard.
func TestConfigValidation(t *testing.T) {
	spec := testSpec()
	if _, err := coord.New(coord.Config{Spec: spec}); err == nil {
		t.Error("no workers accepted")
	}
	withShard := spec
	withShard.Shard = "1/2"
	if _, err := coord.New(coord.Config{Workers: []string{"http://x"}, Spec: withShard}); err == nil {
		t.Error("pre-sharded spec accepted")
	}
	bad := spec
	bad.Algos = []string{"cpa"}
	if _, err := coord.New(coord.Config{Workers: []string{"http://x"}, Spec: bad}); err == nil {
		t.Error("one-algo spec accepted")
	}
	if _, err := coord.New(coord.Config{Workers: []string{"http://x"}, Spec: spec, Shards: -1}); err == nil {
		t.Error("negative shard count accepted")
	}
	w := newWorker(t)
	c, err := coord.New(coord.Config{Workers: []string{w.URL}, Spec: spec, Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Run(context.Background()); err == nil {
		t.Error("second Run accepted")
	}
}

// TestCancelMidRun pins that cancelling the coordinator's context aborts
// the run with an error instead of hanging.
func TestCancelMidRun(t *testing.T) {
	w := newWorker(t)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	c, err := coord.New(coord.Config{
		Workers: []string{w.URL},
		Spec:    testSpec(),
		Shards:  4,
		// Strike as soon as the first shard lands, while others are pending.
		OnCell: func(campaign.Cell) { cancel() },
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Run(ctx); err == nil {
		t.Fatal("cancelled run succeeded")
	}
}

// throttlingWorker answers 429 (the worker-side rate limiter) to the first
// n submits, then proxies everything to the real worker.
type throttlingWorker struct {
	inner     http.Handler
	remaining atomic.Int64
}

func (f *throttlingWorker) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.Method == http.MethodPost && strings.HasSuffix(r.URL.Path, "/jobs") && f.remaining.Add(-1) >= 0 {
		http.Error(w, `{"error": "rate limit exceeded"}`, http.StatusTooManyRequests)
		return
	}
	f.inner.ServeHTTP(w, r)
}

// TestThrottledWorkerNotRetired pins that a 429 from a worker's rate
// limiter is proof of life: the shard retries with backoff, without
// burning the attempt budget (4 consecutive 429s against MaxAttempts 2),
// the worker stays in the pool, and the run completes byte-identically.
func TestThrottledWorkerNotRetired(t *testing.T) {
	srv := api.NewServer(api.NewStore())
	t.Cleanup(srv.Close)
	throttling := &throttlingWorker{inner: srv.Handler()}
	throttling.remaining.Store(4)
	ts := httptest.NewServer(throttling)
	t.Cleanup(ts.Close)

	c, err := coord.New(coord.Config{
		Workers:     []string{ts.URL},
		Spec:        testSpec(),
		Shards:      2,
		MaxAttempts: 2,
		Poll:        10 * time.Millisecond, // also the throttle-backoff floor
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if got, want := summaryOf(t, res), summaryOf(t, singleProcess(t, testSpec())); got != want {
		t.Fatalf("summary differs after throttling:\n%s\nvs\n%s", got, want)
	}
	for _, wp := range c.Progress().Workers {
		if wp.State != "live" {
			t.Fatalf("throttled worker retired: %+v", c.Progress().Workers)
		}
	}
}
