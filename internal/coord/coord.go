// Package coord is the distributed campaign coordinator: it splits one
// campaign into k/n shards along the deterministic cell enumeration,
// dispatches each shard to a pool of remote workers over the /api/v1/jobs
// surface (every worker is just a jedserve instance), and merges the
// fetched shard results into the full factorial — byte-identical to a
// single-process run, because cells depend only on (config, index), never
// on which machine computed them.
//
// The coordinator is fault-tolerant. A worker that stops answering — down
// at dispatch, or dying mid-shard — is retired after a failed health probe
// and its shard is reassigned to the survivors, bounded by a per-shard
// attempt budget. Every fetched result is verified against the campaign
// identity header before merging, the same guard the REST ?merge= path
// enforces, so a restarted worker recycling job IDs can never smuggle cells
// of a different campaign into the merge. Fetched cells stream into a local
// JSONL checkpoint (the cmd/campaign format), so a torn coordinator resumes
// without re-running finished shards.
package coord

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/campaign"
	"repro/internal/coord/client"
	"repro/internal/fleet"
	"repro/internal/jobs"
	"repro/internal/obs"
	"repro/internal/persist"
)

// runNS is the persistence namespace coordinated runs journal into.
const runNS = "runs"

// defaultProbeTimeout bounds the is-this-worker-alive probe that decides
// between "retry the shard here" and "retire the worker" (static pools;
// Config.ProbeTimeout overrides).
const defaultProbeTimeout = 2 * time.Second

// Config describes one coordinated campaign.
type Config struct {
	// Workers are the base URLs of the jedserve workers, e.g.
	// "http://host:8080" — the static push-dispatch pool. Exactly one of
	// Workers and Fleet must be set.
	Workers []string
	// Fleet switches dispatch to the elastic pull model: shards go onto the
	// manager's queue and joined workers lease them at their own pace, so a
	// fast machine naturally takes more of the campaign than a slow one.
	Fleet *fleet.Manager
	// MinWorkers makes a fleet run wait until that many workers have joined
	// before queueing the first shard (0 means 1). Fleet mode only.
	MinWorkers int
	// Spec is the campaign to run. Spec.Shard must be empty — sharding is
	// the coordinator's job.
	Spec jobs.CampaignSpec
	// Shards is the number of k/n partitions to dispatch; 0 means one per
	// worker. More shards than workers gives finer-grained reassignment
	// when a worker dies.
	Shards int
	// MaxAttempts bounds how often one shard may be dispatched before the
	// run fails (0 means 3).
	MaxAttempts int
	// Poll paces the per-job wait loop against workers that ignore the
	// ?wait= long-poll (0 means 200ms).
	Poll time.Duration
	// ProbeTimeout bounds the health probe deciding whether a failing
	// static-pool worker is retired (0 means 2s). Static mode only — fleet
	// liveness is heartbeat-lease based.
	ProbeTimeout time.Duration
	// Checkpoint is the path of the local JSONL checkpoint the fetched
	// cells stream into ("" disables). The file uses the cmd/campaign
	// format, so `campaign -merge` reads it directly.
	Checkpoint string
	// Resume loads an existing checkpoint first and skips the shards whose
	// cells are all persisted; a torn final record is cut, exactly like
	// `campaign -resume`.
	Resume bool
	// Persist, when set, journals run progress (identity header plus every
	// recorded cell) into the shared persistence store under RunID — the
	// store-backed sibling of Checkpoint, which makes a coordinator's
	// checkpoint shareable across processes pointed at one state directory.
	// With Resume, the persisted cells preload exactly like a file resume.
	Persist persist.Store
	// RunID names this run in the persistence store. Required with Persist;
	// the REST surface uses the coordinated job's ID.
	RunID string
	// OnCell, when set, observes every newly recorded cell (serialized on
	// the coordinator goroutine) — the aggregate-progress hook.
	OnCell func(campaign.Cell)
	// OnShard, when set, observes every shard state transition the
	// coordinator records (dispatch, requeue, completion) with the
	// post-transition snapshot — the event-bus hook.
	OnShard func(ShardProgress)
	// Logf, when set, receives human-readable progress lines.
	Logf func(format string, args ...any)
	// Metrics, when set, receives shard dispatch/retry/throttle counters
	// and the per-shard wall-time histogram (jed_coord_*). Nil is fine:
	// the handles still work, they just aren't exported anywhere.
	Metrics *obs.Registry
	// Trace, when set, is propagated to every worker hop (the X-Jed-Trace
	// header on static dispatch, the lease assignment on fleet dispatch)
	// and collects one span per completed shard, so `jedcoord -v` can
	// print where the run's wall time went.
	Trace *obs.Trace
}

// ShardProgress is the state of one shard in a Progress snapshot.
type ShardProgress struct {
	Shard    int    `json:"shard"` // 1-based k of k/n
	State    string `json:"state"` // pending | running | done
	Worker   string `json:"worker,omitempty"`
	Job      string `json:"job,omitempty"`
	Attempts int    `json:"attempts"`
}

// WorkerProgress is the state of one worker in a Progress snapshot.
type WorkerProgress struct {
	URL   string `json:"url"`
	State string `json:"state"` // live | dead
}

// Progress is a point-in-time snapshot of a coordinated run.
type Progress struct {
	Shards     int              `json:"shards"`
	ShardsDone int              `json:"shards_done"`
	Cells      int              `json:"cells"`
	CellsDone  int              `json:"cells_done"`
	Shard      []ShardProgress  `json:"shard"`
	Workers    []WorkerProgress `json:"workers"`
}

// Coordinator runs one coordinated campaign. Create with New, run once with
// Run; Progress may be read concurrently while the run is in flight.
type Coordinator struct {
	cfg    Config
	ccfg   campaign.Config
	header campaign.Header
	specs  []campaign.CellSpec
	shards int

	mu        sync.Mutex
	shardStat []ShardProgress // index k-1
	workers   []WorkerProgress
	cells     map[int]campaign.Cell // released once Run returns
	cellsDone int
	started   bool
	fleetRun  *fleet.Run // live shard queue while a fleet run is in flight

	// Metric handles, resolved once in New so series exist (at zero)
	// before the first shard completes. Nil-registry safe.
	mShardSeconds *obs.Histogram
	mDispatched   *obs.Counter
	mRetries      *obs.Counter
	mThrottled    *obs.Counter
}

// New validates the configuration and resolves the campaign. The spec is
// resolved with the same code path workers use, so the coordinator's idea
// of the cell enumeration and identity header matches theirs exactly.
func New(cfg Config) (*Coordinator, error) {
	if len(cfg.Workers) == 0 && cfg.Fleet == nil {
		return nil, fmt.Errorf("coord: no workers and no fleet")
	}
	if len(cfg.Workers) > 0 && cfg.Fleet != nil {
		return nil, fmt.Errorf("coord: static workers and a fleet are mutually exclusive")
	}
	if cfg.Spec.Shard != "" {
		return nil, fmt.Errorf("coord: spec must not set shard %q (sharding is the coordinator's job)", cfg.Spec.Shard)
	}
	if cfg.Persist != nil && cfg.RunID == "" {
		return nil, fmt.Errorf("coord: persistence needs a run ID")
	}
	ccfg, _, err := cfg.Spec.Resolve()
	if err != nil {
		return nil, err
	}
	if cfg.Fleet != nil && cfg.MinWorkers < 1 {
		cfg.MinWorkers = 1
	}
	if cfg.ProbeTimeout <= 0 {
		cfg.ProbeTimeout = defaultProbeTimeout
	}
	if cfg.Shards == 0 {
		if cfg.Fleet != nil {
			// Pull dispatch wants finer granularity than one-per-worker:
			// small shards are what lets a fast worker overtake a slow one.
			cfg.Shards = 4 * cfg.MinWorkers
		} else {
			cfg.Shards = len(cfg.Workers)
		}
	}
	if cfg.Shards < 1 {
		return nil, fmt.Errorf("coord: bad shard count %d", cfg.Shards)
	}
	if cfg.MaxAttempts == 0 {
		cfg.MaxAttempts = 3
	}
	if cfg.MaxAttempts < 1 {
		return nil, fmt.Errorf("coord: bad attempt budget %d", cfg.MaxAttempts)
	}
	if cfg.Poll <= 0 {
		cfg.Poll = 200 * time.Millisecond
	}
	c := &Coordinator{
		cfg:    cfg,
		ccfg:   ccfg,
		header: campaign.NewHeader(ccfg),
		specs:  campaign.Cells(ccfg),
		shards: cfg.Shards,
		cells:  map[int]campaign.Cell{},
	}
	if c.shards > len(c.specs) {
		// More shards than cells would dispatch provably empty jobs.
		c.shards = len(c.specs)
	}
	c.mShardSeconds = cfg.Metrics.Histogram("jed_coord_shard_seconds",
		"Wall time of one completed shard dispatch, in seconds.", obs.DefBuckets())
	c.mDispatched = cfg.Metrics.Counter("jed_coord_shards_dispatched_total",
		"Shard dispatch attempts (static submits and fleet completions).")
	c.mRetries = cfg.Metrics.Counter("jed_coord_shard_retries_total",
		"Shards requeued after a worker failure.")
	c.mThrottled = cfg.Metrics.Counter("jed_coord_shard_throttled_total",
		"Shards requeued on a worker's 429 backoff (attempt budget not burned).")
	c.shardStat = make([]ShardProgress, c.shards)
	for k := 1; k <= c.shards; k++ {
		c.shardStat[k-1] = ShardProgress{Shard: k, State: "pending"}
	}
	for _, url := range cfg.Workers {
		c.workers = append(c.workers, WorkerProgress{URL: url, State: "live"})
	}
	return c, nil
}

// Header returns the campaign identity every fetched shard is checked
// against.
func (c *Coordinator) Header() campaign.Header { return c.header }

// SetOnCell installs (or replaces) the per-cell observer. It must be called
// before Run — the REST surface uses it to wire job progress to a
// coordinator whose job handle does not exist until after submission.
func (c *Coordinator) SetOnCell(fn func(campaign.Cell)) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.cfg.OnCell = fn
}

// SetOnShard installs (or replaces) the per-shard transition observer. Like
// SetOnCell it must be called before Run.
func (c *Coordinator) SetOnShard(fn func(ShardProgress)) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.cfg.OnShard = fn
}

// SetPersist installs (or replaces) the run journal. Like SetOnCell it must
// be called before Run — the REST surface names the run after the
// coordinated job, whose ID does not exist until after submission.
func (c *Coordinator) SetPersist(ps persist.Store, runID string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.cfg.Persist = ps
	c.cfg.RunID = runID
}

// Cells returns the size of the full factorial.
func (c *Coordinator) Cells() int { return len(c.specs) }

// Progress snapshots the run. In fleet mode the worker list reflects the
// manager's live registry (workers join and leave at will) and the running
// shard states come from the fleet's lease table.
func (c *Coordinator) Progress() Progress {
	c.mu.Lock()
	if run := c.fleetRun; run != nil {
		for _, s := range run.Snapshot() {
			st := &c.shardStat[s.K-1]
			if st.State == "done" {
				continue // completion already recorded; lease table may lag
			}
			st.State, st.Worker, st.Attempts = s.State, s.Worker, s.Attempts
		}
	}
	p := Progress{
		Shards:    c.shards,
		Cells:     len(c.specs),
		CellsDone: c.cellsDone,
		Shard:     append([]ShardProgress(nil), c.shardStat...),
		Workers:   append([]WorkerProgress(nil), c.workers...),
	}
	for _, s := range c.shardStat {
		if s.State == "done" {
			p.ShardsDone++
		}
	}
	c.mu.Unlock()
	if c.cfg.Fleet != nil {
		for _, w := range c.cfg.Fleet.Workers() {
			name := w.ID
			if w.Name != "" {
				name = fmt.Sprintf("%s (%s)", w.ID, w.Name)
			}
			p.Workers = append(p.Workers, WorkerProgress{URL: name, State: w.State})
		}
	}
	return p
}

func (c *Coordinator) logf(format string, args ...any) {
	if c.cfg.Logf != nil {
		c.cfg.Logf(format, args...)
	}
}

// maxThrottleRetries bounds how often one shard may be re-dispatched on
// 429s before throttling starts counting against the attempt budget — a
// worker that grants nothing for this many backoffs is effectively stuck.
const maxThrottleRetries = 64

// task is one dispatchable shard plus its retry bookkeeping.
type task struct {
	k         int
	attempts  int
	throttles int
	// notBefore delays the dispatch — the backoff a 429'd worker asked for.
	notBefore time.Time
}

// outcome is what a worker goroutine reports back for one task.
type outcome struct {
	t      task
	worker int // index into cfg.Workers
	cells  []campaign.Cell
	err    error
	dead   bool // the worker failed its health probe and retired
	// throttled marks a failure that was the worker's rate limiter (429);
	// retryAfter is how long it asked to back off.
	throttled  bool
	retryAfter time.Duration
}

// Run executes the coordinated campaign and returns the merged full
// factorial. It may be called once.
func (c *Coordinator) Run(ctx context.Context) (*campaign.Result, error) {
	c.mu.Lock()
	if c.started {
		c.mu.Unlock()
		return nil, fmt.Errorf("coord: Run called twice")
	}
	c.started = true
	c.mu.Unlock()
	// The cell map exists only to assemble the result; release it when the
	// run ends so a tracker holding terminal coordinators (the REST
	// campaign surface) does not pin a second copy of every cell.
	defer func() {
		c.mu.Lock()
		c.cells = nil
		c.mu.Unlock()
	}()

	cw, closeCP, err := c.openCheckpoint()
	if err != nil {
		return nil, err
	}
	defer closeCP()
	if err := c.openRunJournal(); err != nil {
		return nil, err
	}

	// Shards whose cells all came out of the resumed checkpoint are done
	// before anything is dispatched.
	var pending []int
	for k := 1; k <= c.shards; k++ {
		if c.shardCovered(k) {
			c.setShardState(k, func(s *ShardProgress) { s.State = "done" })
			continue
		}
		pending = append(pending, k)
	}
	if len(pending) < c.shards {
		c.logf("coord: %d of %d shards already complete in checkpoint", c.shards-len(pending), c.shards)
	}

	if len(pending) > 0 {
		if c.cfg.Fleet != nil {
			err = c.dispatchFleet(ctx, pending, cw)
		} else {
			err = c.dispatch(ctx, pending, cw)
		}
		if err != nil {
			return nil, err
		}
	}
	if cw != nil {
		if err := cw.sync(); err != nil {
			return nil, err
		}
	}
	res, err := c.result()
	if err == nil && c.cfg.Persist != nil {
		// The run is merged and complete; its journal has served its purpose.
		// Best-effort — a leftover journal only costs a header check next run.
		if derr := c.cfg.Persist.DeletePrefix(runNS, c.cfg.RunID+"/"); derr != nil {
			c.logf("coord: dropping run journal: %v", derr)
		}
	}
	return res, err
}

// runCellKey zero-pads the index so lexical key order is numeric cell order.
func runCellKey(runID string, index int) string {
	return fmt.Sprintf("%s/c/%08d", runID, index)
}

// openRunJournal prepares the store-backed run journal per Config. With
// Resume and a persisted header that matches this campaign, the journaled
// cells preload into the cell map exactly like a file resume; otherwise any
// stale record under this run ID is dropped and a fresh identity header is
// written durably, so the next resume can verify the journal belongs here.
func (c *Coordinator) openRunJournal() error {
	ps := c.cfg.Persist
	if ps == nil {
		return nil
	}
	id := c.cfg.RunID
	if c.cfg.Resume {
		raw, ok, err := ps.Get(runNS, id+"/header")
		if err != nil {
			return err
		}
		if ok {
			var h campaign.Header
			if err := json.Unmarshal(raw, &h); err != nil {
				return fmt.Errorf("coord: run %s: corrupt persisted header: %w", id, err)
			}
			if err := h.Matches(c.ccfg); err != nil {
				return fmt.Errorf("coord: run %s: %w (use a fresh run ID to start over)", id, err)
			}
			all, err := ps.Load(runNS)
			if err != nil {
				return err
			}
			prefix := id + "/c/"
			n := 0
			c.mu.Lock()
			for k, v := range all {
				if !strings.HasPrefix(k, prefix) {
					continue
				}
				var cell campaign.Cell
				if err := json.Unmarshal(v, &cell); err != nil {
					continue // a corrupt cell just gets recomputed
				}
				if _, dup := c.cells[cell.Index]; !dup {
					c.cells[cell.Index] = cell
					c.cellsDone++
					n++
				}
			}
			c.mu.Unlock()
			c.logf("coord: resuming run %s from store: %d journaled cells", id, n)
			return nil
		}
	}
	if err := ps.DeletePrefix(runNS, id+"/"); err != nil {
		return err
	}
	b, err := json.Marshal(c.header)
	if err != nil {
		return err
	}
	return ps.PutDurable(runNS, id+"/header", b)
}

// dispatchFleet runs the pending shards through the elastic fleet: wait for
// the worker quorum, put the shards on the pull queue, and fold verified
// completions into the cell map as they arrive. Lease expiry, stealing, and
// retirement all happen inside the manager; from here a dead worker is just
// a shard that comes back from someone else.
func (c *Coordinator) dispatchFleet(ctx context.Context, pending []int, cw *checkpointFile) error {
	m := c.cfg.Fleet
	if n := c.cfg.MinWorkers; m.ActiveWorkers() < n {
		c.logf("coord: waiting for %d fleet workers (have %d)", n, m.ActiveWorkers())
		if err := m.WaitWorkers(ctx, n); err != nil {
			return fmt.Errorf("coord: waiting for %d workers: %w", n, err)
		}
	}
	run, err := m.StartRun(fleet.RunConfig{
		Spec:        c.cfg.Spec,
		Shards:      c.shards,
		Pending:     pending,
		Header:      c.header,
		CellCount:   len(c.specs),
		MaxAttempts: c.cfg.MaxAttempts,
		Trace:       c.cfg.Trace.ID(),
	})
	if err != nil {
		return err
	}
	defer run.End()
	c.mu.Lock()
	c.fleetRun = run
	c.mu.Unlock()
	defer func() {
		c.mu.Lock()
		c.fleetRun = nil
		c.mu.Unlock()
	}()
	c.logf("coord: %d shards queued for the fleet (%d workers active)",
		len(pending), m.ActiveWorkers())

	// The ticker drives lease/heartbeat expiry while every worker is busy
	// (or gone): worker traffic expires lazily, a silent fleet would not.
	tick := m.HeartbeatInterval() / 2
	if lt := m.LeaseTTL() / 4; lt < tick {
		tick = lt
	}
	if tick < 50*time.Millisecond {
		tick = 50 * time.Millisecond
	}
	ticker := time.NewTicker(tick)
	defer ticker.Stop()

	remaining := len(pending)
	for remaining > 0 {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-ticker.C:
			m.Tick()
		case d := <-run.Completions():
			if d.Err != nil {
				return d.Err
			}
			if err := c.recordCells(d.K, d.Cells, cw); err != nil {
				return err
			}
			c.mDispatched.Inc()
			c.mShardSeconds.Observe(d.Elapsed.Seconds())
			c.cfg.Trace.AddSpan(fmt.Sprintf("shard %d/%d %s", d.K, c.shards, d.Worker),
				time.Now().Add(-d.Elapsed), d.Elapsed)
			c.setShardState(d.K, func(s *ShardProgress) {
				s.State, s.Worker = "done", d.Worker
			})
			remaining--
		}
	}
	return nil
}

// dispatch fans the pending shards out over the worker pool and collects
// the results, reassigning the shards of retired workers.
func (c *Coordinator) dispatch(ctx context.Context, pending []int, cw *checkpointFile) error {
	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	queue := make(chan task, c.shards) // never more than c.shards outstanding
	results := make(chan outcome)
	var wg sync.WaitGroup
	for i := range c.cfg.Workers {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			cl := client.New(c.cfg.Workers[i])
			cl.Logf = c.cfg.Logf // surfaces "subscribed to events" / fallback notes
			cl.Trace = c.cfg.Trace.ID()
			for t := range queue {
				if wait := time.Until(t.notBefore); wait > 0 {
					// Honor the backoff of a throttled requeue; a cancelled
					// run falls through and fails fast inside runShard.
					select {
					case <-runCtx.Done():
					case <-time.After(wait):
					}
				}
				o := c.runShard(runCtx, cl, i, t)
				results <- o
				if o.dead {
					return // retired: stop pulling tasks
				}
			}
		}(i)
	}
	for _, k := range pending {
		queue <- task{k: k, attempts: 1}
	}

	live := len(c.cfg.Workers)
	remaining := len(pending)
	var runErr error
	for remaining > 0 && runErr == nil {
		o := <-results
		if o.dead {
			live--
			c.setWorkerState(o.worker, "dead")
			c.logf("coord: worker %s retired: %v", c.cfg.Workers[o.worker], o.err)
		}
		if o.err != nil {
			if ctx.Err() != nil {
				runErr = ctx.Err()
				break
			}
			if o.throttled && o.t.throttles < maxThrottleRetries {
				// The worker is alive and asked for backoff: requeue without
				// burning the attempt budget, delayed per its Retry-After.
				c.setShardState(o.t.k, func(s *ShardProgress) {
					s.State, s.Worker, s.Job = "pending", "", ""
				})
				c.mThrottled.Inc()
				c.logf("coord: shard %d/%d throttled, retrying in %v", o.t.k, c.shards, o.retryAfter)
				queue <- task{
					k: o.t.k, attempts: o.t.attempts, throttles: o.t.throttles + 1,
					notBefore: time.Now().Add(o.retryAfter),
				}
				continue
			}
			switch {
			case o.t.attempts >= c.cfg.MaxAttempts:
				runErr = fmt.Errorf("coord: shard %d/%d failed after %d attempts: %w",
					o.t.k, c.shards, o.t.attempts, o.err)
			case live == 0:
				runErr = fmt.Errorf("coord: no live workers left (shard %d/%d pending): %w",
					o.t.k, c.shards, o.err)
			default:
				c.setShardState(o.t.k, func(s *ShardProgress) {
					s.State, s.Worker, s.Job = "pending", "", ""
				})
				c.mRetries.Inc()
				c.logf("coord: requeueing shard %d/%d (attempt %d): %v", o.t.k, c.shards, o.t.attempts, o.err)
				queue <- task{k: o.t.k, attempts: o.t.attempts + 1}
			}
			continue
		}
		if err := c.recordCells(o.t.k, o.cells, cw); err != nil {
			runErr = err
			continue
		}
		c.setShardState(o.t.k, func(s *ShardProgress) { s.State = "done" })
		remaining--
	}
	cancel() // abort in-flight remote waits before draining
	close(queue)
	go func() { wg.Wait(); close(results) }()
	for range results {
		// Drain outcomes of workers that were mid-shard when the run ended.
	}
	return runErr
}

// runShard drives one shard on one worker: submit, wait, fetch, verify.
func (c *Coordinator) runShard(ctx context.Context, cl *client.Client, worker int, t task) outcome {
	start := time.Now()
	c.mDispatched.Inc()
	spec := c.cfg.Spec
	spec.Shard = fmt.Sprintf("%d/%d", t.k, c.shards)
	c.setShardState(t.k, func(s *ShardProgress) {
		s.State, s.Worker, s.Job, s.Attempts = "running", cl.Base, "", t.attempts
	})

	j, err := cl.Submit(ctx, spec)
	if err != nil {
		return c.classify(cl, worker, t, fmt.Errorf("submit: %w", err))
	}
	id := j.ID // j is zeroed on a failed Wait; keep the ID for messages
	c.setShardState(t.k, func(s *ShardProgress) { s.Job = id })
	c.logf("coord: shard %s -> %s as job %s", spec.Shard, cl.Base, id)

	j, err = cl.Wait(ctx, id, c.cfg.Poll)
	if err != nil {
		if ctx.Err() != nil {
			// Best effort: don't leave the remote job burning CPU.
			cancelCtx, cancel := context.WithTimeout(context.Background(), c.cfg.ProbeTimeout)
			cl.Cancel(cancelCtx, id) //nolint:errcheck // the worker may be gone with the run
			cancel()
		}
		return c.classify(cl, worker, t, fmt.Errorf("wait for job %s: %w", id, err))
	}
	if j.State != string(jobs.Done) {
		return c.classify(cl, worker, t, fmt.Errorf("job %s finished %s: %s", id, j.State, j.Error))
	}
	res, err := cl.Result(ctx, id)
	if err != nil {
		return c.classify(cl, worker, t, fmt.Errorf("fetch result of job %s: %w", id, err))
	}
	// The identity guard: a worker restart reuses job IDs, so never merge a
	// result that does not prove it belongs to this campaign.
	if err := res.Header.Equal(c.header); err != nil {
		return c.classify(cl, worker, t, fmt.Errorf("job %s: %w", id, err))
	}
	for _, cell := range res.Cells {
		if cell.Index < 0 || cell.Index >= len(c.specs) || cell.Index%c.shards != t.k-1 {
			return c.classify(cl, worker, t,
				fmt.Errorf("job %s returned cell %d outside shard %s", id, cell.Index, spec.Shard))
		}
	}
	elapsed := time.Since(start)
	c.mShardSeconds.Observe(elapsed.Seconds())
	c.cfg.Trace.AddSpan(fmt.Sprintf("shard %d/%d %s", t.k, c.shards, cl.Base), start, elapsed)
	return outcome{t: t, worker: worker, cells: res.Cells}
}

// classify turns a shard failure into an outcome, probing the worker's
// health to decide whether it should be retired: failures with a dead
// health endpoint retire the worker, everything else leaves it in the pool
// for the retry. A 429 — from the worker's own rate limiter — is proof of
// life, never grounds for retirement, whether it struck the shard request
// or the probe itself.
func (c *Coordinator) classify(cl *client.Client, worker int, t task, err error) outcome {
	o := outcome{t: t, worker: worker, err: err}
	if backoff, ok := throttleBackoff(err, c.cfg.Poll); ok {
		o.throttled, o.retryAfter = true, backoff
		return o
	}
	probeCtx, cancel := context.WithTimeout(context.Background(), c.cfg.ProbeTimeout)
	defer cancel()
	if probeErr := cl.Health(probeCtx); probeErr != nil {
		if backoff, ok := throttleBackoff(probeErr, c.cfg.Poll); ok {
			o.throttled, o.retryAfter = true, backoff
		} else {
			o.dead = true
		}
	}
	return o
}

// throttleBackoff reports whether the error is the worker's rate limiter
// answering 429 — an alive worker asking for backoff — and for how long
// (the Retry-After header, floored at the poll pacing).
func throttleBackoff(err error, floor time.Duration) (time.Duration, bool) {
	var apiErr *client.APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusTooManyRequests {
		return 0, false
	}
	backoff := apiErr.RetryAfter
	if backoff < floor {
		backoff = floor
	}
	return backoff, true
}

// shardCovered reports whether every cell of shard k is already recorded.
func (c *Coordinator) shardCovered(k int) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	sh := campaign.Shard{K: k, N: c.shards}
	for _, spec := range c.specs {
		if !sh.Includes(spec.Index) {
			continue
		}
		if _, ok := c.cells[spec.Index]; !ok {
			return false
		}
	}
	return true
}

// recordCells folds a fetched shard into the cell map, appending the cells
// not already persisted to the checkpoint and firing OnCell for each.
func (c *Coordinator) recordCells(k int, cells []campaign.Cell, cw *checkpointFile) error {
	c.mu.Lock()
	var fresh []campaign.Cell
	for _, cell := range cells {
		if _, ok := c.cells[cell.Index]; ok {
			continue
		}
		c.cells[cell.Index] = cell
		c.cellsDone++
		fresh = append(fresh, cell)
	}
	c.mu.Unlock()
	for _, cell := range fresh {
		if cw != nil {
			if err := cw.writer.WriteCell(cell); err != nil {
				return fmt.Errorf("coord: checkpoint: %w", err)
			}
		}
		if ps := c.cfg.Persist; ps != nil {
			// Best-effort: a lost journal record only means recomputing the
			// cell after a crash, never a wrong result.
			if b, err := json.Marshal(cell); err == nil {
				if err := ps.Put(runNS, runCellKey(c.cfg.RunID, cell.Index), b); err != nil {
					c.logf("coord: run journal: %v", err)
				}
			}
		}
		if c.cfg.OnCell != nil {
			c.cfg.OnCell(cell)
		}
	}
	c.logf("coord: shard %d/%d complete (%d cells, %d new)", k, c.shards, len(cells), len(fresh))
	return nil
}

// setShardState applies one shard transition and fires the OnShard observer
// with the post-transition snapshot, outside the lock.
func (c *Coordinator) setShardState(k int, mut func(*ShardProgress)) {
	c.mu.Lock()
	mut(&c.shardStat[k-1])
	snap := c.shardStat[k-1]
	fn := c.cfg.OnShard
	c.mu.Unlock()
	if fn != nil {
		fn(snap)
	}
}

func (c *Coordinator) setWorkerState(i int, state string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.workers[i].State = state
}

// result assembles the merged full-factorial result from the recorded cells
// and verifies it is complete.
func (c *Coordinator) result() (*campaign.Result, error) {
	c.mu.Lock()
	res := &campaign.Result{Algos: append([]string(nil), c.ccfg.Algos...)}
	for _, cell := range c.cells {
		res.Cells = append(res.Cells, cell)
	}
	c.mu.Unlock()
	sort.Slice(res.Cells, func(i, j int) bool { return res.Cells[i].Index < res.Cells[j].Index })
	for _, cell := range res.Cells {
		res.Total += cell.Runs
	}
	if err := res.Complete(len(c.specs)); err != nil {
		return nil, err
	}
	return res, nil
}

// checkpointFile bundles the JSONL writer with its backing file.
type checkpointFile struct {
	f      *os.File
	writer *campaign.CheckpointWriter
}

func (cf *checkpointFile) sync() error { return cf.writer.Sync() }

// openCheckpoint prepares the local checkpoint per Config: fresh, resumed
// (with the torn tail cut and the persisted cells preloaded), or disabled.
// The returned close function is safe to call on every path.
func (c *Coordinator) openCheckpoint() (*checkpointFile, func(), error) {
	if c.cfg.Checkpoint == "" {
		return nil, func() {}, nil
	}
	if c.cfg.Resume {
		f, err := os.Open(c.cfg.Checkpoint)
		switch {
		case errors.Is(err, fs.ErrNotExist):
			// Nothing to resume: fall through to a fresh checkpoint.
		case err != nil:
			return nil, nil, err
		default:
			cp, err := campaign.LoadCheckpoint(f)
			f.Close()
			if err != nil {
				return nil, nil, fmt.Errorf("%s: %w", c.cfg.Checkpoint, err)
			}
			if err := cp.Header.Matches(c.ccfg); err != nil {
				return nil, nil, fmt.Errorf("%s: %w (rerun without resume to start over)", c.cfg.Checkpoint, err)
			}
			wf, err := os.OpenFile(c.cfg.Checkpoint, os.O_WRONLY|os.O_APPEND, 0o644)
			if err != nil {
				return nil, nil, err
			}
			// Cut a torn final record before appending, or the first new
			// record would be concatenated onto it and lost with it.
			if err := wf.Truncate(cp.ValidSize); err != nil {
				wf.Close()
				return nil, nil, err
			}
			for _, cell := range cp.Cells {
				c.cells[cell.Index] = cell
			}
			c.cellsDone = len(c.cells)
			c.logf("coord: resuming %s: %d cells already done", c.cfg.Checkpoint, len(cp.Cells))
			cf := &checkpointFile{f: wf, writer: campaign.ResumeCheckpointWriter(wf)}
			return cf, func() { wf.Close() }, nil
		}
	}
	f, err := os.Create(c.cfg.Checkpoint)
	if err != nil {
		return nil, nil, err
	}
	cw, err := campaign.NewCheckpointWriter(f, c.ccfg)
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	return &checkpointFile{f: f, writer: cw}, func() { f.Close() }, nil
}
