package api

import (
	"context"
	"encoding/json"
	"net/http"
	"strconv"
	"strings"
	"time"

	"repro/internal/campaign"
	"repro/internal/jobs"
)

// Job surface: long-running campaigns run asynchronously on the server's
// job engine instead of blocking an HTTP handler. POST launches, GET polls,
// DELETE cancels, and /result serves the aggregated summary once done —
// optionally merged with the results of other (shard) jobs.

// jobInfo is the JSON description of one job.
type jobInfo struct {
	ID       string      `json:"id"`
	Kind     string      `json:"kind"`
	State    string      `json:"state"`
	Progress jobProgress `json:"progress"`
	Error    string      `json:"error,omitempty"`
	Created  time.Time   `json:"created"`
	Started  *time.Time  `json:"started,omitempty"`
	Finished *time.Time  `json:"finished,omitempty"`
}

type jobProgress struct {
	Done  int `json:"done"`
	Total int `json:"total"`
}

func infoOfJob(j *jobs.Job) jobInfo {
	st := j.Status()
	info := jobInfo{
		ID: st.ID, Kind: st.Kind, State: string(st.State),
		Progress: jobProgress{Done: st.Done, Total: st.Total},
		Error:    st.Err,
		Created:  st.Created,
	}
	if !st.Started.IsZero() {
		info.Started = &st.Started
	}
	if !st.Finished.IsZero() {
		info.Finished = &st.Finished
	}
	return info
}

func (s *Server) job(w http.ResponseWriter, r *http.Request) (*jobs.Job, bool) {
	id := r.PathValue("id")
	j, ok := s.jobs.Get(id)
	if !ok {
		writeError(w, http.StatusNotFound, "no job %q", id)
		return nil, false
	}
	return j, true
}

// createJob launches a campaign from a JSON spec and answers 202 with the
// job's initial state; the Location header points at the poll URL.
func (s *Server) createJob(w http.ResponseWriter, r *http.Request) {
	body := http.MaxBytesReader(w, r.Body, maxUploadBytes)
	defer body.Close()
	var spec jobs.CampaignSpec
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, "bad job spec: %v", err)
		return
	}
	j, err := jobs.SubmitCampaign(s.jobs, spec)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	w.Header().Set("Location", "/api/v1/jobs/"+j.ID())
	writeJSON(w, http.StatusAccepted, infoOfJob(j))
}

func (s *Server) listJobs(w http.ResponseWriter, _ *http.Request) {
	list := s.jobs.List()
	infos := make([]jobInfo, len(list))
	for i, j := range list {
		infos[i] = infoOfJob(j)
	}
	writeJSON(w, http.StatusOK, map[string]any{"jobs": infos})
}

// maxJobWait caps the ?wait= long-poll so a stuck client cannot pin a
// handler goroutine forever.
const maxJobWait = time.Minute

// maybeWait honors the ?wait= long-poll parameter on e: it blocks — via
// the engine's wait primitive, not a sleep loop — until the job reaches a
// terminal state or the duration elapses. It reports false after answering
// a malformed duration with a 400.
func (s *Server) maybeWait(w http.ResponseWriter, r *http.Request, e *jobs.Engine, j *jobs.Job) bool {
	raw := r.URL.Query().Get("wait")
	if raw == "" {
		return true
	}
	d, err := time.ParseDuration(raw)
	if err != nil || d < 0 {
		writeError(w, http.StatusBadRequest, "bad wait %q (want a duration, e.g. 10s)", raw)
		return false
	}
	if d > maxJobWait {
		d = maxJobWait
	}
	ctx, cancel := context.WithTimeout(r.Context(), d)
	defer cancel()
	e.Wait(ctx, j.ID()) //nolint:errcheck // timeout just means "answer with the current state"
	return true
}

// getJob reports a job's state. ?wait=10s long-polls until the job is
// terminal or the duration elapses, then answers with the current state
// either way. Coordinators polling many remote workers use this to learn
// of shard completion within one round trip.
func (s *Server) getJob(w http.ResponseWriter, r *http.Request) {
	j, ok := s.job(w, r)
	if !ok {
		return
	}
	if !s.maybeWait(w, r, s.jobs, j) {
		return
	}
	writeJSON(w, http.StatusOK, infoOfJob(j))
}

// cancelJob requests cancellation; cancelling a terminal job is a no-op.
// The response reports the state after the request took effect.
func (s *Server) cancelJob(w http.ResponseWriter, r *http.Request) {
	j, ok := s.job(w, r)
	if !ok {
		return
	}
	j.Cancel()
	writeJSON(w, http.StatusOK, infoOfJob(j))
}

// campaignResultJSON is the aggregated campaign summary served once a job
// is done: per-algorithm win totals, the per-cell table (as data and as the
// rendered text table), and the corner cases over the threshold.
type campaignResultJSON struct {
	// Header is the campaign identity the job ran under — what remote
	// coordinators verify before stitching shard results together.
	Header campaign.Header `json:"header"`
	Algos  []string        `json:"algos"`
	Total  int             `json:"total"`
	Wins   map[string]int  `json:"wins"`
	Ties   int             `json:"ties"`
	Cells  []campaign.Cell `json:"cells"`
	// Merged lists the job IDs aggregated into this summary (the job
	// itself plus any ?merge= shard jobs).
	Merged      []string         `json:"merged"`
	CornerCases []cornerCaseJSON `json:"corner_cases"`
	Threshold   float64          `json:"threshold"`
	Table       string           `json:"table"`
}

type cornerCaseJSON struct {
	Cell      string  `json:"cell"`
	MaxSpread float64 `json:"max_spread"`
}

// jobResult serves the summary of a Done campaign job. ?merge=j2,j3 folds
// in the results of other completed campaign jobs — the REST way to stitch
// a shard set back together. ?threshold= tunes the corner-case cut (default
// 1.2, the campaign command's default).
func (s *Server) jobResult(w http.ResponseWriter, r *http.Request) {
	j, ok := s.job(w, r)
	if !ok {
		return
	}
	st := j.Status()
	switch st.State {
	case jobs.Done:
	case jobs.Failed:
		writeError(w, http.StatusInternalServerError, "job %s failed: %s", st.ID, st.Err)
		return
	default:
		writeError(w, http.StatusConflict, "job %s is %s", st.ID, st.State)
		return
	}
	out0, err := jobs.CampaignResult(j)
	if err != nil {
		writeError(w, http.StatusConflict, "%v", err)
		return
	}

	parts := []*campaign.Result{out0.Result}
	merged := []string{st.ID}
	if raw := r.URL.Query().Get("merge"); raw != "" {
		for _, id := range strings.Split(raw, ",") {
			id = strings.TrimSpace(id)
			if id == "" {
				continue
			}
			other, ok := s.jobs.Get(id)
			if !ok {
				writeError(w, http.StatusNotFound, "no job %q", id)
				return
			}
			otherOut, err := jobs.CampaignResult(other)
			if err != nil {
				writeError(w, http.StatusConflict, "merge: %v", err)
				return
			}
			// Shards of one campaign share the identity header; refusing a
			// mismatch keeps seeds/configs from being stitched together.
			if err := otherOut.Header.Equal(out0.Header); err != nil {
				writeError(w, http.StatusConflict, "merge %s: %v", id, err)
				return
			}
			parts = append(parts, otherOut.Result)
			merged = append(merged, id)
		}
	}
	full, err := campaign.Merge(parts...)
	if err != nil {
		writeError(w, http.StatusConflict, "%v", err)
		return
	}
	writeCampaignSummary(w, r, out0.Header, full, merged)
}

// writeCampaignSummary renders the aggregated summary of a campaign result —
// shared between the per-job result endpoint and the coordinated-campaign
// surface. ?threshold= tunes the corner-case cut.
func writeCampaignSummary(w http.ResponseWriter, r *http.Request, header campaign.Header, full *campaign.Result, merged []string) {
	threshold := 1.2
	if raw := r.URL.Query().Get("threshold"); raw != "" {
		var err error
		threshold, err = strconv.ParseFloat(raw, 64)
		if err != nil {
			writeError(w, http.StatusBadRequest, "bad threshold %q", raw)
			return
		}
	}

	wins, ties := full.Summary()
	out := campaignResultJSON{
		Header:    header,
		Algos:     full.Algos,
		Total:     full.Total,
		Wins:      map[string]int{},
		Ties:      ties,
		Cells:     full.Cells,
		Merged:    merged,
		Threshold: threshold,
	}
	for i, a := range full.Algos {
		out.Wins[a] = wins[i]
	}
	for _, c := range full.CornerCases(threshold) {
		out.CornerCases = append(out.CornerCases, cornerCaseJSON{Cell: c.Key(), MaxSpread: c.MaxSpread})
	}
	var table strings.Builder
	if err := full.WriteTable(&table); err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	out.Table = table.String()
	writeJSON(w, http.StatusOK, out)
}
