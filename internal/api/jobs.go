package api

import (
	"encoding/json"
	"net/http"
	"strconv"
	"strings"
	"time"

	"repro/internal/campaign"
	"repro/internal/jobs"
)

// Job surface: long-running campaigns run asynchronously on the server's
// job engine instead of blocking an HTTP handler. POST launches, GET polls,
// DELETE cancels, and /result serves the aggregated summary once done —
// optionally merged with the results of other (shard) jobs.

// jobInfo is the JSON description of one job.
type jobInfo struct {
	ID       string      `json:"id"`
	Kind     string      `json:"kind"`
	State    string      `json:"state"`
	Progress jobProgress `json:"progress"`
	Error    string      `json:"error,omitempty"`
	Created  time.Time   `json:"created"`
	Started  *time.Time  `json:"started,omitempty"`
	Finished *time.Time  `json:"finished,omitempty"`
}

type jobProgress struct {
	Done  int `json:"done"`
	Total int `json:"total"`
}

func infoOfJob(j *jobs.Job) jobInfo {
	st := j.Status()
	info := jobInfo{
		ID: st.ID, Kind: st.Kind, State: string(st.State),
		Progress: jobProgress{Done: st.Done, Total: st.Total},
		Error:    st.Err,
		Created:  st.Created,
	}
	if !st.Started.IsZero() {
		info.Started = &st.Started
	}
	if !st.Finished.IsZero() {
		info.Finished = &st.Finished
	}
	return info
}

func (s *Server) job(w http.ResponseWriter, r *http.Request) (*jobs.Job, bool) {
	id := r.PathValue("id")
	j, ok := s.jobs.Get(id)
	if !ok {
		writeError(w, http.StatusNotFound, "job_not_found", "no job %q", id)
		return nil, false
	}
	return j, true
}

// createJob launches a campaign from a JSON spec and answers 202 with the
// job's initial state; the Location header points at the poll URL.
func (s *Server) createJob(w http.ResponseWriter, r *http.Request) {
	body := http.MaxBytesReader(w, r.Body, maxUploadBytes)
	defer body.Close()
	var spec jobs.CampaignSpec
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, "bad_spec", "bad job spec: %v", err)
		return
	}
	j, err := jobs.SubmitCampaign(s.jobs, spec)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad_spec", "%v", err)
		return
	}
	w.Header().Set("Location", "/api/v1/jobs/"+j.ID())
	writeJSON(w, http.StatusAccepted, infoOfJob(j))
}

// listJobs lists the engine's jobs in submission order (a stable order:
// IDs are minted monotonically). ?state= and ?kind= filter before
// pagination, so total counts the matches, not the whole engine.
func (s *Server) listJobs(w http.ResponseWriter, r *http.Request) {
	pg, ok := parsePage(w, r)
	if !ok {
		return
	}
	q := r.URL.Query()
	state, kind := q.Get("state"), q.Get("kind")
	if state != "" && !validJobState(state) {
		writeError(w, http.StatusBadRequest, "bad_filter",
			"unknown state %q (want pending, running, done, failed, or cancelled)", state)
		return
	}
	var infos []jobInfo
	for _, j := range s.jobs.List() {
		info := infoOfJob(j)
		if (state == "" || info.State == state) && (kind == "" || info.Kind == kind) {
			infos = append(infos, info)
		}
	}
	total := len(infos)
	infos = pageSlice(pg, infos)
	if infos == nil {
		infos = []jobInfo{}
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"jobs": infos, "total": total,
		"limit": pg.limit, "offset": pg.offset,
	})
}

func validJobState(s string) bool {
	switch jobs.State(s) {
	case jobs.Pending, jobs.Running, jobs.Done, jobs.Failed, jobs.Cancelled:
		return true
	}
	return false
}

// getJob reports a job's state. ?wait=10s long-polls until the job is
// terminal or the duration elapses, then answers with the current state
// either way. Coordinators polling many remote workers use this to learn
// of shard completion within one round trip.
func (s *Server) getJob(w http.ResponseWriter, r *http.Request) {
	j, ok := s.job(w, r)
	if !ok {
		return
	}
	if !s.maybeWait(w, r, s.jobs, j) {
		return
	}
	writeJSON(w, http.StatusOK, infoOfJob(j))
}

// cancelJob requests cancellation; cancelling a terminal job is a no-op.
// The response reports the state after the request took effect.
func (s *Server) cancelJob(w http.ResponseWriter, r *http.Request) {
	j, ok := s.job(w, r)
	if !ok {
		return
	}
	j.Cancel()
	writeJSON(w, http.StatusOK, infoOfJob(j))
}

// campaignResultJSON is the aggregated campaign summary served once a job
// is done: per-algorithm win totals, the per-cell table (as data and as the
// rendered text table), and the corner cases over the threshold.
type campaignResultJSON struct {
	// Header is the campaign identity the job ran under — what remote
	// coordinators verify before stitching shard results together.
	Header campaign.Header `json:"header"`
	Algos  []string        `json:"algos"`
	Total  int             `json:"total"`
	Wins   map[string]int  `json:"wins"`
	Ties   int             `json:"ties"`
	Cells  []campaign.Cell `json:"cells"`
	// Merged lists the job IDs aggregated into this summary (the job
	// itself plus any ?merge= shard jobs).
	Merged      []string         `json:"merged"`
	CornerCases []cornerCaseJSON `json:"corner_cases"`
	Threshold   float64          `json:"threshold"`
	Table       string           `json:"table"`
}

type cornerCaseJSON struct {
	Cell      string  `json:"cell"`
	MaxSpread float64 `json:"max_spread"`
}

// jobResult serves the summary of a Done campaign job. ?merge=j2,j3 folds
// in the results of other completed campaign jobs — the REST way to stitch
// a shard set back together. ?threshold= tunes the corner-case cut (default
// 1.2, the campaign command's default).
func (s *Server) jobResult(w http.ResponseWriter, r *http.Request) {
	j, ok := s.job(w, r)
	if !ok {
		return
	}
	st := j.Status()
	switch st.State {
	case jobs.Done:
	case jobs.Failed:
		writeError(w, http.StatusInternalServerError, "job_failed", "job %s failed: %s", st.ID, st.Err)
		return
	default:
		writeError(w, http.StatusConflict, "job_not_terminal", "job %s is %s", st.ID, st.State)
		return
	}
	out0, err := jobs.CampaignResult(j)
	if err != nil {
		writeError(w, http.StatusConflict, "result_unavailable", "%v", err)
		return
	}

	parts := []*campaign.Result{out0.Result}
	merged := []string{st.ID}
	if raw := r.URL.Query().Get("merge"); raw != "" {
		for _, id := range strings.Split(raw, ",") {
			id = strings.TrimSpace(id)
			if id == "" {
				continue
			}
			other, ok := s.jobs.Get(id)
			if !ok {
				writeError(w, http.StatusNotFound, "job_not_found", "no job %q", id)
				return
			}
			otherOut, err := jobs.CampaignResult(other)
			if err != nil {
				writeError(w, http.StatusConflict, "result_unavailable", "merge: %v", err)
				return
			}
			// Shards of one campaign share the identity header; refusing a
			// mismatch keeps seeds/configs from being stitched together.
			if err := otherOut.Header.Equal(out0.Header); err != nil {
				writeError(w, http.StatusConflict, "campaign_header_mismatch", "merge %s: %v", id, err)
				return
			}
			parts = append(parts, otherOut.Result)
			merged = append(merged, id)
		}
	}
	full, err := campaign.Merge(parts...)
	if err != nil {
		writeError(w, http.StatusConflict, "merge_conflict", "%v", err)
		return
	}
	writeCampaignSummary(w, r, out0.Header, full, merged)
}

// writeCampaignSummary renders the aggregated summary of a campaign result —
// shared between the per-job result endpoint and the coordinated-campaign
// surface. ?threshold= tunes the corner-case cut.
func writeCampaignSummary(w http.ResponseWriter, r *http.Request, header campaign.Header, full *campaign.Result, merged []string) {
	threshold := 1.2
	if raw := r.URL.Query().Get("threshold"); raw != "" {
		var err error
		threshold, err = strconv.ParseFloat(raw, 64)
		if err != nil {
			writeError(w, http.StatusBadRequest, "bad_threshold", "bad threshold %q", raw)
			return
		}
	}

	wins, ties := full.Summary()
	out := campaignResultJSON{
		Header:    header,
		Algos:     full.Algos,
		Total:     full.Total,
		Wins:      map[string]int{},
		Ties:      ties,
		Cells:     full.Cells,
		Merged:    merged,
		Threshold: threshold,
	}
	for i, a := range full.Algos {
		out.Wins[a] = wins[i]
	}
	for _, c := range full.CornerCases(threshold) {
		out.CornerCases = append(out.CornerCases, cornerCaseJSON{Cell: c.Key(), MaxSpread: c.MaxSpread})
	}
	var table strings.Builder
	if err := full.WriteTable(&table); err != nil {
		writeError(w, http.StatusInternalServerError, "internal", "%v", err)
		return
	}
	out.Table = table.String()
	writeJSON(w, http.StatusOK, out)
}
