// Package api is the versioned REST surface of the tool: a concurrent-safe
// session store, where each session owns one schedule, and a stateless
// read surface (render, export, stats, tasks, meta) mounted at /api/v1/.
//
// Sessions are created by uploading a schedule document (Jedule XML or CSV)
// or generated server-side by running any scheduler registered with
// internal/sched on a described DAG and platform — the first point where
// the viewer and the scheduling pipeline meet. All view parameters (window,
// cluster selection, mode, grayscale, size, format) travel as query
// parameters of each request, so any number of clients can read the same
// session concurrently without interfering.
package api

import (
	"fmt"
	"hash/fnv"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/persist"
	"repro/internal/render"
)

// Session is one schedule held by the server. The schedule pointer is
// swapped atomically under the session lock (Replace supports the legacy
// viewer's reread), and the core.Schedule itself is treated as read-only by
// every API handler, so concurrent renders need no further coordination.
type Session struct {
	ID     string
	Name   string
	Source string // "upload", "generated", "file", "viewer"

	mu      sync.RWMutex
	sched   *core.Schedule    // nil for a recovered session until first access
	idx     *render.TaskIndex // lazy render index of sched; cleared on Replace
	rev     int64             // bumped by Replace; part of the ETag of stateless reads
	fp      uint64            // content fingerprint of the schedule, computed on swap
	summary Summary           // cached schedule shape, served by list/info reads
	recipe  *Recipe           // rebuilds sched after a restart; nil = synthesized on persist

	store      *Store       // owning store; drop notifications on Replace
	lastUse    atomic.Int64 // store clock tick of the last Get (LRU eviction)
	lastAccess atomic.Int64 // wall-clock nanos of the last Get (TTL expiry)
}

// fingerprintOf hashes the schedule's observable content. It anchors the
// ETag of stateless reads: a revision counter alone would repeat across
// server restarts even if the underlying file changed, serving stale 304s.
func fingerprintOf(s *core.Schedule) uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%d|%d|%d", len(s.Clusters), s.TotalHosts(), len(s.Tasks))
	for _, p := range s.Meta {
		fmt.Fprintf(h, "|m:%s=%s", p.Name, p.Value)
	}
	for i := range s.Tasks {
		t := &s.Tasks[i]
		fmt.Fprintf(h, "|%s/%s/%g/%g/%d", t.ID, t.Type, t.Start, t.End, len(t.Allocations))
	}
	return h.Sum64()
}

// Schedule returns the session's current schedule, hydrating a recovered
// session first. Store.Get is the gate that surfaces hydration errors; this
// defensive path degrades to an empty schedule rather than a nil pointer.
func (s *Session) Schedule() *core.Schedule {
	s.mu.RLock()
	sched := s.sched
	s.mu.RUnlock()
	if sched != nil {
		return sched
	}
	s.ensureHydrated() //nolint:errcheck // Get reports hydration failures
	s.mu.RLock()
	sched = s.sched
	s.mu.RUnlock()
	if sched == nil {
		sched = &core.Schedule{}
	}
	return sched
}

// ScheduleWithIndex returns the current schedule together with its render
// task index, building the index on first use and caching it until Replace
// swaps the schedule. The returned pair is always consistent: when a
// concurrent Replace wins the race, the caller gets the schedule it started
// from with a freshly built index rather than a mismatched pair.
func (s *Session) ScheduleWithIndex() (*core.Schedule, *render.TaskIndex) {
	s.mu.RLock()
	sched, idx := s.sched, s.idx
	s.mu.RUnlock()
	if sched == nil {
		sched = s.Schedule()
		s.mu.RLock()
		idx = s.idx
		s.mu.RUnlock()
	}
	if idx == nil {
		idx = render.BuildIndex(sched)
		s.mu.Lock()
		if s.sched == sched && s.idx == nil {
			s.idx = idx
		}
		s.mu.Unlock()
	}
	return sched, idx
}

// Replace swaps in a new schedule (the viewer's fast-reread path) and bumps
// the revision, invalidating cached renders of the old schedule.
func (s *Session) Replace(sched *core.Schedule) {
	fp := fingerprintOf(sched)
	sum := summaryOf(sched)
	s.mu.Lock()
	s.sched = sched
	s.idx = nil
	s.fp = fp
	s.summary = sum
	s.recipe = nil // the old recipe describes the old schedule
	s.rev++
	s.mu.Unlock()
	if s.store != nil {
		s.store.persistSession(s)
		s.store.notifyDrop(s.ID)
		s.store.notifyEvent("replaced", s.ID)
	}
}

// Revision counts how often the session's schedule was replaced.
func (s *Session) Revision() int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.rev
}

// Fingerprint returns the content hash of the current schedule.
func (s *Session) Fingerprint() uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.fp
}

// Summary returns the cached shape of the session's schedule. For a
// recovered, not-yet-hydrated session this is the persisted summary, so
// listing sessions never forces a hydration.
func (s *Session) Summary() Summary {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.summary
}

// Store is the concurrent-safe session registry behind the REST API.
type Store struct {
	mu       sync.RWMutex
	seq      int
	max      int
	ttl      time.Duration
	now      func() time.Time // injectable for TTL tests
	onDrop   func(sessionID string)
	onEvent  func(kind, sessionID string)
	sessions map[string]*Session
	clock    atomic.Int64

	persist         persist.Store // nil = persistence off (the default)
	recovered       atomic.Int64
	hydrationFailed atomic.Int64
	persistErrors   atomic.Int64

	janitorStop chan struct{}
}

// NewStore returns an empty store without a session cap or TTL.
func NewStore() *Store {
	return &Store{sessions: map[string]*Session{}, now: time.Now}
}

// OnDrop registers fn to be called with the ID of every session that leaves
// the store — explicit Delete, LRU eviction, TTL expiry — and of every
// session whose schedule is swapped by Replace. The render cache hooks in
// here to invalidate memoized bodies. fn must not call back into the store.
func (st *Store) OnDrop(fn func(sessionID string)) {
	st.mu.Lock()
	st.onDrop = fn
	st.mu.Unlock()
}

// OnEvent registers fn to be called with every session lifecycle change:
// kind is "created", "replaced", "deleted", "evicted", or "expired". The
// event bus hooks in here. Like OnDrop, fn runs outside the store lock and
// must not call back into the store.
func (st *Store) OnEvent(fn func(kind, sessionID string)) {
	st.mu.Lock()
	st.onEvent = fn
	st.mu.Unlock()
}

// notifyEvent invokes the lifecycle hook outside any store lock.
func (st *Store) notifyEvent(kind string, ids ...string) {
	if len(ids) == 0 {
		return
	}
	st.mu.RLock()
	fn := st.onEvent
	st.mu.RUnlock()
	if fn == nil {
		return
	}
	for _, id := range ids {
		fn(kind, id)
	}
}

// notifyDrop invokes the drop hook outside any store lock.
func (st *Store) notifyDrop(ids ...string) {
	if len(ids) == 0 {
		return
	}
	st.mu.RLock()
	fn := st.onDrop
	st.mu.RUnlock()
	if fn == nil {
		return
	}
	for _, id := range ids {
		fn(id)
	}
}

// SetMaxSessions caps the store at n sessions (0 removes the cap). When an
// Add or Put would exceed the cap, the least recently used session is
// evicted — the API-hardening guard that keeps a long-lived server from
// accumulating uploads without bound. A lowered cap evicts immediately.
func (st *Store) SetMaxSessions(n int) {
	st.mu.Lock()
	st.max = n
	dropped := st.evictLocked()
	st.mu.Unlock()
	st.dropPersisted(dropped...)
	st.notifyDrop(dropped...)
	st.notifyEvent("evicted", dropped...)
}

// SetTTL sets the idle lifetime of sessions: a session not accessed for d is
// expired lazily on its next access and proactively by a janitor goroutine
// that ticks at a fraction of d. SetTTL(0) removes the TTL and stops the
// janitor.
func (st *Store) SetTTL(d time.Duration) {
	st.mu.Lock()
	st.ttl = d
	stop := st.janitorStop
	st.janitorStop = nil
	if d > 0 {
		st.janitorStop = make(chan struct{})
	}
	start := st.janitorStop
	st.mu.Unlock()
	if stop != nil {
		close(stop)
	}
	if start != nil {
		every := d / 4
		if every < time.Second {
			every = time.Second
		}
		go st.janitor(start, every)
	}
}

// TTL returns the configured idle session lifetime (0 = sessions never
// expire).
func (st *Store) TTL() time.Duration {
	st.mu.RLock()
	defer st.mu.RUnlock()
	return st.ttl
}

// Close stops the janitor goroutine, if any. The store remains usable.
func (st *Store) Close() { st.SetTTL(0) }

func (st *Store) janitor(stop chan struct{}, every time.Duration) {
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case <-t.C:
			st.Sweep()
		}
	}
}

// Sweep removes every expired session now and reports how many it dropped.
// The janitor calls it on a tick; tests call it directly.
func (st *Store) Sweep() int {
	st.mu.Lock()
	var dropped []string
	for id, s := range st.sessions {
		if st.expiredLocked(s) {
			delete(st.sessions, id)
			dropped = append(dropped, id)
		}
	}
	st.mu.Unlock()
	st.dropPersisted(dropped...)
	st.notifyDrop(dropped...)
	st.notifyEvent("expired", dropped...)
	return len(dropped)
}

// expiredLocked reports whether the session sat idle past the TTL. Callers
// hold st.mu (read or write).
func (st *Store) expiredLocked(s *Session) bool {
	return st.ttl > 0 && st.now().Sub(time.Unix(0, s.lastAccess.Load())) > st.ttl
}

// touch marks the session as recently used.
func (st *Store) touch(s *Session) {
	s.lastUse.Store(st.clock.Add(1))
	s.lastAccess.Store(st.now().UnixNano())
}

// evictLocked removes least-recently-used sessions until the cap holds,
// returning the evicted IDs so the caller can notify after unlocking.
func (st *Store) evictLocked() []string {
	if st.max <= 0 {
		return nil
	}
	var dropped []string
	for len(st.sessions) > st.max {
		var victim *Session
		for _, s := range st.sessions {
			if victim == nil || s.lastUse.Load() < victim.lastUse.Load() ||
				(s.lastUse.Load() == victim.lastUse.Load() && s.ID < victim.ID) {
				victim = s
			}
		}
		delete(st.sessions, victim.ID)
		dropped = append(dropped, victim.ID)
	}
	return dropped
}

// Add registers a schedule under a fresh generated ID ("s1", "s2", ...).
func (st *Store) Add(name, source string, sched *core.Schedule) *Session {
	return st.AddRecipe(name, source, sched, nil)
}

// AddRecipe is Add with an explicit persistence recipe: how to rebuild the
// schedule after a restart. A nil recipe persists the schedule as canonical
// Jedule XML.
func (st *Store) AddRecipe(name, source string, sched *core.Schedule, rec *Recipe) *Session {
	st.mu.Lock()
	for {
		st.seq++
		id := fmt.Sprintf("s%d", st.seq)
		if _, taken := st.sessions[id]; taken {
			continue // an explicit Put used the ID; keep counting
		}
		s := st.putLocked(id, name, source, sched, rec)
		dropped := st.evictLocked()
		st.mu.Unlock()
		st.persistSession(s)
		st.dropPersisted(dropped...)
		st.notifyDrop(dropped...)
		st.notifyEvent("evicted", dropped...)
		st.notifyEvent("created", s.ID)
		return s
	}
}

// Put registers a schedule under an explicit ID (pre-registered sessions:
// the legacy viewer's "default", jedserve's per-file sessions). It fails on
// an empty or already-taken ID.
func (st *Store) Put(id, name, source string, sched *core.Schedule) (*Session, error) {
	return st.PutRecipe(id, name, source, sched, nil)
}

// PutRecipe is Put with an explicit persistence recipe (see AddRecipe).
func (st *Store) PutRecipe(id, name, source string, sched *core.Schedule, rec *Recipe) (*Session, error) {
	if id == "" {
		return nil, fmt.Errorf("api: empty session id")
	}
	st.mu.Lock()
	if _, taken := st.sessions[id]; taken {
		st.mu.Unlock()
		return nil, fmt.Errorf("api: session %q already exists", id)
	}
	s := st.putLocked(id, name, source, sched, rec)
	dropped := st.evictLocked()
	st.mu.Unlock()
	st.persistSession(s)
	st.dropPersisted(dropped...)
	st.notifyDrop(dropped...)
	st.notifyEvent("evicted", dropped...)
	st.notifyEvent("created", id)
	return s, nil
}

func (st *Store) putLocked(id, name, source string, sched *core.Schedule, rec *Recipe) *Session {
	s := &Session{
		ID: id, Name: name, Source: source,
		sched: sched, fp: fingerprintOf(sched), summary: summaryOf(sched),
		recipe: rec, store: st,
	}
	st.touch(s)
	st.sessions[id] = s
	return s
}

// Get returns the session with the given ID, marking it recently used. A
// session idle past the TTL is expired here (lazy expiry) and reported as
// absent. A recovered session is hydrated here — its first access after a
// restart rebuilds the schedule from the persisted recipe; a session whose
// recipe fails is dropped and counted.
func (st *Store) Get(id string) (*Session, bool) {
	s, ok := st.getLive(id)
	if !ok {
		return nil, false
	}
	if err := s.ensureHydrated(); err != nil {
		st.hydrationFailed.Add(1)
		st.Delete(id)
		return nil, false
	}
	return s, true
}

func (st *Store) getLive(id string) (*Session, bool) {
	st.mu.RLock()
	s, ok := st.sessions[id]
	expired := ok && st.expiredLocked(s)
	if ok && !expired {
		st.touch(s)
	}
	st.mu.RUnlock()
	if !expired {
		return s, ok
	}
	// Upgrade to a write lock and re-check: a concurrent Get may have
	// refreshed the session, or a Delete/Put may have replaced it.
	st.mu.Lock()
	cur, ok := st.sessions[id]
	if ok && cur == s && st.expiredLocked(s) {
		delete(st.sessions, id)
		st.mu.Unlock()
		st.dropPersisted(id)
		st.notifyDrop(id)
		st.notifyEvent("expired", id)
		return nil, false
	}
	if ok {
		st.touch(cur)
	}
	st.mu.Unlock()
	return cur, ok
}

// Delete removes a session, reporting whether it existed.
func (st *Store) Delete(id string) bool {
	st.mu.Lock()
	_, ok := st.sessions[id]
	delete(st.sessions, id)
	st.mu.Unlock()
	if ok {
		st.dropPersisted(id)
		st.notifyDrop(id)
		st.notifyEvent("deleted", id)
	}
	return ok
}

// List returns all live (non-expired) sessions sorted by ID.
func (st *Store) List() []*Session {
	st.mu.RLock()
	defer st.mu.RUnlock()
	out := make([]*Session, 0, len(st.sessions))
	for _, s := range st.sessions {
		if !st.expiredLocked(s) {
			out = append(out, s)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Len returns the number of live (non-expired) sessions.
func (st *Store) Len() int {
	st.mu.RLock()
	defer st.mu.RUnlock()
	n := 0
	for _, s := range st.sessions {
		if !st.expiredLocked(s) {
			n++
		}
	}
	return n
}
