// Package api is the versioned REST surface of the tool: a concurrent-safe
// session store, where each session owns one schedule, and a stateless
// read surface (render, export, stats, tasks, meta) mounted at /api/v1/.
//
// Sessions are created by uploading a schedule document (Jedule XML or CSV)
// or generated server-side by running any scheduler registered with
// internal/sched on a described DAG and platform — the first point where
// the viewer and the scheduling pipeline meet. All view parameters (window,
// cluster selection, mode, grayscale, size, format) travel as query
// parameters of each request, so any number of clients can read the same
// session concurrently without interfering.
package api

import (
	"fmt"
	"hash/fnv"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/core"
)

// Session is one schedule held by the server. The schedule pointer is
// swapped atomically under the session lock (Replace supports the legacy
// viewer's reread), and the core.Schedule itself is treated as read-only by
// every API handler, so concurrent renders need no further coordination.
type Session struct {
	ID     string
	Name   string
	Source string // "upload", "generated", "file", "viewer"

	mu    sync.RWMutex
	sched *core.Schedule
	rev   int64  // bumped by Replace; part of the ETag of stateless reads
	fp    uint64 // content fingerprint of the schedule, computed on swap

	lastUse atomic.Int64 // store clock tick of the last Get (LRU eviction)
}

// fingerprintOf hashes the schedule's observable content. It anchors the
// ETag of stateless reads: a revision counter alone would repeat across
// server restarts even if the underlying file changed, serving stale 304s.
func fingerprintOf(s *core.Schedule) uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%d|%d|%d", len(s.Clusters), s.TotalHosts(), len(s.Tasks))
	for _, p := range s.Meta {
		fmt.Fprintf(h, "|m:%s=%s", p.Name, p.Value)
	}
	for i := range s.Tasks {
		t := &s.Tasks[i]
		fmt.Fprintf(h, "|%s/%s/%g/%g/%d", t.ID, t.Type, t.Start, t.End, len(t.Allocations))
	}
	return h.Sum64()
}

// Schedule returns the session's current schedule.
func (s *Session) Schedule() *core.Schedule {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.sched
}

// Replace swaps in a new schedule (the viewer's fast-reread path) and bumps
// the revision, invalidating cached renders of the old schedule.
func (s *Session) Replace(sched *core.Schedule) {
	fp := fingerprintOf(sched)
	s.mu.Lock()
	defer s.mu.Unlock()
	s.sched = sched
	s.fp = fp
	s.rev++
}

// Revision counts how often the session's schedule was replaced.
func (s *Session) Revision() int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.rev
}

// Fingerprint returns the content hash of the current schedule.
func (s *Session) Fingerprint() uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.fp
}

// Store is the concurrent-safe session registry behind the REST API.
type Store struct {
	mu       sync.RWMutex
	seq      int
	max      int
	sessions map[string]*Session
	clock    atomic.Int64
}

// NewStore returns an empty store without a session cap.
func NewStore() *Store {
	return &Store{sessions: map[string]*Session{}}
}

// SetMaxSessions caps the store at n sessions (0 removes the cap). When an
// Add or Put would exceed the cap, the least recently used session is
// evicted — the API-hardening guard that keeps a long-lived server from
// accumulating uploads without bound. A lowered cap evicts immediately.
func (st *Store) SetMaxSessions(n int) {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.max = n
	st.evictLocked()
}

// touch marks the session as recently used.
func (st *Store) touch(s *Session) {
	s.lastUse.Store(st.clock.Add(1))
}

// evictLocked removes least-recently-used sessions until the cap holds.
func (st *Store) evictLocked() {
	if st.max <= 0 {
		return
	}
	for len(st.sessions) > st.max {
		var victim *Session
		for _, s := range st.sessions {
			if victim == nil || s.lastUse.Load() < victim.lastUse.Load() ||
				(s.lastUse.Load() == victim.lastUse.Load() && s.ID < victim.ID) {
				victim = s
			}
		}
		delete(st.sessions, victim.ID)
	}
}

// Add registers a schedule under a fresh generated ID ("s1", "s2", ...).
func (st *Store) Add(name, source string, sched *core.Schedule) *Session {
	st.mu.Lock()
	defer st.mu.Unlock()
	for {
		st.seq++
		id := fmt.Sprintf("s%d", st.seq)
		if _, taken := st.sessions[id]; taken {
			continue // an explicit Put used the ID; keep counting
		}
		return st.putLocked(id, name, source, sched)
	}
}

// Put registers a schedule under an explicit ID (pre-registered sessions:
// the legacy viewer's "default", jedserve's per-file sessions). It fails on
// an empty or already-taken ID.
func (st *Store) Put(id, name, source string, sched *core.Schedule) (*Session, error) {
	if id == "" {
		return nil, fmt.Errorf("api: empty session id")
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	if _, taken := st.sessions[id]; taken {
		return nil, fmt.Errorf("api: session %q already exists", id)
	}
	return st.putLocked(id, name, source, sched), nil
}

func (st *Store) putLocked(id, name, source string, sched *core.Schedule) *Session {
	s := &Session{ID: id, Name: name, Source: source, sched: sched, fp: fingerprintOf(sched)}
	st.touch(s)
	st.sessions[id] = s
	st.evictLocked()
	return s
}

// Get returns the session with the given ID, marking it recently used.
func (st *Store) Get(id string) (*Session, bool) {
	st.mu.RLock()
	defer st.mu.RUnlock()
	s, ok := st.sessions[id]
	if ok {
		st.touch(s)
	}
	return s, ok
}

// Delete removes a session, reporting whether it existed.
func (st *Store) Delete(id string) bool {
	st.mu.Lock()
	defer st.mu.Unlock()
	_, ok := st.sessions[id]
	delete(st.sessions, id)
	return ok
}

// List returns all sessions sorted by ID.
func (st *Store) List() []*Session {
	st.mu.RLock()
	defer st.mu.RUnlock()
	out := make([]*Session, 0, len(st.sessions))
	for _, s := range st.sessions {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Len returns the number of sessions.
func (st *Store) Len() int {
	st.mu.RLock()
	defer st.mu.RUnlock()
	return len(st.sessions)
}
