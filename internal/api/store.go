// Package api is the versioned REST surface of the tool: a concurrent-safe
// session store, where each session owns one schedule, and a stateless
// read surface (render, export, stats, tasks, meta) mounted at /api/v1/.
//
// Sessions are created by uploading a schedule document (Jedule XML or CSV)
// or generated server-side by running any scheduler registered with
// internal/sched on a described DAG and platform — the first point where
// the viewer and the scheduling pipeline meet. All view parameters (window,
// cluster selection, mode, grayscale, size, format) travel as query
// parameters of each request, so any number of clients can read the same
// session concurrently without interfering.
package api

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/core"
)

// Session is one schedule held by the server. The schedule pointer is
// swapped atomically under the session lock (Replace supports the legacy
// viewer's reread), and the core.Schedule itself is treated as read-only by
// every API handler, so concurrent renders need no further coordination.
type Session struct {
	ID     string
	Name   string
	Source string // "upload", "generated", "file", "viewer"

	mu    sync.RWMutex
	sched *core.Schedule
}

// Schedule returns the session's current schedule.
func (s *Session) Schedule() *core.Schedule {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.sched
}

// Replace swaps in a new schedule (the viewer's fast-reread path).
func (s *Session) Replace(sched *core.Schedule) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.sched = sched
}

// Store is the concurrent-safe session registry behind the REST API.
type Store struct {
	mu       sync.RWMutex
	seq      int
	sessions map[string]*Session
}

// NewStore returns an empty store.
func NewStore() *Store {
	return &Store{sessions: map[string]*Session{}}
}

// Add registers a schedule under a fresh generated ID ("s1", "s2", ...).
func (st *Store) Add(name, source string, sched *core.Schedule) *Session {
	st.mu.Lock()
	defer st.mu.Unlock()
	for {
		st.seq++
		id := fmt.Sprintf("s%d", st.seq)
		if _, taken := st.sessions[id]; taken {
			continue // an explicit Put used the ID; keep counting
		}
		return st.putLocked(id, name, source, sched)
	}
}

// Put registers a schedule under an explicit ID (pre-registered sessions:
// the legacy viewer's "default", jedserve's per-file sessions). It fails on
// an empty or already-taken ID.
func (st *Store) Put(id, name, source string, sched *core.Schedule) (*Session, error) {
	if id == "" {
		return nil, fmt.Errorf("api: empty session id")
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	if _, taken := st.sessions[id]; taken {
		return nil, fmt.Errorf("api: session %q already exists", id)
	}
	return st.putLocked(id, name, source, sched), nil
}

func (st *Store) putLocked(id, name, source string, sched *core.Schedule) *Session {
	s := &Session{ID: id, Name: name, Source: source, sched: sched}
	st.sessions[id] = s
	return s
}

// Get returns the session with the given ID.
func (st *Store) Get(id string) (*Session, bool) {
	st.mu.RLock()
	defer st.mu.RUnlock()
	s, ok := st.sessions[id]
	return s, ok
}

// Delete removes a session, reporting whether it existed.
func (st *Store) Delete(id string) bool {
	st.mu.Lock()
	defer st.mu.Unlock()
	_, ok := st.sessions[id]
	delete(st.sessions, id)
	return ok
}

// List returns all sessions sorted by ID.
func (st *Store) List() []*Session {
	st.mu.RLock()
	defer st.mu.RUnlock()
	out := make([]*Session, 0, len(st.sessions))
	for _, s := range st.sessions {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Len returns the number of sessions.
func (st *Store) Len() int {
	st.mu.RLock()
	defer st.mu.RUnlock()
	return len(st.sessions)
}
