package api

import (
	"context"
	"net/http"
	"strconv"
	"time"

	"repro/internal/jobs"
)

// The shared ?wait= long-poll and limit=/offset= pagination semantics of
// the v1 surface. Jobs and campaigns honor the same wait contract; the
// session and job collections honor the same page contract.

// maxJobWait caps the ?wait= long-poll so a stuck client cannot pin a
// handler goroutine forever.
const maxJobWait = time.Minute

// parseWait extracts the ?wait= duration. ok is false when the parameter is
// absent; a malformed or negative duration is an error.
func parseWait(r *http.Request) (d time.Duration, ok bool, err error) {
	raw := r.URL.Query().Get("wait")
	if raw == "" {
		return 0, false, nil
	}
	d, perr := time.ParseDuration(raw)
	if perr != nil || d < 0 {
		return 0, false, &badWaitError{raw}
	}
	if d > maxJobWait {
		d = maxJobWait
	}
	return d, true, nil
}

type badWaitError struct{ raw string }

func (e *badWaitError) Error() string { return "bad wait " + strconv.Quote(e.raw) }

// maybeWait is the one ?wait= long-poll implementation shared by the job
// and campaign endpoints: it blocks — via the engine's wait primitive, not
// a sleep loop — until the job reaches a terminal state, the (capped)
// duration elapses, or the client disconnects (the request context is the
// wait context, so a gone client frees the handler immediately). It reports
// false after answering a malformed duration with a 400 bad_wait envelope.
func (s *Server) maybeWait(w http.ResponseWriter, r *http.Request, e *jobs.Engine, j *jobs.Job) bool {
	d, ok, err := parseWait(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad_wait",
			"%v (want a duration, e.g. 10s)", err)
		return false
	}
	if !ok {
		return true
	}
	s.mLongPolls.Inc()
	ctx, cancel := context.WithTimeout(r.Context(), d)
	defer cancel()
	e.Wait(ctx, j.ID()) //nolint:errcheck // timeout just means "answer with the current state"
	return true
}

// LongPolls counts the ?wait= long-polls this server answered — the polls
// an event-stream consumer no longer issues. Served on /api/v1/meta.
func (s *Server) LongPolls() int64 { return s.mLongPolls.Value() }

// page is a parsed limit=/offset= pair. limit 0 (the default) means "no
// limit"; offset past the end yields an empty window with total intact.
type page struct {
	limit, offset int
}

// parsePage reads limit= and offset=, answering 400 bad_pagination (and
// reporting ok=false) on non-integer or negative values.
func parsePage(w http.ResponseWriter, r *http.Request) (page, bool) {
	var pg page
	q := r.URL.Query()
	for _, p := range []struct {
		name string
		dst  *int
	}{{"limit", &pg.limit}, {"offset", &pg.offset}} {
		raw := q.Get(p.name)
		if raw == "" {
			continue
		}
		n, err := strconv.Atoi(raw)
		if err != nil || n < 0 {
			writeError(w, http.StatusBadRequest, "bad_pagination",
				"bad %s %q (want a non-negative integer)", p.name, raw)
			return page{}, false
		}
		*p.dst = n
	}
	return pg, true
}

// pageSlice applies the window to items.
func pageSlice[T any](pg page, items []T) []T {
	if pg.offset >= len(items) {
		return nil
	}
	items = items[pg.offset:]
	if pg.limit > 0 && pg.limit < len(items) {
		items = items[:pg.limit]
	}
	return items
}
