package api

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/jedxml"
	"repro/internal/persist"
)

// persistHarness is one "process" of the durable-state tests: a server wired
// to the filesystem store in dir, restartable by stop + startPersistServer.
type persistHarness struct {
	ts    *httptest.Server
	srv   *Server
	store *Store
	ps    persist.Store
}

// startPersistServer boots a server against dir, in the same order jedserve
// runs: open store, register files, recover sessions, recover jobs.
func startPersistServer(t *testing.T, dir, fileDir string) *persistHarness {
	t.Helper()
	ps, err := persist.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	store := NewStore()
	store.SetPersist(ps)
	if fileDir != "" {
		if _, err := RegisterDir(store, fileDir); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := store.RecoverSessions(); err != nil {
		t.Fatal(err)
	}
	srv := NewServer(store)
	if err := srv.EnablePersistence(ps); err != nil {
		t.Fatal(err)
	}
	return &persistHarness{ts: httptest.NewServer(srv.Handler()), srv: srv, store: store, ps: ps}
}

func (h *persistHarness) stop(t *testing.T) {
	t.Helper()
	h.ts.Close()
	h.srv.Close()
	if err := h.ps.Close(); err != nil {
		t.Fatal(err)
	}
}

func rawGet(t *testing.T, url string) (int, http.Header, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, resp.Header, body
}

// writeScheduleFile drops a registrable demo schedule into dir.
func writeScheduleFile(t *testing.T, dir, name string) string {
	t.Helper()
	path := filepath.Join(dir, name)
	var buf bytes.Buffer
	if err := jedxml.Write(&buf, demoSchedule()); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestPersistSessionsSurviveRestart registers all three recipe kinds — a
// file session, an uploaded document, a generated schedule — restarts, and
// asserts the listing, the exported documents, and the render ETags come
// back identical.
func TestPersistSessionsSurviveRestart(t *testing.T) {
	stateDir, fileDir := t.TempDir(), t.TempDir()
	writeScheduleFile(t, fileDir, "demo.jed")

	h1 := startPersistServer(t, stateDir, fileDir)
	upID := createUpload(t, h1.ts, "uploaded")
	code, info := doJSON(t, "POST", h1.ts.URL+"/api/v1/sessions",
		strings.NewReader(`{"algo": "cpa"}`), "application/json")
	if code != 201 {
		t.Fatalf("generate = %d %v", code, info)
	}
	genID := info["id"].(string)

	type capture struct {
		export, render []byte
		etag           string
	}
	snap := map[string]capture{}
	for _, id := range []string{"demo", upID, genID} {
		_, _, export := rawGet(t, h1.ts.URL+"/api/v1/sessions/"+id+"/export?format=jedule")
		rcode, hdr, render := rawGet(t, h1.ts.URL+"/api/v1/sessions/"+id+"/render?format=svg")
		if rcode != 200 {
			t.Fatalf("render %s = %d", id, rcode)
		}
		snap[id] = capture{export: export, render: render, etag: hdr.Get("ETag")}
	}
	h1.stop(t)

	h2 := startPersistServer(t, stateDir, fileDir)
	defer h2.stop(t)
	if got := h2.store.Len(); got != len(snap) {
		t.Fatalf("recovered %d sessions, want %d", got, len(snap))
	}
	for id, want := range snap {
		_, _, export := rawGet(t, h2.ts.URL+"/api/v1/sessions/"+id+"/export?format=jedule")
		if !bytes.Equal(export, want.export) {
			t.Fatalf("session %s export differs after restart", id)
		}
		rcode, hdr, render := rawGet(t, h2.ts.URL+"/api/v1/sessions/"+id+"/render?format=svg")
		if rcode != 200 {
			t.Fatalf("render %s = %d", id, rcode)
		}
		if got := hdr.Get("ETag"); got != want.etag {
			t.Fatalf("session %s ETag %q != %q after restart", id, got, want.etag)
		}
		if !bytes.Equal(render, want.render) {
			t.Fatalf("session %s render differs after restart", id)
		}
	}
}

// TestPersistRecoveredSessionHydratesLazily asserts the recovery contract:
// listing recovered sessions must not re-build their schedules; the first
// real access does.
func TestPersistRecoveredSessionHydratesLazily(t *testing.T) {
	stateDir := t.TempDir()
	h1 := startPersistServer(t, stateDir, "")
	id := createUpload(t, h1.ts, "lazy")
	h1.stop(t)

	h2 := startPersistServer(t, stateDir, "")
	defer h2.stop(t)
	if code, list := doJSON(t, "GET", h2.ts.URL+"/api/v1/sessions", nil, ""); code != 200 ||
		len(list["sessions"].([]any)) != 1 {
		t.Fatalf("list = %d %v", code, list)
	}
	sessions := h2.store.List()
	if len(sessions) != 1 {
		t.Fatalf("store lists %d sessions", len(sessions))
	}
	sess := sessions[0]
	sess.mu.RLock()
	hydrated := sess.sched != nil
	sess.mu.RUnlock()
	if hydrated {
		t.Fatal("listing hydrated the recovered session")
	}
	if code, _, _ := rawGet(t, h2.ts.URL+"/api/v1/sessions/"+id+"/stats"); code != 200 {
		t.Fatalf("stats after restart = %d", code)
	}
	sess.mu.RLock()
	hydrated = sess.sched != nil
	sess.mu.RUnlock()
	if !hydrated {
		t.Fatal("first access did not hydrate the session")
	}
	if n := h2.store.RecoveredSessions(); n != 1 {
		t.Fatalf("recovered counter = %d", n)
	}
}

// TestPersistHydrationFailureDropsSession deletes the file behind a
// file-recipe session between restarts: the session re-lists, but its first
// access fails hydration, drops it, and counts the failure.
func TestPersistHydrationFailureDropsSession(t *testing.T) {
	stateDir, fileDir := t.TempDir(), t.TempDir()
	path := writeScheduleFile(t, fileDir, "gone.jed")

	h1 := startPersistServer(t, stateDir, fileDir)
	if h1.store.Len() != 1 {
		t.Fatalf("registered %d sessions", h1.store.Len())
	}
	h1.stop(t)
	if err := os.Remove(path); err != nil {
		t.Fatal(err)
	}

	h2 := startPersistServer(t, stateDir, "")
	defer h2.stop(t)
	if h2.store.Len() != 1 {
		t.Fatalf("recovered %d sessions", h2.store.Len())
	}
	if code, _, _ := rawGet(t, h2.ts.URL+"/api/v1/sessions/gone/stats"); code != 404 {
		t.Fatalf("stats of unhydratable session = %d, want 404", code)
	}
	if n := h2.store.HydrationFailures(); n != 1 {
		t.Fatalf("hydration failures = %d", n)
	}
	if h2.store.Len() != 0 {
		t.Fatal("unhydratable session still listed")
	}
}

// TestPersistJobResultSurvivesRestart finishes a campaign job, restarts,
// and asserts /jobs/{id}/result serves byte-identical content plus the
// recovery counters on /api/v1/meta.
func TestPersistJobResultSurvivesRestart(t *testing.T) {
	stateDir := t.TempDir()
	h1 := startPersistServer(t, stateDir, "")
	id := launchJob(t, h1.ts, fmt.Sprintf(smallJobSpec, ""))
	if state := pollJob(t, h1.ts, id)["state"]; state != "done" {
		t.Fatalf("job state = %v", state)
	}
	code, _, want := rawGet(t, h1.ts.URL+"/api/v1/jobs/"+id+"/result")
	if code != 200 {
		t.Fatalf("result = %d", code)
	}
	h1.stop(t)

	h2 := startPersistServer(t, stateDir, "")
	defer h2.stop(t)
	code, list := doJSON(t, "GET", h2.ts.URL+"/api/v1/jobs", nil, "")
	if code != 200 || len(list["jobs"].([]any)) != 1 {
		t.Fatalf("jobs after restart = %d %v", code, list)
	}
	code, _, got := rawGet(t, h2.ts.URL+"/api/v1/jobs/"+id+"/result")
	if code != 200 {
		t.Fatalf("restored result = %d", code)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("job result differs after restart:\n%s\nvs\n%s", got, want)
	}
	code, meta := doJSON(t, "GET", h2.ts.URL+"/api/v1/meta", nil, "")
	if code != 200 {
		t.Fatalf("meta = %d", code)
	}
	persistMeta, ok := meta["persist"].(map[string]any)
	if !ok {
		t.Fatalf("meta has no persist section: %v", meta)
	}
	if got := persistMeta["jobs"].(map[string]any)["restored"].(float64); got != 1 {
		t.Fatalf("restored jobs = %v", got)
	}
	if _, ok := meta["jobs_evicted"]; !ok {
		t.Fatalf("meta has no jobs_evicted counter: %v", meta)
	}
}
