package api

import (
	"fmt"
	"hash/fnv"
	"io"
	"net/http"
	"net/url"
	"strings"
)

// Stateless reads (/render, /export) are pure functions of the session's
// schedule and the query parameters, so (session ID, revision, content
// fingerprint, canonicalized query) hashes into a strong ETag: a client
// re-rendering the same view revalidates with If-None-Match and gets a
// body-less 304 instead of a full rasterization. The content fingerprint
// keeps validators honest across server restarts, where file-backed
// sessions reappear under the same ID with a reset revision counter.

// etagFor computes the ETag of a stateless read. url.Values.Encode sorts by
// key, so equivalent URLs that only differ in parameter order share an
// ETag.
func etagFor(sess *Session, q url.Values) string {
	h := fnv.New64a()
	io.WriteString(h, sess.ID)                                              //nolint:errcheck // hash writes cannot fail
	fmt.Fprintf(h, "\x00%d\x00%x\x00", sess.Revision(), sess.Fingerprint()) //nolint:errcheck
	io.WriteString(h, q.Encode())                                           //nolint:errcheck
	return fmt.Sprintf(`"%016x"`, h.Sum64())
}

// handleConditional sets the caching headers and reports whether the
// request was answered with 304 Not Modified. "no-cache" is deliberate: the
// client may store the response but must revalidate — a session's schedule
// can be replaced at any time, which the revision in the ETag detects. The
// etag is computed once by the caller: it doubles as the render-cache key.
func handleConditional(w http.ResponseWriter, r *http.Request, etag string) bool {
	w.Header().Set("ETag", etag)
	w.Header().Set("Cache-Control", "private, no-cache")
	if match := r.Header.Get("If-None-Match"); match != "" {
		for _, candidate := range strings.Split(match, ",") {
			candidate = strings.TrimSpace(candidate)
			candidate = strings.TrimPrefix(candidate, "W/")
			if candidate == etag || candidate == "*" {
				w.WriteHeader(http.StatusNotModified)
				return true
			}
		}
	}
	return false
}
