package api

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"

	"repro/internal/events"
)

// GET /api/v1/events — the push half of the API. The response is a
// Server-Sent Events stream of the bus: one frame per event, `id:` carrying
// the bus-wide event ID (so a reconnecting client resumes with
// Last-Event-ID), `event:` carrying the topic, and `data:` the full event
// JSON. Filters:
//
//	topic=job,shard   only these topics (default: all)
//	job=j3            only job events about j3
//	campaign=c1       only campaign/shard events about c1
//
// Heartbeat comments (`: hb`) flow every few seconds so idle proxies keep
// the connection open; a subscriber too slow to drain its buffer loses the
// oldest events and is told with a `: dropped=N` comment. Replay after
// reconnect is best-effort from the in-memory tail; when the gap is longer
// than the tail, a `: replay-incomplete` comment warns the client to
// re-fetch current state.

// defaultEventHeartbeat paces the SSE keep-alive comments.
const defaultEventHeartbeat = 15 * time.Second

// SetEventHeartbeat overrides the SSE heartbeat interval (tests use
// milliseconds). Call before serving.
func (s *Server) SetEventHeartbeat(d time.Duration) {
	if d > 0 {
		s.heartbeat = d
	}
}

// parseEventFilter builds the bus filter from the query string.
func parseEventFilter(r *http.Request) (events.Filter, error) {
	var f events.Filter
	q := r.URL.Query()
	if raw := q.Get("topic"); raw != "" {
		for _, t := range strings.Split(raw, ",") {
			topic := events.Topic(strings.TrimSpace(t))
			if topic == "" {
				continue
			}
			if !events.ValidTopic(topic) {
				return f, fmt.Errorf("unknown topic %q", topic)
			}
			f.Topics = append(f.Topics, topic)
		}
	}
	if id := q.Get("job"); id != "" {
		if f.Key == nil {
			f.Key = map[events.Topic]string{}
		}
		f.Key[events.TopicJob] = id
	}
	if id := q.Get("campaign"); id != "" {
		if f.Key == nil {
			f.Key = map[events.Topic]string{}
		}
		// Shard events are keyed by their campaign job, so one campaign=
		// filter follows both the job state and its shard fan-out.
		f.Key[events.TopicCampaign] = id
		f.Key[events.TopicShard] = id
	}
	return f, nil
}

// lastEventID extracts the replay cursor: the standard Last-Event-ID header
// of an EventSource reconnect, or ?last_event_id= for curl-shaped clients.
// ok distinguishes an explicit cursor of 0 ("replay everything retained")
// from no cursor at all (live stream only).
func lastEventID(r *http.Request) (after uint64, ok bool) {
	raw := r.Header.Get("Last-Event-ID")
	if raw == "" {
		raw = r.URL.Query().Get("last_event_id")
	}
	if raw == "" {
		return 0, false
	}
	n, err := strconv.ParseUint(raw, 10, 64)
	if err != nil {
		return 0, false
	}
	return n, true
}

func writeSSE(w http.ResponseWriter, e events.Event) {
	fmt.Fprintf(w, "id: %d\nevent: %s\ndata: ", e.ID, e.Topic)
	raw, err := marshalEvent(e)
	if err != nil {
		fmt.Fprintf(w, "{\"id\":%d}\n\n", e.ID)
		return
	}
	w.Write(raw) //nolint:errcheck // a dead client surfaces on the next flush
	fmt.Fprint(w, "\n\n")
}

// marshalEvent renders the event as a single JSON line (SSE data fields are
// line-framed; the envelope writeJSON indents, so it is not reused here).
func marshalEvent(e events.Event) ([]byte, error) {
	return json.Marshal(e)
}

func (s *Server) events(w http.ResponseWriter, r *http.Request) {
	fl, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, "internal", "streaming unsupported")
		return
	}
	f, err := parseEventFilter(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad_filter", "%v", err)
		return
	}
	// Subscribe before replaying so nothing published in between is lost;
	// the ID check below dedupes the overlap.
	sub := s.bus.Subscribe(f, 0)
	defer sub.Close()

	h := w.Header()
	h.Set("Content-Type", "text/event-stream; charset=utf-8")
	h.Set("Cache-Control", "no-store")
	h.Set("X-Accel-Buffering", "no") // tell buffering proxies to pass frames through
	w.WriteHeader(http.StatusOK)
	fmt.Fprint(w, "retry: 3000\n: stream open\n\n")

	var last uint64
	if after, ok := lastEventID(r); ok {
		replay, complete := s.bus.ReplaySince(after, f)
		if !complete {
			fmt.Fprint(w, ": replay-incomplete\n\n")
		}
		for _, e := range replay {
			writeSSE(w, e)
			last = e.ID
		}
	}
	fl.Flush()

	hb := time.NewTicker(s.heartbeat)
	defer hb.Stop()
	for {
		select {
		case <-r.Context().Done():
			return
		case <-hb.C:
			fmt.Fprint(w, ": hb\n\n")
			fl.Flush()
		case <-sub.Notify():
			evs, dropped := sub.Drain()
			if dropped > 0 {
				fmt.Fprintf(w, ": dropped=%d\n\n", dropped)
			}
			for _, e := range evs {
				if e.ID <= last {
					continue // already delivered by replay
				}
				writeSSE(w, e)
				last = e.ID
			}
			fl.Flush()
		}
	}
}
