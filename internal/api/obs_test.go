package api

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
)

// promLine matches one sample of the Prometheus text format: a metric name,
// an optional label set (whose quoted values may themselves contain braces,
// e.g. route="/api/v1/sessions/{id}"), and a float value.
var promLine = regexp.MustCompile(
	`^[A-Za-z_:][A-Za-z0-9_:]*(\{.*\})? (-?[0-9.eE+-]+|NaN|[+-]?Inf)$`)

// scrape fetches /api/v1/metrics and returns the body after validating the
// Content-Type and every non-comment line against the exposition grammar.
func scrape(t *testing.T, ts *httptest.Server) string {
	t.Helper()
	resp, err := http.Get(ts.URL + "/api/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("metrics = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("Content-Type = %q", ct)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	for _, line := range strings.Split(string(raw), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if !promLine.MatchString(line) {
			t.Fatalf("unparseable exposition line %q", line)
		}
	}
	return string(raw)
}

// TestMetricsEndpoint exercises the full exposition path: traffic and a real
// render drive the middleware and stage histograms, then one scrape must
// carry them all in parseable form.
func TestMetricsEndpoint(t *testing.T) {
	ts, _ := newTestAPI(t)
	id := createUpload(t, ts, "obs")

	resp, err := http.Get(ts.URL + "/api/v1/sessions/" + id + "/render?w=320&h=200")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body) //nolint:errcheck
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("render = %d", resp.StatusCode)
	}

	body := scrape(t, ts)
	for _, want := range []string{
		`jed_http_requests_total{class="2xx",method="POST",route="/api/v1/sessions"}`,
		`jed_http_request_seconds_bucket{route="/api/v1/sessions/{id}/render",le="+Inf"}`,
		`jed_http_request_seconds_count{route="/api/v1/sessions/{id}/render"}`,
		`jed_render_stage_seconds_count{stage="layout"}`,
		`jed_render_stage_seconds_count{stage="raster"}`,
		`jed_render_stage_seconds_count{stage="encode"}`,
		"jed_sessions 1",
		"jed_http_in_flight 1", // the scrape itself
		"# TYPE jed_http_request_seconds histogram",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}

// TestMetricsRateLimitExempt proves a scraper keeps working after a client
// has burned its whole API quota.
func TestMetricsRateLimitExempt(t *testing.T) {
	srv := NewServer(NewStore())
	t.Cleanup(srv.Close)
	srv.SetRateLimit(0.01, 1)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	if code, _ := doJSON(t, "GET", ts.URL+"/api/v1/sessions", nil, ""); code != 200 {
		t.Fatalf("first request = %d", code)
	}
	if code, _ := doJSON(t, "GET", ts.URL+"/api/v1/sessions", nil, ""); code != 429 {
		t.Fatalf("second request = %d, want 429", code)
	}
	scrape(t, ts) // still 200 and parseable

	// The 429 itself was measured by the middleware (which wraps outside the
	// limiter), under the normalized route label.
	if body := scrape(t, ts); !strings.Contains(body,
		`jed_http_requests_total{class="4xx",method="GET",route="/api/v1/sessions"} 1`) {
		t.Fatalf("429 not counted:\n%s", body)
	}
}

// TestRouteLabel pins the normalization: resource IDs collapse to {id} so
// cardinality tracks the API surface, not the session population.
func TestRouteLabel(t *testing.T) {
	cases := map[string]string{
		"/":                            "/",
		"/api/v1/sessions":             "/api/v1/sessions",
		"/api/v1/sessions/s123":        "/api/v1/sessions/{id}",
		"/api/v1/sessions/s999/render": "/api/v1/sessions/{id}/render",
		"/api/v1/sessions/s1/export":   "/api/v1/sessions/{id}/export",
		"/api/v1/sessions/s1/bogus":    "other",
		"/api/v1/jobs/j42":             "/api/v1/jobs/{id}",
		"/api/v1/jobs/j42/result":      "/api/v1/jobs/{id}/result",
		"/api/v1/campaigns/c7/result":  "/api/v1/campaigns/{id}/result",
		"/api/v1/workers/w1/heartbeat": "/api/v1/workers/{id}/heartbeat",
		"/api/v1/workers/w1/lease":     "/api/v1/workers/{id}/lease",
		"/api/v1/meta":                 "/api/v1/meta",
		"/api/v1/metrics":              "/api/v1/metrics",
		"/api/v1/schedulers":           "/api/v1/schedulers",
		"/api/v1/events":               "/api/v1/events",
		"/api/v1/nope":                 "other",
		"/api/v1/sessions/a/b/c":       "other",
		"/debug/pprof/heap":            "/debug/pprof/",
		"/favicon.ico":                 "other",
		"/api/v1/meta/extra":           "other",
		"/api/v1/workers/w1/steal":     "other",
	}
	for path, want := range cases {
		r := httptest.NewRequest("GET", path, nil)
		if got := routeLabel(r); got != want {
			t.Errorf("routeLabel(%q) = %q, want %q", path, got, want)
		}
	}
}

// TestPprofGated: the profiling surface is absent unless EnablePprof ran
// before Handler.
func TestPprofGated(t *testing.T) {
	ts, _ := newTestAPI(t)
	resp, err := http.Get(ts.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 404 {
		t.Fatalf("pprof without opt-in = %d, want 404", resp.StatusCode)
	}

	srv := NewServer(NewStore())
	t.Cleanup(srv.Close)
	srv.EnablePprof()
	ts2 := httptest.NewServer(srv.Handler())
	t.Cleanup(ts2.Close)
	resp, err = http.Get(ts2.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body) //nolint:errcheck
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("pprof with opt-in = %d, want 200", resp.StatusCode)
	}
}

// syncBuffer lets the test read what the middleware's log goroutine wrote
// without a race.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// TestAccessLog asserts the structured line: route normalization, status,
// the caller's trace ID, and the render-cache disposition.
func TestAccessLog(t *testing.T) {
	var logbuf syncBuffer
	srv := NewServer(NewStore())
	t.Cleanup(srv.Close)
	srv.SetAccessLog(&logbuf)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	id := createUpload(t, ts, "logged")
	req, err := http.NewRequest("GET", ts.URL+"/api/v1/sessions/"+id+"/render?w=320&h=200", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(obs.TraceHeader, "trace-log-test")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body) //nolint:errcheck
	resp.Body.Close()
	if echo := resp.Header.Get(obs.TraceHeader); echo != "trace-log-test" {
		t.Fatalf("trace echo = %q", echo)
	}

	lines := strings.Split(strings.TrimSpace(logbuf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("access log lines = %d (%q), want 2", len(lines), logbuf.String())
	}
	var rec struct {
		Method   string  `json:"method"`
		Route    string  `json:"route"`
		Status   int     `json:"status"`
		Bytes    int     `json:"bytes"`
		Duration float64 `json:"duration_ms"`
		Trace    string  `json:"trace"`
		Cache    string  `json:"cache"`
	}
	if err := json.Unmarshal([]byte(lines[1]), &rec); err != nil {
		t.Fatalf("bad access-log JSON %q: %v", lines[1], err)
	}
	if rec.Method != "GET" || rec.Route != "/api/v1/sessions/{id}/render" ||
		rec.Status != 200 || rec.Bytes <= 0 || rec.Trace != "trace-log-test" ||
		rec.Cache != "miss" {
		t.Fatalf("access record = %+v", rec)
	}
}

// TestServerTiming asserts the per-stage breakdown on a render miss and the
// hit disposition on the cached replay.
func TestServerTiming(t *testing.T) {
	ts, _ := newTestAPI(t)
	id := createUpload(t, ts, "timed")
	url := ts.URL + "/api/v1/sessions/" + id + "/render?w=320&h=200"

	get := func() (string, string) {
		resp, err := http.Get(url)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body) //nolint:errcheck
		resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("render = %d", resp.StatusCode)
		}
		return resp.Header.Get("Server-Timing"), resp.Header.Get("X-Render-Cache")
	}

	timing, cache := get()
	if cache != "miss" {
		t.Fatalf("first render cache = %q", cache)
	}
	for _, stage := range []string{"layout;dur=", "lod;dur=", "raster;dur=", "encode;dur=", "cache;desc=miss"} {
		if !strings.Contains(timing, stage) {
			t.Errorf("Server-Timing %q missing %q", timing, stage)
		}
	}
	if timing, cache = get(); cache != "hit" || !strings.Contains(timing, "cache;desc=hit") {
		t.Fatalf("replay cache = %q, Server-Timing = %q", cache, timing)
	}
}

// TestMetaMetricsBlock: the legacy meta fields survive (CI asserts on their
// exact names) and the new "metrics" block mirrors the registry snapshot.
func TestMetaMetricsBlock(t *testing.T) {
	ts, _ := newTestAPI(t)
	// Warm-up: the request families are created lazily by the middleware
	// after each request completes, so the first request can't see itself.
	if code, _ := doJSON(t, "GET", ts.URL+"/api/v1/sessions", nil, ""); code != 200 {
		t.Fatalf("warm-up = %d", code)
	}
	code, meta := doJSON(t, "GET", ts.URL+"/api/v1/meta", nil, "")
	if code != 200 {
		t.Fatalf("meta = %d", code)
	}
	for _, key := range []string{
		"sessions", "render_workers", "session_ttl_seconds", "render_cache",
		"rate_limit", "lod_default", "lod_renders", "lod_tasks_aggregated",
		"jobs_evicted", "events", "long_polls", "metrics",
	} {
		if _, ok := meta[key]; !ok {
			t.Errorf("meta missing %q", key)
		}
	}
	families, ok := meta["metrics"].(map[string]any)
	if !ok || len(families) == 0 {
		t.Fatalf("metrics block = %v", meta["metrics"])
	}
	if _, ok := families["jed_http_requests_total"]; !ok {
		t.Errorf("metrics block missing jed_http_requests_total: %v", families)
	}
}

// TestMetricsPublisher subscribes to the metrics SSE topic and waits for a
// periodic registry snapshot (jedserve -metrics-interval).
func TestMetricsPublisher(t *testing.T) {
	ts, srv := newTestServer(t)
	stop := srv.StartMetricsPublisher(10 * time.Millisecond)
	defer stop()

	c := openSSE(t, ts.URL+"/api/v1/events?topics=metrics", nil)
	defer c.close()
	e := c.next(t)
	if e.Topic != "metrics" || e.Type != "snapshot" {
		t.Fatalf("event = %+v", e)
	}
	var snap map[string]any
	if err := json.Unmarshal(e.Data, &snap); err != nil {
		t.Fatalf("bad snapshot payload: %v", err)
	}
	if _, ok := snap["jed_sessions"]; !ok {
		t.Fatalf("snapshot missing jed_sessions: %v", snap)
	}
}
