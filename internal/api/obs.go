package api

import (
	"io"
	"net/http"
	"net/http/pprof"
	"strings"
	"time"

	"repro/internal/events"
	"repro/internal/fleet"
	"repro/internal/obs"
)

// metricsPath is exempt from rate limiting so a scraper can never be starved
// by the very traffic spike it exists to diagnose.
const metricsPath = "/api/v1/metrics"

// Metrics returns the server's registry so embedding binaries (jedserve,
// the view server) can add their own series.
func (s *Server) Metrics() *obs.Registry { return s.metrics }

// SetAccessLog enables one-line JSON access logging to w (jedserve
// -access-log). Call before serving.
func (s *Server) SetAccessLog(w io.Writer) { s.accessLog = w }

// EnablePprof mounts net/http/pprof under /debug/pprof/ (jedserve -pprof).
// Off by default: the profiling surface exposes heap contents and must be
// opted into. Call before serving.
func (s *Server) EnablePprof() { s.pprof = true }

// routeLabel normalizes a request path to a bounded set of route labels:
// resource IDs collapse to {id} so metric cardinality tracks the API
// surface, not the session population. It works on the raw path (not mux
// patterns) because rate-limited requests are rejected before routing and
// still need a label.
func routeLabel(r *http.Request) string {
	p := r.URL.Path
	if p == "/" {
		return "/"
	}
	if strings.HasPrefix(p, "/debug/pprof/") {
		return "/debug/pprof/"
	}
	if !strings.HasPrefix(p, "/api/v1/") {
		return "other"
	}
	seg := strings.Split(strings.TrimPrefix(p, "/api/v1/"), "/")
	switch seg[0] {
	case "schedulers", "meta", "events", "metrics":
		if len(seg) == 1 {
			return "/api/v1/" + seg[0]
		}
	case "sessions", "jobs", "campaigns", "workers":
		switch len(seg) {
		case 1:
			return "/api/v1/" + seg[0]
		case 2:
			return "/api/v1/" + seg[0] + "/{id}"
		case 3:
			sub := seg[2]
			valid := map[string]map[string]bool{
				"sessions":  {"render": true, "export": true, "stats": true, "tasks": true, "meta": true},
				"jobs":      {"result": true},
				"campaigns": {"result": true},
				"workers":   {"heartbeat": true, "lease": true, "complete": true, "drain": true},
			}
			if valid[seg[0]][sub] {
				return "/api/v1/" + seg[0] + "/{id}/" + sub
			}
		}
	}
	return "other"
}

// registerMetrics surfaces the subsystem counters that predate the registry
// as callback metrics, so one Snapshot() reads everything through each
// subsystem's own synchronization in a single pass.
func (s *Server) registerMetrics() {
	m := s.metrics

	s.mLongPolls = m.Counter("jed_long_polls_total",
		"?wait= long-polls served (the polls SSE replaces).")
	s.mLodRenders = m.Counter("jed_render_lod_renders_total",
		"Renders that ran with level-of-detail aggregation enabled.")
	s.mLodTasks = m.Counter("jed_render_lod_tasks_aggregated_total",
		"Tasks folded into LOD density bands instead of drawn individually.")

	m.GaugeFunc("jed_sessions", "Sessions resident in the store.",
		func() float64 { return float64(s.store.Len()) })

	// Render cache.
	cache := func(f func(renderCacheStats) float64) func() float64 {
		return func() float64 { return f(s.cache.Stats()) }
	}
	m.CounterFunc("jed_render_cache_hits_total", "Render-cache hits.",
		cache(func(st renderCacheStats) float64 { return float64(st.Hits) }))
	m.CounterFunc("jed_render_cache_misses_total", "Render-cache misses.",
		cache(func(st renderCacheStats) float64 { return float64(st.Misses) }))
	m.CounterFunc("jed_render_cache_evictions_total", "Render-cache size evictions.",
		cache(func(st renderCacheStats) float64 { return float64(st.Evictions) }))
	m.GaugeFunc("jed_render_cache_bytes", "Render-cache resident body bytes.",
		cache(func(st renderCacheStats) float64 { return float64(st.Bytes) }))
	m.GaugeFunc("jed_render_cache_entries", "Render-cache resident entries.",
		cache(func(st renderCacheStats) float64 { return float64(st.Entries) }))

	// Rate limiter (nil-safe: Stats on a nil limiter returns zeros).
	m.CounterFunc("jed_rate_limited_total", "Requests rejected with 429.",
		func() float64 { return float64(s.limiter.Stats().Limited) })
	m.CounterFunc("jed_rate_allowed_total", "Requests admitted by the rate limiter.",
		func() float64 { return float64(s.limiter.Stats().Allowed) })

	// Events bus.
	m.CounterFunc("jed_events_published_total", "Events published on the bus.",
		func() float64 { return float64(s.bus.Stats().Published) })
	m.CounterFunc("jed_events_dropped_total",
		"Events dropped from slow subscribers' rings.",
		func() float64 { return float64(s.bus.Stats().Dropped) })
	m.GaugeFunc("jed_events_subscribers", "Live bus subscribers.",
		func() float64 { return float64(s.bus.Stats().Subscribers) })

	// Job engines.
	m.CounterFunc("jed_jobs_evicted_total",
		"Terminal jobs dropped by the retention cap, both engines.",
		func() float64 { return float64(s.jobs.Evictions() + s.coordJobs.Evictions()) })
	m.GaugeFunc("jed_jobs_queue_depth", "Jobs waiting for an engine worker.",
		func() float64 { return float64(s.jobs.QueueDepth()) }, "engine", "jobs")
	m.GaugeFunc("jed_jobs_queue_depth", "Jobs waiting for an engine worker.",
		func() float64 { return float64(s.coordJobs.QueueDepth()) }, "engine", "coord")
}

// registerFleetMetrics exposes a fleet manager's counters on r. The
// registration itself lives in the fleet package so jedcoord's embedded
// fleet endpoint shares it.
func registerFleetMetrics(r *obs.Registry, m *fleet.Manager) {
	fleet.RegisterMetrics(r, m)
}

// registerPersistMetrics runs when EnablePersistence wires a store.
func (s *Server) registerPersistMetrics() {
	m := s.metrics
	m.CounterFunc("jed_persist_recovered_sessions_total",
		"Sessions recovered from the durable store at startup.",
		func() float64 { return float64(s.store.RecoveredSessions()) })
	m.CounterFunc("jed_persist_hydration_failures_total",
		"Recovered sessions whose recipe failed to replay.",
		func() float64 { return float64(s.store.HydrationFailures()) })
	m.CounterFunc("jed_persist_session_errors_total",
		"Session persistence write errors.",
		func() float64 { return float64(s.store.PersistErrors()) })
	m.CounterFunc("jed_persist_job_errors_total",
		"Job journal write errors, both engines.",
		func() float64 { return float64(s.jobsPersist.Errors() + s.coordPersist.Errors()) })
	m.CounterFunc("jed_persist_jobs_resumed_total",
		"Interrupted jobs re-submitted at startup, both engines.",
		func() float64 { return float64(s.jobsRecovered.Resumed + s.coordRecovered.Resumed) })
}

// metricsHandler serves GET /api/v1/metrics in the Prometheus text format.
func (s *Server) metricsHandler(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.metrics.WritePrometheus(w) //nolint:errcheck // client gone mid-scrape
}

// mountPprof registers the pprof surface on mux (EnablePprof only).
func mountPprof(mux *http.ServeMux) {
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}

// StartMetricsPublisher publishes a registry snapshot on the events bus
// (topic "metrics") every interval, and returns the stop function. SSE
// consumers get live counters without polling /api/v1/meta (jedserve
// -metrics-interval; default off).
func (s *Server) StartMetricsPublisher(interval time.Duration) (stop func()) {
	if interval <= 0 {
		return func() {}
	}
	done := make(chan struct{})
	go func() {
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-done:
				return
			case <-t.C:
				s.bus.Publish(events.TopicMetrics, "snapshot", "", s.metrics.Snapshot())
			}
		}
	}()
	return func() { close(done) }
}
