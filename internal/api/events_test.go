package api

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// sseClient is a minimal test-side consumer of GET /api/v1/events.
type sseClient struct {
	resp   *http.Response
	r      *bufio.Reader
	cancel context.CancelFunc
}

func openSSE(t *testing.T, url string, header map[string]string) *sseClient {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		cancel()
		t.Fatal(err)
	}
	for k, v := range header {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		cancel()
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		resp.Body.Close()
		cancel()
		t.Fatalf("events = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/event-stream") {
		resp.Body.Close()
		cancel()
		t.Fatalf("Content-Type = %q", ct)
	}
	c := &sseClient{resp: resp, r: bufio.NewReader(resp.Body), cancel: cancel}
	t.Cleanup(c.close)
	return c
}

func (c *sseClient) close() {
	c.cancel()
	c.resp.Body.Close()
}

// busEvent is the decoded data of one SSE frame.
type busEvent struct {
	ID    uint64          `json:"id"`
	Topic string          `json:"topic"`
	Seq   uint64          `json:"seq"`
	Type  string          `json:"type"`
	Key   string          `json:"key"`
	Data  json.RawMessage `json:"data"`
}

// next reads frames until one carries an event payload (skipping heartbeats
// and comments), failing the test after a deadline.
func (c *sseClient) next(t *testing.T) busEvent {
	t.Helper()
	guard := time.AfterFunc(15*time.Second, c.cancel)
	defer guard.Stop()
	var data []byte
	for {
		line, err := c.r.ReadString('\n')
		if err != nil {
			t.Fatalf("stream broke: %v", err)
		}
		line = strings.TrimRight(line, "\r\n")
		switch {
		case line == "":
			if len(data) == 0 {
				continue // comment-only frame (heartbeat, retry preamble)
			}
			var e busEvent
			if err := json.Unmarshal(data, &e); err != nil {
				t.Fatalf("bad event payload %q: %v", data, err)
			}
			return e
		case strings.HasPrefix(line, "data:"):
			data = append(data, strings.TrimPrefix(line[len("data:"):], " ")...)
		}
	}
}

// TestEventStreamJobLifecycle subscribes to the job topic, runs a job, and
// asserts the terminal event arrives with monotonically increasing bus IDs
// and per-topic sequence numbers — the SSE lifecycle check (run under -race
// this also exercises publisher/handler concurrency).
func TestEventStreamJobLifecycle(t *testing.T) {
	ts, _ := newTestServer(t)
	sse := openSSE(t, ts.URL+"/api/v1/events?topic=job", nil)

	id := launchJob(t, ts, fmt.Sprintf(smallJobSpec, ""))

	var lastID, lastSeq uint64
	var states []string
	for {
		e := sse.next(t)
		if e.Topic != "job" {
			t.Fatalf("topic = %q with a topic=job filter", e.Topic)
		}
		if e.ID <= lastID {
			t.Fatalf("bus ID went backwards: %d after %d", e.ID, lastID)
		}
		if e.Seq <= lastSeq {
			t.Fatalf("topic seq went backwards: %d after %d", e.Seq, lastSeq)
		}
		lastID, lastSeq = e.ID, e.Seq
		if e.Key != id {
			continue
		}
		states = append(states, e.Type)
		if e.Type == "done" || e.Type == "failed" {
			var info map[string]any
			if err := json.Unmarshal(e.Data, &info); err != nil {
				t.Fatalf("terminal event data: %v", err)
			}
			if info["id"] != id || info["state"] != e.Type {
				t.Fatalf("terminal payload = %v", info)
			}
			break
		}
	}
	if states[0] != "submitted" || states[len(states)-1] != "done" {
		t.Fatalf("lifecycle = %v", states)
	}
}

// TestEventStreamKeyFilter asserts ?job= narrows the stream to one job.
func TestEventStreamKeyFilter(t *testing.T) {
	ts, _ := newTestServer(t)
	// Subscribe to a key that does not exist yet, then run two jobs; only
	// the matching one's events may arrive.
	other := launchJob(t, ts, fmt.Sprintf(smallJobSpec, ""))
	pollJob(t, ts, other)
	want := "j2" // IDs are minted sequentially per engine
	sse := openSSE(t, ts.URL+"/api/v1/events?topic=job&job="+want, nil)
	got := launchJob(t, ts, fmt.Sprintf(smallJobSpec, ""))
	if got != want {
		t.Fatalf("second job = %s, want %s", got, want)
	}
	for {
		e := sse.next(t)
		if e.Key != want {
			t.Fatalf("event for %q leaked through the job=%s filter", e.Key, want)
		}
		if e.Type == "done" {
			break
		}
	}
}

// TestEventStreamReplay covers the Last-Event-ID contract: a reconnecting
// client replays what it missed from the in-memory tail.
func TestEventStreamReplay(t *testing.T) {
	ts, srv := newTestServer(t)
	createUpload(t, ts, "one")
	createUpload(t, ts, "two")
	if n := srv.Bus().Stats().Published; n < 2 {
		t.Fatalf("published = %d before subscribing", n)
	}

	sse := openSSE(t, ts.URL+"/api/v1/events?topic=session", map[string]string{"Last-Event-ID": "0"})
	first := sse.next(t)
	second := sse.next(t)
	if first.Type != "created" || second.Type != "created" {
		t.Fatalf("replayed types = %s, %s", first.Type, second.Type)
	}
	if first.Key != "s1" || second.Key != "s2" {
		t.Fatalf("replayed keys = %s, %s", first.Key, second.Key)
	}
	if second.Seq != first.Seq+1 {
		t.Fatalf("replayed seq = %d, %d", first.Seq, second.Seq)
	}

	// The ?last_event_id= query form works for curl-shaped clients, and a
	// mid-stream cursor skips what was already seen.
	sse2 := openSSE(t, fmt.Sprintf("%s/api/v1/events?topic=session&last_event_id=%d", ts.URL, first.ID), nil)
	if e := sse2.next(t); e.ID != second.ID {
		t.Fatalf("partial replay started at %d, want %d", e.ID, second.ID)
	}
}

// TestEventStreamBadFilter asserts the structured envelope on a bogus topic.
func TestEventStreamBadFilter(t *testing.T) {
	ts, _ := newTestAPI(t)
	status, code, _ := getError(t, ts.URL+"/api/v1/events?topic=bogus")
	if status != 400 || code != "bad_filter" {
		t.Fatalf("bad topic = %d %q", status, code)
	}
}

// TestWedgedSubscriberDoesNotBlockSubmission opens an event stream and never
// reads it while jobs are submitted and run to completion — the
// never-stall-publishers guarantee, observed end to end.
func TestWedgedSubscriberDoesNotBlockSubmission(t *testing.T) {
	ts, srv := newTestServer(t)
	srv.SetEventHeartbeat(10 * time.Millisecond)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, ts.URL+"/api/v1/events", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	// Never read resp.Body: the handler's writes stall once the socket
	// buffers fill, but the bus keeps dropping into its bounded ring and
	// submissions must stay prompt.

	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 3; i++ {
			id := launchJob(t, ts, fmt.Sprintf(smallJobSpec, ""))
			pollJob(t, ts, id)
		}
	}()
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		t.Fatal("job submission blocked behind a wedged event subscriber")
	}
}

// getError GETs url and decodes the structured error envelope.
func getError(t *testing.T, url string) (status int, code, message string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var envelope struct {
		Error struct {
			Code    string `json:"code"`
			Message string `json:"message"`
		} `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&envelope); err != nil {
		t.Fatalf("GET %s: error body did not decode as an envelope: %v", url, err)
	}
	if envelope.Error.Code == "" || envelope.Error.Message == "" {
		t.Fatalf("GET %s: envelope missing code or message: %+v", url, envelope)
	}
	return resp.StatusCode, envelope.Error.Code, envelope.Error.Message
}

// TestErrorEnvelopeShape is the contract table: every API error is the one
// nested envelope with a machine-readable code and the expected status.
func TestErrorEnvelopeShape(t *testing.T) {
	ts, _ := newTestAPI(t)
	id := launchJob(t, ts, fmt.Sprintf(smallJobSpec, ""))
	pollJob(t, ts, id)

	cases := []struct {
		name   string
		path   string
		status int
		code   string
	}{
		{"session not found", "/api/v1/sessions/nope", 404, "session_not_found"},
		{"job not found", "/api/v1/jobs/nope", 404, "job_not_found"},
		{"campaign not found", "/api/v1/campaigns/nope", 404, "campaign_not_found"},
		{"bad wait", "/api/v1/jobs/" + id + "?wait=tomorrow", 400, "bad_wait"},
		{"negative limit", "/api/v1/jobs?limit=-1", 400, "bad_pagination"},
		{"non-integer offset", "/api/v1/sessions?offset=x", 400, "bad_pagination"},
		{"unknown state filter", "/api/v1/jobs?state=bogus", 400, "bad_filter"},
		{"unknown topic", "/api/v1/events?topic=nope", 400, "bad_filter"},
		{"merge with missing job", "/api/v1/jobs/" + id + "/result?merge=nope", 404, "job_not_found"},
		{"bad threshold", "/api/v1/jobs/" + id + "/result?threshold=x", 400, "bad_threshold"},
	}
	for _, tc := range cases {
		status, code, _ := getError(t, ts.URL+tc.path)
		if status != tc.status || code != tc.code {
			t.Errorf("%s: got %d %q, want %d %q", tc.name, status, code, tc.status, tc.code)
		}
	}
}

// TestErrorEnvelopeHeaderMismatch asserts the merge identity guard answers
// the machine-readable campaign_header_mismatch code.
func TestErrorEnvelopeHeaderMismatch(t *testing.T) {
	ts, _ := newTestAPI(t)
	// Same factorial, different replicate count: the identity headers differ.
	mismatched := `{"algos": ["cpa", "mcpa"], "shapes": ["serial", "wide"],
		"dag_sizes": [15], "cluster_sizes": [16, 32], "replicates": 4, "seed": 11}`
	a := launchJob(t, ts, fmt.Sprintf(smallJobSpec, ""))
	b := launchJob(t, ts, mismatched)
	pollJob(t, ts, a)
	pollJob(t, ts, b)
	status, code, _ := getError(t, ts.URL+"/api/v1/jobs/"+a+"/result?merge="+b)
	if status != 409 || code != "campaign_header_mismatch" {
		t.Fatalf("mismatched merge = %d %q, want 409 campaign_header_mismatch", status, code)
	}
}

// TestErrorEnvelopeRateLimited asserts the 429 carries the envelope too.
func TestErrorEnvelopeRateLimited(t *testing.T) {
	srv := NewServer(NewStore())
	t.Cleanup(srv.Close)
	srv.SetRateLimit(0.01, 1)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	if code, _ := doJSON(t, "GET", ts.URL+"/api/v1/sessions", nil, ""); code != 200 {
		t.Fatalf("first request = %d", code)
	}
	status, code, _ := getError(t, ts.URL+"/api/v1/sessions")
	if status != 429 || code != "rate_limited" {
		t.Fatalf("over limit = %d %q, want 429 rate_limited", status, code)
	}
}

// TestPaginationEdges covers the limit=/offset= contract on the session and
// job collections: limit=0 means all, offset past the end is an empty page
// with the total intact.
func TestPaginationEdges(t *testing.T) {
	ts, _ := newTestAPI(t)
	for _, name := range []string{"a", "b", "c"} {
		createUpload(t, ts, name)
	}

	get := func(path string) (items []any, total float64) {
		t.Helper()
		code, out := doJSON(t, "GET", ts.URL+path, nil, "")
		if code != 200 {
			t.Fatalf("GET %s = %d %v", path, code, out)
		}
		key := "sessions"
		if strings.Contains(path, "/jobs") {
			key = "jobs"
		}
		return out[key].([]any), out["total"].(float64)
	}

	if items, total := get("/api/v1/sessions"); len(items) != 3 || total != 3 {
		t.Fatalf("unpaginated = %d of %v", len(items), total)
	}
	if items, total := get("/api/v1/sessions?limit=0"); len(items) != 3 || total != 3 {
		t.Fatalf("limit=0 = %d of %v (0 means no limit)", len(items), total)
	}
	if items, total := get("/api/v1/sessions?limit=2"); len(items) != 2 || total != 3 {
		t.Fatalf("limit=2 = %d of %v", len(items), total)
	}
	items, total := get("/api/v1/sessions?limit=2&offset=2")
	if len(items) != 1 || total != 3 {
		t.Fatalf("last page = %d of %v", len(items), total)
	}
	if id := items[0].(map[string]any)["id"]; id != "s3" {
		t.Fatalf("last page item = %v", id)
	}
	if items, total := get("/api/v1/sessions?offset=17"); len(items) != 0 || total != 3 {
		t.Fatalf("offset past end = %d of %v (want empty page, total intact)", len(items), total)
	}

	// Jobs: filters apply before pagination, so total counts matches.
	a := launchJob(t, ts, fmt.Sprintf(smallJobSpec, ""))
	b := launchJob(t, ts, fmt.Sprintf(smallJobSpec, ""))
	pollJob(t, ts, a)
	pollJob(t, ts, b)
	if items, total := get("/api/v1/jobs?state=done&limit=1"); len(items) != 1 || total != 2 {
		t.Fatalf("filtered page = %d of %v", len(items), total)
	}
	if items, total := get("/api/v1/jobs?state=cancelled"); len(items) != 0 || total != 0 {
		t.Fatalf("empty filter = %d of %v", len(items), total)
	}
}

// TestMetaEventCounters asserts /api/v1/meta surfaces the bus stats and the
// long-poll counter the live-events CI leg checks.
func TestMetaEventCounters(t *testing.T) {
	ts, _ := newTestServer(t)
	id := launchJob(t, ts, fmt.Sprintf(smallJobSpec, ""))
	pollJob(t, ts, id) // at least one ?wait= long-poll

	code, meta := doJSON(t, "GET", ts.URL+"/api/v1/meta", nil, "")
	if code != 200 {
		t.Fatalf("meta = %d", code)
	}
	ev, ok := meta["events"].(map[string]any)
	if !ok {
		t.Fatalf("meta has no events block: %v", meta)
	}
	if ev["published"].(float64) < 2 {
		t.Fatalf("published = %v", ev["published"])
	}
	if meta["long_polls"].(float64) < 1 {
		t.Fatalf("long_polls = %v", meta["long_polls"])
	}
}
