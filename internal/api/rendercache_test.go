package api

import (
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestRenderCacheSingleflight launches many concurrent identical renders
// against a slow render function; exactly one must run, all callers must
// see its body, and the followers count as hits.
func TestRenderCacheSingleflight(t *testing.T) {
	rc := newRenderCache(1 << 20)
	var calls atomic.Int64
	release := make(chan struct{})
	const n = 16
	var wg sync.WaitGroup
	bodies := make([][]byte, n)
	hits := make([]bool, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			body, ct, hit, err := rc.Render("k1", "s1", func() ([]byte, string, error) {
				calls.Add(1)
				<-release
				return []byte("payload"), "image/png", nil
			})
			if err != nil || ct != "image/png" {
				t.Errorf("render: ct=%q err=%v", ct, err)
			}
			bodies[i], hits[i] = body, hit
		}(i)
	}
	// Wait until the first flight is registered, then release everyone.
	for {
		rc.mu.Lock()
		launched := len(rc.inflight) == 1
		rc.mu.Unlock()
		if launched {
			break
		}
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()
	if got := calls.Load(); got != 1 {
		t.Fatalf("render ran %d times, want 1", got)
	}
	nHits := 0
	for i := range bodies {
		if string(bodies[i]) != "payload" {
			t.Fatalf("caller %d got %q", i, bodies[i])
		}
		if hits[i] {
			nHits++
		}
	}
	if nHits != n-1 {
		t.Fatalf("%d hits, want %d", nHits, n-1)
	}
	st := rc.Stats()
	if st.Misses != 1 || st.Hits != n-1 || st.Entries != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestRenderCacheLRUEviction fills the cache past its byte bound and checks
// the least recently used body leaves first.
func TestRenderCacheLRUEviction(t *testing.T) {
	rc := newRenderCache(30) // three 10-byte bodies
	add := func(key string) {
		_, _, _, err := rc.Render(key, "s", func() ([]byte, string, error) {
			return []byte("0123456789"), "image/png", nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	add("a")
	add("b")
	add("c")
	add("a") // refresh a; b is now LRU
	add("d") // evicts b
	st := rc.Stats()
	if st.Entries != 3 || st.Bytes != 30 || st.Evictions != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if _, ok := rc.entries["b"]; ok {
		t.Fatal("b survived eviction")
	}
	for _, key := range []string{"a", "c", "d"} {
		if _, ok := rc.entries[key]; !ok {
			t.Fatalf("%s missing", key)
		}
	}
}

// TestRenderCacheInvalidateSession drops exactly the session's entries.
func TestRenderCacheInvalidateSession(t *testing.T) {
	rc := newRenderCache(1 << 20)
	for i := 0; i < 4; i++ {
		sess := fmt.Sprintf("s%d", i%2)
		key := fmt.Sprintf("k%d", i)
		rc.Render(key, sess, func() ([]byte, string, error) { //nolint:errcheck
			return []byte("body"), "image/png", nil
		})
	}
	rc.InvalidateSession("s0")
	st := rc.Stats()
	if st.Entries != 2 || st.Bytes != 8 {
		t.Fatalf("stats after invalidate = %+v", st)
	}
	for key, want := range map[string]bool{"k0": false, "k1": true, "k2": false, "k3": true} {
		if _, ok := rc.entries[key]; ok != want {
			t.Fatalf("entry %s present=%v want %v", key, ok, want)
		}
	}
}

// TestRenderCacheErrorNotCached verifies failed renders are not memoized
// and do not poison later calls.
func TestRenderCacheErrorNotCached(t *testing.T) {
	rc := newRenderCache(1 << 20)
	boom := errors.New("boom")
	if _, _, _, err := rc.Render("k", "s", func() ([]byte, string, error) {
		return nil, "", boom
	}); !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	body, _, hit, err := rc.Render("k", "s", func() ([]byte, string, error) {
		return []byte("ok"), "image/png", nil
	})
	if err != nil || hit || string(body) != "ok" {
		t.Fatalf("recovery render: body=%q hit=%v err=%v", body, hit, err)
	}
}

// TestRenderCacheInvalidateDuringFlight: a body whose session is replaced
// while it renders must reach its callers but never enter the store — its
// key embeds a revision no future request computes.
func TestRenderCacheInvalidateDuringFlight(t *testing.T) {
	rc := newRenderCache(1 << 20)
	started := make(chan struct{})
	release := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		body, _, hit, err := rc.Render("stale-key", "s1", func() ([]byte, string, error) {
			close(started)
			<-release
			return []byte("stale"), "image/png", nil
		})
		if err != nil || hit || string(body) != "stale" {
			t.Errorf("flight: body=%q hit=%v err=%v", body, hit, err)
		}
	}()
	<-started
	rc.InvalidateSession("s1") // session replaced mid-render
	close(release)
	<-done
	if st := rc.Stats(); st.Entries != 0 || st.Bytes != 0 {
		t.Fatalf("stale flight entered the store: %+v", st)
	}
	rc.mu.Lock()
	nEpochs := len(rc.epochs)
	rc.mu.Unlock()
	if nEpochs != 0 {
		t.Fatalf("epoch marker leaked: %d", nEpochs)
	}
	// A fresh render of the session caches normally again.
	rc.Render("fresh-key", "s1", func() ([]byte, string, error) { //nolint:errcheck
		return []byte("fresh"), "image/png", nil
	})
	if st := rc.Stats(); st.Entries != 1 {
		t.Fatalf("post-invalidation render not cached: %+v", st)
	}
}

// TestRenderCacheErrorFlightCounters: followers of a failing flight must
// not inflate the hit counter.
func TestRenderCacheErrorFlightCounters(t *testing.T) {
	rc := newRenderCache(1 << 20)
	release := make(chan struct{})
	var wg sync.WaitGroup
	const n = 4
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, _, _, errs[i] = rc.Render("k", "s", func() ([]byte, string, error) {
				<-release
				return nil, "", errors.New("encode failed")
			})
		}(i)
	}
	for {
		rc.mu.Lock()
		launched := len(rc.inflight) == 1
		rc.mu.Unlock()
		if launched {
			break
		}
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()
	for i, err := range errs {
		if err == nil {
			t.Fatalf("caller %d saw no error", i)
		}
	}
	// A goroutine arriving after the shared flight resolves becomes a new
	// leader (one more miss), so only hits and entries are exact: failures
	// must never count as hits nor enter the store.
	if st := rc.Stats(); st.Hits != 0 || st.Misses < 1 || st.Entries != 0 {
		t.Fatalf("stats after failed flight = %+v", st)
	}
}

// TestRenderCacheDisabledStillDedups: with a zero byte bound nothing is
// stored, but concurrent identical renders still collapse into one flight.
func TestRenderCacheDisabledStillDedups(t *testing.T) {
	rc := newRenderCache(0)
	rc.Render("k", "s", func() ([]byte, string, error) { //nolint:errcheck
		return []byte("body"), "image/png", nil
	})
	if st := rc.Stats(); st.Entries != 0 || st.Bytes != 0 {
		t.Fatalf("disabled cache stored entries: %+v", st)
	}
}

// --- HTTP-level behavior ----------------------------------------------------

// TestRenderServedFromCache: a repeated identical /render request must be a
// cache hit with a byte-identical body, and the hit counter must increment.
func TestRenderServedFromCache(t *testing.T) {
	ts, srv := newTestServer(t)
	id := createUpload(t, ts, "cached")
	url := ts.URL + "/api/v1/sessions/" + id + "/render?width=300&height=200"

	get := func() (string, []byte) {
		t.Helper()
		resp, err := http.Get(url)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != 200 {
			t.Fatalf("status = %d", resp.StatusCode)
		}
		return resp.Header.Get("X-Render-Cache"), body
	}
	state1, body1 := get()
	state2, body2 := get()
	if state1 != "miss" || state2 != "hit" {
		t.Fatalf("cache states = %q, %q; want miss, hit", state1, state2)
	}
	if string(body1) != string(body2) {
		t.Fatal("cached body differs from rendered body")
	}
	st := srv.RenderCacheStats()
	if st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestConcurrentIdenticalRenders is the thundering-herd case: many clients
// ask for the same view at once and exactly one rasterization runs.
func TestConcurrentIdenticalRenders(t *testing.T) {
	ts, srv := newTestServer(t)
	id := createUpload(t, ts, "herd")
	url := ts.URL + "/api/v1/sessions/" + id + "/render?width=640&height=480"

	const n = 12
	var wg sync.WaitGroup
	bodies := make([][]byte, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Get(url)
			if err != nil {
				t.Error(err)
				return
			}
			defer resp.Body.Close()
			bodies[i], _ = io.ReadAll(resp.Body)
		}(i)
	}
	wg.Wait()
	for i := 1; i < n; i++ {
		if string(bodies[i]) != string(bodies[0]) {
			t.Fatalf("client %d saw a different body", i)
		}
	}
	st := srv.RenderCacheStats()
	if st.Misses != 1 {
		t.Fatalf("%d rasterizations for %d identical requests, want 1 (stats %+v)", st.Misses, n, st)
	}
	if st.Hits != n-1 {
		t.Fatalf("hits = %d, want %d (stats %+v)", st.Hits, n-1, st)
	}
}

// TestCacheInvalidationOnSessionChange covers the three drop paths: replace,
// delete, and store eviction must all purge the session's cached bodies.
func TestCacheInvalidationOnSessionChange(t *testing.T) {
	ts, srv := newTestServer(t)
	store := srv.Store()
	id := createUpload(t, ts, "invalidate")
	url := ts.URL + "/api/v1/sessions/" + id + "/render?width=300&height=200"

	warm := func() {
		t.Helper()
		resp, err := http.Get(url)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body) //nolint:errcheck
		resp.Body.Close()
	}
	entriesFor := func(sessionID string) int {
		srv.cache.mu.Lock()
		defer srv.cache.mu.Unlock()
		n := 0
		for _, el := range srv.cache.entries {
			if el.Value.(*renderEntry).sessionID == sessionID {
				n++
			}
		}
		return n
	}

	// Replace purges.
	warm()
	if entriesFor(id) != 1 {
		t.Fatalf("entries before replace = %d", entriesFor(id))
	}
	sess, _ := store.Get(id)
	sess.Replace(demoSchedule())
	if entriesFor(id) != 0 {
		t.Fatal("replace left cached bodies")
	}

	// Delete purges.
	warm()
	if entriesFor(id) != 1 {
		t.Fatal("warm after replace failed")
	}
	store.Delete(id)
	if entriesFor(id) != 0 {
		t.Fatal("delete left cached bodies")
	}

	// LRU eviction purges: re-create sessions and shrink the cap.
	idA := createUpload(t, ts, "a")
	urlA := ts.URL + "/api/v1/sessions/" + idA + "/render?width=300&height=200"
	resp, err := http.Get(urlA)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body) //nolint:errcheck
	resp.Body.Close()
	if entriesFor(idA) != 1 {
		t.Fatal("warm for eviction failed")
	}
	idB := createUpload(t, ts, "b") // more recently used than idA
	store.SetMaxSessions(1)         // evicts idA
	if _, ok := store.Get(idA); ok {
		t.Fatal("idA survived the cap")
	}
	if _, ok := store.Get(idB); !ok {
		t.Fatal("idB evicted unexpectedly")
	}
	if entriesFor(idA) != 0 {
		t.Fatal("eviction left cached bodies")
	}
}

// TestServerMetaEndpoint reads the observability counters over HTTP.
func TestServerMetaEndpoint(t *testing.T) {
	ts, _ := newTestServer(t)
	id := createUpload(t, ts, "meta")
	url := ts.URL + "/api/v1/sessions/" + id + "/render?width=300&height=200"
	for i := 0; i < 3; i++ { // 1 miss + 2 hits
		resp, err := http.Get(url)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body) //nolint:errcheck
		resp.Body.Close()
	}
	code, meta := doJSON(t, "GET", ts.URL+"/api/v1/meta", nil, "")
	if code != 200 {
		t.Fatalf("meta = %d", code)
	}
	cache, ok := meta["render_cache"].(map[string]any)
	if !ok {
		t.Fatalf("no render_cache in %v", meta)
	}
	if cache["hits"].(float64) != 2 || cache["misses"].(float64) != 1 {
		t.Fatalf("cache counters = %v", cache)
	}
	if meta["sessions"].(float64) != 1 {
		t.Fatalf("sessions = %v", meta["sessions"])
	}
}
