package api

import (
	"context"
	"fmt"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// newWorkerPool starts n worker API servers and returns their base URLs.
func newWorkerPool(t *testing.T, n int) []string {
	t.Helper()
	urls := make([]string, n)
	for i := range urls {
		ts, _ := newTestServer(t)
		urls[i] = ts.URL
	}
	return urls
}

// waitCampaign blocks on the engine's wait primitive (not a sleep loop)
// until the coordinated campaign is terminal, then fetches its final state.
func waitCampaign(t *testing.T, ts *httptest.Server, srv *Server, id string) map[string]any {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	if _, err := srv.CoordJobs().Wait(ctx, id); err != nil {
		t.Fatalf("wait %s: %v", id, err)
	}
	code, info := doJSON(t, "GET", ts.URL+"/api/v1/campaigns/"+id, nil, "")
	if code != 200 {
		t.Fatalf("get campaign %s = %d %v", id, code, info)
	}
	return info
}

// TestCoordinatedCampaign runs POST /api/v1/campaigns against two real
// workers and checks the merged result equals a direct (uncoordinated) job
// on the same spec.
func TestCoordinatedCampaign(t *testing.T) {
	ts, srv := newTestServer(t)
	srv.SetCoordWorkers(newWorkerPool(t, 2))

	spec := fmt.Sprintf(smallJobSpec, `, "shards": 4`)
	code, info := doJSON(t, "POST", ts.URL+"/api/v1/campaigns", strings.NewReader(spec), "application/json")
	if code != 202 {
		t.Fatalf("create campaign = %d %v", code, info)
	}
	id := info["id"].(string)
	if info["kind"] != "campaign-coordinated" {
		t.Fatalf("kind = %v", info["kind"])
	}

	final := waitCampaign(t, ts, srv, id)
	if final["state"] != "done" {
		t.Fatalf("final state = %v (error %v)", final["state"], final["error"])
	}
	coordination := final["coordination"].(map[string]any)
	if got := coordination["shards_done"].(float64); got != 4 {
		t.Fatalf("shards_done = %v", got)
	}
	if got := coordination["cells_done"].(float64); got != 4 {
		t.Fatalf("cells_done = %v", got)
	}
	prog := final["progress"].(map[string]any)
	if prog["done"].(float64) != 4 || prog["total"].(float64) != 4 {
		t.Fatalf("job progress = %v", prog)
	}

	// The coordinated result equals a plain job run of the same spec.
	jobID := launchJob(t, ts, fmt.Sprintf(smallJobSpec, ""))
	if st := pollJob(t, ts, jobID); st["state"] != "done" {
		t.Fatalf("reference job = %v", st)
	}
	code, coordRes := doJSON(t, "GET", ts.URL+"/api/v1/campaigns/"+id+"/result", nil, "")
	if code != 200 {
		t.Fatalf("campaign result = %d %v", code, coordRes)
	}
	code, jobRes := doJSON(t, "GET", ts.URL+"/api/v1/jobs/"+jobID+"/result", nil, "")
	if code != 200 {
		t.Fatalf("job result = %d", code)
	}
	if coordRes["table"].(string) != jobRes["table"].(string) {
		t.Fatalf("coordinated table differs:\n%s\nvs\n%s", coordRes["table"], jobRes["table"])
	}

	// The campaign listing carries it; the plain job listing does too (same
	// engine), but under its own kind.
	code, list := doJSON(t, "GET", ts.URL+"/api/v1/campaigns", nil, "")
	if code != 200 || len(list["campaigns"].([]any)) != 1 {
		t.Fatalf("campaigns list = %d %v", code, list)
	}
}

// TestCoordinatedCampaignWorkerOverride runs with workers named in the
// request body instead of the server pool.
func TestCoordinatedCampaignWorkerOverride(t *testing.T) {
	ts, srv := newTestServer(t)
	pool := newWorkerPool(t, 1)
	body := fmt.Sprintf(`{"algos": ["cpa", "mcpa"], "shapes": ["serial"], "dag_sizes": [15],
		"cluster_sizes": [16], "replicates": 2, "seed": 3, "coord_workers": [%q]}`, pool[0])
	code, info := doJSON(t, "POST", ts.URL+"/api/v1/campaigns", strings.NewReader(body), "application/json")
	if code != 202 {
		t.Fatalf("create campaign = %d %v", code, info)
	}
	final := waitCampaign(t, ts, srv, info["id"].(string))
	if final["state"] != "done" {
		t.Fatalf("final state = %v (error %v)", final["state"], final["error"])
	}
}

func TestCoordinatedCampaignBadInputs(t *testing.T) {
	ts, srv := newTestServer(t)

	// No worker pool configured: campaigns are unavailable.
	code, _ := doJSON(t, "POST", ts.URL+"/api/v1/campaigns",
		strings.NewReader(fmt.Sprintf(smallJobSpec, "")), "application/json")
	if code != 503 {
		t.Fatalf("no workers = %d, want 503", code)
	}

	srv.SetCoordWorkers(newWorkerPool(t, 1))
	for name, check := range map[string]struct {
		method, url, body string
		want              int
	}{
		"bad json":         {"POST", "/api/v1/campaigns", "{", 400},
		"unknown field":    {"POST", "/api/v1/campaigns", `{"bogus": 1}`, 400},
		"pre-sharded spec": {"POST", "/api/v1/campaigns", fmt.Sprintf(smallJobSpec, `, "shard": "1/2"`), 400},
		"one algo":         {"POST", "/api/v1/campaigns", `{"algos": ["cpa"]}`, 400},
		"unknown campaign": {"GET", "/api/v1/campaigns/j99", "", 404},
		"unknown cancel":   {"DELETE", "/api/v1/campaigns/j99", "", 404},
		"unknown result":   {"GET", "/api/v1/campaigns/j99/result", "", 404},
	} {
		code, _ := doJSON(t, check.method, ts.URL+check.url, strings.NewReader(check.body), "application/json")
		if code != check.want {
			t.Errorf("%s: code = %d, want %d", name, code, check.want)
		}
	}

	// A plain job is not addressable as a campaign (and vice versa its
	// in-flight result answers 409, which the jobs tests cover).
	jobID := launchJob(t, ts, fmt.Sprintf(smallJobSpec, ""))
	pollJob(t, ts, jobID)
	if code, _ := doJSON(t, "GET", ts.URL+"/api/v1/campaigns/"+jobID, nil, ""); code != 404 {
		t.Fatalf("plain job as campaign = %d, want 404", code)
	}
}

// TestCoordinatedCampaignResultTooSoon pins the 409 while the fan-out is
// still running, plus cancellation through the campaign surface.
func TestCoordinatedCampaignCancel(t *testing.T) {
	ts, srv := newTestServer(t)
	srv.SetCoordWorkers(newWorkerPool(t, 1))
	// Heavy enough that cancellation strikes before completion.
	body := `{"algos": ["cpa", "mcpa"], "replicates": 6, "seed": 5, "shards": 8}`
	code, info := doJSON(t, "POST", ts.URL+"/api/v1/campaigns", strings.NewReader(body), "application/json")
	if code != 202 {
		t.Fatalf("create campaign = %d %v", code, info)
	}
	id := info["id"].(string)
	if code, _ := doJSON(t, "GET", ts.URL+"/api/v1/campaigns/"+id+"/result", nil, ""); code != 409 {
		t.Fatalf("result too soon = %d, want 409", code)
	}
	if code, _ := doJSON(t, "DELETE", ts.URL+"/api/v1/campaigns/"+id, nil, ""); code != 200 {
		t.Fatalf("cancel = %d", code)
	}
	final := waitCampaign(t, ts, srv, id)
	if final["state"] == "done" {
		t.Fatalf("cancelled campaign finished done")
	}
}
