package api

import (
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/dag"
	"repro/internal/platform"
	"repro/internal/sched"
	"repro/internal/sim"
)

// DAGSpec describes a task graph to generate server-side. Zero values fall
// back to the defaults of the command-line mode (random shape, 30 nodes,
// seed 1, the benchmark work range).
type DAGSpec struct {
	Shape string `json:"shape,omitempty"` // serial, wide, long, random, forkjoin
	Nodes int    `json:"nodes,omitempty"`
	Seed  int64  `json:"seed,omitempty"`
	// Optional cost-model overrides; zero keeps dag.DefaultGenOptions.
	WorkMin        float64 `json:"work_min,omitempty"`
	WorkMax        float64 `json:"work_max,omitempty"`
	SerialFraction float64 `json:"serial_fraction,omitempty"`
	EdgeBytes      float64 `json:"edge_bytes,omitempty"`
}

// Build generates the graph.
func (d *DAGSpec) Build() (*dag.Graph, error) {
	shapeName := d.Shape
	if shapeName == "" {
		shapeName = "random"
	}
	shape, err := dag.ParseShape(shapeName)
	if err != nil {
		return nil, err
	}
	nodes := d.Nodes
	if nodes <= 0 {
		nodes = 30
	}
	seed := d.Seed
	if seed == 0 {
		seed = 1
	}
	opt := dag.DefaultGenOptions(nodes)
	if d.WorkMin > 0 {
		opt.WorkMin = d.WorkMin
	}
	if d.WorkMax > 0 {
		opt.WorkMax = d.WorkMax
	}
	if d.SerialFraction > 0 {
		opt.SerialFraction = d.SerialFraction
	}
	if d.EdgeBytes > 0 {
		opt.EdgeBytes = d.EdgeBytes
	}
	return dag.Generate(shape, opt, rand.New(rand.NewSource(seed))), nil
}

// ClusterSpec is one cluster of a described platform.
type ClusterSpec struct {
	Name          string  `json:"name,omitempty"`
	Hosts         int     `json:"hosts"`
	Speed         float64 `json:"speed,omitempty"`          // flop/s, default 1e9
	LinkLatency   float64 `json:"link_latency,omitempty"`   // s, default 5e-5
	LinkBandwidth float64 `json:"link_bandwidth,omitempty"` // bytes/s, default 1.25e9
}

// PlatformSpec describes the execution platform. Either the homogeneous
// shortcut (hosts, speed) or an explicit cluster list; an empty spec means
// a 16-host 1 Gflop/s cluster.
type PlatformSpec struct {
	Hosts             int           `json:"hosts,omitempty"`
	Speed             float64       `json:"speed,omitempty"`
	Clusters          []ClusterSpec `json:"clusters,omitempty"`
	BackboneLatency   float64       `json:"backbone_latency,omitempty"`
	BackboneBandwidth float64       `json:"backbone_bandwidth,omitempty"`
}

// Build constructs the platform.
func (p *PlatformSpec) Build() (*platform.Platform, error) {
	lat, bw := p.BackboneLatency, p.BackboneBandwidth
	if lat <= 0 {
		lat = 1e-4
	}
	if bw <= 0 {
		bw = 1.25e9
	}
	if len(p.Clusters) == 0 {
		hosts := p.Hosts
		if hosts <= 0 {
			hosts = 16
		}
		speed := p.Speed
		if speed <= 0 {
			speed = 1e9
		}
		plat := platform.New(lat, bw)
		plat.AddCluster("cluster", hosts, speed, 5e-5, 1.25e9)
		return plat, nil
	}
	if p.Hosts != 0 || p.Speed != 0 {
		return nil, fmt.Errorf("api: platform spec mixes the homogeneous shortcut (hosts, speed) with an explicit cluster list")
	}
	plat := platform.New(lat, bw)
	for i, c := range p.Clusters {
		if c.Hosts <= 0 {
			return nil, fmt.Errorf("api: cluster %d needs hosts > 0", i)
		}
		speed := c.Speed
		if speed <= 0 {
			speed = 1e9
		}
		linkLat := c.LinkLatency
		if linkLat <= 0 {
			linkLat = 5e-5
		}
		linkBW := c.LinkBandwidth
		if linkBW <= 0 {
			linkBW = 1.25e9
		}
		name := c.Name
		if name == "" {
			name = fmt.Sprintf("cluster%d", i)
		}
		plat.AddCluster(name, c.Hosts, speed, linkLat, linkBW)
	}
	return plat, nil
}

// CreateRequest is the JSON body of POST /api/v1/sessions for server-side
// schedule generation: pick any registered scheduler by name, run it on a
// generated DAG and a described platform, and store the resulting schedule
// as a session — no file on disk involved.
type CreateRequest struct {
	Name string `json:"name,omitempty"`
	Algo string `json:"algo"`
	// DAG and Platform may be omitted entirely for defaults.
	DAG      *DAGSpec      `json:"dag,omitempty"`
	Platform *PlatformSpec `json:"platform,omitempty"`
	// Simulate replays the plan on the discrete-event simulator and stores
	// the simulated trace; false stores the scheduler's planned times.
	Simulate bool `json:"simulate,omitempty"`
}

// Build runs the request through the scheduler registry and returns the
// resulting schedule.
func (r *CreateRequest) Build() (*core.Schedule, error) {
	if r.Algo == "" {
		return nil, fmt.Errorf("api: create request needs an algo (registered: %v)", sched.List())
	}
	algo, err := sched.Lookup(r.Algo)
	if err != nil {
		return nil, err
	}
	dagSpec := r.DAG
	if dagSpec == nil {
		dagSpec = &DAGSpec{}
	}
	g, err := dagSpec.Build()
	if err != nil {
		return nil, err
	}
	platSpec := r.Platform
	if platSpec == nil {
		platSpec = &PlatformSpec{}
	}
	p, err := platSpec.Build()
	if err != nil {
		return nil, err
	}
	res, err := algo.Schedule(g, p)
	if err != nil {
		return nil, err
	}
	if r.Simulate {
		wr, err := res.Execute(sim.ExecOptions{})
		if err != nil {
			return nil, err
		}
		return wr.Schedule, nil
	}
	return res.Trace()
}
