package api

import (
	"context"
	"encoding/json"
	"net/http"
	"sync"

	"repro/internal/campaign"
	"repro/internal/coord"
	"repro/internal/events"
	"repro/internal/jobs"
	"repro/internal/obs"
)

// shardEvent is the payload of topic "shard" events: the coordinator's
// per-shard progress snapshot plus the campaign job it belongs to.
type shardEvent struct {
	Campaign string `json:"campaign"`
	coord.ShardProgress
}

// Coordinated-campaign surface: POST /api/v1/campaigns fans one campaign
// out over the server's configured worker pool (remote jedserve instances)
// through the coord subsystem, running as a job on the engine; GET exposes
// the aggregate per-shard/per-worker progress on top of the job state, and
// /result serves the merged full factorial once done.

// campaignTracker pairs the engine job with its coordinator so progress
// snapshots survive while the run is in flight. Entries are pruned lazily
// when the engine's retention cap drops the job.
type campaignTracker struct {
	mu   sync.Mutex
	runs map[string]*coord.Coordinator
}

func (t *campaignTracker) put(id string, c *coord.Coordinator) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.runs == nil {
		t.runs = map[string]*coord.Coordinator{}
	}
	t.runs[id] = c
}

func (t *campaignTracker) get(id string) (*coord.Coordinator, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	c, ok := t.runs[id]
	return c, ok
}

// prune drops the trackers of jobs the engine no longer retains.
func (t *campaignTracker) prune(e *jobs.Engine) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for id := range t.runs {
		if _, ok := e.Get(id); !ok {
			delete(t.runs, id)
		}
	}
}

// campaignRequest is the body of POST /api/v1/campaigns: the campaign spec
// plus the fan-out knobs. Workers overrides the server's configured pool
// for this one campaign; Shard stays forbidden — the coordinator owns the
// sharding.
type campaignRequest struct {
	jobs.CampaignSpec
	Shards      int      `json:"shards,omitempty"`
	MaxAttempts int      `json:"max_attempts,omitempty"`
	Workers     []string `json:"coord_workers,omitempty"`
}

// campaignInfo is the wire state of one coordinated campaign: the job plus
// the coordinator's aggregate progress.
type campaignInfo struct {
	jobInfo
	Coordination *coord.Progress `json:"coordination,omitempty"`
}

func (s *Server) campaignInfoOf(j *jobs.Job) campaignInfo {
	info := campaignInfo{jobInfo: infoOfJob(j)}
	if c, ok := s.campaigns.get(j.ID()); ok {
		p := c.Progress()
		info.Coordination = &p
	}
	return info
}

// createCampaign validates the request, builds a coordinator over the
// worker pool, and runs it as a job on the engine; 202 with the poll URL.
func (s *Server) createCampaign(w http.ResponseWriter, r *http.Request) {
	body := http.MaxBytesReader(w, r.Body, maxUploadBytes)
	defer body.Close()
	var req campaignRequest
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad_spec", "bad campaign spec: %v", err)
		return
	}
	workers := req.Workers
	if len(workers) == 0 {
		workers = s.coordWorkers
	}
	cfg := coord.Config{
		Spec:        req.CampaignSpec,
		Shards:      req.Shards,
		MaxAttempts: req.MaxAttempts,
		Metrics:     s.metrics,
		// The request's trace (minted or adopted by the obs middleware)
		// follows the campaign to every worker hop, so one ID submitted on
		// POST /api/v1/campaigns shows up in each worker's access log.
		Trace: obs.FromContext(r.Context()),
	}
	switch {
	case len(workers) > 0:
		// An explicit pool (request or server flag) wins: static push
		// dispatch, exactly as before the fleet existed.
		cfg.Workers = workers
	case s.fleet != nil:
		cfg.Fleet = s.fleet
		cfg.MinWorkers = s.fleetMin
	default:
		writeError(w, http.StatusServiceUnavailable, "no_workers",
			"no workers configured (start the server with a worker pool or a fleet, or pass coord_workers)")
		return
	}
	c, err := coord.New(cfg)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad_spec", "%v", err)
		return
	}
	header := c.Header()
	j := s.coordJobs.Submit(jobs.KindCoordinated, c.Cells(), func(ctx context.Context, j *jobs.Job) (any, error) {
		// The observers are installed here — before Run, on the job's own
		// goroutine — because the job handle does not exist at Submit time.
		c.SetOnCell(func(campaign.Cell) { j.Advance(1) })
		c.SetOnShard(func(sp coord.ShardProgress) {
			// Shard events are keyed by the campaign job, so one SSE filter
			// (?campaign=cN) follows the whole fan-out.
			s.bus.Publish(events.TopicShard, sp.State, j.ID(), shardEvent{Campaign: j.ID(), ShardProgress: sp})
		})
		if s.persist != nil {
			// Journal run progress under the job's ID: another coordinator
			// pointed at the same state directory can resume from it.
			c.SetPersist(s.persist, j.ID())
		}
		res, err := c.Run(ctx)
		if err != nil {
			return nil, err
		}
		return &jobs.CampaignOutcome{Header: header, Result: res}, nil
	})
	s.campaigns.put(j.ID(), c)
	s.campaigns.prune(s.coordJobs)
	w.Header().Set("Location", "/api/v1/campaigns/"+j.ID())
	writeJSON(w, http.StatusAccepted, s.campaignInfoOf(j))
}

// campaignJob resolves {id} to a coordinated-campaign job.
func (s *Server) campaignJob(w http.ResponseWriter, r *http.Request) (*jobs.Job, bool) {
	id := r.PathValue("id")
	j, ok := s.coordJobs.Get(id)
	if !ok || j.Status().Kind != jobs.KindCoordinated {
		writeError(w, http.StatusNotFound, "campaign_not_found", "no campaign %q", id)
		return nil, false
	}
	return j, true
}

func (s *Server) listCampaigns(w http.ResponseWriter, _ *http.Request) {
	var infos []campaignInfo
	for _, j := range s.coordJobs.List() {
		if j.Status().Kind == jobs.KindCoordinated {
			infos = append(infos, s.campaignInfoOf(j))
		}
	}
	if infos == nil {
		infos = []campaignInfo{}
	}
	writeJSON(w, http.StatusOK, map[string]any{"campaigns": infos})
}

// getCampaign reports the coordinated campaign's aggregate state; ?wait=
// long-polls like the job endpoint.
func (s *Server) getCampaign(w http.ResponseWriter, r *http.Request) {
	j, ok := s.campaignJob(w, r)
	if !ok {
		return
	}
	if !s.maybeWait(w, r, s.coordJobs, j) {
		return
	}
	writeJSON(w, http.StatusOK, s.campaignInfoOf(j))
}

func (s *Server) cancelCampaign(w http.ResponseWriter, r *http.Request) {
	j, ok := s.campaignJob(w, r)
	if !ok {
		return
	}
	j.Cancel()
	writeJSON(w, http.StatusOK, s.campaignInfoOf(j))
}

// campaignResult serves the merged full-factorial summary of a completed
// coordinated campaign — the same shape as a job result, with the whole
// campaign always present (no ?merge=: the coordinator already merged).
func (s *Server) campaignResult(w http.ResponseWriter, r *http.Request) {
	j, ok := s.campaignJob(w, r)
	if !ok {
		return
	}
	st := j.Status()
	switch st.State {
	case jobs.Done:
	case jobs.Failed:
		writeError(w, http.StatusInternalServerError, "campaign_failed", "campaign %s failed: %s", st.ID, st.Err)
		return
	default:
		writeError(w, http.StatusConflict, "campaign_not_terminal", "campaign %s is %s", st.ID, st.State)
		return
	}
	out, err := jobs.CampaignResult(j)
	if err != nil {
		writeError(w, http.StatusConflict, "result_unavailable", "%v", err)
		return
	}
	writeCampaignSummary(w, r, out.Header, out.Result, []string{st.ID})
}
