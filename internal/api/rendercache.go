package api

import (
	"container/list"
	"sync"
)

// renderCache memoizes the encoded bodies of stateless renders so an ETag
// miss can still be answered without rasterizing. The key is the strong
// ETag the conditional-request path already computes — session ID, schedule
// revision, content fingerprint, and canonicalized query — so a cached body
// can never outlive the view it encodes; entries are additionally dropped
// eagerly whenever their session is replaced, deleted, evicted, or expired.
//
// Concurrent identical requests are deduplicated singleflight-style: the
// first caller renders, later callers block on the flight and share the
// body, so a thundering herd of one hot view costs one rasterization.
//
// Memory is bounded by bytes, not entries: insertion evicts least recently
// used bodies until the total body size fits maxBytes. SetMaxBytes(0) turns
// the body store off but keeps the flight deduplication.
type renderCache struct {
	mu       sync.Mutex
	maxBytes int64
	size     int64
	ll       *list.List               // front = most recently used
	entries  map[string]*list.Element // key -> element holding *renderEntry
	inflight map[string]*renderFlight
	// epochs guards flights against invalidate-during-render: a session's
	// epoch is bumped by InvalidateSession while it has flights in the air,
	// and a completing flight only stores its body if the epoch it started
	// under still holds. Entries are pruned with the session's last flight.
	epochs map[string]uint64

	hits      int64 // served from the store or a shared flight
	misses    int64 // caused an actual render
	evictions int64
}

type renderEntry struct {
	key         string
	sessionID   string
	contentType string
	body        []byte
}

type renderFlight struct {
	done        chan struct{}
	sessionID   string
	epoch       uint64 // session epoch when the flight launched
	body        []byte
	contentType string
	err         error
}

// renderCacheStats is a snapshot of the cache counters for /api/v1/meta.
type renderCacheStats struct {
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Evictions int64 `json:"evictions"`
	Entries   int   `json:"entries"`
	Bytes     int64 `json:"bytes"`
	MaxBytes  int64 `json:"max_bytes"`
}

func newRenderCache(maxBytes int64) *renderCache {
	return &renderCache{
		maxBytes: maxBytes,
		ll:       list.New(),
		entries:  map[string]*list.Element{},
		inflight: map[string]*renderFlight{},
		epochs:   map[string]uint64{},
	}
}

// SetMaxBytes rebounds the body store, evicting immediately if it shrank.
func (rc *renderCache) SetMaxBytes(n int64) {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	rc.maxBytes = n
	rc.evictLocked()
}

// Render returns the body and content type for key, running fn at most once
// across all concurrent callers with the same key. hit reports whether the
// body came from the cache or a shared in-progress render.
func (rc *renderCache) Render(key, sessionID string, fn func() (body []byte, contentType string, err error)) (body []byte, contentType string, hit bool, err error) {
	rc.mu.Lock()
	if el, ok := rc.entries[key]; ok {
		rc.ll.MoveToFront(el)
		e := el.Value.(*renderEntry)
		rc.hits++
		rc.mu.Unlock()
		return e.body, e.contentType, true, nil
	}
	if fl, ok := rc.inflight[key]; ok {
		rc.mu.Unlock()
		<-fl.done
		if fl.err == nil {
			rc.mu.Lock()
			rc.hits++
			rc.mu.Unlock()
			return fl.body, fl.contentType, true, nil
		}
		return fl.body, fl.contentType, false, fl.err
	}
	fl := &renderFlight{done: make(chan struct{}), sessionID: sessionID, epoch: rc.epochs[sessionID]}
	rc.inflight[key] = fl
	rc.misses++
	rc.mu.Unlock()

	fl.body, fl.contentType, fl.err = fn()

	rc.mu.Lock()
	delete(rc.inflight, key)
	// Only store the body if the session was not invalidated while the
	// flight was in the air: its key embeds a revision no future request
	// computes anymore, so the entry would be pure dead weight.
	if fl.err == nil && rc.epochs[sessionID] == fl.epoch {
		rc.insertLocked(key, sessionID, fl.contentType, fl.body)
	}
	rc.pruneEpochLocked(sessionID)
	rc.mu.Unlock()
	close(fl.done)
	return fl.body, fl.contentType, false, fl.err
}

// pruneEpochLocked drops the session's epoch marker once it has no flights
// left, so the map stays bounded by concurrent renders, not session history.
func (rc *renderCache) pruneEpochLocked(sessionID string) {
	for _, fl := range rc.inflight {
		if fl.sessionID == sessionID {
			return
		}
	}
	delete(rc.epochs, sessionID)
}

func (rc *renderCache) insertLocked(key, sessionID, contentType string, body []byte) {
	if rc.maxBytes <= 0 || int64(len(body)) > rc.maxBytes {
		return
	}
	if el, ok := rc.entries[key]; ok { // raced with another non-flight insert
		rc.size -= int64(len(el.Value.(*renderEntry).body))
		rc.ll.Remove(el)
		delete(rc.entries, key)
	}
	e := &renderEntry{key: key, sessionID: sessionID, contentType: contentType, body: body}
	rc.entries[key] = rc.ll.PushFront(e)
	rc.size += int64(len(body))
	rc.evictLocked()
}

// evictLocked drops least recently used bodies until the size bound holds.
func (rc *renderCache) evictLocked() {
	for rc.size > rc.maxBytes && rc.ll.Len() > 0 {
		el := rc.ll.Back()
		e := el.Value.(*renderEntry)
		rc.ll.Remove(el)
		delete(rc.entries, e.key)
		rc.size -= int64(len(e.body))
		rc.evictions++
	}
}

// InvalidateSession drops every cached body of the given session and bumps
// its epoch so renders currently in the air complete for their callers but
// do not store their (now unreachable) bodies.
func (rc *renderCache) InvalidateSession(sessionID string) {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	for _, fl := range rc.inflight {
		if fl.sessionID == sessionID {
			rc.epochs[sessionID]++
			break
		}
	}
	for el := rc.ll.Front(); el != nil; {
		next := el.Next()
		if e := el.Value.(*renderEntry); e.sessionID == sessionID {
			rc.ll.Remove(el)
			delete(rc.entries, e.key)
			rc.size -= int64(len(e.body))
		}
		el = next
	}
}

// Stats snapshots the counters.
func (rc *renderCache) Stats() renderCacheStats {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	return renderCacheStats{
		Hits:      rc.hits,
		Misses:    rc.misses,
		Evictions: rc.evictions,
		Entries:   rc.ll.Len(),
		Bytes:     rc.size,
		MaxBytes:  rc.maxBytes,
	}
}
