package api

import (
	"net/http"
	"net/http/httptest"
	"strconv"
	"testing"
	"time"
)

func TestRateLimiterBucket(t *testing.T) {
	clock := &fakeClock{now: time.Unix(1000, 0)} // shared with the store TTL tests
	rl := newRateLimiter(2, 4)                   // 2 tokens/s, burst 4
	rl.now = clock.Now

	for i := 0; i < 4; i++ {
		if ok, _ := rl.allow("a"); !ok {
			t.Fatalf("request %d of the burst limited", i)
		}
	}
	ok, retry := rl.allow("a")
	if ok {
		t.Fatal("request beyond the burst allowed")
	}
	if retry <= 0 || retry > time.Second {
		t.Fatalf("retry-after = %v, want (0, 1s] at 2 tokens/s", retry)
	}

	// Another client has its own bucket.
	if ok, _ := rl.allow("b"); !ok {
		t.Fatal("second client limited by the first's bucket")
	}

	// Half a second refills one token.
	clock.Advance(500 * time.Millisecond)
	if ok, _ := rl.allow("a"); !ok {
		t.Fatal("refilled token not granted")
	}
	if ok, _ := rl.allow("a"); ok {
		t.Fatal("second token granted after a one-token refill")
	}

	st := rl.Stats()
	if st.Allowed != 6 || st.Limited != 2 || st.Clients != 2 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestRateLimiterPrune(t *testing.T) {
	clock := &fakeClock{now: time.Unix(1000, 0)}
	rl := newRateLimiter(1, 1)
	rl.now = clock.Now
	for i := 0; i < rateLimitMaxBuckets; i++ {
		rl.allow("client-" + strconv.Itoa(i))
	}
	if got := rl.Stats().Clients; got != rateLimitMaxBuckets {
		t.Fatalf("clients = %d", got)
	}
	// After every bucket refilled, a new client prunes them all.
	clock.Advance(time.Hour)
	rl.allow("fresh")
	if got := rl.Stats().Clients; got != 1 {
		t.Fatalf("clients after prune = %d, want 1", got)
	}
}

// TestRateLimiterBoundedWhenAllActive pins that the bucket map never
// exceeds its cap even when no bucket is idle enough to prune — arbitrary
// eviction must keep the bound.
func TestRateLimiterBoundedWhenAllActive(t *testing.T) {
	clock := &fakeClock{now: time.Unix(1000, 0)}
	rl := newRateLimiter(1, 1)
	rl.now = clock.Now
	// Distinct, permanently active clients (no time passes, so every bucket
	// stays drained and unprunable).
	for i := 0; i < rateLimitMaxBuckets+100; i++ {
		rl.allow("client-" + strconv.Itoa(i))
	}
	if got := rl.Stats().Clients; got > rateLimitMaxBuckets {
		t.Fatalf("clients = %d, cap %d not enforced", got, rateLimitMaxBuckets)
	}
}

func TestRateLimiterDefaults(t *testing.T) {
	if rl := newRateLimiter(0, 10); rl != nil {
		t.Fatal("rate 0 did not disable the limiter")
	}
	rl := newRateLimiter(3, 0)
	if rl.burst != 6 {
		t.Fatalf("default burst = %v, want 2x rate", rl.burst)
	}
	// A nil limiter allows everything and reports zero stats.
	var nilRL *rateLimiter
	if st := nilRL.Stats(); st != (rateLimitStats{}) {
		t.Fatalf("nil stats = %+v", st)
	}
}

// TestRateLimitHTTP drives the middleware over real HTTP: burst, 429 with
// Retry-After, the exempt index page, and the meta counters.
func TestRateLimitHTTP(t *testing.T) {
	srv := NewServer(NewStore())
	t.Cleanup(srv.Close)
	srv.SetRateLimit(0.01, 3) // trickle refill: effectively 3 requests per test run
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	for i := 0; i < 3; i++ {
		code, _ := doJSON(t, "GET", ts.URL+"/api/v1/sessions", nil, "")
		if code != 200 {
			t.Fatalf("request %d = %d", i, code)
		}
	}
	resp, err := http.Get(ts.URL + "/api/v1/sessions")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-limit code = %d, want 429", resp.StatusCode)
	}
	if after, err := strconv.Atoi(resp.Header.Get("Retry-After")); err != nil || after < 1 {
		t.Fatalf("Retry-After = %q", resp.Header.Get("Retry-After"))
	}

	// The HTML index is outside /api/v1/ and stays reachable.
	resp, err = http.Get(ts.URL + "/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("index = %d", resp.StatusCode)
	}

	// Meta reports the counters — fetched via a fresh limiter so the meta
	// request itself is not starved.
	srv.SetRateLimit(0, 0)
	ts2 := httptest.NewServer(srv.Handler())
	t.Cleanup(ts2.Close)
	code, meta := doJSON(t, "GET", ts2.URL+"/api/v1/meta", nil, "")
	if code != 200 {
		t.Fatalf("meta = %d", code)
	}
	if _, ok := meta["rate_limit"]; !ok {
		t.Fatalf("meta missing rate_limit: %v", meta)
	}
}
