package api

import (
	"bytes"
	"encoding/json"
	"fmt"
	"image/png"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/jedxml"
	"repro/internal/render"
	_ "repro/internal/sched/all"
)

func newTestAPI(t *testing.T) (*httptest.Server, *Store) {
	t.Helper()
	ts, srv := newTestServer(t)
	return ts, srv.Store()
}

// newTestServer exposes the Server itself for tests that reach into the
// job engine.
func newTestServer(t *testing.T) (*httptest.Server, *Server) {
	t.Helper()
	srv := NewServer(NewStore())
	t.Cleanup(srv.Close)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return ts, srv
}

func xmlBody(t *testing.T, s *core.Schedule) *bytes.Buffer {
	t.Helper()
	var buf bytes.Buffer
	if err := jedxml.Write(&buf, s); err != nil {
		t.Fatal(err)
	}
	return &buf
}

func doJSON(t *testing.T, method, url string, body io.Reader, ct string) (int, map[string]any) {
	t.Helper()
	req, err := http.NewRequest(method, url, body)
	if err != nil {
		t.Fatal(err)
	}
	if ct != "" {
		req.Header.Set("Content-Type", ct)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var out map[string]any
	if len(raw) > 0 && strings.Contains(resp.Header.Get("Content-Type"), "json") {
		if err := json.Unmarshal(raw, &out); err != nil {
			t.Fatalf("bad JSON %q: %v", raw, err)
		}
	}
	return resp.StatusCode, out
}

func createUpload(t *testing.T, ts *httptest.Server, name string) string {
	t.Helper()
	code, info := doJSON(t, "POST", ts.URL+"/api/v1/sessions?name="+name,
		xmlBody(t, demoSchedule()), "application/xml")
	if code != 201 {
		t.Fatalf("upload = %d %v", code, info)
	}
	return info["id"].(string)
}

func TestSessionLifecycle(t *testing.T) {
	ts, _ := newTestAPI(t)

	// Empty store.
	code, list := doJSON(t, "GET", ts.URL+"/api/v1/sessions", nil, "")
	if code != 200 || len(list["sessions"].([]any)) != 0 {
		t.Fatalf("empty list = %d %v", code, list)
	}

	// Create by upload; check Location and metadata.
	resp, err := http.Post(ts.URL+"/api/v1/sessions?name=demo", "application/xml",
		xmlBody(t, demoSchedule()))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 201 {
		t.Fatalf("create = %d %s", resp.StatusCode, body)
	}
	if loc := resp.Header.Get("Location"); loc != "/api/v1/sessions/s1" {
		t.Fatalf("Location = %q", loc)
	}
	var info map[string]any
	if err := json.Unmarshal(body, &info); err != nil {
		t.Fatal(err)
	}
	if info["id"] != "s1" || info["source"] != "upload" ||
		info["tasks"].(float64) != 3 || info["hosts"].(float64) != 12 ||
		info["makespan"].(float64) != 120 {
		t.Fatalf("info = %v", info)
	}

	// Get, list, delete, get again.
	if code, _ := doJSON(t, "GET", ts.URL+"/api/v1/sessions/s1", nil, ""); code != 200 {
		t.Fatalf("get = %d", code)
	}
	code, list = doJSON(t, "GET", ts.URL+"/api/v1/sessions", nil, "")
	if code != 200 || len(list["sessions"].([]any)) != 1 {
		t.Fatalf("list = %d %v", code, list)
	}
	if code, _ := doJSON(t, "DELETE", ts.URL+"/api/v1/sessions/s1", nil, ""); code != 204 {
		t.Fatalf("delete = %d", code)
	}
	if code, _ := doJSON(t, "GET", ts.URL+"/api/v1/sessions/s1", nil, ""); code != 404 {
		t.Fatalf("get after delete = %d", code)
	}
	if code, _ := doJSON(t, "DELETE", ts.URL+"/api/v1/sessions/s1", nil, ""); code != 404 {
		t.Fatalf("double delete = %d", code)
	}
}

func TestCreateFromCSV(t *testing.T) {
	ts, _ := newTestAPI(t)
	csv := "cluster,0,alpha,4\ntask,t1,computation,0,10,0,0,4\n"
	code, info := doJSON(t, "POST", ts.URL+"/api/v1/sessions",
		strings.NewReader(csv), "text/csv")
	if code != 201 || info["tasks"].(float64) != 1 {
		t.Fatalf("csv create = %d %v", code, info)
	}
}

// TestCreateGenerated is the acceptance path: a session created purely
// server-side via a registered scheduler name, no file on disk.
func TestCreateGenerated(t *testing.T) {
	ts, store := newTestAPI(t)
	for _, algo := range []string{"random", "heft"} {
		body := fmt.Sprintf(
			`{"algo": %q, "dag": {"shape": "wide", "nodes": 12, "seed": 7}, "platform": {"hosts": 4}}`, algo)
		code, info := doJSON(t, "POST", ts.URL+"/api/v1/sessions",
			strings.NewReader(body), "application/json")
		if code != 201 {
			t.Fatalf("%s: create = %d %v", algo, code, info)
		}
		if info["source"] != "generated" || info["name"] != algo {
			t.Fatalf("%s: info = %v", algo, info)
		}
		if info["hosts"].(float64) != 4 || info["tasks"].(float64) != 12 {
			t.Fatalf("%s: wrong shape %v", algo, info)
		}
		sess, ok := store.Get(info["id"].(string))
		if !ok {
			t.Fatalf("%s: session not in store", algo)
		}
		if got := sess.Schedule().MetaValue("algorithm"); got != algo {
			t.Fatalf("algorithm meta = %q", got)
		}
		code, st := doJSON(t, "GET", ts.URL+"/api/v1/sessions/"+sess.ID+"/stats", nil, "")
		if code != 200 || st["makespan"].(float64) <= 0 || st["task_count"].(float64) != 12 {
			t.Fatalf("%s: stats = %d %v", algo, code, st)
		}
	}
}

func TestCreateGeneratedSimulated(t *testing.T) {
	ts, _ := newTestAPI(t)
	body := `{"algo": "heft", "simulate": true,
		"dag": {"shape": "forkjoin", "nodes": 15, "seed": 2},
		"platform": {"clusters": [{"name": "a", "hosts": 2, "speed": 2e9}, {"name": "b", "hosts": 4}]}}`
	code, info := doJSON(t, "POST", ts.URL+"/api/v1/sessions",
		strings.NewReader(body), "application/json")
	if code != 201 || info["clusters"].(float64) != 2 || info["hosts"].(float64) != 6 {
		t.Fatalf("simulated create = %d %v", code, info)
	}
}

func TestRenderFormatsAndParams(t *testing.T) {
	ts, _ := newTestAPI(t)
	id := createUpload(t, ts, "demo")
	base := ts.URL + "/api/v1/sessions/" + id

	// PNG honors the requested size.
	resp, err := http.Get(base + "/render?width=320&height=240")
	if err != nil {
		t.Fatal(err)
	}
	img, err := png.Decode(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.Header.Get("Content-Type") != "image/png" {
		t.Errorf("png content type = %q", resp.Header.Get("Content-Type"))
	}
	if img.Bounds().Dx() != 320 || img.Bounds().Dy() != 240 {
		t.Fatalf("png size = %v", img.Bounds())
	}

	// SVG and PDF with view parameters.
	for url, want := range map[string]string{
		base + "/render?format=svg&window=10,50&clusters=0&mode=scaled&gray=1": "<svg",
		base + "/render?format=pdf&composites=1&legend=1":                      "%PDF",
	} {
		resp, err := http.Get(url)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != 200 || !strings.Contains(string(body), want) {
			t.Fatalf("%s = %d, prefix %q", url, resp.StatusCode, body[:min(len(body), 8)])
		}
	}
}

func TestExportDispositions(t *testing.T) {
	ts, _ := newTestAPI(t)
	id := createUpload(t, ts, "demo")
	base := ts.URL + "/api/v1/sessions/" + id + "/export"
	for format, wantCT := range map[string]string{
		"png": "image/png", "svg": "image/svg+xml", "pdf": "application/pdf",
		"jedule": "application/xml",
	} {
		resp, err := http.Get(base + "?format=" + format)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("%s export = %d", format, resp.StatusCode)
		}
		if got := resp.Header.Get("Content-Type"); !strings.HasPrefix(got, wantCT) {
			t.Errorf("%s content type = %q", format, got)
		}
		cd := resp.Header.Get("Content-Disposition")
		if !strings.HasPrefix(cd, `attachment; filename="`+id+".") {
			t.Errorf("%s disposition = %q", format, cd)
		}
		if format == "jedule" {
			round, err := jedxml.Read(bytes.NewReader(body))
			if err != nil {
				t.Fatalf("exported XML does not round-trip: %v", err)
			}
			if len(round.Tasks) != 3 {
				t.Fatalf("round trip lost tasks: %d", len(round.Tasks))
			}
		}
	}
}

func TestStatsTasksMeta(t *testing.T) {
	ts, _ := newTestAPI(t)
	id := createUpload(t, ts, "demo")
	base := ts.URL + "/api/v1/sessions/" + id

	code, st := doJSON(t, "GET", base+"/stats", nil, "")
	if code != 200 || st["makespan"].(float64) != 120 || st["hosts"].(float64) != 12 {
		t.Fatalf("stats = %d %v", code, st)
	}
	code, st = doJSON(t, "GET", base+"/stats?cluster=1", nil, "")
	if code != 200 || st["hosts"].(float64) != 4 {
		t.Fatalf("cluster stats = %d %v", code, st)
	}

	code, tasks := doJSON(t, "GET", base+"/tasks", nil, "")
	if code != 200 || len(tasks["tasks"].([]any)) != 3 {
		t.Fatalf("tasks = %d %v", code, tasks)
	}
	first := tasks["tasks"].([]any)[0].(map[string]any)
	if first["id"] != "t1" || first["duration"].(float64) != 60 {
		t.Fatalf("first task = %v", first)
	}

	// Pixel hit test: replicate the layout to find a task pixel.
	l := render.ComputeLayout(demoSchedule(), 400, 300,
		render.Options{Mode: core.AlignedView, Labels: true})
	p := l.Panels[0]
	x := int(p.Transform.XToScreen(40))
	y := int(p.Transform.YToScreen(0.5))
	code, hit := doJSON(t, "GET",
		fmt.Sprintf("%s/tasks?width=400&height=300&x=%d&y=%d", base, x, y), nil, "")
	if code != 200 || hit["task"] == nil {
		t.Fatalf("hit test = %d %v", code, hit)
	}
	if hit["task"].(map[string]any)["id"] != "t1" {
		t.Fatalf("hit task = %v", hit["task"])
	}
	code, miss := doJSON(t, "GET", base+"/tasks?x=1&y=1", nil, "")
	if code != 200 || miss["task"] != nil {
		t.Fatalf("background hit = %d %v", code, miss)
	}

	code, meta := doJSON(t, "GET", base+"/meta", nil, "")
	if code != 200 {
		t.Fatalf("meta = %d", code)
	}
	if meta["meta"].(map[string]any)["algorithm"] != "demo" {
		t.Fatalf("meta = %v", meta)
	}
	clusters := meta["clusters"].([]any)
	if len(clusters) != 2 || clusters[0].(map[string]any)["name"] != "alpha" {
		t.Fatalf("clusters = %v", clusters)
	}
}

func TestBadInputs(t *testing.T) {
	ts, _ := newTestAPI(t)
	id := createUpload(t, ts, "demo")
	base := ts.URL + "/api/v1/sessions/" + id

	for name, check := range map[string]struct {
		method, url, body, ct string
		want                  int
	}{
		"bad xml":          {"POST", ts.URL + "/api/v1/sessions", "<not-jedule/>", "application/xml", 400},
		"bad json":         {"POST", ts.URL + "/api/v1/sessions", "{", "application/json", 400},
		"unknown field":    {"POST", ts.URL + "/api/v1/sessions", `{"algo":"heft","bogus":1}`, "application/json", 400},
		"unknown algo":     {"POST", ts.URL + "/api/v1/sessions", `{"algo":"nope"}`, "application/json", 400},
		"missing algo":     {"POST", ts.URL + "/api/v1/sessions", `{}`, "application/json", 400},
		"bad shape":        {"POST", ts.URL + "/api/v1/sessions", `{"algo":"heft","dag":{"shape":"blob"}}`, "application/json", 400},
		"bad platform":     {"POST", ts.URL + "/api/v1/sessions", `{"algo":"heft","platform":{"hosts":2,"clusters":[{"hosts":2}]}}`, "application/json", 400},
		"bad format param": {"POST", ts.URL + "/api/v1/sessions?format=bogus", "x", "", 400},
		"unknown session":  {"GET", ts.URL + "/api/v1/sessions/nope/render", "", "", 404},
		"bad render fmt":   {"GET", base + "/render?format=gif", "", "", 400},
		"bad window":       {"GET", base + "/render?window=5", "", "", 400},
		"inverted window":  {"GET", base + "/render?window=9,3", "", "", 400},
		"bad clusters":     {"GET", base + "/render?clusters=x", "", "", 400},
		"bad mode":         {"GET", base + "/render?mode=diagonal", "", "", 400},
		"bad bool":         {"GET", base + "/render?gray=maybe", "", "", 400},
		"huge width":       {"GET", base + "/render?width=99999", "", "", 400},
		"bad hit coords":   {"GET", base + "/tasks?x=a&y=b", "", "", 400},
		"bad stat cluster": {"GET", base + "/stats?cluster=x", "", "", 400},
		"no stat cluster":  {"GET", base + "/stats?cluster=9", "", "", 404},
		"method not allow": {"PUT", ts.URL + "/api/v1/sessions", "", "", 405},
	} {
		var body io.Reader
		if check.body != "" {
			body = strings.NewReader(check.body)
		}
		code, _ := doJSON(t, check.method, check.url, body, check.ct)
		if code != check.want {
			t.Errorf("%s: code = %d, want %d", name, code, check.want)
		}
	}
}

// TestConcurrentRenders is the acceptance criterion: two sessions rendered
// concurrently with different windows, sizes, and formats must not
// interfere. Run under -race this also proves the store and sessions are
// data-race free.
func TestConcurrentRenders(t *testing.T) {
	ts, store := newTestAPI(t)
	a := store.Add("a", "upload", demoSchedule())
	b := store.Add("b", "upload", demoSchedule())

	type job struct {
		url       string
		wantW     int    // PNG width to decode, 0 for non-PNG
		wantMagic string // body prefix for non-PNG
	}
	jobs := []job{
		{ts.URL + "/api/v1/sessions/" + a.ID + "/render?width=200&height=150&window=0,30", 200, ""},
		{ts.URL + "/api/v1/sessions/" + a.ID + "/render?width=330&height=120&gray=1", 330, ""},
		{ts.URL + "/api/v1/sessions/" + b.ID + "/render?width=260&height=140&clusters=1&mode=scaled", 260, ""},
		{ts.URL + "/api/v1/sessions/" + b.ID + "/render?format=svg&window=40,90", 0, "<svg"},
		{ts.URL + "/api/v1/sessions/" + a.ID + "/export?format=pdf", 0, "%PDF"},
		{ts.URL + "/api/v1/sessions/" + b.ID + "/stats", 0, "{"},
	}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		for _, j := range jobs {
			wg.Add(1)
			go func(j job) {
				defer wg.Done()
				resp, err := http.Get(j.url)
				if err != nil {
					t.Error(err)
					return
				}
				defer resp.Body.Close()
				if resp.StatusCode != 200 {
					t.Errorf("%s = %d", j.url, resp.StatusCode)
					return
				}
				if j.wantW > 0 {
					img, err := png.Decode(resp.Body)
					if err != nil {
						t.Errorf("%s: %v", j.url, err)
						return
					}
					if img.Bounds().Dx() != j.wantW {
						t.Errorf("%s: width %d, want %d (cross-request interference)",
							j.url, img.Bounds().Dx(), j.wantW)
					}
					return
				}
				body, _ := io.ReadAll(resp.Body)
				if !strings.Contains(string(body), j.wantMagic) {
					t.Errorf("%s: body lacks %q", j.url, j.wantMagic)
				}
			}(j)
		}
	}
	wg.Wait()
}

func TestIndexPage(t *testing.T) {
	ts, store := newTestAPI(t)
	store.Add("demo schedule", "upload", demoSchedule())
	resp, err := http.Get(ts.URL + "/")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 || !strings.Contains(string(body), "/api/v1/sessions/s1/render") {
		t.Fatalf("index = %d %s", resp.StatusCode, body)
	}
}

func TestSchedulersEndpoint(t *testing.T) {
	ts, _ := newTestAPI(t)
	code, out := doJSON(t, "GET", ts.URL+"/api/v1/schedulers", nil, "")
	if code != 200 {
		t.Fatalf("schedulers = %d", code)
	}
	var names []string
	for _, v := range out["schedulers"].([]any) {
		names = append(names, v.(string))
	}
	joined := strings.Join(names, ",")
	for _, want := range []string{"heft", "cpa", "random"} {
		if !strings.Contains(joined, want) {
			t.Errorf("schedulers missing %q: %v", want, names)
		}
	}
}

// TestRenderETag pins the caching contract of the stateless reads: a
// strong ETag derived from session, revision, and canonicalized query, a
// body-less 304 on If-None-Match, and invalidation when the schedule is
// replaced.
func TestRenderETag(t *testing.T) {
	ts, store := newTestAPI(t)
	id := createUpload(t, ts, "demo")
	url := ts.URL + "/api/v1/sessions/" + id + "/render?width=200&height=150&gray=1"

	get := func(u, ifNoneMatch string) *http.Response {
		t.Helper()
		req, err := http.NewRequest("GET", u, nil)
		if err != nil {
			t.Fatal(err)
		}
		if ifNoneMatch != "" {
			req.Header.Set("If-None-Match", ifNoneMatch)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { resp.Body.Close() })
		return resp
	}

	resp := get(url, "")
	etag := resp.Header.Get("ETag")
	if resp.StatusCode != 200 || etag == "" {
		t.Fatalf("initial render = %d, etag %q", resp.StatusCode, etag)
	}
	if cc := resp.Header.Get("Cache-Control"); !strings.Contains(cc, "no-cache") {
		t.Fatalf("Cache-Control = %q", cc)
	}

	// Revalidation: 304, no body.
	resp = get(url, etag)
	if resp.StatusCode != 304 {
		t.Fatalf("revalidation = %d", resp.StatusCode)
	}
	if body, _ := io.ReadAll(resp.Body); len(body) != 0 {
		t.Fatalf("304 carried %d body bytes", len(body))
	}

	// Weak-form and list-form validators still match; * matches anything.
	for _, inm := range []string{"W/" + etag, `"zzz", ` + etag, "*"} {
		if resp = get(url, inm); resp.StatusCode != 304 {
			t.Fatalf("If-None-Match %q = %d, want 304", inm, resp.StatusCode)
		}
	}

	// Parameter order does not change the ETag; parameter values do.
	reordered := get(ts.URL+"/api/v1/sessions/"+id+"/render?height=150&gray=1&width=200", etag)
	if reordered.StatusCode != 304 {
		t.Fatalf("reordered query = %d, want 304", reordered.StatusCode)
	}
	other := get(ts.URL+"/api/v1/sessions/"+id+"/render?width=210&height=150&gray=1", etag)
	if other.StatusCode != 200 || other.Header.Get("ETag") == etag {
		t.Fatalf("different params: %d, etag %q", other.StatusCode, other.Header.Get("ETag"))
	}

	// Replacing the schedule bumps the revision and invalidates.
	sess, _ := store.Get(id)
	sess.Replace(demoSchedule())
	resp = get(url, etag)
	if resp.StatusCode != 200 || resp.Header.Get("ETag") == etag {
		t.Fatalf("after replace: %d, etag %q", resp.StatusCode, resp.Header.Get("ETag"))
	}

	// Export carries ETags too, including the jedule document form.
	for _, u := range []string{
		ts.URL + "/api/v1/sessions/" + id + "/export?format=png",
		ts.URL + "/api/v1/sessions/" + id + "/export?format=jedule",
	} {
		resp = get(u, "")
		et := resp.Header.Get("ETag")
		if resp.StatusCode != 200 || et == "" {
			t.Fatalf("%s = %d, etag %q", u, resp.StatusCode, et)
		}
		if resp = get(u, et); resp.StatusCode != 304 {
			t.Fatalf("%s revalidation = %d", u, resp.StatusCode)
		}
	}

	// Bad parameters stay 400 even with a matching validator.
	bad := get(ts.URL+"/api/v1/sessions/"+id+"/render?width=99999", "*")
	if bad.StatusCode != 400 {
		t.Fatalf("bad params with If-None-Match = %d, want 400", bad.StatusCode)
	}
}

// TestWindowRejectsNonFinite pins the NaN/Inf window validation: NaN
// defeats a plain hi <= lo comparison.
func TestWindowRejectsNonFinite(t *testing.T) {
	ts, _ := newTestAPI(t)
	id := createUpload(t, ts, "demo")
	for _, win := range []string{"NaN,NaN", "0,NaN", "0,Inf", "-Inf,10"} {
		code, _ := doJSON(t, "GET",
			ts.URL+"/api/v1/sessions/"+id+"/render?window="+win, nil, "")
		if code != 400 {
			t.Errorf("window=%s = %d, want 400", win, code)
		}
	}
}

// TestPlatformSpecConflicts pins that the homogeneous shortcut and an
// explicit cluster list cannot be mixed, and that backbone overrides apply
// to the homogeneous path.
func TestPlatformSpecConflicts(t *testing.T) {
	ts, _ := newTestAPI(t)
	for _, body := range []string{
		`{"algo":"heft","platform":{"hosts":2,"clusters":[{"hosts":2}]}}`,
		`{"algo":"heft","platform":{"speed":5e9,"clusters":[{"hosts":2}]}}`,
	} {
		code, _ := doJSON(t, "POST", ts.URL+"/api/v1/sessions",
			strings.NewReader(body), "application/json")
		if code != 400 {
			t.Errorf("%s = %d, want 400", body, code)
		}
	}
	code, _ := doJSON(t, "POST", ts.URL+"/api/v1/sessions",
		strings.NewReader(`{"algo":"heft","platform":{"hosts":4,"backbone_latency":1e-3}}`),
		"application/json")
	if code != 201 {
		t.Errorf("homogeneous with backbone override = %d, want 201", code)
	}
}
