package api

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/core"
)

func demoSchedule() *core.Schedule {
	s := core.New(
		core.Cluster{ID: 0, Name: "alpha", Hosts: 8},
		core.Cluster{ID: 1, Name: "beta", Hosts: 4},
	)
	s.Add("t1", "computation", 0, 60, 0, 4)
	s.Add("t2", "computation", 20, 80, 4, 4)
	s.AddTask(core.Task{
		ID: "t3", Type: "transfer", Start: 60, End: 120,
		Allocations: []core.Allocation{
			{Cluster: 0, Hosts: []core.HostRange{{Start: 0, N: 2}}},
			{Cluster: 1, Hosts: []core.HostRange{{Start: 0, N: 2}}},
		},
	})
	s.SetMeta("algorithm", "demo")
	return s
}

func TestStoreLifecycle(t *testing.T) {
	st := NewStore()
	a := st.Add("first", "upload", demoSchedule())
	if a.ID != "s1" {
		t.Fatalf("generated id = %q", a.ID)
	}
	b, err := st.Put("named", "second", "file", demoSchedule())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Put("named", "dup", "file", demoSchedule()); err == nil {
		t.Fatal("duplicate Put should fail")
	}
	if _, err := st.Put("", "x", "file", demoSchedule()); err == nil {
		t.Fatal("empty id should fail")
	}
	got, ok := st.Get("named")
	if !ok || got != b {
		t.Fatal("Get(named) failed")
	}
	list := st.List()
	if len(list) != 2 || list[0].ID != "named" || list[1].ID != "s1" {
		t.Fatalf("List = %v", []string{list[0].ID, list[1].ID})
	}
	if !st.Delete("s1") || st.Delete("s1") {
		t.Fatal("Delete semantics broken")
	}
	if st.Len() != 1 {
		t.Fatalf("Len = %d", st.Len())
	}
}

// TestStoreGeneratedIDSkipsTaken pins the Add/Put interaction: explicit IDs
// in the generated namespace must not be handed out twice.
func TestStoreGeneratedIDSkipsTaken(t *testing.T) {
	st := NewStore()
	if _, err := st.Put("s1", "taken", "file", demoSchedule()); err != nil {
		t.Fatal(err)
	}
	got := st.Add("auto", "upload", demoSchedule())
	if got.ID != "s2" {
		t.Fatalf("Add skipped to %q, want s2", got.ID)
	}
}

// TestStoreConcurrent hammers the store from many goroutines; run with
// -race this is the store's concurrency contract.
func TestStoreConcurrent(t *testing.T) {
	st := NewStore()
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				sess := st.Add(fmt.Sprintf("w%d-%d", i, j), "upload", demoSchedule())
				if _, ok := st.Get(sess.ID); !ok {
					t.Error("session vanished")
					return
				}
				st.List()
				sess.Replace(demoSchedule())
				_ = sess.Schedule().Extent()
				if j%2 == 0 {
					st.Delete(sess.ID)
				}
			}
		}(i)
	}
	wg.Wait()
	if st.Len() != 16*25 {
		t.Fatalf("Len = %d, want %d", st.Len(), 16*25)
	}
}
