package api

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
)

func demoSchedule() *core.Schedule {
	s := core.New(
		core.Cluster{ID: 0, Name: "alpha", Hosts: 8},
		core.Cluster{ID: 1, Name: "beta", Hosts: 4},
	)
	s.Add("t1", "computation", 0, 60, 0, 4)
	s.Add("t2", "computation", 20, 80, 4, 4)
	s.AddTask(core.Task{
		ID: "t3", Type: "transfer", Start: 60, End: 120,
		Allocations: []core.Allocation{
			{Cluster: 0, Hosts: []core.HostRange{{Start: 0, N: 2}}},
			{Cluster: 1, Hosts: []core.HostRange{{Start: 0, N: 2}}},
		},
	})
	s.SetMeta("algorithm", "demo")
	return s
}

func TestStoreLifecycle(t *testing.T) {
	st := NewStore()
	a := st.Add("first", "upload", demoSchedule())
	if a.ID != "s1" {
		t.Fatalf("generated id = %q", a.ID)
	}
	b, err := st.Put("named", "second", "file", demoSchedule())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Put("named", "dup", "file", demoSchedule()); err == nil {
		t.Fatal("duplicate Put should fail")
	}
	if _, err := st.Put("", "x", "file", demoSchedule()); err == nil {
		t.Fatal("empty id should fail")
	}
	got, ok := st.Get("named")
	if !ok || got != b {
		t.Fatal("Get(named) failed")
	}
	list := st.List()
	if len(list) != 2 || list[0].ID != "named" || list[1].ID != "s1" {
		t.Fatalf("List = %v", []string{list[0].ID, list[1].ID})
	}
	if !st.Delete("s1") || st.Delete("s1") {
		t.Fatal("Delete semantics broken")
	}
	if st.Len() != 1 {
		t.Fatalf("Len = %d", st.Len())
	}
}

// TestStoreGeneratedIDSkipsTaken pins the Add/Put interaction: explicit IDs
// in the generated namespace must not be handed out twice.
func TestStoreGeneratedIDSkipsTaken(t *testing.T) {
	st := NewStore()
	if _, err := st.Put("s1", "taken", "file", demoSchedule()); err != nil {
		t.Fatal(err)
	}
	got := st.Add("auto", "upload", demoSchedule())
	if got.ID != "s2" {
		t.Fatalf("Add skipped to %q, want s2", got.ID)
	}
}

// TestStoreLRUEviction pins the MaxSessions cap: adding past the cap
// evicts the least recently used session, where Get counts as use.
func TestStoreLRUEviction(t *testing.T) {
	st := NewStore()
	st.SetMaxSessions(3)
	var ids []string
	for i := 0; i < 3; i++ {
		ids = append(ids, st.Add(fmt.Sprintf("n%d", i), "upload", demoSchedule()).ID)
	}
	// Touch s1 and s3; s2 becomes the LRU victim.
	st.Get(ids[0])
	st.Get(ids[2])
	d := st.Add("n3", "upload", demoSchedule())
	if st.Len() != 3 {
		t.Fatalf("Len = %d, want 3", st.Len())
	}
	if _, ok := st.Get(ids[1]); ok {
		t.Fatalf("LRU session %s survived", ids[1])
	}
	for _, id := range []string{ids[0], ids[2], d.ID} {
		if _, ok := st.Get(id); !ok {
			t.Fatalf("session %s evicted wrongly", id)
		}
	}

	// Lowering the cap evicts immediately, keeping the most recent uses.
	st.Get(d.ID)
	st.SetMaxSessions(1)
	if st.Len() != 1 {
		t.Fatalf("Len after cap drop = %d", st.Len())
	}
	if _, ok := st.Get(d.ID); !ok {
		t.Fatal("most recently used session evicted")
	}

	// Cap 0 removes the limit again.
	st.SetMaxSessions(0)
	for i := 0; i < 5; i++ {
		st.Add(fmt.Sprintf("x%d", i), "upload", demoSchedule())
	}
	if st.Len() != 6 {
		t.Fatalf("uncapped Len = %d", st.Len())
	}
}

// TestStoreEvictionUnderConcurrency hammers a capped store; with -race
// this pins that touch/evict bookkeeping is data-race free.
func TestStoreEvictionUnderConcurrency(t *testing.T) {
	st := NewStore()
	st.SetMaxSessions(8)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				sess := st.Add(fmt.Sprintf("w%d-%d", i, j), "upload", demoSchedule())
				st.Get(sess.ID)
				st.List()
			}
		}(i)
	}
	wg.Wait()
	if st.Len() != 8 {
		t.Fatalf("Len = %d, want cap 8", st.Len())
	}
}

func TestSessionRevision(t *testing.T) {
	st := NewStore()
	sess := st.Add("demo", "upload", demoSchedule())
	if sess.Revision() != 0 {
		t.Fatalf("fresh revision = %d", sess.Revision())
	}
	sess.Replace(demoSchedule())
	sess.Replace(demoSchedule())
	if sess.Revision() != 2 {
		t.Fatalf("revision = %d, want 2", sess.Revision())
	}
}

// TestFingerprintSurvivesRestart pins the restart scenario the revision
// counter alone cannot cover: the "same" session re-created under the same
// ID (rev 0 again) but with changed content must produce a different ETag,
// while identical content keeps validators stable.
func TestFingerprintSurvivesRestart(t *testing.T) {
	put := func(s *core.Schedule) *Session {
		st := NewStore()
		sess, err := st.Put("file-a", "a.jed", "file", s)
		if err != nil {
			t.Fatal(err)
		}
		return sess
	}
	a := put(demoSchedule())
	b := put(demoSchedule())
	if etagFor(a, nil) != etagFor(b, nil) {
		t.Fatal("identical content produced different ETags across restarts")
	}
	changed := demoSchedule()
	changed.Add("t4", "computation", 120, 130, 0, 2)
	c := put(changed)
	if etagFor(a, nil) == etagFor(c, nil) {
		t.Fatal("changed content kept the old ETag across a restart (stale 304)")
	}
	// Replace detects content changes too, independent of the revision.
	if a.Fingerprint() == c.Fingerprint() {
		t.Fatal("fingerprint blind to an added task")
	}
}

// TestStoreConcurrent hammers the store from many goroutines; run with
// -race this is the store's concurrency contract.
func TestStoreConcurrent(t *testing.T) {
	st := NewStore()
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				sess := st.Add(fmt.Sprintf("w%d-%d", i, j), "upload", demoSchedule())
				if _, ok := st.Get(sess.ID); !ok {
					t.Error("session vanished")
					return
				}
				st.List()
				sess.Replace(demoSchedule())
				_ = sess.Schedule().Extent()
				if j%2 == 0 {
					st.Delete(sess.ID)
				}
			}
		}(i)
	}
	wg.Wait()
	if st.Len() != 16*25 {
		t.Fatalf("Len = %d, want %d", st.Len(), 16*25)
	}
}

// --- Session TTL ------------------------------------------------------------

// fakeClock drives the store's injectable time source.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

func TestStoreTTLLazyExpiry(t *testing.T) {
	clk := &fakeClock{now: time.Unix(1000, 0)}
	st := NewStore()
	st.now = clk.Now
	st.SetTTL(time.Minute)
	defer st.Close()

	sess := st.Add("a", "upload", demoSchedule())
	if _, ok := st.Get(sess.ID); !ok {
		t.Fatal("fresh session missing")
	}

	// Accesses inside the TTL keep the session alive.
	clk.Advance(40 * time.Second)
	if _, ok := st.Get(sess.ID); !ok {
		t.Fatal("session expired before the TTL")
	}
	clk.Advance(40 * time.Second) // 40s since last access, alive
	if _, ok := st.Get(sess.ID); !ok {
		t.Fatal("refreshed session expired")
	}

	// Idle past the TTL: the next Get expires it lazily.
	clk.Advance(2 * time.Minute)
	if _, ok := st.Get(sess.ID); ok {
		t.Fatal("idle session survived the TTL")
	}
	if st.Len() != 0 {
		t.Fatalf("Len = %d after lazy expiry", st.Len())
	}
}

func TestStoreTTLSweepAndOnDrop(t *testing.T) {
	clk := &fakeClock{now: time.Unix(1000, 0)}
	st := NewStore()
	st.now = clk.Now
	st.SetTTL(time.Minute)
	defer st.Close()

	var mu sync.Mutex
	var dropped []string
	st.OnDrop(func(id string) {
		mu.Lock()
		dropped = append(dropped, id)
		mu.Unlock()
	})

	a := st.Add("a", "upload", demoSchedule())
	clk.Advance(45 * time.Second)
	b := st.Add("b", "upload", demoSchedule())
	clk.Advance(30 * time.Second) // a idle 75s (expired), b idle 30s

	if n := st.Sweep(); n != 1 {
		t.Fatalf("Sweep dropped %d sessions, want 1", n)
	}
	mu.Lock()
	got := append([]string(nil), dropped...)
	mu.Unlock()
	if len(got) != 1 || got[0] != a.ID {
		t.Fatalf("OnDrop saw %v, want [%s]", got, a.ID)
	}
	if _, ok := st.Get(b.ID); !ok {
		t.Fatal("young session swept")
	}
	// List and Len hide expired-but-unswept sessions too.
	clk.Advance(2 * time.Minute)
	if st.Len() != 0 || len(st.List()) != 0 {
		t.Fatalf("expired sessions visible: Len=%d List=%d", st.Len(), len(st.List()))
	}
}

func TestStoreTTLZeroNeverExpires(t *testing.T) {
	clk := &fakeClock{now: time.Unix(1000, 0)}
	st := NewStore()
	st.now = clk.Now
	sess := st.Add("a", "upload", demoSchedule())
	clk.Advance(1000 * time.Hour)
	if _, ok := st.Get(sess.ID); !ok {
		t.Fatal("session expired without a TTL")
	}
	if st.TTL() != 0 {
		t.Fatalf("TTL = %v", st.TTL())
	}
}

func TestStoreJanitorTick(t *testing.T) {
	// Real clock, tiny TTL: the janitor (1s floor on the tick) must remove
	// the idle session without any access touching it.
	st := NewStore()
	st.SetTTL(10 * time.Millisecond)
	defer st.Close()
	st.Add("a", "upload", demoSchedule())
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		st.mu.RLock()
		n := len(st.sessions)
		st.mu.RUnlock()
		if n == 0 {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatal("janitor never removed the expired session")
}

func TestSessionReplaceNotifiesDrop(t *testing.T) {
	st := NewStore()
	var mu sync.Mutex
	var dropped []string
	st.OnDrop(func(id string) {
		mu.Lock()
		dropped = append(dropped, id)
		mu.Unlock()
	})
	sess := st.Add("a", "upload", demoSchedule())
	sess.Replace(demoSchedule())
	mu.Lock()
	defer mu.Unlock()
	if len(dropped) != 1 || dropped[0] != sess.ID {
		t.Fatalf("OnDrop saw %v, want [%s]", dropped, sess.ID)
	}
}
