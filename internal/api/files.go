package api

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/jedxml"
)

// scheduleExts maps file extensions to parser registry names.
var scheduleExts = map[string]string{
	".jed": "jedule",
	".xml": "jedule",
	".csv": "csv",
}

// ReadScheduleFile loads a schedule file, picking the parser from the file
// extension (.jed/.xml are Jedule XML, .csv the CSV format).
func ReadScheduleFile(path string) (*core.Schedule, error) {
	format, ok := scheduleExts[strings.ToLower(filepath.Ext(path))]
	if !ok {
		return nil, fmt.Errorf("api: unknown schedule extension %q (want .jed, .xml, .csv)",
			filepath.Ext(path))
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	s, err := jedxml.ReadFormat(format, f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return s, nil
}

// RegisterFile loads a schedule file and registers it as a pre-registered
// session whose ID derives from the file name (collisions get a numeric
// suffix).
func RegisterFile(st *Store, path string) (*Session, error) {
	s, err := ReadScheduleFile(path)
	if err != nil {
		return nil, err
	}
	// Persist the absolute path so a restart from another working
	// directory still re-parses the same file.
	recipePath := path
	if abs, err := filepath.Abs(path); err == nil {
		recipePath = abs
	}
	base := sessionID(path)
	id := base
	for n := 2; ; n++ {
		sess, err := st.PutRecipe(id, filepath.Base(path), "file", s,
			&Recipe{Kind: "file", Path: recipePath})
		if err == nil {
			return sess, nil
		}
		id = fmt.Sprintf("%s-%d", base, n)
	}
}

// RegisterDir registers every schedule file (*.jed, *.xml, *.csv) directly
// inside dir as a session, in name order.
func RegisterDir(st *Store, dir string) ([]*Session, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		if _, ok := scheduleExts[strings.ToLower(filepath.Ext(e.Name()))]; ok {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	var out []*Session
	for _, name := range names {
		sess, err := RegisterFile(st, filepath.Join(dir, name))
		if err != nil {
			return nil, err
		}
		out = append(out, sess)
	}
	return out, nil
}

// sessionID derives a URL-safe session ID from a file path: the base name
// without extension, unsupported characters replaced by '-'.
func sessionID(path string) string {
	base := strings.TrimSuffix(filepath.Base(path), filepath.Ext(path))
	id := strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '.', r == '_', r == '-':
			return r
		}
		return '-'
	}, base)
	if id == "" {
		return "schedule"
	}
	return id
}
