package api

import (
	"bytes"
	"encoding/json"
	"fmt"
	"regexp"
	"sort"
	"strconv"

	"repro/internal/core"
	"repro/internal/jedxml"
	"repro/internal/persist"
)

// Recipe is how a session's schedule is rebuilt after a restart. Sessions
// are persisted as descriptors, not parsed schedules: the descriptor keeps
// whichever input produced the schedule, and the schedule itself is
// re-derived lazily on first access — re-parsing a verbatim uploaded
// document, re-running a deterministic {algo,dag,platform} spec, or
// re-reading a registered file.
type Recipe struct {
	Kind    string          `json:"kind"`              // "doc", "generate", "file"
	Format  string          `json:"format,omitempty"`  // doc: parser registry name
	Doc     []byte          `json:"doc,omitempty"`     // doc: the uploaded bytes, verbatim
	Request json.RawMessage `json:"request,omitempty"` // generate: the CreateRequest body
	Path    string          `json:"path,omitempty"`    // file: schedule file to re-parse
}

// build re-derives the schedule the recipe describes.
func (r *Recipe) build() (*core.Schedule, error) {
	switch r.Kind {
	case "doc":
		format := r.Format
		if format == "" {
			format = "jedule"
		}
		return jedxml.ReadFormat(format, bytes.NewReader(r.Doc))
	case "generate":
		var req CreateRequest
		if err := json.Unmarshal(r.Request, &req); err != nil {
			return nil, fmt.Errorf("api: bad generate recipe: %w", err)
		}
		return req.Build()
	case "file":
		return ReadScheduleFile(r.Path)
	}
	return nil, fmt.Errorf("api: unknown recipe kind %q", r.Kind)
}

// Summary is the cached shape of a session's schedule — what the session
// list and info endpoints serve. Persisting it lets a restarted server list
// every recovered session without hydrating a single schedule.
type Summary struct {
	Clusters int     `json:"clusters"`
	Hosts    int     `json:"hosts"`
	Tasks    int     `json:"tasks"`
	Makespan float64 `json:"makespan"`
}

func summaryOf(s *core.Schedule) Summary {
	if s == nil {
		return Summary{}
	}
	return Summary{
		Clusters: len(s.Clusters),
		Hosts:    s.TotalHosts(),
		Tasks:    len(s.Tasks),
		Makespan: s.Extent().Span(),
	}
}

// sessionRecord is the persisted descriptor of one session ("sessions"
// namespace, keyed by session ID). Rev and Fingerprint survive the restart
// so the ETags of stateless reads stay byte-identical.
type sessionRecord struct {
	ID          string  `json:"id"`
	Name        string  `json:"name,omitempty"`
	Source      string  `json:"source"`
	Rev         int64   `json:"rev"`
	Fingerprint uint64  `json:"fp"`
	Summary     Summary `json:"summary"`
	Recipe      *Recipe `json:"recipe,omitempty"`
}

// SetPersist attaches a persistence backend: every session registered from
// now on is journaled as a descriptor, and RecoverSessions restores the
// descriptors of a previous process. Call before registering sessions; nil
// (the default) keeps persistence off with zero overhead.
func (st *Store) SetPersist(ps persist.Store) {
	st.mu.Lock()
	st.persist = ps
	st.mu.Unlock()
}

// PersistEnabled reports whether a persistence backend is attached.
func (st *Store) PersistEnabled() bool { return st.persistStore() != nil }

func (st *Store) persistStore() persist.Store {
	st.mu.RLock()
	defer st.mu.RUnlock()
	return st.persist
}

// RecoveredSessions returns how many sessions the last RecoverSessions call
// restored.
func (st *Store) RecoveredSessions() int64 { return st.recovered.Load() }

// HydrationFailures counts recovered sessions dropped because their recipe
// no longer produced a schedule (deleted file, unregistered algorithm, ...).
func (st *Store) HydrationFailures() int64 { return st.hydrationFailed.Load() }

// PersistErrors counts best-effort persistence writes that failed.
func (st *Store) PersistErrors() int64 { return st.persistErrors.Load() }

// persistSession journals one session descriptor durably. A session without
// a recipe (viewer sessions, Replace'd schedules) is persisted as a
// canonical Jedule XML document recipe so it survives verbatim. Best-effort:
// a failed write is counted, not propagated — the session stays live.
func (st *Store) persistSession(s *Session) {
	ps := st.persistStore()
	if ps == nil {
		return
	}
	s.mu.RLock()
	rec := sessionRecord{
		ID: s.ID, Name: s.Name, Source: s.Source,
		Rev: s.rev, Fingerprint: s.fp, Summary: s.summary, Recipe: s.recipe,
	}
	sched := s.sched
	s.mu.RUnlock()
	if rec.Recipe == nil && sched != nil {
		var buf bytes.Buffer
		if err := jedxml.Write(&buf, sched); err != nil {
			st.persistErrors.Add(1)
			return
		}
		rec.Recipe = &Recipe{Kind: "doc", Format: "jedule", Doc: buf.Bytes()}
		// Cache the synthesized recipe so the next persist of this session
		// does not re-encode an unchanged schedule.
		s.mu.Lock()
		if s.recipe == nil && s.sched == sched {
			s.recipe = rec.Recipe
		}
		s.mu.Unlock()
	}
	b, err := json.Marshal(rec)
	if err != nil {
		st.persistErrors.Add(1)
		return
	}
	if err := ps.PutDurable("sessions", s.ID, b); err != nil {
		st.persistErrors.Add(1)
	}
}

// dropPersisted removes the descriptors of sessions that left the store for
// good (Delete, LRU eviction, TTL expiry) — not of Replace'd ones.
func (st *Store) dropPersisted(ids ...string) {
	ps := st.persistStore()
	if ps == nil || len(ids) == 0 {
		return
	}
	for _, id := range ids {
		if err := ps.Delete("sessions", id); err != nil {
			st.persistErrors.Add(1)
		}
	}
}

var sessionSeqPat = regexp.MustCompile(`^s([0-9]+)$`)

// RecoverSessions restores the session descriptors a previous process
// persisted. Schedules are NOT rebuilt here: each session hydrates lazily
// on its first access, so a server with a thousand persisted sessions
// restarts in milliseconds. Call after pre-registering file sessions
// (RegisterDir) — a persisted descriptor never displaces a live session
// with the same ID, so freshly re-registered files win. Returns how many
// sessions were restored.
func (st *Store) RecoverSessions() (int, error) {
	ps := st.persistStore()
	if ps == nil {
		return 0, nil
	}
	records, err := ps.Load("sessions")
	if err != nil {
		return 0, err
	}
	ids := make([]string, 0, len(records))
	for id := range records {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	n := 0
	st.mu.Lock()
	for _, id := range ids {
		var rec sessionRecord
		if err := json.Unmarshal(records[id], &rec); err != nil || rec.ID == "" {
			st.persistErrors.Add(1)
			continue
		}
		// Keep the generated-ID sequence past every recovered ID, or the
		// next Add would collide with a recovered "sN" and skip it.
		if m := sessionSeqPat.FindStringSubmatch(id); m != nil {
			if v, err := strconv.Atoi(m[1]); err == nil && v > st.seq {
				st.seq = v
			}
		}
		if _, taken := st.sessions[id]; taken {
			continue
		}
		s := &Session{
			ID: id, Name: rec.Name, Source: rec.Source,
			fp: rec.Fingerprint, rev: rec.Rev,
			summary: rec.Summary, recipe: rec.Recipe, store: st,
		}
		st.touch(s)
		st.sessions[id] = s
		n++
	}
	dropped := st.evictLocked()
	st.mu.Unlock()
	st.dropPersisted(dropped...)
	st.notifyDrop(dropped...)
	st.recovered.Store(int64(n))
	return n, nil
}

// ensureHydrated rebuilds the schedule of a recovered session on its first
// access. The revision is NOT bumped — a hydration is not a content change,
// and the persisted revision plus a deterministic recipe keep ETags
// byte-identical across the restart. Hydration runs under the session write
// lock, so concurrent first readers share one rebuild.
func (s *Session) ensureHydrated() error {
	s.mu.RLock()
	hydrated := s.sched != nil
	s.mu.RUnlock()
	if hydrated {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.sched != nil {
		return nil
	}
	if s.recipe == nil {
		return fmt.Errorf("api: session %s has no schedule and no recipe", s.ID)
	}
	sched, err := s.recipe.build()
	if err != nil {
		return fmt.Errorf("api: hydrating session %s: %w", s.ID, err)
	}
	s.sched = sched
	s.idx = nil
	// Recompute rather than trust the persisted fingerprint: a "file"
	// recipe may legitimately re-parse a changed file, and the ETag must
	// tell its readers.
	s.fp = fingerprintOf(sched)
	s.summary = summaryOf(sched)
	return nil
}
