package api

import (
	"math"
	"net"
	"net/http"
	"strconv"
	"sync"
	"time"
)

// Rate limiting: a token-bucket per client IP in front of /api/v1/. Each
// client accrues `rate` tokens per second up to `burst`; a request costs
// one token, and an empty bucket answers 429 with a Retry-After telling
// the client when the next token lands. Off by default — jedserve enables
// it with -rate-limit.

// rateLimitMaxBuckets bounds the per-IP map. At the cap, buckets idle long
// enough to have refilled completely are discarded first (they are
// indistinguishable from fresh ones); if every bucket is still active,
// arbitrary ones are evicted so the bound holds unconditionally.
const rateLimitMaxBuckets = 8192

type tokenBucket struct {
	tokens float64
	last   time.Time
}

// rateLimiter is the shared limiter state. A nil *rateLimiter allows
// everything, so the middleware costs one pointer check when disabled.
type rateLimiter struct {
	mu      sync.Mutex
	rate    float64 // tokens per second
	burst   float64
	buckets map[string]*tokenBucket
	now     func() time.Time // injectable for tests

	allowed int64
	limited int64
}

func newRateLimiter(rate float64, burst int) *rateLimiter {
	if rate <= 0 {
		return nil
	}
	if burst < 1 {
		burst = int(math.Ceil(2 * rate))
		if burst < 1 {
			burst = 1
		}
	}
	return &rateLimiter{
		rate:    rate,
		burst:   float64(burst),
		buckets: map[string]*tokenBucket{},
		now:     time.Now,
	}
}

// allow spends one token of the client's bucket; when empty it reports the
// wait until the next token.
func (rl *rateLimiter) allow(client string) (ok bool, retryAfter time.Duration) {
	rl.mu.Lock()
	defer rl.mu.Unlock()
	now := rl.now()
	b := rl.buckets[client]
	if b == nil {
		if len(rl.buckets) >= rateLimitMaxBuckets {
			rl.pruneLocked(now)
			// When every bucket is active, prune frees nothing; evict
			// arbitrary entries so the map stays bounded regardless. An
			// evicted active client merely restarts with a full burst —
			// a small leniency, never unbounded memory.
			for victim := range rl.buckets {
				if len(rl.buckets) < rateLimitMaxBuckets {
					break
				}
				delete(rl.buckets, victim)
			}
		}
		b = &tokenBucket{tokens: rl.burst, last: now}
		rl.buckets[client] = b
	} else {
		b.tokens = math.Min(rl.burst, b.tokens+rl.rate*now.Sub(b.last).Seconds())
		b.last = now
	}
	if b.tokens >= 1 {
		b.tokens--
		rl.allowed++
		return true, 0
	}
	rl.limited++
	return false, time.Duration((1 - b.tokens) / rl.rate * float64(time.Second))
}

// pruneLocked drops the buckets that have fully refilled — clients idle
// long enough that forgetting them changes nothing.
func (rl *rateLimiter) pruneLocked(now time.Time) {
	for client, b := range rl.buckets {
		if b.tokens+rl.rate*now.Sub(b.last).Seconds() >= rl.burst {
			delete(rl.buckets, client)
		}
	}
}

// rateLimitStats is the counter block surfaced on /api/v1/meta.
type rateLimitStats struct {
	Rate    float64 `json:"rate"`
	Burst   float64 `json:"burst"`
	Allowed int64   `json:"allowed"`
	Limited int64   `json:"limited"`
	Clients int     `json:"clients"`
}

func (rl *rateLimiter) Stats() rateLimitStats {
	if rl == nil {
		return rateLimitStats{}
	}
	rl.mu.Lock()
	defer rl.mu.Unlock()
	return rateLimitStats{
		Rate: rl.rate, Burst: rl.burst,
		Allowed: rl.allowed, Limited: rl.limited,
		Clients: len(rl.buckets),
	}
}

// clientIP extracts the per-client key from the remote address.
func clientIP(r *http.Request) string {
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil {
		return r.RemoteAddr
	}
	return host
}

// middleware enforces the limit on the API routes (the HTML index stays
// reachable for humans even when a client burned its quota). The metrics
// endpoint is exempt: a scraper must keep working during exactly the
// traffic spikes the limiter exists to absorb.
func (rl *rateLimiter) middleware(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if rl != nil && r.URL.Path != metricsPath &&
			len(r.URL.Path) >= len(apiPrefix) && r.URL.Path[:len(apiPrefix)] == apiPrefix {
			if ok, retryAfter := rl.allow(clientIP(r)); !ok {
				seconds := int(math.Ceil(retryAfter.Seconds()))
				if seconds < 1 {
					seconds = 1
				}
				w.Header().Set("Retry-After", strconv.Itoa(seconds))
				writeError(w, http.StatusTooManyRequests, "rate_limited", "rate limit exceeded; retry in %ds", seconds)
				return
			}
		}
		next.ServeHTTP(w, r)
	})
}

// apiPrefix is the path space the limiter guards.
const apiPrefix = "/api/v1/"
