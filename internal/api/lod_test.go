package api

import (
	"fmt"
	"io"
	"net/http"
	"testing"

	"repro/internal/core"
)

// denseAPISchedule is dense enough to cross the LOD threshold at the small
// render sizes the tests use: sub-pixel tasks over a long horizon.
func denseAPISchedule(n int) *core.Schedule {
	s := core.NewSingleCluster("dense", 32)
	for i := 0; i < n; i++ {
		start := float64(i%997) * 100.17
		s.AddTask(core.Task{
			ID: fmt.Sprintf("t%d", i), Type: "computation",
			Start: start, End: start + 2,
			Allocations: []core.Allocation{{Cluster: 0, Hosts: []core.HostRange{{Start: i % 32, N: 1}}}},
		})
	}
	s.SortTasks()
	return s
}

// TestRenderLOD pins the lod= query surface: explicit values parse, bad
// values are 400, spelling variants and the server default share one ETag
// (canonicalization), and the meta counters expose LOD activity.
func TestRenderLOD(t *testing.T) {
	ts, srv := newTestServer(t)
	sess := srv.Store().Add("dense", "upload", denseAPISchedule(2000))
	base := ts.URL + "/api/v1/sessions/" + sess.ID + "/render?width=200&height=150"

	get := func(u, inm string) *http.Response {
		t.Helper()
		req, _ := http.NewRequest("GET", u, nil)
		if inm != "" {
			req.Header.Set("If-None-Match", inm)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body) //nolint:errcheck
		resp.Body.Close()
		return resp
	}

	if resp := get(base+"&lod=bogus", ""); resp.StatusCode != 400 {
		t.Fatalf("lod=bogus = %d, want 400", resp.StatusCode)
	}

	// lod=1 and lod=true canonicalize onto one validator.
	resp := get(base+"&lod=1", "")
	etag := resp.Header.Get("ETag")
	if resp.StatusCode != 200 || etag == "" {
		t.Fatalf("lod=1 render = %d etag %q", resp.StatusCode, etag)
	}
	if resp = get(base+"&lod=true", etag); resp.StatusCode != 304 {
		t.Fatalf("lod=true with lod=1 etag = %d, want 304", resp.StatusCode)
	}

	// The default (off) and an explicit lod=false share a validator too,
	// distinct from the LOD one.
	resp = get(base, "")
	offTag := resp.Header.Get("ETag")
	if offTag == "" || offTag == etag {
		t.Fatalf("lod-off etag %q vs lod-on %q", offTag, etag)
	}
	if resp = get(base+"&lod=false", offTag); resp.StatusCode != 304 {
		t.Fatalf("explicit lod=false vs default = %d, want 304", resp.StatusCode)
	}

	// Counters: the dense schedule crossed the threshold, so the one
	// LOD-enabled rasterization was counted with its aggregated tasks; the
	// 304 and cache-hit paths must not re-count.
	get(base+"&lod=1", "") // render-cache hit: closure not re-run
	code, meta := doJSON(t, "GET", ts.URL+"/api/v1/meta", nil, "")
	if code != 200 {
		t.Fatalf("meta = %d", code)
	}
	if got := meta["lod_renders"].(float64); got != 1 {
		t.Fatalf("lod_renders = %v, want 1", got)
	}
	if got := meta["lod_tasks_aggregated"].(float64); got <= 0 {
		t.Fatalf("lod_tasks_aggregated = %v, want > 0", got)
	}
	if meta["lod_default"].(bool) {
		t.Fatal("lod_default true on a fresh server")
	}
}

// TestServerLODDefault: SetLOD flips the effective value for requests
// without a lod= parameter — and because the effective value is hashed, a
// default-on server answers a plain render with the same ETag as lod=true.
func TestServerLODDefault(t *testing.T) {
	ts, srv := newTestServer(t)
	srv.SetLOD(true)
	sess := srv.Store().Add("dense", "upload", denseAPISchedule(2000))
	base := ts.URL + "/api/v1/sessions/" + sess.ID + "/render?width=200&height=150"

	resp, err := http.Get(base)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body) //nolint:errcheck
	resp.Body.Close()
	defTag := resp.Header.Get("ETag")

	req, _ := http.NewRequest("GET", base+"&lod=true", nil)
	req.Header.Set("If-None-Match", defTag)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 304 {
		t.Fatalf("lod=true vs default-on = %d, want 304", resp.StatusCode)
	}

	code, meta := doJSON(t, "GET", ts.URL+"/api/v1/meta", nil, "")
	if code != 200 || !meta["lod_default"].(bool) {
		t.Fatalf("meta lod_default = %v (%d)", meta["lod_default"], code)
	}
	if got := meta["lod_renders"].(float64); got != 1 {
		t.Fatalf("lod_renders = %v, want 1", got)
	}
}
