package api

import (
	"bytes"
	"encoding/json"
	"fmt"
	"html"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/apierr"
	"repro/internal/core"
	"repro/internal/events"
	"repro/internal/fleet"
	"repro/internal/jedxml"
	"repro/internal/jobs"
	"repro/internal/obs"
	"repro/internal/persist"
	"repro/internal/render"
	"repro/internal/sched"
)

// maxUploadBytes bounds the size of an uploaded schedule document.
const maxUploadBytes = 64 << 20

// defaultRenderCacheBytes bounds the render-result cache unless overridden
// with SetRenderCacheBytes (jedserve -render-cache-mb).
const defaultRenderCacheBytes = 64 << 20

// Server serves the versioned REST API over a session store, plus the
// asynchronous job surface for long-running campaigns.
type Server struct {
	store         *Store
	jobs          *jobs.Engine
	coordJobs     *jobs.Engine // coordinated campaigns, isolated from the CPU-bound job slots
	cache         *renderCache
	renderWorkers int  // render.Options.Workers for every rasterization; 0 = GOMAXPROCS
	lodDefault    bool // render.Options.LOD when the request has no lod= param
	limiter       *rateLimiter
	coordWorkers  []string       // static remote worker pool for POST /api/v1/campaigns
	fleet         *fleet.Manager // elastic pull-based pool; serves /api/v1/workers
	fleetMin      int            // fleet campaigns wait for this many workers
	campaigns     campaignTracker
	bus           *events.Bus   // the broadcast bus behind GET /api/v1/events
	heartbeat     time.Duration // SSE heartbeat-comment interval

	// Observability (see obs.go). The registry is always present; access
	// logging and pprof are opt-in.
	metrics     *obs.Registry
	mLongPolls  *obs.Counter // ?wait= long-polls served (the polls SSE replaces)
	mLodRenders *obs.Counter
	mLodTasks   *obs.Counter
	accessLog   io.Writer
	pprof       bool

	// Durable state (nil/zero without EnablePersistence).
	persist        persist.Store
	jobsPersist    *jobs.Persister
	coordPersist   *jobs.Persister
	jobsRecovered  jobs.RecoverStats
	coordRecovered jobs.RecoverStats
}

// NewServer wraps a store and starts the job engines. Two campaign job
// slots, not one per core: each campaign job already parallelizes across
// GOMAXPROCS internally, so a wider pool would oversubscribe the CPU
// quadratically. Coordinated campaigns run on their own engine (IDs
// "c1", "c2", ...): a coordinator job is idle network waiting, and sharing
// the CPU-bound slots would let two coordinators starve the very shard
// jobs they dispatch — a deadlock when a server appears in its own worker
// pool. Terminal jobs are retained up to a cap so past results stay
// fetchable without growing without bound. The render cache subscribes to
// the store's drop notifications so replaced, deleted, evicted, and
// expired sessions lose their memoized bodies immediately.
func NewServer(store *Store) *Server {
	engine := jobs.NewEngine(2)
	engine.SetRetention(256)
	coordEngine := jobs.NewEngine(4)
	coordEngine.SetIDPrefix("c")
	coordEngine.SetRetention(64)
	s := &Server{
		store: store, jobs: engine, coordJobs: coordEngine,
		cache:     newRenderCache(defaultRenderCacheBytes),
		bus:       events.NewBus(0),
		heartbeat: defaultEventHeartbeat,
		metrics:   obs.NewRegistry(),
	}
	s.registerMetrics()
	store.OnDrop(s.cache.InvalidateSession)
	// Producer wiring: every job transition, session change, and (via
	// createCampaign/SetFleet) shard and fleet event lands on the bus.
	engine.SetObserver(s.jobObserver(events.TopicJob))
	coordEngine.SetObserver(s.jobObserver(events.TopicCampaign))
	store.OnEvent(func(kind, id string) {
		s.bus.Publish(events.TopicSession, kind, id, nil)
	})
	return s
}

// jobObserver bridges an engine's lifecycle notifications onto the bus.
func (s *Server) jobObserver(topic events.Topic) jobs.Observer {
	return func(j *jobs.Job, change string) {
		s.bus.Publish(topic, change, j.ID(), infoOfJob(j))
	}
}

// Bus returns the event bus (exposed for tests and embedding servers).
func (s *Server) Bus() *events.Bus { return s.bus }

// Close stops both job engines, cancelling everything still running.
func (s *Server) Close() {
	s.coordJobs.Close()
	s.jobs.Close()
}

// Store returns the underlying session store.
func (s *Server) Store() *Store { return s.store }

// SetRenderWorkers bounds the goroutines each rasterization may use (0 =
// GOMAXPROCS, 1 = serial). Call before serving; it is not synchronized with
// in-flight requests.
func (s *Server) SetRenderWorkers(n int) { s.renderWorkers = n }

// SetLOD sets the server-wide default for level-of-detail rendering; a
// request's explicit lod= query parameter always wins. Call before serving;
// it is not synchronized with in-flight requests.
func (s *Server) SetLOD(on bool) { s.lodDefault = on }

// SetRenderCacheBytes rebounds the render-result cache (0 disables body
// storage; concurrent identical renders still collapse into one flight).
func (s *Server) SetRenderCacheBytes(n int64) { s.cache.SetMaxBytes(n) }

// SetRateLimit enables per-client-IP rate limiting on /api/v1/: each client
// accrues rate requests per second up to burst (burst <= 0 means 2×rate).
// rate <= 0 disables the limiter. Call before serving; it is not
// synchronized with in-flight requests.
func (s *Server) SetRateLimit(rate float64, burst int) {
	s.limiter = newRateLimiter(rate, burst)
}

// SetCoordWorkers configures the remote worker pool POST /api/v1/campaigns
// fans out to (base URLs of jedserve instances). Call before serving.
func (s *Server) SetCoordWorkers(workers []string) {
	s.coordWorkers = append([]string(nil), workers...)
}

// SetFleet mounts the elastic worker fleet: the manager's worker protocol is
// served under /api/v1/workers and coordinated campaigns without a static
// pool dispatch through its pull queue. minWorkers is how many joined
// workers a campaign waits for before queueing shards (0 means 1). Call
// before serving.
func (s *Server) SetFleet(m *fleet.Manager, minWorkers int) {
	s.fleet = m
	s.fleetMin = minWorkers
	registerFleetMetrics(s.metrics, m)
	m.SetOnEvent(func(e fleet.Event) {
		s.bus.Publish(events.TopicFleet, e.Type, e.Worker, e)
	})
}

// Fleet returns the mounted fleet manager (nil without SetFleet).
func (s *Server) Fleet() *fleet.Manager { return s.fleet }

// EnablePersistence journals both job engines into the store and replays the
// records of the previous process: terminal jobs come back with their
// results intact, interrupted campaign jobs are re-submitted from their
// journaled cells, and coordinated campaigns journal run progress under
// their job ID so their checkpoints are shareable through the store. Call
// once, before serving and before any job is submitted.
func (s *Server) EnablePersistence(ps persist.Store) error {
	s.persist = ps
	s.jobsPersist = jobs.NewPersister(ps, "jobs")
	s.coordPersist = jobs.NewPersister(ps, "cjobs")
	s.jobs.SetJournal(s.jobsPersist)
	s.coordJobs.SetJournal(s.coordPersist)
	var err error
	if s.jobsRecovered, err = s.jobsPersist.Recover(s.jobs); err != nil {
		return err
	}
	if s.coordRecovered, err = s.coordPersist.Recover(s.coordJobs); err != nil {
		return err
	}
	s.registerPersistMetrics()
	return nil
}

// RecoveredJobs reports what EnablePersistence replayed: campaign jobs,
// then coordinated campaigns.
func (s *Server) RecoveredJobs() (jobs.RecoverStats, jobs.RecoverStats) {
	return s.jobsRecovered, s.coordRecovered
}

// RenderCacheStats exposes the cache counters (for tests; clients read them
// from GET /api/v1/meta).
func (s *Server) RenderCacheStats() renderCacheStats { return s.cache.Stats() }

// Jobs returns the campaign job engine (exposed for tests and graceful
// shutdown).
func (s *Server) Jobs() *jobs.Engine { return s.jobs }

// CoordJobs returns the coordinated-campaign engine.
func (s *Server) CoordJobs() *jobs.Engine { return s.coordJobs }

// Handler returns the API routes. The legacy viewer mounts this under
// /api/v1/ next to its own pages; jedserve serves it directly, in which
// case / is a minimal HTML session index.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /{$}", s.index)
	mux.HandleFunc("GET /api/v1/schedulers", s.schedulers)
	mux.HandleFunc("GET /api/v1/meta", s.serverMeta)
	mux.HandleFunc("GET "+metricsPath, s.metricsHandler)
	mux.HandleFunc("GET /api/v1/events", s.events)
	mux.HandleFunc("POST /api/v1/sessions", s.createSession)
	mux.HandleFunc("GET /api/v1/sessions", s.listSessions)
	mux.HandleFunc("GET /api/v1/sessions/{id}", s.getSession)
	mux.HandleFunc("DELETE /api/v1/sessions/{id}", s.deleteSession)
	mux.HandleFunc("GET /api/v1/sessions/{id}/render", s.render)
	mux.HandleFunc("GET /api/v1/sessions/{id}/export", s.export)
	mux.HandleFunc("GET /api/v1/sessions/{id}/stats", s.stats)
	mux.HandleFunc("GET /api/v1/sessions/{id}/tasks", s.tasks)
	mux.HandleFunc("GET /api/v1/sessions/{id}/meta", s.meta)
	mux.HandleFunc("POST /api/v1/jobs", s.createJob)
	mux.HandleFunc("GET /api/v1/jobs", s.listJobs)
	mux.HandleFunc("GET /api/v1/jobs/{id}", s.getJob)
	mux.HandleFunc("DELETE /api/v1/jobs/{id}", s.cancelJob)
	mux.HandleFunc("GET /api/v1/jobs/{id}/result", s.jobResult)
	mux.HandleFunc("POST /api/v1/campaigns", s.createCampaign)
	mux.HandleFunc("GET /api/v1/campaigns", s.listCampaigns)
	mux.HandleFunc("GET /api/v1/campaigns/{id}", s.getCampaign)
	mux.HandleFunc("DELETE /api/v1/campaigns/{id}", s.cancelCampaign)
	mux.HandleFunc("GET /api/v1/campaigns/{id}/result", s.campaignResult)
	if s.fleet != nil {
		// The worker protocol: join, heartbeat, lease, complete, drain,
		// leave. The fleet handler matches full /api/v1/workers paths, so it
		// mounts without a prefix strip.
		fh := fleet.Handler(s.fleet)
		mux.Handle("/api/v1/workers", fh)
		mux.Handle("/api/v1/workers/", fh)
	}
	if s.pprof {
		mountPprof(mux)
	}
	// The obs middleware wraps outside the rate limiter so rejected (429)
	// requests still land in the request metrics and the access log.
	return obs.Middleware(s.limiter.middleware(mux), obs.MiddlewareOptions{
		Registry:   s.metrics,
		RouteLabel: routeLabel,
		AccessLog:  s.accessLog,
	})
}

// ListenAndServe runs the API server on addr.
func (s *Server) ListenAndServe(addr string) error {
	return http.ListenAndServe(addr, s.Handler())
}

// JSON envelope helpers -----------------------------------------------------

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // headers already sent
}

// writeError answers with the structured error envelope
// {"error": {"code", "message"}} — every error of the API surface goes
// through here, so the envelope shape and the machine-readable codes cannot
// drift between handlers.
func writeError(w http.ResponseWriter, status int, code, format string, args ...any) {
	apierr.Write(w, status, code, format, args...)
}

// sessionInfo is the JSON description of one session.
type sessionInfo struct {
	ID       string  `json:"id"`
	Name     string  `json:"name,omitempty"`
	Source   string  `json:"source"`
	Clusters int     `json:"clusters"`
	Hosts    int     `json:"hosts"`
	Tasks    int     `json:"tasks"`
	Makespan float64 `json:"makespan"`
}

func infoOf(sess *Session) sessionInfo {
	// The cached summary, not the schedule: listing sessions must not
	// hydrate recovered sessions.
	sum := sess.Summary()
	return sessionInfo{
		ID:       sess.ID,
		Name:     sess.Name,
		Source:   sess.Source,
		Clusters: sum.Clusters,
		Hosts:    sum.Hosts,
		Tasks:    sum.Tasks,
		Makespan: sum.Makespan,
	}
}

func (s *Server) session(w http.ResponseWriter, r *http.Request) (*Session, bool) {
	id := r.PathValue("id")
	sess, ok := s.store.Get(id)
	if !ok {
		writeError(w, http.StatusNotFound, "session_not_found", "no session %q", id)
		return nil, false
	}
	return sess, true
}

// Session collection --------------------------------------------------------

func (s *Server) schedulers(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string][]string{"schedulers": sched.List()})
}

func (s *Server) listSessions(w http.ResponseWriter, r *http.Request) {
	pg, ok := parsePage(w, r)
	if !ok {
		return
	}
	sessions := s.store.List() // stable: sorted by ID
	total := len(sessions)
	sessions = pageSlice(pg, sessions)
	infos := make([]sessionInfo, len(sessions))
	for i, sess := range sessions {
		infos[i] = infoOf(sess)
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"sessions": infos, "total": total,
		"limit": pg.limit, "offset": pg.offset,
	})
}

// createSession accepts three body kinds, chosen by Content-Type (a
// ?format= query parameter overrides): application/json runs a registered
// scheduler server-side (CreateRequest), text/csv and everything else go
// through the pluggable parser registry as "csv" and "jedule" documents.
func (s *Server) createSession(w http.ResponseWriter, r *http.Request) {
	body := http.MaxBytesReader(w, r.Body, maxUploadBytes)
	defer body.Close()

	kind := r.URL.Query().Get("format")
	if kind == "" {
		ct := r.Header.Get("Content-Type")
		switch {
		case strings.HasPrefix(ct, "application/json"):
			kind = "generate"
		case strings.HasPrefix(ct, "text/csv"):
			kind = "csv"
		default:
			kind = "jedule"
		}
	}

	name := r.URL.Query().Get("name")
	// With persistence on, the body is captured verbatim so the session's
	// recipe replays the exact client input after a restart: the raw JSON
	// re-runs the deterministic generator, the raw document re-parses.
	var input io.Reader = body
	var raw []byte
	if s.store.PersistEnabled() {
		var err error
		raw, err = io.ReadAll(body)
		if err != nil {
			status, code := http.StatusBadRequest, "bad_request"
			if _, ok := err.(*http.MaxBytesError); ok {
				status, code = http.StatusRequestEntityTooLarge, "payload_too_large"
			}
			writeError(w, status, code, "reading body: %v", err)
			return
		}
		input = bytes.NewReader(raw)
	}
	var (
		schedule *core.Schedule
		source   string
		recipe   *Recipe
		err      error
	)
	switch kind {
	case "generate", "json":
		var req CreateRequest
		dec := json.NewDecoder(input)
		dec.DisallowUnknownFields()
		if err := dec.Decode(&req); err != nil {
			writeError(w, http.StatusBadRequest, "bad_request", "bad create request: %v", err)
			return
		}
		schedule, err = req.Build()
		if err != nil {
			writeError(w, http.StatusBadRequest, "bad_request", "%v", err)
			return
		}
		if name == "" {
			name = req.Name
		}
		if name == "" {
			name = req.Algo
		}
		source = "generated"
		if raw != nil {
			recipe = &Recipe{Kind: "generate", Request: raw}
		}
	default:
		schedule, err = jedxml.ReadFormat(kind, input)
		if err != nil {
			writeError(w, http.StatusBadRequest, "bad_document", "%v", err)
			return
		}
		source = "upload"
		if raw != nil {
			recipe = &Recipe{Kind: "doc", Format: kind, Doc: raw}
		}
	}

	sess := s.store.AddRecipe(name, source, schedule, recipe)
	w.Header().Set("Location", "/api/v1/sessions/"+sess.ID)
	writeJSON(w, http.StatusCreated, infoOf(sess))
}

func (s *Server) getSession(w http.ResponseWriter, r *http.Request) {
	if sess, ok := s.session(w, r); ok {
		writeJSON(w, http.StatusOK, infoOf(sess))
	}
}

func (s *Server) deleteSession(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if !s.store.Delete(id) {
		writeError(w, http.StatusNotFound, "session_not_found", "no session %q", id)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// Stateless read surface ----------------------------------------------------

// render streams the session's schedule as an image; every aspect of the
// view (format, size, window, clusters, mode, grayscale, ...) comes from
// query parameters, so concurrent readers never interfere.
func (s *Server) render(w http.ResponseWriter, r *http.Request) {
	s.encodeImage(w, r, false)
}

// export is render with an attachment disposition, plus the document
// formats "jedule" (XML) for a lossless round trip of the session.
func (s *Server) export(w http.ResponseWriter, r *http.Request) {
	format := imageFormat(r)
	if format == "jedule" || format == "xml" {
		sess, ok := s.session(w, r)
		if !ok {
			return
		}
		if handleConditional(w, r, etagFor(sess, r.URL.Query())) {
			return
		}
		var buf bytes.Buffer
		if err := jedxml.Write(&buf, sess.Schedule()); err != nil {
			writeError(w, http.StatusInternalServerError, "internal", "%v", err)
			return
		}
		w.Header().Set("Content-Type", "application/xml; charset=utf-8")
		w.Header().Set("Content-Disposition", attachment(sess.ID, "jed"))
		buf.WriteTo(w) //nolint:errcheck
		return
	}
	s.encodeImage(w, r, true)
}

func imageFormat(r *http.Request) string {
	if f := r.URL.Query().Get("format"); f != "" {
		return f
	}
	return "png"
}

func attachment(id, ext string) string {
	return fmt.Sprintf(`attachment; filename="%s.%s"`, id, ext)
}

// encodeImage is the one options-driven branch behind render and export:
// negotiate view parameters once, then only the encoder differs by format.
// The 200 body is memoized in the render cache under the same strong ETag
// that anchors the 304 path, and concurrent identical requests collapse
// into a single rasterization.
func (s *Server) encodeImage(w http.ResponseWriter, r *http.Request, download bool) {
	sess, ok := s.session(w, r)
	if !ok {
		return
	}
	format := imageFormat(r)
	ct, ok := render.ContentType(format)
	if !ok {
		valid := render.EncodeFormats()
		if download {
			valid = append(valid, "jedule") // export also streams the XML document
		}
		writeError(w, http.StatusBadRequest, "bad_format", "unknown format %q (want %s)",
			format, strings.Join(valid, ", "))
		return
	}
	vp, err := parseViewParams(r.URL.Query())
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad_view_params", "%v", err)
		return
	}
	if !vp.LODSet {
		vp.Opts.LOD = s.lodDefault
	}
	// Canonicalize the effective LOD into the hashed query: lod=1, lod=true
	// and an equal server default collapse onto one validator, and a restart
	// with a different -lod default cannot answer 304 for a body it would
	// now render differently.
	q := r.URL.Query()
	q.Set("lod", strconv.FormatBool(vp.Opts.LOD))
	etag := etagFor(sess, q)
	if handleConditional(w, r, etag) {
		return
	}
	vp.Opts.Workers = s.renderWorkers
	schedule, index := sess.ScheduleWithIndex()
	if !vp.Opts.Composites {
		// The session-cached index matches the schedule as stored; with
		// composites on, Render derives extra tasks and rebuilds anyway.
		vp.Opts.Index = index
	}
	if vp.Opts.LOD {
		vp.Opts.LODReport = func(n int) {
			s.mLodRenders.Inc()
			s.mLodTasks.Add(int64(n))
		}
	}
	// Stage timings belong to the request that actually rasterizes: the
	// closure runs at most once per flight, synchronously in the first
	// caller's goroutine, so the slice needs no locking. Cache hits and
	// collapsed waiters report only the cache disposition.
	type stageTiming struct {
		name string
		d    time.Duration
	}
	var stages []stageTiming
	vp.Opts.StageReport = func(stage string, d time.Duration) {
		stages = append(stages, stageTiming{stage, d})
	}
	body, cachedCT, hit, err := s.cache.Render(etag, sess.ID, func() ([]byte, string, error) {
		var buf bytes.Buffer
		if err := render.Encode(&buf, format, schedule, vp.Width, vp.Height, vp.Opts); err != nil {
			return nil, "", err
		}
		return buf.Bytes(), ct, nil
	})
	if err != nil {
		writeError(w, http.StatusInternalServerError, "render_failed", "%v", err)
		return
	}
	w.Header().Set("Content-Type", cachedCT)
	if download {
		w.Header().Set("Content-Disposition", attachment(sess.ID, format))
	}
	cacheState := "miss"
	if hit {
		cacheState = "hit"
	}
	w.Header().Set("X-Render-Cache", cacheState)
	timing := make([]string, 0, len(stages)+1)
	for _, st := range stages {
		timing = append(timing, fmt.Sprintf("%s;dur=%.2f", st.name, float64(st.d.Microseconds())/1000))
		s.metrics.Histogram("jed_render_stage_seconds",
			"Render stage wall time in seconds, by stage.",
			obs.DefBuckets(), "stage", st.name).Observe(st.d.Seconds())
	}
	timing = append(timing, "cache;desc="+cacheState)
	w.Header().Set("Server-Timing", strings.Join(timing, ", "))
	w.Header().Set("Content-Length", strconv.Itoa(len(body)))
	w.Write(body) //nolint:errcheck
}

// serverMeta reports server-level observability: session count, render
// worker bound, session TTL, the render-cache counters, and — with a fleet
// mounted — the fleet counters (workers joined/active/retired, leases
// granted/expired, shards stolen, queue depth). The established top-level
// field names are stable (scripts and CI assert on them); the "metrics"
// block mirrors the full registry for JSON consumers of /api/v1/metrics.
func (s *Server) serverMeta(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.metaSnapshot())
}

// metaSnapshot assembles the meta document in one pass: every subsystem's
// stats are read exactly once, up front, so the legacy blocks and the
// registry-backed counters describe the same instant instead of being
// gathered under different locks at different times as requests land
// between reads.
func (s *Server) metaSnapshot() map[string]any {
	cacheStats := s.cache.Stats()
	limitStats := s.limiter.Stats()
	busStats := s.bus.Stats()
	meta := map[string]any{
		"sessions":             s.store.Len(),
		"render_workers":       s.renderWorkers,
		"session_ttl_seconds":  s.store.TTL().Seconds(),
		"render_cache":         cacheStats,
		"rate_limit":           limitStats,
		"coord_workers":        len(s.coordWorkers),
		"lod_default":          s.lodDefault,
		"lod_renders":          s.mLodRenders.Value(),
		"lod_tasks_aggregated": s.mLodTasks.Value(),
		"jobs_evicted":         s.jobs.Evictions() + s.coordJobs.Evictions(),
		"events":               busStats,
		"long_polls":           s.mLongPolls.Value(),
		"metrics":              s.metrics.Snapshot(),
	}
	if s.fleet != nil {
		meta["fleet"] = s.fleet.Stats()
	}
	if s.persist != nil {
		meta["persist"] = map[string]any{
			"store":              s.persist.Stats(),
			"recovered_sessions": s.store.RecoveredSessions(),
			"hydration_failures": s.store.HydrationFailures(),
			"session_errors":     s.store.PersistErrors(),
			"job_errors":         s.jobsPersist.Errors() + s.coordPersist.Errors(),
			"jobs":               s.jobsRecovered,
			"campaigns":          s.coordRecovered,
		}
	}
	return meta
}

// statsJSON mirrors core.Stats for the wire.
type statsJSON struct {
	Extent      [2]float64         `json:"extent"`
	Makespan    float64            `json:"makespan"`
	Hosts       int                `json:"hosts"`
	BusyArea    float64            `json:"busy_area"`
	IdleArea    float64            `json:"idle_area"`
	Utilization float64            `json:"utilization"`
	TaskCount   int                `json:"task_count"`
	TypeArea    map[string]float64 `json:"type_area"`
}

func (s *Server) stats(w http.ResponseWriter, r *http.Request) {
	sess, ok := s.session(w, r)
	if !ok {
		return
	}
	schedule := sess.Schedule()
	var st core.Stats
	if raw := r.URL.Query().Get("cluster"); raw != "" {
		id, err := strconv.Atoi(raw)
		if err != nil {
			writeError(w, http.StatusBadRequest, "bad_cluster", "bad cluster %q", raw)
			return
		}
		if _, ok := schedule.Cluster(id); !ok {
			writeError(w, http.StatusNotFound, "cluster_not_found", "no cluster %d", id)
			return
		}
		st = schedule.ClusterStats(id)
	} else {
		st = schedule.ComputeStats()
	}
	writeJSON(w, http.StatusOK, statsJSON{
		Extent:      [2]float64{st.Extent.Min, st.Extent.Max},
		Makespan:    st.Makespan,
		Hosts:       st.Hosts,
		BusyArea:    st.BusyArea,
		IdleArea:    st.IdleArea,
		Utilization: st.Utilization,
		TaskCount:   st.TaskCount,
		TypeArea:    st.TypeArea,
	})
}

// taskJSON is the machine-readable task record; it carries the same fields
// as the interactive mode's click popup.
type taskJSON struct {
	ID          string            `json:"id"`
	Type        string            `json:"type"`
	Start       float64           `json:"start"`
	End         float64           `json:"end"`
	Duration    float64           `json:"duration"`
	Allocations map[string][]int  `json:"allocations"` // cluster id -> host list
	Properties  map[string]string `json:"properties,omitempty"`
}

func taskToJSON(t *core.Task) taskJSON {
	tj := taskJSON{
		ID: t.ID, Type: t.Type, Start: t.Start, End: t.End,
		Duration:    t.Duration(),
		Allocations: map[string][]int{},
	}
	for _, a := range t.Allocations {
		tj.Allocations[strconv.Itoa(a.Cluster)] = a.HostList()
	}
	if len(t.Properties) > 0 {
		tj.Properties = map[string]string{}
		for _, p := range t.Properties {
			tj.Properties[p.Name] = p.Value
		}
	}
	return tj
}

// tasks lists the session's tasks; with ?x=&y= it instead hit-tests the
// rendered view at that pixel (the REST form of the click-for-details
// gesture) and returns the task there, or null over the background.
func (s *Server) tasks(w http.ResponseWriter, r *http.Request) {
	sess, ok := s.session(w, r)
	if !ok {
		return
	}
	schedule := sess.Schedule()
	q := r.URL.Query()
	if q.Get("x") != "" || q.Get("y") != "" {
		x, err0 := strconv.ParseFloat(q.Get("x"), 64)
		y, err1 := strconv.ParseFloat(q.Get("y"), 64)
		if err0 != nil || err1 != nil {
			writeError(w, http.StatusBadRequest, "bad_request", "bad x/y")
			return
		}
		vp, err := parseViewParams(q)
		if err != nil {
			writeError(w, http.StatusBadRequest, "bad_view_params", "%v", err)
			return
		}
		if vp.Opts.Composites {
			schedule = schedule.WithComposites()
		} else {
			schedule, vp.Opts.Index = sess.ScheduleWithIndex()
		}
		l := render.ComputeLayout(schedule, float64(vp.Width), float64(vp.Height), vp.Opts)
		idx, hit := l.HitTest(schedule, x, y)
		if !hit {
			writeJSON(w, http.StatusOK, map[string]any{"task": nil})
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{"task": taskToJSON(&schedule.Tasks[idx])})
		return
	}
	out := make([]taskJSON, len(schedule.Tasks))
	for i := range schedule.Tasks {
		out[i] = taskToJSON(&schedule.Tasks[i])
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Start != out[j].Start {
			return out[i].Start < out[j].Start
		}
		return out[i].ID < out[j].ID
	})
	writeJSON(w, http.StatusOK, map[string]any{"tasks": out})
}

// meta returns the schedule-level meta properties and the cluster table.
func (s *Server) meta(w http.ResponseWriter, r *http.Request) {
	sess, ok := s.session(w, r)
	if !ok {
		return
	}
	schedule := sess.Schedule()
	metaMap := map[string]string{}
	for _, p := range schedule.Meta {
		metaMap[p.Name] = p.Value
	}
	type clusterJSON struct {
		ID    int    `json:"id"`
		Name  string `json:"name"`
		Hosts int    `json:"hosts"`
	}
	clusters := make([]clusterJSON, len(schedule.Clusters))
	for i, c := range schedule.Clusters {
		clusters[i] = clusterJSON{ID: c.ID, Name: c.DisplayName(), Hosts: c.Hosts}
	}
	writeJSON(w, http.StatusOK, map[string]any{"meta": metaMap, "clusters": clusters})
}

// index is the minimal HTML landing page of a standalone API server
// (jedserve, jeduleview -serve-many): one row per session with links into
// the REST surface.
func (s *Server) index(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	fmt.Fprint(w, "<!DOCTYPE html>\n<html><head><title>jedule sessions</title></head><body>\n")
	fmt.Fprint(w, "<h1>jedule sessions</h1>\n<p>API at <code>/api/v1/sessions</code></p>\n<ul>\n")
	for _, sess := range s.store.List() {
		in := infoOf(sess)
		label := in.ID
		if in.Name != "" && in.Name != in.ID {
			label += " — " + in.Name
		}
		base := "/api/v1/sessions/" + in.ID
		fmt.Fprintf(w,
			`<li>%s (%d tasks, %d hosts, makespan %g): <a href="%s/render">png</a> <a href="%s/render?format=svg">svg</a> <a href="%s/stats">stats</a> <a href="%s/export?format=jedule">jedule</a></li>`+"\n",
			html.EscapeString(label), in.Tasks, in.Hosts, in.Makespan, base, base, base, base)
	}
	fmt.Fprint(w, "</ul>\n</body></html>\n")
}
