package api

import (
	"context"
	"fmt"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/jobs"
)

const smallJobSpec = `{"algos": ["cpa", "mcpa"], "shapes": ["serial", "wide"],
	"dag_sizes": [15], "cluster_sizes": [16, 32], "replicates": 2, "seed": 11%s}`

// launchJob POSTs a job spec and returns the job id.
func launchJob(t *testing.T, ts *httptest.Server, spec string) string {
	t.Helper()
	code, info := doJSON(t, "POST", ts.URL+"/api/v1/jobs", strings.NewReader(spec), "application/json")
	if code != 202 {
		t.Fatalf("create job = %d %v", code, info)
	}
	if info["state"] != "pending" && info["state"] != "running" {
		t.Fatalf("initial state = %v", info["state"])
	}
	return info["id"].(string)
}

// pollJob blocks until the job reaches a terminal state, via the ?wait=
// long-poll (Engine.Wait under the handler) rather than a sleep loop.
func pollJob(t *testing.T, ts *httptest.Server, id string) map[string]any {
	t.Helper()
	deadline := time.Now().Add(120 * time.Second)
	for {
		code, info := doJSON(t, "GET", ts.URL+"/api/v1/jobs/"+id+"?wait=30s", nil, "")
		if code != 200 {
			t.Fatalf("poll %s = %d %v", id, code, info)
		}
		switch info["state"] {
		case "done", "failed", "cancelled":
			return info
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck: %v", id, info)
		}
	}
}

// TestJobLaunchPollResult is the acceptance path: POST a campaign spec,
// poll the job, fetch the aggregated result.
func TestJobLaunchPollResult(t *testing.T) {
	ts, _ := newTestAPI(t)
	id := launchJob(t, ts, fmt.Sprintf(smallJobSpec, ""))

	info := pollJob(t, ts, id)
	if info["state"] != "done" {
		t.Fatalf("final state = %v (error %v)", info["state"], info["error"])
	}
	prog := info["progress"].(map[string]any)
	if prog["done"].(float64) != 4 || prog["total"].(float64) != 4 {
		t.Fatalf("progress = %v", prog)
	}
	if info["started"] == nil || info["finished"] == nil {
		t.Fatalf("timestamps missing: %v", info)
	}

	code, res := doJSON(t, "GET", ts.URL+"/api/v1/jobs/"+id+"/result", nil, "")
	if code != 200 {
		t.Fatalf("result = %d %v", code, res)
	}
	if got := res["total"].(float64); got != 8 {
		t.Fatalf("total runs = %v", got)
	}
	wins := res["wins"].(map[string]any)
	ties := res["ties"].(float64)
	if wins["cpa"].(float64)+wins["mcpa"].(float64)+ties != 8 {
		t.Fatalf("wins do not sum: %v ties %v", wins, ties)
	}
	if len(res["cells"].([]any)) != 4 {
		t.Fatalf("cells = %d", len(res["cells"].([]any)))
	}
	table := res["table"].(string)
	if !strings.Contains(table, "cpa-wins") || !strings.Contains(table, "total 8 runs") {
		t.Fatalf("table = %q", table)
	}
	merged := res["merged"].([]any)
	if len(merged) != 1 || merged[0] != id {
		t.Fatalf("merged = %v", merged)
	}

	// Jobs listing knows the job.
	code, list := doJSON(t, "GET", ts.URL+"/api/v1/jobs", nil, "")
	if code != 200 || len(list["jobs"].([]any)) != 1 {
		t.Fatalf("jobs list = %d %v", code, list)
	}
}

// TestJobDefaultCampaign runs the paper-sized default factorial (empty
// spec) through the job surface end to end.
func TestJobDefaultCampaign(t *testing.T) {
	if testing.Short() {
		t.Skip("full default campaign")
	}
	ts, _ := newTestAPI(t)
	id := launchJob(t, ts, `{"replicates": 2}`) // default dims, fast replicate count
	info := pollJob(t, ts, id)
	if info["state"] != "done" {
		t.Fatalf("final state = %v (error %v)", info["state"], info["error"])
	}
	code, res := doJSON(t, "GET", ts.URL+"/api/v1/jobs/"+id+"/result", nil, "")
	if code != 200 {
		t.Fatalf("result = %d %v", code, res)
	}
	if got := len(res["cells"].([]any)); got != 45 {
		t.Fatalf("default campaign cells = %d, want 45", got)
	}
	if got := res["total"].(float64); got != 90 {
		t.Fatalf("default campaign runs = %v, want 90", got)
	}
}

// TestJobShardMerge launches the two shards of one campaign as separate
// jobs and fetches the merged result — it must equal the unsharded job's.
func TestJobShardMerge(t *testing.T) {
	ts, _ := newTestAPI(t)
	full := launchJob(t, ts, fmt.Sprintf(smallJobSpec, ""))
	s1 := launchJob(t, ts, fmt.Sprintf(smallJobSpec, `, "shard": "1/2"`))
	s2 := launchJob(t, ts, fmt.Sprintf(smallJobSpec, `, "shard": "2/2"`))
	for _, id := range []string{full, s1, s2} {
		if st := pollJob(t, ts, id); st["state"] != "done" {
			t.Fatalf("job %s = %v", id, st)
		}
	}
	code, fullRes := doJSON(t, "GET", ts.URL+"/api/v1/jobs/"+full+"/result", nil, "")
	if code != 200 {
		t.Fatalf("full result = %d", code)
	}
	code, mergedRes := doJSON(t, "GET",
		ts.URL+"/api/v1/jobs/"+s1+"/result?merge="+s2, nil, "")
	if code != 200 {
		t.Fatalf("merged result = %d %v", code, mergedRes)
	}
	if fullRes["table"].(string) != mergedRes["table"].(string) {
		t.Fatalf("merged table differs:\n%s\nvs\n%s", fullRes["table"], mergedRes["table"])
	}
	got := mergedRes["merged"].([]any)
	if len(got) != 2 || got[0] != s1 || got[1] != s2 {
		t.Fatalf("merged ids = %v", got)
	}

	// A partial shard result alone is fine too — half the cells.
	code, half := doJSON(t, "GET", ts.URL+"/api/v1/jobs/"+s1+"/result", nil, "")
	if code != 200 || len(half["cells"].([]any)) != 2 {
		t.Fatalf("shard result = %d %v", code, half)
	}
}

func TestJobCancel(t *testing.T) {
	ts, _ := newTestAPI(t)
	// A heavyweight campaign so cancellation strikes mid-flight.
	id := launchJob(t, ts, `{"algos": ["cpa", "mcpa"],
		"shapes": ["random", "forkjoin", "wide", "long"],
		"dag_sizes": [40, 80], "cluster_sizes": [32, 64, 128],
		"replicates": 6, "seed": 5}`)
	code, info := doJSON(t, "DELETE", ts.URL+"/api/v1/jobs/"+id, nil, "")
	if code != 200 {
		t.Fatalf("cancel = %d %v", code, info)
	}
	info = pollJob(t, ts, id)
	if info["state"] != "cancelled" {
		t.Fatalf("state after cancel = %v", info["state"])
	}
	// No result for a cancelled job.
	if code, _ := doJSON(t, "GET", ts.URL+"/api/v1/jobs/"+id+"/result", nil, ""); code != 409 {
		t.Fatalf("result of cancelled job = %d, want 409", code)
	}
	// Cancelling again is a no-op.
	if code, _ := doJSON(t, "DELETE", ts.URL+"/api/v1/jobs/"+id, nil, ""); code != 200 {
		t.Fatalf("double cancel = %d", code)
	}
}

func TestJobBadInputs(t *testing.T) {
	ts, srv := newTestServer(t)
	done := launchJob(t, ts, fmt.Sprintf(smallJobSpec, ""))
	pollJob(t, ts, done)
	// A stub campaign job that stays Running until the engine shuts down,
	// so the not-done checks are deterministic.
	block := make(chan struct{})
	t.Cleanup(func() { close(block) })
	runningJob := srv.Jobs().Submit(jobs.KindCampaign, 10, func(ctx context.Context, _ *jobs.Job) (any, error) {
		select {
		case <-block:
		case <-ctx.Done():
		}
		return nil, context.Canceled
	})
	running := runningJob.ID()
	// A completed campaign of a different seed: not mergeable with `done`.
	otherSeed := launchJob(t, ts, strings.Replace(fmt.Sprintf(smallJobSpec, ""), `"seed": 11`, `"seed": 12`, 1))
	pollJob(t, ts, otherSeed)

	for name, check := range map[string]struct {
		method, url, body string
		want              int
	}{
		"bad json":             {"POST", "/api/v1/jobs", "{", 400},
		"unknown field":        {"POST", "/api/v1/jobs", `{"bogus": 1}`, 400},
		"unknown algo":         {"POST", "/api/v1/jobs", `{"algos": ["cpa", "nope"]}`, 400},
		"one algo":             {"POST", "/api/v1/jobs", `{"algos": ["cpa"]}`, 400},
		"bad shape":            {"POST", "/api/v1/jobs", `{"shapes": ["blob"]}`, 400},
		"bad shard":            {"POST", "/api/v1/jobs", `{"shard": "9/2"}`, 400},
		"unknown job":          {"GET", "/api/v1/jobs/j99", "", 404},
		"bad wait":             {"GET", "/api/v1/jobs/" + done + "?wait=x", "", 400},
		"unknown cancel":       {"DELETE", "/api/v1/jobs/j99", "", 404},
		"unknown result":       {"GET", "/api/v1/jobs/j99/result", "", 404},
		"result too soon":      {"GET", "/api/v1/jobs/" + running + "/result", "", 409},
		"bad threshold":        {"GET", "/api/v1/jobs/" + done + "/result?threshold=x", "", 400},
		"merge unknown":        {"GET", "/api/v1/jobs/" + done + "/result?merge=j99", "", 404},
		"merge not done":       {"GET", "/api/v1/jobs/" + done + "/result?merge=" + running, "", 409},
		"merge self":           {"GET", "/api/v1/jobs/" + done + "/result?merge=" + done, "", 409},
		"merge other campaign": {"GET", "/api/v1/jobs/" + done + "/result?merge=" + otherSeed, "", 409},
	} {
		var body *strings.Reader
		if check.body != "" {
			body = strings.NewReader(check.body)
		} else {
			body = strings.NewReader("")
		}
		code, _ := doJSON(t, check.method, ts.URL+check.url, body, "application/json")
		if code != check.want {
			t.Errorf("%s: code = %d, want %d", name, code, check.want)
		}
	}
}
