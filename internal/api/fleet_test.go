package api

// Fleet surface tests: SetFleet mounts the worker protocol on the API mux,
// exposes the counters on /api/v1/meta, and routes POST /api/v1/campaigns
// through the pull queue when no static pool is configured.

import (
	"context"
	"fmt"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/fleet"
)

// newFleetServer wires a manager into a fresh API server before its handler
// is built (SetFleet must precede Handler, like every Set* knob).
func newFleetServer(t *testing.T, m *fleet.Manager, minWorkers int) (*httptest.Server, *Server) {
	t.Helper()
	srv := NewServer(NewStore())
	t.Cleanup(srv.Close)
	srv.SetFleet(m, minWorkers)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return ts, srv
}

// TestFleetWorkersEndpoint pins the mounted protocol: join over HTTP, see
// the worker in the registry and the counters on /api/v1/meta.
func TestFleetWorkersEndpoint(t *testing.T) {
	m := fleet.NewManager(fleet.Config{HeartbeatInterval: time.Second})
	ts, _ := newFleetServer(t, m, 1)

	code, join := doJSON(t, "POST", ts.URL+"/api/v1/workers", strings.NewReader(`{"name": "box"}`), "application/json")
	if code != 201 || join["id"] == "" {
		t.Fatalf("join = %d %v", code, join)
	}
	if hb := join["heartbeat_seconds"].(float64); hb != 1 {
		t.Fatalf("advertised heartbeat = %v", hb)
	}
	code, list := doJSON(t, "GET", ts.URL+"/api/v1/workers", nil, "")
	if code != 200 || len(list["workers"].([]any)) != 1 {
		t.Fatalf("workers list = %d %v", code, list)
	}
	code, meta := doJSON(t, "GET", ts.URL+"/api/v1/meta", nil, "")
	if code != 200 {
		t.Fatalf("meta = %d", code)
	}
	fl, ok := meta["fleet"].(map[string]any)
	if !ok {
		t.Fatalf("meta has no fleet block: %v", meta)
	}
	if fl["workers_joined"].(float64) != 1 || fl["workers_active"].(float64) != 1 {
		t.Fatalf("fleet counters = %v", fl)
	}

	// Without SetFleet the endpoint does not exist and meta has no block.
	bare, _ := newTestServer(t)
	code, _ = doJSON(t, "GET", bare.URL+"/api/v1/workers", nil, "")
	if code != 404 {
		t.Fatalf("workers endpoint without fleet = %d, want 404", code)
	}
	code, meta = doJSON(t, "GET", bare.URL+"/api/v1/meta", nil, "")
	if code != 200 {
		t.Fatalf("meta = %d", code)
	}
	if _, ok := meta["fleet"]; ok {
		t.Fatalf("meta advertises a fleet without SetFleet: %v", meta)
	}
}

// TestFleetCampaign runs POST /api/v1/campaigns with no static pool: the
// campaign dispatches through the fleet's pull queue and the merged result
// equals a direct in-process job of the same spec.
func TestFleetCampaign(t *testing.T) {
	m := fleet.NewManager(fleet.Config{HeartbeatInterval: 100 * time.Millisecond})
	ts, srv := newFleetServer(t, m, 1)

	ctx, cancel := context.WithCancel(context.Background())
	workerDone := make(chan struct{})
	t.Cleanup(func() { cancel(); <-workerDone })
	go func() {
		defer close(workerDone)
		fleet.RunWorker(ctx, fleet.WorkerConfig{ //nolint:errcheck // exits on cancel
			Coordinator: ts.URL,
			Name:        "puller",
			Poll:        10 * time.Millisecond,
		})
	}()

	spec := fmt.Sprintf(smallJobSpec, `, "shards": 4`)
	code, info := doJSON(t, "POST", ts.URL+"/api/v1/campaigns", strings.NewReader(spec), "application/json")
	if code != 202 {
		t.Fatalf("create fleet campaign = %d %v", code, info)
	}
	final := waitCampaign(t, ts, srv, info["id"].(string))
	if final["state"] != "done" {
		t.Fatalf("final state = %v (error %v)", final["state"], final["error"])
	}
	coordination := final["coordination"].(map[string]any)
	if got := coordination["shards_done"].(float64); got != 4 {
		t.Fatalf("shards_done = %v", got)
	}

	// Identical to the single-process job result.
	jobID := launchJob(t, ts, fmt.Sprintf(smallJobSpec, ""))
	if st := pollJob(t, ts, jobID); st["state"] != "done" {
		t.Fatalf("reference job = %v", st)
	}
	code, coordRes := doJSON(t, "GET", ts.URL+"/api/v1/campaigns/"+info["id"].(string)+"/result", nil, "")
	if code != 200 {
		t.Fatalf("campaign result = %d", code)
	}
	code, jobRes := doJSON(t, "GET", ts.URL+"/api/v1/jobs/"+jobID+"/result", nil, "")
	if code != 200 {
		t.Fatalf("job result = %d", code)
	}
	if coordRes["table"].(string) != jobRes["table"].(string) {
		t.Fatalf("fleet campaign table differs:\n%s\nvs\n%s", coordRes["table"], jobRes["table"])
	}

	// The fleet counters saw the campaign.
	code, meta := doJSON(t, "GET", ts.URL+"/api/v1/meta", nil, "")
	if code != 200 {
		t.Fatalf("meta = %d", code)
	}
	fl := meta["fleet"].(map[string]any)
	if fl["shards_completed"].(float64) != 4 || fl["leases_granted"].(float64) < 4 {
		t.Fatalf("fleet counters = %v", fl)
	}
}
