package api

import (
	"fmt"
	"math"
	"net/url"
	"strconv"
	"strings"

	"repro/internal/colormap"
	"repro/internal/core"
	"repro/internal/render"
)

// Size bounds for stateless renders; a query can not ask the server for an
// arbitrarily large raster.
const (
	minDim             = 16
	maxDim             = 8192
	defaultW, defaultH = 1000, 600
)

// viewParams is the fully-negotiated, per-request view state: everything
// the old mutable Viewport held, derived from query parameters instead.
type viewParams struct {
	Width, Height int
	Opts          render.Options
	// LODSet records whether the request carried an explicit lod= value;
	// when absent the server's -lod default applies. encodeImage
	// canonicalizes the effective value into the ETag'd query either way,
	// so lod=1, lod=true, and a matching server default share validators —
	// and a restart with a different default cannot serve stale 304s.
	LODSet bool
}

// parseViewParams derives render options from a request's query parameters.
// Unknown values are errors (reported as 400 by the handlers); absent
// values take the command-line mode's defaults.
func parseViewParams(q url.Values) (*viewParams, error) {
	vp := &viewParams{Width: defaultW, Height: defaultH}
	vp.Opts.Labels = true

	var err error
	if vp.Width, err = intParam(q, "width", defaultW); err != nil {
		return nil, err
	}
	if vp.Height, err = intParam(q, "height", defaultH); err != nil {
		return nil, err
	}
	for _, d := range []struct {
		name string
		v    int
	}{{"width", vp.Width}, {"height", vp.Height}} {
		if d.v < minDim || d.v > maxDim {
			return nil, fmt.Errorf("%s %d out of range [%d, %d]", d.name, d.v, minDim, maxDim)
		}
	}

	switch mode := q.Get("mode"); mode {
	case "", "aligned":
		vp.Opts.Mode = core.AlignedView
	case "scaled":
		vp.Opts.Mode = core.ScaledView
	default:
		return nil, fmt.Errorf("bad mode %q (want aligned or scaled)", mode)
	}

	if win := q.Get("window"); win != "" {
		parts := strings.Split(win, ",")
		if len(parts) != 2 {
			return nil, fmt.Errorf("bad window %q (want min,max)", win)
		}
		lo, err0 := strconv.ParseFloat(strings.TrimSpace(parts[0]), 64)
		hi, err1 := strconv.ParseFloat(strings.TrimSpace(parts[1]), 64)
		if err0 != nil || err1 != nil || !(lo < hi) ||
			math.IsInf(lo, 0) || math.IsInf(hi, 0) {
			return nil, fmt.Errorf("bad window %q (want finite min,max with min < max)", win)
		}
		vp.Opts.Window = &core.Extent{Min: lo, Max: hi}
	}

	if raw := q.Get("clusters"); raw != "" {
		for _, part := range strings.Split(raw, ",") {
			id, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil {
				return nil, fmt.Errorf("bad clusters value %q", part)
			}
			vp.Opts.Clusters = append(vp.Opts.Clusters, id)
		}
	}

	var gray bool
	for _, b := range []struct {
		name string
		dst  *bool
	}{
		{"labels", &vp.Opts.Labels},
		{"composites", &vp.Opts.Composites},
		{"legend", &vp.Opts.Legend},
		{"meta", &vp.Opts.ShowMeta},
		{"gray", &gray},
		{"lod", &vp.Opts.LOD},
	} {
		if err := boolParam(q, b.name, b.dst); err != nil {
			return nil, err
		}
	}
	vp.LODSet = q.Get("lod") != ""
	if gray {
		vp.Opts.Map = colormap.Default().Grayscale()
	}
	vp.Opts.Title = q.Get("title")
	return vp, nil
}

func intParam(q url.Values, name string, def int) (int, error) {
	raw := q.Get(name)
	if raw == "" {
		return def, nil
	}
	v, err := strconv.Atoi(raw)
	if err != nil {
		return 0, fmt.Errorf("bad %s %q", name, raw)
	}
	return v, nil
}

func boolParam(q url.Values, name string, dst *bool) error {
	raw := q.Get(name)
	if raw == "" {
		return nil
	}
	v, err := strconv.ParseBool(raw)
	if err != nil {
		return fmt.Errorf("bad %s %q (want a boolean)", name, raw)
	}
	*dst = v
	return nil
}
