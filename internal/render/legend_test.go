package render

import (
	"testing"

	"repro/internal/colormap"
	"repro/internal/core"
	"repro/internal/raster"
)

func TestLegendDrawsSwatches(t *testing.T) {
	s := demoSchedule()
	c := raster.New(640, 480)
	Render(c, s, Options{Legend: true})
	// The computation swatch (blue) must appear in the legend band.
	blue := colormap.Default().Lookup("computation").BG
	red := colormap.Default().Lookup("transfer").BG
	foundBlue, foundRed := false, false
	for y := 480 - int(legendBand); y < 480; y++ {
		for x := 0; x < 640; x++ {
			switch c.At(x, y) {
			case blue:
				foundBlue = true
			case red:
				foundRed = true
			}
		}
	}
	if !foundBlue || !foundRed {
		t.Fatalf("legend swatches missing: blue=%v red=%v", foundBlue, foundRed)
	}
}

func TestLegendReservesSpace(t *testing.T) {
	s := demoSchedule()
	plain := ComputeLayout(s, 640, 480, Options{})
	withLegend := ComputeLayout(s, 640, 480, Options{Legend: true, AxisLabels: true})
	plainBottom := plain.Panels[len(plain.Panels)-1]
	legBottom := withLegend.Panels[len(withLegend.Panels)-1]
	if legBottom.Plot.Y+legBottom.Plot.H >= plainBottom.Plot.Y+plainBottom.Plot.H {
		t.Fatal("legend did not shrink the plot area")
	}
}

func TestLegendCompositeEntry(t *testing.T) {
	s := core.NewSingleCluster("c", 2)
	s.Add("a", "computation", 0, 10, 0, 2)
	s.Add("b", "transfer", 2, 4, 0, 2)
	c := raster.New(640, 300)
	Render(c, s.WithComposites(), Options{Legend: true})
	orange := colormap.Default().CompositeDefault.BG
	found := false
	for y := 300 - int(legendBand); y < 300 && !found; y++ {
		for x := 0; x < 640; x++ {
			if c.At(x, y) == orange {
				found = true
				break
			}
		}
	}
	if !found {
		t.Fatal("composite legend entry missing")
	}
}

func TestAxisLabels(t *testing.T) {
	s := demoSchedule()
	c := raster.New(640, 480)
	Render(c, s, Options{AxisLabels: true})
	// The vertical "hosts" label puts ink in the left gutter.
	ink := 0
	for y := 0; y < 480; y++ {
		for x := 0; x < 12; x++ {
			px := c.At(x, y)
			if px.R < 100 && px.G < 100 && px.B < 100 {
				ink++
			}
		}
	}
	if ink < 10 {
		t.Fatalf("vertical axis label missing (ink=%d)", ink)
	}
}

func TestSideBySide(t *testing.T) {
	a := core.NewSingleCluster("left", 4)
	a.Add("la", "computation", 0, 10, 0, 4)
	b := core.NewSingleCluster("right", 4)
	b.Add("rb", "transfer", 0, 5, 0, 4)
	c := raster.New(800, 400)
	layouts := SideBySide(c, "cpa vs mcpa", []*core.Schedule{a, b},
		[]Options{{Labels: true}, {Labels: true}})
	if len(layouts) != 2 {
		t.Fatalf("layouts = %d", len(layouts))
	}
	// Left column shows blue, right column red — in their own halves.
	blue := colormap.Default().Lookup("computation").BG
	red := colormap.Default().Lookup("transfer").BG
	leftBlue, rightRed, leftRed := false, false, false
	for y := 0; y < 400; y += 2 {
		for x := 0; x < 800; x += 2 {
			switch c.At(x, y) {
			case blue:
				if x < 400 {
					leftBlue = true
				}
			case red:
				if x >= 400 {
					rightRed = true
				} else {
					leftRed = true
				}
			}
		}
	}
	if !leftBlue || !rightRed {
		t.Fatalf("columns missing: leftBlue=%v rightRed=%v", leftBlue, rightRed)
	}
	if leftRed {
		t.Fatal("right schedule leaked into the left column")
	}
	// Empty input.
	if got := SideBySide(c, "", nil, nil); got != nil {
		t.Fatal("empty SideBySide should return nil")
	}
	// Missing options default safely.
	if got := SideBySide(raster.New(200, 100), "", []*core.Schedule{a, b}, nil); len(got) != 2 {
		t.Fatal("default options broken")
	}
}
