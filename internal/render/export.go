package render

import (
	"fmt"
	"io"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/pdf"
	"repro/internal/raster"
	"repro/internal/svg"
)

// ToFile renders the schedule to a file, choosing the backend from the file
// extension: .png and .jpg/.jpeg use the software rasterizer, .pdf the
// vector writer, .svg the SVG writer. This is the core of the command-line
// mode the paper describes.
func ToFile(path string, s *core.Schedule, width, height int, opt Options) error {
	if err := s.Validate(); err != nil {
		return fmt.Errorf("render: %w", err)
	}
	switch strings.ToLower(filepath.Ext(path)) {
	case ".png", ".jpg", ".jpeg":
		c := raster.New(width, height)
		Render(c, s, opt)
		return c.WriteFile(path)
	case ".pdf":
		c := pdf.New(float64(width), float64(height))
		Render(c, s, opt)
		return c.WriteFile(path)
	case ".svg":
		c := svg.New(float64(width), float64(height))
		Render(c, s, opt)
		return c.WriteFile(path)
	default:
		return fmt.Errorf("render: unsupported output format %q (want .png, .jpg, .pdf, .svg)",
			filepath.Ext(path))
	}
}

// Formats lists the supported output file extensions.
func Formats() []string { return []string{".png", ".jpg", ".jpeg", ".pdf", ".svg"} }

// EncodeFormats lists the formats Encode can stream (HTTP responses, pipes).
func EncodeFormats() []string { return []string{"png", "svg", "pdf"} }

// ContentType returns the MIME type of a streamable format name.
func ContentType(format string) (string, bool) {
	switch format {
	case "png":
		return "image/png", true
	case "svg":
		return "image/svg+xml", true
	case "pdf":
		return "application/pdf", true
	}
	return "", false
}

// Encode renders the schedule in the named format ("png", "svg", "pdf") to
// w. It is the single options-driven path behind every HTTP render and
// export endpoint: all formats negotiate the same Options, so a window or
// cluster selection applied to a PNG applies identically to a PDF.
func Encode(w io.Writer, format string, s *core.Schedule, width, height int, opt Options) error {
	if err := s.Validate(); err != nil {
		return fmt.Errorf("render: %w", err)
	}
	encode := func(fn func() error) error {
		t0 := time.Now()
		err := fn()
		if opt.StageReport != nil {
			opt.StageReport("encode", time.Since(t0))
		}
		return err
	}
	switch format {
	case "png":
		c := raster.New(width, height)
		Render(c, s, opt)
		return encode(func() error { return c.EncodePNG(w) })
	case "svg":
		c := svg.New(float64(width), float64(height))
		Render(c, s, opt)
		return encode(func() error { return c.Encode(w) })
	case "pdf":
		c := pdf.New(float64(width), float64(height))
		Render(c, s, opt)
		return encode(func() error { return c.Encode(w) })
	default:
		return fmt.Errorf("render: unsupported stream format %q (want %s)",
			format, strings.Join(EncodeFormats(), ", "))
	}
}
