package render

import (
	"bytes"
	"fmt"
	"image"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/pdf"
	"repro/internal/raster"
	"repro/internal/svg"
)

// randomSchedule builds a schedule over nClusters clusters with nTasks
// randomly placed tasks (scattered multi-host allocations included), the
// kind of input the parallel rasterizer must reproduce bit for bit.
func randomSchedule(rng *rand.Rand, nClusters, nTasks int) *core.Schedule {
	clusters := make([]core.Cluster, nClusters)
	for i := range clusters {
		clusters[i] = core.Cluster{ID: i, Name: fmt.Sprintf("c%d", i), Hosts: 4 + rng.Intn(29)}
	}
	s := core.New(clusters...)
	types := []string{"computation", "transfer", "idle", "other"}
	for i := 0; i < nTasks; i++ {
		c := clusters[rng.Intn(nClusters)]
		start := rng.Float64() * 120
		end := start + 0.1 + rng.Float64()*25
		first := rng.Intn(c.Hosts)
		n := 1 + rng.Intn(c.Hosts-first)
		t := core.Task{
			ID: fmt.Sprintf("t%d", i), Type: types[rng.Intn(len(types))],
			Start: start, End: end,
			Allocations: []core.Allocation{{Cluster: c.ID, Hosts: []core.HostRange{{Start: first, N: n}}}},
		}
		// Occasionally scatter the allocation over a second host range.
		if rng.Intn(4) == 0 && first > 1 {
			t.Allocations[0].Hosts = append(t.Allocations[0].Hosts,
				core.HostRange{Start: rng.Intn(first), N: 1})
		}
		s.AddTask(t)
	}
	s.SetMeta("seed", "equivalence")
	return s
}

// renderAll returns the encoded png, svg, and pdf bytes of one render.
func renderAll(t *testing.T, s *core.Schedule, w, h int, opt Options) (png, svgB, pdfB []byte) {
	t.Helper()
	rc := raster.New(w, h)
	Render(rc, s, opt)
	var pngBuf bytes.Buffer
	if err := rc.EncodePNG(&pngBuf); err != nil {
		t.Fatal(err)
	}
	sc := svg.New(float64(w), float64(h))
	Render(sc, s, opt)
	var svgBuf bytes.Buffer
	if err := sc.Encode(&svgBuf); err != nil {
		t.Fatal(err)
	}
	pc := pdf.New(float64(w), float64(h))
	Render(pc, s, opt)
	var pdfBuf bytes.Buffer
	if err := pc.Encode(&pdfBuf); err != nil {
		t.Fatal(err)
	}
	return pngBuf.Bytes(), svgBuf.Bytes(), pdfBuf.Bytes()
}

// TestParallelMatchesSerial is the fuzz-style equivalence check: across
// random schedules, view options, and canvas sizes, a parallel render must
// be byte-identical to the serial one in every encode format.
func TestParallelMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 12; trial++ {
		nClusters := 1 + rng.Intn(5)
		nTasks := 1 + rng.Intn(300)
		s := randomSchedule(rng, nClusters, nTasks)
		w := 200 + rng.Intn(1000)
		h := 120 + rng.Intn(800)
		opt := Options{
			Labels:     rng.Intn(2) == 0,
			Legend:     rng.Intn(2) == 0,
			Composites: rng.Intn(2) == 0,
			AxisLabels: rng.Intn(2) == 0,
			ShowMeta:   rng.Intn(2) == 0,
			Title:      "equivalence trial",
		}
		if rng.Intn(2) == 0 {
			opt.Mode = core.ScaledView
		}
		opt.Workers = 1
		serialPNG, serialSVG, serialPDF := renderAll(t, s, w, h, opt)
		for _, workers := range []int{2, 3, 8} {
			opt.Workers = workers
			png, svgB, pdfB := renderAll(t, s, w, h, opt)
			if !bytes.Equal(serialPNG, png) {
				t.Fatalf("trial %d: png differs at %d workers (%d clusters, %d tasks, %dx%d)",
					trial, workers, nClusters, nTasks, w, h)
			}
			if !bytes.Equal(serialSVG, svgB) {
				t.Fatalf("trial %d: svg differs at %d workers (%d clusters, %d tasks, %dx%d)",
					trial, workers, nClusters, nTasks, w, h)
			}
			if !bytes.Equal(serialPDF, pdfB) {
				t.Fatalf("trial %d: pdf differs at %d workers (%d clusters, %d tasks, %dx%d)",
					trial, workers, nClusters, nTasks, w, h)
			}
		}
	}
}

// TestParallelEmptySchedule must not deadlock or panic with no panels.
func TestParallelEmptySchedule(t *testing.T) {
	s := core.New()
	c := raster.New(200, 100)
	Render(c, s, Options{Workers: 8})
}

// TestSubCanvasPartition pins the raster compositing contract: two Sub
// canvases over disjoint bands repaint exactly their own pixels.
func TestSubCanvasPartition(t *testing.T) {
	full := raster.New(40, 40)
	full.FillRect(0, 0, 40, 40, colorRGBA{R: 1, G: 2, B: 3, A: 255})
	top := full.Sub(image.Rect(0, 0, 40, 20))
	bot := full.Sub(image.Rect(0, 20, 40, 40))
	top.FillRect(0, 0, 40, 40, colorRGBA{R: 200, A: 255})
	bot.FillRect(0, 0, 40, 40, colorRGBA{G: 200, A: 255})
	if got := full.At(5, 5); got != (colorRGBA{R: 200, A: 255}) {
		t.Fatalf("top band pixel = %v", got)
	}
	if got := full.At(5, 25); got != (colorRGBA{G: 200, A: 255}) {
		t.Fatalf("bottom band pixel = %v", got)
	}
}
