package render

import (
	"image"
	"math"
	"runtime"
	"sync"

	"repro/internal/core"
	"repro/internal/pdf"
	"repro/internal/raster"
	"repro/internal/svg"
)

// The parallel phase of Render. Cluster panels are embarrassingly parallel:
// no panel's draw operations touch another panel's band of the canvas, and
// the title/legend/axis trims are painted by the caller outside this phase.
// Two strategies keep the output byte-identical to a serial render:
//
//   - Raster: the pixels are partitioned. Every job replays one panel's draw
//     operations through a raster.Sub view that only writes a horizontal
//     band, so a panel taller than its fair share can be split into several
//     row bands that rasterize concurrently into the shared image.RGBA.
//     Each pixel is written by exactly one job, in the same operation order
//     as a serial render, so compositing is free and exact.
//
//   - Vector (svg, pdf): the operations are partitioned. Each panel records
//     into a Fragment of the target canvas, and the fragments are appended
//     in layout order — the byte stream is the serial one, reassembled.
//
// Backends without a parallel strategy (offsetCanvas columns inside
// SideBySide, external Canvas implementations) fall back to the serial loop
// in Render.

// workerCount resolves Options.Workers: 0 means GOMAXPROCS, anything below
// one means serial.
func (o Options) workerCount() int {
	if o.Workers == 0 {
		return runtime.GOMAXPROCS(0)
	}
	if o.Workers < 1 {
		return 1
	}
	return o.Workers
}

// drawPanelsParallel paints all panels using the backend's parallel
// strategy, reporting false when the canvas supports none (or parallelism is
// off) so the caller runs the serial loop instead.
func drawPanelsParallel(c Canvas, s *core.Schedule, l *Layout, st *renderState) bool {
	workers := st.opt.workerCount()
	if workers <= 1 || len(l.Panels) == 0 {
		return false
	}
	switch cc := c.(type) {
	case *raster.Canvas:
		drawPanelsRaster(cc, s, l, st, workers)
	case *svg.Canvas:
		frags := drawPanelFragments(s, l, st, workers,
			func() Canvas { return cc.Fragment() })
		for _, f := range frags {
			cc.Append(f.(*svg.Canvas))
		}
	case *pdf.Canvas:
		frags := drawPanelFragments(s, l, st, workers,
			func() Canvas { return cc.Fragment() })
		for _, f := range frags {
			cc.Append(f.(*pdf.Canvas))
		}
	default:
		return false
	}
	return true
}

// panelBand is the horizontal pixel band a panel's draw operations are
// confined to: header, plot, and time axis. Bands of consecutive panels
// never touch — the layout keeps panelGap (14px) between the axis band of
// one panel and the header of the next, so the floor/ceil expansion of one
// pixel per edge still leaves them disjoint.
func panelBand(p *Panel, width int) image.Rectangle {
	y0 := int(math.Floor(p.Plot.Y - panelHeader))
	y1 := int(math.Ceil(p.Plot.Y + p.Plot.H + axisBand))
	return image.Rect(0, y0, width, y1)
}

// drawPanelsRaster partitions the image into per-panel bands (and, when
// there are more workers than panels, per-row-band strips within a panel)
// and rasterizes them on a bounded worker pool.
func drawPanelsRaster(c *raster.Canvas, s *core.Schedule, l *Layout, st *renderState, workers int) {
	w, _ := c.Size()
	width := int(w)
	bands := make([]image.Rectangle, len(l.Panels))
	totalH := 0
	for i := range l.Panels {
		bands[i] = panelBand(&l.Panels[i], width)
		totalH += bands[i].Dy()
	}
	type job struct {
		panel int
		clip  image.Rectangle
	}
	var jobs []job
	for i, band := range bands {
		strips := 1
		if workers > len(l.Panels) && totalH > 0 {
			// Extra workers split the taller panels into row bands,
			// proportionally to their share of the pixels.
			strips = int(math.Round(float64(workers) * float64(band.Dy()) / float64(totalH)))
			if strips < 1 {
				strips = 1
			}
		}
		for k := 0; k < strips; k++ {
			clip := image.Rect(band.Min.X,
				band.Min.Y+band.Dy()*k/strips,
				band.Max.X,
				band.Min.Y+band.Dy()*(k+1)/strips)
			jobs = append(jobs, job{panel: i, clip: clip})
		}
	}
	ch := make(chan job)
	var wg sync.WaitGroup
	for n := min(workers, len(jobs)); n > 0; n-- {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range ch {
				drawPanel(c.Sub(j.clip), s, &l.Panels[j.panel], st)
			}
		}()
	}
	for _, j := range jobs {
		ch <- j
	}
	close(ch)
	wg.Wait()
}

// drawPanelFragments renders each panel into its own fragment canvas on a
// bounded worker pool and returns the fragments in layout order.
func drawPanelFragments(s *core.Schedule, l *Layout, st *renderState, workers int, fragment func() Canvas) []Canvas {
	frags := make([]Canvas, len(l.Panels))
	ch := make(chan int)
	var wg sync.WaitGroup
	for n := min(workers, len(l.Panels)); n > 0; n-- {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for pi := range ch {
				f := fragment()
				drawPanel(f, s, &l.Panels[pi], st)
				frags[pi] = f
			}
		}()
	}
	for pi := range l.Panels {
		ch <- pi
	}
	close(ch)
	wg.Wait()
	return frags
}
