package render

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/core"
)

// denseSchedule builds a single-cluster schedule dense enough to cross the
// LOD threshold at small canvas sizes: nTasks short tasks over a long
// horizon, so almost every task is narrower than one pixel.
func denseSchedule(rng *rand.Rand, nTasks int) *core.Schedule {
	s := core.NewSingleCluster("dense", 64)
	types := []string{"computation", "transfer", "idle"}
	for i := 0; i < nTasks; i++ {
		start := rng.Float64() * 100_000
		end := start + 1 + rng.Float64()*20
		first := rng.Intn(64)
		n := 1 + rng.Intn(64-first)
		s.AddTask(core.Task{
			ID: taskIDt(i), Type: types[i%len(types)],
			Start: start, End: end,
			Allocations: []core.Allocation{{Cluster: 0, Hosts: []core.HostRange{{Start: first, N: n}}}},
		})
	}
	s.SortTasks()
	return s
}

func taskIDt(i int) string {
	return "t" + string(rune('a'+i%26)) + string(rune('a'+(i/26)%26)) + string(rune('a'+(i/676)%26)) + string(rune('a'+(i/17576)%26))
}

// TestIndexCullEquivalence: the binary-search culling fast path must paint
// exactly what a full scan of the per-panel lists paints, with and without
// a caller-supplied prebuilt index, zoomed and unzoomed.
func TestIndexCullEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 6; trial++ {
		s := randomSchedule(rng, 1+trial%3, 150+rng.Intn(400))
		opt := Options{Labels: true, Workers: 1}
		if trial%2 == 0 {
			opt.Window = &core.Extent{Min: 20, Max: 60}
		}
		wantPNG, wantSVG, wantPDF := renderAll(t, s, 420, 300, opt)

		full := opt
		full.NoCull = true
		gotPNG, gotSVG, gotPDF := renderAll(t, s, 420, 300, full)
		if !bytes.Equal(wantPNG, gotPNG) || !bytes.Equal(wantSVG, gotSVG) || !bytes.Equal(wantPDF, gotPDF) {
			t.Fatalf("trial %d: culled render differs from full scan", trial)
		}

		pre := opt
		pre.Index = BuildIndex(s)
		gotPNG, gotSVG, gotPDF = renderAll(t, s, 420, 300, pre)
		if !bytes.Equal(wantPNG, gotPNG) || !bytes.Equal(wantSVG, gotSVG) || !bytes.Equal(wantPDF, gotPDF) {
			t.Fatalf("trial %d: prebuilt-index render differs", trial)
		}
	}
}

// TestLODDeterminism fuzzes the hard invariant behind the render cache:
// with LOD on (and off), every worker count must produce byte-identical
// png, svg, and pdf output.
func TestLODDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 4; trial++ {
		var s *core.Schedule
		if trial%2 == 0 {
			s = denseSchedule(rng, 4000+rng.Intn(3000))
		} else {
			s = randomSchedule(rng, 2, 300+rng.Intn(300))
		}
		for _, lod := range []bool{true, false} {
			opt := Options{Labels: true, Workers: 1, LOD: lod}
			wantPNG, wantSVG, wantPDF := renderAll(t, s, 400, 280, opt)
			for _, workers := range []int{2, 8} {
				opt.Workers = workers
				png, svgB, pdfB := renderAll(t, s, 400, 280, opt)
				if !bytes.Equal(wantPNG, png) {
					t.Fatalf("trial %d lod=%v: png differs at %d workers", trial, lod, workers)
				}
				if !bytes.Equal(wantSVG, svgB) {
					t.Fatalf("trial %d lod=%v: svg differs at %d workers", trial, lod, workers)
				}
				if !bytes.Equal(wantPDF, pdfB) {
					t.Fatalf("trial %d lod=%v: pdf differs at %d workers", trial, lod, workers)
				}
			}
		}
	}
}

// TestLODAggregation checks that the density path actually engages on a
// dense panel — tasks are folded, reported once per render, and the bands
// change the raster — while a sparse schedule reports zero and renders
// exactly as with LOD off.
func TestLODAggregation(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	dense := denseSchedule(rng, 6000)

	var reported []int
	opt := Options{Workers: 1, LOD: true, LODReport: func(n int) { reported = append(reported, n) }}
	lodPNG, _, _ := renderAll(t, dense, 400, 280, opt)
	if len(reported) != 3 { // one per backend render
		t.Fatalf("LODReport called %d times, want 3", len(reported))
	}
	if reported[0] == 0 {
		t.Fatal("dense schedule aggregated no tasks")
	}
	for _, n := range reported {
		if n != reported[0] {
			t.Fatalf("aggregation count varies across backends: %v", reported)
		}
	}
	offPNG, _, _ := renderAll(t, dense, 400, 280, Options{Workers: 1})
	if bytes.Equal(lodPNG, offPNG) {
		t.Fatal("LOD render identical to non-LOD render on a dense schedule")
	}

	reported = nil
	sparse := randomSchedule(rng, 1, 40)
	spLOD, _, _ := renderAll(t, sparse, 400, 280, opt)
	spOff, _, _ := renderAll(t, sparse, 400, 280, Options{Workers: 1})
	if !bytes.Equal(spLOD, spOff) {
		t.Fatal("below-threshold LOD render differs from plain render")
	}
	for _, n := range reported {
		if n != 0 {
			t.Fatalf("sparse schedule reported %d aggregated tasks", n)
		}
	}
}

// TestSpanListVisible pins the binary-search window semantics: candidates
// are exactly the tasks whose start precedes the window end and whose
// max-finish prefix reaches the window start.
func TestSpanListVisible(t *testing.T) {
	s := core.NewSingleCluster("c", 4)
	// Tasks: [0,1] [2,3] [4,50] [6,7] [8,9] — the long third task keeps
	// later prefixes high.
	spans := [][2]float64{{0, 1}, {2, 3}, {4, 50}, {6, 7}, {8, 9}}
	for i, sp := range spans {
		s.AddTask(core.Task{
			ID: taskIDt(i), Type: "computation", Start: sp[0], End: sp[1],
			Allocations: []core.Allocation{{Cluster: 0, Hosts: []core.HostRange{{Start: 0, N: 1}}}},
		})
	}
	ix := BuildIndex(s)
	sl := ix.cluster(0).list(0)
	cases := []struct {
		wlo, whi float64
		lo, hi   int
	}{
		{0, 100, 0, 5}, // everything
		// Candidates are a superset: t3/t4 start before 20 and the prefix
		// maximum (the long task) reaches 10, so they stay in range and
		// are rejected by per-task clipping, not by the search.
		{10, 20, 2, 5},
		{6.5, 8.5, 2, 5}, // long task + t3 + t4
		{60, 70, 5, 5},   // past every finish
		{-5, -1, 0, 0},   // before every start
	}
	for _, c := range cases {
		lo, hi := sl.visible(c.wlo, c.whi)
		if lo != c.lo || hi != c.hi {
			t.Errorf("visible(%g,%g) = [%d,%d), want [%d,%d)", c.wlo, c.whi, lo, hi, c.lo, c.hi)
		}
	}
}

// TestIndexMatches guards the silent-rebuild contract used by the API
// session cache.
func TestIndexMatches(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	s := randomSchedule(rng, 1, 20)
	ix := BuildIndex(s)
	if !ix.Matches(s) {
		t.Fatal("index does not match its own schedule")
	}
	var nilIx *TaskIndex
	if nilIx.Matches(s) {
		t.Fatal("nil index claims to match")
	}
	s2 := randomSchedule(rng, 1, 21)
	if ix.Matches(s2) {
		t.Fatal("index matches a schedule with a different task count")
	}
}
