package render

import (
	"sort"

	"repro/internal/core"
)

// TaskIndex is the per-cluster task index behind the renderer's fast path.
// For every cluster it keeps the indices of the tasks allocated there,
// sorted by start time, together with a running maximum of the finish
// times. drawPanel then binary-searches the visible time window instead of
// scanning every task of the schedule for every panel: two searches bound
// the candidate range
//
//   - tasks sorted by start: the first index whose start exceeds the window
//     ends the range;
//   - the max-finish prefix is non-decreasing, so the first index whose
//     prefix maximum reaches the window begins it — everything before it
//     finished strictly before the window opens.
//
// The index also interns task types into small integer ids so a render can
// memoize color-map lookups per type instead of per task per panel.
//
// An index is immutable after BuildIndex and safe for concurrent readers.
// It is valid only for the exact schedule it was built from; Render guards
// with Matches and silently rebuilds on a mismatch (for example after
// WithComposites appended composite tasks).
type TaskIndex struct {
	nTasks    int
	types     []string // interned task types, first-seen order
	typeIDs   []int32  // per task: index into types
	byCluster map[int]*clusterIndex
}

// clusterIndex splits one cluster's tasks into the two draw passes: plain
// tasks first, composite overlays on top.
type clusterIndex struct {
	plain spanList
	comp  spanList
}

// spanList is a start-sorted list of task indices with a max-finish prefix.
type spanList struct {
	idx    []int32   // task indices, sorted by (start, index)
	start  []float64 // start[i] = Tasks[idx[i]].Start
	maxEnd []float64 // maxEnd[i] = max of Tasks[idx[j]].End for j <= i
}

// visible returns the half-open candidate range [lo, hi) of tasks that can
// intersect the time window [wlo, whi]. Candidates still need the usual
// per-task clipping (a task inside the range may individually end before
// the window), which TaskRects already performs.
func (sl *spanList) visible(wlo, whi float64) (int, int) {
	hi := sort.Search(len(sl.start), func(i int) bool { return sl.start[i] > whi })
	lo := sort.Search(hi, func(i int) bool { return sl.maxEnd[i] >= wlo })
	return lo, hi
}

func (sl *spanList) add(s *core.Schedule, ti int32) {
	t := &s.Tasks[ti]
	sl.idx = append(sl.idx, ti)
	sl.start = append(sl.start, t.Start)
	sl.maxEnd = append(sl.maxEnd, t.End) // prefix-maximized in finish()
}

func (sl *spanList) finish(s *core.Schedule) {
	sort.SliceStable(sl.idx, func(a, b int) bool {
		sa, sb := s.Tasks[sl.idx[a]].Start, s.Tasks[sl.idx[b]].Start
		if sa != sb {
			return sa < sb
		}
		return sl.idx[a] < sl.idx[b]
	})
	running := 0.0
	for i, ti := range sl.idx {
		t := &s.Tasks[ti]
		sl.start[i] = t.Start
		if i == 0 || t.End > running {
			running = t.End
		}
		sl.maxEnd[i] = running
	}
}

// BuildIndex indexes the schedule for rendering and hit testing. It costs
// one O(n log n) pass; long-lived holders of a schedule (the API session
// store) build it once and pass it through Options.Index so every
// subsequent render of the same schedule skips the pass.
func BuildIndex(s *core.Schedule) *TaskIndex {
	ix := &TaskIndex{
		nTasks:    len(s.Tasks),
		typeIDs:   make([]int32, len(s.Tasks)),
		byCluster: make(map[int]*clusterIndex, len(s.Clusters)),
	}
	typeID := map[string]int32{}
	for i := range s.Tasks {
		t := &s.Tasks[i]
		id, ok := typeID[t.Type]
		if !ok {
			id = int32(len(ix.types))
			typeID[t.Type] = id
			ix.types = append(ix.types, t.Type)
		}
		ix.typeIDs[i] = id
		for _, a := range t.Allocations {
			ci := ix.byCluster[a.Cluster]
			if ci == nil {
				ci = &clusterIndex{}
				ix.byCluster[a.Cluster] = ci
			}
			if t.Type == core.CompositeType {
				ci.comp.add(s, int32(i))
			} else {
				ci.plain.add(s, int32(i))
			}
		}
	}
	for _, ci := range ix.byCluster {
		ci.plain.finish(s)
		ci.comp.finish(s)
	}
	return ix
}

// Matches reports whether the index plausibly belongs to the schedule. The
// check is deliberately cheap (task count only); callers own the stronger
// contract of pairing an index with the schedule it was built from.
func (ix *TaskIndex) Matches(s *core.Schedule) bool {
	return ix != nil && ix.nTasks == len(s.Tasks)
}

// cluster returns the per-cluster lists, or an empty index for clusters
// without tasks.
func (ix *TaskIndex) cluster(id int) *clusterIndex {
	if ci := ix.byCluster[id]; ci != nil {
		return ci
	}
	return &emptyClusterIndex
}

var emptyClusterIndex clusterIndex

// list returns the span list of one draw pass (0 = plain, 1 = composite).
func (ci *clusterIndex) list(pass int) *spanList {
	if pass == 0 {
		return &ci.plain
	}
	return &ci.comp
}
