package render

import (
	"image/color"
	"math"

	"repro/internal/core"
)

// Level-of-detail rasterization. On a bird's-eye view of a million-task
// trace most tasks are narrower than one pixel; drawing each one costs a
// FillRect that lands on the same pixel column as thousands of its
// neighbours. When a panel's visible plain-task count crosses
// lodDensityThreshold tasks per pixel column, those sub-pixel tasks are
// folded into density bands instead: a per-pixel cell grid counts how many
// sub-pixel tasks cover each (column, row) cell and remembers the type of
// the first covering task in draw order, then vertical runs of cells with
// the same (type, density bucket) become one FillRect whose color blends
// the panel background toward the type color — darker means denser.
//
// The whole aggregation is computed serially in newRenderState, before any
// parallel draw phase, from (schedule, viewport, panel geometry) only.
// Parallel raster strips replay the same precomputed band list, so output
// is byte-identical across Options.Workers, and the strong ETag / render
// cache stay valid. Tasks at least one pixel wide, and composite overlays,
// are always drawn individually on top of the bands.

const (
	// lodDensityThreshold is the visible-plain-tasks-per-pixel-column ratio
	// above which a panel switches to density bands.
	lodDensityThreshold = 2.0
	// lodBuckets is the number of density buckets (1, 2, 3, >=4 tasks per
	// cell); each bucket maps to one shade of the task type's ramp.
	lodBuckets = 4
)

// lodBlend[b] is how far bucket b blends from the panel background toward
// the task type's fill color.
var lodBlend = [lodBuckets]float64{0.35, 0.55, 0.75, 1.0}

// lodPanelBG matches the plot background fill in drawPanel.
var lodPanelBG = color.RGBA{250, 250, 250, 255}

// lodRamp precomputes the bucket shades for one task type.
func lodRamp(bg color.RGBA) [lodBuckets]color.RGBA {
	var ramp [lodBuckets]color.RGBA
	for b := 0; b < lodBuckets; b++ {
		f := lodBlend[b]
		ramp[b] = color.RGBA{
			R: uint8(float64(lodPanelBG.R) + (float64(bg.R)-float64(lodPanelBG.R))*f),
			G: uint8(float64(lodPanelBG.G) + (float64(bg.G)-float64(lodPanelBG.G))*f),
			B: uint8(float64(lodPanelBG.B) + (float64(bg.B)-float64(lodPanelBG.B))*f),
			A: 255,
		}
	}
	return ramp
}

// lodBand is one merged density rectangle in screen coordinates.
type lodBand struct {
	x, y, w, h float64
	col        color.RGBA
}

// panelLOD is the precomputed aggregation of one panel.
type panelLOD struct {
	bands      []lodBand
	aggregated int     // plain tasks folded into bands
	pxPerTime  float64 // horizontal scale, for the aggregates test
}

// aggregates reports whether a plain task is folded into the density bands
// (and must therefore be skipped by the individual draw pass). It is a pure
// function of the task and the panel geometry, so every parallel strip
// agrees with the serial precomputation: a task is folded exactly when its
// window-clipped extent is narrower than one pixel.
func (ld *panelLOD) aggregates(p *Panel, t *core.Task) bool {
	lo := math.Max(t.Start, p.Time.Min)
	hi := math.Min(t.End, p.Time.Max)
	if hi < lo {
		return false // no visible extent; nothing is drawn either way
	}
	return (hi-lo)*ld.pxPerTime < 1
}

// computePanelLOD builds the density bands of one panel, or returns nil
// when the panel is below the density threshold (then every task is drawn
// individually, exactly as with LOD off).
func computePanelLOD(s *core.Schedule, p *Panel, st *renderState) *panelLOD {
	gw, gh := int(p.Plot.W), int(p.Plot.H)
	if gw <= 0 || gh <= 0 {
		return nil
	}
	ci := st.idx.cluster(p.Cluster.ID)
	sl := ci.list(0)
	lo, hi := sl.visible(p.Time.Min, p.Time.Max)
	if float64(hi-lo) <= lodDensityThreshold*float64(gw) {
		return nil
	}
	ld := &panelLOD{pxPerTime: p.Plot.W / p.Time.Span()}

	// Cheap pre-pass: if no candidate is actually sub-pixel (a deep zoom
	// can have many candidates but every one wider than a pixel), skip the
	// grid allocation entirely.
	anySubPixel := false
	for k := lo; k < hi; k++ {
		if ld.aggregates(p, &s.Tasks[sl.idx[k]]) {
			anySubPixel = true
			break
		}
	}
	if !anySubPixel {
		return nil
	}

	// Cell grid: count of covering sub-pixel tasks and the type of the
	// first one, per (column, row) pixel cell. Column-major so the band
	// merge below walks each column contiguously. Transient: released once
	// the bands are extracted.
	count := make([]uint16, gw*gh)
	typeAt := make([]int32, gw*gh)
	for i := range typeAt {
		typeAt[i] = -1
	}
	for k := lo; k < hi; k++ {
		ti := sl.idx[k]
		t := &s.Tasks[ti]
		if !ld.aggregates(p, t) {
			continue
		}
		tlo := math.Max(t.Start, p.Time.Min)
		col := int((tlo - p.Time.Min) * ld.pxPerTime)
		if col < 0 {
			col = 0
		} else if col >= gw {
			col = gw - 1
		}
		a, ok := t.AllocationOn(p.Cluster.ID)
		if !ok {
			continue
		}
		// The allocation's host ranges are walked as stored — no
		// HostList materialization or re-normalization; at a million
		// tasks that per-task allocation dominates the whole pass.
		covered := false
		for _, r := range a.Hosts {
			if r.N <= 0 || r.Start >= p.Rows {
				continue
			}
			y0 := p.Transform.YToScreen(float64(r.Start)) - p.Plot.Y
			y1 := p.Transform.YToScreen(math.Min(float64(r.End()), float64(p.Rows))) - p.Plot.Y
			py0 := int(y0)
			if py0 < 0 {
				py0 = 0
			} else if py0 > gh-1 {
				py0 = gh - 1
			}
			py1 := int(math.Ceil(y1))
			if py1 < py0+1 {
				py1 = py0 + 1
			} else if py1 > gh {
				py1 = gh
			}
			base := col * gh
			for py := py0; py < py1; py++ {
				cell := base + py
				if count[cell] < math.MaxUint16 {
					count[cell]++
				}
				if typeAt[cell] < 0 {
					typeAt[cell] = st.idx.typeIDs[ti]
				}
				covered = true
			}
		}
		if covered {
			ld.aggregated++
		}
	}

	// Merge vertical runs of equal (type, bucket) cells into bands.
	for col := 0; col < gw; col++ {
		base := col * gh
		py := 0
		for py < gh {
			c := count[base+py]
			if c == 0 {
				py++
				continue
			}
			typ, b := typeAt[base+py], lodBucket(c)
			run := py + 1
			for run < gh && count[base+run] > 0 &&
				typeAt[base+run] == typ && lodBucket(count[base+run]) == b {
				run++
			}
			ld.bands = append(ld.bands, lodBand{
				x:   p.Plot.X + float64(col),
				y:   p.Plot.Y + float64(py),
				w:   1,
				h:   float64(run - py),
				col: st.lodShades[typ][b],
			})
			py = run
		}
	}
	if ld.aggregated == 0 {
		return nil
	}
	return ld
}

// lodBucket maps a cell count to its density bucket.
func lodBucket(c uint16) int {
	if int(c) >= lodBuckets {
		return lodBuckets - 1
	}
	return int(c) - 1
}
