package render

import (
	"image/color"
	"strings"
	"testing"

	"repro/internal/colormap"
	"repro/internal/core"
	"repro/internal/raster"
)

func demoSchedule() *core.Schedule {
	s := core.New(
		core.Cluster{ID: 0, Name: "alpha", Hosts: 8},
		core.Cluster{ID: 1, Name: "beta", Hosts: 4},
	)
	s.Add("1", "computation", 0, 10, 0, 8)
	s.AddTask(core.Task{ID: "2", Type: "transfer", Start: 10, End: 12,
		Allocations: []core.Allocation{
			{Cluster: 0, Hosts: []core.HostRange{{Start: 0, N: 2}}},
			{Cluster: 1, Hosts: []core.HostRange{{Start: 0, N: 2}}},
		}})
	s.Add("3", "computation", 5, 11, 2, 3)
	return s
}

func TestComputeLayoutBasics(t *testing.T) {
	s := demoSchedule()
	l := ComputeLayout(s, 800, 600, Options{Mode: core.AlignedView})
	if len(l.Panels) != 2 {
		t.Fatalf("panels = %d", len(l.Panels))
	}
	p0, p1 := l.Panels[0], l.Panels[1]
	if p0.Cluster.ID != 0 || p1.Cluster.ID != 1 {
		t.Error("panel order wrong")
	}
	// Aligned: both panels share the global extent.
	if p0.Time != p1.Time || p0.Time != (core.Extent{Min: 0, Max: 12}) {
		t.Errorf("aligned extents = %v / %v", p0.Time, p1.Time)
	}
	// Host-proportional heights: cluster 0 (8 hosts) gets 2x cluster 1 (4).
	ratio := p0.Plot.H / p1.Plot.H
	if ratio < 1.9 || ratio > 2.1 {
		t.Errorf("height ratio = %g, want ~2", ratio)
	}
	// Panels do not overlap.
	if p0.Plot.Y+p0.Plot.H > p1.Plot.Y {
		t.Error("panels overlap vertically")
	}
}

func TestComputeLayoutScaled(t *testing.T) {
	s := demoSchedule()
	l := ComputeLayout(s, 800, 600, Options{Mode: core.ScaledView})
	if got := l.Panels[0].Time; got != (core.Extent{Min: 0, Max: 12}) {
		t.Errorf("cluster 0 scaled extent = %v", got)
	}
	if got := l.Panels[1].Time; got != (core.Extent{Min: 10, Max: 12}) {
		t.Errorf("cluster 1 scaled extent = %v", got)
	}
}

func TestComputeLayoutSubsetAndWindow(t *testing.T) {
	s := demoSchedule()
	l := ComputeLayout(s, 800, 600, Options{Clusters: []int{1}})
	if len(l.Panels) != 1 || l.Panels[0].Cluster.ID != 1 {
		t.Fatalf("subset panels = %+v", l.Panels)
	}
	win := core.Extent{Min: 2, Max: 4}
	l2 := ComputeLayout(s, 800, 600, Options{Window: &win})
	if l2.Panels[0].Time != win {
		t.Errorf("window extent = %v", l2.Panels[0].Time)
	}
	// Unknown cluster ids are skipped.
	l3 := ComputeLayout(s, 800, 600, Options{Clusters: []int{9}})
	if len(l3.Panels) != 0 {
		t.Error("unknown cluster produced a panel")
	}
}

func TestTaskRects(t *testing.T) {
	s := core.NewSingleCluster("c", 8)
	s.AddTask(core.Task{ID: "scat", Type: "computation", Start: 2, End: 6,
		Allocations: []core.Allocation{{Cluster: 0, Hosts: []core.HostRange{{Start: 0, N: 2}, {Start: 4, N: 2}}}}})
	l := ComputeLayout(s, 800, 400, Options{})
	p := &l.Panels[0]
	rects := p.TaskRects(&s.Tasks[0])
	if len(rects) != 2 {
		t.Fatalf("scattered allocation produced %d rects, want 2", len(rects))
	}
	// Both rects share x geometry but differ in y.
	if rects[0].X != rects[1].X || rects[0].W != rects[1].W {
		t.Error("rect x geometry differs between host runs")
	}
	if rects[0].Y >= rects[1].Y {
		t.Error("rects not stacked in host order")
	}
	// A task outside the panel's time window yields nothing.
	win := core.Extent{Min: 10, Max: 20}
	l2 := ComputeLayout(s, 800, 400, Options{Window: &win})
	if got := l2.Panels[0].TaskRects(&s.Tasks[0]); got != nil {
		t.Errorf("out-of-window rects = %v", got)
	}
	// A task on another cluster yields nothing.
	other := core.Task{ID: "x", Allocations: []core.Allocation{{Cluster: 5, Hosts: []core.HostRange{{Start: 0, N: 1}}}}}
	if got := p.TaskRects(&other); got != nil {
		t.Errorf("foreign-cluster rects = %v", got)
	}
}

func TestTaskRectsClipToWindow(t *testing.T) {
	s := core.NewSingleCluster("c", 2)
	s.Add("long", "computation", 0, 100, 0, 2)
	win := core.Extent{Min: 40, Max: 60}
	l := ComputeLayout(s, 800, 300, Options{Window: &win})
	p := &l.Panels[0]
	rects := p.TaskRects(&s.Tasks[0])
	if len(rects) != 1 {
		t.Fatal("want one rect")
	}
	r := rects[0]
	if r.X < p.Plot.X-0.5 || r.X+r.W > p.Plot.X+p.Plot.W+0.5 {
		t.Errorf("rect %v escapes plot %v", r, p.Plot)
	}
}

func TestHitTest(t *testing.T) {
	s := demoSchedule()
	l := ComputeLayout(s, 800, 600, Options{Mode: core.AlignedView})
	p := &l.Panels[0]
	// Middle of task "1": t=5 host=4 — but host rows 2-4 also hold task 3
	// from t=5. Probe t=2 instead, clearly inside only task 1.
	x := p.Transform.XToScreen(2)
	y := p.Transform.YToScreen(4.5)
	idx, ok := l.HitTest(s, x, y)
	if !ok || s.Tasks[idx].ID != "1" {
		t.Fatalf("HitTest = %d,%v", idx, ok)
	}
	// A point outside every panel hits nothing.
	if _, ok := l.HitTest(s, 1, 1); ok {
		t.Error("background hit a task")
	}
	// Composites win over members.
	sc := s.WithComposites()
	lc := ComputeLayout(sc, 800, 600, Options{Mode: core.AlignedView})
	px := lc.Panels[0].Transform.XToScreen(10.5) // tasks 2+3 overlap hosts 2-3? no: 0-1 vs 2-4
	_ = px
	if comp := sc.CompositeTasks(); len(comp) != 0 {
		t.Log("composites exist:", len(comp))
	}
}

func TestRenderPNGSmoke(t *testing.T) {
	s := demoSchedule()
	c := raster.New(640, 480)
	l := Render(c, s, Options{Mode: core.AlignedView, Labels: true, Title: "demo", ShowMeta: true})
	if len(l.Panels) != 2 {
		t.Fatal("render did not lay out panels")
	}
	// The computation color (blue) must appear inside the first panel.
	blue := colormap.Default().Lookup("computation").BG
	found := 0
	p := l.Panels[0].Plot
	for y := int(p.Y); y < int(p.Y+p.H); y += 3 {
		for x := int(p.X); x < int(p.X+p.W); x += 3 {
			if c.At(x, y) == blue {
				found++
			}
		}
	}
	if found < 50 {
		t.Fatalf("blue computation pixels = %d, want many", found)
	}
}

func TestRenderCompositeColor(t *testing.T) {
	// Figure 3 scenario: overlapping computation+transfer drawn orange.
	s := core.NewSingleCluster("c", 4)
	s.Add("comp", "computation", 0, 10, 0, 4)
	s.Add("xfer", "transfer", 4, 6, 0, 2)
	c := raster.New(400, 300)
	l := Render(c, s, Options{Composites: true})
	orange := colormap.Default().CompositeDefault.BG
	_ = orange
	want := colormap.Default().LookupComposite([]string{"computation", "transfer"}).BG
	p := l.Panels[0]
	x := p.Transform.XToScreen(5)
	y := p.Transform.YToScreen(0.5)
	if got := c.At(int(x), int(y)); got != want {
		t.Fatalf("overlap pixel = %v, want composite color %v", got, want)
	}
	// Outside the overlap the plain computation blue shows.
	x2 := p.Transform.XToScreen(8)
	blue := colormap.Default().Lookup("computation").BG
	if got := c.At(int(x2), int(y)); got != blue {
		t.Fatalf("non-overlap pixel = %v, want %v", got, blue)
	}
}

func TestRenderGrayscaleHasNoColor(t *testing.T) {
	s := demoSchedule()
	c := raster.New(300, 200)
	Render(c, s, Options{Map: colormap.Default().Grayscale()})
	w, h := c.Size()
	for y := 0; y < int(h); y += 2 {
		for x := 0; x < int(w); x += 2 {
			px := c.At(x, y)
			if px.R != px.G || px.G != px.B {
				t.Fatalf("colored pixel %v at (%d,%d) in grayscale render", px, x, y)
			}
		}
	}
}

func TestRenderEmptySchedule(t *testing.T) {
	s := core.NewSingleCluster("empty", 4)
	c := raster.New(200, 150)
	l := Render(c, s, Options{})
	if len(l.Panels) != 1 {
		t.Fatal("empty schedule should still render its cluster panel")
	}
}

func TestNiceTicks(t *testing.T) {
	ticks := niceTicks(0, 100, 6)
	if len(ticks) < 3 || ticks[0] != 0 {
		t.Fatalf("ticks = %v", ticks)
	}
	for i := 1; i < len(ticks); i++ {
		if ticks[i] <= ticks[i-1] {
			t.Fatal("ticks not increasing")
		}
		if ticks[i] > 100+1e-9 {
			t.Fatal("tick beyond range")
		}
	}
	if got := niceTicks(5, 5, 4); len(got) != 1 || got[0] != 5 {
		t.Errorf("degenerate ticks = %v", got)
	}
	// Fractional ranges still produce round steps.
	fr := niceTicks(0, 0.9, 4)
	if len(fr) < 2 {
		t.Errorf("fractional ticks = %v", fr)
	}
}

func TestFormatTick(t *testing.T) {
	if formatTick(140) != "140" {
		t.Errorf("formatTick(140) = %q", formatTick(140))
	}
	if got := formatTick(0.125); !strings.HasPrefix(got, "0.125") {
		t.Errorf("formatTick(0.125) = %q", got)
	}
}

func TestElide(t *testing.T) {
	c := raster.New(10, 10)
	long := "a very long schedule title that cannot possibly fit"
	got := elide(c, long, 10, 60)
	if !strings.HasSuffix(got, "..") {
		t.Fatalf("elide = %q", got)
	}
	if c.TextWidth(got, 10) > 60+c.TextWidth("..", 10) {
		t.Fatalf("elided text still too wide: %q", got)
	}
	if got := elide(c, "ok", 10, 600); got != "ok" {
		t.Errorf("short text elided: %q", got)
	}
}

func TestToFileAllFormats(t *testing.T) {
	dir := t.TempDir()
	s := demoSchedule()
	for _, ext := range []string{".png", ".jpg", ".pdf", ".svg"} {
		path := dir + "/out" + ext
		if err := ToFile(path, s, 400, 300, Options{Labels: true}); err != nil {
			t.Errorf("ToFile(%s): %v", ext, err)
		}
	}
	if err := ToFile(dir+"/out.bmp", s, 100, 100, Options{}); err == nil {
		t.Error("unsupported format must error")
	}
	if err := ToFile(dir+"/bad.png", &core.Schedule{}, 100, 100, Options{}); err == nil {
		t.Error("invalid schedule must error")
	}
	if len(Formats()) != 5 {
		t.Error("Formats() wrong")
	}
}

func TestTaskColorsFallbacks(t *testing.T) {
	s := core.NewSingleCluster("c", 1)
	s.Add("a", "computation", 0, 1, 0, 1)
	m := colormap.Default()
	// Composite with unresolvable members falls back to CompositeDefault.
	orphan := core.Task{ID: "x+y", Type: core.CompositeType,
		Properties: []core.Property{{Name: "members", Value: "x,y"}}}
	if got := taskColors(s, &orphan, m); got != m.CompositeDefault {
		t.Errorf("orphan composite colors = %+v", got)
	}
	plain := core.Task{ID: "p", Type: "computation"}
	if got := taskColors(s, &plain, m); got != m.Lookup("computation") {
		t.Error("plain task colors wrong")
	}
}

var _ Canvas = (*raster.Canvas)(nil)

func TestCanvasInterfaceCompliance(t *testing.T) {
	// Compile-time checks (see the var declarations); runtime sanity:
	var c Canvas = raster.New(10, 10)
	if w, _ := c.Size(); w != 10 {
		t.Fatal("interface dispatch broken")
	}
	_ = color.RGBA{}
}
