package render

import (
	"sort"

	"repro/internal/colormap"
	"repro/internal/core"
)

// legendBand is the height reserved for the legend strip.
const legendBand = 18.0

// drawLegend paints one swatch + label per task type present in the
// schedule along the bottom edge of the canvas. Composite tasks get a
// single "composite" entry using the map's composite default color.
func drawLegend(c Canvas, s *core.Schedule, cmap *colormap.Map, width, y float64) {
	types := s.TaskTypes()
	sort.Strings(types)
	x := marginLeft
	const swatch = 10.0
	for _, typ := range types {
		var col colormap.Colors
		if typ == core.CompositeType {
			col = cmap.CompositeDefault
		} else {
			col = cmap.Lookup(typ)
		}
		w := swatch + 4 + c.TextWidth(typ, fontAxes) + 14
		if x+w > width-marginRight {
			break // no wrapping: elide overflowing entries
		}
		c.FillRect(x, y+3, swatch, swatch, col.BG)
		c.StrokeRect(x, y+3, swatch, swatch, colBorder, 1)
		c.Text(x+swatch+4, y+3+(swatch-c.TextHeight(fontAxes))/2, typ, fontAxes, colAxis)
		x += w
	}
}

// SideBySide renders several schedules next to each other on one canvas —
// the comparison view of the paper's Figure 4 ("viewing the scheduling
// output of CPA and MCPA side by side"). Each schedule gets an equal-width
// column rendered with its own options; a shared title goes on top.
//
// The function returns the per-column layouts in order.
func SideBySide(c Canvas, title string, scheds []*core.Schedule, opts []Options) []*Layout {
	w, h := c.Size()
	if len(scheds) == 0 {
		return nil
	}
	top := 0.0
	if title != "" {
		c.Text(marginLeft, marginTop, elide(c, title, fontTitle, w-marginLeft-marginRight), fontTitle, colAxis)
		top = marginTop + titleBand
	}
	colW := w / float64(len(scheds))
	var layouts []*Layout
	for i, s := range scheds {
		opt := Options{}
		if i < len(opts) {
			opt = opts[i]
		}
		sub := &offsetCanvas{Canvas: c, dx: float64(i) * colW, dy: top, w: colW, h: h - top}
		layouts = append(layouts, Render(sub, s, opt))
	}
	return layouts
}

// offsetCanvas exposes a translated sub-region of a canvas as a canvas of
// its own, so the column renderer needs no knowledge of the composition.
type offsetCanvas struct {
	Canvas
	dx, dy, w, h float64
}

func (o *offsetCanvas) Size() (w, h float64) { return o.w, o.h }

func (o *offsetCanvas) FillRect(x, y, w, h float64, col colorRGBA) {
	o.Canvas.FillRect(x+o.dx, y+o.dy, w, h, col)
}

func (o *offsetCanvas) StrokeRect(x, y, w, h float64, col colorRGBA, lw float64) {
	o.Canvas.StrokeRect(x+o.dx, y+o.dy, w, h, col, lw)
}

func (o *offsetCanvas) Line(x1, y1, x2, y2 float64, col colorRGBA, lw float64) {
	o.Canvas.Line(x1+o.dx, y1+o.dy, x2+o.dx, y2+o.dy, col, lw)
}

func (o *offsetCanvas) Text(x, y float64, s string, size float64, col colorRGBA) {
	o.Canvas.Text(x+o.dx, y+o.dy, s, size, col)
}

func (o *offsetCanvas) VerticalText(x, y float64, s string, size float64, col colorRGBA) {
	o.Canvas.VerticalText(x+o.dx, y+o.dy, s, size, col)
}
