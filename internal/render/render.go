// Package render draws Jedule schedules as Gantt charts. One dimension is
// the platform's resources (host rows grouped into cluster panels, stacked
// vertically), the other is time (horizontal). Each task is one rectangle
// per contiguous host run — so a scattered multiprocessor allocation shows
// as several rectangles, exactly as the paper requires.
//
// The engine is backend-independent: it draws through the Canvas interface,
// implemented by raster (PNG/JPEG), pdf, and svg. Layout is computed
// separately from painting so the interactive viewport can reuse it for hit
// testing.
package render

import (
	"fmt"
	"image/color"
	"math"
	"strings"
	"time"

	"repro/internal/colormap"
	"repro/internal/core"
	"repro/internal/geom"
)

// Canvas is the drawing surface contract shared by all output backends.
type Canvas interface {
	Size() (w, h float64)
	FillRect(x, y, w, h float64, c color.RGBA)
	StrokeRect(x, y, w, h float64, c color.RGBA, lw float64)
	Line(x1, y1, x2, y2 float64, c color.RGBA, lw float64)
	Text(x, y float64, s string, size float64, c color.RGBA)
	VerticalText(x, y float64, s string, size float64, c color.RGBA)
	TextWidth(s string, size float64) float64
	TextHeight(size float64) float64
}

// Options selects what and how to draw.
type Options struct {
	// Mode aligns cluster panels on the global extent (AlignedView) or
	// scales each to its local extent (ScaledView). Default: AlignedView.
	Mode core.ViewMode
	// Map provides the task colors; nil uses colormap.Default().
	Map *colormap.Map
	// Clusters restricts rendering to the given cluster IDs (the
	// interactive mode's cluster selection); nil renders all clusters.
	Clusters []int
	// Window restricts the visible time range (zoom); nil shows the
	// extent chosen by Mode.
	Window *core.Extent
	// Labels draws task IDs inside rectangles when they fit.
	Labels bool
	// Composites derives and overlays composite tasks before drawing.
	Composites bool
	// Title is drawn at the top; empty means no title band.
	Title string
	// ShowMeta appends schedule meta info key/value pairs to the title.
	ShowMeta bool
	// Legend draws a color legend (one swatch per task type) along the
	// bottom edge.
	Legend bool
	// AxisLabels annotates the axes ("time" below, "hosts" on the left).
	AxisLabels bool
	// Workers bounds the goroutines that rasterize cluster panels in
	// parallel: 0 uses GOMAXPROCS, 1 forces serial rendering. Output is
	// byte-identical for every worker count — raster backends partition
	// the pixels into non-overlapping bands, vector backends record each
	// panel into its own fragment and composite in layout order.
	Workers int
	// Index supplies a prebuilt task index (BuildIndex) so repeated
	// renders of the same schedule skip the O(n log n) indexing pass.
	// The index must have been built from exactly this schedule; an index
	// that does not match (for example one built before Composites
	// derived extra tasks) is ignored and rebuilt.
	Index *TaskIndex
	// LOD enables level-of-detail rasterization: when a panel's visible
	// task density crosses lodDensityThreshold tasks per pixel column,
	// tasks narrower than one pixel are aggregated into exact density
	// bands instead of being drawn individually. The aggregation is a
	// pure function of (schedule, viewport, canvas size) — never of
	// worker count or map order — so output stays byte-identical across
	// Options.Workers and cacheable under strong ETags.
	LOD bool
	// LODReport, when non-nil, is called once per Render with the number
	// of tasks that were folded into density bands (0 when LOD is off or
	// no panel crossed the density threshold).
	LODReport func(tasksAggregated int)
	// StageReport, when non-nil, receives the wall time of each render
	// stage ("index", "layout", "lod", "raster"; export.Encode adds
	// "encode"). Timing is observational only — it never changes what is
	// drawn, so output stays byte-identical with reporting on or off.
	StageReport func(stage string, d time.Duration)
	// NoCull disables the binary-search window culling and scans every
	// indexed task of each panel — the pre-index code path, kept as an
	// ablation switch for benchmarks and equivalence tests.
	NoCull bool
}

// colorRGBA aliases the stdlib color type for the canvas adapters.
type colorRGBA = color.RGBA

// Layout is the computed arrangement of cluster panels on a canvas.
type Layout struct {
	Panels []Panel
	Title  string

	// index accelerates HitTest and the draw passes; computed (or adopted
	// from Options.Index) by ComputeLayout.
	index *TaskIndex
}

// Panel is the drawing region of one cluster.
type Panel struct {
	Cluster   core.Cluster
	Plot      geom.Rect   // task plotting area
	Time      core.Extent // visible time range
	Rows      int         // host rows
	Transform geom.Transform

	// lod holds the precomputed density bands of this panel, or nil when
	// level-of-detail aggregation is off or below threshold. Computed
	// serially by newRenderState before any parallel draw phase.
	lod *panelLOD
}

const (
	marginLeft    = 46.0 // host labels + resource axis
	marginRight   = 10.0
	marginTop     = 8.0
	titleBand     = 18.0
	axisBand      = 26.0 // per-panel time axis (scaled) or shared (aligned)
	panelGap      = 14.0
	panelHeader   = 14.0 // cluster name band
	fontAxes      = 10.0
	axisLabelBand = 14.0
	fontLabel     = 10.0
	fontTitle     = 12.0
)

var (
	colAxis   = color.RGBA{40, 40, 40, 255}
	colGrid   = color.RGBA{225, 225, 225, 255}
	colBorder = color.RGBA{0, 0, 0, 255}
)

// ComputeLayout arranges the selected clusters on a canvas of the given
// size. It also attaches the per-panel task index (adopting Options.Index
// when it matches the schedule, building one otherwise) so both rendering
// and hit testing binary-search visible tasks instead of scanning s.Tasks.
func ComputeLayout(s *core.Schedule, width, height float64, opt Options) *Layout {
	clusters := selectClusters(s, opt.Clusters)
	l := &Layout{Title: opt.Title}
	l.index = opt.Index
	if !l.index.Matches(s) {
		l.index = BuildIndex(s)
	}
	if opt.ShowMeta && len(s.Meta) > 0 {
		var parts []string
		for _, m := range s.Meta {
			parts = append(parts, m.Name+"="+m.Value)
		}
		if l.Title != "" {
			l.Title += "  "
		}
		l.Title += "[" + strings.Join(parts, " ") + "]"
	}
	if len(clusters) == 0 {
		return l
	}
	top := marginTop
	if l.Title != "" {
		top += titleBand
	}
	totalHosts := 0
	for _, c := range clusters {
		totalHosts += c.Hosts
	}
	// Vertical budget: panels share the space proportionally to host count.
	nPanels := float64(len(clusters))
	fixed := top + nPanels*(panelHeader+axisBand) + (nPanels-1)*panelGap + 4
	if opt.Legend {
		fixed += legendBand
	}
	if opt.AxisLabels {
		fixed += axisLabelBand
	}
	plotBudget := height - fixed
	if plotBudget < 10*nPanels {
		plotBudget = 10 * nPanels
	}
	y := top
	for _, c := range clusters {
		var ext core.Extent
		if opt.Window != nil {
			// An explicit window replaces the data extent entirely — skip
			// the O(tasks) ExtentFor scan, which at a million tasks costs
			// more than the whole culled draw.
			ext = *opt.Window
		} else {
			ext = s.ExtentFor(c.ID, opt.Mode)
		}
		if ext.Span() <= 0 {
			ext = core.Extent{Min: ext.Min, Max: ext.Min + 1}
		}
		plotH := plotBudget * float64(c.Hosts) / float64(totalHosts)
		plot := geom.Rect{X: marginLeft, Y: y + panelHeader, W: width - marginLeft - marginRight, H: plotH}
		p := Panel{
			Cluster: c,
			Plot:    plot,
			Time:    ext,
			Rows:    c.Hosts,
			Transform: geom.Transform{
				TimeMin: ext.Min, TimeMax: ext.Max,
				RowMin: 0, RowMax: float64(c.Hosts),
				Screen: plot,
			},
		}
		l.Panels = append(l.Panels, p)
		y += panelHeader + plotH + axisBand + panelGap
	}
	return l
}

func selectClusters(s *core.Schedule, ids []int) []core.Cluster {
	if ids == nil {
		return s.Clusters
	}
	var out []core.Cluster
	for _, id := range ids {
		if c, ok := s.Cluster(id); ok {
			out = append(out, c)
		}
	}
	return out
}

// TaskRects returns the screen rectangles of a task inside the panel: one
// rectangle per contiguous host range, clipped to the visible time window.
func (p *Panel) TaskRects(t *core.Task) []geom.Rect {
	a, ok := t.AllocationOn(p.Cluster.ID)
	if !ok {
		return nil
	}
	start, end := t.Start, t.End
	if end < p.Time.Min || start > p.Time.Max {
		return nil
	}
	start = math.Max(start, p.Time.Min)
	end = math.Min(end, p.Time.Max)
	x0 := p.Transform.XToScreen(start)
	x1 := p.Transform.XToScreen(end)
	if len(a.Hosts) == 1 && a.Hosts[0].N > 0 {
		// Single contiguous range — the overwhelmingly common case: skip
		// the HostList expansion and re-normalization, which otherwise
		// costs three allocations per visible task.
		r := a.Hosts[0]
		if r.Start >= p.Rows {
			return nil
		}
		y0 := p.Transform.YToScreen(float64(r.Start))
		y1 := p.Transform.YToScreen(math.Min(float64(r.End()), float64(p.Rows)))
		return []geom.Rect{{X: x0, Y: y0, W: x1 - x0, H: y1 - y0}}
	}
	var out []geom.Rect
	for _, r := range core.RangesFromHosts(a.HostList()) {
		if r.Start >= p.Rows {
			continue
		}
		y0 := p.Transform.YToScreen(float64(r.Start))
		y1 := p.Transform.YToScreen(math.Min(float64(r.End()), float64(p.Rows)))
		out = append(out, geom.Rect{X: x0, Y: y0, W: x1 - x0, H: y1 - y0})
	}
	return out
}

// HitTest returns the index (into s.Tasks) of the topmost task whose
// rectangle contains the screen point, preferring composite tasks (drawn on
// top), and ok=false when the point hits no task. Through the layout's task
// index only tasks of the panel's cluster are probed; the screen point pins
// a single time coordinate, so the visible-range search reduces the
// candidates to the tasks covering that instant.
func (l *Layout) HitTest(s *core.Schedule, x, y float64) (int, bool) {
	firstPlain, lastComp := -1, -1
	for pi := range l.Panels {
		p := &l.Panels[pi]
		if !p.Plot.Contains(x, y) {
			continue
		}
		ci := l.index.cluster(p.Cluster.ID)
		for pass := 0; pass < 2; pass++ {
			sl := ci.list(pass)
			lo, hi := sl.visible(p.Time.Min, p.Time.Max)
			for k := lo; k < hi; k++ {
				i := int(sl.idx[k])
				for _, r := range p.TaskRects(&s.Tasks[i]) {
					if !r.Contains(x, y) {
						continue
					}
					if pass == 1 {
						if i > lastComp {
							lastComp = i
						}
					} else if firstPlain < 0 || i < firstPlain {
						firstPlain = i
					}
				}
			}
		}
	}
	if lastComp >= 0 {
		return lastComp, true
	}
	return firstPlain, firstPlain >= 0
}

// Render paints the schedule onto the canvas.
func Render(c Canvas, s *core.Schedule, opt Options) *Layout {
	stage := func(name string, start time.Time) {
		if opt.StageReport != nil {
			opt.StageReport(name, time.Since(start))
		}
	}
	if opt.Composites {
		s = s.WithComposites()
	}
	cmap := opt.Map
	if cmap == nil {
		cmap = colormap.Default()
	}
	w, h := c.Size()
	if opt.StageReport != nil {
		// Pre-resolve the index so its cost is attributed to "index"
		// rather than folded into "layout". ComputeLayout adopts it
		// unchanged, so the drawn output is identical either way.
		t0 := time.Now()
		if !opt.Index.Matches(s) {
			opt.Index = BuildIndex(s)
		}
		stage("index", t0)
	}
	t0 := time.Now()
	l := ComputeLayout(s, w, h, opt)
	stage("layout", t0)
	t0 = time.Now()
	st := newRenderState(s, l, cmap, opt)
	stage("lod", t0)
	t0 = time.Now()
	if l.Title != "" {
		c.Text(marginLeft, marginTop, elide(c, l.Title, fontTitle, w-marginLeft-marginRight), fontTitle, colAxis)
	}
	if !drawPanelsParallel(c, s, l, st) {
		for pi := range l.Panels {
			drawPanel(c, s, &l.Panels[pi], st)
		}
	}
	bottom := h
	if opt.Legend {
		bottom -= legendBand
		drawLegend(c, s, cmap, w, bottom)
	}
	if opt.AxisLabels && len(l.Panels) > 0 {
		bottom -= axisLabelBand
		last := &l.Panels[len(l.Panels)-1]
		lab := "time"
		c.Text(last.Plot.X+(last.Plot.W-c.TextWidth(lab, fontAxes))/2, bottom+2, lab, fontAxes, colAxis)
		first := &l.Panels[0]
		c.VerticalText(2, first.Plot.Y+first.Plot.H/2-c.TextWidth("hosts", fontAxes)/2, "hosts", fontAxes, colAxis)
	}
	stage("raster", t0)
	if opt.LODReport != nil {
		opt.LODReport(st.lodAggregated)
	}
	return l
}

// renderState carries the per-render memos shared by every panel and draw
// worker: the task index, the color-map lookups resolved once per task type
// (and once per composite task), and the precomputed LOD bands. It is
// immutable after newRenderState, so parallel draw workers read it without
// synchronization.
type renderState struct {
	opt           Options
	cmap          *colormap.Map
	idx           *TaskIndex
	typeColors    []colormap.Colors                // by TaskIndex type id
	compColors    map[int32]colormap.Colors        // by task index, composite tasks only
	lodShades     map[int32][lodBuckets]color.RGBA // by type id, density-bucket ramp
	lodAggregated int
}

func newRenderState(s *core.Schedule, l *Layout, cmap *colormap.Map, opt Options) *renderState {
	st := &renderState{opt: opt, cmap: cmap, idx: l.index}
	st.typeColors = make([]colormap.Colors, len(st.idx.types))
	for id, typ := range st.idx.types {
		if typ == core.CompositeType {
			st.typeColors[id] = cmap.CompositeDefault
			continue
		}
		st.typeColors[id] = cmap.Lookup(typ)
	}
	// Composite colors depend on the member types; resolve them once per
	// composite task through an id->task map instead of the O(n) per-member
	// Schedule.Task scan. The index's interned type table says whether any
	// composites exist at all, so a composite-free million-task schedule
	// never pays a per-render task scan here.
	hasComposites := false
	for _, typ := range st.idx.types {
		if typ == core.CompositeType {
			hasComposites = true
			break
		}
	}
	if hasComposites {
		st.compColors = map[int32]colormap.Colors{}
		byID := make(map[string]int32, len(s.Tasks))
		for j := range s.Tasks {
			byID[s.Tasks[j].ID] = int32(j)
		}
		for j := range s.Tasks {
			if s.Tasks[j].Type == core.CompositeType {
				st.compColors[int32(j)] = compositeColors(s, &s.Tasks[j], cmap, byID)
			}
		}
	}
	if opt.LOD {
		st.lodShades = make(map[int32][lodBuckets]color.RGBA, len(st.typeColors))
		for id := range st.typeColors {
			st.lodShades[int32(id)] = lodRamp(st.typeColors[id].BG)
		}
		for pi := range l.Panels {
			p := &l.Panels[pi]
			p.lod = computePanelLOD(s, p, st)
			if p.lod != nil {
				st.lodAggregated += p.lod.aggregated
			}
		}
	}
	return st
}

// colorsFor returns the memoized fill/label colors of task ti.
func (st *renderState) colorsFor(ti int32) colormap.Colors {
	if c, ok := st.compColors[ti]; ok {
		return c
	}
	return st.typeColors[st.idx.typeIDs[ti]]
}

// visible resolves one draw pass of a panel, honoring the NoCull ablation
// switch by widening the range to the full list.
func (st *renderState) visible(sl *spanList, p *Panel) (int, int) {
	if st.opt.NoCull {
		return 0, len(sl.idx)
	}
	return sl.visible(p.Time.Min, p.Time.Max)
}

func drawPanel(c Canvas, s *core.Schedule, p *Panel, st *renderState) {
	// Panel header: cluster name and id.
	header := fmt.Sprintf("%s (%d hosts)", p.Cluster.DisplayName(), p.Cluster.Hosts)
	c.Text(p.Plot.X, p.Plot.Y-panelHeader+2, elide(c, header, fontAxes, p.Plot.W), fontAxes, colAxis)

	// Plot background and horizontal host grid.
	c.FillRect(p.Plot.X, p.Plot.Y, p.Plot.W, p.Plot.H, color.RGBA{250, 250, 250, 255})
	rowH := p.Plot.H / float64(p.Rows)
	gridStep := 1
	if rowH < 3 {
		gridStep = int(math.Ceil(3 / rowH))
	}
	for r := gridStep; r < p.Rows; r += gridStep {
		y := p.Transform.YToScreen(float64(r))
		// Axis-aligned 1px rect, not Line: the DDA walk stamps every pixel
		// individually, which at hundreds of grid rows costs more than all
		// visible tasks of a zoomed million-task render.
		c.FillRect(p.Plot.X, y, p.Plot.W, 1, colGrid)
	}
	// Host labels on the left (sampled when dense).
	labStep := 1
	minLab := c.TextHeight(fontAxes) + 2
	if rowH < minLab {
		labStep = int(math.Ceil(minLab / rowH))
	}
	for r := 0; r < p.Rows; r += labStep {
		y := p.Transform.YToScreen(float64(r)) + (rowH-c.TextHeight(fontAxes))/2
		lab := fmt.Sprintf("%d", r)
		c.Text(p.Plot.X-4-c.TextWidth(lab, fontAxes), y, lab, fontAxes, colAxis)
	}

	// Density bands below the individually drawn tasks (LOD only).
	if p.lod != nil {
		for _, b := range p.lod.bands {
			c.FillRect(b.x, b.y, b.w, b.h, b.col)
		}
	}

	// Tasks: plain tasks first, composites on top, each pass in start-time
	// order from the panel's index slice of the visible window.
	ci := st.idx.cluster(p.Cluster.ID)
	for pass := 0; pass < 2; pass++ {
		sl := ci.list(pass)
		lo, hi := st.visible(sl, p)
		for k := lo; k < hi; k++ {
			ti := sl.idx[k]
			t := &s.Tasks[ti]
			if pass == 0 && p.lod != nil && p.lod.aggregates(p, t) {
				continue // folded into a density band
			}
			cols := st.colorsFor(ti)
			for _, r := range p.TaskRects(t) {
				c.FillRect(r.X, r.Y, r.W, r.H, cols.BG)
				if r.W > 2 && r.H > 2 {
					c.StrokeRect(r.X, r.Y, r.W, r.H, colBorder, 1)
				}
				if st.opt.Labels && r.W >= c.TextWidth(t.ID, fontLabel)+4 && r.H >= c.TextHeight(fontLabel)+2 {
					c.Text(r.X+(r.W-c.TextWidth(t.ID, fontLabel))/2,
						r.Y+(r.H-c.TextHeight(fontLabel))/2, t.ID, fontLabel, cols.FG)
				}
			}
		}
	}

	// Plot border and time axis.
	c.StrokeRect(p.Plot.X, p.Plot.Y, p.Plot.W, p.Plot.H, colBorder, 1)
	drawTimeAxis(c, p)
}

// taskColors resolves the fill/label colors, consulting composite rules for
// composite tasks based on their member types. Render itself goes through
// the renderState memo; this remains the single-task entry point.
func taskColors(s *core.Schedule, t *core.Task, cmap *colormap.Map) colormap.Colors {
	if t.Type != core.CompositeType {
		return cmap.Lookup(t.Type)
	}
	var types []string
	for _, id := range strings.Split(t.Property("members"), ",") {
		if m := s.Task(id); m != nil {
			types = append(types, m.Type)
		}
	}
	if len(types) == 0 {
		return cmap.CompositeDefault
	}
	return cmap.LookupComposite(types)
}

// compositeColors is taskColors for composite tasks with the member lookup
// served from a prebuilt id->index map.
func compositeColors(s *core.Schedule, t *core.Task, cmap *colormap.Map, byID map[string]int32) colormap.Colors {
	var types []string
	for _, id := range strings.Split(t.Property("members"), ",") {
		if j, ok := byID[id]; ok {
			types = append(types, s.Tasks[j].Type)
		}
	}
	if len(types) == 0 {
		return cmap.CompositeDefault
	}
	return cmap.LookupComposite(types)
}

func drawTimeAxis(c Canvas, p *Panel) {
	yAxis := p.Plot.Y + p.Plot.H
	ticks := niceTicks(p.Time.Min, p.Time.Max, int(p.Plot.W/70)+1)
	for _, tv := range ticks {
		x := p.Transform.XToScreen(tv)
		c.Line(x, yAxis, x, yAxis+4, colAxis, 1)
		lab := formatTick(tv)
		c.Text(x-c.TextWidth(lab, fontAxes)/2, yAxis+6, lab, fontAxes, colAxis)
	}
}

// niceTicks picks round tick positions covering [lo, hi].
func niceTicks(lo, hi float64, maxTicks int) []float64 {
	if maxTicks < 2 {
		maxTicks = 2
	}
	span := hi - lo
	if span <= 0 {
		return []float64{lo}
	}
	raw := span / float64(maxTicks)
	mag := math.Pow(10, math.Floor(math.Log10(raw)))
	var step float64
	switch {
	case raw/mag < 1.5:
		step = mag
	case raw/mag < 3.5:
		step = 2 * mag
	case raw/mag < 7.5:
		step = 5 * mag
	default:
		step = 10 * mag
	}
	var out []float64
	for v := math.Ceil(lo/step) * step; v <= hi+step*1e-9; v += step {
		out = append(out, v)
	}
	return out
}

func formatTick(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e7 {
		return fmt.Sprintf("%.0f", v)
	}
	return fmt.Sprintf("%.3g", v)
}

// elide truncates s with ".." so it fits within width at the font size.
func elide(c Canvas, s string, size, width float64) string {
	if c.TextWidth(s, size) <= width {
		return s
	}
	runes := []rune(s)
	for len(runes) > 1 && c.TextWidth(string(runes)+"..", size) > width {
		runes = runes[:len(runes)-1]
	}
	return string(runes) + ".."
}
