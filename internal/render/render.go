// Package render draws Jedule schedules as Gantt charts. One dimension is
// the platform's resources (host rows grouped into cluster panels, stacked
// vertically), the other is time (horizontal). Each task is one rectangle
// per contiguous host run — so a scattered multiprocessor allocation shows
// as several rectangles, exactly as the paper requires.
//
// The engine is backend-independent: it draws through the Canvas interface,
// implemented by raster (PNG/JPEG), pdf, and svg. Layout is computed
// separately from painting so the interactive viewport can reuse it for hit
// testing.
package render

import (
	"fmt"
	"image/color"
	"math"
	"strings"

	"repro/internal/colormap"
	"repro/internal/core"
	"repro/internal/geom"
)

// Canvas is the drawing surface contract shared by all output backends.
type Canvas interface {
	Size() (w, h float64)
	FillRect(x, y, w, h float64, c color.RGBA)
	StrokeRect(x, y, w, h float64, c color.RGBA, lw float64)
	Line(x1, y1, x2, y2 float64, c color.RGBA, lw float64)
	Text(x, y float64, s string, size float64, c color.RGBA)
	VerticalText(x, y float64, s string, size float64, c color.RGBA)
	TextWidth(s string, size float64) float64
	TextHeight(size float64) float64
}

// Options selects what and how to draw.
type Options struct {
	// Mode aligns cluster panels on the global extent (AlignedView) or
	// scales each to its local extent (ScaledView). Default: AlignedView.
	Mode core.ViewMode
	// Map provides the task colors; nil uses colormap.Default().
	Map *colormap.Map
	// Clusters restricts rendering to the given cluster IDs (the
	// interactive mode's cluster selection); nil renders all clusters.
	Clusters []int
	// Window restricts the visible time range (zoom); nil shows the
	// extent chosen by Mode.
	Window *core.Extent
	// Labels draws task IDs inside rectangles when they fit.
	Labels bool
	// Composites derives and overlays composite tasks before drawing.
	Composites bool
	// Title is drawn at the top; empty means no title band.
	Title string
	// ShowMeta appends schedule meta info key/value pairs to the title.
	ShowMeta bool
	// Legend draws a color legend (one swatch per task type) along the
	// bottom edge.
	Legend bool
	// AxisLabels annotates the axes ("time" below, "hosts" on the left).
	AxisLabels bool
	// Workers bounds the goroutines that rasterize cluster panels in
	// parallel: 0 uses GOMAXPROCS, 1 forces serial rendering. Output is
	// byte-identical for every worker count — raster backends partition
	// the pixels into non-overlapping bands, vector backends record each
	// panel into its own fragment and composite in layout order.
	Workers int
}

// colorRGBA aliases the stdlib color type for the canvas adapters.
type colorRGBA = color.RGBA

// Layout is the computed arrangement of cluster panels on a canvas.
type Layout struct {
	Panels []Panel
	Title  string
}

// Panel is the drawing region of one cluster.
type Panel struct {
	Cluster   core.Cluster
	Plot      geom.Rect   // task plotting area
	Time      core.Extent // visible time range
	Rows      int         // host rows
	Transform geom.Transform
}

const (
	marginLeft    = 46.0 // host labels + resource axis
	marginRight   = 10.0
	marginTop     = 8.0
	titleBand     = 18.0
	axisBand      = 26.0 // per-panel time axis (scaled) or shared (aligned)
	panelGap      = 14.0
	panelHeader   = 14.0 // cluster name band
	fontAxes      = 10.0
	axisLabelBand = 14.0
	fontLabel     = 10.0
	fontTitle     = 12.0
)

var (
	colAxis   = color.RGBA{40, 40, 40, 255}
	colGrid   = color.RGBA{225, 225, 225, 255}
	colBorder = color.RGBA{0, 0, 0, 255}
)

// ComputeLayout arranges the selected clusters on a canvas of the given size.
func ComputeLayout(s *core.Schedule, width, height float64, opt Options) *Layout {
	clusters := selectClusters(s, opt.Clusters)
	l := &Layout{Title: opt.Title}
	if opt.ShowMeta && len(s.Meta) > 0 {
		var parts []string
		for _, m := range s.Meta {
			parts = append(parts, m.Name+"="+m.Value)
		}
		if l.Title != "" {
			l.Title += "  "
		}
		l.Title += "[" + strings.Join(parts, " ") + "]"
	}
	if len(clusters) == 0 {
		return l
	}
	top := marginTop
	if l.Title != "" {
		top += titleBand
	}
	totalHosts := 0
	for _, c := range clusters {
		totalHosts += c.Hosts
	}
	// Vertical budget: panels share the space proportionally to host count.
	nPanels := float64(len(clusters))
	fixed := top + nPanels*(panelHeader+axisBand) + (nPanels-1)*panelGap + 4
	if opt.Legend {
		fixed += legendBand
	}
	if opt.AxisLabels {
		fixed += axisLabelBand
	}
	plotBudget := height - fixed
	if plotBudget < 10*nPanels {
		plotBudget = 10 * nPanels
	}
	y := top
	for _, c := range clusters {
		ext := s.ExtentFor(c.ID, opt.Mode)
		if opt.Window != nil {
			ext = *opt.Window
		}
		if ext.Span() <= 0 {
			ext = core.Extent{Min: ext.Min, Max: ext.Min + 1}
		}
		plotH := plotBudget * float64(c.Hosts) / float64(totalHosts)
		plot := geom.Rect{X: marginLeft, Y: y + panelHeader, W: width - marginLeft - marginRight, H: plotH}
		p := Panel{
			Cluster: c,
			Plot:    plot,
			Time:    ext,
			Rows:    c.Hosts,
			Transform: geom.Transform{
				TimeMin: ext.Min, TimeMax: ext.Max,
				RowMin: 0, RowMax: float64(c.Hosts),
				Screen: plot,
			},
		}
		l.Panels = append(l.Panels, p)
		y += panelHeader + plotH + axisBand + panelGap
	}
	return l
}

func selectClusters(s *core.Schedule, ids []int) []core.Cluster {
	if ids == nil {
		return s.Clusters
	}
	var out []core.Cluster
	for _, id := range ids {
		if c, ok := s.Cluster(id); ok {
			out = append(out, c)
		}
	}
	return out
}

// TaskRects returns the screen rectangles of a task inside the panel: one
// rectangle per contiguous host range, clipped to the visible time window.
func (p *Panel) TaskRects(t *core.Task) []geom.Rect {
	a, ok := t.AllocationOn(p.Cluster.ID)
	if !ok {
		return nil
	}
	start, end := t.Start, t.End
	if end < p.Time.Min || start > p.Time.Max {
		return nil
	}
	start = math.Max(start, p.Time.Min)
	end = math.Min(end, p.Time.Max)
	x0 := p.Transform.XToScreen(start)
	x1 := p.Transform.XToScreen(end)
	var out []geom.Rect
	for _, r := range core.RangesFromHosts(a.HostList()) {
		if r.Start >= p.Rows {
			continue
		}
		y0 := p.Transform.YToScreen(float64(r.Start))
		y1 := p.Transform.YToScreen(math.Min(float64(r.End()), float64(p.Rows)))
		out = append(out, geom.Rect{X: x0, Y: y0, W: x1 - x0, H: y1 - y0})
	}
	return out
}

// HitTest returns the index (into s.Tasks) of the topmost task whose
// rectangle contains the screen point, preferring composite tasks (drawn on
// top), and ok=false when the point hits no task.
func (l *Layout) HitTest(s *core.Schedule, x, y float64) (int, bool) {
	hit := -1
	for pi := range l.Panels {
		p := &l.Panels[pi]
		if !p.Plot.Contains(x, y) {
			continue
		}
		for i := range s.Tasks {
			for _, r := range p.TaskRects(&s.Tasks[i]) {
				if r.Contains(x, y) {
					if hit < 0 || s.Tasks[i].Type == core.CompositeType {
						hit = i
					}
				}
			}
		}
	}
	return hit, hit >= 0
}

// Render paints the schedule onto the canvas.
func Render(c Canvas, s *core.Schedule, opt Options) *Layout {
	if opt.Composites {
		s = s.WithComposites()
	}
	cmap := opt.Map
	if cmap == nil {
		cmap = colormap.Default()
	}
	w, h := c.Size()
	l := ComputeLayout(s, w, h, opt)
	if l.Title != "" {
		c.Text(marginLeft, marginTop, elide(c, l.Title, fontTitle, w-marginLeft-marginRight), fontTitle, colAxis)
	}
	if !drawPanelsParallel(c, s, l, cmap, opt) {
		for pi := range l.Panels {
			drawPanel(c, s, &l.Panels[pi], cmap, opt)
		}
	}
	bottom := h
	if opt.Legend {
		bottom -= legendBand
		drawLegend(c, s, cmap, w, bottom)
	}
	if opt.AxisLabels && len(l.Panels) > 0 {
		bottom -= axisLabelBand
		last := &l.Panels[len(l.Panels)-1]
		lab := "time"
		c.Text(last.Plot.X+(last.Plot.W-c.TextWidth(lab, fontAxes))/2, bottom+2, lab, fontAxes, colAxis)
		first := &l.Panels[0]
		c.VerticalText(2, first.Plot.Y+first.Plot.H/2-c.TextWidth("hosts", fontAxes)/2, "hosts", fontAxes, colAxis)
	}
	return l
}

func drawPanel(c Canvas, s *core.Schedule, p *Panel, cmap *colormap.Map, opt Options) {
	// Panel header: cluster name and id.
	header := fmt.Sprintf("%s (%d hosts)", p.Cluster.DisplayName(), p.Cluster.Hosts)
	c.Text(p.Plot.X, p.Plot.Y-panelHeader+2, elide(c, header, fontAxes, p.Plot.W), fontAxes, colAxis)

	// Plot background and horizontal host grid.
	c.FillRect(p.Plot.X, p.Plot.Y, p.Plot.W, p.Plot.H, color.RGBA{250, 250, 250, 255})
	rowH := p.Plot.H / float64(p.Rows)
	gridStep := 1
	if rowH < 3 {
		gridStep = int(math.Ceil(3 / rowH))
	}
	for r := gridStep; r < p.Rows; r += gridStep {
		y := p.Transform.YToScreen(float64(r))
		c.Line(p.Plot.X, y, p.Plot.X+p.Plot.W, y, colGrid, 1)
	}
	// Host labels on the left (sampled when dense).
	labStep := 1
	minLab := c.TextHeight(fontAxes) + 2
	if rowH < minLab {
		labStep = int(math.Ceil(minLab / rowH))
	}
	for r := 0; r < p.Rows; r += labStep {
		y := p.Transform.YToScreen(float64(r)) + (rowH-c.TextHeight(fontAxes))/2
		lab := fmt.Sprintf("%d", r)
		c.Text(p.Plot.X-4-c.TextWidth(lab, fontAxes), y, lab, fontAxes, colAxis)
	}

	// Tasks: plain tasks first, composites on top.
	for pass := 0; pass < 2; pass++ {
		for i := range s.Tasks {
			t := &s.Tasks[i]
			isComposite := t.Type == core.CompositeType
			if (pass == 0) == isComposite {
				continue
			}
			cols := taskColors(s, t, cmap)
			for _, r := range p.TaskRects(t) {
				c.FillRect(r.X, r.Y, r.W, r.H, cols.BG)
				if r.W > 2 && r.H > 2 {
					c.StrokeRect(r.X, r.Y, r.W, r.H, colBorder, 1)
				}
				if opt.Labels && r.W >= c.TextWidth(t.ID, fontLabel)+4 && r.H >= c.TextHeight(fontLabel)+2 {
					c.Text(r.X+(r.W-c.TextWidth(t.ID, fontLabel))/2,
						r.Y+(r.H-c.TextHeight(fontLabel))/2, t.ID, fontLabel, cols.FG)
				}
			}
		}
	}

	// Plot border and time axis.
	c.StrokeRect(p.Plot.X, p.Plot.Y, p.Plot.W, p.Plot.H, colBorder, 1)
	drawTimeAxis(c, p)
}

// taskColors resolves the fill/label colors, consulting composite rules for
// composite tasks based on their member types.
func taskColors(s *core.Schedule, t *core.Task, cmap *colormap.Map) colormap.Colors {
	if t.Type != core.CompositeType {
		return cmap.Lookup(t.Type)
	}
	var types []string
	for _, id := range strings.Split(t.Property("members"), ",") {
		if m := s.Task(id); m != nil {
			types = append(types, m.Type)
		}
	}
	if len(types) == 0 {
		return cmap.CompositeDefault
	}
	return cmap.LookupComposite(types)
}

func drawTimeAxis(c Canvas, p *Panel) {
	yAxis := p.Plot.Y + p.Plot.H
	ticks := niceTicks(p.Time.Min, p.Time.Max, int(p.Plot.W/70)+1)
	for _, tv := range ticks {
		x := p.Transform.XToScreen(tv)
		c.Line(x, yAxis, x, yAxis+4, colAxis, 1)
		lab := formatTick(tv)
		c.Text(x-c.TextWidth(lab, fontAxes)/2, yAxis+6, lab, fontAxes, colAxis)
	}
}

// niceTicks picks round tick positions covering [lo, hi].
func niceTicks(lo, hi float64, maxTicks int) []float64 {
	if maxTicks < 2 {
		maxTicks = 2
	}
	span := hi - lo
	if span <= 0 {
		return []float64{lo}
	}
	raw := span / float64(maxTicks)
	mag := math.Pow(10, math.Floor(math.Log10(raw)))
	var step float64
	switch {
	case raw/mag < 1.5:
		step = mag
	case raw/mag < 3.5:
		step = 2 * mag
	case raw/mag < 7.5:
		step = 5 * mag
	default:
		step = 10 * mag
	}
	var out []float64
	for v := math.Ceil(lo/step) * step; v <= hi+step*1e-9; v += step {
		out = append(out, v)
	}
	return out
}

func formatTick(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e7 {
		return fmt.Sprintf("%.0f", v)
	}
	return fmt.Sprintf("%.3g", v)
}

// elide truncates s with ".." so it fits within width at the font size.
func elide(c Canvas, s string, size, width float64) string {
	if c.TextWidth(s, size) <= width {
		return s
	}
	runes := []rune(s)
	for len(runes) > 1 && c.TextWidth(string(runes)+"..", size) > width {
		runes = runes[:len(runes)-1]
	}
	return string(runes) + ".."
}
