// Package events is the broadcast bus behind GET /api/v1/events.
//
// Producers (the jobs engine, the campaign coordinator, the fleet manager,
// the session store) Publish typed events; subscribers receive them through
// per-subscriber bounded ring buffers, so a wedged consumer can never stall
// a publisher — when a subscriber's ring overflows, the oldest buffered
// event is dropped and counted, and the drop count is surfaced to that
// subscriber on its next Drain. Every event carries a bus-wide monotonic ID
// (the SSE Last-Event-ID cursor) and a per-topic sequence number, and the
// bus keeps a small in-memory tail so a reconnecting client can replay
// recent history.
//
// Publish never blocks and the bus owns no goroutines; subscribers are
// pull-driven via a level-triggered notify channel.
package events

import (
	"encoding/json"
	"sync"
	"time"
)

// Topic classifies events by the subsystem that produced them.
type Topic string

const (
	TopicJob      Topic = "job"      // jobs-engine lifecycle + progress
	TopicCampaign Topic = "campaign" // coordinated-campaign jobs
	TopicShard    Topic = "shard"    // coordinator shard dispatch/complete/reassign
	TopicFleet    Topic = "fleet"    // worker join/retire/lease/steal
	TopicSession  Topic = "session"  // session create/replace/evict
	TopicMetrics  Topic = "metrics"  // periodic metrics-registry snapshots
)

// Topics lists every topic the bus carries, in documentation order.
func Topics() []Topic {
	return []Topic{TopicJob, TopicCampaign, TopicShard, TopicFleet, TopicSession, TopicMetrics}
}

// ValidTopic reports whether t names a known topic.
func ValidTopic(t Topic) bool {
	switch t {
	case TopicJob, TopicCampaign, TopicShard, TopicFleet, TopicSession, TopicMetrics:
		return true
	}
	return false
}

// Event is one bus message. ID is monotonic across the whole bus and is the
// SSE event id; Seq is monotonic within the event's topic. Key identifies
// the subject (job ID, campaign ID, worker name, session ID) so streams can
// be filtered server-side.
type Event struct {
	ID    uint64          `json:"id"`
	Topic Topic           `json:"topic"`
	Seq   uint64          `json:"seq"`
	Type  string          `json:"type"`
	Key   string          `json:"key,omitempty"`
	Time  time.Time       `json:"time"`
	Data  json.RawMessage `json:"data,omitempty"`
}

// Filter selects a subset of the stream. A zero Filter matches everything.
type Filter struct {
	// Topics limits delivery to these topics; empty means all topics.
	Topics []Topic
	// Key limits delivery per topic to events whose Key matches; topics
	// absent from the map are unrestricted.
	Key map[Topic]string
}

// Match reports whether the filter admits e.
func (f Filter) Match(e Event) bool {
	if len(f.Topics) > 0 {
		ok := false
		for _, t := range f.Topics {
			if t == e.Topic {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	if want, ok := f.Key[e.Topic]; ok && want != e.Key {
		return false
	}
	return true
}

// Stats is a snapshot of bus counters for /api/v1/meta.
type Stats struct {
	Published   uint64           `json:"published"`
	Dropped     uint64           `json:"dropped"`
	Subscribers int              `json:"subscribers"`
	LastID      uint64           `json:"last_id"`
	TopicSeq    map[Topic]uint64 `json:"topic_seq,omitempty"`
}

const (
	// DefaultTail is how many recent events the bus retains for
	// Last-Event-ID replay when NewBus is given tail <= 0.
	DefaultTail = 512
	// DefaultBuffer is the per-subscriber ring size when Subscribe is
	// given buffer <= 0.
	DefaultBuffer = 256
)

// Bus is a broadcast hub. The zero value is not usable; call NewBus.
type Bus struct {
	mu       sync.Mutex
	nextID   uint64
	topicSeq map[Topic]uint64
	tail     []Event // ring of the last len(tail) events, tailLen valid
	tailCap  int
	tailHead int // index of the oldest retained event
	tailLen  int
	subs     map[*Subscriber]struct{}

	published uint64
	dropped   uint64

	now func() time.Time // test hook
}

// NewBus returns a bus retaining tail events for replay (DefaultTail if
// tail <= 0).
func NewBus(tail int) *Bus {
	if tail <= 0 {
		tail = DefaultTail
	}
	return &Bus{
		topicSeq: make(map[Topic]uint64),
		tail:     make([]Event, tail),
		tailCap:  tail,
		subs:     make(map[*Subscriber]struct{}),
		now:      time.Now,
	}
}

// Publish marshals data and broadcasts one event on topic. It never blocks:
// subscribers that cannot keep up lose their oldest buffered event instead.
// Marshal failures are reported in-band as a {"marshal_error": ...} payload
// rather than silently dropping the event.
func (b *Bus) Publish(topic Topic, typ, key string, data any) Event {
	var raw json.RawMessage
	if data != nil {
		enc, err := json.Marshal(data)
		if err != nil {
			enc, _ = json.Marshal(map[string]string{"marshal_error": err.Error()})
		}
		raw = enc
	}

	b.mu.Lock()
	b.nextID++
	b.topicSeq[topic]++
	e := Event{
		ID:    b.nextID,
		Topic: topic,
		Seq:   b.topicSeq[topic],
		Type:  typ,
		Key:   key,
		Time:  b.now().UTC(),
		Data:  raw,
	}
	b.published++
	// Append to the replay tail, evicting the oldest entry when full.
	if b.tailLen < b.tailCap {
		b.tail[(b.tailHead+b.tailLen)%b.tailCap] = e
		b.tailLen++
	} else {
		b.tail[b.tailHead] = e
		b.tailHead = (b.tailHead + 1) % b.tailCap
	}
	targets := make([]*Subscriber, 0, len(b.subs))
	for s := range b.subs {
		targets = append(targets, s)
	}
	b.mu.Unlock()

	for _, s := range targets {
		if s.filter.Match(e) {
			if s.offer(e) {
				b.mu.Lock()
				b.dropped++
				b.mu.Unlock()
			}
		}
	}
	return e
}

// Subscribe registers a subscriber whose ring holds buffer events
// (DefaultBuffer if buffer <= 0). Events published after Subscribe returns
// are delivered; use ReplaySince to cover a reconnect gap.
func (b *Bus) Subscribe(f Filter, buffer int) *Subscriber {
	if buffer <= 0 {
		buffer = DefaultBuffer
	}
	s := &Subscriber{
		bus:    b,
		filter: f,
		ring:   make([]Event, buffer),
		notify: make(chan struct{}, 1),
	}
	b.mu.Lock()
	b.subs[s] = struct{}{}
	b.mu.Unlock()
	return s
}

// ReplaySince returns retained events with ID > after that match f, oldest
// first. complete is false when the tail has already evicted events the
// caller missed (i.e. the gap cannot be fully reconstructed).
func (b *Bus) ReplaySince(after uint64, f Filter) (evs []Event, complete bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	// The gap is fully reconstructable iff no event between after+1 and
	// now has been evicted from the tail.
	complete = true
	if b.tailLen > 0 {
		if oldest := b.tail[b.tailHead]; after+1 < oldest.ID {
			complete = false
		}
	}
	for i := 0; i < b.tailLen; i++ {
		e := b.tail[(b.tailHead+i)%b.tailCap]
		if e.ID > after && f.Match(e) {
			evs = append(evs, e)
		}
	}
	return evs, complete
}

// Stats snapshots the bus counters.
func (b *Bus) Stats() Stats {
	b.mu.Lock()
	defer b.mu.Unlock()
	seq := make(map[Topic]uint64, len(b.topicSeq))
	for t, n := range b.topicSeq {
		seq[t] = n
	}
	return Stats{
		Published:   b.published,
		Dropped:     b.dropped,
		Subscribers: len(b.subs),
		LastID:      b.nextID,
		TopicSeq:    seq,
	}
}

func (b *Bus) unsubscribe(s *Subscriber) {
	b.mu.Lock()
	delete(b.subs, s)
	b.mu.Unlock()
}

// Subscriber is one consumer's bounded view of the stream. Wait on Notify,
// then Drain; repeat. Close when done.
type Subscriber struct {
	bus    *Bus
	filter Filter
	notify chan struct{}

	mu      sync.Mutex
	ring    []Event
	head    int    // oldest buffered event
	n       int    // buffered count
	dropped uint64 // drops since the last Drain
	total   uint64 // drops over the subscriber's lifetime
	closed  bool
}

// offer enqueues e, evicting the oldest buffered event when the ring is
// full. It reports whether an event was dropped.
func (s *Subscriber) offer(e Event) (droppedOne bool) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return false
	}
	if s.n == len(s.ring) {
		s.head = (s.head + 1) % len(s.ring)
		s.n--
		s.dropped++
		s.total++
		droppedOne = true
	}
	s.ring[(s.head+s.n)%len(s.ring)] = e
	s.n++
	s.mu.Unlock()
	select {
	case s.notify <- struct{}{}:
	default:
	}
	return droppedOne
}

// Notify returns a channel that receives a token whenever new events (or
// drops) are pending. It is level-triggered with capacity 1: always Drain
// after a receive.
func (s *Subscriber) Notify() <-chan struct{} { return s.notify }

// Drain returns and clears the buffered events (oldest first) along with
// the number of events dropped since the previous Drain.
func (s *Subscriber) Drain() (evs []Event, dropped uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.n > 0 {
		evs = make([]Event, 0, s.n)
		for i := 0; i < s.n; i++ {
			evs = append(evs, s.ring[(s.head+i)%len(s.ring)])
		}
		s.head = 0
		s.n = 0
	}
	dropped = s.dropped
	s.dropped = 0
	return evs, dropped
}

// Dropped returns the lifetime drop count for this subscriber.
func (s *Subscriber) Dropped() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.total
}

// Close unsubscribes. It is safe to call more than once.
func (s *Subscriber) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.mu.Unlock()
	s.bus.unsubscribe(s)
}
