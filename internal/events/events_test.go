package events

import (
	"fmt"
	"sync"
	"testing"
)

func TestPublishDeliversInOrder(t *testing.T) {
	b := NewBus(0)
	sub := b.Subscribe(Filter{}, 0)
	defer sub.Close()

	for i := 0; i < 5; i++ {
		b.Publish(TopicJob, "progress", fmt.Sprintf("j%d", i), map[string]int{"i": i})
	}
	evs, dropped := sub.Drain()
	if dropped != 0 {
		t.Fatalf("dropped = %d, want 0", dropped)
	}
	if len(evs) != 5 {
		t.Fatalf("got %d events, want 5", len(evs))
	}
	for i, e := range evs {
		if e.ID != uint64(i+1) {
			t.Errorf("event %d: ID = %d, want %d", i, e.ID, i+1)
		}
		if e.Seq != uint64(i+1) {
			t.Errorf("event %d: topic seq = %d, want %d", i, e.Seq, i+1)
		}
		if e.Topic != TopicJob || e.Type != "progress" {
			t.Errorf("event %d: topic/type = %s/%s", i, e.Topic, e.Type)
		}
	}
}

func TestTopicSeqIndependent(t *testing.T) {
	b := NewBus(0)
	b.Publish(TopicJob, "submitted", "j1", nil)
	b.Publish(TopicFleet, "join", "w1", nil)
	e := b.Publish(TopicJob, "started", "j1", nil)
	if e.Seq != 2 {
		t.Errorf("job seq = %d, want 2", e.Seq)
	}
	if e.ID != 3 {
		t.Errorf("bus id = %d, want 3", e.ID)
	}
	st := b.Stats()
	if st.TopicSeq[TopicJob] != 2 || st.TopicSeq[TopicFleet] != 1 {
		t.Errorf("topic seq = %v", st.TopicSeq)
	}
}

func TestFilterMatch(t *testing.T) {
	cases := []struct {
		name string
		f    Filter
		e    Event
		want bool
	}{
		{"zero filter matches", Filter{}, Event{Topic: TopicJob}, true},
		{"topic match", Filter{Topics: []Topic{TopicJob}}, Event{Topic: TopicJob}, true},
		{"topic mismatch", Filter{Topics: []Topic{TopicJob}}, Event{Topic: TopicFleet}, false},
		{"key match", Filter{Key: map[Topic]string{TopicJob: "j1"}}, Event{Topic: TopicJob, Key: "j1"}, true},
		{"key mismatch", Filter{Key: map[Topic]string{TopicJob: "j1"}}, Event{Topic: TopicJob, Key: "j2"}, false},
		{"key on other topic unrestricted", Filter{Key: map[Topic]string{TopicJob: "j1"}}, Event{Topic: TopicFleet, Key: "w9"}, true},
		{"topic and key", Filter{Topics: []Topic{TopicShard}, Key: map[Topic]string{TopicShard: "c1"}},
			Event{Topic: TopicShard, Key: "c1"}, true},
	}
	for _, tc := range cases {
		if got := tc.f.Match(tc.e); got != tc.want {
			t.Errorf("%s: Match = %v, want %v", tc.name, got, tc.want)
		}
	}
}

// TestBackpressureIsolation is the wedged-subscriber guarantee: a consumer
// that never drains loses its own oldest events, while publishers never
// block and healthy subscribers see everything.
func TestBackpressureIsolation(t *testing.T) {
	b := NewBus(0)
	wedged := b.Subscribe(Filter{}, 4)
	defer wedged.Close()
	healthy := b.Subscribe(Filter{}, 64)
	defer healthy.Close()

	const n = 32
	for i := 0; i < n; i++ {
		b.Publish(TopicJob, "progress", "j1", nil)
	}

	evs, dropped := healthy.Drain()
	if len(evs) != n || dropped != 0 {
		t.Fatalf("healthy subscriber: %d events, %d dropped; want %d, 0", len(evs), dropped, n)
	}

	evs, dropped = wedged.Drain()
	if len(evs) != 4 {
		t.Fatalf("wedged subscriber buffered %d events, want 4", len(evs))
	}
	if dropped != n-4 {
		t.Fatalf("wedged subscriber dropped = %d, want %d", dropped, n-4)
	}
	// The survivors are the newest events.
	if evs[0].ID != n-3 || evs[3].ID != n {
		t.Errorf("survivors = %d..%d, want %d..%d", evs[0].ID, evs[3].ID, n-3, n)
	}
	if wedged.Dropped() != n-4 {
		t.Errorf("lifetime drops = %d, want %d", wedged.Dropped(), n-4)
	}
	if st := b.Stats(); st.Dropped != n-4 {
		t.Errorf("bus drop counter = %d, want %d", st.Dropped, n-4)
	}
}

func TestReplaySince(t *testing.T) {
	b := NewBus(8)
	for i := 0; i < 6; i++ {
		b.Publish(TopicJob, "progress", "j1", nil)
	}
	evs, complete := b.ReplaySince(3, Filter{})
	if !complete {
		t.Fatal("replay reported incomplete with the gap fully retained")
	}
	if len(evs) != 3 || evs[0].ID != 4 || evs[2].ID != 6 {
		t.Fatalf("replay after 3 = %v", ids(evs))
	}

	// Overflow the tail: events 1..4 evicted (tail holds 5..12).
	for i := 0; i < 6; i++ {
		b.Publish(TopicJob, "progress", "j1", nil)
	}
	evs, complete = b.ReplaySince(2, Filter{})
	if complete {
		t.Fatal("replay reported complete across an evicted gap")
	}
	if len(evs) != 8 || evs[0].ID != 5 {
		t.Fatalf("truncated replay = %v", ids(evs))
	}

	// A cursor at the tail boundary is still complete.
	if _, complete = b.ReplaySince(4, Filter{}); !complete {
		t.Error("replay after 4 (oldest retained is 5) should be complete")
	}
	// A current cursor replays nothing, completely.
	evs, complete = b.ReplaySince(12, Filter{})
	if len(evs) != 0 || !complete {
		t.Errorf("replay at head = %v, complete=%v", ids(evs), complete)
	}
}

func TestReplayFiltered(t *testing.T) {
	b := NewBus(0)
	b.Publish(TopicJob, "submitted", "j1", nil)
	b.Publish(TopicFleet, "join", "w1", nil)
	b.Publish(TopicJob, "done", "j1", nil)
	evs, complete := b.ReplaySince(0, Filter{Topics: []Topic{TopicJob}})
	if !complete || len(evs) != 2 || evs[0].Type != "submitted" || evs[1].Type != "done" {
		t.Fatalf("filtered replay = %v (complete=%v)", ids(evs), complete)
	}
}

func TestSubscriberFilter(t *testing.T) {
	b := NewBus(0)
	sub := b.Subscribe(Filter{Key: map[Topic]string{TopicJob: "j2"}}, 0)
	defer sub.Close()
	b.Publish(TopicJob, "submitted", "j1", nil)
	b.Publish(TopicJob, "submitted", "j2", nil)
	b.Publish(TopicShard, "running", "c9", nil)
	evs, _ := sub.Drain()
	if len(evs) != 2 {
		t.Fatalf("got %d events, want 2 (j2 + unrestricted shard)", len(evs))
	}
	if evs[0].Key != "j2" || evs[1].Topic != TopicShard {
		t.Errorf("events = %+v", evs)
	}
}

func TestCloseStopsDelivery(t *testing.T) {
	b := NewBus(0)
	sub := b.Subscribe(Filter{}, 0)
	sub.Close()
	sub.Close() // idempotent
	b.Publish(TopicJob, "submitted", "j1", nil)
	if evs, _ := sub.Drain(); len(evs) != 0 {
		t.Fatalf("closed subscriber received %d events", len(evs))
	}
	if st := b.Stats(); st.Subscribers != 0 {
		t.Errorf("subscribers = %d, want 0", st.Subscribers)
	}
}

// TestConcurrentPublish hammers the bus from many goroutines while one
// consumer drains — run under -race this is the data-race check, and the
// ID assertions verify no event is minted twice.
func TestConcurrentPublish(t *testing.T) {
	b := NewBus(64)
	sub := b.Subscribe(Filter{}, 4096)
	defer sub.Close()

	const goroutines, per = 8, 100
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				b.Publish(TopicJob, "progress", fmt.Sprintf("j%d", g), nil)
			}
		}(g)
	}
	done := make(chan struct{})
	var got []Event
	go func() {
		defer close(done)
		for len(got) < goroutines*per {
			<-sub.Notify()
			evs, dropped := sub.Drain()
			if dropped > 0 {
				t.Errorf("dropped %d with an oversized buffer", dropped)
				return
			}
			got = append(got, evs...)
		}
	}()
	wg.Wait()
	<-done

	if len(got) != goroutines*per {
		t.Fatalf("received %d events, want %d", len(got), goroutines*per)
	}
	seen := make(map[uint64]bool, len(got))
	for _, e := range got {
		if seen[e.ID] {
			t.Fatalf("event ID %d delivered twice", e.ID)
		}
		seen[e.ID] = true
	}
	if st := b.Stats(); st.Published != goroutines*per || st.LastID != goroutines*per {
		t.Errorf("stats = %+v", st)
	}
}

func ids(evs []Event) []uint64 {
	out := make([]uint64, len(evs))
	for i, e := range evs {
		out[i] = e.ID
	}
	return out
}
