package jedxml

import (
	"bytes"
	"io"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"repro/internal/core"
)

// paperFig1 is the task definition from Figure 1 of the paper, embedded in a
// complete document (the paper notes clusters are defined in the header).
const paperFig1 = `<?xml version="1.0" encoding="UTF-8"?>
<grid_schedule>
  <grid_info>
    <info name="nb_clusters" value="1"/>
    <clusters>
      <cluster id="0" hosts="8" name="cluster-0"/>
    </clusters>
  </grid_info>
  <node_infos>
    <node_statistics>
      <node_property name="id" value="1"/>
      <node_property name="type" value="computation"/>
      <node_property name="start_time" value="0.000"/>
      <node_property name="end_time" value="0.310"/>
      <configuration>
        <conf_property name="cluster_id" value="0"/>
        <conf_property name="host_nb" value="8"/>
        <host_lists>
          <hosts start="0" nb="8"/>
        </host_lists>
      </configuration>
    </node_statistics>
  </node_infos>
</grid_schedule>
`

func TestReadPaperFigure1(t *testing.T) {
	s, err := Read(strings.NewReader(paperFig1))
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Clusters) != 1 || s.Clusters[0].Hosts != 8 {
		t.Fatalf("clusters = %+v", s.Clusters)
	}
	if len(s.Tasks) != 1 {
		t.Fatalf("tasks = %d", len(s.Tasks))
	}
	task := s.Tasks[0]
	if task.ID != "1" || task.Type != "computation" {
		t.Errorf("task id/type = %q/%q", task.ID, task.Type)
	}
	if task.Start != 0 || task.End != 0.31 {
		t.Errorf("task times = %g..%g", task.Start, task.End)
	}
	a := task.Allocations[0]
	if a.Cluster != 0 || a.HostCount() != 8 || !a.Contiguous() {
		t.Errorf("allocation = %+v", a)
	}
	if got := a.HostList(); got[0] != 0 || got[7] != 7 {
		t.Errorf("hosts = %v, want 0..7", got)
	}
}

func TestMetaInfoRoundTrip(t *testing.T) {
	// The meta_info example from section II-C.2 of the paper.
	s := core.NewSingleCluster("c", 4)
	s.Add("1", "computation", 0, 1, 0, 4)
	s.SetMeta("mindelta", "-2")
	s.SetMeta("maxdelta", "2")
	s.SetMeta("sort", "comm")
	var buf bytes.Buffer
	if err := Write(&buf, s); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `<meta name="mindelta" value="-2"`) {
		t.Fatalf("meta_info not written:\n%s", buf.String())
	}
	back, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back.Meta, s.Meta) {
		t.Fatalf("meta round-trip: got %v, want %v", back.Meta, s.Meta)
	}
}

func TestTaskPropertiesRoundTrip(t *testing.T) {
	s := core.NewSingleCluster("c", 2)
	s.Add("j17", "job", 0, 5, 0, 2)
	s.Tasks[0].SetProperty("user", "6447")
	s.Tasks[0].SetProperty("node_name", "thunder42")
	var buf bytes.Buffer
	if err := Write(&buf, s); err != nil {
		t.Fatal(err)
	}
	back, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Tasks[0].Property("user") != "6447" || back.Tasks[0].Property("node_name") != "thunder42" {
		t.Fatalf("properties lost: %+v", back.Tasks[0].Properties)
	}
}

func TestNonContiguousAllocation(t *testing.T) {
	s := core.NewSingleCluster("c", 10)
	s.AddTask(core.Task{ID: "scattered", Type: "computation", Start: 0, End: 1,
		Allocations: []core.Allocation{{Cluster: 0, Hosts: []core.HostRange{{Start: 0, N: 2}, {Start: 5, N: 3}}}}})
	var buf bytes.Buffer
	if err := Write(&buf, s); err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(buf.String(), "<hosts "); got != 2 {
		t.Fatalf("want 2 <hosts> elements for a scattered allocation, got %d", got)
	}
	back, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back.Tasks[0].Allocations, s.Tasks[0].Allocations) {
		t.Fatalf("allocations: got %+v want %+v", back.Tasks[0].Allocations, s.Tasks[0].Allocations)
	}
}

func TestMultiClusterTask(t *testing.T) {
	// "a task may belong to more than one cluster" — an inter-cluster
	// transfer with one configuration per cluster.
	s := core.New(core.Cluster{ID: 0, Hosts: 4}, core.Cluster{ID: 1, Hosts: 4})
	s.AddTask(core.Task{ID: "xfer", Type: "transfer", Start: 1, End: 2,
		Allocations: []core.Allocation{
			{Cluster: 0, Hosts: []core.HostRange{{Start: 0, N: 1}}},
			{Cluster: 1, Hosts: []core.HostRange{{Start: 3, N: 1}}},
		}})
	var buf bytes.Buffer
	if err := Write(&buf, s); err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(buf.String(), "<configuration>"); got != 2 {
		t.Fatalf("want 2 configurations, got %d", got)
	}
	back, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Tasks[0].Allocations) != 2 {
		t.Fatal("multi-cluster allocations lost")
	}
}

func TestReadErrors(t *testing.T) {
	cases := []struct {
		name, doc, wants string
	}{
		{"garbage", "not xml at all", "decode"},
		{"bad start", `<grid_schedule><grid_info><clusters><cluster id="0" hosts="1"/></clusters></grid_info>
			<node_infos><node_statistics>
			<node_property name="id" value="t"/><node_property name="type" value="x"/>
			<node_property name="start_time" value="abc"/><node_property name="end_time" value="1"/>
			<configuration><conf_property name="cluster_id" value="0"/><host_lists><hosts start="0" nb="1"/></host_lists></configuration>
			</node_statistics></node_infos></grid_schedule>`, "bad start_time"},
		{"bad end", `<grid_schedule><grid_info><clusters><cluster id="0" hosts="1"/></clusters></grid_info>
			<node_infos><node_statistics>
			<node_property name="id" value="t"/><node_property name="type" value="x"/>
			<node_property name="start_time" value="0"/><node_property name="end_time" value="x"/>
			<configuration><conf_property name="cluster_id" value="0"/><host_lists><hosts start="0" nb="1"/></host_lists></configuration>
			</node_statistics></node_infos></grid_schedule>`, "bad end_time"},
		{"missing cluster_id", `<grid_schedule><grid_info><clusters><cluster id="0" hosts="1"/></clusters></grid_info>
			<node_infos><node_statistics>
			<node_property name="id" value="t"/><node_property name="type" value="x"/>
			<node_property name="start_time" value="0"/><node_property name="end_time" value="1"/>
			<configuration><host_lists><hosts start="0" nb="1"/></host_lists></configuration>
			</node_statistics></node_infos></grid_schedule>`, "without cluster_id"},
		{"no clusters", `<grid_schedule><node_infos></node_infos></grid_schedule>`, "invalid schedule"},
		{"bad cluster ref", `<grid_schedule><grid_info><clusters><cluster id="0" hosts="1"/></clusters></grid_info>
			<node_infos><node_statistics>
			<node_property name="id" value="t"/><node_property name="type" value="x"/>
			<node_property name="start_time" value="0"/><node_property name="end_time" value="1"/>
			<configuration><conf_property name="cluster_id" value="9"/><host_lists><hosts start="0" nb="1"/></host_lists></configuration>
			</node_statistics></node_infos></grid_schedule>`, "undefined cluster"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Read(strings.NewReader(tc.doc))
			if err == nil {
				t.Fatal("Read succeeded, want error")
			}
			if !strings.Contains(err.Error(), tc.wants) {
				t.Fatalf("error %q does not contain %q", err, tc.wants)
			}
		})
	}
}

func TestWriteRejectsInvalid(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, &core.Schedule{}); err == nil {
		t.Fatal("Write accepted an invalid schedule")
	}
}

func TestFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/s.jed"
	s := core.NewSingleCluster("c", 4)
	s.Add("a", "computation", 0, 2.5, 0, 4)
	if err := WriteFile(path, s); err != nil {
		t.Fatal(err)
	}
	back, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back, s) {
		t.Fatalf("file round-trip mismatch:\n got %+v\nwant %+v", back, s)
	}
	if _, err := ReadFile(dir + "/missing.jed"); err == nil {
		t.Fatal("ReadFile of missing file succeeded")
	}
}

// randomSchedule mirrors the generator in package core for round-trip tests.
func randomSchedule(r *rand.Rand) *core.Schedule {
	nc := 1 + r.Intn(3)
	s := &core.Schedule{}
	for c := 0; c < nc; c++ {
		s.Clusters = append(s.Clusters, core.Cluster{ID: c, Name: "cl", Hosts: 1 + r.Intn(16)})
	}
	nt := r.Intn(20)
	for i := 0; i < nt; i++ {
		start := r.Float64() * 100
		task := core.Task{
			ID:    "t" + string(rune('a'+i%26)) + string(rune('a'+i/26)),
			Type:  []string{"computation", "transfer", "io"}[r.Intn(3)],
			Start: start, End: start + r.Float64()*10,
		}
		for _, c := range s.Clusters {
			if r.Intn(2) == 0 {
				continue
			}
			first := r.Intn(c.Hosts)
			task.Allocations = append(task.Allocations, core.Allocation{
				Cluster: c.ID,
				Hosts:   []core.HostRange{{Start: first, N: 1 + r.Intn(c.Hosts-first)}},
			})
		}
		if len(task.Allocations) == 0 {
			task.Allocations = []core.Allocation{{Cluster: 0, Hosts: []core.HostRange{{Start: 0, N: 1}}}}
		}
		if r.Intn(3) == 0 {
			task.SetProperty("note", "p")
		}
		s.Tasks = append(s.Tasks, task)
	}
	return s
}

// Property: Read(Write(s)) == s for arbitrary valid schedules, including
// float times that need shortest-round-trip formatting.
func TestXMLRoundTripProperty(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	for i := 0; i < 100; i++ {
		s := randomSchedule(r)
		var buf bytes.Buffer
		if err := Write(&buf, s); err != nil {
			t.Fatalf("iter %d: Write: %v", i, err)
		}
		back, err := Read(&buf)
		if err != nil {
			t.Fatalf("iter %d: Read: %v", i, err)
		}
		if !reflect.DeepEqual(back, s) {
			t.Fatalf("iter %d: round-trip mismatch\n got %+v\nwant %+v", i, back, s)
		}
	}
}

func TestParserRegistry(t *testing.T) {
	got := Formats()
	want := []string{"csv", "jedule"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Formats() = %v, want %v", got, want)
	}
	if _, err := ReadFormat("nope", strings.NewReader("")); err == nil {
		t.Fatal("unknown format must error")
	}
	s, err := ReadFormat("jedule", strings.NewReader(paperFig1))
	if err != nil || len(s.Tasks) != 1 {
		t.Fatalf("ReadFormat(jedule) = %v, %v", s, err)
	}
	// Custom registration is visible and callable.
	Register("fixed", func(io.Reader) (*core.Schedule, error) {
		fs := core.NewSingleCluster("f", 1)
		fs.Add("only", "x", 0, 1, 0, 1)
		return fs, nil
	})
	defer delete(parsers, "fixed")
	got2, err := ReadFormat("fixed", strings.NewReader("ignored"))
	if err != nil || got2.Tasks[0].ID != "only" {
		t.Fatalf("custom parser: %v, %v", got2, err)
	}
}
