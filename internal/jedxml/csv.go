package jedxml

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"repro/internal/core"
)

// ReadCSV parses the line-oriented alternative input format, demonstrating
// the parser extension point the paper describes. The format has three
// record kinds (leading keyword):
//
//	meta,<name>,<value>
//	cluster,<id>,<name>,<hosts>
//	task,<id>,<type>,<start>,<end>,<cluster>,<firstHost>,<hostCount>[,<cluster>,<firstHost>,<hostCount>...]
//
// Blank lines and lines starting with '#' are skipped.
func ReadCSV(r io.Reader) (*core.Schedule, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1
	cr.Comment = '#'
	s := &core.Schedule{}
	line := 0
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("jedxml/csv: %w", err)
		}
		line++
		if len(rec) == 0 {
			continue
		}
		switch rec[0] {
		case "meta":
			if len(rec) != 3 {
				return nil, fmt.Errorf("jedxml/csv: record %d: meta needs 2 fields", line)
			}
			s.Meta = append(s.Meta, core.Property{Name: rec[1], Value: rec[2]})
		case "cluster":
			if len(rec) != 4 {
				return nil, fmt.Errorf("jedxml/csv: record %d: cluster needs 3 fields", line)
			}
			id, err1 := strconv.Atoi(rec[1])
			hosts, err2 := strconv.Atoi(rec[3])
			if err1 != nil || err2 != nil {
				return nil, fmt.Errorf("jedxml/csv: record %d: bad cluster numbers", line)
			}
			s.Clusters = append(s.Clusters, core.Cluster{ID: id, Name: rec[2], Hosts: hosts})
		case "task":
			if len(rec) < 8 || (len(rec)-5)%3 != 0 {
				return nil, fmt.Errorf("jedxml/csv: record %d: task needs 4+3k fields", line)
			}
			start, err1 := strconv.ParseFloat(rec[3], 64)
			end, err2 := strconv.ParseFloat(rec[4], 64)
			if err1 != nil || err2 != nil {
				return nil, fmt.Errorf("jedxml/csv: record %d: bad task times", line)
			}
			t := core.Task{ID: rec[1], Type: rec[2], Start: start, End: end}
			for i := 5; i+2 < len(rec)+1 && i+2 <= len(rec); i += 3 {
				cid, e1 := strconv.Atoi(rec[i])
				first, e2 := strconv.Atoi(rec[i+1])
				n, e3 := strconv.Atoi(rec[i+2])
				if e1 != nil || e2 != nil || e3 != nil {
					return nil, fmt.Errorf("jedxml/csv: record %d: bad allocation numbers", line)
				}
				t.Allocations = append(t.Allocations, core.Allocation{
					Cluster: cid, Hosts: []core.HostRange{{Start: first, N: n}},
				})
			}
			s.Tasks = append(s.Tasks, t)
		default:
			return nil, fmt.Errorf("jedxml/csv: record %d: unknown record kind %q", line, rec[0])
		}
	}
	if err := s.Validate(); err != nil {
		return nil, fmt.Errorf("jedxml/csv: invalid schedule: %w", err)
	}
	return s, nil
}

// WriteCSV emits the CSV format accepted by ReadCSV. Only the first host
// range of multi-range allocations is representable per triple; scattered
// allocations are emitted as several triples on the same cluster.
func WriteCSV(w io.Writer, s *core.Schedule) error {
	if err := s.Validate(); err != nil {
		return fmt.Errorf("jedxml/csv: refusing to write invalid schedule: %w", err)
	}
	cw := csv.NewWriter(w)
	for _, m := range s.Meta {
		if err := cw.Write([]string{"meta", m.Name, m.Value}); err != nil {
			return err
		}
	}
	for _, c := range s.Clusters {
		if err := cw.Write([]string{"cluster", strconv.Itoa(c.ID), c.Name, strconv.Itoa(c.Hosts)}); err != nil {
			return err
		}
	}
	for i := range s.Tasks {
		t := &s.Tasks[i]
		rec := []string{"task", t.ID, t.Type, formatFloat(t.Start), formatFloat(t.End)}
		for _, a := range t.Allocations {
			for _, r := range a.Hosts {
				rec = append(rec, strconv.Itoa(a.Cluster), strconv.Itoa(r.Start), strconv.Itoa(r.N))
			}
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
