// Package jedxml reads and writes the Jedule XML schedule format shown in
// Figure 1 of the paper. A document has three sections:
//
//	<grid_schedule>
//	  <meta_info>                     schedule-level key/value pairs (§II-C.2)
//	    <meta name="..." value="..."/>
//	  </meta_info>
//	  <grid_info>                     the clusters (defined "in the header")
//	    <info name="nb_clusters" value="2"/>
//	    <clusters>
//	      <cluster id="0" hosts="8" name="cluster-0"/>
//	    </clusters>
//	  </grid_info>
//	  <node_infos>                    one node_statistics element per task
//	    <node_statistics>
//	      <node_property name="id" value="1"/>
//	      <node_property name="type" value="computation"/>
//	      <node_property name="start_time" value="0.000"/>
//	      <node_property name="end_time" value="0.310"/>
//	      <configuration>             one per cluster the task touches
//	        <conf_property name="cluster_id" value="0"/>
//	        <conf_property name="host_nb" value="8"/>
//	        <host_lists>
//	          <hosts start="0" nb="8"/>   possibly several (non-contiguous)
//	        </host_lists>
//	      </configuration>
//	    </node_statistics>
//	  </node_infos>
//	</grid_schedule>
//
// Additional node_property entries beyond the four standard ones round-trip
// into Task.Properties, which the interactive mode shows on click.
//
// The package also hosts the pluggable parser registry the paper promises
// ("one can also extend Jedule with a different parser"): see Register,
// Formats, and ReadFormat. A CSV parser is registered as "csv".
package jedxml

import (
	"encoding/xml"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"

	"repro/internal/core"
)

// xml document mirror types

type xmlDoc struct {
	XMLName xml.Name  `xml:"grid_schedule"`
	Meta    *xmlMeta  `xml:"meta_info"`
	Grid    xmlGrid   `xml:"grid_info"`
	Nodes   []xmlNode `xml:"node_infos>node_statistics"`
}

type xmlMeta struct {
	Entries []xmlKV `xml:"meta"`
}

type xmlKV struct {
	Name  string `xml:"name,attr"`
	Value string `xml:"value,attr"`
}

type xmlGrid struct {
	Infos    []xmlKV      `xml:"info"`
	Clusters []xmlCluster `xml:"clusters>cluster"`
}

type xmlCluster struct {
	ID    int    `xml:"id,attr"`
	Hosts int    `xml:"hosts,attr"`
	Name  string `xml:"name,attr,omitempty"`
}

type xmlNode struct {
	Properties []xmlKV   `xml:"node_property"`
	Configs    []xmlConf `xml:"configuration"`
}

type xmlConf struct {
	Properties []xmlKV    `xml:"conf_property"`
	Hosts      []xmlHosts `xml:"host_lists>hosts"`
}

type xmlHosts struct {
	Start int `xml:"start,attr"`
	Nb    int `xml:"nb,attr"`
}

// Read parses a Jedule XML document and validates the resulting schedule.
func Read(r io.Reader) (*core.Schedule, error) {
	var doc xmlDoc
	dec := xml.NewDecoder(r)
	if err := dec.Decode(&doc); err != nil {
		return nil, fmt.Errorf("jedxml: decode: %w", err)
	}
	s := &core.Schedule{}
	if doc.Meta != nil {
		for _, kv := range doc.Meta.Entries {
			s.Meta = append(s.Meta, core.Property{Name: kv.Name, Value: kv.Value})
		}
	}
	for _, c := range doc.Grid.Clusters {
		s.Clusters = append(s.Clusters, core.Cluster{ID: c.ID, Name: c.Name, Hosts: c.Hosts})
	}
	for i, n := range doc.Nodes {
		t := core.Task{}
		for _, p := range n.Properties {
			switch p.Name {
			case "id":
				t.ID = p.Value
			case "type":
				t.Type = p.Value
			case "start_time":
				v, err := strconv.ParseFloat(p.Value, 64)
				if err != nil {
					return nil, fmt.Errorf("jedxml: task %d: bad start_time %q: %w", i, p.Value, err)
				}
				t.Start = v
			case "end_time":
				v, err := strconv.ParseFloat(p.Value, 64)
				if err != nil {
					return nil, fmt.Errorf("jedxml: task %d: bad end_time %q: %w", i, p.Value, err)
				}
				t.End = v
			default:
				t.Properties = append(t.Properties, core.Property{Name: p.Name, Value: p.Value})
			}
		}
		for _, cf := range n.Configs {
			a := core.Allocation{Cluster: -1}
			for _, p := range cf.Properties {
				switch p.Name {
				case "cluster_id":
					v, err := strconv.Atoi(p.Value)
					if err != nil {
						return nil, fmt.Errorf("jedxml: task %q: bad cluster_id %q: %w", t.ID, p.Value, err)
					}
					a.Cluster = v
				case "host_nb":
					// informational; the host_lists entries are authoritative
				}
			}
			if a.Cluster < 0 {
				return nil, fmt.Errorf("jedxml: task %q: configuration without cluster_id", t.ID)
			}
			for _, h := range cf.Hosts {
				a.Hosts = append(a.Hosts, core.HostRange{Start: h.Start, N: h.Nb})
			}
			t.Allocations = append(t.Allocations, a)
		}
		s.Tasks = append(s.Tasks, t)
	}
	if err := s.Validate(); err != nil {
		return nil, fmt.Errorf("jedxml: invalid schedule: %w", err)
	}
	return s, nil
}

// Write serializes the schedule as an indented Jedule XML document.
func Write(w io.Writer, s *core.Schedule) error {
	if err := s.Validate(); err != nil {
		return fmt.Errorf("jedxml: refusing to write invalid schedule: %w", err)
	}
	doc := xmlDoc{}
	if len(s.Meta) > 0 {
		doc.Meta = &xmlMeta{}
		for _, p := range s.Meta {
			doc.Meta.Entries = append(doc.Meta.Entries, xmlKV{p.Name, p.Value})
		}
	}
	doc.Grid.Infos = []xmlKV{{Name: "nb_clusters", Value: strconv.Itoa(len(s.Clusters))}}
	for _, c := range s.Clusters {
		doc.Grid.Clusters = append(doc.Grid.Clusters, xmlCluster{ID: c.ID, Hosts: c.Hosts, Name: c.Name})
	}
	for i := range s.Tasks {
		t := &s.Tasks[i]
		n := xmlNode{Properties: []xmlKV{
			{"id", t.ID},
			{"type", t.Type},
			{"start_time", formatFloat(t.Start)},
			{"end_time", formatFloat(t.End)},
		}}
		for _, p := range t.Properties {
			n.Properties = append(n.Properties, xmlKV{p.Name, p.Value})
		}
		for _, a := range t.Allocations {
			cf := xmlConf{Properties: []xmlKV{
				{"cluster_id", strconv.Itoa(a.Cluster)},
				{"host_nb", strconv.Itoa(a.HostCount())},
			}}
			for _, r := range a.Hosts {
				cf.Hosts = append(cf.Hosts, xmlHosts{Start: r.Start, Nb: r.N})
			}
			n.Configs = append(n.Configs, cf)
		}
		doc.Nodes = append(doc.Nodes, n)
	}
	if _, err := io.WriteString(w, xml.Header); err != nil {
		return err
	}
	enc := xml.NewEncoder(w)
	enc.Indent("", "  ")
	if err := enc.Encode(doc); err != nil {
		return fmt.Errorf("jedxml: encode: %w", err)
	}
	_, err := io.WriteString(w, "\n")
	return err
}

// formatFloat prints the shortest decimal string that round-trips to the
// same float64, so Write/Read round-trips are exact.
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// ReadFile loads and parses a schedule file.
func ReadFile(path string) (*core.Schedule, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Read(f)
}

// WriteFile serializes the schedule to a file.
func WriteFile(path string, s *core.Schedule) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := Write(f, s); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ParserFunc turns a byte stream into a schedule. Implementations of custom
// input formats register themselves under a format name.
type ParserFunc func(io.Reader) (*core.Schedule, error)

var parsers = map[string]ParserFunc{}

// Register installs a named parser. Registering an existing name replaces
// the previous parser.
func Register(name string, p ParserFunc) {
	parsers[name] = p
}

// Formats lists the registered parser names, sorted.
func Formats() []string {
	out := make([]string, 0, len(parsers))
	for k := range parsers {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// ReadFormat parses with the named registered parser.
func ReadFormat(name string, r io.Reader) (*core.Schedule, error) {
	p, ok := parsers[name]
	if !ok {
		return nil, fmt.Errorf("jedxml: unknown input format %q (have %v)", name, Formats())
	}
	return p(r)
}

func init() {
	Register("jedule", Read)
	Register("csv", ReadCSV)
}
