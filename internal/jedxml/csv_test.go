package jedxml

import (
	"bytes"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"repro/internal/core"
)

const sampleCSV = `# demo schedule
meta,algorithm,cpa
cluster,0,front,4
cluster,1,back,2
task,t1,computation,0,1.5,0,0,4
task,t2,transfer,1.5,2,0,0,1,1,0,1
task,t3,computation,2,3,1,0,2
`

func TestReadCSV(t *testing.T) {
	s, err := ReadCSV(strings.NewReader(sampleCSV))
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Clusters) != 2 || len(s.Tasks) != 3 {
		t.Fatalf("parsed %d clusters, %d tasks", len(s.Clusters), len(s.Tasks))
	}
	if s.MetaValue("algorithm") != "cpa" {
		t.Error("meta lost")
	}
	t2 := s.Task("t2")
	if t2 == nil || len(t2.Allocations) != 2 {
		t.Fatalf("t2 = %+v", t2)
	}
	if t2.Allocations[1].Cluster != 1 {
		t.Errorf("t2 second allocation = %+v", t2.Allocations[1])
	}
}

func TestCSVRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	for i := 0; i < 60; i++ {
		s := randomSchedule(r)
		// CSV drops task properties; strip them for comparison.
		for j := range s.Tasks {
			s.Tasks[j].Properties = nil
		}
		var buf bytes.Buffer
		if err := WriteCSV(&buf, s); err != nil {
			t.Fatalf("iter %d: %v", i, err)
		}
		back, err := ReadCSV(&buf)
		if err != nil {
			t.Fatalf("iter %d: %v", i, err)
		}
		if !reflect.DeepEqual(back, s) {
			t.Fatalf("iter %d mismatch:\n got %+v\nwant %+v", i, back, s)
		}
	}
}

func TestCSVErrors(t *testing.T) {
	cases := []struct{ name, doc, wants string }{
		{"unknown kind", "bogus,1,2\n", "unknown record kind"},
		{"short meta", "meta,onlyname\n", "meta needs"},
		{"short cluster", "cluster,0,x\n", "cluster needs"},
		{"bad cluster id", "cluster,x,c,4\n", "bad cluster numbers"},
		{"short task", "cluster,0,c,4\ntask,t,x,0,1\n", "task needs"},
		{"bad times", "cluster,0,c,4\ntask,t,x,zero,1,0,0,1\n", "bad task times"},
		{"bad alloc", "cluster,0,c,4\ntask,t,x,0,1,0,zero,1\n", "bad allocation numbers"},
		{"invalid sched", "cluster,0,c,4\ntask,t,x,0,1,0,0,9\n", "invalid schedule"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ReadCSV(strings.NewReader(tc.doc))
			if err == nil || !strings.Contains(err.Error(), tc.wants) {
				t.Fatalf("err = %v, want containing %q", err, tc.wants)
			}
		})
	}
}

func TestWriteCSVRejectsInvalid(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteCSV(&buf, &core.Schedule{}); err == nil {
		t.Fatal("WriteCSV accepted an invalid schedule")
	}
}
