package random

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/dag"
	"repro/internal/platform"
	"repro/internal/sched"
)

func testGraph(t *testing.T) *dag.Graph {
	t.Helper()
	return dag.Generate(dag.ShapeRandom, dag.DefaultGenOptions(25), rand.New(rand.NewSource(42)))
}

func TestRegistered(t *testing.T) {
	s, err := sched.Lookup("random")
	if err != nil {
		t.Fatal(err)
	}
	if s.Name() != "random" {
		t.Fatalf("name = %q", s.Name())
	}
}

func TestScheduleIsValid(t *testing.T) {
	g := testGraph(t)
	p := platform.Homogeneous(8, 1e9)
	res, err := New(3).Schedule(g, p)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Validate(); err != nil {
		t.Fatal(err)
	}
	if res.Makespan <= 0 {
		t.Fatalf("makespan = %g", res.Makespan)
	}
	if res.Meta["seed"] != "3" {
		t.Fatalf("seed meta = %q", res.Meta["seed"])
	}
	// Every task is sequential: exactly one host.
	for i, a := range res.Assignments {
		if len(a.Hosts) != 1 {
			t.Fatalf("node %d on %d hosts", i, len(a.Hosts))
		}
	}
}

func TestDeterministicPerSeed(t *testing.T) {
	g := testGraph(t)
	p := platform.Homogeneous(8, 1e9)
	r1, err := New(1).Schedule(g, p)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := New(1).Schedule(g, p)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r1.Assignments, r2.Assignments) {
		t.Fatal("same seed produced different plans")
	}
	r3, err := New(99).Schedule(g, p)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(r1.Assignments, r3.Assignments) {
		t.Fatal("different seeds produced identical plans (suspicious for 25 tasks on 8 hosts)")
	}
}

func TestRespectsPrecedence(t *testing.T) {
	// A chain must come out strictly ordered even with random placement.
	g := dag.Generate(dag.ShapeSerial, dag.DefaultGenOptions(10), rand.New(rand.NewSource(1)))
	p := platform.Homogeneous(4, 1e9)
	res, err := New(7).Schedule(g, p)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range g.Edges() {
		if res.Assignments[e.To.ID].Start < res.Assignments[e.From.ID].Finish {
			t.Fatalf("edge %d->%d violated", e.From.ID, e.To.ID)
		}
	}
}
