// Package random implements the uniform-random baseline scheduler: every
// task is a sequential task placed on one host drawn uniformly at random.
// It exists as a sanity floor for campaigns and for sessions created over
// the REST API — any algorithm that cannot beat a random host pick is not
// doing useful work.
//
// The baseline is deterministic for a fixed seed: a fresh rng is created
// per Schedule call, so repeated runs over the same graph produce the same
// plan regardless of what ran before.
package random

import (
	"fmt"
	"math/rand"
	"strconv"

	"repro/internal/dag"
	"repro/internal/platform"
	"repro/internal/sched"
)

func init() {
	sched.Register(New(1))
}

// Baseline is the random scheduler with a fixed seed.
type Baseline struct {
	seed int64
}

// New returns a random baseline scheduler seeded deterministically.
func New(seed int64) *Baseline { return &Baseline{seed: seed} }

// Name implements sched.Scheduler.
func (b *Baseline) Name() string { return "random" }

// Schedule walks the graph in topological order and places each task on a
// uniformly chosen host, starting it no earlier than its data-ready time
// (predecessor finish plus communication over the platform's route model)
// in the earliest gap of that host's timeline.
func (b *Baseline) Schedule(g *dag.Graph, p *platform.Platform) (*sched.Result, error) {
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("random: %w", err)
	}
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("random: %w", err)
	}
	order, err := g.TopoOrder()
	if err != nil {
		return nil, fmt.Errorf("random: %w", err)
	}
	rng := rand.New(rand.NewSource(b.seed))
	hosts := p.Hosts()
	res := sched.NewResult(b.Name(), g, p)
	res.SetMeta("seed", strconv.FormatInt(b.seed, 10))
	tl := sched.NewTimeline(p.NumHosts())
	for _, nd := range order {
		h := hosts[rng.Intn(len(hosts))]
		ready := 0.0
		for _, e := range nd.Preds() {
			pred := res.Assignments[e.From.ID]
			ct, err := p.CommTime(pred.Hosts[0], h.Global, e.Bytes)
			if err != nil {
				return nil, fmt.Errorf("random: %w", err)
			}
			if t := pred.Finish + ct; t > ready {
				ready = t
			}
		}
		dur := nd.Work / h.Speed
		start := tl.EarliestGap(h.Global, ready, dur)
		tl.Reserve(h.Global, start, start+dur)
		res.Assignments[nd.ID] = sched.Assignment{
			Hosts: []int{h.Global}, Start: start, Finish: start + dur,
		}
		if start+dur > res.Makespan {
			res.Makespan = start + dur
		}
	}
	return res, nil
}
