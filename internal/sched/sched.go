// Package sched defines the common scheduler abstraction shared by the
// algorithm packages beneath it (cpa, cra, heft): a Scheduler interface
// producing a unified Result, a name-based registry through which campaigns,
// commands, and benchmarks select algorithms, and the scheduling toolkit the
// algorithms share — rank/bottom-level computation over task graphs and a
// per-host timeline with sorted-interval gap insertion.
//
// Algorithm packages register themselves from their init functions; importing
// repro/internal/sched/all (usually with a blank import) pulls in every
// built-in algorithm and makes sched.List() complete.
package sched

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/dag"
	"repro/internal/platform"
)

// Scheduler is the common interface every scheduling algorithm implements:
// plan the execution of one task graph on one platform.
type Scheduler interface {
	// Name returns the registry name (e.g. "cpa", "heft").
	Name() string
	// Schedule plans the graph on the platform and returns a unified result.
	Schedule(g *dag.Graph, p *platform.Platform) (*Result, error)
}

// Func adapts a plain function plus a name into a Scheduler.
type Func struct {
	Algo string
	Run  func(g *dag.Graph, p *platform.Platform) (*Result, error)
}

// Name implements Scheduler.
func (f Func) Name() string { return f.Algo }

// Schedule implements Scheduler.
func (f Func) Schedule(g *dag.Graph, p *platform.Platform) (*Result, error) {
	return f.Run(g, p)
}

var (
	registryMu sync.RWMutex
	registry   = map[string]Scheduler{}
)

// Register adds a scheduler under its Name. It panics on an empty name or a
// duplicate registration — both are programming errors in an algorithm
// package's init.
func Register(s Scheduler) {
	name := s.Name()
	if name == "" {
		panic("sched: Register with empty name")
	}
	registryMu.Lock()
	defer registryMu.Unlock()
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("sched: duplicate registration of %q", name))
	}
	registry[name] = s
}

// Lookup returns the scheduler registered under name.
func Lookup(name string) (Scheduler, error) {
	registryMu.RLock()
	defer registryMu.RUnlock()
	s, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("sched: unknown scheduler %q (registered: %v)", name, listLocked())
	}
	return s, nil
}

// LookupAll resolves a list of names, failing on the first unknown one.
func LookupAll(names []string) ([]Scheduler, error) {
	out := make([]Scheduler, len(names))
	for i, n := range names {
		s, err := Lookup(n)
		if err != nil {
			return nil, err
		}
		out[i] = s
	}
	return out, nil
}

// List returns the registered scheduler names, sorted.
func List() []string {
	registryMu.RLock()
	defer registryMu.RUnlock()
	return listLocked()
}

func listLocked() []string {
	out := make([]string, 0, len(registry))
	for name := range registry {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}
