package cpa

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/dag"
	"repro/internal/platform"
	"repro/internal/sched"
	"repro/internal/sim"
)

func cluster(n int) *platform.Platform { return platform.Homogeneous(n, 1e9) }

func TestVariantString(t *testing.T) {
	if CPA.String() != "cpa" || MCPA.String() != "mcpa" || MCPA2.String() != "mcpa2" {
		t.Fatal("variant strings")
	}
	if Variant(9).String() != "variant(?)" {
		t.Fatal("unknown variant string")
	}
}

func TestAllocationGrowsCriticalPath(t *testing.T) {
	// A chain is all critical path: allocations must grow beyond 1.
	g := dag.Generate(dag.ShapeSerial, dag.DefaultGenOptions(10), rand.New(rand.NewSource(1)))
	res, err := Schedule(g, cluster(16), CPA)
	if err != nil {
		t.Fatal(err)
	}
	grew := false
	for _, a := range res.Alloc {
		if a < 1 || a > 16 {
			t.Fatalf("allocation %d out of range", a)
		}
		if a > 1 {
			grew = true
		}
	}
	if !grew {
		t.Fatal("CPA never grew any allocation on a pure chain")
	}
	// On a chain T_A is tiny relative to T_CP until allocations grow; the
	// loop must terminate with TCP <= TA or saturated allocations.
	if res.TCP > res.TA {
		for _, a := range res.Alloc {
			if a < 16 {
				// Not saturated but stopped: the serial fraction made
				// further growth useless (gain 0 is never selected).
				break
			}
		}
	}
}

func TestMCPALevelCapRespected(t *testing.T) {
	P := 16
	g := dag.ImbalancedLayer(5, 10)
	res, err := Schedule(g, cluster(P), MCPA)
	if err != nil {
		t.Fatal(err)
	}
	perLevel, err := MaxAllocPerLevel(g, res.Alloc)
	if err != nil {
		t.Fatal(err)
	}
	for level, total := range perLevel {
		if total > P {
			t.Fatalf("MCPA level %d allocates %d > %d processors", level, total, P)
		}
	}
	// CPA on the same DAG is allowed to oversubscribe a level.
	resCPA, err := Schedule(g, cluster(P), CPA)
	if err != nil {
		t.Fatal(err)
	}
	perLevelCPA, _ := MaxAllocPerLevel(g, resCPA.Alloc)
	if perLevelCPA[1] <= P {
		t.Logf("note: CPA level allocation %d did not exceed P on this instance", perLevelCPA[1])
	}
}

// TestFigure4Scenario reproduces the paper's Figure 4 finding: on a DAG
// whose middle layer has tasks of very different costs, MCPA's level cap
// produces a load-imbalance hole, CPA exploits the cluster better, and the
// MCPA2 poly-algorithm recovers CPA's schedule.
func TestFigure4Scenario(t *testing.T) {
	// Layer width close to the cluster size: MCPA's per-level cap then
	// pins the expensive task to very few processors.
	P := 16
	g := dag.ImbalancedLayer(14, 10)
	p := cluster(P)

	resCPA, err := Schedule(g, p, CPA)
	if err != nil {
		t.Fatal(err)
	}
	resMCPA, err := Schedule(g, p, MCPA)
	if err != nil {
		t.Fatal(err)
	}
	simCPA, err := Execute(resCPA, p)
	if err != nil {
		t.Fatal(err)
	}
	simMCPA, err := Execute(resMCPA, p)
	if err != nil {
		t.Fatal(err)
	}
	// CPA finishes earlier...
	if simCPA.Makespan >= simMCPA.Makespan {
		t.Fatalf("CPA makespan %g should beat MCPA %g on the imbalanced layer",
			simCPA.Makespan, simMCPA.Makespan)
	}
	// ...and uses the cluster better (fewer idle holes).
	utilCPA := simCPA.Schedule.ComputeStats().Utilization
	utilMCPA := simMCPA.Schedule.ComputeStats().Utilization
	if utilCPA <= utilMCPA {
		t.Fatalf("CPA utilization %.3f should exceed MCPA %.3f", utilCPA, utilMCPA)
	}
	// MCPA2 picks CPA here ("generates the same schedule as CPA").
	res2, err := Schedule(g, p, MCPA2)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Chosen != CPA {
		t.Fatalf("MCPA2 chose %v, want CPA", res2.Chosen)
	}
	if math.Abs(res2.Makespan-resCPA.Makespan) > 1e-9 {
		t.Fatalf("MCPA2 makespan %g != CPA %g", res2.Makespan, resCPA.Makespan)
	}
}

// Structural safety on random DAGs of every shape.
func TestScheduleInvariantsProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	shapes := []dag.Shape{dag.ShapeSerial, dag.ShapeWide, dag.ShapeLong, dag.ShapeRandom, dag.ShapeForkJoin}
	for iter := 0; iter < 20; iter++ {
		shape := shapes[iter%len(shapes)]
		g := dag.Generate(shape, dag.DefaultGenOptions(10+rng.Intn(30)), rng)
		P := 4 + rng.Intn(28)
		p := cluster(P)
		for _, variant := range []Variant{CPA, MCPA, MCPA2} {
			res, err := Schedule(g, p, variant)
			if err != nil {
				t.Fatalf("iter %d %v: %v", iter, variant, err)
			}
			// Allocation bounds.
			for id, a := range res.Alloc {
				if a < 1 || a > P {
					t.Fatalf("iter %d %v: alloc[%d]=%d", iter, variant, id, a)
				}
			}
			// Virtual execution respects everything (Execute validates).
			wr, err := Execute(res, p)
			if err != nil {
				t.Fatalf("iter %d %v: %v", iter, variant, err)
			}
			if err := wr.Schedule.Validate(); err != nil {
				t.Fatalf("iter %d %v: %v", iter, variant, err)
			}
			// The simulated makespan can never beat max(TCP at alloc, 0)
			// by more than numerical noise... it must be >= the critical
			// path under the chosen allocation.
			if wr.Makespan < res.TCP-1e-6 {
				t.Fatalf("iter %d %v: makespan %g below critical path %g",
					iter, variant, wr.Makespan, res.TCP)
			}
			// MCPA's invariant: a level never exceeds P unless it holds
			// more than P tasks (each task needs at least one processor).
			if variant == MCPA {
				perLevel, _ := MaxAllocPerLevel(g, res.Alloc)
				sets, _ := g.LevelSets()
				for level, total := range perLevel {
					cap := P
					if w := len(sets[level]); w > cap {
						cap = w
					}
					if total > cap {
						t.Fatalf("iter %d: MCPA level %d allocates %d > %d", iter, level, total, cap)
					}
				}
			}
		}
	}
}

func TestMCPA2NeverWorse(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for iter := 0; iter < 10; iter++ {
		g := dag.Generate(dag.ShapeRandom, dag.DefaultGenOptions(25), rng)
		p := cluster(16)
		a, _ := Schedule(g, p, CPA)
		b, _ := Schedule(g, p, MCPA)
		c, err := Schedule(g, p, MCPA2)
		if err != nil {
			t.Fatal(err)
		}
		best := math.Min(a.Makespan, b.Makespan)
		if c.Makespan > best+1e-9 {
			t.Fatalf("MCPA2 makespan %g worse than best(%g, %g)", c.Makespan, a.Makespan, b.Makespan)
		}
	}
}

func TestScheduleErrors(t *testing.T) {
	g := dag.Generate(dag.ShapeRandom, dag.DefaultGenOptions(10), rand.New(rand.NewSource(1)))
	multi := platform.Figure7(platform.Figure7FlawedLatency)
	if _, err := Schedule(g, multi, CPA); err == nil {
		t.Error("multi-cluster platform accepted")
	}
	bad := dag.New("bad")
	n1 := bad.AddNode("a", "x", 1, 0)
	n2 := bad.AddNode("b", "x", 1, 0)
	bad.AddEdge(n1, n2, 0)
	bad.AddEdge(n2, n1, 0)
	if _, err := Schedule(bad, cluster(4), CPA); err == nil {
		t.Error("cyclic graph accepted")
	}
	if _, err := Schedule(g, cluster(4), Variant(42)); err == nil {
		t.Error("unknown variant accepted")
	}
}

func TestLowerBound(t *testing.T) {
	res := &Result{TCP: 10, TA: 20}
	if LowerBound(res) != 20 {
		t.Fatal("lower bound should be max(TCP, TA)")
	}
}

func TestPickEarliestHosts(t *testing.T) {
	// Host selection now goes through the shared timeline's tail times.
	tl := sched.NewTimeline(4)
	tl.Reserve(0, 0, 5)
	tl.Reserve(1, 0, 1)
	tl.Reserve(2, 0, 3)
	tl.Reserve(3, 0, 1)
	got := tl.EarliestHosts(2)
	if len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Fatalf("picked %v, want [1 3]", got)
	}
	// Overask clamps to all hosts.
	if got := tl.EarliestHosts(10); len(got) != 4 {
		t.Fatal("overask not clamped")
	}
}

var _ = sim.ExecOptions{} // keep the import obvious for readers
