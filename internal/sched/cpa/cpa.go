// Package cpa implements the two-step mixed-parallel scheduling algorithms
// of the paper's first case study (section III): CPA (Critical Path and
// Area-based scheduling, Radulescu & van Gemund), MCPA (modified CPA,
// Bansal et al.), and the MCPA2 poly-algorithm (Hunold) that picks whichever
// of the two produces the better schedule for the given DAG and platform.
//
// Both algorithms decouple the problem:
//
//	allocation phase — choose a processor count p(v) for every moldable
//	task, growing allocations of critical-path tasks while the critical
//	path T_CP exceeds the average area T_A = (1/P) Σ T(v,p(v))·p(v);
//
//	mapping phase — list-schedule the tasks with their fixed allocations
//	onto the homogeneous cluster by decreasing bottom level, picking for
//	each task the p(v) hosts that become free earliest.
//
// MCPA differs only in the allocation phase: it refuses to grow a task's
// allocation when the total allocation of its precedence level would exceed
// the cluster size, preserving task parallelism within a level — the very
// behavior whose failure mode (load imbalance under unequal sibling costs)
// Figure 4 of the paper exposes.
package cpa

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/dag"
	"repro/internal/platform"
	"repro/internal/sched"
	"repro/internal/sim"
)

func init() {
	for _, v := range []Variant{CPA, MCPA, MCPA2} {
		sched.Register(variantScheduler{v})
	}
}

// variantScheduler adapts one Variant to the sched.Scheduler interface.
type variantScheduler struct{ v Variant }

func (s variantScheduler) Name() string { return s.v.String() }

func (s variantScheduler) Schedule(g *dag.Graph, p *platform.Platform) (*sched.Result, error) {
	res, err := Schedule(g, p, s.v)
	if err != nil {
		return nil, err
	}
	return res.Unified(), nil
}

// Variant selects the allocation strategy.
type Variant int

const (
	// CPA is the original Critical Path and Area-based algorithm.
	CPA Variant = iota
	// MCPA caps per-precedence-level allocations at the cluster size.
	MCPA
	// MCPA2 runs both and keeps the schedule with the smaller predicted
	// makespan (the paper's poly-algorithm).
	MCPA2
)

func (v Variant) String() string {
	switch v {
	case CPA:
		return "cpa"
	case MCPA:
		return "mcpa"
	case MCPA2:
		return "mcpa2"
	default:
		return "variant(?)"
	}
}

// Result is a complete two-step scheduling outcome.
type Result struct {
	Variant  Variant
	Chosen   Variant // for MCPA2: which variant won; otherwise == Variant
	Alloc    []int   // processors per node ID
	TCP, TA  float64 // lower bounds after allocation
	Makespan float64 // predicted by the mapping phase

	unified *sched.Result
}

// Unified returns the result in the common scheduler format: per-node
// assignment with planned start/finish times, ready for campaign and
// registry use.
func (r *Result) Unified() *sched.Result { return r.unified }

// Planned converts the mapping into simulator tasks.
func (r *Result) Planned() []sim.PlannedTask { return r.unified.Planned() }

// Schedule runs the selected variant for the graph on a homogeneous
// cluster described by the platform's first cluster.
func Schedule(g *dag.Graph, p *platform.Platform, variant Variant) (*Result, error) {
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("cpa: %w", err)
	}
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("cpa: %w", err)
	}
	if len(p.Clusters) != 1 {
		return nil, fmt.Errorf("cpa: CPA/MCPA target a single homogeneous cluster, platform has %d", len(p.Clusters))
	}
	switch variant {
	case CPA, MCPA:
		alloc, tcp, ta, err := allocate(g, p, variant == MCPA)
		if err != nil {
			return nil, err
		}
		unified, err := mapTasks(g, p, alloc, variant.String())
		if err != nil {
			return nil, err
		}
		unified.SetMeta("tcp", fmt.Sprintf("%.3f", tcp))
		unified.SetMeta("ta", fmt.Sprintf("%.3f", ta))
		return &Result{
			Variant: variant, Chosen: variant, Alloc: alloc,
			TCP: tcp, TA: ta,
			Makespan: unified.Makespan, unified: unified,
		}, nil
	case MCPA2:
		a, err := Schedule(g, p, CPA)
		if err != nil {
			return nil, err
		}
		b, err := Schedule(g, p, MCPA)
		if err != nil {
			return nil, err
		}
		best := a
		if b.Makespan < a.Makespan {
			best = b
		}
		out := *best
		out.Variant = MCPA2
		u := *best.unified
		u.Algorithm = MCPA2.String()
		u.Meta = map[string]string{"chosen": best.Chosen.String()}
		for k, v := range best.unified.Meta {
			u.Meta[k] = v
		}
		out.unified = &u
		return &out, nil
	default:
		return nil, fmt.Errorf("cpa: unknown variant %d", variant)
	}
}

// allocate is the allocation phase shared by CPA and MCPA.
func allocate(g *dag.Graph, p *platform.Platform, levelCap bool) (alloc []int, tcp, ta float64, err error) {
	P := p.NumHosts()
	speed := p.Hosts()[0].Speed
	n := g.Len()
	alloc = make([]int, n)
	for i := range alloc {
		alloc[i] = 1
	}
	var levels []int
	levelAlloc := map[int]int{}
	if levelCap {
		levels, err = g.Levels()
		if err != nil {
			return nil, 0, 0, err
		}
		for _, n := range g.Nodes() {
			levelAlloc[levels[n.ID]] += 1
		}
	}
	timeOf := func(nd *dag.Node) float64 { return nd.Time(alloc[nd.ID], speed) }
	area := func() float64 {
		var sum float64
		for _, nd := range g.Nodes() {
			sum += timeOf(nd) * float64(alloc[nd.ID])
		}
		return sum / float64(P)
	}
	for {
		var path []int
		tcp, path, err = g.CriticalPath(timeOf)
		if err != nil {
			return nil, 0, 0, err
		}
		ta = area()
		if tcp <= ta {
			break
		}
		// Pick the critical-path task whose extra processor shortens it
		// the most, subject to the variant's constraints.
		best := -1
		bestGain := 0.0
		for _, id := range path {
			nd := g.Nodes()[id]
			if alloc[id] >= P {
				continue
			}
			if levelCap && levelAlloc[levels[id]]+1 > P {
				continue // MCPA: level is saturated
			}
			gain := nd.Time(alloc[id], speed) - nd.Time(alloc[id]+1, speed)
			if gain > bestGain {
				bestGain = gain
				best = id
			}
		}
		if best < 0 {
			break // nothing can grow: CP stays above TA
		}
		alloc[best]++
		if levelCap {
			levelAlloc[levels[best]]++
		}
	}
	return alloc, tcp, ta, nil
}

// mapTasks is the mapping phase: bottom-level list scheduling with
// earliest-available host selection, built on the shared sched toolkit
// (bottom levels + host timeline).
func mapTasks(g *dag.Graph, p *platform.Platform, alloc []int, algorithm string) (*sched.Result, error) {
	speed := p.Hosts()[0].Speed
	// Bottom levels with allocated times (communication excluded).
	blevel, err := sched.BottomLevels(g, func(nd *dag.Node) float64 {
		return nd.Time(alloc[nd.ID], speed)
	})
	if err != nil {
		return nil, err
	}

	tl := sched.NewTimeline(p.NumHosts())
	res := sched.NewResult(algorithm, g, p)
	pendingPreds := make([]int, g.Len())
	readyAt := make([]float64, g.Len())
	for _, nd := range g.Nodes() {
		pendingPreds[nd.ID] = len(nd.Preds())
	}
	var ready []*dag.Node
	for _, nd := range g.Nodes() {
		if pendingPreds[nd.ID] == 0 {
			ready = append(ready, nd)
		}
	}
	scheduled := 0
	for scheduled < g.Len() {
		if len(ready) == 0 {
			return nil, fmt.Errorf("cpa: mapping deadlock (cycle?)")
		}
		// Highest bottom level first.
		sort.SliceStable(ready, func(i, j int) bool { return blevel[ready[i].ID] > blevel[ready[j].ID] })
		nd := ready[0]
		ready = ready[1:]

		// Moldable tasks hold all their hosts for the whole duration, so the
		// tail free time is the binding constraint (no reusable gaps open up
		// behind a task the way they do for HEFT's sequential tasks).
		hosts := tl.EarliestHosts(alloc[nd.ID])
		start := readyAt[nd.ID]
		for _, h := range hosts {
			if f := tl.FreeAt(h); f > start {
				start = f
			}
		}
		end := start + nd.Time(len(hosts), speed)
		tl.ReserveAll(hosts, start, end)
		res.Assignments[nd.ID] = sched.Assignment{Hosts: hosts, Start: start, Finish: end}
		if end > res.Makespan {
			res.Makespan = end
		}
		scheduled++
		for _, e := range nd.Succs() {
			// Data availability: the redistribution target is unknown until
			// the successor is mapped, so the mapping phase counts only the
			// predecessor's finish; the simulator charges the exact
			// transfer during execution.
			if end > readyAt[e.To.ID] {
				readyAt[e.To.ID] = end
			}
			pendingPreds[e.To.ID]--
			if pendingPreds[e.To.ID] == 0 {
				ready = append(ready, e.To)
			}
		}
	}
	return res, nil
}

// Execute runs the planned schedule on the simulator (the SimGrid
// substitute) and returns the trace with algorithm meta data attached.
func Execute(res *Result, p *platform.Platform) (*sim.WorkflowResult, error) {
	wr, err := sim.Execute(p, res.Planned(), sim.ExecOptions{})
	if err != nil {
		return nil, err
	}
	wr.Schedule.SetMeta("algorithm", res.Chosen.String())
	wr.Schedule.SetMeta("tcp", fmt.Sprintf("%.3f", res.TCP))
	wr.Schedule.SetMeta("ta", fmt.Sprintf("%.3f", res.TA))
	return wr, nil
}

// MaxAllocPerLevel returns, per precedence level, the total processors
// allocated — the quantity MCPA constrains.
func MaxAllocPerLevel(g *dag.Graph, alloc []int) (map[int]int, error) {
	levels, err := g.Levels()
	if err != nil {
		return nil, err
	}
	out := map[int]int{}
	for _, nd := range g.Nodes() {
		out[levels[nd.ID]] += alloc[nd.ID]
	}
	return out, nil
}

// LowerBound returns max(T_CP, T_A), the classic lower bound on the
// makespan of a schedule with the given allocation.
func LowerBound(res *Result) float64 { return math.Max(res.TCP, res.TA) }
