package minmin

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/dag"
	"repro/internal/platform"
	"repro/internal/sched"
)

func lookup(t *testing.T, name string) sched.Scheduler {
	t.Helper()
	s, err := sched.Lookup(name)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestRegistered(t *testing.T) {
	for _, name := range []string{"minmin", "maxmin"} {
		if s := lookup(t, name); s.Name() != name {
			t.Fatalf("Name() = %q, want %q", s.Name(), name)
		}
	}
}

func TestValidSchedules(t *testing.T) {
	p := platform.Homogeneous(8, 1e9)
	for _, name := range []string{"minmin", "maxmin"} {
		s := lookup(t, name)
		for _, shape := range []dag.Shape{dag.ShapeSerial, dag.ShapeWide, dag.ShapeRandom, dag.ShapeForkJoin} {
			g := dag.Generate(shape, dag.DefaultGenOptions(25), rand.New(rand.NewSource(3)))
			res, err := s.Schedule(g, p)
			if err != nil {
				t.Fatalf("%s/%s: %v", name, shape, err)
			}
			if err := res.Validate(); err != nil {
				t.Fatalf("%s/%s: invalid plan: %v", name, shape, err)
			}
			if res.Makespan <= 0 {
				t.Fatalf("%s/%s: makespan %g", name, shape, res.Makespan)
			}
		}
	}
}

func TestDeterministic(t *testing.T) {
	p := platform.Homogeneous(6, 1e9)
	g := dag.Generate(dag.ShapeRandom, dag.DefaultGenOptions(30), rand.New(rand.NewSource(9)))
	for _, name := range []string{"minmin", "maxmin"} {
		s := lookup(t, name)
		a, err := s.Schedule(g, p)
		if err != nil {
			t.Fatal(err)
		}
		b, err := s.Schedule(g, p)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a.Assignments, b.Assignments) {
			t.Fatalf("%s is nondeterministic", name)
		}
	}
}

// TestHeuristicsDiffer pins that the two selection rules actually produce
// different plans on a graph with heterogeneous task sizes.
func TestHeuristicsDiffer(t *testing.T) {
	p := platform.Homogeneous(4, 1e9)
	opt := dag.DefaultGenOptions(40)
	opt.WorkMin, opt.WorkMax = 1e9, 50e9 // widen the task-size spread
	g := dag.Generate(dag.ShapeWide, opt, rand.New(rand.NewSource(4)))
	a, err := lookup(t, "minmin").Schedule(g, p)
	if err != nil {
		t.Fatal(err)
	}
	b, err := lookup(t, "maxmin").Schedule(g, p)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a.Assignments, b.Assignments) {
		t.Fatal("minmin and maxmin chose identical plans")
	}
}

// TestSerialChainMatchesWork pins correctness on the degenerate chain: one
// task runs at a time, so the makespan is the summed work over the speed.
func TestSerialChainMatchesWork(t *testing.T) {
	p := platform.Homogeneous(4, 1e9)
	g := dag.Generate(dag.ShapeSerial, dag.DefaultGenOptions(12), rand.New(rand.NewSource(2)))
	want := 0.0
	for _, nd := range g.Nodes() {
		want += nd.Work / 1e9
	}
	for _, name := range []string{"minmin", "maxmin"} {
		res, err := lookup(t, name).Schedule(g, p)
		if err != nil {
			t.Fatal(err)
		}
		// Communication can only delay starts beyond pure compute time.
		if res.Makespan < want-1e-6 {
			t.Fatalf("%s: makespan %g below serial work %g", name, res.Makespan, want)
		}
	}
}
