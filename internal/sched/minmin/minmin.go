// Package minmin implements the classic min-min and max-min list
// scheduling heuristics over task DAGs. Both repeatedly compute, for every
// ready task (all predecessors placed), the best achievable Earliest Finish
// Time across all hosts — min-min then schedules the task that can finish
// soonest (greedy short-first), while max-min schedules the task whose best
// finish is latest (long tasks first, so stragglers don't dominate the
// tail). Data-ready times follow the platform's route model and placement
// uses the shared gap-inserting timeline, exactly like the HEFT
// implementation, which makes the three heuristics directly comparable in
// campaigns.
package minmin

import (
	"fmt"

	"repro/internal/dag"
	"repro/internal/platform"
	"repro/internal/sched"
)

func init() {
	sched.Register(sched.Func{Algo: "minmin", Run: run("minmin", false)})
	sched.Register(sched.Func{Algo: "maxmin", Run: run("maxmin", true)})
}

// placement is one candidate (task, host) decision.
type placement struct {
	host          int
	start, finish float64
}

// run builds the scheduler body shared by both heuristics; max selects
// max-min's largest-best-EFT rule.
func run(name string, max bool) func(g *dag.Graph, p *platform.Platform) (*sched.Result, error) {
	return func(g *dag.Graph, p *platform.Platform) (*sched.Result, error) {
		if err := g.Validate(); err != nil {
			return nil, fmt.Errorf("%s: %w", name, err)
		}
		if err := p.Validate(); err != nil {
			return nil, fmt.Errorf("%s: %w", name, err)
		}
		n := g.Len()
		res := sched.NewResult(name, g, p)
		tl := sched.NewTimeline(p.NumHosts())
		missing := make([]int, n) // unplaced predecessor count per node
		var ready []*dag.Node
		for _, nd := range g.Nodes() {
			missing[nd.ID] = len(nd.Preds())
			if missing[nd.ID] == 0 {
				ready = append(ready, nd)
			}
		}

		// best computes the node's earliest-finishing placement.
		best := func(nd *dag.Node) (placement, error) {
			pick := placement{host: -1}
			for _, h := range p.Hosts() {
				ready := 0.0
				for _, e := range nd.Preds() {
					pred := res.Assignments[e.From.ID]
					ct, err := p.CommTime(pred.Hosts[0], h.Global, e.Bytes)
					if err != nil {
						return pick, fmt.Errorf("%s: %w", name, err)
					}
					if t := pred.Finish + ct; t > ready {
						ready = t
					}
				}
				dur := nd.Work / h.Speed
				start := tl.EarliestGap(h.Global, ready, dur)
				if pick.host < 0 || start+dur < pick.finish {
					pick = placement{host: h.Global, start: start, finish: start + dur}
				}
			}
			return pick, nil
		}

		for scheduled := 0; scheduled < n; scheduled++ {
			if len(ready) == 0 {
				return nil, fmt.Errorf("%s: no ready task with %d nodes unplaced", name, n-scheduled)
			}
			// Phase 1: best EFT per ready task. Phase 2: pick per the
			// heuristic, ties broken by node ID for determinism.
			var chosen *dag.Node
			var chosenAt int
			var chosenPick placement
			for i, nd := range ready {
				pick, err := best(nd)
				if err != nil {
					return nil, err
				}
				better := chosen == nil
				if !better {
					switch {
					case max && pick.finish != chosenPick.finish:
						better = pick.finish > chosenPick.finish
					case !max && pick.finish != chosenPick.finish:
						better = pick.finish < chosenPick.finish
					default:
						better = nd.ID < chosen.ID
					}
				}
				if better {
					chosen, chosenAt, chosenPick = nd, i, pick
				}
			}
			tl.Reserve(chosenPick.host, chosenPick.start, chosenPick.finish)
			res.Assignments[chosen.ID] = sched.Assignment{
				Hosts: []int{chosenPick.host}, Start: chosenPick.start, Finish: chosenPick.finish,
			}
			if chosenPick.finish > res.Makespan {
				res.Makespan = chosenPick.finish
			}
			ready = append(ready[:chosenAt], ready[chosenAt+1:]...)
			for _, e := range chosen.Succs() {
				missing[e.To.ID]--
				if missing[e.To.ID] == 0 {
					ready = append(ready, e.To)
				}
			}
		}
		return res, nil
	}
}
