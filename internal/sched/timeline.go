package sched

import "sort"

// Interval is a reserved [Start, End) span on one host.
type Interval struct{ Start, End float64 }

// Timeline tracks per-host reservations for list scheduling. Each host keeps
// a sorted list of disjoint intervals (touching reservations are coalesced),
// so gap queries binary-search to the relevant region instead of rescanning
// the whole reservation history, and tail queries are O(1). It replaces the
// ad-hoc hostFree arrays and slot lists the algorithm packages used to
// maintain individually.
type Timeline struct {
	slots [][]Interval
	tail  []float64 // end of the last reservation per host
}

// NewTimeline creates an empty timeline over the given host count.
func NewTimeline(hosts int) *Timeline {
	return &Timeline{
		slots: make([][]Interval, hosts),
		tail:  make([]float64, hosts),
	}
}

// Hosts returns the host count.
func (t *Timeline) Hosts() int { return len(t.slots) }

// FreeAt returns the instant from which the host is free forever — the end
// of its last reservation (tail semantics, as used by CPA's mapping phase
// and CRA's backfilling).
func (t *Timeline) FreeAt(host int) float64 { return t.tail[host] }

// EarliestGap returns the earliest start >= ready such that [start,
// start+dur) fits between the host's reservations — the HEFT insertion
// policy. Intervals ending at or before ready are skipped by binary search.
func (t *Timeline) EarliestGap(host int, ready, dur float64) float64 {
	list := t.slots[host]
	i := sort.Search(len(list), func(i int) bool { return list[i].End > ready })
	start := ready
	for ; i < len(list); i++ {
		if start+dur <= list[i].Start {
			return start // fits in the gap before this interval
		}
		if list[i].End > start {
			start = list[i].End
		}
	}
	return start
}

// Reserve marks [start, end) busy on the host, keeping the interval list
// sorted and coalescing touching or overlapping neighbors.
func (t *Timeline) Reserve(host int, start, end float64) {
	if end <= start {
		return
	}
	list := t.slots[host]
	i := sort.Search(len(list), func(i int) bool { return list[i].Start >= start })
	// Merge with the predecessor when it touches or overlaps.
	if i > 0 && list[i-1].End >= start {
		i--
		start = list[i].Start
		if list[i].End > end {
			end = list[i].End
		}
	} else {
		list = append(list, Interval{})
		copy(list[i+1:], list[i:])
		list[i] = Interval{}
	}
	// Swallow successors covered by or touching [start, end).
	j := i + 1
	for j < len(list) && list[j].Start <= end {
		if list[j].End > end {
			end = list[j].End
		}
		j++
	}
	list[i] = Interval{Start: start, End: end}
	list = append(list[:i+1], list[j:]...)
	t.slots[host] = list
	if end > t.tail[host] {
		t.tail[host] = end
	}
}

// ReserveAll reserves [start, end) on every listed host.
func (t *Timeline) ReserveAll(hosts []int, start, end float64) {
	for _, h := range hosts {
		t.Reserve(h, start, end)
	}
}

// EarliestHosts returns the indices of the `need` hosts with the smallest
// tail free times, preferring low indices on ties so Gantt charts show
// compact allocations; the result is sorted ascending. need is clamped to
// the host count.
func (t *Timeline) EarliestHosts(need int) []int {
	if need > len(t.tail) {
		need = len(t.tail)
	}
	idx := make([]int, len(t.tail))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		if t.tail[idx[a]] != t.tail[idx[b]] {
			return t.tail[idx[a]] < t.tail[idx[b]]
		}
		return idx[a] < idx[b]
	})
	out := append([]int(nil), idx[:need]...)
	sort.Ints(out)
	return out
}

// Reserved returns the host's reservation list (read-only view).
func (t *Timeline) Reserved(host int) []Interval { return t.slots[host] }

// Makespan returns the latest reservation end across all hosts.
func (t *Timeline) Makespan() float64 {
	var m float64
	for _, e := range t.tail {
		if e > m {
			m = e
		}
	}
	return m
}
