package sched

import (
	"strings"
	"testing"

	"repro/internal/dag"
	"repro/internal/platform"
)

func fake(name string) Scheduler {
	return Func{Algo: name, Run: func(g *dag.Graph, p *platform.Platform) (*Result, error) {
		return NewResult(name, g, p), nil
	}}
}

func TestRegisterLookupList(t *testing.T) {
	Register(fake("test-a"))
	Register(fake("test-b"))
	s, err := Lookup("test-a")
	if err != nil {
		t.Fatal(err)
	}
	if s.Name() != "test-a" {
		t.Fatalf("lookup returned %q", s.Name())
	}
	names := List()
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("List not sorted/unique: %v", names)
		}
	}
	found := 0
	for _, n := range names {
		if n == "test-a" || n == "test-b" {
			found++
		}
	}
	if found != 2 {
		t.Fatalf("registered names missing from List: %v", names)
	}
	all, err := LookupAll([]string{"test-b", "test-a"})
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 2 || all[0].Name() != "test-b" || all[1].Name() != "test-a" {
		t.Fatal("LookupAll order not preserved")
	}
}

func TestLookupUnknown(t *testing.T) {
	if _, err := Lookup("no-such-algorithm"); err == nil {
		t.Fatal("unknown name accepted")
	} else if !strings.Contains(err.Error(), "no-such-algorithm") {
		t.Fatalf("error does not name the offender: %v", err)
	}
	if _, err := LookupAll([]string{"test-a", "nope"}); err == nil {
		t.Fatal("LookupAll accepted an unknown name")
	}
}

func TestDuplicateRegistrationPanics(t *testing.T) {
	Register(fake("test-dup"))
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	Register(fake("test-dup"))
}

func TestEmptyNameRegistrationPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("empty-name registration did not panic")
		}
	}()
	Register(fake(""))
}

func TestResultValidate(t *testing.T) {
	g := dag.New("g")
	a := g.AddNode("a", "computation", 1e9, 0)
	b := g.AddNode("b", "computation", 1e9, 0)
	g.AddEdge(a, b, 0)
	p := platform.Homogeneous(2, 1e9)

	r := NewResult("test", g, p)
	r.Assignments[a.ID] = Assignment{Hosts: []int{0}, Start: 0, Finish: 1}
	r.Assignments[b.ID] = Assignment{Hosts: []int{0}, Start: 1, Finish: 2}
	r.Makespan = 2
	if err := r.Validate(); err != nil {
		t.Fatalf("valid plan rejected: %v", err)
	}

	// Precedence violation.
	r.Assignments[b.ID].Start, r.Assignments[b.ID].Finish = 0.5, 1.5
	if err := r.Validate(); err == nil {
		t.Fatal("precedence violation accepted")
	}

	// Double booking: two independent tasks overlap on the same host.
	g2 := dag.New("g2")
	x := g2.AddNode("x", "computation", 1e9, 0)
	y := g2.AddNode("y", "computation", 1e9, 0)
	r2 := NewResult("test", g2, p)
	r2.Assignments[x.ID] = Assignment{Hosts: []int{1}, Start: 0, Finish: 2}
	r2.Assignments[y.ID] = Assignment{Hosts: []int{1}, Start: 1, Finish: 3}
	if err := r2.Validate(); err == nil {
		t.Fatal("double-booked host accepted")
	}

	// Unknown host.
	r = NewResult("test", g, p)
	r.Assignments[a.ID] = Assignment{Hosts: []int{7}, Start: 0, Finish: 1}
	r.Assignments[b.ID] = Assignment{Hosts: []int{0}, Start: 1, Finish: 2}
	if err := r.Validate(); err == nil {
		t.Fatal("out-of-range host accepted")
	}

	// Missing hosts.
	r = NewResult("test", g, p)
	r.Assignments[b.ID] = Assignment{Hosts: []int{0}, Start: 1, Finish: 2}
	if err := r.Validate(); err == nil {
		t.Fatal("empty host set accepted")
	}
}

func TestUpwardRanksAndBottomLevels(t *testing.T) {
	g := dag.New("g")
	a := g.AddNode("a", "computation", 2, 0)
	b := g.AddNode("b", "computation", 3, 0)
	c := g.AddNode("c", "computation", 1, 0)
	g.AddEdge(a, b, 10)
	g.AddEdge(b, c, 10)
	exec := func(n *dag.Node) float64 { return n.Work }

	bl, err := BottomLevels(g, exec)
	if err != nil {
		t.Fatal(err)
	}
	if bl[c.ID] != 1 || bl[b.ID] != 4 || bl[a.ID] != 6 {
		t.Fatalf("bottom levels = %v", bl)
	}

	ur, err := UpwardRanks(g, exec, func(e *dag.Edge) float64 { return e.Bytes })
	if err != nil {
		t.Fatal(err)
	}
	if ur[c.ID] != 1 || ur[b.ID] != 14 || ur[a.ID] != 26 {
		t.Fatalf("upward ranks = %v", ur)
	}

	// Cyclic graphs are rejected.
	bad := dag.New("bad")
	x := bad.AddNode("x", "t", 1, 0)
	y := bad.AddNode("y", "t", 1, 0)
	bad.AddEdge(x, y, 0)
	bad.AddEdge(y, x, 0)
	if _, err := BottomLevels(bad, exec); err == nil {
		t.Fatal("cycle accepted")
	}
}
