package sched

import "repro/internal/dag"

// BottomLevels returns, per node ID, the length of the longest path from the
// node to any exit node, counting node execution times under timeOf and
// ignoring communication — CPA/MCPA's b-level priority.
func BottomLevels(g *dag.Graph, timeOf func(*dag.Node) float64) ([]float64, error) {
	return UpwardRanks(g, timeOf, nil)
}

// UpwardRanks returns, per node ID, the HEFT upward rank: the node's
// execution cost under execOf plus the maximum over its successors of the
// edge cost under commOf plus the successor's rank. A nil commOf means
// communication is free, which degenerates to the bottom level.
func UpwardRanks(g *dag.Graph, execOf func(*dag.Node) float64, commOf func(*dag.Edge) float64) ([]float64, error) {
	order, err := g.TopoOrder()
	if err != nil {
		return nil, err
	}
	rank := make([]float64, g.Len())
	for i := len(order) - 1; i >= 0; i-- {
		nd := order[i]
		var best float64
		for _, e := range nd.Succs() {
			c := rank[e.To.ID]
			if commOf != nil {
				c += commOf(e)
			}
			if c > best {
				best = c
			}
		}
		rank[nd.ID] = execOf(nd) + best
	}
	return rank, nil
}
