// Package all registers every built-in scheduling algorithm with the sched
// registry. Import it for side effects wherever schedulers are selected by
// name:
//
//	import _ "repro/internal/sched/all"
package all

import (
	_ "repro/internal/sched/cpa"    // registers cpa, mcpa, mcpa2
	_ "repro/internal/sched/cra"    // registers cra_work, cra_width, cra_equal
	_ "repro/internal/sched/heft"   // registers heft
	_ "repro/internal/sched/minmin" // registers minmin, maxmin
	_ "repro/internal/sched/random" // registers the random baseline
)
