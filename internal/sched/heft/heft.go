// Package heft implements the Heterogeneous Earliest Finish Time algorithm
// (Topcuoglu et al.) used in the paper's third case study (section V):
// scheduling a scientific workflow of single-processor tasks onto a
// heterogeneous multi-cluster platform.
//
// HEFT sorts tasks by decreasing upward rank — the length of the critical
// path from the task to the exit task, computed with average execution and
// communication costs — and then assigns each task to the processor
// minimizing its Earliest Finish Time (EFT), using an insertion policy that
// may fill idle gaps between already-scheduled tasks. Communication costs
// follow the platform's route model, which is exactly where the Figure 8
// anomaly comes from: with a backbone as fast as the intra-cluster links,
// moving a task to another cluster costs (almost) nothing.
package heft

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/dag"
	"repro/internal/platform"
	"repro/internal/sched"
	"repro/internal/sim"
)

func init() {
	sched.Register(sched.Func{Algo: "heft", Run: func(g *dag.Graph, p *platform.Platform) (*sched.Result, error) {
		res, err := Schedule(g, p)
		if err != nil {
			return nil, err
		}
		return res.Unified(), nil
	}})
}

// Result is a complete HEFT schedule.
type Result struct {
	// Assign maps node ID to the chosen global host.
	Assign []int
	// Start and Finish give the planned times per node ID.
	Start, Finish []float64
	// Rank holds the upward ranks per node ID.
	Rank []float64
	// Makespan is the maximum finish time.
	Makespan float64

	graph *dag.Graph
	plat  *platform.Platform
}

// slot is a reserved interval on one host.
type slot struct{ start, end float64 }

// Schedule runs HEFT for the graph on the platform. Tasks are treated as
// single-processor (sequential) tasks, per the case study. Ranks and host
// reservations come from the shared sched toolkit: upward ranks with mean
// execution/communication costs, and a gap-inserting host timeline.
func Schedule(g *dag.Graph, p *platform.Platform) (*Result, error) {
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("heft: %w", err)
	}
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("heft: %w", err)
	}
	n := g.Len()
	res := &Result{
		Assign: make([]int, n), Start: make([]float64, n),
		Finish: make([]float64, n),
		graph:  g, plat: p,
	}
	meanSpeed := p.MeanSpeed()

	rank, err := sched.UpwardRanks(g,
		func(nd *dag.Node) float64 { return nd.Work / meanSpeed },
		func(e *dag.Edge) float64 { return p.MeanCommTime(e.Bytes) })
	if err != nil {
		return nil, err
	}
	res.Rank = rank

	// Priority list: decreasing upward rank (stable on ties by ID).
	prio := append([]*dag.Node(nil), g.Nodes()...)
	sort.SliceStable(prio, func(i, j int) bool { return res.Rank[prio[i].ID] > res.Rank[prio[j].ID] })

	tl := sched.NewTimeline(p.NumHosts())
	for _, nd := range prio {
		bestHost, bestStart := -1, 0.0
		bestEFT := 0.0
		for _, h := range p.Hosts() {
			// Data-ready time on this host.
			ready := 0.0
			for _, e := range nd.Preds() {
				ct, err := p.CommTime(res.Assign[e.From.ID], h.Global, e.Bytes)
				if err != nil {
					return nil, err
				}
				if t := res.Finish[e.From.ID] + ct; t > ready {
					ready = t
				}
			}
			dur := nd.Work / h.Speed
			start := tl.EarliestGap(h.Global, ready, dur)
			eft := start + dur
			if bestHost < 0 || eft < bestEFT {
				bestHost, bestStart, bestEFT = h.Global, start, eft
			}
		}
		res.Assign[nd.ID] = bestHost
		res.Start[nd.ID] = bestStart
		res.Finish[nd.ID] = bestEFT
		tl.Reserve(bestHost, bestStart, bestEFT)
		if bestEFT > res.Makespan {
			res.Makespan = bestEFT
		}
	}
	return res, nil
}

// Unified returns the schedule in the common scheduler format.
func (r *Result) Unified() *sched.Result {
	out := sched.NewResult("heft", r.graph, r.plat)
	out.Makespan = r.Makespan
	for _, nd := range r.graph.Nodes() {
		out.Assignments[nd.ID] = sched.Assignment{
			Hosts: []int{r.Assign[nd.ID]},
			Start: r.Start[nd.ID], Finish: r.Finish[nd.ID],
		}
	}
	return out
}

// TraceOptions controls Trace.
type TraceOptions struct {
	// Transfers records inter-host data movements as "transfer" tasks
	// spanning source and destination.
	Transfers bool
	// TransferFloor suppresses transfers shorter than this duration.
	TransferFloor float64
}

// Trace renders the planned schedule as a Jedule document, mapping hosts
// back to the platform's cluster structure. Task types follow the node
// types (Montage stage names), so a per-stage color map highlights the
// workflow structure as in the paper's Figure 8/9.
func (r *Result) Trace(opt TraceOptions) (*core.Schedule, error) {
	rec := sim.NewRecorder(r.plat)
	rec.SetMeta("algorithm", "heft")
	rec.SetMeta("makespan", fmt.Sprintf("%.1f", r.Makespan))
	for _, nd := range r.graph.Nodes() {
		if err := rec.Record(nd.Name, nd.Type, r.Start[nd.ID], r.Finish[nd.ID],
			[]int{r.Assign[nd.ID]},
			core.Property{Name: "rank", Value: fmt.Sprintf("%.2f", r.Rank[nd.ID])}); err != nil {
			return nil, err
		}
	}
	if opt.Transfers {
		i := 0
		for _, e := range r.graph.Edges() {
			src, dst := r.Assign[e.From.ID], r.Assign[e.To.ID]
			if src == dst {
				continue
			}
			ct, err := r.plat.CommTime(src, dst, e.Bytes)
			if err != nil {
				return nil, err
			}
			if ct < opt.TransferFloor {
				continue
			}
			i++
			start := r.Finish[e.From.ID]
			if err := rec.Record(fmt.Sprintf("x%d:%s->%s", i, e.From.Name, e.To.Name),
				"transfer", start, start+ct, []int{src, dst}); err != nil {
				return nil, err
			}
		}
	}
	return rec.Schedule(), nil
}

// Planned converts the schedule into simulator tasks for independent
// validation by the discrete-event kernel.
func (r *Result) Planned() []sim.PlannedTask {
	out := make([]sim.PlannedTask, 0, r.graph.Len())
	for _, nd := range r.graph.Nodes() {
		h, _ := r.plat.Host(r.Assign[nd.ID])
		pt := sim.PlannedTask{
			ID: nd.Name, Type: nd.Type,
			Hosts: []int{r.Assign[nd.ID]}, Duration: nd.Work / h.Speed,
		}
		for _, e := range nd.Preds() {
			pt.Deps = append(pt.Deps, sim.Dep{From: e.From.Name, Bytes: e.Bytes})
		}
		out = append(out, pt)
	}
	return out
}

// ClustersUsedBy returns the set of cluster IDs hosting nodes of the given
// type — the quantity behind the Figure 8 anomaly check (mBackground tasks
// scattered across clusters under the flawed platform description).
func (r *Result) ClustersUsedBy(nodeType string) []int {
	seen := map[int]bool{}
	for _, nd := range r.graph.Nodes() {
		if nd.Type != nodeType {
			continue
		}
		h, err := r.plat.Host(r.Assign[nd.ID])
		if err == nil {
			seen[h.Cluster] = true
		}
	}
	out := make([]int, 0, len(seen))
	for c := range seen {
		out = append(out, c)
	}
	sort.Ints(out)
	return out
}

// CrossClusterEdges counts dependency edges whose endpoints run on
// different clusters.
func (r *Result) CrossClusterEdges() int {
	n := 0
	for _, e := range r.graph.Edges() {
		ha, _ := r.plat.Host(r.Assign[e.From.ID])
		hb, _ := r.plat.Host(r.Assign[e.To.ID])
		if ha.Cluster != hb.Cluster {
			n++
		}
	}
	return n
}

// Validate checks the plan's internal consistency: precedence with
// communication delays and no overlapping reservations per host.
func (r *Result) Validate() error {
	for _, e := range r.graph.Edges() {
		ct, err := r.plat.CommTime(r.Assign[e.From.ID], r.Assign[e.To.ID], e.Bytes)
		if err != nil {
			return err
		}
		if r.Start[e.To.ID] < r.Finish[e.From.ID]+ct-1e-9 {
			return fmt.Errorf("heft: %s starts at %g before data from %s arrives at %g",
				e.To.Name, r.Start[e.To.ID], e.From.Name, r.Finish[e.From.ID]+ct)
		}
	}
	byHost := map[int][]slot{}
	for _, nd := range r.graph.Nodes() {
		byHost[r.Assign[nd.ID]] = append(byHost[r.Assign[nd.ID]], slot{r.Start[nd.ID], r.Finish[nd.ID]})
	}
	for h, list := range byHost {
		sort.Slice(list, func(i, j int) bool { return list[i].start < list[j].start })
		for i := 1; i < len(list); i++ {
			if list[i].start < list[i-1].end-1e-9 {
				return fmt.Errorf("heft: host %d double-booked at %g", h, list[i].start)
			}
		}
	}
	return nil
}
