package heft

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/dag"
	"repro/internal/platform"
	"repro/internal/sched"
	"repro/internal/sim"
)

func TestRanksDecreaseAlongEdges(t *testing.T) {
	g := dag.Montage(6)
	p := platform.Figure7(platform.Figure7FlawedLatency)
	res, err := Schedule(g, p)
	if err != nil {
		t.Fatal(err)
	}
	// Upward rank of a predecessor strictly exceeds every successor's.
	for _, e := range g.Edges() {
		if res.Rank[e.From.ID] <= res.Rank[e.To.ID] {
			t.Fatalf("rank(%s)=%g <= rank(%s)=%g",
				e.From.Name, res.Rank[e.From.ID], e.To.Name, res.Rank[e.To.ID])
		}
	}
}

func TestScheduleValidAndSimulatable(t *testing.T) {
	g := dag.Montage(12)
	p := platform.Figure7(platform.Figure7RealisticLatency)
	res, err := Schedule(g, p)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Validate(); err != nil {
		t.Fatal(err)
	}
	if res.Makespan <= 0 {
		t.Fatal("empty makespan")
	}
	// The plan replays on the discrete-event kernel.
	wr, err := sim.Execute(p, res.Planned(), sim.ExecOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := wr.Schedule.Validate(); err != nil {
		t.Fatal(err)
	}
	// The kernel's greedy execution can differ from the insertion-based
	// plan but must stay in the same ballpark.
	ratio := wr.Makespan / res.Makespan
	if ratio < 0.5 || ratio > 2 {
		t.Fatalf("simulated makespan %g vs planned %g (ratio %g)", wr.Makespan, res.Makespan, ratio)
	}
}

func TestFastHostsPreferredWhenCommFree(t *testing.T) {
	// Independent equal tasks: all should land on the fastest hosts first.
	g := dag.New("indep")
	for i := 0; i < 4; i++ {
		g.AddNode("t"+string(rune('0'+i)), "computation", 1e10, 0)
	}
	p := platform.Figure7(platform.Figure7FlawedLatency)
	res, err := Schedule(g, p)
	if err != nil {
		t.Fatal(err)
	}
	for id, host := range res.Assign {
		h, _ := p.Host(host)
		if h.Speed != 3.3e9 {
			t.Fatalf("task %d on slow host %d", id, host)
		}
	}
}

// TestFigure8vs9 reproduces the case study's finding. Flawed platform
// (backbone latency == link latency): HEFT freely scatters related tasks
// across clusters because remote data costs almost nothing. Realistic
// backbone: the mBackground stage consolidates onto fewer clusters, the
// fast clusters are preferred, and the two makespans stay comparable (the
// paper measured the same 140.9 s for both).
func TestFigure8vs9(t *testing.T) {
	g := dag.Montage(12)
	flawed, err := Schedule(g, platform.Figure7(platform.Figure7FlawedLatency))
	if err != nil {
		t.Fatal(err)
	}
	realistic, err := Schedule(g, platform.Figure7(platform.Figure7RealisticLatency))
	if err != nil {
		t.Fatal(err)
	}
	if err := flawed.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := realistic.Validate(); err != nil {
		t.Fatal(err)
	}
	// The anomaly: under the flawed description, communication-heavy
	// stages cross clusters much more.
	xFlawed := flawed.CrossClusterEdges()
	xReal := realistic.CrossClusterEdges()
	if xReal >= xFlawed {
		t.Fatalf("cross-cluster edges: flawed=%d realistic=%d; realistic should be lower",
			xFlawed, xReal)
	}
	// mBackground consolidates under the realistic backbone.
	cFlawed := len(flawed.ClustersUsedBy("mBackground"))
	cReal := len(realistic.ClustersUsedBy("mBackground"))
	if cReal > cFlawed {
		t.Fatalf("mBackground clusters: flawed=%d realistic=%d", cFlawed, cReal)
	}
	// Makespans comparable (paper: identical at 140.9 s).
	ratio := realistic.Makespan / flawed.Makespan
	if ratio < 0.8 || ratio > 1.6 {
		t.Fatalf("makespans diverged: flawed=%g realistic=%g", flawed.Makespan, realistic.Makespan)
	}
}

func TestTrace(t *testing.T) {
	g := dag.Montage(6)
	p := platform.Figure7(platform.Figure7RealisticLatency)
	res, err := Schedule(g, p)
	if err != nil {
		t.Fatal(err)
	}
	s, err := res.Trace(TraceOptions{Transfers: true, TransferFloor: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(s.Clusters) != 4 {
		t.Fatal("trace lost platform clusters")
	}
	if s.MetaValue("algorithm") != "heft" {
		t.Fatal("meta lost")
	}
	// All workflow tasks present; stage types preserved for coloring.
	if got := len(s.TasksOn(0)) + len(s.TasksOn(1)) + len(s.TasksOn(2)) + len(s.TasksOn(3)); got < g.Len() {
		t.Fatalf("trace has %d task placements, want >= %d", got, g.Len())
	}
	types := s.TaskTypes()
	found := map[string]bool{}
	for _, typ := range types {
		found[typ] = true
	}
	if !found["mProjectPP"] || !found["mAdd"] {
		t.Fatalf("stage types missing from trace: %v", types)
	}
	// Without transfers the trace has exactly one task per node.
	s2, err := res.Trace(TraceOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(s2.Tasks) != g.Len() {
		t.Fatalf("trace size = %d, want %d", len(s2.Tasks), g.Len())
	}
}

func TestEarliestSlotInsertion(t *testing.T) {
	// HEFT's insertion policy now lives in the shared timeline; check the
	// same gap-fitting cases through it. Reserved [0,5] and [10,20]; a
	// 3-unit task ready at 1 fits at 5.
	tl := sched.NewTimeline(1)
	tl.Reserve(0, 0, 5)
	tl.Reserve(0, 10, 20)
	if got := tl.EarliestGap(0, 1, 3); got != 5 {
		t.Fatalf("slot = %g, want 5", got)
	}
	// A 6-unit task cannot fit the gap: goes after 20.
	if got := tl.EarliestGap(0, 1, 6); got != 20 {
		t.Fatalf("slot = %g, want 20", got)
	}
	// Ready after all reservations.
	if got := tl.EarliestGap(0, 25, 1); got != 25 {
		t.Fatalf("slot = %g, want 25", got)
	}
	// Empty host.
	empty := sched.NewTimeline(1)
	if got := empty.EarliestGap(0, 7, 1); got != 7 {
		t.Fatalf("slot = %g, want 7", got)
	}
}

// Property: on random DAGs HEFT plans are always valid and HEFT never
// leaves a host double-booked.
func TestScheduleRandomProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for iter := 0; iter < 15; iter++ {
		g := dag.Generate(dag.ShapeRandom, dag.GenOptions{
			Nodes: 10 + rng.Intn(40), WorkMin: 1e9, WorkMax: 4e10,
			SerialFraction: 1.0, // sequential tasks
			EdgeBytes:      1e6 + rng.Float64()*1e8,
		}, rng)
		p := platform.Figure7(platform.Figure7RealisticLatency)
		res, err := Schedule(g, p)
		if err != nil {
			t.Fatalf("iter %d: %v", iter, err)
		}
		if err := res.Validate(); err != nil {
			t.Fatalf("iter %d: %v", iter, err)
		}
		// Makespan at least the serial time of the heaviest task on the
		// fastest host.
		var minPossible float64
		for _, nd := range g.Nodes() {
			t := nd.Work / 3.3e9
			if t > minPossible {
				minPossible = t
			}
		}
		if res.Makespan < minPossible-1e-9 {
			t.Fatalf("iter %d: makespan %g below bound %g", iter, res.Makespan, minPossible)
		}
	}
}

func TestScheduleErrors(t *testing.T) {
	bad := dag.New("bad")
	a := bad.AddNode("a", "x", 1, 0)
	b := bad.AddNode("b", "x", 1, 0)
	bad.AddEdge(a, b, 0)
	bad.AddEdge(b, a, 0)
	if _, err := Schedule(bad, platform.Homogeneous(2, 1e9)); err == nil {
		t.Error("cycle accepted")
	}
	g := dag.Montage(4)
	if _, err := Schedule(g, platform.New(1e-4, 1e9)); err == nil {
		t.Error("empty platform accepted")
	}
}

func TestMakespanReasonable(t *testing.T) {
	// The 50-node Montage on the Figure 7 platform lands within two orders
	// of magnitude of the paper's 140.9 s (our stage costs are synthetic).
	g := dag.Montage(12)
	res, err := Schedule(g, platform.Figure7(platform.Figure7RealisticLatency))
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan < 1.4 || res.Makespan > 1400 {
		t.Fatalf("makespan %g out of the plausible range", res.Makespan)
	}
	if math.IsNaN(res.Makespan) {
		t.Fatal("NaN makespan")
	}
}
