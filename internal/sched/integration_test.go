package sched_test

import (
	"math/rand"
	"testing"

	"repro/internal/dag"
	"repro/internal/platform"
	"repro/internal/sched"
	_ "repro/internal/sched/all"
	"repro/internal/sim"
)

// builtins are the algorithm families registered by sched/all.
var builtins = []string{"cpa", "mcpa", "mcpa2", "cra_work", "cra_width", "cra_equal", "heft"}

func TestAllBuiltinsRegistered(t *testing.T) {
	for _, name := range builtins {
		if _, err := sched.Lookup(name); err != nil {
			t.Errorf("builtin %q not registered: %v", name, err)
		}
	}
}

// TestUnifiedResultRoundTrip runs every builtin on the same DAG and checks
// that the unified result is internally valid, converts to a valid
// core.Schedule, and replays on the simulator with every task present.
func TestUnifiedResultRoundTrip(t *testing.T) {
	g := dag.Generate(dag.ShapeRandom, dag.DefaultGenOptions(30), rand.New(rand.NewSource(11)))
	p := platform.Homogeneous(16, 1e9)
	for _, name := range builtins {
		s, err := sched.Lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.Schedule(g, p)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.Algorithm != name {
			t.Errorf("%s: result labeled %q", name, res.Algorithm)
		}
		if res.Makespan <= 0 {
			t.Errorf("%s: makespan %g", name, res.Makespan)
		}
		if err := res.Validate(); err != nil {
			t.Errorf("%s: invalid plan: %v", name, err)
		}
		trace, err := res.Trace()
		if err != nil {
			t.Fatalf("%s: trace: %v", name, err)
		}
		if err := trace.Validate(); err != nil {
			t.Errorf("%s: trace invalid: %v", name, err)
		}
		if len(trace.Tasks) != g.Len() {
			t.Errorf("%s: trace has %d tasks, want %d", name, len(trace.Tasks), g.Len())
		}
		if got := trace.MetaValue("algorithm"); got != name {
			t.Errorf("%s: trace algorithm meta = %q", name, got)
		}
		wr, err := res.Execute(sim.ExecOptions{})
		if err != nil {
			t.Fatalf("%s: execute: %v", name, err)
		}
		if len(wr.Finish) != g.Len() {
			t.Errorf("%s: simulation completed %d of %d tasks", name, len(wr.Finish), g.Len())
		}
		if wr.Makespan <= 0 {
			t.Errorf("%s: simulated makespan %g", name, wr.Makespan)
		}
	}
}

// TestHeftUnifiedMatchesNative checks the unified view against heft's own
// result on the heterogeneous platform (planned times must carry over).
func TestSchedulersOnHeterogeneousPlatform(t *testing.T) {
	g := dag.Montage(6)
	p := platform.Figure7(platform.Figure7RealisticLatency)
	s, err := sched.Lookup("heft")
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Schedule(g, p)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Validate(); err != nil {
		t.Fatal(err)
	}
	// CPA refuses multi-cluster platforms through the registry too.
	c, err := sched.Lookup("cpa")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Schedule(g, p); err == nil {
		t.Fatal("cpa accepted a multi-cluster platform via the registry")
	}
}
