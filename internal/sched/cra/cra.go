// Package cra implements the paper's second case study (section IV):
// scheduling a batch of N mixed-parallel applications on one homogeneous
// cluster with Constrained Resource Allocations (N'takpé & Suter). Each
// application i receives a share
//
//	β_i = µ/|A| + (1-µ)·X_i/Σ_j X_j
//
// of the cluster's processors, where X_i is a characteristic of the
// application (its total work for CRA_WORK, its maximal level width for
// CRA_WIDTH, or 1 for CRA_EQUAL) and µ ∈ [0,1] blends toward an even split.
// Every application is then scheduled by CPA inside its disjoint processor
// range, and a conservative backfilling pass compacts the combined schedule
// without delaying any task.
//
// The package computes the two metrics the case study optimizes: the
// overall makespan and the per-application stretch (makespan under
// contention divided by the makespan with the whole cluster dedicated).
package cra

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/core"
	"repro/internal/dag"
	"repro/internal/platform"
	"repro/internal/sched"
	"repro/internal/sched/cpa"
	"repro/internal/sim"
)

// DefaultMu is the µ blend used when a CRA strategy is invoked through the
// scheduler registry (the paper's middle-of-the-road setting).
const DefaultMu = 0.5

func init() {
	for _, s := range []Strategy{Work, Width, Equal} {
		sched.Register(strategyScheduler{s})
	}
}

// strategyScheduler adapts one CRA strategy to the single-graph
// sched.Scheduler interface by treating the graph as a batch of one
// application: the share computation degenerates to the whole cluster and
// the backfilled CPA schedule inside it is returned.
type strategyScheduler struct{ strat Strategy }

func (s strategyScheduler) Name() string { return s.strat.String() }

func (s strategyScheduler) Schedule(g *dag.Graph, p *platform.Platform) (*sched.Result, error) {
	res, err := schedule([]*dag.Graph{g}, p, s.strat, DefaultMu, false)
	if err != nil {
		return nil, err
	}
	placed, err := Backfill(res.Placed, p.NumHosts())
	if err != nil {
		return nil, err
	}
	out := sched.NewResult(s.strat.String(), g, p)
	byID := make(map[string]*PlacedTask, len(placed))
	for i := range placed {
		byID[placed[i].ID] = &placed[i]
	}
	for _, nd := range g.Nodes() {
		t, ok := byID[fmt.Sprintf("a0:%s", nd.Name)]
		if !ok {
			return nil, fmt.Errorf("cra: task %q missing from placed schedule", nd.Name)
		}
		out.Assignments[nd.ID] = sched.Assignment{
			Hosts: append([]int(nil), t.Hosts...),
			Start: t.Start, Finish: t.End,
		}
		if t.End > out.Makespan {
			out.Makespan = t.End
		}
	}
	out.SetMeta("mu", fmt.Sprintf("%g", DefaultMu))
	return out, nil
}

// Strategy selects the share characteristic X_i.
type Strategy int

const (
	// Work shares processors proportionally to application work (CRA_WORK).
	Work Strategy = iota
	// Width shares proportionally to the maximal precedence-level width
	// (CRA_WIDTH).
	Width
	// Equal gives every application the same share (µ irrelevant).
	Equal
)

func (s Strategy) String() string {
	switch s {
	case Work:
		return "cra_work"
	case Width:
		return "cra_width"
	case Equal:
		return "cra_equal"
	default:
		return "strategy(?)"
	}
}

// PlacedTask is one task of the combined schedule with concrete times and
// hosts (cluster-local indices).
type PlacedTask struct {
	ID         string
	App        int
	Type       string
	Hosts      []int
	Start, End float64
	Deps       []string // IDs of same-application predecessors
}

// AppResult summarizes one application's outcome.
type AppResult struct {
	Share     int     // processors granted
	FirstHost int     // start of its host range
	Makespan  float64 // completion time inside the shared schedule
	Dedicated float64 // CPA makespan with the full cluster to itself
	Stretch   float64 // Makespan / Dedicated (>= 1 in practice)
}

// Result is the complete multi-DAG scheduling outcome.
type Result struct {
	Strategy Strategy
	Mu       float64
	Apps     []AppResult
	Placed   []PlacedTask
	Makespan float64
}

// Shares computes the integer processor shares for the applications. Every
// application receives at least one processor and the shares sum to at most
// P (exactly P when N <= P).
func Shares(graphs []*dag.Graph, strategy Strategy, mu float64, P int) ([]int, error) {
	n := len(graphs)
	if n == 0 {
		return nil, fmt.Errorf("cra: no applications")
	}
	if P < n {
		return nil, fmt.Errorf("cra: %d processors cannot host %d applications", P, n)
	}
	if mu < 0 || mu > 1 {
		return nil, fmt.Errorf("cra: µ = %g outside [0,1]", mu)
	}
	x := make([]float64, n)
	var total float64
	for i, g := range graphs {
		switch strategy {
		case Work:
			x[i] = g.TotalWork()
		case Width:
			sets, err := g.LevelSets()
			if err != nil {
				return nil, fmt.Errorf("cra: app %d: %w", i, err)
			}
			w := 0
			for _, s := range sets {
				if len(s) > w {
					w = len(s)
				}
			}
			x[i] = float64(w)
		case Equal:
			x[i] = 1
		default:
			return nil, fmt.Errorf("cra: unknown strategy %d", strategy)
		}
		total += x[i]
	}
	beta := make([]float64, n)
	for i := range beta {
		beta[i] = mu/float64(n) + (1-mu)*x[i]/total
	}
	// Integer shares: floor with at least 1, then hand out the remainder
	// by largest fractional part.
	shares := make([]int, n)
	used := 0
	type frac struct {
		i int
		f float64
	}
	fracs := make([]frac, n)
	for i := range shares {
		raw := beta[i] * float64(P)
		shares[i] = int(raw)
		if shares[i] < 1 {
			shares[i] = 1
		}
		fracs[i] = frac{i, raw - math.Floor(raw)}
		used += shares[i]
	}
	sort.SliceStable(fracs, func(a, b int) bool { return fracs[a].f > fracs[b].f })
	for k := 0; used < P; k = (k + 1) % n {
		shares[fracs[k].i]++
		used++
	}
	for k := n - 1; used > P; {
		// Shrink the largest share(s); keep everyone at >= 1.
		j := 0
		for i := range shares {
			if shares[i] > shares[j] {
				j = i
			}
		}
		if shares[j] <= 1 {
			break
		}
		shares[j]--
		used--
		_ = k
	}
	return shares, nil
}

// Schedule runs the full CRA pipeline: shares, per-application CPA inside
// disjoint host ranges, virtual execution, and metrics. The platform must
// be one homogeneous cluster.
func Schedule(graphs []*dag.Graph, p *platform.Platform, strategy Strategy, mu float64) (*Result, error) {
	return schedule(graphs, p, strategy, mu, true)
}

// schedule implements Schedule; withStretch controls whether the dedicated
// whole-cluster run behind the per-application stretch metric is performed
// (the registry adapter skips it — it would double the scheduling work for
// a number nobody reads).
func schedule(graphs []*dag.Graph, p *platform.Platform, strategy Strategy, mu float64, withStretch bool) (*Result, error) {
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("cra: %w", err)
	}
	if len(p.Clusters) != 1 {
		return nil, fmt.Errorf("cra: CRA targets a single cluster")
	}
	P := p.NumHosts()
	speed := p.Hosts()[0].Speed
	shares, err := Shares(graphs, strategy, mu, P)
	if err != nil {
		return nil, err
	}
	res := &Result{Strategy: strategy, Mu: mu}
	offset := 0
	for i, g := range graphs {
		sub := platform.Homogeneous(shares[i], speed)
		cres, err := cpa.Schedule(g, sub, cpa.MCPA2)
		if err != nil {
			return nil, fmt.Errorf("cra: app %d: %w", i, err)
		}
		planned := cres.Planned()
		wr, err := sim.Execute(sub, planned, sim.ExecOptions{})
		if err != nil {
			return nil, fmt.Errorf("cra: app %d: %w", i, err)
		}
		app := AppResult{
			Share: shares[i], FirstHost: offset,
			Makespan: wr.Makespan,
		}
		if withStretch {
			// Dedicated run for the stretch metric.
			dres, err := cpa.Schedule(g, p, cpa.MCPA2)
			if err != nil {
				return nil, fmt.Errorf("cra: app %d dedicated: %w", i, err)
			}
			dwr, err := sim.Execute(p, dres.Planned(), sim.ExecOptions{})
			if err != nil {
				return nil, fmt.Errorf("cra: app %d dedicated: %w", i, err)
			}
			app.Dedicated = dwr.Makespan
			if app.Dedicated > 0 {
				app.Stretch = app.Makespan / app.Dedicated
			}
		}
		res.Apps = append(res.Apps, app)
		// Remap the planned tasks into the shared cluster.
		for _, pt := range planned {
			hosts := make([]int, len(pt.Hosts))
			for k, h := range pt.Hosts {
				hosts[k] = h + offset
			}
			placed := PlacedTask{
				ID:    fmt.Sprintf("a%d:%s", i, pt.ID),
				App:   i,
				Type:  fmt.Sprintf("app%d", i),
				Hosts: hosts,
				Start: wr.Start[pt.ID],
				End:   wr.Finish[pt.ID],
			}
			for _, d := range pt.Deps {
				placed.Deps = append(placed.Deps, fmt.Sprintf("a%d:%s", i, d.From))
			}
			res.Placed = append(res.Placed, placed)
		}
		if wr.Makespan > res.Makespan {
			res.Makespan = wr.Makespan
		}
		offset += shares[i]
	}
	return res, nil
}

// Backfill applies the conservative backfilling step of the case study: in
// order of original start time, every task is moved to the earliest instant
// at which its dependencies have finished and its own hosts are free. Tasks
// only ever move earlier, so no task is delayed — the property the paper
// checked with Jedule. The input is not modified.
func Backfill(placed []PlacedTask, hosts int) ([]PlacedTask, error) {
	out := append([]PlacedTask(nil), placed...)
	order := make([]int, len(out))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return out[order[a]].Start < out[order[b]].Start })
	finish := map[string]float64{}
	tl := sched.NewTimeline(hosts)
	for _, idx := range order {
		t := &out[idx]
		start := 0.0
		for _, d := range t.Deps {
			f, ok := finish[d]
			if !ok {
				return nil, fmt.Errorf("cra: backfill: dependency %q of %q not yet finished (schedule inconsistent)", d, t.ID)
			}
			if f > start {
				start = f
			}
		}
		for _, h := range t.Hosts {
			if h < 0 || h >= hosts {
				return nil, fmt.Errorf("cra: backfill: task %q uses host %d outside cluster", t.ID, h)
			}
			if f := tl.FreeAt(h); f > start {
				start = f
			}
		}
		if start > t.Start+1e-9 {
			return nil, fmt.Errorf("cra: backfill would delay task %q (%g -> %g)", t.ID, t.Start, start)
		}
		dur := t.End - t.Start
		t.Start = start
		t.End = start + dur
		finish[t.ID] = t.End
		tl.ReserveAll(t.Hosts, t.Start, t.End)
	}
	return out, nil
}

// Trace renders placed tasks as a Jedule schedule over one cluster of the
// given size; task types are app0..appN-1, ready for a per-application
// color map as in the paper's Figure 5.
func Trace(placed []PlacedTask, hosts int, meta ...core.Property) *core.Schedule {
	s := core.NewSingleCluster("cluster", hosts)
	for _, m := range meta {
		s.SetMeta(m.Name, m.Value)
	}
	for _, t := range placed {
		s.AddTask(core.Task{
			ID: t.ID, Type: t.Type, Start: t.Start, End: t.End,
			Allocations: []core.Allocation{{Cluster: 0, Hosts: core.RangesFromHosts(t.Hosts)}},
			Properties:  []core.Property{{Name: "app", Value: fmt.Sprintf("%d", t.App)}},
		})
	}
	s.SortTasks()
	return s
}

// Makespan returns the latest end time among placed tasks.
func Makespan(placed []PlacedTask) float64 {
	var m float64
	for i := range placed {
		if placed[i].End > m {
			m = placed[i].End
		}
	}
	return m
}

// TotalIdle returns the idle host-time of the placed schedule over [0,
// makespan] — the quantity whose reduction by backfilling "can also be
// easily quantified" per the paper.
func TotalIdle(placed []PlacedTask, hosts int) float64 {
	s := Trace(placed, hosts)
	return s.ComputeStats().IdleArea
}

// Unfairness returns max stretch minus min stretch; 0 is perfectly fair.
func (r *Result) Unfairness() float64 {
	if len(r.Apps) == 0 {
		return 0
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, a := range r.Apps {
		lo = math.Min(lo, a.Stretch)
		hi = math.Max(hi, a.Stretch)
	}
	return hi - lo
}
