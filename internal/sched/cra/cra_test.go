package cra

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/dag"
	"repro/internal/platform"
)

func apps(seed int64, n, size int) []*dag.Graph {
	rng := rand.New(rand.NewSource(seed))
	shapes := []dag.Shape{dag.ShapeRandom, dag.ShapeForkJoin, dag.ShapeLong, dag.ShapeWide}
	out := make([]*dag.Graph, n)
	for i := range out {
		out[i] = dag.Generate(shapes[i%len(shapes)], dag.DefaultGenOptions(size), rng)
	}
	return out
}

func TestStrategyString(t *testing.T) {
	if Work.String() != "cra_work" || Width.String() != "cra_width" || Equal.String() != "cra_equal" {
		t.Fatal("strategy strings")
	}
	if Strategy(9).String() != "strategy(?)" {
		t.Fatal("unknown strategy")
	}
}

func TestSharesSumAndFloor(t *testing.T) {
	gs := apps(1, 4, 20)
	for _, strat := range []Strategy{Work, Width, Equal} {
		for _, mu := range []float64{0, 0.5, 1} {
			shares, err := Shares(gs, strat, mu, 20)
			if err != nil {
				t.Fatalf("%v mu=%g: %v", strat, mu, err)
			}
			sum := 0
			for _, s := range shares {
				if s < 1 {
					t.Fatalf("%v mu=%g: share %d < 1", strat, mu, s)
				}
				sum += s
			}
			if sum != 20 {
				t.Fatalf("%v mu=%g: shares %v sum to %d, want 20", strat, mu, shares, sum)
			}
		}
	}
}

func TestSharesProportionalToWork(t *testing.T) {
	// One heavy app, three light: CRA_WORK with µ=0 gives the heavy app
	// the lion's share; µ=1 equalizes.
	heavy := dag.Generate(dag.ShapeRandom, dag.GenOptions{
		Nodes: 30, WorkMin: 5e10, WorkMax: 5e10, SerialFraction: 0.05, EdgeBytes: 1e6,
	}, rand.New(rand.NewSource(2)))
	light := func(seed int64) *dag.Graph {
		return dag.Generate(dag.ShapeRandom, dag.GenOptions{
			Nodes: 10, WorkMin: 1e9, WorkMax: 1e9, SerialFraction: 0.05, EdgeBytes: 1e6,
		}, rand.New(rand.NewSource(seed)))
	}
	gs := []*dag.Graph{heavy, light(3), light(4), light(5)}
	proportional, err := Shares(gs, Work, 0, 20)
	if err != nil {
		t.Fatal(err)
	}
	if proportional[0] < 14 {
		t.Fatalf("heavy app got %d of 20 under µ=0, want most", proportional[0])
	}
	even, err := Shares(gs, Work, 1, 20)
	if err != nil {
		t.Fatal(err)
	}
	if even[0] != 5 {
		t.Fatalf("µ=1 share = %d, want 5", even[0])
	}
}

func TestSharesErrors(t *testing.T) {
	gs := apps(1, 4, 10)
	if _, err := Shares(nil, Work, 0, 10); err == nil {
		t.Error("no apps accepted")
	}
	if _, err := Shares(gs, Work, 0, 3); err == nil {
		t.Error("P < N accepted")
	}
	if _, err := Shares(gs, Work, -0.5, 10); err == nil {
		t.Error("bad µ accepted")
	}
	if _, err := Shares(gs, Strategy(9), 0, 10); err == nil {
		t.Error("unknown strategy accepted")
	}
}

// TestFigure5Scenario reproduces the case study: four mixed-parallel
// applications on a 20-processor cluster. The constraints the paper checks
// visually must hold: the applications' host sets are pairwise disjoint and
// every task stays inside its application's range.
func TestFigure5Scenario(t *testing.T) {
	gs := apps(7, 4, 25)
	p := platform.Homogeneous(20, 1e9)
	res, err := Schedule(gs, p, Work, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Apps) != 4 {
		t.Fatal("app count")
	}
	// Ranges disjoint and covering.
	next := 0
	for i, a := range res.Apps {
		if a.FirstHost != next {
			t.Fatalf("app %d starts at host %d, want %d", i, a.FirstHost, next)
		}
		next += a.Share
	}
	if next != 20 {
		t.Fatalf("ranges cover %d hosts, want 20", next)
	}
	// Every task inside its app's range ("the resource constraints imposed
	// by the algorithm are respected").
	for _, pt := range res.Placed {
		lo := res.Apps[pt.App].FirstHost
		hi := lo + res.Apps[pt.App].Share
		for _, h := range pt.Hosts {
			if h < lo || h >= hi {
				t.Fatalf("task %s of app %d uses host %d outside [%d,%d)",
					pt.ID, pt.App, h, lo, hi)
			}
		}
	}
	// Stretches are >= 1 (contention cannot beat a dedicated cluster by
	// much; tiny slack for list-scheduling anomalies).
	for i, a := range res.Apps {
		if a.Stretch < 0.9 {
			t.Fatalf("app %d stretch %g < 0.9", i, a.Stretch)
		}
	}
	// Trace validates and has one color type per app.
	trace := Trace(res.Placed, 20, core.Property{Name: "algorithm", Value: res.Strategy.String()})
	if err := trace.Validate(); err != nil {
		t.Fatal(err)
	}
	types := trace.TaskTypes()
	if len(types) != 4 {
		t.Fatalf("trace types = %v, want 4 app types", types)
	}
	if trace.MetaValue("algorithm") != "cra_work" {
		t.Fatal("meta lost")
	}
}

func TestBackfillNoDelayProperty(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		gs := apps(seed+100, 3, 20)
		p := platform.Homogeneous(18, 1e9)
		res, err := Schedule(gs, p, Width, 0.25)
		if err != nil {
			t.Fatal(err)
		}
		bf, err := Backfill(res.Placed, 18)
		if err != nil {
			t.Fatal(err)
		}
		if len(bf) != len(res.Placed) {
			t.Fatal("backfill lost tasks")
		}
		byID := map[string]*PlacedTask{}
		for i := range bf {
			byID[bf[i].ID] = &bf[i]
		}
		for i := range res.Placed {
			orig := &res.Placed[i]
			moved := byID[orig.ID]
			// The no-delay guarantee.
			if moved.Start > orig.Start+1e-9 {
				t.Fatalf("seed %d: %s delayed %g -> %g", seed, orig.ID, orig.Start, moved.Start)
			}
			// Durations preserved.
			if math.Abs((moved.End-moved.Start)-(orig.End-orig.Start)) > 1e-9 {
				t.Fatalf("seed %d: %s duration changed", seed, orig.ID)
			}
			// Precedence still holds.
			for _, d := range moved.Deps {
				if byID[d].End > moved.Start+1e-9 {
					t.Fatalf("seed %d: %s starts before dep %s ends", seed, moved.ID, d)
				}
			}
		}
		// No host double-booked after backfilling.
		trace := Trace(bf, 18)
		if err := trace.Validate(); err != nil {
			t.Fatal(err)
		}
		type iv struct{ lo, hi float64 }
		used := map[int][]iv{}
		for _, pt := range bf {
			for _, h := range pt.Hosts {
				for _, prev := range used[h] {
					if pt.Start < prev.hi-1e-9 && prev.lo < pt.End-1e-9 {
						t.Fatalf("seed %d: host %d double-booked", seed, h)
					}
				}
				used[h] = append(used[h], iv{pt.Start, pt.End})
			}
		}
		// Idle time cannot increase ("the reduction of the total idle
		// time can also be easily quantified").
		if TotalIdle(bf, 18) > TotalIdle(res.Placed, 18)+1e-6 {
			t.Fatalf("seed %d: backfilling increased idle time", seed)
		}
		if Makespan(bf) > Makespan(res.Placed)+1e-9 {
			t.Fatalf("seed %d: backfilling increased makespan", seed)
		}
	}
}

func TestBackfillErrors(t *testing.T) {
	// Host outside the cluster.
	_, err := Backfill([]PlacedTask{{ID: "a", Hosts: []int{5}, Start: 0, End: 1}}, 2)
	if err == nil || !strings.Contains(err.Error(), "outside cluster") {
		t.Fatalf("err = %v", err)
	}
	// Dependency ordered after its user (inconsistent schedule).
	_, err = Backfill([]PlacedTask{
		{ID: "late", Hosts: []int{0}, Start: 0, End: 1, Deps: []string{"dep"}},
		{ID: "dep", Hosts: []int{1}, Start: 5, End: 6},
	}, 2)
	if err == nil || !strings.Contains(err.Error(), "not yet finished") {
		t.Fatalf("err = %v", err)
	}
}

func TestUnfairness(t *testing.T) {
	r := &Result{Apps: []AppResult{{Stretch: 1.2}, {Stretch: 3.0}, {Stretch: 2.0}}}
	if got := r.Unfairness(); math.Abs(got-1.8) > 1e-12 {
		t.Fatalf("unfairness = %g", got)
	}
	if (&Result{}).Unfairness() != 0 {
		t.Fatal("empty unfairness")
	}
}

func TestWidthVsWorkDiffer(t *testing.T) {
	// Apps with equal work but very different widths: the two strategies
	// must produce different shares.
	wide := dag.Generate(dag.ShapeWide, dag.GenOptions{
		Nodes: 20, WorkMin: 1e10, WorkMax: 1e10, SerialFraction: 0.05, EdgeBytes: 1e6,
	}, rand.New(rand.NewSource(1)))
	serial := dag.Generate(dag.ShapeSerial, dag.GenOptions{
		Nodes: 20, WorkMin: 1e10, WorkMax: 1e10, SerialFraction: 0.05, EdgeBytes: 1e6,
	}, rand.New(rand.NewSource(2)))
	gs := []*dag.Graph{wide, serial}
	byWork, err := Shares(gs, Work, 0, 16)
	if err != nil {
		t.Fatal(err)
	}
	byWidth, err := Shares(gs, Width, 0, 16)
	if err != nil {
		t.Fatal(err)
	}
	if byWork[0] != byWork[1] {
		t.Fatalf("equal-work apps got unequal work shares %v", byWork)
	}
	if byWidth[0] <= byWidth[1] {
		t.Fatalf("wide app should out-share serial app by width: %v", byWidth)
	}
}

func TestScheduleErrors(t *testing.T) {
	gs := apps(1, 2, 10)
	if _, err := Schedule(gs, platform.Figure7(1e-4), Work, 0); err == nil {
		t.Error("multi-cluster accepted")
	}
	if _, err := Schedule(nil, platform.Homogeneous(8, 1e9), Work, 0); err == nil {
		t.Error("no apps accepted")
	}
}
