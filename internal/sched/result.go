package sched

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/dag"
	"repro/internal/platform"
	"repro/internal/sim"
)

// Assignment is one node's placement in a unified schedule: the global hosts
// it occupies and its planned start and finish times.
type Assignment struct {
	Hosts  []int
	Start  float64
	Finish float64
}

// Result is the unified outcome every Scheduler produces: one Assignment per
// graph node (indexed by node ID), the planned makespan, and algorithm meta
// data. It converts to the simulator's task list and to a Jedule
// core.Schedule, so campaigns, figures, and commands can treat algorithms
// interchangeably.
type Result struct {
	Algorithm   string
	Graph       *dag.Graph
	Platform    *platform.Platform
	Assignments []Assignment
	Makespan    float64
	// Meta carries algorithm-specific key/value pairs (e.g. CPA's T_CP and
	// T_A bounds) that end up as schedule-level properties in traces.
	Meta map[string]string
}

// NewResult allocates a result shell for the graph and platform.
func NewResult(algorithm string, g *dag.Graph, p *platform.Platform) *Result {
	return &Result{
		Algorithm:   algorithm,
		Graph:       g,
		Platform:    p,
		Assignments: make([]Assignment, g.Len()),
		Meta:        map[string]string{},
	}
}

// SetMeta records one algorithm-specific property.
func (r *Result) SetMeta(name, value string) {
	if r.Meta == nil {
		r.Meta = map[string]string{}
	}
	r.Meta[name] = value
}

// Planned converts the result into simulator tasks for independent
// validation by the discrete-event kernel. Tasks are emitted in planned
// start order (ties by node ID): the simulator resolves same-instant host
// contention FIFO in list order, so the replay follows the plan's own
// dispatch order rather than graph construction order.
func (r *Result) Planned() []sim.PlannedTask {
	nodes := append([]*dag.Node(nil), r.Graph.Nodes()...)
	sort.SliceStable(nodes, func(i, j int) bool {
		return r.Assignments[nodes[i].ID].Start < r.Assignments[nodes[j].ID].Start
	})
	out := make([]sim.PlannedTask, 0, len(nodes))
	for _, nd := range nodes {
		a := r.Assignments[nd.ID]
		pt := sim.PlannedTask{
			ID: nd.Name, Type: nd.Type,
			Hosts:    append([]int(nil), a.Hosts...),
			Duration: a.Finish - a.Start,
		}
		for _, e := range nd.Preds() {
			pt.Deps = append(pt.Deps, sim.Dep{From: e.From.Name, Bytes: e.Bytes})
		}
		out = append(out, pt)
	}
	return out
}

// Execute replays the plan on the simulator and returns the trace with the
// algorithm meta data attached.
func (r *Result) Execute(opt sim.ExecOptions) (*sim.WorkflowResult, error) {
	wr, err := sim.Execute(r.Platform, r.Planned(), opt)
	if err != nil {
		return nil, err
	}
	wr.Schedule.SetMeta("algorithm", r.Algorithm)
	for _, k := range r.metaKeys() {
		wr.Schedule.SetMeta(k, r.Meta[k])
	}
	return wr, nil
}

// Trace renders the planned times (not a simulation) as a Jedule schedule,
// mapping hosts back to the platform's cluster structure.
func (r *Result) Trace() (*core.Schedule, error) {
	rec := sim.NewRecorder(r.Platform)
	rec.SetMeta("algorithm", r.Algorithm)
	rec.SetMeta("makespan", fmt.Sprintf("%.3f", r.Makespan))
	for _, k := range r.metaKeys() {
		rec.SetMeta(k, r.Meta[k])
	}
	for _, nd := range r.Graph.Nodes() {
		a := r.Assignments[nd.ID]
		if err := rec.Record(nd.Name, nd.Type, a.Start, a.Finish, a.Hosts); err != nil {
			return nil, err
		}
	}
	return rec.Schedule(), nil
}

// metaKeys returns the meta keys in deterministic order.
func (r *Result) metaKeys() []string {
	keys := make([]string, 0, len(r.Meta))
	for k := range r.Meta {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Validate checks the plan's internal consistency: every node placed on
// valid hosts, precedence respected (a task never starts before a
// predecessor finishes — communication delays, being non-negative, can only
// push starts later), and no host double-booked.
func (r *Result) Validate() error {
	if len(r.Assignments) != r.Graph.Len() {
		return fmt.Errorf("sched: %s: %d assignments for %d nodes",
			r.Algorithm, len(r.Assignments), r.Graph.Len())
	}
	type slot struct {
		start, end float64
		id         string
	}
	byHost := map[int][]slot{}
	for _, nd := range r.Graph.Nodes() {
		a := r.Assignments[nd.ID]
		if len(a.Hosts) == 0 {
			return fmt.Errorf("sched: %s: node %q has no hosts", r.Algorithm, nd.Name)
		}
		if a.Finish < a.Start {
			return fmt.Errorf("sched: %s: node %q finishes before it starts", r.Algorithm, nd.Name)
		}
		for _, h := range a.Hosts {
			if _, err := r.Platform.Host(h); err != nil {
				return fmt.Errorf("sched: %s: node %q: %w", r.Algorithm, nd.Name, err)
			}
			byHost[h] = append(byHost[h], slot{a.Start, a.Finish, nd.Name})
		}
	}
	for _, e := range r.Graph.Edges() {
		if r.Assignments[e.To.ID].Start < r.Assignments[e.From.ID].Finish-1e-9 {
			return fmt.Errorf("sched: %s: %s starts at %g before %s finishes at %g",
				r.Algorithm, e.To.Name, r.Assignments[e.To.ID].Start,
				e.From.Name, r.Assignments[e.From.ID].Finish)
		}
	}
	for h, list := range byHost {
		sort.Slice(list, func(i, j int) bool { return list[i].start < list[j].start })
		for i := 1; i < len(list); i++ {
			if list[i].start < list[i-1].end-1e-9 {
				return fmt.Errorf("sched: %s: host %d double-booked at %g (%s vs %s)",
					r.Algorithm, h, list[i].start, list[i-1].id, list[i].id)
			}
		}
	}
	return nil
}
