package sched

import (
	"math/rand"
	"testing"
)

func TestTimelineTailSemantics(t *testing.T) {
	tl := NewTimeline(3)
	if tl.Hosts() != 3 {
		t.Fatalf("hosts = %d", tl.Hosts())
	}
	tl.Reserve(0, 0, 5)
	tl.Reserve(0, 7, 9)
	tl.Reserve(1, 2, 3)
	if got := tl.FreeAt(0); got != 9 {
		t.Errorf("FreeAt(0) = %g, want 9", got)
	}
	if got := tl.FreeAt(2); got != 0 {
		t.Errorf("FreeAt(2) = %g, want 0", got)
	}
	if got := tl.Makespan(); got != 9 {
		t.Errorf("Makespan = %g, want 9", got)
	}
}

func TestTimelineEarliestGap(t *testing.T) {
	tl := NewTimeline(1)
	tl.Reserve(0, 2, 4)
	tl.Reserve(0, 6, 8)
	cases := []struct {
		ready, dur, want float64
	}{
		{0, 1, 0},   // fits before everything
		{0, 2, 0},   // exactly fills [0,2)
		{0, 3, 8},   // too big for both the head gap and [4,6)
		{3, 1, 4},   // ready inside a reservation
		{5, 2, 8},   // [5,7) collides with [6,8), spills past the tail
		{10, 5, 10}, // after everything
	}
	for _, c := range cases {
		if got := tl.EarliestGap(0, c.ready, c.dur); got != c.want {
			t.Errorf("EarliestGap(ready=%g, dur=%g) = %g, want %g", c.ready, c.dur, got, c.want)
		}
	}
}

func TestTimelineCoalescing(t *testing.T) {
	tl := NewTimeline(1)
	tl.Reserve(0, 0, 1)
	tl.Reserve(0, 1, 2) // touches the first
	tl.Reserve(0, 4, 5)
	tl.Reserve(0, 2, 4) // bridges the two runs
	if got := len(tl.Reserved(0)); got != 1 {
		t.Fatalf("intervals = %d, want 1 after coalescing: %v", got, tl.Reserved(0))
	}
	iv := tl.Reserved(0)[0]
	if iv.Start != 0 || iv.End != 5 {
		t.Fatalf("coalesced interval = %+v, want [0,5)", iv)
	}
}

func TestTimelineEarliestHosts(t *testing.T) {
	tl := NewTimeline(4)
	tl.Reserve(0, 0, 10)
	tl.Reserve(2, 0, 1)
	got := tl.EarliestHosts(2)
	if len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Fatalf("EarliestHosts(2) = %v, want [1 3]", got)
	}
	if got := tl.EarliestHosts(10); len(got) != 4 {
		t.Fatalf("EarliestHosts clamps to host count, got %v", got)
	}
}

// TestTimelineAgainstNaive cross-checks gap queries against a brute-force
// reference on random reservation patterns.
func TestTimelineAgainstNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	tl := NewTimeline(1)
	var naive []Interval
	for step := 0; step < 300; step++ {
		ready := rng.Float64() * 50
		dur := rng.Float64() * 5
		want := naiveGap(naive, ready, dur)
		got := tl.EarliestGap(0, ready, dur)
		if got != want {
			t.Fatalf("step %d: EarliestGap(%g, %g) = %g, want %g (reserved %v)",
				step, ready, dur, got, want, tl.Reserved(0))
		}
		tl.Reserve(0, got, got+dur)
		naive = append(naive, Interval{got, got + dur})
	}
	// The reservation list must stay sorted and disjoint.
	list := tl.Reserved(0)
	for i := 1; i < len(list); i++ {
		if list[i].Start < list[i-1].End {
			t.Fatalf("intervals overlap or unsorted at %d: %v", i, list)
		}
	}
}

func naiveGap(reserved []Interval, ready, dur float64) float64 {
	start := ready
	for changed := true; changed; {
		changed = false
		for _, iv := range reserved {
			if start < iv.End && start+dur > iv.Start {
				start = iv.End
				changed = true
			}
		}
	}
	return start
}
