package stats

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"repro/internal/core"
)

func sample() *core.Schedule {
	s := core.NewSingleCluster("c", 4)
	s.Add("a", "computation", 0, 10, 0, 2) // area 20
	s.Add("b", "computation", 0, 4, 2, 1)  // area 4
	s.Add("x", "transfer", 4, 6, 2, 2)     // area 4
	s.SetMeta("algorithm", "demo")
	return s
}

func TestByType(t *testing.T) {
	rows := ByType(sample())
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Sorted by descending area: computation (24) before transfer (4).
	if rows[0].Type != "computation" || rows[1].Type != "transfer" {
		t.Fatalf("order = %s, %s", rows[0].Type, rows[1].Type)
	}
	c := rows[0]
	if c.Tasks != 2 || math.Abs(c.Area-24) > 1e-9 || c.MaxHosts != 2 {
		t.Fatalf("computation row = %+v", c)
	}
	if math.Abs(c.MeanDur-7) > 1e-9 || c.MinDur != 4 || c.MaxDur != 10 {
		t.Fatalf("durations = %+v", c)
	}
	// Composites excluded.
	rows2 := ByType(sample().WithComposites())
	if len(rows2) != 2 {
		t.Fatalf("composites leaked into ByType: %+v", rows2)
	}
}

func TestHostLoadsAndImbalance(t *testing.T) {
	s := sample()
	loads := HostLoads(s)
	if len(loads) != 4 {
		t.Fatalf("loads = %d", len(loads))
	}
	// Host 0: task a [0,10]; host 2: b [0,4] + x [4,6]; host 3: x [4,6].
	if loads[0].Busy != 10 || loads[2].Busy != 6 || loads[3].Busy != 2 {
		t.Fatalf("loads = %+v", loads)
	}
	if loads[0].Fraction != 1.0 || loads[3].Fraction != 0.2 {
		t.Fatalf("fractions = %+v", loads)
	}
	// Host 3 nearly idle vs fully busy host 0: imbalance (10-2)/10.
	if got := Imbalance(s); math.Abs(got-0.8) > 1e-9 {
		t.Fatalf("imbalance = %g, want 0.8", got)
	}
	// Perfectly balanced schedule.
	b := core.NewSingleCluster("c", 2)
	b.Add("a", "x", 0, 5, 0, 2)
	if got := Imbalance(b); got != 0 {
		t.Fatalf("balanced imbalance = %g", got)
	}
	// Empty schedule.
	if Imbalance(&core.Schedule{}) != 0 {
		t.Fatal("empty imbalance")
	}
}

func TestSparkline(t *testing.T) {
	line := Sparkline(sample(), 20)
	if len([]rune(line)) != 21 {
		t.Fatalf("sparkline length = %d", len([]rune(line)))
	}
	if !strings.ContainsRune(line, '█') {
		t.Fatalf("no full block in %q", line)
	}
	// All-idle schedule renders blanks.
	empty := core.NewSingleCluster("c", 2)
	empty.Add("z", "x", 0, 0, 0, 1) // zero-duration
	if got := Sparkline(empty, 5); got != "" && strings.Trim(got, " ") != "" {
		t.Fatalf("idle sparkline = %q", got)
	}
}

func TestWriteProfileCSV(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteProfileCSV(&buf, sample(), 10); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if lines[0] != "time,busy_hosts" {
		t.Fatalf("header = %q", lines[0])
	}
	if len(lines) != 12 {
		t.Fatalf("lines = %d, want header + 11 samples", len(lines))
	}
	if !strings.HasPrefix(lines[1], "0,") {
		t.Fatalf("first sample = %q", lines[1])
	}
}

func TestReport(t *testing.T) {
	var buf bytes.Buffer
	if err := Report(&buf, sample()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"makespan", "utilization", "imbalance", "algorithm=demo",
		"computation", "transfer", "profile |",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}

func TestCompare(t *testing.T) {
	a := sample()
	b := core.NewSingleCluster("c", 4)
	b.Add("a", "computation", 0, 5, 0, 4) // faster, fully packed
	c := Compare(a, b)
	if c.MakespanA != 10 || c.MakespanB != 5 {
		t.Fatalf("makespans = %+v", c)
	}
	if c.Speedup != 2 {
		t.Fatalf("speedup = %g", c.Speedup)
	}
	if c.IdleReduction <= 0 {
		t.Fatalf("idle reduction = %g", c.IdleReduction)
	}
	var buf bytes.Buffer
	if err := WriteComparison(&buf, "before", "after", c); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "speedup 2.000x") {
		t.Fatalf("comparison output:\n%s", buf.String())
	}
	// Degenerate: zero makespan B.
	z := Compare(a, &core.Schedule{})
	if z.Speedup != 0 {
		t.Fatal("zero-makespan speedup should be 0")
	}
}
