// Package stats derives textual reports from schedules — the sanity checks
// the paper says a visualization enables ("checking the number of requested
// and assigned processors for a multiprocessor job", spotting idle holes,
// quantifying idle-time reductions) in machine-checkable form. It
// complements the charts: cmd/jedstat prints these reports for any Jedule
// file, and the comparison report quantifies the difference between two
// schedules of the same workload (CPA vs MCPA, before vs after
// backfilling).
package stats

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/core"
)

// TypeRow summarizes one task type.
type TypeRow struct {
	Type     string
	Tasks    int
	Area     float64 // task-time x hosts
	MinDur   float64
	MaxDur   float64
	MeanDur  float64
	MaxHosts int
}

// ByType aggregates tasks per type, sorted by descending area. Composite
// tasks are excluded (they duplicate their members' time).
func ByType(s *core.Schedule) []TypeRow {
	acc := map[string]*TypeRow{}
	for i := range s.Tasks {
		t := &s.Tasks[i]
		if t.Type == core.CompositeType {
			continue
		}
		r, ok := acc[t.Type]
		if !ok {
			r = &TypeRow{Type: t.Type, MinDur: t.Duration()}
			acc[t.Type] = r
		}
		d := t.Duration()
		hosts := t.TotalHosts()
		r.Tasks++
		r.Area += d * float64(hosts)
		if d < r.MinDur {
			r.MinDur = d
		}
		if d > r.MaxDur {
			r.MaxDur = d
		}
		r.MeanDur += d
		if hosts > r.MaxHosts {
			r.MaxHosts = hosts
		}
	}
	out := make([]TypeRow, 0, len(acc))
	for _, r := range acc {
		if r.Tasks > 0 {
			r.MeanDur /= float64(r.Tasks)
		}
		out = append(out, *r)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Area != out[j].Area {
			return out[i].Area > out[j].Area
		}
		return out[i].Type < out[j].Type
	})
	return out
}

// HostLoad is the busy time of one host.
type HostLoad struct {
	Cluster, Host int
	Busy          float64
	Fraction      float64 // of the global makespan
}

// HostLoads returns per-host busy times, ordered by cluster then host.
func HostLoads(s *core.Schedule) []HostLoad {
	span := s.Extent().Span()
	var out []HostLoad
	for _, c := range s.Clusters {
		for h := 0; h < c.Hosts; h++ {
			busy := s.HostBusyTime(c.ID, h)
			l := HostLoad{Cluster: c.ID, Host: h, Busy: busy}
			if span > 0 {
				l.Fraction = busy / span
			}
			out = append(out, l)
		}
	}
	return out
}

// Imbalance returns (max-min)/max over host busy times; 0 means perfectly
// balanced, values near 1 mean some hosts idle while others work — the
// MCPA hole of Figure 4 in one number.
func Imbalance(s *core.Schedule) float64 {
	loads := HostLoads(s)
	if len(loads) == 0 {
		return 0
	}
	lo, hi := loads[0].Busy, loads[0].Busy
	for _, l := range loads[1:] {
		if l.Busy < lo {
			lo = l.Busy
		}
		if l.Busy > hi {
			hi = l.Busy
		}
	}
	if hi == 0 {
		return 0
	}
	return (hi - lo) / hi
}

// Sparkline renders the busy-host profile as a one-line unicode sparkline
// with n samples, giving a terminal-level "bird's eye view".
func Sparkline(s *core.Schedule, n int) string {
	prof := s.Filter(func(t *core.Task) bool { return t.Type != core.CompositeType }).
		UtilizationProfile(n)
	if len(prof) == 0 {
		return ""
	}
	max := 0
	for _, v := range prof {
		if v > max {
			max = v
		}
	}
	if max == 0 {
		return strings.Repeat(" ", len(prof))
	}
	levels := []rune(" ▁▂▃▄▅▆▇█")
	var b strings.Builder
	for _, v := range prof {
		idx := v * (len(levels) - 1) / max
		b.WriteRune(levels[idx])
	}
	return b.String()
}

// WriteProfileCSV emits "time,busy_hosts" samples for external plotting.
func WriteProfileCSV(w io.Writer, s *core.Schedule, n int) error {
	ext := s.Extent()
	prof := s.Filter(func(t *core.Task) bool { return t.Type != core.CompositeType }).
		UtilizationProfile(n)
	if _, err := fmt.Fprintln(w, "time,busy_hosts"); err != nil {
		return err
	}
	for i, v := range prof {
		t := ext.Min
		if n > 0 {
			t += ext.Span() * float64(i) / float64(n)
		}
		if _, err := fmt.Fprintf(w, "%g,%d\n", t, v); err != nil {
			return err
		}
	}
	return nil
}

// Report writes a human-readable summary of the schedule.
func Report(w io.Writer, s *core.Schedule) error {
	st := s.ComputeStats()
	fmt.Fprintf(w, "schedule: %s\n", s)
	fmt.Fprintf(w, "makespan     %.6g\n", st.Makespan)
	fmt.Fprintf(w, "utilization  %.1f%%\n", 100*st.Utilization)
	fmt.Fprintf(w, "busy/idle    %.6g / %.6g host-time\n", st.BusyArea, st.IdleArea)
	fmt.Fprintf(w, "imbalance    %.3f\n", Imbalance(s))
	if len(s.Meta) > 0 {
		fmt.Fprintf(w, "meta        ")
		for _, m := range s.Meta {
			fmt.Fprintf(w, " %s=%s", m.Name, m.Value)
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w, "\ntype                 tasks        area     mean dur   max hosts")
	for _, r := range ByType(s) {
		fmt.Fprintf(w, "%-20s %5d %11.4g %12.4g %11d\n",
			r.Type, r.Tasks, r.Area, r.MeanDur, r.MaxHosts)
	}
	fmt.Fprintf(w, "\nprofile |%s|\n", Sparkline(s, 60))
	return nil
}

// Comparison quantifies the difference between two schedules of the same
// workload (for example before/after backfilling, or CPA vs MCPA).
type Comparison struct {
	MakespanA, MakespanB float64
	Speedup              float64 // MakespanA / MakespanB (>1: B faster)
	UtilizationA         float64
	UtilizationB         float64
	IdleReduction        float64 // IdleA - IdleB
}

// Compare computes a Comparison of a versus b.
func Compare(a, b *core.Schedule) Comparison {
	sa, sb := a.ComputeStats(), b.ComputeStats()
	c := Comparison{
		MakespanA: sa.Makespan, MakespanB: sb.Makespan,
		UtilizationA: sa.Utilization, UtilizationB: sb.Utilization,
		IdleReduction: sa.IdleArea - sb.IdleArea,
	}
	if sb.Makespan > 0 {
		c.Speedup = sa.Makespan / sb.Makespan
	}
	return c
}

// WriteComparison prints the comparison with the given labels.
func WriteComparison(w io.Writer, labelA, labelB string, c Comparison) error {
	_, err := fmt.Fprintf(w,
		"%-12s makespan %.6g utilization %.1f%%\n%-12s makespan %.6g utilization %.1f%%\nspeedup %.3fx, idle reduction %.6g host-time\n",
		labelA, c.MakespanA, 100*c.UtilizationA,
		labelB, c.MakespanB, 100*c.UtilizationB,
		c.Speedup, c.IdleReduction)
	return err
}
