package obs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"sort"
	"sync"
	"time"
)

// TraceHeader is the HTTP header that carries a trace ID across hops:
// client → jedserve, coordinator → static worker, coordinator → fleet
// worker (via the lease assignment) and back in the completion report.
const TraceHeader = "X-Jed-Trace"

// maxTraceID bounds accepted IDs; anything longer or with characters outside
// [A-Za-z0-9._-] is replaced with a fresh random ID rather than propagated,
// so a hostile header can't smuggle bytes into logs or lease payloads.
const maxTraceID = 64

// ValidTraceID reports whether s is acceptable as a trace ID.
func ValidTraceID(s string) bool {
	if s == "" || len(s) > maxTraceID {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9':
		case c == '.' || c == '_' || c == '-':
		default:
			return false
		}
	}
	return true
}

// NewTraceID returns a fresh random 16-hex-char ID.
func NewTraceID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand failing is effectively fatal elsewhere; here a
		// constant beats propagating an error through every caller.
		return "trace-rand-unavailable"
	}
	return hex.EncodeToString(b[:])
}

// Span is one named, timed step inside a trace.
type Span struct {
	Name     string        `json:"name"`
	Start    time.Time     `json:"start"`
	Duration time.Duration `json:"duration"`
}

// Trace is a request ID plus an ordered list of timed spans. All methods are
// safe for concurrent use and safe on a nil receiver, so instrumented code
// never branches on whether tracing is wired up.
type Trace struct {
	id string

	mu    sync.Mutex
	spans []Span
}

// NewTrace returns a trace with the given ID, or a fresh random ID when id
// is empty or invalid.
func NewTrace(id string) *Trace {
	if !ValidTraceID(id) {
		id = NewTraceID()
	}
	return &Trace{id: id}
}

// ID returns the trace ID ("" on a nil trace).
func (t *Trace) ID() string {
	if t == nil {
		return ""
	}
	return t.id
}

// StartSpan begins a span and returns the function that ends it.
func (t *Trace) StartSpan(name string) func() {
	if t == nil {
		return func() {}
	}
	start := time.Now()
	return func() { t.AddSpan(name, start, time.Since(start)) }
}

// AddSpan records an already-measured span.
func (t *Trace) AddSpan(name string, start time.Time, d time.Duration) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.spans = append(t.spans, Span{Name: name, Start: start, Duration: d})
	t.mu.Unlock()
}

// Spans returns a copy of the recorded spans ordered by start time.
func (t *Trace) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	out := append([]Span(nil), t.spans...)
	t.mu.Unlock()
	sort.SliceStable(out, func(i, j int) bool { return out[i].Start.Before(out[j].Start) })
	return out
}

type traceKey struct{}

// NewContext returns ctx carrying t.
func NewContext(ctx context.Context, t *Trace) context.Context {
	return context.WithValue(ctx, traceKey{}, t)
}

// FromContext returns the trace carried by ctx, or nil.
func FromContext(ctx context.Context) *Trace {
	t, _ := ctx.Value(traceKey{}).(*Trace)
	return t
}
