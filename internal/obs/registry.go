// Package obs is the observability layer: a stdlib-only metrics registry
// (atomic counters, gauges, fixed-bucket histograms) with JSON snapshots and
// Prometheus text exposition, plus a lightweight request-tracing primitive
// (Trace) propagated across hops via the X-Jed-Trace header.
//
// The registry is designed for hot paths: a metric handle, once obtained, is
// a couple of atomic operations per update with no locking and no
// allocation. Handles are memoized by (family name, label values), so
// obtaining one repeatedly is a single map lookup under a short lock —
// callers on genuinely hot paths keep the handle.
//
// Metrics are observational only: nothing in this package may influence what
// the instrumented code computes, so rendering stays byte-identical and
// campaign results stay deterministic with observability on or off.
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Metric kinds, as exposed on the TYPE line of the Prometheus exposition.
const (
	kindCounter   = "counter"
	kindGauge     = "gauge"
	kindHistogram = "histogram"
)

// Counter is a monotonically increasing value.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (negative deltas are ignored — counters only go up).
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a value that can go up and down.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add shifts the value by delta.
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, nw) {
			return
		}
	}
}

// Inc adds one; Dec subtracts one.
func (g *Gauge) Inc() { g.Add(1) }
func (g *Gauge) Dec() { g.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram counts observations into fixed buckets and keeps count and sum,
// so averages are exact and quantiles are estimated from the bucket
// boundaries. All updates are atomic; Observe never locks.
type Histogram struct {
	bounds []float64 // ascending upper bounds; an implicit +Inf bucket follows
	counts []atomic.Uint64
	count  atomic.Uint64
	sum    atomic.Uint64 // float64 bits
}

func newHistogram(bounds []float64) *Histogram {
	h := &Histogram{
		bounds: append([]float64(nil), bounds...),
		counts: make([]atomic.Uint64, len(bounds)+1),
	}
	sort.Float64s(h.bounds)
	return h
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	// Buckets are few (tens); linear scan beats binary search at this size
	// and keeps the hot path branch-predictable.
	i := len(h.bounds)
	for b, ub := range h.bounds {
		if v <= ub {
			i = b
			break
		}
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, nw) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// Quantile estimates the q-quantile (0 < q < 1) by linear interpolation
// inside the bucket holding it. Values in the +Inf bucket are attributed to
// the largest finite bound — an estimate can never exceed what the buckets
// resolve. Returns 0 with no observations.
func (h *Histogram) Quantile(q float64) float64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	rank := q * float64(total)
	cum := uint64(0)
	for i := range h.counts {
		n := h.counts[i].Load()
		if n == 0 {
			continue
		}
		if float64(cum+n) >= rank {
			if i >= len(h.bounds) {
				// +Inf bucket: the best upper estimate is the last finite bound.
				if len(h.bounds) == 0 {
					return 0
				}
				return h.bounds[len(h.bounds)-1]
			}
			lo := 0.0
			if i > 0 {
				lo = h.bounds[i-1]
			}
			frac := (rank - float64(cum)) / float64(n)
			if frac < 0 {
				frac = 0
			}
			if frac > 1 {
				frac = 1
			}
			return lo + frac*(h.bounds[i]-lo)
		}
		cum += n
	}
	if len(h.bounds) == 0 {
		return 0
	}
	return h.bounds[len(h.bounds)-1]
}

// buckets returns the cumulative per-bound counts (Prometheus "le" shape):
// one entry per finite bound plus the +Inf total.
func (h *Histogram) buckets() []uint64 {
	out := make([]uint64, len(h.counts))
	cum := uint64(0)
	for i := range h.counts {
		cum += h.counts[i].Load()
		out[i] = cum
	}
	return out
}

// DefBuckets is a latency ladder in seconds, from 1ms to ~40s — covers an
// in-memory cache hit through a million-task rasterization through a remote
// shard wait.
func DefBuckets() []float64 {
	return []float64{0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
		0.25, 0.5, 1, 2.5, 5, 10, 20, 40}
}

// ExpBuckets returns n exponentially spaced upper bounds starting at start.
func ExpBuckets(start, factor float64, n int) []float64 {
	out := make([]float64, 0, n)
	for v := start; len(out) < n; v *= factor {
		out = append(out, v)
	}
	return out
}

// metric is one (label values, value) pair inside a family.
type metric struct {
	labels []string // alternating key, value — sorted by key
	c      *Counter
	g      *Gauge
	h      *Histogram
	fn     func() float64 // callback counter/gauge ("func metric")
}

// family is all metrics sharing one name, type, and help string.
type family struct {
	name, help, kind string
	bounds           []float64 // histograms only
	byKey            map[string]*metric
}

// Registry holds metric families. The zero value is not usable; call
// NewRegistry. A nil *Registry is safe: every lookup returns a live unshared
// metric, so instrumented code never branches on whether observability is
// wired up.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: map[string]*family{}}
}

// labelKey canonicalizes alternating key/value pairs: sorted by key, joined
// with explicit separators so distinct label sets can never collide.
func labelKey(labels []string) (string, []string) {
	if len(labels)%2 != 0 {
		panic("obs: odd label list (want key, value pairs)")
	}
	type kv struct{ k, v string }
	pairs := make([]kv, 0, len(labels)/2)
	for i := 0; i < len(labels); i += 2 {
		pairs = append(pairs, kv{labels[i], labels[i+1]})
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].k < pairs[j].k })
	var sb strings.Builder
	sorted := make([]string, 0, len(labels))
	for _, p := range pairs {
		sb.WriteString(p.k)
		sb.WriteByte(1)
		sb.WriteString(p.v)
		sb.WriteByte(2)
		sorted = append(sorted, p.k, p.v)
	}
	return sb.String(), sorted
}

// lookup returns (creating if needed) the metric of family name with the
// given labels, enforcing one kind per family.
func (r *Registry) lookup(name, help, kind string, bounds []float64, labels []string) *metric {
	key, sorted := labelKey(labels)
	if r == nil {
		// A nil registry still hands out working handles so callers never
		// need to guard their instrumentation.
		m := &metric{labels: sorted}
		switch kind {
		case kindCounter:
			m.c = &Counter{}
		case kindGauge:
			m.g = &Gauge{}
		case kindHistogram:
			m.h = newHistogram(bounds)
		}
		return m
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.families[name]
	if f == nil {
		f = &family{name: name, help: help, kind: kind, byKey: map[string]*metric{}}
		if kind == kindHistogram {
			f.bounds = append([]float64(nil), bounds...)
			sort.Float64s(f.bounds)
		}
		r.families[name] = f
	}
	if f.kind != kind {
		panic(fmt.Sprintf("obs: metric %s registered as %s and %s", name, f.kind, kind))
	}
	m := f.byKey[key]
	if m == nil {
		m = &metric{labels: sorted}
		switch kind {
		case kindCounter:
			m.c = &Counter{}
		case kindGauge:
			m.g = &Gauge{}
		case kindHistogram:
			m.h = newHistogram(f.bounds)
		}
		f.byKey[key] = m
	}
	return m
}

// Counter returns the counter of family name with the given label values
// (alternating key, value), creating family and metric on first use.
func (r *Registry) Counter(name, help string, labels ...string) *Counter {
	return r.lookup(name, help, kindCounter, nil, labels).c
}

// Gauge returns the gauge of family name with the given label values.
func (r *Registry) Gauge(name, help string, labels ...string) *Gauge {
	return r.lookup(name, help, kindGauge, nil, labels).g
}

// Histogram returns the histogram of family name with the given label
// values. The bounds of the first registration win for the whole family.
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...string) *Histogram {
	return r.lookup(name, help, kindHistogram, bounds, labels).h
}

// CounterFunc registers a callback counter: fn is read at snapshot and
// exposition time. This is how existing subsystems with their own internal
// counters (render cache, rate limiter, fleet, events bus) surface on the
// registry without restructuring their locking.
func (r *Registry) CounterFunc(name, help string, fn func() float64, labels ...string) {
	if r == nil {
		return
	}
	m := r.lookup(name, help, kindCounter, nil, labels)
	r.mu.Lock()
	m.fn = fn
	r.mu.Unlock()
}

// GaugeFunc registers a callback gauge.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...string) {
	if r == nil {
		return
	}
	m := r.lookup(name, help, kindGauge, nil, labels)
	r.mu.Lock()
	m.fn = fn
	r.mu.Unlock()
}

// snapshotFamilies returns a stable-ordered copy of the family table; metric
// reads happen outside the registry lock (callback metrics may take
// subsystem locks of their own).
func (r *Registry) snapshotFamilies() []*family {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
	return fams
}

// sortedMetrics returns a family's metrics ordered by label key.
func (f *family) sortedMetrics() []*metric {
	keys := make([]string, 0, len(f.byKey))
	for k := range f.byKey {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]*metric, 0, len(keys))
	for _, k := range keys {
		out = append(out, f.byKey[k])
	}
	return out
}

func (m *metric) labelMap() map[string]string {
	if len(m.labels) == 0 {
		return nil
	}
	lm := make(map[string]string, len(m.labels)/2)
	for i := 0; i < len(m.labels); i += 2 {
		lm[m.labels[i]] = m.labels[i+1]
	}
	return lm
}

// scalarValue resolves a counter/gauge metric, preferring the callback.
func (m *metric) scalarValue() float64 {
	if m.fn != nil {
		return m.fn()
	}
	if m.c != nil {
		return float64(m.c.Value())
	}
	if m.g != nil {
		return m.g.Value()
	}
	return 0
}

// Snapshot returns the whole registry as a JSON-marshalable tree: one entry
// per family carrying type, help, and the metric values (histograms include
// count, sum, and p50/p90/p99 estimates). Served inside GET /api/v1/meta and
// published on the events bus as topic "metrics".
func (r *Registry) Snapshot() map[string]any {
	out := map[string]any{}
	for _, f := range r.snapshotFamilies() {
		values := make([]map[string]any, 0, len(f.byKey))
		for _, m := range f.sortedMetrics() {
			v := map[string]any{}
			if lm := m.labelMap(); lm != nil {
				v["labels"] = lm
			}
			if f.kind == kindHistogram {
				v["count"] = m.h.Count()
				v["sum"] = m.h.Sum()
				v["p50"] = m.h.Quantile(0.50)
				v["p90"] = m.h.Quantile(0.90)
				v["p99"] = m.h.Quantile(0.99)
			} else {
				v["value"] = m.scalarValue()
			}
			values = append(values, v)
		}
		out[f.name] = map[string]any{
			"type":   f.kind,
			"help":   f.help,
			"values": values,
		}
	}
	return out
}

// WritePrometheus writes the registry in the Prometheus text exposition
// format (version 0.0.4): HELP and TYPE comments per family, one line per
// sample, histograms as cumulative le-labeled buckets plus _sum and _count.
func (r *Registry) WritePrometheus(w io.Writer) error {
	for _, f := range r.snapshotFamilies() {
		if f.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.name, escapeHelp(f.help)); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.kind); err != nil {
			return err
		}
		for _, m := range f.sortedMetrics() {
			var err error
			if f.kind == kindHistogram {
				err = writeHistogram(w, f, m)
			} else {
				_, err = fmt.Fprintf(w, "%s%s %s\n", f.name, formatLabels(m.labels, "", ""), formatValue(m.scalarValue()))
			}
			if err != nil {
				return err
			}
		}
	}
	return nil
}

func writeHistogram(w io.Writer, f *family, m *metric) error {
	cum := m.h.buckets()
	for i, ub := range m.h.bounds {
		le := formatValue(ub)
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", f.name, formatLabels(m.labels, "le", le), cum[i]); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", f.name, formatLabels(m.labels, "le", "+Inf"), cum[len(cum)-1]); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", f.name, formatLabels(m.labels, "", ""), formatValue(m.h.Sum())); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", f.name, formatLabels(m.labels, "", ""), m.h.Count())
	return err
}

// formatLabels renders {k="v",...}, appending one extra pair (the histogram
// le label) when extraK is non-empty. Empty label sets render as nothing.
func formatLabels(labels []string, extraK, extraV string) string {
	if len(labels) == 0 && extraK == "" {
		return ""
	}
	var sb strings.Builder
	sb.WriteByte('{')
	for i := 0; i < len(labels); i += 2 {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(labels[i])
		sb.WriteString(`="`)
		sb.WriteString(escapeLabel(labels[i+1]))
		sb.WriteByte('"')
	}
	if extraK != "" {
		if len(labels) > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(extraK)
		sb.WriteString(`="`)
		sb.WriteString(escapeLabel(extraV))
		sb.WriteByte('"')
	}
	sb.WriteByte('}')
	return sb.String()
}

func formatValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case v == math.Trunc(v) && math.Abs(v) < 1e15:
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, "\n", `\n`)
	return strings.ReplaceAll(s, `"`, `\"`)
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}
