package obs

import (
	"math"
	"strconv"
	"strings"
	"sync"
	"testing"
)

func TestCounterGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "help")
	c.Inc()
	c.Add(4)
	c.Add(-10) // ignored: counters are monotonic
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if again := r.Counter("c_total", "help"); again != c {
		t.Fatal("same name+labels should return the same counter")
	}
	if other := r.Counter("c_total", "help", "k", "v"); other == c {
		t.Fatal("different labels should return a different counter")
	}

	g := r.Gauge("g", "help")
	g.Set(2.5)
	g.Inc()
	g.Add(-0.5)
	if got := g.Value(); got != 3 {
		t.Fatalf("gauge = %v, want 3", got)
	}
}

func TestLabelOrderCanonical(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x_total", "", "b", "2", "a", "1")
	b := r.Counter("x_total", "", "a", "1", "b", "2")
	if a != b {
		t.Fatal("label order should not distinguish metrics")
	}
	// Values that collide under naive joining must stay distinct.
	p := r.Counter("y_total", "", "k", "a,b")
	q := r.Counter("y_total", "", "k", "a", "k2", "b")
	if p == q {
		t.Fatal("distinct label sets collided")
	}
}

func TestKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("m", "")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on kind mismatch")
		}
	}()
	r.Gauge("m", "")
}

func TestNilRegistrySafe(t *testing.T) {
	var r *Registry
	r.Counter("a_total", "").Inc()
	r.Gauge("b", "").Set(1)
	r.Histogram("c", "", DefBuckets()).Observe(0.1)
	r.CounterFunc("d_total", "", func() float64 { return 1 })
	if got := r.Snapshot(); len(got) != 0 {
		t.Fatalf("nil registry snapshot = %v, want empty", got)
	}
	if err := r.WritePrometheus(&strings.Builder{}); err != nil {
		t.Fatalf("nil registry WritePrometheus: %v", err)
	}
}

func TestHistogramBuckets(t *testing.T) {
	h := newHistogram([]float64{1, 2, 5})
	for _, v := range []float64{0.5, 1, 1.5, 2, 3, 10} {
		h.Observe(v)
	}
	// Per-bucket: (<=1): 0.5, 1 → 2; (<=2): 1.5, 2 → 2; (<=5): 3 → 1; +Inf: 10 → 1
	want := []uint64{2, 4, 5, 6} // cumulative
	got := h.buckets()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("bucket[%d] = %d, want %d (all %v)", i, got[i], want[i], got)
		}
	}
	if h.Count() != 6 {
		t.Fatalf("count = %d, want 6", h.Count())
	}
	if h.Sum() != 18 {
		t.Fatalf("sum = %v, want 18", h.Sum())
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := newHistogram([]float64{1, 2, 4})
	if got := h.Quantile(0.5); got != 0 {
		t.Fatalf("empty quantile = %v, want 0", got)
	}
	// 100 observations uniform in (0,1]: quantiles interpolate inside the
	// first bucket.
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i) / 100)
	}
	if got := h.Quantile(0.5); math.Abs(got-0.5) > 1e-9 {
		t.Fatalf("p50 = %v, want 0.5", got)
	}
	if got := h.Quantile(0.99); math.Abs(got-0.99) > 1e-9 {
		t.Fatalf("p99 = %v, want 0.99", got)
	}

	// Observations past the last bound report the last finite bound.
	h2 := newHistogram([]float64{1, 2})
	h2.Observe(50)
	if got := h2.Quantile(0.5); got != 2 {
		t.Fatalf("overflow quantile = %v, want 2 (last finite bound)", got)
	}

	// Interpolation across a middle bucket: 10 in (0,1], 10 in (2,4].
	h3 := newHistogram([]float64{1, 2, 4})
	for i := 0; i < 10; i++ {
		h3.Observe(0.5)
		h3.Observe(3)
	}
	// p75 → rank 15, bucket (2,4], frac 5/10 → 3.
	if got := h3.Quantile(0.75); math.Abs(got-3) > 1e-9 {
		t.Fatalf("p75 = %v, want 3", got)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	h := newHistogram(DefBuckets())
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.Observe(0.01)
			}
		}()
	}
	wg.Wait()
	if h.Count() != 8000 {
		t.Fatalf("count = %d, want 8000", h.Count())
	}
	if math.Abs(h.Sum()-80) > 1e-6 {
		t.Fatalf("sum = %v, want 80", h.Sum())
	}
}

func TestFuncMetrics(t *testing.T) {
	r := NewRegistry()
	n := 7.0
	r.CounterFunc("fn_total", "callback", func() float64 { return n })
	r.GaugeFunc("fn_gauge", "callback", func() float64 { return -n })
	snap := r.Snapshot()
	fam := snap["fn_total"].(map[string]any)
	vals := fam["values"].([]map[string]any)
	if got := vals[0]["value"].(float64); got != 7 {
		t.Fatalf("func counter = %v, want 7", got)
	}
	n = 9
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "fn_total 9") {
		t.Fatalf("exposition missing updated callback value:\n%s", sb.String())
	}
	if !strings.Contains(sb.String(), "fn_gauge -9") {
		t.Fatalf("exposition missing gauge:\n%s", sb.String())
	}
}

// parseProm is a minimal exposition-format parser: enough to round-trip what
// WritePrometheus emits and catch formatting regressions.
func parseProm(t *testing.T, text string) map[string]float64 {
	t.Helper()
	out := map[string]float64{}
	for _, line := range strings.Split(text, "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("unparseable line: %q", line)
		}
		key, valStr := line[:sp], line[sp+1:]
		var val float64
		switch valStr {
		case "+Inf":
			val = math.Inf(1)
		case "-Inf":
			val = math.Inf(-1)
		default:
			v, err := strconv.ParseFloat(valStr, 64)
			if err != nil {
				t.Fatalf("bad value in line %q: %v", line, err)
			}
			val = v
		}
		// Validate the name/labels shape.
		name := key
		if i := strings.IndexByte(key, '{'); i >= 0 {
			name = key[:i]
			if !strings.HasSuffix(key, "}") {
				t.Fatalf("unterminated labels in %q", line)
			}
		}
		for j := 0; j < len(name); j++ {
			c := name[j]
			ok := c == '_' || c == ':' ||
				(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
				(j > 0 && c >= '0' && c <= '9')
			if !ok {
				t.Fatalf("invalid metric name %q", name)
			}
		}
		out[key] = val
	}
	return out
}

func TestPrometheusRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("jed_req_total", "Requests.", "route", "/api/v1/meta", "method", "GET").Add(3)
	r.Gauge("jed_in_flight", "In flight.").Set(2)
	h := r.Histogram("jed_latency_seconds", "Latency.", []float64{0.1, 1}, "route", "/x")
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5)
	r.Counter("jed_weird_total", `needs "escaping"`, "k", "a\\b\"c\nd").Inc()

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	vals := parseProm(t, text)

	if got := vals[`jed_req_total{method="GET",route="/api/v1/meta"}`]; got != 3 {
		t.Fatalf("counter sample = %v, want 3 in:\n%s", got, text)
	}
	if got := vals["jed_in_flight"]; got != 2 {
		t.Fatalf("gauge sample = %v, want 2", got)
	}
	for key, want := range map[string]float64{
		`jed_latency_seconds_bucket{route="/x",le="0.1"}`:  1,
		`jed_latency_seconds_bucket{route="/x",le="1"}`:    2,
		`jed_latency_seconds_bucket{route="/x",le="+Inf"}`: 3,
		`jed_latency_seconds_count{route="/x"}`:            3,
	} {
		if vals[key] != want {
			t.Fatalf("%s = %v, want %v in:\n%s", key, vals[key], want, text)
		}
	}
	if got := vals[`jed_latency_seconds_sum{route="/x"}`]; math.Abs(got-5.55) > 1e-9 {
		t.Fatalf("histogram sum = %v, want 5.55", got)
	}
	if !strings.Contains(text, `k="a\\b\"c\nd"`) {
		t.Fatalf("label escaping wrong:\n%s", text)
	}
	if !strings.Contains(text, "# TYPE jed_latency_seconds histogram") {
		t.Fatalf("missing TYPE line:\n%s", text)
	}

	// Families must appear in sorted order for deterministic scrapes.
	iLat := strings.Index(text, "# TYPE jed_latency_seconds")
	iReq := strings.Index(text, "# TYPE jed_req_total")
	if iLat < 0 || iReq < 0 || iLat > iReq {
		t.Fatalf("families not sorted:\n%s", text)
	}
}

func TestSnapshotHistogram(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h_seconds", "", []float64{1, 2})
	h.Observe(0.5)
	h.Observe(1.5)
	snap := r.Snapshot()
	fam := snap["h_seconds"].(map[string]any)
	if fam["type"] != "histogram" {
		t.Fatalf("type = %v", fam["type"])
	}
	v := fam["values"].([]map[string]any)[0]
	if v["count"].(uint64) != 2 {
		t.Fatalf("count = %v", v["count"])
	}
	if v["sum"].(float64) != 2 {
		t.Fatalf("sum = %v", v["sum"])
	}
	if _, ok := v["p99"]; !ok {
		t.Fatal("missing p99")
	}
}

func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				r.Counter("cc_total", "", "g", strconv.Itoa(g%4)).Inc()
				r.Histogram("ch_seconds", "", DefBuckets()).Observe(0.001)
				if i%50 == 0 {
					r.Snapshot()
					r.WritePrometheus(&strings.Builder{})
				}
			}
		}(g)
	}
	wg.Wait()
	total := 0.0
	for _, v := range r.Snapshot()["cc_total"].(map[string]any)["values"].([]map[string]any) {
		total += v["value"].(float64)
	}
	if total != 1600 {
		t.Fatalf("total = %v, want 1600", total)
	}
}
