package obs

import (
	"bufio"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"sync"
	"time"
)

// MiddlewareOptions configures Middleware. Registry may be nil (tracing and
// access logging still work); AccessLog may be nil (no log lines).
type MiddlewareOptions struct {
	// Registry receives jed_http_requests_total, jed_http_in_flight, and
	// jed_http_request_seconds.
	Registry *Registry
	// RouteLabel maps a request to a bounded-cardinality route label. Nil
	// uses the raw path — callers with parameterized routes should supply a
	// normalizer so per-ID paths don't mint unbounded label values.
	RouteLabel func(*http.Request) string
	// AccessLog, when non-nil, receives one JSON line per request. Writes
	// are serialized by the middleware.
	AccessLog io.Writer
}

// accessRecord is one access-log line.
type accessRecord struct {
	Time     string  `json:"time"`
	Method   string  `json:"method"`
	Path     string  `json:"path"`
	Route    string  `json:"route"`
	Status   int     `json:"status"`
	Bytes    int64   `json:"bytes"`
	Duration float64 `json:"duration_ms"`
	Trace    string  `json:"trace,omitempty"`
	Cache    string  `json:"cache,omitempty"`
}

// statusRecorder captures status and byte count while passing everything
// else through. It must keep http.Flusher working: the SSE stream on
// /api/v1/events type-asserts its writer and refuses to run otherwise.
type statusRecorder struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (sr *statusRecorder) WriteHeader(code int) {
	if sr.status == 0 {
		sr.status = code
	}
	sr.ResponseWriter.WriteHeader(code)
}

func (sr *statusRecorder) Write(p []byte) (int, error) {
	if sr.status == 0 {
		sr.status = http.StatusOK
	}
	n, err := sr.ResponseWriter.Write(p)
	sr.bytes += int64(n)
	return n, err
}

func (sr *statusRecorder) Flush() {
	if f, ok := sr.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// Hijack keeps connection upgrades working through the wrapper.
func (sr *statusRecorder) Hijack() (net.Conn, *bufio.ReadWriter, error) {
	if hj, ok := sr.ResponseWriter.(http.Hijacker); ok {
		return hj.Hijack()
	}
	return nil, nil, http.ErrNotSupported
}

func statusClass(code int) string {
	switch {
	case code < 200:
		return "1xx"
	case code < 300:
		return "2xx"
	case code < 400:
		return "3xx"
	case code < 500:
		return "4xx"
	default:
		return "5xx"
	}
}

// Middleware wraps next with request metrics, trace propagation, and
// optional structured access logging.
//
// Per request it: adopts the X-Jed-Trace header (or mints an ID), threads
// the Trace through the request context, echoes the ID on the response;
// counts jed_http_requests_total{route,method,class}, tracks the
// jed_http_in_flight gauge, and observes jed_http_request_seconds{route}.
// The access log line is written after the handler returns, reusing the
// same measurements.
func Middleware(next http.Handler, opt MiddlewareOptions) http.Handler {
	routeOf := opt.RouteLabel
	if routeOf == nil {
		routeOf = func(r *http.Request) string { return r.URL.Path }
	}
	var inFlight *Gauge
	if opt.Registry != nil {
		inFlight = opt.Registry.Gauge("jed_http_in_flight",
			"HTTP requests currently being served.")
	}
	var logMu sync.Mutex
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		route := routeOf(r)

		tr := NewTrace(r.Header.Get(TraceHeader))
		w.Header().Set(TraceHeader, tr.ID())
		r = r.WithContext(NewContext(r.Context(), tr))

		sr := &statusRecorder{ResponseWriter: w}
		if inFlight != nil {
			inFlight.Inc()
		}
		next.ServeHTTP(sr, r)
		if inFlight != nil {
			inFlight.Dec()
		}
		if sr.status == 0 {
			sr.status = http.StatusOK
		}
		elapsed := time.Since(start)

		if opt.Registry != nil {
			opt.Registry.Counter("jed_http_requests_total",
				"HTTP requests served, by route, method, and status class.",
				"route", route, "method", r.Method, "class", statusClass(sr.status)).Inc()
			opt.Registry.Histogram("jed_http_request_seconds",
				"HTTP request latency in seconds, by route.",
				DefBuckets(), "route", route).Observe(elapsed.Seconds())
		}

		if opt.AccessLog != nil {
			line, err := json.Marshal(accessRecord{
				Time:     start.UTC().Format(time.RFC3339Nano),
				Method:   r.Method,
				Path:     r.URL.Path,
				Route:    route,
				Status:   sr.status,
				Bytes:    sr.bytes,
				Duration: float64(elapsed.Microseconds()) / 1000,
				Trace:    tr.ID(),
				Cache:    sr.Header().Get("X-Render-Cache"),
			})
			if err == nil {
				logMu.Lock()
				opt.AccessLog.Write(append(line, '\n'))
				logMu.Unlock()
			}
		}
	})
}
