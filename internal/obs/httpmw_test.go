package obs

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestMiddlewareMetricsAndTrace(t *testing.T) {
	r := NewRegistry()
	var sawTrace string
	h := Middleware(http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		sawTrace = FromContext(req.Context()).ID()
		w.WriteHeader(http.StatusNotFound)
	}), MiddlewareOptions{
		Registry:   r,
		RouteLabel: func(*http.Request) string { return "/x/{id}" },
	})

	req := httptest.NewRequest("GET", "/x/123", nil)
	req.Header.Set(TraceHeader, "trace-abc")
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)

	if sawTrace != "trace-abc" {
		t.Fatalf("handler saw trace %q, want trace-abc", sawTrace)
	}
	if got := rec.Header().Get(TraceHeader); got != "trace-abc" {
		t.Fatalf("response trace header = %q", got)
	}

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	if !strings.Contains(text, `jed_http_requests_total{class="4xx",method="GET",route="/x/{id}"} 1`) {
		t.Fatalf("missing request counter:\n%s", text)
	}
	if !strings.Contains(text, `jed_http_request_seconds_count{route="/x/{id}"} 1`) {
		t.Fatalf("missing latency histogram:\n%s", text)
	}
	if !strings.Contains(text, "jed_http_in_flight 0") {
		t.Fatalf("in-flight gauge should settle at 0:\n%s", text)
	}
}

func TestMiddlewareMintsTraceID(t *testing.T) {
	h := Middleware(http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Write([]byte("ok"))
	}), MiddlewareOptions{})
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/", nil))
	if id := rec.Header().Get(TraceHeader); !ValidTraceID(id) {
		t.Fatalf("minted trace ID %q invalid", id)
	}
	// Hostile header values are replaced, not echoed.
	req := httptest.NewRequest("GET", "/", nil)
	req.Header.Set(TraceHeader, "evil\nid")
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if id := rec.Header().Get(TraceHeader); !ValidTraceID(id) {
		t.Fatalf("hostile trace replaced with invalid %q", id)
	}
}

func TestMiddlewareAccessLog(t *testing.T) {
	var buf bytes.Buffer
	h := Middleware(http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("X-Render-Cache", "hit")
		w.Write([]byte("hello"))
	}), MiddlewareOptions{
		AccessLog:  &buf,
		RouteLabel: func(*http.Request) string { return "/sessions/{id}/render" },
	})
	req := httptest.NewRequest("GET", "/sessions/s1/render?w=10", nil)
	req.Header.Set(TraceHeader, "log-trace")
	h.ServeHTTP(httptest.NewRecorder(), req)

	var rec accessRecord
	if err := json.Unmarshal(buf.Bytes(), &rec); err != nil {
		t.Fatalf("access log not JSON: %v (%q)", err, buf.String())
	}
	want := accessRecord{
		Method: "GET", Path: "/sessions/s1/render",
		Route: "/sessions/{id}/render", Status: 200, Bytes: 5,
		Trace: "log-trace", Cache: "hit",
	}
	rec.Time, rec.Duration = "", 0
	if rec != want {
		t.Fatalf("access record = %+v, want %+v", rec, want)
	}
}

// flushRecorder proves the wrapper preserves http.Flusher — the SSE handler
// refuses to stream without it.
type flushRecorder struct {
	*httptest.ResponseRecorder
	flushed int
}

func (f *flushRecorder) Flush() { f.flushed++ }

func TestMiddlewarePreservesFlusher(t *testing.T) {
	fr := &flushRecorder{ResponseRecorder: httptest.NewRecorder()}
	h := Middleware(http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		fl, ok := w.(http.Flusher)
		if !ok {
			t.Fatal("middleware writer lost http.Flusher")
		}
		fl.Flush()
	}), MiddlewareOptions{Registry: NewRegistry()})
	h.ServeHTTP(fr, httptest.NewRequest("GET", "/events", nil))
	if fr.flushed != 1 {
		t.Fatalf("flush count = %d, want 1", fr.flushed)
	}
}
