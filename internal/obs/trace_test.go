package obs

import (
	"context"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestValidTraceID(t *testing.T) {
	for _, ok := range []string{"abc", "A-b_c.9", strings.Repeat("x", 64)} {
		if !ValidTraceID(ok) {
			t.Errorf("ValidTraceID(%q) = false, want true", ok)
		}
	}
	for _, bad := range []string{"", "has space", "semi;colon", "a\nb",
		strings.Repeat("x", 65), `quote"id`} {
		if ValidTraceID(bad) {
			t.Errorf("ValidTraceID(%q) = true, want false", bad)
		}
	}
}

func TestNewTrace(t *testing.T) {
	if got := NewTrace("req-42").ID(); got != "req-42" {
		t.Fatalf("ID = %q, want req-42", got)
	}
	// Invalid/empty IDs are replaced, not propagated.
	for _, in := range []string{"", "bad id!"} {
		tr := NewTrace(in)
		if !ValidTraceID(tr.ID()) || tr.ID() == in {
			t.Fatalf("NewTrace(%q).ID() = %q, want fresh valid ID", in, tr.ID())
		}
	}
	a, b := NewTrace(""), NewTrace("")
	if a.ID() == b.ID() {
		t.Fatal("fresh IDs should differ")
	}
}

func TestTraceSpans(t *testing.T) {
	tr := NewTrace("t")
	end := tr.StartSpan("layout")
	time.Sleep(time.Millisecond)
	end()
	tr.AddSpan("encode", time.Now().Add(-time.Second), 250*time.Millisecond)
	spans := tr.Spans()
	if len(spans) != 2 {
		t.Fatalf("got %d spans, want 2", len(spans))
	}
	// Ordered by start time: the backdated encode span comes first.
	if spans[0].Name != "encode" || spans[1].Name != "layout" {
		t.Fatalf("span order = %s, %s", spans[0].Name, spans[1].Name)
	}
	if spans[1].Duration <= 0 {
		t.Fatalf("layout duration = %v, want > 0", spans[1].Duration)
	}
}

func TestNilTraceSafe(t *testing.T) {
	var tr *Trace
	if tr.ID() != "" {
		t.Fatal("nil ID should be empty")
	}
	tr.StartSpan("x")()
	tr.AddSpan("y", time.Now(), time.Second)
	if tr.Spans() != nil {
		t.Fatal("nil Spans should be nil")
	}
}

func TestTraceContext(t *testing.T) {
	if FromContext(context.Background()) != nil {
		t.Fatal("empty context should carry no trace")
	}
	tr := NewTrace("ctx-1")
	ctx := NewContext(context.Background(), tr)
	if got := FromContext(ctx); got != tr {
		t.Fatalf("FromContext = %v, want %v", got, tr)
	}
}

func TestTraceConcurrent(t *testing.T) {
	tr := NewTrace("c")
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				tr.StartSpan("s")()
			}
		}()
	}
	wg.Wait()
	if got := len(tr.Spans()); got != 800 {
		t.Fatalf("spans = %d, want 800", got)
	}
}
