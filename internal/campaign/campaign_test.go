package campaign

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"repro/internal/dag"
)

func smallConfig() Config {
	return Config{
		Shapes:       []dag.Shape{dag.ShapeSerial, dag.ShapeWide, dag.ShapeRandom},
		DAGSizes:     []int{15, 30},
		ClusterSizes: []int{32, 64},
		Algos:        []string{"cpa", "mcpa"},
		Replicates:   3,
		Seed:         7,
	}
}

func TestRunShape(t *testing.T) {
	res, err := Run(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != 3*2*2 {
		t.Fatalf("cells = %d, want 12", len(res.Cells))
	}
	if res.Total != 12*3 {
		t.Fatalf("total = %d, want 36", res.Total)
	}
	for _, c := range res.Cells {
		if c.Runs != 3 {
			t.Fatalf("cell %s runs = %d", c.Key(), c.Runs)
		}
		sum := c.Ties
		for _, w := range c.Wins {
			sum += w
		}
		if sum != c.Runs {
			t.Fatalf("cell %s wins do not sum: %+v", c.Key(), c)
		}
		if c.MeanSpread < 1-1e-9 || c.MaxSpread < 1-1e-9 {
			t.Fatalf("cell %s spreads below 1: %+v", c.Key(), c)
		}
		if c.MaxSpread < c.MeanSpread-1e-9 {
			t.Fatalf("cell %s max < mean", c.Key())
		}
	}
}

func TestRunDeterministicAcrossWorkerCounts(t *testing.T) {
	cfg := smallConfig()
	cfg.Workers = 1
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Workers = 8
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("campaign results depend on worker count")
	}
}

// TestCrossAlgorithmDeterminism runs a campaign spanning two scheduler
// families (CPA variants and HEFT) and checks that the same seed produces
// identical winners regardless of the worker count.
func TestCrossAlgorithmDeterminism(t *testing.T) {
	cfg := Config{
		Shapes:       []dag.Shape{dag.ShapeRandom, dag.ShapeForkJoin},
		DAGSizes:     []int{15},
		ClusterSizes: []int{16},
		Algos:        []string{"cpa", "mcpa2", "heft"},
		Replicates:   3,
		Seed:         13,
		Workers:      1,
	}
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Workers = 7
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("cross-algorithm campaign depends on worker count")
	}
	for _, c := range a.Cells {
		if len(c.Wins) != 3 {
			t.Fatalf("cell %s has %d win counters", c.Key(), len(c.Wins))
		}
		sum := c.Ties
		for _, w := range c.Wins {
			sum += w
		}
		if sum != c.Runs {
			t.Fatalf("cell %s wins do not sum", c.Key())
		}
	}
}

func TestSerialDAGsNeverFavorMCPAcaps(t *testing.T) {
	// On pure chains both algorithms see the same critical path; MCPA's
	// level cap never binds (one task per level), so every run ties.
	cfg := Config{
		Shapes: []dag.Shape{dag.ShapeSerial}, DAGSizes: []int{20},
		ClusterSizes: []int{32}, Algos: []string{"cpa", "mcpa"},
		Replicates: 5, Seed: 3,
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c := res.Cells[0]
	if c.Ties != c.Runs {
		t.Fatalf("serial cell should tie every run: %+v", c)
	}
	if c.MaxSpread > 1+1e-9 {
		t.Fatalf("serial cell should have no spread: %+v", c)
	}
}

func TestCornerCases(t *testing.T) {
	res, err := Run(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	all := res.CornerCases(0) // everything qualifies
	if len(all) != len(res.Cells) {
		t.Fatalf("corner cases = %d", len(all))
	}
	for i := 1; i < len(all); i++ {
		if all[i].MaxSpread > all[i-1].MaxSpread {
			t.Fatal("corner cases unsorted")
		}
	}
	none := res.CornerCases(1e9)
	if len(none) != 0 {
		t.Fatal("impossible threshold matched")
	}
}

func TestWinsOf(t *testing.T) {
	c := Cell{Algos: []string{"cpa", "heft"}, Wins: []int{3, 1}}
	if c.WinsOf("heft") != 1 || c.WinsOf("cpa") != 3 || c.WinsOf("nope") != 0 {
		t.Fatalf("WinsOf broken: %+v", c)
	}
}

func TestWriteTable(t *testing.T) {
	res, err := Run(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := res.WriteTable(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"shape", "cpa-wins", "mcpa-wins", "serial", "total 36 runs"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
	if got := strings.Count(out, "\n"); got != 14 { // header + 12 cells + total
		t.Errorf("table lines = %d, want 14:\n%s", got, out)
	}
}

func TestRunErrors(t *testing.T) {
	bad := smallConfig()
	bad.Shapes = nil
	if _, err := Run(bad); err == nil {
		t.Error("empty shapes accepted")
	}
	bad = smallConfig()
	bad.Replicates = 0
	if _, err := Run(bad); err == nil {
		t.Error("zero replicates accepted")
	}
	bad = smallConfig()
	bad.Algos = []string{"cpa"}
	if _, err := Run(bad); err == nil {
		t.Error("single-algorithm campaign accepted")
	}
	bad = smallConfig()
	bad.Algos = []string{"cpa", "cpa"}
	if _, err := Run(bad); err == nil {
		t.Error("duplicate algorithm accepted")
	}
	bad = smallConfig()
	bad.Algos = []string{"cpa", "not-a-scheduler"}
	if _, err := Run(bad); err == nil {
		t.Error("unknown algorithm accepted")
	}
}

func TestDefaultConfigRunsThousands(t *testing.T) {
	if testing.Short() {
		t.Skip("full campaign")
	}
	cfg := DefaultConfig()
	cfg.Replicates = 2 // keep CI fast; cmd/campaign runs the full size
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Total != len(cfg.Shapes)*len(cfg.DAGSizes)*len(cfg.ClusterSizes)*2 {
		t.Fatalf("total = %d", res.Total)
	}
}
