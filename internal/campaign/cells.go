package campaign

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/dag"
)

// CellSpec identifies one factorial cell before it runs: the cell
// coordinates plus its deterministic index in enumeration order. The index
// is what sharding and checkpoint merging key on — it is stable for a given
// Config regardless of worker count, shard assignment, or resume history.
type CellSpec struct {
	Index   int
	Shape   dag.Shape
	DAGSize int
	Cluster int
}

// Key identifies the cell, matching Cell.Key of the completed result.
func (s CellSpec) Key() string {
	return fmt.Sprintf("%s/%d/%d", s.Shape, s.DAGSize, s.Cluster)
}

// Cells enumerates the factorial deterministically: shapes outermost, then
// DAG sizes, then cluster sizes — the order Run has always used. Every
// execution strategy (synchronous, sharded, resumed, async job) works from
// this one enumeration, so their merged results are interchangeable.
func Cells(cfg Config) []CellSpec {
	out := make([]CellSpec, 0, len(cfg.Shapes)*len(cfg.DAGSizes)*len(cfg.ClusterSizes))
	for _, sh := range cfg.Shapes {
		for _, ds := range cfg.DAGSizes {
			for _, cs := range cfg.ClusterSizes {
				out = append(out, CellSpec{Index: len(out), Shape: sh, DAGSize: ds, Cluster: cs})
			}
		}
	}
	return out
}

// Shard is a 1-based k-of-n partition of the cell enumeration: shard k/n
// owns the cells whose index ≡ k-1 (mod n). Round-robin assignment keeps
// the per-shard work balanced even though cell costs grow with DAG and
// cluster size. The zero Shard owns every cell.
type Shard struct {
	K, N int
}

// ParseShard parses the "k/n" flag syntax; the empty string is the zero
// (run-everything) shard.
func ParseShard(s string) (Shard, error) {
	if s == "" {
		return Shard{}, nil
	}
	ks, ns, ok := strings.Cut(s, "/")
	if !ok {
		return Shard{}, fmt.Errorf("campaign: bad shard %q (want k/n, e.g. 1/4)", s)
	}
	k, err0 := strconv.Atoi(ks)
	n, err1 := strconv.Atoi(ns)
	if err0 != nil || err1 != nil {
		return Shard{}, fmt.Errorf("campaign: bad shard %q (want k/n, e.g. 1/4)", s)
	}
	sh := Shard{K: k, N: n}
	if err := sh.Validate(); err != nil {
		return Shard{}, err
	}
	return sh, nil
}

// IsZero reports whether the shard is the run-everything default.
func (s Shard) IsZero() bool { return s.K == 0 && s.N == 0 }

// Validate checks the partition bounds.
func (s Shard) Validate() error {
	if s.IsZero() {
		return nil
	}
	if s.N < 1 || s.K < 1 || s.K > s.N {
		return fmt.Errorf("campaign: bad shard %d/%d (want 1 <= k <= n)", s.K, s.N)
	}
	return nil
}

// Includes reports whether the shard owns the cell with the given index.
func (s Shard) Includes(index int) bool {
	if s.IsZero() || s.N == 1 {
		return true
	}
	return index%s.N == s.K-1
}

// String renders the flag syntax ("" for the zero shard).
func (s Shard) String() string {
	if s.IsZero() {
		return ""
	}
	return fmt.Sprintf("%d/%d", s.K, s.N)
}
