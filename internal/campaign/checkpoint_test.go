package campaign

import (
	"bytes"
	"context"
	"reflect"
	"strings"
	"testing"
)

// checkpointRun runs cfg while streaming cells to a buffer, returning both.
func checkpointRun(t *testing.T, cfg Config, opt RunOptions) (*Result, *bytes.Buffer) {
	t.Helper()
	var buf bytes.Buffer
	cw, err := NewCheckpointWriter(&buf, cfg)
	if err != nil {
		t.Fatal(err)
	}
	opt.OnCell = cw.WriteCell
	res, err := RunContext(context.Background(), cfg, opt)
	if err != nil {
		t.Fatal(err)
	}
	return res, &buf
}

func TestCheckpointRoundTrip(t *testing.T) {
	cfg := smallConfig()
	res, buf := checkpointRun(t, cfg, RunOptions{})
	cp, err := LoadCheckpoint(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if err := cp.Header.Matches(cfg); err != nil {
		t.Fatal(err)
	}
	if cp.Header.Cells != 12 {
		t.Fatalf("header cells = %d", cp.Header.Cells)
	}
	if cp.ValidSize != int64(buf.Len()) {
		t.Fatalf("valid size = %d, buffer = %d", cp.ValidSize, buf.Len())
	}
	if !reflect.DeepEqual(cp.Result(), res) {
		t.Fatal("checkpoint round trip lost data")
	}
	back, err := cp.Header.Config()
	if err != nil {
		t.Fatal(err)
	}
	if err := cp.Header.Matches(back); err != nil {
		t.Fatalf("Header.Config does not round-trip: %v", err)
	}
}

// TestCheckpointResumeAfterTruncation is the satellite acceptance: cut a
// checkpoint mid-record, load it (dropping the torn tail), rerun with the
// loaded skip set, and verify the combined result equals the full run.
func TestCheckpointResumeAfterTruncation(t *testing.T) {
	cfg := smallConfig()
	full, buf := checkpointRun(t, cfg, RunOptions{})

	// Cut mid-record: strip the last 30 bytes, leaving a torn final line.
	torn := buf.Bytes()[:buf.Len()-30]
	cp, err := LoadCheckpoint(bytes.NewReader(torn))
	if err != nil {
		t.Fatal(err)
	}
	if len(cp.Cells) != len(full.Cells)-1 {
		t.Fatalf("torn checkpoint has %d cells, want %d", len(cp.Cells), len(full.Cells)-1)
	}
	if int(cp.ValidSize) >= len(torn) {
		t.Fatalf("valid size %d does not exclude the torn tail (%d bytes)", cp.ValidSize, len(torn))
	}

	// Resume exactly like cmd/campaign: truncate to the valid prefix,
	// append the missing cells, and reload.
	resumed := bytes.NewBuffer(append([]byte(nil), torn[:cp.ValidSize]...))
	cw := ResumeCheckpointWriter(resumed)
	rest, err := RunContext(context.Background(), cfg, RunOptions{Skip: cp.Keys(), OnCell: cw.WriteCell})
	if err != nil {
		t.Fatal(err)
	}
	if len(rest.Cells) != 1 {
		t.Fatalf("resume ran %d cells, want 1", len(rest.Cells))
	}
	merged, err := Merge(cp.Result(), rest)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(merged, full) {
		t.Fatal("resumed result differs from uninterrupted run")
	}

	// The resumed file itself must load complete.
	cp2, err := LoadCheckpoint(bytes.NewReader(resumed.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(cp2.Result(), full) {
		t.Fatal("resumed checkpoint file differs from uninterrupted run")
	}
}

func TestCheckpointShardFilesMerge(t *testing.T) {
	cfg := smallConfig()
	full, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var parts []*Result
	var firstHeader *Header
	for k := 1; k <= 2; k++ {
		_, buf := checkpointRun(t, cfg, RunOptions{Shard: Shard{K: k, N: 2}})
		cp, err := LoadCheckpoint(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		if firstHeader == nil {
			h := cp.Header
			firstHeader = &h
		} else if err := cp.Header.Equal(*firstHeader); err != nil {
			t.Fatal(err)
		}
		parts = append(parts, cp.Result())
	}
	merged, err := Merge(parts...)
	if err != nil {
		t.Fatal(err)
	}
	if err := merged.Complete(firstHeader.Cells); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(merged, full) {
		t.Fatal("merged shard checkpoints differ from the unsharded run")
	}
}

func TestCheckpointHeaderMismatch(t *testing.T) {
	cfg := smallConfig()
	_, buf := checkpointRun(t, cfg, RunOptions{})
	cp, err := LoadCheckpoint(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	other := cfg
	other.Seed++
	if err := cp.Header.Matches(other); err == nil {
		t.Error("seed change not detected")
	}
	other = cfg
	other.Algos = []string{"cpa", "heft"}
	if err := cp.Header.Matches(other); err == nil {
		t.Error("algorithm change not detected")
	}
	other = cfg
	other.Workers = 7 // execution detail, not campaign identity
	if err := cp.Header.Matches(other); err != nil {
		t.Errorf("worker count changed the header: %v", err)
	}
}

func TestCheckpointCorruption(t *testing.T) {
	cfg := smallConfig()
	_, buf := checkpointRun(t, cfg, RunOptions{})
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")

	for name, doc := range map[string]string{
		"empty":              "",
		"no header":          lines[1] + "\n",
		"cell before header": lines[1] + "\n" + lines[0] + "\n",
		"double header":      lines[0] + "\n" + lines[0] + "\n",
		"mid-file garbage":   lines[0] + "\ngarbage\n" + lines[1] + "\n",
		"complete bad line":  lines[0] + "\n" + lines[1][:len(lines[1])/2] + "\n",
		"empty object":       lines[0] + "\n{}\n",
	} {
		if _, err := LoadCheckpoint(strings.NewReader(doc)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}

	// A torn (unterminated) tail is fine; blank lines are tolerated.
	for name, doc := range map[string]string{
		"torn tail":   lines[0] + "\n" + lines[1][:len(lines[1])/2],
		"blank lines": lines[0] + "\n\n" + lines[1] + "\n\n",
	} {
		if _, err := LoadCheckpoint(strings.NewReader(doc)); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}

	// Duplicate cell records keep the last occurrence.
	dup := lines[0] + "\n" + lines[1] + "\n" + lines[1] + "\n"
	cp, err := LoadCheckpoint(strings.NewReader(dup))
	if err != nil {
		t.Fatal(err)
	}
	if len(cp.Cells) != 1 {
		t.Fatalf("duplicate record kept %d cells", len(cp.Cells))
	}

	// Version guard.
	bad := strings.Replace(lines[0], `"version":1`, `"version":99`, 1)
	if bad == lines[0] {
		t.Fatal("version marker not found in header line")
	}
	if _, err := LoadCheckpoint(strings.NewReader(bad + "\n")); err == nil {
		t.Error("future version accepted")
	}
}

// syncCounter wraps a buffer with a Sync method so tests can observe the
// fsync barriers a CheckpointWriter issues.
type syncCounter struct {
	bytes.Buffer
	syncs int
}

func (s *syncCounter) Sync() error { s.syncs++; return nil }

// TestCheckpointWriterSyncsHeader pins the durability contract: the header
// record is synced before any cell may follow it, Sync flushes on demand,
// and a destination without fsync (a plain buffer) still works.
func TestCheckpointWriterSyncsHeader(t *testing.T) {
	cfg := smallConfig()
	var w syncCounter
	cw, err := NewCheckpointWriter(&w, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if w.syncs != 1 {
		t.Fatalf("header written with %d syncs, want 1", w.syncs)
	}
	if err := cw.WriteCell(Cell{Index: 0}); err != nil {
		t.Fatal(err)
	}
	if err := cw.Sync(); err != nil {
		t.Fatal(err)
	}
	if w.syncs != 2 {
		t.Fatalf("after explicit Sync, syncs = %d, want 2", w.syncs)
	}

	var buf bytes.Buffer
	cw2, err := NewCheckpointWriter(&buf, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := cw2.Sync(); err != nil {
		t.Fatalf("Sync on an unsyncable destination = %v, want nil", err)
	}
}
