// JSONL checkpointing: a campaign streams every completed cell as one JSON
// line, headed by a line describing the configuration. An interrupted run
// resumes by loading the file, skipping the persisted cells, and appending;
// shard files from different processes merge into the full factorial. The
// format is append-only on purpose — a crash mid-write loses at most the
// final, truncated line, which Load tolerates.

package campaign

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"

	"repro/internal/dag"
)

// checkpointVersion guards the wire format.
const checkpointVersion = 1

// Header is the first line of a checkpoint file: enough of the Config to
// verify that a resume or merge talks about the same campaign.
type Header struct {
	Version      int      `json:"version"`
	Algos        []string `json:"algos"`
	Shapes       []string `json:"shapes"`
	DAGSizes     []int    `json:"dag_sizes"`
	ClusterSizes []int    `json:"cluster_sizes"`
	Replicates   int      `json:"replicates"`
	Seed         int64    `json:"seed"`
	// Cells is the full factorial size — what Complete checks a merged
	// shard set against.
	Cells int `json:"cells"`
}

// NewHeader derives the header of a config.
func NewHeader(cfg Config) Header {
	h := Header{
		Version:      checkpointVersion,
		Algos:        append([]string(nil), cfg.Algos...),
		DAGSizes:     append([]int(nil), cfg.DAGSizes...),
		ClusterSizes: append([]int(nil), cfg.ClusterSizes...),
		Replicates:   cfg.Replicates,
		Seed:         cfg.Seed,
		Cells:        len(cfg.Shapes) * len(cfg.DAGSizes) * len(cfg.ClusterSizes),
	}
	for _, s := range cfg.Shapes {
		h.Shapes = append(h.Shapes, s.String())
	}
	return h
}

// Matches verifies that the header describes the given config — the guard
// against resuming a checkpoint with different campaign flags, which would
// silently mix incomparable cells.
func (h Header) Matches(cfg Config) error {
	return h.Equal(NewHeader(cfg))
}

// Equal verifies that two headers describe the same campaign (the guard a
// merge runs across shard files).
func (h Header) Equal(o Header) error {
	a, err0 := json.Marshal(h)
	b, err1 := json.Marshal(o)
	if err0 != nil || err1 != nil {
		return fmt.Errorf("campaign: header not serializable")
	}
	if !bytes.Equal(a, b) {
		return fmt.Errorf("campaign: checkpoint header %s does not match %s", a, b)
	}
	return nil
}

// Config reconstructs the campaign configuration the checkpoint was written
// with (Workers is execution detail, not identity, and comes back zero).
func (h Header) Config() (Config, error) {
	if h.Version != checkpointVersion {
		return Config{}, fmt.Errorf("campaign: checkpoint version %d (want %d)", h.Version, checkpointVersion)
	}
	cfg := Config{
		Algos:        append([]string(nil), h.Algos...),
		DAGSizes:     append([]int(nil), h.DAGSizes...),
		ClusterSizes: append([]int(nil), h.ClusterSizes...),
		Replicates:   h.Replicates,
		Seed:         h.Seed,
	}
	for _, name := range h.Shapes {
		s, err := dag.ParseShape(name)
		if err != nil {
			return Config{}, fmt.Errorf("campaign: checkpoint header: %w", err)
		}
		cfg.Shapes = append(cfg.Shapes, s)
	}
	return cfg, nil
}

// checkpointLine is one line of the file: exactly one field set.
type checkpointLine struct {
	Header *Header `json:"header,omitempty"`
	Cell   *Cell   `json:"cell,omitempty"`
}

// CheckpointWriter streams cells as JSONL records. WriteCell is safe for
// concurrent use; RunOptions.OnCell already serializes, but the REST job
// engine shares writers across retries.
type CheckpointWriter struct {
	mu   sync.Mutex
	enc  *json.Encoder
	sync func() error // w's fsync, when it has one (an *os.File does)
}

// NewCheckpointWriter starts a fresh checkpoint on w by writing the header
// line for cfg. When w can fsync (an *os.File), the header is synced to
// storage before any cell may follow it: a crash must never leave cells
// whose identifying header only ever existed in the page cache.
func NewCheckpointWriter(w io.Writer, cfg Config) (*CheckpointWriter, error) {
	cw := ResumeCheckpointWriter(w)
	h := NewHeader(cfg)
	cw.mu.Lock()
	defer cw.mu.Unlock()
	if err := cw.enc.Encode(checkpointLine{Header: &h}); err != nil {
		return nil, fmt.Errorf("campaign: checkpoint header: %w", err)
	}
	if cw.sync != nil {
		if err := cw.sync(); err != nil {
			return nil, fmt.Errorf("campaign: checkpoint header sync: %w", err)
		}
	}
	return cw, nil
}

// ResumeCheckpointWriter continues an existing checkpoint (opened for
// append): no new header is written.
func ResumeCheckpointWriter(w io.Writer) *CheckpointWriter {
	cw := &CheckpointWriter{enc: json.NewEncoder(w)}
	if s, ok := w.(interface{ Sync() error }); ok {
		cw.sync = s.Sync
	}
	return cw
}

// WriteCell appends one completed cell.
func (cw *CheckpointWriter) WriteCell(c Cell) error {
	cw.mu.Lock()
	defer cw.mu.Unlock()
	return cw.enc.Encode(checkpointLine{Cell: &c})
}

// Sync flushes the checkpoint to storage — the end-of-run barrier a writer
// on a real file should run before declaring the checkpoint complete. A
// writer whose destination cannot fsync reports success.
func (cw *CheckpointWriter) Sync() error {
	cw.mu.Lock()
	defer cw.mu.Unlock()
	if cw.sync == nil {
		return nil
	}
	return cw.sync()
}

// Checkpoint is a loaded JSONL file: the campaign identity plus every
// persisted cell.
type Checkpoint struct {
	Header Header
	// Cells holds the persisted cells sorted by index. A cell recorded
	// twice (possible after a resume raced a crash) keeps the last record.
	Cells []Cell
	// ValidSize is the byte extent of the newline-terminated records — the
	// offset a resume must truncate the file to before appending, so a
	// torn final record is cut instead of silently concatenated with the
	// first appended line.
	ValidSize int64
}

// LoadCheckpoint parses a checkpoint stream. A record only counts once its
// trailing newline made it to storage, so a truncated final line — the
// signature of a run killed mid-write — is dropped silently; a complete
// line that does not parse is corruption and an error.
func LoadCheckpoint(r io.Reader) (*Checkpoint, error) {
	br := bufio.NewReader(r)
	var (
		cp      *Checkpoint
		offset  int64
		valid   int64
		byIndex = map[int]int{}
		lineNo  int
	)
	for {
		line, readErr := br.ReadBytes('\n')
		offset += int64(len(line))
		if readErr != nil && readErr != io.EOF {
			return nil, fmt.Errorf("campaign: checkpoint: %w", readErr)
		}
		if readErr == io.EOF && len(line) > 0 {
			// Unterminated tail: a record torn mid-write. Drop it.
			break
		}
		if len(line) == 0 { // clean EOF
			break
		}
		lineNo++
		trimmed := bytes.TrimSpace(line)
		if len(trimmed) == 0 {
			valid = offset
			continue
		}
		var rec checkpointLine
		if err := json.Unmarshal(trimmed, &rec); err != nil {
			return nil, fmt.Errorf("campaign: checkpoint corrupt at line %d: %v", lineNo, err)
		}
		switch {
		case rec.Header != nil:
			if cp != nil {
				return nil, fmt.Errorf("campaign: checkpoint has two headers (line %d)", lineNo)
			}
			if rec.Header.Version != checkpointVersion {
				return nil, fmt.Errorf("campaign: checkpoint version %d (want %d)",
					rec.Header.Version, checkpointVersion)
			}
			cp = &Checkpoint{Header: *rec.Header}
		case rec.Cell != nil:
			if cp == nil {
				return nil, fmt.Errorf("campaign: checkpoint cell before header (line %d)", lineNo)
			}
			if at, dup := byIndex[rec.Cell.Index]; dup {
				cp.Cells[at] = *rec.Cell
			} else {
				byIndex[rec.Cell.Index] = len(cp.Cells)
				cp.Cells = append(cp.Cells, *rec.Cell)
			}
		default:
			return nil, fmt.Errorf("campaign: checkpoint corrupt at line %d: no header or cell", lineNo)
		}
		valid = offset
	}
	if cp == nil {
		return nil, fmt.Errorf("campaign: checkpoint has no header")
	}
	cp.ValidSize = valid
	sort.SliceStable(cp.Cells, func(i, j int) bool { return cp.Cells[i].Index < cp.Cells[j].Index })
	return cp, nil
}

// Keys returns the persisted cell keys — the RunOptions.Skip set of a
// resumed run.
func (cp *Checkpoint) Keys() map[string]bool {
	out := make(map[string]bool, len(cp.Cells))
	for _, c := range cp.Cells {
		out[c.Key()] = true
	}
	return out
}

// Result converts the checkpoint into a (possibly partial) campaign result,
// ready for Merge with the cells a resumed run still had to compute.
func (cp *Checkpoint) Result() *Result {
	res := &Result{
		Algos: append([]string(nil), cp.Header.Algos...),
		Cells: append([]Cell(nil), cp.Cells...),
	}
	for _, c := range res.Cells {
		res.Total += c.Runs
	}
	return res
}
