package campaign

import (
	"bytes"
	"context"
	"reflect"
	"strings"
	"testing"

	"repro/internal/dag"
)

func TestCellsEnumeration(t *testing.T) {
	cfg := smallConfig()
	specs := Cells(cfg)
	if len(specs) != 3*2*2 {
		t.Fatalf("cells = %d, want 12", len(specs))
	}
	for i, s := range specs {
		if s.Index != i {
			t.Fatalf("spec %d has index %d", i, s.Index)
		}
	}
	// Matches Run's cell order exactly.
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range res.Cells {
		if c.Index != i || c.Key() != specs[i].Key() {
			t.Fatalf("cell %d: %s (index %d) != spec %s", i, c.Key(), c.Index, specs[i].Key())
		}
	}
}

func TestParseShard(t *testing.T) {
	for raw, want := range map[string]Shard{
		"":    {},
		"1/4": {K: 1, N: 4},
		"4/4": {K: 4, N: 4},
		"1/1": {K: 1, N: 1},
	} {
		got, err := ParseShard(raw)
		if err != nil || got != want {
			t.Errorf("ParseShard(%q) = %v, %v", raw, got, err)
		}
	}
	for _, raw := range []string{"0/4", "5/4", "-1/2", "1", "a/b", "1/2/3", "1/0"} {
		if _, err := ParseShard(raw); err == nil {
			t.Errorf("ParseShard(%q) accepted", raw)
		}
	}
}

func TestShardPartition(t *testing.T) {
	// Every index belongs to exactly one of the n shards.
	for _, n := range []int{1, 2, 3, 5} {
		for idx := 0; idx < 20; idx++ {
			owners := 0
			for k := 1; k <= n; k++ {
				if (Shard{K: k, N: n}).Includes(idx) {
					owners++
				}
			}
			if owners != 1 {
				t.Fatalf("index %d owned by %d of %d shards", idx, owners, n)
			}
		}
	}
	if !(Shard{}).Includes(7) {
		t.Fatal("zero shard must include everything")
	}
}

// TestShardMergeEqualsUnsharded is the acceptance criterion: running the
// k/n shards separately and merging equals the unsharded run bit for bit.
func TestShardMergeEqualsUnsharded(t *testing.T) {
	cfg := smallConfig()
	full, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{2, 3} {
		var parts []*Result
		for k := 1; k <= n; k++ {
			part, err := RunContext(context.Background(), cfg, RunOptions{Shard: Shard{K: k, N: n}})
			if err != nil {
				t.Fatal(err)
			}
			parts = append(parts, part)
		}
		merged, err := Merge(parts...)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(merged, full) {
			t.Fatalf("%d-shard merge differs from unsharded run", n)
		}
		if err := merged.Complete(len(full.Cells)); err != nil {
			t.Fatal(err)
		}
		// And the rendered tables match byte for byte.
		var a, b bytes.Buffer
		if err := full.WriteTable(&a); err != nil {
			t.Fatal(err)
		}
		if err := merged.WriteTable(&b); err != nil {
			t.Fatal(err)
		}
		if a.String() != b.String() {
			t.Fatalf("%d-shard table differs:\n%s\nvs\n%s", n, a.String(), b.String())
		}
	}
}

func TestMergeErrors(t *testing.T) {
	cfg := smallConfig()
	half, err := RunContext(context.Background(), cfg, RunOptions{Shard: Shard{K: 1, N: 2}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Merge(); err == nil {
		t.Error("empty merge accepted")
	}
	if _, err := Merge(half, half); err == nil {
		t.Error("duplicate cells accepted")
	}
	other := &Result{Algos: []string{"cpa", "heft"}}
	if _, err := Merge(half, other); err == nil {
		t.Error("mismatched algorithm lists accepted")
	}
	if err := half.Complete(12); err == nil {
		t.Error("half shard claimed completeness")
	}
}

func TestRunOptionsSkipAndOnCell(t *testing.T) {
	cfg := smallConfig()
	full, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	skip := map[string]bool{full.Cells[0].Key(): true, full.Cells[5].Key(): true}
	var streamed []Cell
	rest, err := RunContext(context.Background(), cfg, RunOptions{
		Skip:   skip,
		OnCell: func(c Cell) error { streamed = append(streamed, c); return nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rest.Cells) != len(full.Cells)-2 {
		t.Fatalf("skip left %d cells", len(rest.Cells))
	}
	if len(streamed) != len(rest.Cells) {
		t.Fatalf("OnCell saw %d cells, result has %d", len(streamed), len(rest.Cells))
	}
	for _, c := range rest.Cells {
		if skip[c.Key()] {
			t.Fatalf("skipped cell %s was run", c.Key())
		}
	}
	// Merging the skipped cells back reproduces the full result.
	merged, err := Merge(rest, &Result{
		Algos: full.Algos,
		Cells: []Cell{full.Cells[0], full.Cells[5]},
		Total: full.Cells[0].Runs + full.Cells[5].Runs,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(merged, full) {
		t.Fatal("skip + merge differs from full run")
	}
}

// TestRunContextCancel cancels a campaign mid-flight and checks it returns
// promptly with the context error instead of finishing the factorial.
func TestRunContextCancel(t *testing.T) {
	cfg := Config{
		Shapes:       []dag.Shape{dag.ShapeRandom, dag.ShapeWide, dag.ShapeLong},
		DAGSizes:     []int{40, 80},
		ClusterSizes: []int{64, 128},
		Algos:        []string{"cpa", "mcpa"},
		Replicates:   6,
		Seed:         5,
		Workers:      2,
	}
	ctx, cancel := context.WithCancel(context.Background())
	ran := 0
	_, err := RunContext(ctx, cfg, RunOptions{
		OnCell: func(Cell) error {
			ran++
			if ran == 2 {
				cancel()
			}
			return nil
		},
	})
	if err == nil {
		t.Fatal("cancelled campaign succeeded")
	}
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if ran >= len(Cells(cfg)) {
		t.Fatalf("all %d cells ran despite cancellation", ran)
	}
	cancel()
}

func TestOnCellErrorAborts(t *testing.T) {
	cfg := smallConfig()
	_, err := RunContext(context.Background(), cfg, RunOptions{
		OnCell: func(Cell) error { return context.DeadlineExceeded },
	})
	if err == nil || !strings.Contains(err.Error(), "checkpoint") {
		t.Fatalf("err = %v", err)
	}
}

func TestRunCellMatchesRun(t *testing.T) {
	cfg := smallConfig()
	full, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	spec := Cells(cfg)[3]
	cell, err := RunCell(cfg, spec)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(cell, full.Cells[3]) {
		t.Fatalf("RunCell = %+v, Run cell = %+v", cell, full.Cells[3])
	}
}
