// Package campaign reproduces the experiment campaign of the paper's first
// case study: "We conducted several thousand experiments with different
// types of DAGs (long, wide, serial, etc.) and multiple parallel platforms
// (from smaller cluster with 32 processors to bigger ones)" comparing the
// scheduling performance of CPA and MCPA. Browsing those results is how
// the authors isolated the Figure 4 corner case.
//
// A campaign is a full factorial over DAG shape x DAG size x cluster size
// with several random replicates per cell. Cells run concurrently on a
// bounded worker pool; results are deterministic for a given seed
// regardless of the worker count, because every replicate derives its own
// seeded generator.
package campaign

import (
	"fmt"
	"io"
	"math"
	"math/rand"
	"runtime"
	"sort"
	"sync"

	"repro/internal/dag"
	"repro/internal/platform"
	"repro/internal/sched/cpa"
)

// Config spans the factorial.
type Config struct {
	Shapes       []dag.Shape
	DAGSizes     []int
	ClusterSizes []int
	Replicates   int
	Seed         int64
	// Workers bounds the concurrency; 0 means GOMAXPROCS.
	Workers int
}

// DefaultConfig mirrors the paper's campaign dimensions at a size that
// completes in seconds: five shapes, three DAG sizes, clusters from 32
// processors up.
func DefaultConfig() Config {
	return Config{
		Shapes: []dag.Shape{
			dag.ShapeSerial, dag.ShapeWide, dag.ShapeLong,
			dag.ShapeRandom, dag.ShapeForkJoin,
		},
		DAGSizes:     []int{20, 40, 80},
		ClusterSizes: []int{32, 64, 128},
		Replicates:   8,
		Seed:         1,
	}
}

// Cell aggregates one factorial cell.
type Cell struct {
	Shape    dag.Shape
	DAGSize  int
	Cluster  int
	Runs     int
	WinsCPA  int // CPA strictly better makespan
	WinsMCPA int
	Ties     int
	// MeanRatio is the geometric mean of makespan(MCPA)/makespan(CPA);
	// above 1 means CPA wins on average.
	MeanRatio float64
	// MaxRatio is the worst corner case for MCPA in the cell — large
	// values are Figure 4 material.
	MaxRatio float64
}

// Key identifies the cell.
func (c Cell) Key() string {
	return fmt.Sprintf("%s/%d/%d", c.Shape, c.DAGSize, c.Cluster)
}

// Result is a completed campaign.
type Result struct {
	Cells []Cell
	Total int
}

// Run executes the campaign. The error is non-nil only for configuration
// mistakes; individual scheduling runs cannot fail on valid inputs.
func Run(cfg Config) (*Result, error) {
	if len(cfg.Shapes) == 0 || len(cfg.DAGSizes) == 0 || len(cfg.ClusterSizes) == 0 {
		return nil, fmt.Errorf("campaign: empty factorial dimension")
	}
	if cfg.Replicates < 1 {
		return nil, fmt.Errorf("campaign: need at least one replicate")
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	type cellJob struct {
		idx                  int
		shape                dag.Shape
		dagSize, clusterSize int
	}
	var jobs []cellJob
	for _, sh := range cfg.Shapes {
		for _, ds := range cfg.DAGSizes {
			for _, cs := range cfg.ClusterSizes {
				jobs = append(jobs, cellJob{len(jobs), sh, ds, cs})
			}
		}
	}
	cells := make([]Cell, len(jobs))
	errs := make([]error, len(jobs))

	jobCh := make(chan cellJob)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobCh {
				cells[j.idx], errs[j.idx] = runCell(cfg, j.shape, j.dagSize, j.clusterSize)
			}
		}()
	}
	for _, j := range jobs {
		jobCh <- j
	}
	close(jobCh)
	wg.Wait()

	res := &Result{Cells: cells}
	for i := range errs {
		if errs[i] != nil {
			return nil, errs[i]
		}
		res.Total += cells[i].Runs
	}
	return res, nil
}

// runCell executes the replicates of one factorial cell. Each replicate
// gets its own generator seeded from (campaign seed, cell key, replicate),
// so results do not depend on scheduling order.
func runCell(cfg Config, shape dag.Shape, dagSize, clusterSize int) (Cell, error) {
	cell := Cell{Shape: shape, DAGSize: dagSize, Cluster: clusterSize, MeanRatio: 1}
	p := platform.Homogeneous(clusterSize, 1e9)
	logSum := 0.0
	for r := 0; r < cfg.Replicates; r++ {
		seed := cfg.Seed*1_000_003 + int64(dagSize)*7919 + int64(clusterSize)*104_729 +
			int64(shape)*15_485_863 + int64(r)
		g := dag.Generate(shape, dag.DefaultGenOptions(dagSize), rand.New(rand.NewSource(seed)))
		resCPA, err := cpa.Schedule(g, p, cpa.CPA)
		if err != nil {
			return cell, fmt.Errorf("campaign %s: %w", cell.Key(), err)
		}
		resMCPA, err := cpa.Schedule(g, p, cpa.MCPA)
		if err != nil {
			return cell, fmt.Errorf("campaign %s: %w", cell.Key(), err)
		}
		cell.Runs++
		ratio := resMCPA.Makespan / resCPA.Makespan
		logSum += math.Log(ratio)
		if ratio > cell.MaxRatio {
			cell.MaxRatio = ratio
		}
		switch {
		case ratio > 1+1e-9:
			cell.WinsCPA++
		case ratio < 1-1e-9:
			cell.WinsMCPA++
		default:
			cell.Ties++
		}
	}
	cell.MeanRatio = math.Exp(logSum / float64(cell.Runs))
	return cell, nil
}

// CornerCases returns the cells whose worst MCPA/CPA ratio is at least the
// threshold, sorted by descending ratio — the candidates a developer would
// open in Jedule, exactly how the paper found Figure 4.
func (r *Result) CornerCases(threshold float64) []Cell {
	var out []Cell
	for _, c := range r.Cells {
		if c.MaxRatio >= threshold {
			out = append(out, c)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].MaxRatio > out[j].MaxRatio })
	return out
}

// Summary aggregates wins across all cells.
func (r *Result) Summary() (winsCPA, winsMCPA, ties int) {
	for _, c := range r.Cells {
		winsCPA += c.WinsCPA
		winsMCPA += c.WinsMCPA
		ties += c.Ties
	}
	return
}

// WriteTable prints the per-cell results.
func (r *Result) WriteTable(w io.Writer) error {
	if _, err := fmt.Fprintln(w,
		"shape     nodes  procs  runs  cpa-wins  mcpa-wins  ties  mean-ratio  max-ratio"); err != nil {
		return err
	}
	for _, c := range r.Cells {
		if _, err := fmt.Fprintf(w, "%-9s %5d %6d %5d %9d %10d %5d %11.3f %10.3f\n",
			c.Shape, c.DAGSize, c.Cluster, c.Runs,
			c.WinsCPA, c.WinsMCPA, c.Ties, c.MeanRatio, c.MaxRatio); err != nil {
			return err
		}
	}
	a, b, t := r.Summary()
	_, err := fmt.Fprintf(w, "total %d runs: cpa wins %d, mcpa wins %d, ties %d\n",
		r.Total, a, b, t)
	return err
}
