// Package campaign reproduces the experiment campaign of the paper's first
// case study: "We conducted several thousand experiments with different
// types of DAGs (long, wide, serial, etc.) and multiple parallel platforms
// (from smaller cluster with 32 processors to bigger ones)" comparing the
// scheduling performance of CPA and MCPA. Browsing those results is how
// the authors isolated the Figure 4 corner case.
//
// A campaign is a full factorial over DAG shape x DAG size x cluster size x
// scheduling algorithm, with several random replicates per cell. Algorithms
// are selected by registry name (see repro/internal/sched), so any
// registered scheduler — CPA variants, HEFT, the CRA strategies, or future
// additions — can join the comparison. Cells run concurrently on a bounded
// worker pool; results are deterministic for a given seed regardless of the
// worker count, because every replicate derives its own seeded generator.
package campaign

import (
	"context"
	"fmt"
	"io"
	"math"
	"math/rand"
	"runtime"
	"sort"
	"strings"
	"sync"

	"repro/internal/dag"
	"repro/internal/platform"
	"repro/internal/sched"
	_ "repro/internal/sched/all" // make every built-in algorithm selectable
	"repro/internal/sim"
)

// Config spans the factorial.
type Config struct {
	Shapes       []dag.Shape
	DAGSizes     []int
	ClusterSizes []int
	// Algos lists the scheduler registry names compared in every cell. At
	// least two are required — a campaign is a comparison.
	Algos      []string
	Replicates int
	Seed       int64
	// Workers bounds the concurrency; 0 means GOMAXPROCS.
	Workers int
}

// DefaultConfig mirrors the paper's campaign dimensions at a size that
// completes in seconds: five shapes, three DAG sizes, clusters from 32
// processors up, comparing CPA against MCPA as in case study III.
func DefaultConfig() Config {
	return Config{
		Shapes: []dag.Shape{
			dag.ShapeSerial, dag.ShapeWide, dag.ShapeLong,
			dag.ShapeRandom, dag.ShapeForkJoin,
		},
		DAGSizes:     []int{20, 40, 80},
		ClusterSizes: []int{32, 64, 128},
		Algos:        []string{"cpa", "mcpa"},
		Replicates:   8,
		Seed:         1,
	}
}

// Cell aggregates one factorial cell. The JSON tags define the wire format
// of the JSONL checkpoint records, so shards and resumed runs interchange
// cells losslessly (float64 round-trips exactly through encoding/json).
type Cell struct {
	// Index is the cell's position in the deterministic enumeration order
	// of Cells(cfg) — the merge key across shards and checkpoints.
	Index   int       `json:"index"`
	Shape   dag.Shape `json:"shape"`
	DAGSize int       `json:"dag_size"`
	Cluster int       `json:"cluster"`
	// Algos echoes the compared algorithm names, index-aligned with Wins.
	Algos []string `json:"algos"`
	Runs  int      `json:"runs"`
	// Wins counts, per algorithm, the replicates it won with a strictly
	// smaller simulated makespan than every other algorithm.
	Wins []int `json:"wins"`
	// Ties counts replicates without a strict winner.
	Ties int `json:"ties"`
	// MeanSpread is the geometric mean over replicates of
	// worst/best makespan; 1 means the algorithms always agree.
	MeanSpread float64 `json:"mean_spread"`
	// MaxSpread is the largest worst/best ratio seen in the cell — large
	// values are Figure 4 material.
	MaxSpread float64 `json:"max_spread"`
}

// Key identifies the cell.
func (c Cell) Key() string {
	return fmt.Sprintf("%s/%d/%d", c.Shape, c.DAGSize, c.Cluster)
}

// WinsOf returns the win count of the named algorithm (0 if absent).
func (c Cell) WinsOf(algo string) int {
	for i, a := range c.Algos {
		if a == algo {
			return c.Wins[i]
		}
	}
	return 0
}

// Result is a completed campaign.
type Result struct {
	Algos []string
	Cells []Cell
	Total int
}

// ReplicateSeed derives the generator seed for one replicate of one cell.
// Exported so commands can regenerate the exact DAG behind a corner case.
func ReplicateSeed(campaignSeed int64, shape dag.Shape, dagSize, clusterSize, replicate int) int64 {
	return campaignSeed*1_000_003 + int64(dagSize)*7919 + int64(clusterSize)*104_729 +
		int64(shape)*15_485_863 + int64(replicate)
}

// Validate checks the configuration, including that every algorithm name
// resolves in the scheduler registry.
func (cfg Config) Validate() error {
	if len(cfg.Shapes) == 0 || len(cfg.DAGSizes) == 0 || len(cfg.ClusterSizes) == 0 {
		return fmt.Errorf("campaign: empty factorial dimension")
	}
	if cfg.Replicates < 1 {
		return fmt.Errorf("campaign: need at least one replicate")
	}
	if len(cfg.Algos) < 2 {
		return fmt.Errorf("campaign: need at least two algorithms to compare, got %v", cfg.Algos)
	}
	seen := map[string]bool{}
	for _, a := range cfg.Algos {
		if seen[a] {
			return fmt.Errorf("campaign: algorithm %q listed twice", a)
		}
		seen[a] = true
	}
	if _, err := sched.LookupAll(cfg.Algos); err != nil {
		return fmt.Errorf("campaign: %w", err)
	}
	return nil
}

// RunOptions selects the execution strategy of RunContext; the zero value
// runs every cell synchronously, like Run.
type RunOptions struct {
	// Shard restricts the run to the cells this k/n partition owns.
	Shard Shard
	// Skip names cell keys (CellSpec.Key) that are already persisted in a
	// checkpoint; they are neither recomputed nor part of the result.
	Skip map[string]bool
	// OnCell is called once per completed cell, serialized on a single
	// goroutine, in completion order (not enumeration order) — the
	// checkpoint streaming hook. A non-nil error aborts the run.
	OnCell func(Cell) error
}

// Run executes the full campaign synchronously. The error is non-nil for
// configuration mistakes (including unknown algorithm names) or scheduler
// failures.
func Run(cfg Config) (*Result, error) {
	return RunContext(context.Background(), cfg, RunOptions{})
}

// RunContext executes the campaign cells selected by opt on a bounded
// worker pool, stopping early (with the context's error) when ctx is
// cancelled. The result holds the completed cells in enumeration order; for
// sharded or resumed runs that is a partial result, to be combined with the
// other shards or the checkpoint via Merge.
func RunContext(ctx context.Context, cfg Config, opt RunOptions) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := opt.Shard.Validate(); err != nil {
		return nil, err
	}
	schedulers, err := sched.LookupAll(cfg.Algos)
	if err != nil {
		return nil, fmt.Errorf("campaign: %w", err)
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	var todo []CellSpec
	for _, spec := range Cells(cfg) {
		if opt.Shard.Includes(spec.Index) && !opt.Skip[spec.Key()] {
			todo = append(todo, spec)
		}
	}

	type outcome struct {
		pos  int
		cell Cell
		err  error
	}
	jobCh := make(chan int)
	outCh := make(chan outcome)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for pos := range jobCh {
				if err := ctx.Err(); err != nil {
					outCh <- outcome{pos: pos, err: err}
					continue
				}
				c, err := runCell(cfg, schedulers, todo[pos])
				outCh <- outcome{pos: pos, cell: c, err: err}
			}
		}()
	}
	go func() {
		// Feed every position: cancelled workers drain the queue cheaply,
		// so the collector always receives exactly len(todo) outcomes.
		for pos := range todo {
			jobCh <- pos
		}
		close(jobCh)
	}()

	cells := make([]Cell, len(todo))
	var firstErr error
	for range todo {
		o := <-outCh
		if firstErr != nil {
			continue
		}
		if o.err != nil {
			firstErr = o.err
			continue
		}
		cells[o.pos] = o.cell
		if opt.OnCell != nil {
			if err := opt.OnCell(o.cell); err != nil {
				firstErr = fmt.Errorf("campaign: checkpoint: %w", err)
			}
		}
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}

	res := &Result{Algos: append([]string(nil), cfg.Algos...), Cells: cells}
	for i := range cells {
		res.Total += cells[i].Runs
	}
	return res, nil
}

// RunCell executes the replicates of one factorial cell — the unit of work
// behind every execution strategy. Results depend only on (cfg, spec), never
// on which shard, worker, or process runs the cell.
func RunCell(cfg Config, spec CellSpec) (Cell, error) {
	if err := cfg.Validate(); err != nil {
		return Cell{}, err
	}
	schedulers, err := sched.LookupAll(cfg.Algos)
	if err != nil {
		return Cell{}, fmt.Errorf("campaign: %w", err)
	}
	return runCell(cfg, schedulers, spec)
}

// runCell executes the replicates of one factorial cell. Each replicate
// gets its own generator seeded from (campaign seed, cell key, replicate),
// so results do not depend on scheduling order.
func runCell(cfg Config, schedulers []sched.Scheduler, spec CellSpec) (Cell, error) {
	shape, dagSize, clusterSize := spec.Shape, spec.DAGSize, spec.Cluster
	cell := Cell{
		Index: spec.Index,
		Shape: shape, DAGSize: dagSize, Cluster: clusterSize,
		Algos:      append([]string(nil), cfg.Algos...),
		Wins:       make([]int, len(cfg.Algos)),
		MeanSpread: 1,
	}
	p := platform.Homogeneous(clusterSize, 1e9)
	logSum := 0.0
	for r := 0; r < cfg.Replicates; r++ {
		seed := ReplicateSeed(cfg.Seed, shape, dagSize, clusterSize, r)
		g := dag.Generate(shape, dag.DefaultGenOptions(dagSize), rand.New(rand.NewSource(seed)))
		makespans := make([]float64, len(schedulers))
		for i, s := range schedulers {
			res, err := s.Schedule(g, p)
			if err != nil {
				return cell, fmt.Errorf("campaign %s/%s: %w", cell.Key(), s.Name(), err)
			}
			// Compare simulated makespans, not each algorithm's own
			// prediction: the planning cost models differ across families
			// (CPA excludes redistribution, HEFT charges mean communication),
			// so the event kernel is the common measuring stick — exactly
			// the paper's SimGrid-then-Jedule workflow.
			wr, err := res.Execute(sim.ExecOptions{})
			if err != nil {
				return cell, fmt.Errorf("campaign %s/%s: %w", cell.Key(), s.Name(), err)
			}
			makespans[i] = wr.Makespan
		}
		cell.Runs++
		best, worst := makespans[0], makespans[0]
		bestIdx := 0
		for i, m := range makespans[1:] {
			if m < best {
				best, bestIdx = m, i+1
			}
			if m > worst {
				worst = m
			}
		}
		strict := true
		for i, m := range makespans {
			if i != bestIdx && m <= best*(1+1e-9) {
				strict = false
				break
			}
		}
		if strict {
			cell.Wins[bestIdx]++
		} else {
			cell.Ties++
		}
		spread := 1.0
		if best > 0 {
			spread = worst / best
		}
		logSum += math.Log(spread)
		if spread > cell.MaxSpread {
			cell.MaxSpread = spread
		}
	}
	cell.MeanSpread = math.Exp(logSum / float64(cell.Runs))
	return cell, nil
}

// Merge combines partial results — shard outputs, resumed checkpoints —
// into one result with cells in enumeration order. All parts must compare
// the same algorithm list, and no cell index may appear twice. Merging the
// complete shard set of a seed reproduces the unsharded Run result
// bit-for-bit.
func Merge(parts ...*Result) (*Result, error) {
	if len(parts) == 0 {
		return nil, fmt.Errorf("campaign: nothing to merge")
	}
	out := &Result{Algos: append([]string(nil), parts[0].Algos...)}
	for _, p := range parts {
		if len(p.Algos) != len(out.Algos) {
			return nil, fmt.Errorf("campaign: merge of different algorithm lists %v vs %v", out.Algos, p.Algos)
		}
		for i := range p.Algos {
			if p.Algos[i] != out.Algos[i] {
				return nil, fmt.Errorf("campaign: merge of different algorithm lists %v vs %v", out.Algos, p.Algos)
			}
		}
		out.Cells = append(out.Cells, p.Cells...)
	}
	sort.SliceStable(out.Cells, func(i, j int) bool { return out.Cells[i].Index < out.Cells[j].Index })
	for i, c := range out.Cells {
		if i > 0 && c.Index == out.Cells[i-1].Index {
			return nil, fmt.Errorf("campaign: merge saw cell %d (%s) twice", c.Index, c.Key())
		}
		out.Total += c.Runs
	}
	return out, nil
}

// Complete checks that the result covers exactly the n cells of its
// factorial, with no gaps — the guard a merge of a shard set runs before
// claiming to equal the single-process campaign.
func (r *Result) Complete(n int) error {
	if len(r.Cells) != n {
		return fmt.Errorf("campaign: %d of %d cells present", len(r.Cells), n)
	}
	for i, c := range r.Cells {
		if c.Index != i {
			return fmt.Errorf("campaign: cell index %d where %d expected (missing shard?)", c.Index, i)
		}
	}
	return nil
}

// WriteSummary writes the per-cell table followed by the corner-case list —
// the canonical campaign report. Every execution strategy (single process,
// merged shard set, coordinated fan-out) prints through this one function,
// which is what makes their outputs byte-comparable.
func (r *Result) WriteSummary(w io.Writer, threshold float64) error {
	if err := r.WriteTable(w); err != nil {
		return err
	}
	corners := r.CornerCases(threshold)
	if _, err := fmt.Fprintf(w, "\n%d corner cases with makespan spread >= %.2f:\n", len(corners), threshold); err != nil {
		return err
	}
	for _, c := range corners {
		if _, err := fmt.Fprintf(w, "  %-20s worst spread %.3f\n", c.Key(), c.MaxSpread); err != nil {
			return err
		}
	}
	return nil
}

// CornerCases returns the cells whose worst makespan spread is at least the
// threshold, sorted by descending spread — the candidates a developer would
// open in Jedule, exactly how the paper found Figure 4.
func (r *Result) CornerCases(threshold float64) []Cell {
	var out []Cell
	for _, c := range r.Cells {
		if c.MaxSpread >= threshold {
			out = append(out, c)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].MaxSpread > out[j].MaxSpread })
	return out
}

// Summary aggregates wins per algorithm (index-aligned with r.Algos) and
// ties across all cells.
func (r *Result) Summary() (wins []int, ties int) {
	wins = make([]int, len(r.Algos))
	for _, c := range r.Cells {
		for i, w := range c.Wins {
			wins[i] += w
		}
		ties += c.Ties
	}
	return wins, ties
}

// WriteTable prints the per-cell results with one win column per algorithm,
// sized to fit the longest algorithm name.
func (r *Result) WriteTable(w io.Writer) error {
	winWidth := len("-wins") + 4
	for _, a := range r.Algos {
		if n := len(a) + len("-wins"); n > winWidth {
			winWidth = n
		}
	}
	header := "shape     nodes  procs  runs"
	for _, a := range r.Algos {
		header += fmt.Sprintf("  %*s", winWidth, a+"-wins")
	}
	header += "  ties  mean-spread  max-spread"
	if _, err := fmt.Fprintln(w, header); err != nil {
		return err
	}
	for _, c := range r.Cells {
		row := fmt.Sprintf("%-9s %5d %6d %5d", c.Shape, c.DAGSize, c.Cluster, c.Runs)
		for _, wins := range c.Wins {
			row += fmt.Sprintf("  %*d", winWidth, wins)
		}
		row += fmt.Sprintf(" %5d %12.3f %11.3f", c.Ties, c.MeanSpread, c.MaxSpread)
		if _, err := fmt.Fprintln(w, row); err != nil {
			return err
		}
	}
	wins, ties := r.Summary()
	parts := make([]string, len(r.Algos))
	for i, a := range r.Algos {
		parts[i] = fmt.Sprintf("%s wins %d", a, wins[i])
	}
	_, err := fmt.Fprintf(w, "total %d runs: %s, ties %d\n",
		r.Total, strings.Join(parts, ", "), ties)
	return err
}
