// Package colormap implements Jedule color maps (paper section II-C.4 and
// Figure 2). A color map assigns a foreground (label) and background (fill)
// color to each task type, plus dedicated colors for composite types: a
// composite entry lists the member task types it applies to, so "computation
// overlapping transfer" can get its own color (the orange band of paper
// Figure 3).
//
// Color maps are defined in an XML dialect mirroring the paper's Figure 2:
//
//	<cmap name="standard_map">
//	  <conf name="min_font_size_label" value="11"/>
//	  <conf name="font_size_label" value="13"/>
//	  <conf name="font_size_axes" value="12"/>
//	  <task id="computation">
//	    <color type="fg" rgb="FFFFFF"/>
//	    <color type="bg" rgb="0000FF"/>
//	  </task>
//	  <composite>
//	    <task id="computation"/>
//	    <task id="transfer"/>
//	    <color type="fg" rgb="FFFFFF"/>
//	    <color type="bg" rgb="ff6200"/>
//	  </composite>
//	</cmap>
package colormap

import (
	"encoding/xml"
	"fmt"
	"image/color"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Colors is a fg/bg pair.
type Colors struct {
	FG, BG color.RGBA
}

// CompositeRule assigns colors to a composite task whose members have
// exactly the given set of task types.
type CompositeRule struct {
	Members []string // sorted member type names
	Colors  Colors
}

// Map is a complete color map.
type Map struct {
	Name string
	// Conf holds style settings (font sizes etc.) as ordered key/value
	// pairs, preserved through file round-trips.
	Conf []ConfEntry
	// ByType maps a task type to its colors.
	ByType map[string]Colors
	// Composites lists composite color rules, most specific first.
	Composites []CompositeRule
	// Default is used for task types with no entry.
	Default Colors
	// CompositeDefault is used for composite tasks matching no rule.
	CompositeDefault Colors
}

// ConfEntry is one <conf> setting.
type ConfEntry struct {
	Name, Value string
}

// ConfInt returns the integer value of a conf entry, or def.
func (m *Map) ConfInt(name string, def int) int {
	for _, c := range m.Conf {
		if c.Name == name {
			if v, err := strconv.Atoi(c.Value); err == nil {
				return v
			}
		}
	}
	return def
}

// SetConf sets (or replaces) a conf entry.
func (m *Map) SetConf(name, value string) {
	for i := range m.Conf {
		if m.Conf[i].Name == name {
			m.Conf[i].Value = value
			return
		}
	}
	m.Conf = append(m.Conf, ConfEntry{name, value})
}

// SetType assigns colors to a task type ("changed on the fly", paper §IX).
func (m *Map) SetType(taskType string, c Colors) {
	if m.ByType == nil {
		m.ByType = map[string]Colors{}
	}
	m.ByType[taskType] = c
}

// AddComposite appends a composite rule for the given member types.
func (m *Map) AddComposite(c Colors, memberTypes ...string) {
	members := append([]string(nil), memberTypes...)
	sort.Strings(members)
	m.Composites = append(m.Composites, CompositeRule{Members: members, Colors: c})
}

// Lookup resolves the colors of a plain task type.
func (m *Map) Lookup(taskType string) Colors {
	if c, ok := m.ByType[taskType]; ok {
		return c
	}
	return m.Default
}

// LookupComposite resolves the colors of a composite task given its member
// task types. The first rule whose member set equals the (sorted,
// de-duplicated) input wins; otherwise CompositeDefault is returned.
func (m *Map) LookupComposite(memberTypes []string) Colors {
	key := canonicalTypes(memberTypes)
	for _, r := range m.Composites {
		if strings.Join(r.Members, "\x00") == key {
			return r.Colors
		}
	}
	return m.CompositeDefault
}

func canonicalTypes(types []string) string {
	set := map[string]bool{}
	for _, t := range types {
		set[t] = true
	}
	list := make([]string, 0, len(set))
	for t := range set {
		list = append(list, t)
	}
	sort.Strings(list)
	return strings.Join(list, "\x00")
}

// Types returns the sorted task types with explicit entries.
func (m *Map) Types() []string {
	out := make([]string, 0, len(m.ByType))
	for t := range m.ByType {
		out = append(out, t)
	}
	sort.Strings(out)
	return out
}

// Clone returns a deep copy, useful for deriving tweaked maps on the fly.
func (m *Map) Clone() *Map {
	out := &Map{
		Name:             m.Name,
		Conf:             append([]ConfEntry(nil), m.Conf...),
		ByType:           make(map[string]Colors, len(m.ByType)),
		Default:          m.Default,
		CompositeDefault: m.CompositeDefault,
	}
	for k, v := range m.ByType {
		out.ByType[k] = v
	}
	for _, r := range m.Composites {
		out.Composites = append(out.Composites, CompositeRule{
			Members: append([]string(nil), r.Members...),
			Colors:  r.Colors,
		})
	}
	return out
}

// RGB constructs an opaque color from 8-bit channels.
func RGB(r, g, b uint8) color.RGBA { return color.RGBA{r, g, b, 255} }

// ParseRGB parses a 6-digit hexadecimal color like "ff6200".
func ParseRGB(s string) (color.RGBA, error) {
	s = strings.TrimPrefix(strings.TrimSpace(s), "#")
	if len(s) != 6 {
		return color.RGBA{}, fmt.Errorf("colormap: bad rgb %q: want 6 hex digits", s)
	}
	v, err := strconv.ParseUint(s, 16, 32)
	if err != nil {
		return color.RGBA{}, fmt.Errorf("colormap: bad rgb %q: %v", s, err)
	}
	return RGB(uint8(v>>16), uint8(v>>8), uint8(v)), nil
}

// FormatRGB renders a color as 6 lowercase hex digits.
func FormatRGB(c color.RGBA) string {
	return fmt.Sprintf("%02x%02x%02x", c.R, c.G, c.B)
}

// Grayscale converts the map to gray levels (luma), for the journal
// style-guide use case in paper section II-D.2.
func (m *Map) Grayscale() *Map {
	out := m.Clone()
	out.Name = m.Name + "-gray"
	gray := func(c color.RGBA) color.RGBA {
		y := uint8((299*int(c.R) + 587*int(c.G) + 114*int(c.B)) / 1000)
		return color.RGBA{y, y, y, c.A}
	}
	grayPair := func(c Colors) Colors { return Colors{gray(c.FG), gray(c.BG)} }
	for k, v := range out.ByType {
		out.ByType[k] = grayPair(v)
	}
	for i := range out.Composites {
		out.Composites[i].Colors = grayPair(out.Composites[i].Colors)
	}
	out.Default = grayPair(out.Default)
	out.CompositeDefault = grayPair(out.CompositeDefault)
	return out
}

// Default returns the standard color map bundled with the tool, matching the
// paper's examples: blue computation, red transfer, orange composite of the
// two, plus entries for the other case-study task types.
func Default() *Map {
	m := &Map{
		Name: "standard_map",
		Conf: []ConfEntry{
			{"min_font_size_label", "11"},
			{"font_size_label", "13"},
			{"font_size_axes", "12"},
		},
		ByType:           map[string]Colors{},
		Default:          Colors{FG: RGB(0, 0, 0), BG: RGB(200, 200, 200)},
		CompositeDefault: Colors{FG: RGB(255, 255, 255), BG: RGB(255, 98, 0)},
	}
	m.SetType("computation", Colors{FG: RGB(255, 255, 255), BG: RGB(0, 0, 255)})
	m.SetType("transfer", Colors{FG: RGB(0, 0, 0), BG: RGB(241, 0, 0)})
	m.SetType("waiting", Colors{FG: RGB(0, 0, 0), BG: RGB(241, 0, 0)})
	m.SetType("io", Colors{FG: RGB(0, 0, 0), BG: RGB(0, 170, 0)})
	m.SetType("job", Colors{FG: RGB(0, 0, 0), BG: RGB(120, 160, 220)})
	m.SetType("highlight", Colors{FG: RGB(0, 0, 0), BG: RGB(255, 225, 0)})
	m.AddComposite(Colors{FG: RGB(255, 255, 255), BG: RGB(255, 98, 0)},
		"computation", "transfer")
	return m
}

// Palette generates a map that assigns a distinct hue to each of n task
// types named by key(i). It serves the multi-DAG case study, where "each
// application has its own color" (paper Figure 5).
func Palette(n int, key func(int) string) *Map {
	m := Default()
	m.Name = "palette"
	for i := 0; i < n; i++ {
		m.SetType(key(i), Colors{FG: RGB(0, 0, 0), BG: hueColor(i, n)})
	}
	return m
}

// hueColor picks evenly spaced hues with full saturation.
func hueColor(i, n int) color.RGBA {
	if n <= 0 {
		n = 1
	}
	h := float64(i%n) / float64(n) * 6.0
	seg := int(h)
	f := h - float64(seg)
	q := uint8(255 * (1 - f))
	t := uint8(255 * f)
	switch seg % 6 {
	case 0:
		return RGB(255, t, 64)
	case 1:
		return RGB(q, 255, 64)
	case 2:
		return RGB(64, 255, t)
	case 3:
		return RGB(64, q, 255)
	case 4:
		return RGB(t, 64, 255)
	default:
		return RGB(255, 64, q)
	}
}

// xml mirror types for the cmap format

type xmlCmap struct {
	XMLName    xml.Name       `xml:"cmap"`
	Name       string         `xml:"name,attr"`
	Conf       []xmlConf      `xml:"conf"`
	Tasks      []xmlTask      `xml:"task"`
	Composites []xmlComposite `xml:"composite"`
}

type xmlConf struct {
	Name  string `xml:"name,attr"`
	Value string `xml:"value,attr"`
}

type xmlTask struct {
	ID     string     `xml:"id,attr"`
	Colors []xmlColor `xml:"color"`
}

type xmlComposite struct {
	Tasks  []xmlTask  `xml:"task"`
	Colors []xmlColor `xml:"color"`
}

type xmlColor struct {
	Type string `xml:"type,attr"`
	RGB  string `xml:"rgb,attr"`
}

func colorsFromXML(cs []xmlColor) (Colors, error) {
	out := Colors{FG: RGB(0, 0, 0), BG: RGB(255, 255, 255)}
	for _, c := range cs {
		v, err := ParseRGB(c.RGB)
		if err != nil {
			return out, err
		}
		switch c.Type {
		case "fg":
			out.FG = v
		case "bg":
			out.BG = v
		default:
			return out, fmt.Errorf("colormap: unknown color type %q (want fg or bg)", c.Type)
		}
	}
	return out, nil
}

// Read parses a cmap XML document.
func Read(r io.Reader) (*Map, error) {
	var doc xmlCmap
	if err := xml.NewDecoder(r).Decode(&doc); err != nil {
		return nil, fmt.Errorf("colormap: decode: %w", err)
	}
	m := Default()
	m.Name = doc.Name
	m.Conf = nil
	m.ByType = map[string]Colors{}
	m.Composites = nil
	for _, c := range doc.Conf {
		m.Conf = append(m.Conf, ConfEntry{c.Name, c.Value})
	}
	for _, t := range doc.Tasks {
		cs, err := colorsFromXML(t.Colors)
		if err != nil {
			return nil, fmt.Errorf("colormap: task %q: %w", t.ID, err)
		}
		m.ByType[t.ID] = cs
	}
	for _, cp := range doc.Composites {
		cs, err := colorsFromXML(cp.Colors)
		if err != nil {
			return nil, fmt.Errorf("colormap: composite: %w", err)
		}
		var members []string
		for _, t := range cp.Tasks {
			members = append(members, t.ID)
		}
		if len(members) < 2 {
			return nil, fmt.Errorf("colormap: composite rule needs >=2 member types, got %v", members)
		}
		m.AddComposite(cs, members...)
	}
	return m, nil
}

// Write serializes the map as cmap XML.
func Write(w io.Writer, m *Map) error {
	doc := xmlCmap{Name: m.Name}
	for _, c := range m.Conf {
		doc.Conf = append(doc.Conf, xmlConf{c.Name, c.Value})
	}
	for _, t := range m.Types() {
		c := m.ByType[t]
		doc.Tasks = append(doc.Tasks, xmlTask{ID: t, Colors: []xmlColor{
			{"fg", FormatRGB(c.FG)}, {"bg", FormatRGB(c.BG)},
		}})
	}
	for _, cp := range m.Composites {
		x := xmlComposite{Colors: []xmlColor{
			{"fg", FormatRGB(cp.Colors.FG)}, {"bg", FormatRGB(cp.Colors.BG)},
		}}
		for _, mt := range cp.Members {
			x.Tasks = append(x.Tasks, xmlTask{ID: mt})
		}
		doc.Composites = append(doc.Composites, x)
	}
	if _, err := io.WriteString(w, xml.Header); err != nil {
		return err
	}
	enc := xml.NewEncoder(w)
	enc.Indent("", "  ")
	if err := enc.Encode(doc); err != nil {
		return fmt.Errorf("colormap: encode: %w", err)
	}
	_, err := io.WriteString(w, "\n")
	return err
}

// ReadFile loads a cmap file.
func ReadFile(path string) (*Map, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Read(f)
}
