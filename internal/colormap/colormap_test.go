package colormap

import (
	"bytes"
	"image/color"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

// paperFig2 is the color map listing from Figure 2 of the paper.
const paperFig2 = `<cmap name="standard_map">
  <conf name="min_font_size_label" value="11"/>
  <conf name="font_size_label" value="13"/>
  <conf name="font_size_axes" value="12"/>
  <task id="computation">
    <color type="fg" rgb="FFFFFF"/>
    <color type="bg" rgb="0000FF"/>
  </task>
  <task id="transfer">
    <color type="fg" rgb="000000"/>
    <color type="bg" rgb="f10000"/>
  </task>
  <composite>
    <task id="computation"/>
    <task id="transfer"/>
    <color type="fg" rgb="FFFFFF"/>
    <color type="bg" rgb="ff6200"/>
  </composite>
</cmap>
`

func TestReadPaperFigure2(t *testing.T) {
	m, err := Read(strings.NewReader(paperFig2))
	if err != nil {
		t.Fatal(err)
	}
	if m.Name != "standard_map" {
		t.Errorf("name = %q", m.Name)
	}
	if m.ConfInt("font_size_label", 0) != 13 {
		t.Errorf("font_size_label = %d", m.ConfInt("font_size_label", 0))
	}
	comp := m.Lookup("computation")
	if comp.BG != RGB(0, 0, 255) || comp.FG != RGB(255, 255, 255) {
		t.Errorf("computation colors = %+v", comp)
	}
	xfer := m.Lookup("transfer")
	if xfer.BG != RGB(0xf1, 0, 0) {
		t.Errorf("transfer bg = %+v", xfer.BG)
	}
	// The composite entry applies to {computation, transfer} in any order.
	cc := m.LookupComposite([]string{"transfer", "computation"})
	if cc.BG != RGB(0xff, 0x62, 0x00) {
		t.Errorf("composite bg = %+v", cc.BG)
	}
	// A different member set falls back to the composite default.
	other := m.LookupComposite([]string{"computation", "io"})
	if other != m.CompositeDefault {
		t.Errorf("unmatched composite = %+v, want default", other)
	}
}

func TestLookupDefault(t *testing.T) {
	m := Default()
	if got := m.Lookup("nonexistent-type"); got != m.Default {
		t.Errorf("default lookup = %+v", got)
	}
	if got := m.Lookup("computation"); got.BG != RGB(0, 0, 255) {
		t.Errorf("computation = %+v", got)
	}
}

func TestLookupCompositeDedup(t *testing.T) {
	m := Default()
	// Duplicate member types collapse: {comp, comp, transfer} == {comp, transfer}.
	got := m.LookupComposite([]string{"computation", "computation", "transfer"})
	want := m.LookupComposite([]string{"computation", "transfer"})
	if got != want {
		t.Fatalf("dedup failed: %+v vs %+v", got, want)
	}
}

func TestParseRGB(t *testing.T) {
	cases := []struct {
		in   string
		want color.RGBA
		ok   bool
	}{
		{"FFFFFF", RGB(255, 255, 255), true},
		{"0000FF", RGB(0, 0, 255), true},
		{"f10000", RGB(241, 0, 0), true},
		{"#ff6200", RGB(255, 98, 0), true},
		{" ff6200 ", RGB(255, 98, 0), true},
		{"xyzxyz", color.RGBA{}, false},
		{"fff", color.RGBA{}, false},
		{"", color.RGBA{}, false},
	}
	for _, tc := range cases {
		got, err := ParseRGB(tc.in)
		if tc.ok != (err == nil) {
			t.Errorf("ParseRGB(%q) err = %v", tc.in, err)
			continue
		}
		if tc.ok && got != tc.want {
			t.Errorf("ParseRGB(%q) = %+v, want %+v", tc.in, got, tc.want)
		}
	}
}

func TestFormatParseRoundTrip(t *testing.T) {
	f := func(r, g, b uint8) bool {
		c := RGB(r, g, b)
		back, err := ParseRGB(FormatRGB(c))
		return err == nil && back == c
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	m := Default()
	var buf bytes.Buffer
	if err := Write(&buf, m); err != nil {
		t.Fatal(err)
	}
	back, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Name != m.Name {
		t.Errorf("name: %q vs %q", back.Name, m.Name)
	}
	if !reflect.DeepEqual(back.Conf, m.Conf) {
		t.Errorf("conf: %+v vs %+v", back.Conf, m.Conf)
	}
	if !reflect.DeepEqual(back.ByType, m.ByType) {
		t.Errorf("types: %+v vs %+v", back.ByType, m.ByType)
	}
	if !reflect.DeepEqual(back.Composites, m.Composites) {
		t.Errorf("composites: %+v vs %+v", back.Composites, m.Composites)
	}
}

func TestReadErrors(t *testing.T) {
	cases := []struct{ name, doc, wants string }{
		{"garbage", "no xml", "decode"},
		{"bad rgb", `<cmap name="m"><task id="x"><color type="bg" rgb="zz"/></task></cmap>`, "bad rgb"},
		{"bad color type", `<cmap name="m"><task id="x"><color type="mid" rgb="aabbcc"/></task></cmap>`, "unknown color type"},
		{"composite too small", `<cmap name="m"><composite><task id="x"/><color type="bg" rgb="aabbcc"/></composite></cmap>`, ">=2 member"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := Read(strings.NewReader(tc.doc)); err == nil || !strings.Contains(err.Error(), tc.wants) {
				t.Fatalf("err = %v, want %q", err, tc.wants)
			}
		})
	}
}

func TestGrayscale(t *testing.T) {
	g := Default().Grayscale()
	for typ, c := range g.ByType {
		if c.BG.R != c.BG.G || c.BG.G != c.BG.B {
			t.Errorf("type %q bg not gray: %+v", typ, c.BG)
		}
		if c.FG.R != c.FG.G || c.FG.G != c.FG.B {
			t.Errorf("type %q fg not gray: %+v", typ, c.FG)
		}
	}
	if !strings.HasSuffix(g.Name, "-gray") {
		t.Errorf("name = %q", g.Name)
	}
	// Original untouched.
	if c := Default().Lookup("computation"); c.BG != RGB(0, 0, 255) {
		t.Error("Grayscale mutated the source map")
	}
	// Luma ordering preserved: white stays brighter than blue.
	if g.Lookup("computation").FG.R <= g.Lookup("computation").BG.R {
		t.Error("white fg should stay brighter than blue bg after grayscale")
	}
}

func TestPaletteDistinct(t *testing.T) {
	n := 8
	m := Palette(n, func(i int) string { return "app" + string(rune('0'+i)) })
	seen := map[color.RGBA]string{}
	for i := 0; i < n; i++ {
		key := "app" + string(rune('0'+i))
		c := m.Lookup(key).BG
		if prev, dup := seen[c]; dup {
			t.Fatalf("apps %s and %s share color %+v", prev, key, c)
		}
		seen[c] = key
	}
	// Palette keeps the standard entries too.
	if m.Lookup("computation").BG != RGB(0, 0, 255) {
		t.Error("palette lost standard entries")
	}
}

func TestCloneIndependence(t *testing.T) {
	m := Default()
	c := m.Clone()
	c.SetType("computation", Colors{FG: RGB(1, 2, 3), BG: RGB(4, 5, 6)})
	c.SetConf("font_size_label", "99")
	c.AddComposite(Colors{}, "a", "b")
	if m.Lookup("computation").BG != RGB(0, 0, 255) {
		t.Error("Clone shares ByType")
	}
	if m.ConfInt("font_size_label", 0) != 13 {
		t.Error("Clone shares Conf")
	}
	if len(m.Composites) != 1 {
		t.Error("Clone shares Composites")
	}
}

func TestConfHelpers(t *testing.T) {
	m := &Map{}
	if m.ConfInt("missing", 7) != 7 {
		t.Error("ConfInt default")
	}
	m.SetConf("x", "not-a-number")
	if m.ConfInt("x", 7) != 7 {
		t.Error("ConfInt non-numeric fallback")
	}
	m.SetConf("x", "3")
	if m.ConfInt("x", 7) != 3 || len(m.Conf) != 1 {
		t.Error("SetConf overwrite")
	}
}
