package workload

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

const sampleSWF = `; Computer: LLNL Thunder
; MaxNodes: 1024
; Note: synthetic sample

1 0 10 3600 8 -1 -1 8 7200 -1 1 6447 1 -1 1 1 -1 -1
2 100 0 1800 4 2.5 -1 4 3600 -1 1 6001 1 -1 1 1 -1 -1
3 200 50 600 16 -1 -1 16 900 -1 0 6002 2 -1 2 1 -1 -1
`

func TestReadSWF(t *testing.T) {
	jobs, hdr, err := ReadSWF(strings.NewReader(sampleSWF))
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 3 {
		t.Fatalf("jobs = %d", len(jobs))
	}
	if hdr.Get("Computer") != "LLNL Thunder" || hdr.Get("MaxNodes") != "1024" {
		t.Fatalf("header = %+v", hdr)
	}
	if hdr.Get("Missing") != "" {
		t.Fatal("missing header key should be empty")
	}
	j := jobs[0]
	if j.ID != 1 || j.Wait != 10 || j.Run != 3600 || j.Procs != 8 || j.User != 6447 {
		t.Fatalf("job 1 = %+v", j)
	}
	if j.Start() != 10 || j.End() != 3610 {
		t.Fatalf("start/end = %d/%d", j.Start(), j.End())
	}
	if jobs[1].AvgCPU != 2.5 {
		t.Fatalf("fractional avg cpu lost: %g", jobs[1].AvgCPU)
	}
}

func TestReadSWFErrors(t *testing.T) {
	if _, _, err := ReadSWF(strings.NewReader("1 2 3\n")); err == nil {
		t.Error("short record accepted")
	}
	if _, _, err := ReadSWF(strings.NewReader(strings.Repeat("x ", 18) + "\n")); err == nil {
		t.Error("non-numeric record accepted")
	}
}

func TestSWFRoundTrip(t *testing.T) {
	jobs, hdr, err := ReadSWF(strings.NewReader(sampleSWF))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteSWF(&buf, jobs, hdr); err != nil {
		t.Fatal(err)
	}
	back, hdr2, err := ReadSWF(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back, jobs) {
		t.Fatalf("jobs round-trip:\n got %+v\nwant %+v", back, jobs)
	}
	if !reflect.DeepEqual(hdr2, hdr) {
		t.Fatalf("header round-trip: %+v vs %+v", hdr2, hdr)
	}
}

func TestFilterWindow(t *testing.T) {
	jobs, _, _ := ReadSWF(strings.NewReader(sampleSWF))
	// Ends: 3610, 1900, 850.
	got := FilterWindow(jobs, 1000, 2000)
	if len(got) != 1 || got[0].ID != 2 {
		t.Fatalf("window = %+v", got)
	}
	if len(FilterWindow(jobs, 0, 10_000)) != 3 {
		t.Fatal("full window wrong")
	}
	if len(FilterWindow(jobs, 5000, 6000)) != 0 {
		t.Fatal("empty window wrong")
	}
}

func TestPlaceBasics(t *testing.T) {
	jobs := []Job{
		{ID: 1, Submit: 0, Run: 100, Procs: 4, User: 1},
		{ID: 2, Submit: 0, Run: 100, Procs: 4, User: 2},
		{ID: 3, Submit: 50, Run: 100, Procs: 2, User: 3},
	}
	pl, err := Place(jobs, 12, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(pl) != 3 {
		t.Fatal("placements lost")
	}
	used := map[int]bool{}
	for _, p := range pl {
		if len(p.Nodes) != p.Job.Procs {
			t.Fatalf("job %d got %d nodes", p.Job.ID, len(p.Nodes))
		}
		for _, n := range p.Nodes {
			if n < 2 {
				t.Fatalf("job %d placed on reserved node %d", p.Job.ID, n)
			}
			if n >= 12 {
				t.Fatalf("node %d out of range", n)
			}
			used[n] = true
		}
	}
	// Jobs 1 and 2 run concurrently on disjoint nodes.
	n1 := map[int]bool{}
	for _, n := range pl[0].Nodes {
		n1[n] = true
	}
	for _, n := range pl[1].Nodes {
		if n1[n] {
			t.Fatal("concurrent jobs share a node")
		}
	}
}

func TestPlaceDelaysWhenFull(t *testing.T) {
	jobs := []Job{
		{ID: 1, Submit: 0, Run: 100, Procs: 3, User: 1},
		{ID: 2, Submit: 0, Run: 50, Procs: 3, User: 2}, // must wait: only 4 usable
	}
	pl, err := Place(jobs, 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if pl[1].Start < 100 {
		t.Fatalf("job 2 started at %d despite full cluster", pl[1].Start)
	}
}

func TestPlaceErrors(t *testing.T) {
	if _, err := Place(nil, 0, 0); err == nil {
		t.Error("zero nodes accepted")
	}
	if _, err := Place(nil, 10, 10); err == nil {
		t.Error("all-reserved accepted")
	}
	if _, err := Place([]Job{{ID: 1, Procs: 0, Run: 1}}, 10, 0); err == nil {
		t.Error("zero-proc job accepted")
	}
	if _, err := Place([]Job{{ID: 1, Procs: 100, Run: 1}}, 10, 0); err == nil {
		t.Error("oversized job accepted")
	}
}

func TestChooseNodesPrefersContiguous(t *testing.T) {
	free := make([]int64, 10)
	free[3] = 100 // node 3 busy
	got := chooseNodes(free, 0, 4, 0)
	// Contiguous run 4-9 is preferred over scattered {0,1,2,4}.
	want := []int{4, 5, 6, 7}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("chose %v, want %v", got, want)
	}
	// When no contiguous run fits, lowest free nodes win.
	free2 := make([]int64, 6)
	free2[1], free2[4] = 100, 100
	got2 := chooseNodes(free2, 0, 3, 0)
	if !reflect.DeepEqual(got2, []int{0, 2, 3}) {
		t.Fatalf("scattered choice = %v", got2)
	}
	if chooseNodes(free2, 0, 6, 0) != nil {
		t.Fatal("impossible request should return nil")
	}
}

func TestToScheduleHighlight(t *testing.T) {
	pl := []Placement{
		{Job: Job{ID: 1, Run: 100, User: 6447, Procs: 2}, Start: 0, Nodes: []int{20, 21}},
		{Job: Job{ID: 2, Run: 50, User: 6001, Procs: 1}, Start: 10, Nodes: []int{30}},
	}
	s := ToSchedule(pl, 64, 6447)
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if s.Task("j1").Type != "highlight" || s.Task("j2").Type != "job" {
		t.Fatal("highlight typing wrong")
	}
	if s.Task("j1").Property("user") != "6447" {
		t.Fatal("user property lost")
	}
	if s.MetaValue("jobs") != "2" {
		t.Fatal("job count meta wrong")
	}
}

// TestFigure13 reproduces the paper's Figure 13 properties: 834 jobs on
// the 1024-node Thunder day, nothing on the 20 reserved login/debug nodes,
// and the highlighted user's jobs present.
func TestFigure13(t *testing.T) {
	res, err := ThunderDay(Figure13Config())
	if err != nil {
		t.Fatal(err)
	}
	s := res.Schedule
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(s.Tasks) != 834 {
		t.Fatalf("jobs = %d, want 834", len(s.Tasks))
	}
	// "jobs get only executed by nodes with a number greater than 20"
	for i := range s.Tasks {
		for _, h := range s.Tasks[i].Allocations[0].HostList() {
			if h < 20 {
				t.Fatalf("job %s on reserved node %d", s.Tasks[i].ID, h)
			}
		}
	}
	// The highlighted user exists and is visually separable by type.
	highlighted := 0
	for i := range s.Tasks {
		if s.Tasks[i].Type == "highlight" {
			highlighted++
			if s.Tasks[i].Property("user") != "6447" {
				t.Fatal("highlight type on wrong user")
			}
		}
	}
	if highlighted == 0 {
		t.Fatal("no highlighted jobs for user 6447")
	}
	if highlighted > 400 {
		t.Fatalf("highlighted jobs = %d, should be a minority", highlighted)
	}
	// A busy production day: substantial utilization across the cluster.
	st := s.ComputeStats()
	if st.Utilization < 0.1 {
		t.Fatalf("utilization %.3f implausibly low for a production day", st.Utilization)
	}
	// Node usage reaches high node numbers (the full cluster is used).
	maxNode := 0
	for i := range s.Tasks {
		for _, h := range s.Tasks[i].Allocations[0].HostList() {
			if h > maxNode {
				maxNode = h
			}
		}
	}
	if maxNode < 900 {
		t.Fatalf("max node used = %d, want near 1023", maxNode)
	}
}

func TestThunderDeterministic(t *testing.T) {
	a := Thunder(Figure13Config())
	b := Thunder(Figure13Config())
	if !reflect.DeepEqual(a, b) {
		t.Fatal("generator not deterministic")
	}
}

func TestSWFPipelineFromGenerated(t *testing.T) {
	// The generated day round-trips through SWF and replays identically.
	cfg := Figure13Config()
	cfg.Jobs = 50
	jobs := Thunder(cfg)
	var buf bytes.Buffer
	if err := WriteSWF(&buf, jobs, Header{{Key: "Computer", Value: "synthetic"}}); err != nil {
		t.Fatal(err)
	}
	back, hdr, err := ReadSWF(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if hdr.Get("Computer") != "synthetic" {
		t.Fatal("header lost")
	}
	if !reflect.DeepEqual(back, jobs) {
		t.Fatal("SWF round-trip of generated jobs failed")
	}
	p1, err := Place(jobs, cfg.Nodes, cfg.Reserved)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := Place(back, cfg.Nodes, cfg.Reserved)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(p1, p2) {
		t.Fatal("placement differs after round-trip")
	}
}
