package workload

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/core"
)

// GenerateConfig parameterizes the scalable synthetic trace generator. It
// is the benchmark-scale sibling of ThunderConfig: where Thunder mimics one
// day of 834 jobs, Generate produces traces up to millions of jobs with the
// same statistical shape (power-of-two sizes, log-uniform runtimes, skewed
// users) while staying fully deterministic for a given config.
type GenerateConfig struct {
	Jobs    int   // trace length in jobs
	Nodes   int   // cluster size
	Users   int   // distinct users
	Horizon int64 // trace length in seconds; arrivals spread uniformly
	Seed    int64
}

// DefaultGenerateConfig sizes a config for n jobs: the horizon grows
// linearly past the ~150k jobs a single day of the reference machine can
// absorb, so the generated load stays placeable and a full view of a
// million-job trace is dominated by sub-pixel tasks — the LOD stress shape.
func DefaultGenerateConfig(n int) GenerateConfig {
	h := int64(86_400)
	if n > 150_000 {
		h = 86_400 * int64(n) / 150_000
	}
	return GenerateConfig{Jobs: n, Nodes: 1024, Users: 64, Horizon: h, Seed: 1}
}

// Generate produces a deterministic synthetic SWF trace in submit order.
// Unlike Thunder it scales to millions of jobs: sizes skew small so the
// cluster can hold the load, and runtimes are log-uniform from half a
// minute to ten minutes — short against the horizon, so a full view is
// dominated by sub-pixel tasks while a deep zoom shows only the thin
// slice of the trace that actually intersects the window.
func Generate(cfg GenerateConfig) []Job {
	rng := rand.New(rand.NewSource(cfg.Seed))
	jobs := make([]Job, cfg.Jobs)
	logLo, logHi := math.Log(30), math.Log(600)
	for i := range jobs {
		run := int64(math.Exp(logLo + rng.Float64()*(logHi-logLo)))
		submit := int64(rng.Float64() * float64(cfg.Horizon))
		procs := 1 << rng.Intn(4) // 1, 2, 4, 8
		user := 6000 + int(math.Floor(math.Pow(rng.Float64(), 2)*float64(cfg.Users)))
		jobs[i] = Job{
			ID: i + 1, Submit: submit, Wait: 0, Run: run,
			Procs: procs, AvgCPU: -1, Memory: -1,
			ReqProcs: -1, ReqTime: -1, ReqMemory: -1,
			Status: 1, User: user, Group: -1,
			Executable: -1, Queue: 1, Partition: 1, Preceding: -1, ThinkTime: -1,
		}
	}
	sort.SliceStable(jobs, func(a, b int) bool {
		if jobs[a].Submit != jobs[b].Submit {
			return jobs[a].Submit < jobs[b].Submit
		}
		return jobs[a].ID < jobs[b].ID
	})
	return jobs
}

// GenerateSchedule builds the render-ready schedule of a synthetic trace
// directly, bypassing the O(n·nodes·log nodes) FCFS placement: each job
// gets a contiguous node run from a rotating cursor (wrapping allocations
// split into two host ranges). The result is not a feasible machine
// schedule — jobs on the same node may overlap — but it has exactly the
// geometry the renderer must survive: n tasks spread over the horizon and
// the node axis, mostly sub-pixel at full view. Deterministic in cfg, O(n).
func GenerateSchedule(cfg GenerateConfig) *core.Schedule {
	jobs := Generate(cfg)
	s := core.NewSingleCluster("synthetic", cfg.Nodes)
	s.SetMeta("jobs", fmt.Sprintf("%d", len(jobs)))
	s.Tasks = make([]core.Task, 0, len(jobs))
	cursor := 0
	for _, j := range jobs {
		procs := j.Procs
		if procs > cfg.Nodes {
			procs = cfg.Nodes
		}
		var hosts []core.HostRange
		if cursor+procs <= cfg.Nodes {
			hosts = []core.HostRange{{Start: cursor, N: procs}}
		} else {
			head := cfg.Nodes - cursor
			hosts = []core.HostRange{
				{Start: cursor, N: head},
				{Start: 0, N: procs - head},
			}
		}
		cursor = (cursor + procs) % cfg.Nodes
		s.AddTask(core.Task{
			ID:    fmt.Sprintf("j%d", j.ID),
			Type:  "job",
			Start: float64(j.Submit),
			End:   float64(j.Submit + j.Run),
			Allocations: []core.Allocation{
				{Cluster: 0, Hosts: hosts},
			},
		})
	}
	s.SortTasks()
	return s
}
