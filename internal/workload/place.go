package workload

import (
	"fmt"
	"sort"

	"repro/internal/core"
)

// Placement assigns a job to concrete nodes at a concrete start time.
type Placement struct {
	Job   Job
	Start int64
	Nodes []int
}

// Place simulates an FCFS node allocator over `nodes` total nodes, with the
// first `reserved` nodes excluded from batch scheduling (the Thunder
// cluster "reserved 20 nodes as login and debug nodes, which can be seen in
// the graphic as jobs get only executed by nodes with a number greater
// than 20").
//
// Jobs are processed in start-time order. Each receives its Procs nodes
// from the free set at its recorded start time, preferring a contiguous
// run and falling back to scattered nodes; if not enough nodes are free
// (the trace's wait time understates contention for our simplified
// machine), the job is delayed until enough free up.
func Place(jobs []Job, nodes, reserved int) ([]Placement, error) {
	if nodes < 1 || reserved < 0 || reserved >= nodes {
		return nil, fmt.Errorf("workload: bad node configuration %d/%d", reserved, nodes)
	}
	usable := nodes - reserved
	order := append([]Job(nil), jobs...)
	sort.SliceStable(order, func(a, b int) bool {
		if order[a].Start() != order[b].Start() {
			return order[a].Start() < order[b].Start()
		}
		return order[a].ID < order[b].ID
	})
	free := make([]int64, nodes) // time each node becomes free
	var out []Placement
	for _, j := range order {
		if j.Procs < 1 {
			return nil, fmt.Errorf("workload: job %d has %d processors", j.ID, j.Procs)
		}
		if j.Procs > usable {
			return nil, fmt.Errorf("workload: job %d needs %d nodes, only %d usable", j.ID, j.Procs, usable)
		}
		start := j.Start()
		// Delay until enough nodes are free: the start is the j.Procs-th
		// smallest free time among usable nodes, if later.
		frees := append([]int64(nil), free[reserved:]...)
		sort.Slice(frees, func(a, b int) bool { return frees[a] < frees[b] })
		if t := frees[j.Procs-1]; t > start {
			start = t
		}
		chosen := chooseNodes(free, reserved, j.Procs, start)
		if len(chosen) != j.Procs {
			return nil, fmt.Errorf("workload: internal: job %d got %d of %d nodes", j.ID, len(chosen), j.Procs)
		}
		for _, n := range chosen {
			free[n] = start + j.Run
		}
		out = append(out, Placement{Job: j, Start: start, Nodes: chosen})
	}
	return out, nil
}

// chooseNodes picks procs nodes free at the start time, preferring the
// longest contiguous runs (compact allocations look like the archive's).
func chooseNodes(free []int64, reserved, procs int, start int64) []int {
	var avail []int
	for n := reserved; n < len(free); n++ {
		if free[n] <= start {
			avail = append(avail, n)
		}
	}
	if len(avail) < procs {
		return nil
	}
	// Find a contiguous run of exactly-or-more procs if one exists.
	runStart, runLen := 0, 1
	bestStart, bestLen := 0, 1
	for i := 1; i <= len(avail); i++ {
		if i < len(avail) && avail[i] == avail[i-1]+1 {
			runLen++
			continue
		}
		if runLen > bestLen {
			bestStart, bestLen = runStart, runLen
		}
		runStart, runLen = i, 1
	}
	if bestLen >= procs {
		return append([]int(nil), avail[bestStart:bestStart+procs]...)
	}
	// Scattered: lowest-numbered free nodes.
	return append([]int(nil), avail[:procs]...)
}

// ToSchedule converts placements into a Jedule schedule over one cluster of
// `nodes` hosts. Jobs of highlightUser get the task type "highlight" so a
// color map can single them out (the paper's yellow user 6447); all others
// are "job". Task properties carry the user and processor count for the
// interactive mode.
func ToSchedule(placements []Placement, nodes int, highlightUser int) *core.Schedule {
	s := core.NewSingleCluster("thunder", nodes)
	s.SetMeta("jobs", fmt.Sprintf("%d", len(placements)))
	for _, p := range placements {
		typ := "job"
		if p.Job.User == highlightUser {
			typ = "highlight"
		}
		s.AddTask(core.Task{
			ID:    fmt.Sprintf("j%d", p.Job.ID),
			Type:  typ,
			Start: float64(p.Start),
			End:   float64(p.Start + p.Job.Run),
			Allocations: []core.Allocation{
				{Cluster: 0, Hosts: core.RangesFromHosts(p.Nodes)},
			},
			Properties: []core.Property{
				{Name: "user", Value: fmt.Sprintf("%d", p.Job.User)},
				{Name: "procs", Value: fmt.Sprintf("%d", p.Job.Procs)},
			},
		})
	}
	s.SortTasks()
	return s
}
