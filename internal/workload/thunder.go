package workload

import (
	"math"
	"math/rand"

	"repro/internal/core"
)

// ThunderConfig parameterizes the synthetic day generator.
type ThunderConfig struct {
	Jobs          int   // jobs finishing on the day (paper: 834)
	Nodes         int   // cluster size (paper: 1024)
	Reserved      int   // login/debug nodes excluded (paper: 20)
	DaySeconds    int64 // length of the observed window
	Users         int   // distinct users
	HighlightUser int   // a user id guaranteed to appear (paper: 6447)
	Seed          int64
}

// Figure13Config reproduces the parameters of the paper's Figure 13: the
// LLNL Thunder cluster (1024 nodes, 20 reserved) on one day of 2007 with
// 834 finished jobs and user 6447 highlighted.
func Figure13Config() ThunderConfig {
	return ThunderConfig{
		Jobs: 834, Nodes: 1024, Reserved: 20,
		DaySeconds: 86_400, Users: 40, HighlightUser: 6447, Seed: 20070202,
	}
}

// Thunder generates a deterministic synthetic workload mimicking the LLNL
// Thunder day: job sizes follow the archive's power-of-two habit, runtimes
// are log-uniform from minutes to hours, arrivals spread over the day, and
// user ids follow a skewed (Zipf-like) popularity so a handful of users
// dominate — including the highlighted one. The real
// LLNL-Thunder-2007-0.swf trace is not redistributable; when present it
// can be loaded with ReadSWFFile and fed to the same Place/ToSchedule
// pipeline.
func Thunder(cfg ThunderConfig) []Job {
	rng := rand.New(rand.NewSource(cfg.Seed))
	users := make([]int, cfg.Users)
	for i := range users {
		users[i] = 6000 + rng.Intn(999)
	}
	// The highlighted user is a mid-rank user: visible but a minority.
	users[min(5, cfg.Users-1)] = cfg.HighlightUser
	pickUser := func() int {
		// Zipf-ish: user k with weight 1/(k+1).
		var total float64
		for k := range users {
			total += 1 / float64(k+1)
		}
		r := rng.Float64() * total
		for k := range users {
			r -= 1 / float64(k+1)
			if r <= 0 {
				return users[k]
			}
		}
		return users[len(users)-1]
	}
	sizes := []int{1, 2, 4, 8, 16, 32, 64, 128, 256}
	sizeWeights := []float64{0.18, 0.17, 0.16, 0.14, 0.12, 0.10, 0.07, 0.04, 0.02}
	pickSize := func() int {
		r := rng.Float64()
		for i, w := range sizeWeights {
			if r -= w; r <= 0 {
				return sizes[i]
			}
		}
		return sizes[len(sizes)-1]
	}
	jobs := make([]Job, cfg.Jobs)
	for i := range jobs {
		// Log-uniform runtime between 2 minutes and 10 hours.
		logLo, logHi := math.Log(120), math.Log(36_000)
		run := int64(math.Exp(logLo + rng.Float64()*(logHi-logLo)))
		// Finish inside the day: end uniform over the day, start earlier
		// (possibly before the window, as in the real selection of "jobs
		// that finished on 02/02").
		end := int64(rng.Float64() * float64(cfg.DaySeconds))
		submit := end - run
		jobs[i] = Job{
			ID: i + 1, Submit: submit, Wait: 0, Run: run,
			Procs: pickSize(), AvgCPU: -1, Memory: -1,
			ReqProcs: -1, ReqTime: -1, ReqMemory: -1,
			Status: 1, User: pickUser(), Group: -1,
			Executable: -1, Queue: 1, Partition: 1, Preceding: -1, ThinkTime: -1,
		}
	}
	return jobs
}

// ThunderDay runs the full Figure 13 pipeline: generate, place on the
// cluster, and convert to a schedule with the user highlighted.
func ThunderDay(cfg ThunderConfig) (*Placed, error) {
	jobs := Thunder(cfg)
	placements, err := Place(jobs, cfg.Nodes, cfg.Reserved)
	if err != nil {
		return nil, err
	}
	s := ToSchedule(placements, cfg.Nodes, cfg.HighlightUser)
	s.SetMeta("cluster", "LLNL-Thunder (synthetic)")
	return &Placed{Jobs: jobs, Placements: placements, Schedule: s}, nil
}

// Placed bundles the outcome of a placement pipeline.
type Placed struct {
	Jobs       []Job
	Placements []Placement
	Schedule   *core.Schedule
}
