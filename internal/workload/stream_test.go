package workload

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

// TestScanSWFEquivalence: the streaming parser and the materializing reader
// must agree record for record, header for header — including the
// fractional avg-CPU field.
func TestScanSWFEquivalence(t *testing.T) {
	wantJobs, wantHdr, err := ReadSWF(strings.NewReader(sampleSWF))
	if err != nil {
		t.Fatal(err)
	}
	var gotJobs []Job
	var gotHdr Header
	err = ScanSWF(strings.NewReader(sampleSWF),
		func(k, v string) { gotHdr = append(gotHdr, struct{ Key, Value string }{k, v}) },
		func(j Job) error { gotJobs = append(gotJobs, j); return nil })
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(wantJobs, gotJobs) {
		t.Fatalf("jobs differ:\nread %+v\nscan %+v", wantJobs, gotJobs)
	}
	if !reflect.DeepEqual(wantHdr, gotHdr) {
		t.Fatalf("headers differ:\nread %+v\nscan %+v", wantHdr, gotHdr)
	}
}

// TestScanSWFErrors: torn and malformed lines must fail with the offending
// line number, and a mid-stream job error must stop the scan.
func TestScanSWFErrors(t *testing.T) {
	good := "1 0 0 10 2 -1 -1 -1 -1 -1 1 7 -1 -1 1 1 -1 -1\n"
	cases := []struct {
		name, input, wantSub string
	}{
		{"short line", good + "2 0 0\n", "line 2: 3 fields"},
		{"bad int field", good + strings.Repeat("x ", 18) + "\n", "line 2 field 1"},
		{"bad float field 6", "1 0 0 10 2 no.pe -1 -1 -1 -1 1 7 -1 -1 1 1 -1 -1\n", "line 1 field 6"},
	}
	for _, c := range cases {
		err := ScanSWF(strings.NewReader(c.input), nil, func(Job) error { return nil })
		if err == nil {
			t.Errorf("%s: no error", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.wantSub) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.wantSub)
		}
	}

	// Callback errors propagate unchanged and stop the stream.
	calls := 0
	sentinel := errSentinel{}
	err := ScanSWF(strings.NewReader(good+good), nil, func(Job) error {
		calls++
		return sentinel
	})
	if err != sentinel {
		t.Fatalf("callback error not propagated: %v", err)
	}
	if calls != 1 {
		t.Fatalf("scan continued after callback error: %d calls", calls)
	}
}

type errSentinel struct{}

func (errSentinel) Error() string { return "stop" }

// TestScanSWFFractionalAvgCPU pins the satellite fix: field 6 is parsed
// exactly once, fractional values survive, and integer values take the
// alloc-free fast path.
func TestScanSWFFractionalAvgCPU(t *testing.T) {
	input := "1 0 0 10 2 2.5 -1 -1 -1 -1 1 7 -1 -1 1 1 -1 -1\n" +
		"2 5 0 10 2 97 -1 -1 -1 -1 1 7 -1 -1 1 1 -1 -1\n"
	jobs, _, err := ReadSWF(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	if jobs[0].AvgCPU != 2.5 || jobs[1].AvgCPU != 97 {
		t.Fatalf("AvgCPU = %g, %g; want 2.5, 97", jobs[0].AvgCPU, jobs[1].AvgCPU)
	}
}

// TestReadSWFWindow: the fused streaming filter must select exactly what
// FilterWindow selects from a materialized read.
func TestReadSWFWindow(t *testing.T) {
	all, _, err := ReadSWF(strings.NewReader(sampleSWF))
	if err != nil {
		t.Fatal(err)
	}
	for _, win := range [][2]int64{{0, 10_000}, {1000, 2000}, {5000, 6000}} {
		want := FilterWindow(all, win[0], win[1])
		got, _, err := ReadSWFWindow(strings.NewReader(sampleSWF), win[0], win[1])
		if err != nil {
			t.Fatal(err)
		}
		if len(want) != len(got) || (len(want) > 0 && !reflect.DeepEqual(want, got)) {
			t.Fatalf("window %v: streaming got %d jobs, materialized %d", win, len(got), len(want))
		}
	}
}

// TestScanSWFAllocs: the record path must not allocate per job — the only
// per-scan allocations are the scanner, its buffer, and the reader.
func TestScanSWFAllocs(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteSWF(&buf, Generate(GenerateConfig{Jobs: 2000, Nodes: 128, Users: 8, Horizon: 86_400, Seed: 2}), nil); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	allocs := testing.AllocsPerRun(5, func() {
		err := ScanSWF(bytes.NewReader(data), nil, func(Job) error { return nil })
		if err != nil {
			t.Fatal(err)
		}
	})
	// ~4 fixed allocations per whole scan; anything growing with the 2000
	// jobs would push this far beyond the bound.
	if allocs > 16 {
		t.Fatalf("ScanSWF allocated %.0f times for 2000 jobs; want O(1) per scan", allocs)
	}
}

// TestGenerateDeterminism: the synthetic trace and its direct schedule are
// pure functions of the config.
func TestGenerateDeterminism(t *testing.T) {
	cfg := DefaultGenerateConfig(5_000)
	a, b := Generate(cfg), Generate(cfg)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("Generate is not deterministic")
	}
	for i := 1; i < len(a); i++ {
		if a[i].Submit < a[i-1].Submit {
			t.Fatal("Generate output not sorted by submit time")
		}
	}
	s1, s2 := GenerateSchedule(cfg), GenerateSchedule(cfg)
	if len(s1.Tasks) != len(a) || len(s1.Tasks) != len(s2.Tasks) {
		t.Fatalf("schedule task counts: %d, %d; jobs %d", len(s1.Tasks), len(s2.Tasks), len(a))
	}
	for i := range s1.Tasks {
		x, y := &s1.Tasks[i], &s2.Tasks[i]
		if x.ID != y.ID || x.Start != y.Start || x.End != y.End ||
			!reflect.DeepEqual(x.Allocations, y.Allocations) {
			t.Fatalf("task %d differs between identical configs", i)
		}
	}
	if err := s1.Validate(); err != nil {
		t.Fatalf("generated schedule invalid: %v", err)
	}
}
