// Package workload implements the paper's last case study (section VII):
// bird's-eye visualization of parallel production workloads. It provides a
// parser and writer for the Standard Workload Format (SWF) used by the
// Parallel Workloads Archive, an FCFS placement simulator that assigns jobs
// to concrete nodes (SWF traces record how many processors a job used, not
// which ones), a deterministic synthetic generator reproducing the shape of
// the LLNL Thunder day shown in Figure 13, and the conversion to a Jedule
// schedule with per-user highlighting.
package workload

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Job is one SWF record. Times are in seconds; -1 encodes "unknown" for
// most fields, as in the archive.
type Job struct {
	ID         int
	Submit     int64 // seconds since trace start
	Wait       int64 // queueing delay
	Run        int64 // execution duration
	Procs      int   // allocated processors
	AvgCPU     float64
	Memory     int64
	ReqProcs   int
	ReqTime    int64
	ReqMemory  int64
	Status     int
	User       int
	Group      int
	Executable int
	Queue      int
	Partition  int
	Preceding  int
	ThinkTime  int64
}

// Start returns the execution start time (submit + wait).
func (j Job) Start() int64 { return j.Submit + j.Wait }

// End returns the completion time.
func (j Job) End() int64 { return j.Start() + j.Run }

// Header carries the commented key/value metadata of an SWF file.
type Header []struct{ Key, Value string }

// Get returns the first header value for key, or "".
func (h Header) Get(key string) string {
	for _, kv := range h {
		if kv.Key == key {
			return kv.Value
		}
	}
	return ""
}

// ScanSWF parses an SWF stream without materializing it: ';'-prefixed
// header comments followed by whitespace-separated 18-field job records.
// Every header key/value is passed to header (which may be nil) and every
// record to job, in file order; a non-nil error from job stops the scan and
// is returned as-is. Records with fewer than 18 fields are rejected with
// the offending line number; blank lines are skipped.
//
// The record path performs O(1) allocations per job: fields are split and
// parsed directly from the scanner's byte buffer, and the only per-record
// heap traffic is the rare fallback for a fractional avg-CPU field. A
// million-job archive trace therefore streams through in one pass with
// O(1) memory beyond what the job callback retains.
func ScanSWF(r io.Reader, header func(key, value string), job func(Job) error) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lineNo := 0
	var fields [18][]byte
	for sc.Scan() {
		lineNo++
		line := trimSpaceBytes(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		if line[0] == ';' {
			if header != nil {
				body := strings.TrimSpace(string(line[1:]))
				if k, v, ok := strings.Cut(body, ":"); ok {
					header(strings.TrimSpace(k), strings.TrimSpace(v))
				}
			}
			continue
		}
		n := splitFields(line, fields[:])
		if n < 18 {
			return fmt.Errorf("workload: line %d: %d fields, want 18", lineNo, n)
		}
		var vals [18]int64
		var avg float64
		for i := 0; i < 18; i++ {
			v, ok := parseIntBytes(fields[i])
			if i == 5 {
				// Field 6 (avg cpu) may be fractional: fall back to a
				// float parse only when the integer fast path fails.
				if ok {
					avg = float64(v)
					continue
				}
				f, err := strconv.ParseFloat(string(fields[i]), 64)
				if err != nil {
					return fmt.Errorf("workload: line %d field %d: %v", lineNo, i+1, err)
				}
				avg = f
				continue
			}
			if !ok {
				_, err := strconv.ParseInt(string(fields[i]), 10, 64)
				return fmt.Errorf("workload: line %d field %d: %v", lineNo, i+1, err)
			}
			vals[i] = v
		}
		err := job(Job{
			ID: int(vals[0]), Submit: vals[1], Wait: vals[2], Run: vals[3],
			Procs: int(vals[4]), AvgCPU: avg, Memory: vals[6],
			ReqProcs: int(vals[7]), ReqTime: vals[8], ReqMemory: vals[9],
			Status: int(vals[10]), User: int(vals[11]), Group: int(vals[12]),
			Executable: int(vals[13]), Queue: int(vals[14]), Partition: int(vals[15]),
			Preceding: int(vals[16]), ThinkTime: vals[17],
		})
		if err != nil {
			return err
		}
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("workload: %w", err)
	}
	return nil
}

// trimSpaceBytes trims ASCII whitespace without converting to a string.
func trimSpaceBytes(b []byte) []byte {
	for len(b) > 0 && asciiSpace(b[0]) {
		b = b[1:]
	}
	for len(b) > 0 && asciiSpace(b[len(b)-1]) {
		b = b[:len(b)-1]
	}
	return b
}

func asciiSpace(c byte) bool {
	return c == ' ' || c == '\t' || c == '\r' || c == '\n' || c == '\v' || c == '\f'
}

// splitFields splits line on runs of whitespace into dst, returning the
// number of fields found (capped at len(dst); extra fields are ignored, as
// some archive traces append annotations).
func splitFields(line []byte, dst [][]byte) int {
	n := 0
	i := 0
	for i < len(line) && n < len(dst) {
		for i < len(line) && asciiSpace(line[i]) {
			i++
		}
		if i == len(line) {
			break
		}
		start := i
		for i < len(line) && !asciiSpace(line[i]) {
			i++
		}
		dst[n] = line[start:i]
		n++
	}
	return n
}

// parseIntBytes parses a decimal integer from raw bytes, reporting ok=false
// on any syntax problem or overflow (the caller falls back to strconv for
// the canonical error message).
func parseIntBytes(b []byte) (int64, bool) {
	if len(b) == 0 {
		return 0, false
	}
	neg := false
	i := 0
	if b[0] == '-' || b[0] == '+' {
		neg = b[0] == '-'
		i++
		if i == len(b) {
			return 0, false
		}
	}
	var v int64
	for ; i < len(b); i++ {
		d := b[i] - '0'
		if d > 9 {
			return 0, false
		}
		if v > (1<<62)/10 {
			return 0, false // near overflow; let strconv report it
		}
		v = v*10 + int64(d)
	}
	if neg {
		v = -v
	}
	return v, true
}

// ReadSWF parses an SWF stream into memory. It is ScanSWF plus
// materialization, for callers that need the whole trace at once.
func ReadSWF(r io.Reader) ([]Job, Header, error) {
	var jobs []Job
	var hdr Header
	err := ScanSWF(r,
		func(k, v string) { hdr = append(hdr, struct{ Key, Value string }{k, v}) },
		func(j Job) error { jobs = append(jobs, j); return nil })
	if err != nil {
		return nil, nil, err
	}
	return jobs, hdr, nil
}

// ReadSWFWindow streams an SWF trace and keeps only the jobs whose
// execution finished inside [from, to) — FilterWindow fused into the scan,
// so selecting one day out of a million-job trace needs memory proportional
// to the window, not the trace.
func ReadSWFWindow(r io.Reader, from, to int64) ([]Job, Header, error) {
	var jobs []Job
	var hdr Header
	err := ScanSWF(r,
		func(k, v string) { hdr = append(hdr, struct{ Key, Value string }{k, v}) },
		func(j Job) error {
			if end := j.End(); end >= from && end < to {
				jobs = append(jobs, j)
			}
			return nil
		})
	if err != nil {
		return nil, nil, err
	}
	return jobs, hdr, nil
}

// WriteSWF emits jobs in SWF format with the given header comments.
func WriteSWF(w io.Writer, jobs []Job, hdr Header) error {
	bw := bufio.NewWriter(w)
	for _, kv := range hdr {
		if _, err := fmt.Fprintf(bw, "; %s: %s\n", kv.Key, kv.Value); err != nil {
			return err
		}
	}
	for _, j := range jobs {
		if _, err := fmt.Fprintf(bw, "%d %d %d %d %d %g %d %d %d %d %d %d %d %d %d %d %d %d\n",
			j.ID, j.Submit, j.Wait, j.Run, j.Procs, j.AvgCPU, j.Memory,
			j.ReqProcs, j.ReqTime, j.ReqMemory, j.Status, j.User, j.Group,
			j.Executable, j.Queue, j.Partition, j.Preceding, j.ThinkTime); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadSWFFile parses an SWF file from disk (for example a real archive
// trace such as LLNL-Thunder-2007-0 when available).
func ReadSWFFile(path string) ([]Job, Header, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	return ReadSWF(f)
}

// FilterWindow keeps jobs whose execution finished inside [from, to) — the
// "all jobs that finished on 02/02" selection of the case study.
func FilterWindow(jobs []Job, from, to int64) []Job {
	var out []Job
	for _, j := range jobs {
		if end := j.End(); end >= from && end < to {
			out = append(out, j)
		}
	}
	return out
}
