// Package workload implements the paper's last case study (section VII):
// bird's-eye visualization of parallel production workloads. It provides a
// parser and writer for the Standard Workload Format (SWF) used by the
// Parallel Workloads Archive, an FCFS placement simulator that assigns jobs
// to concrete nodes (SWF traces record how many processors a job used, not
// which ones), a deterministic synthetic generator reproducing the shape of
// the LLNL Thunder day shown in Figure 13, and the conversion to a Jedule
// schedule with per-user highlighting.
package workload

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Job is one SWF record. Times are in seconds; -1 encodes "unknown" for
// most fields, as in the archive.
type Job struct {
	ID         int
	Submit     int64 // seconds since trace start
	Wait       int64 // queueing delay
	Run        int64 // execution duration
	Procs      int   // allocated processors
	AvgCPU     float64
	Memory     int64
	ReqProcs   int
	ReqTime    int64
	ReqMemory  int64
	Status     int
	User       int
	Group      int
	Executable int
	Queue      int
	Partition  int
	Preceding  int
	ThinkTime  int64
}

// Start returns the execution start time (submit + wait).
func (j Job) Start() int64 { return j.Submit + j.Wait }

// End returns the completion time.
func (j Job) End() int64 { return j.Start() + j.Run }

// Header carries the commented key/value metadata of an SWF file.
type Header []struct{ Key, Value string }

// Get returns the first header value for key, or "".
func (h Header) Get(key string) string {
	for _, kv := range h {
		if kv.Key == key {
			return kv.Value
		}
	}
	return ""
}

// ReadSWF parses an SWF stream: ';'-prefixed header comments followed by
// whitespace-separated 18-field job records. Records with fewer fields are
// rejected; blank lines are skipped.
func ReadSWF(r io.Reader) ([]Job, Header, error) {
	var jobs []Job
	var hdr Header
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, ";") {
			body := strings.TrimSpace(strings.TrimPrefix(line, ";"))
			if k, v, ok := strings.Cut(body, ":"); ok {
				hdr = append(hdr, struct{ Key, Value string }{
					strings.TrimSpace(k), strings.TrimSpace(v)})
			}
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 18 {
			return nil, nil, fmt.Errorf("workload: line %d: %d fields, want 18", lineNo, len(fields))
		}
		var vals [18]int64
		for i := 0; i < 18; i++ {
			// Field 6 (avg cpu) may be fractional; parse as float and
			// keep the rest integral.
			if i == 5 {
				f, err := strconv.ParseFloat(fields[i], 64)
				if err != nil {
					return nil, nil, fmt.Errorf("workload: line %d field %d: %v", lineNo, i+1, err)
				}
				vals[i] = int64(f * 1000) // stored in Job.AvgCPU below
				continue
			}
			v, err := strconv.ParseInt(fields[i], 10, 64)
			if err != nil {
				return nil, nil, fmt.Errorf("workload: line %d field %d: %v", lineNo, i+1, err)
			}
			vals[i] = v
		}
		avg, _ := strconv.ParseFloat(fields[5], 64)
		jobs = append(jobs, Job{
			ID: int(vals[0]), Submit: vals[1], Wait: vals[2], Run: vals[3],
			Procs: int(vals[4]), AvgCPU: avg, Memory: vals[6],
			ReqProcs: int(vals[7]), ReqTime: vals[8], ReqMemory: vals[9],
			Status: int(vals[10]), User: int(vals[11]), Group: int(vals[12]),
			Executable: int(vals[13]), Queue: int(vals[14]), Partition: int(vals[15]),
			Preceding: int(vals[16]), ThinkTime: vals[17],
		})
	}
	if err := sc.Err(); err != nil {
		return nil, nil, fmt.Errorf("workload: %w", err)
	}
	return jobs, hdr, nil
}

// WriteSWF emits jobs in SWF format with the given header comments.
func WriteSWF(w io.Writer, jobs []Job, hdr Header) error {
	bw := bufio.NewWriter(w)
	for _, kv := range hdr {
		if _, err := fmt.Fprintf(bw, "; %s: %s\n", kv.Key, kv.Value); err != nil {
			return err
		}
	}
	for _, j := range jobs {
		if _, err := fmt.Fprintf(bw, "%d %d %d %d %d %g %d %d %d %d %d %d %d %d %d %d %d %d\n",
			j.ID, j.Submit, j.Wait, j.Run, j.Procs, j.AvgCPU, j.Memory,
			j.ReqProcs, j.ReqTime, j.ReqMemory, j.Status, j.User, j.Group,
			j.Executable, j.Queue, j.Partition, j.Preceding, j.ThinkTime); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadSWFFile parses an SWF file from disk (for example a real archive
// trace such as LLNL-Thunder-2007-0 when available).
func ReadSWFFile(path string) ([]Job, Header, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	return ReadSWF(f)
}

// FilterWindow keeps jobs whose execution finished inside [from, to) — the
// "all jobs that finished on 02/02" selection of the case study.
func FilterWindow(jobs []Job, from, to int64) []Job {
	var out []Job
	for _, j := range jobs {
		if end := j.End(); end >= from && end < to {
			out = append(out, j)
		}
	}
	return out
}
