package raster

import (
	"bytes"
	"image/color"
	"image/jpeg"
	"image/png"
	"math"
	"testing"
	"testing/quick"
	"time"
)

var (
	red   = color.RGBA{255, 0, 0, 255}
	black = color.RGBA{0, 0, 0, 255}
	white = color.RGBA{255, 255, 255, 255}
)

func TestNewIsWhite(t *testing.T) {
	c := New(20, 10)
	if w, h := c.Size(); w != 20 || h != 10 {
		t.Fatalf("Size = %g x %g", w, h)
	}
	if c.At(0, 0) != white || c.At(19, 9) != white {
		t.Fatal("canvas not initialized white")
	}
	// Degenerate sizes are clamped.
	tiny := New(0, -5)
	if w, h := tiny.Size(); w != 1 || h != 1 {
		t.Fatalf("clamped size = %g x %g", w, h)
	}
}

func TestFillRect(t *testing.T) {
	c := New(20, 20)
	c.FillRect(5, 5, 10, 10, red)
	if c.At(5, 5) != red || c.At(14, 14) != red {
		t.Error("inside pixels not filled")
	}
	if c.At(4, 5) != white || c.At(15, 15) != white {
		t.Error("outside pixels touched")
	}
	// Clipping: fills beyond the canvas must not panic.
	c.FillRect(-100, -100, 1000, 1000, black)
	if c.At(0, 0) != black {
		t.Error("clipped fill missing")
	}
	// Degenerate fills are no-ops.
	c2 := New(10, 10)
	c2.FillRect(2, 2, 0, 5, red)
	c2.FillRect(2, 2, 5, -1, red)
	if c2.At(2, 2) != white {
		t.Error("degenerate fill drew pixels")
	}
}

func TestStrokeRect(t *testing.T) {
	c := New(20, 20)
	c.StrokeRect(2, 2, 10, 10, black, 1)
	if c.At(2, 2) != black || c.At(11, 11) != black {
		t.Error("corners not stroked")
	}
	if c.At(5, 5) != white {
		t.Error("interior should stay white")
	}
}

func TestLine(t *testing.T) {
	c := New(20, 20)
	c.Line(0, 0, 19, 19, black, 1)
	for i := 2; i < 18; i += 5 {
		if c.At(i, i) != black {
			t.Errorf("diagonal pixel (%d,%d) not drawn", i, i)
		}
	}
	c2 := New(20, 20)
	c2.Line(0, 10, 19, 10, red, 3)
	if c2.At(10, 10) != red || c2.At(10, 9) != red || c2.At(10, 11) != red {
		t.Error("thick line not widened")
	}
}

func TestTextDrawsInk(t *testing.T) {
	c := New(100, 20)
	c.Text(2, 2, "Hello 42", 8, black)
	ink := 0
	for y := 0; y < 20; y++ {
		for x := 0; x < 100; x++ {
			if c.At(x, y) == black {
				ink++
			}
		}
	}
	if ink < 40 {
		t.Fatalf("text drew only %d pixels", ink)
	}
}

func TestTextUnknownGlyphBox(t *testing.T) {
	c := New(20, 20)
	c.Text(0, 0, "é", 8, black) // é has no glyph: hollow box
	if c.At(0, 0) != black {
		t.Error("unknown glyph box corner missing")
	}
	if c.At(2, 3) != white {
		t.Error("unknown glyph box interior should be empty")
	}
}

func TestVerticalText(t *testing.T) {
	c := New(20, 60)
	c.VerticalText(2, 2, "UP", 8, black)
	ink := 0
	for y := 0; y < 60; y++ {
		for x := 0; x < 20; x++ {
			if c.At(x, y) == black {
				ink++
			}
		}
	}
	if ink < 15 {
		t.Fatalf("vertical text drew only %d pixels", ink)
	}
}

func TestFontMetrics(t *testing.T) {
	if FontScale(8) != 1 || FontScale(1) != 1 {
		t.Error("small sizes must scale 1")
	}
	if FontScale(16) != 2 || FontScale(24) != 3 {
		t.Errorf("FontScale(16)=%d FontScale(24)=%d", FontScale(16), FontScale(24))
	}
	if TextWidth("", 8) != 0 {
		t.Error("empty TextWidth should be 0")
	}
	if got := TextWidth("ab", 8); got != float64(2*GlyphAdvance-1) {
		t.Errorf("TextWidth(ab) = %g", got)
	}
	if TextHeight(8) != 7 {
		t.Errorf("TextHeight(8) = %g", TextHeight(8))
	}
	c := New(1, 1)
	if c.TextWidth("ab", 8) != TextWidth("ab", 8) || c.TextHeight(8) != TextHeight(8) {
		t.Error("canvas metric methods disagree with package functions")
	}
}

func TestGlyphTableWellFormed(t *testing.T) {
	for r, g := range glyphs {
		for row, line := range g {
			if len(line) != GlyphWidth {
				t.Errorf("glyph %q row %d has width %d", r, row, len(line))
			}
			for _, ch := range line {
				if ch != '#' && ch != '.' {
					t.Errorf("glyph %q contains invalid cell %q", r, ch)
				}
			}
		}
	}
	// Full printable ASCII coverage.
	for r := rune(32); r <= 126; r++ {
		if _, ok := glyphs[r]; !ok {
			t.Errorf("missing glyph for %q", r)
		}
	}
	// Distinguishable digits: no two digit glyphs identical.
	seen := map[[7]string]rune{}
	for r := '0'; r <= '9'; r++ {
		g := glyphs[r]
		if prev, dup := seen[g]; dup {
			t.Errorf("digits %q and %q share a glyph", prev, r)
		}
		seen[g] = r
	}
}

func TestEncodePNG(t *testing.T) {
	c := New(30, 20)
	c.FillRect(0, 0, 30, 20, red)
	var buf bytes.Buffer
	if err := c.EncodePNG(&buf); err != nil {
		t.Fatal(err)
	}
	img, err := png.Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if img.Bounds().Dx() != 30 || img.Bounds().Dy() != 20 {
		t.Fatalf("decoded bounds = %v", img.Bounds())
	}
	r, _, _, _ := img.At(10, 10).RGBA()
	if r>>8 != 255 {
		t.Error("decoded pixel wrong")
	}
}

func TestEncodeJPEG(t *testing.T) {
	c := New(30, 20)
	var buf bytes.Buffer
	if err := c.EncodeJPEG(&buf, 90); err != nil {
		t.Fatal(err)
	}
	if _, err := jpeg.Decode(&buf); err != nil {
		t.Fatal(err)
	}
}

func TestWriteFile(t *testing.T) {
	dir := t.TempDir()
	c := New(10, 10)
	for _, name := range []string{"a.png", "b.jpg", "c.jpeg"} {
		if err := c.WriteFile(dir + "/" + name); err != nil {
			t.Errorf("WriteFile(%s): %v", name, err)
		}
	}
	if err := c.WriteFile(dir + "/bad.gif"); err == nil {
		t.Error("unsupported extension must error")
	}
	if err := c.WriteFile("/nonexistent-dir-xyz/f.png"); err == nil {
		t.Error("unwritable path must error")
	}
}

// Property: drawing never writes outside the canvas and never panics, for
// arbitrary (possibly degenerate or out-of-range) geometry.
func TestDrawingRobustnessProperty(t *testing.T) {
	f := func(x, y, w, h float64, lw uint8) bool {
		c := New(32, 32)
		col := color.RGBA{10, 20, 30, 255}
		c.FillRect(x, y, w, h, col)
		c.StrokeRect(x, y, w, h, col, float64(lw%5))
		c.Line(x, y, x+w, y+h, col, float64(lw%3))
		c.Text(x, y, "zz", 8, col)
		// At() out of bounds stays zero and in-bounds pixels are either
		// white or the drawing color.
		for py := -2; py < 34; py++ {
			for px := -2; px < 34; px++ {
				got := c.At(px, py)
				if px < 0 || py < 0 || px >= 32 || py >= 32 {
					if got != (color.RGBA{}) {
						return false
					}
					continue
				}
				if got != col && got != (color.RGBA{255, 255, 255, 255}) {
					return false
				}
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 60}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// Property: TextWidth is additive in string concatenation up to the
// inter-glyph gap, and monotone in length.
func TestTextWidthMonotoneProperty(t *testing.T) {
	f := func(a, b string, size uint8) bool {
		sz := float64(size%24) + 1
		wa := TextWidth(a, sz)
		wab := TextWidth(a+b, sz)
		return wab >= wa
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestClipSegment(t *testing.T) {
	// Fully inside: untouched.
	x1, y1, x2, y2, ok := clipSegment(1, 1, 5, 5, 0, 0, 10, 10)
	if !ok || x1 != 1 || y2 != 5 {
		t.Fatalf("inside clip = %g,%g %g,%g %v", x1, y1, x2, y2, ok)
	}
	// Crossing: clipped to the border.
	x1, _, x2, _, ok = clipSegment(-10, 5, 20, 5, 0, 0, 10, 10)
	if !ok || x1 != 0 || x2 != 10 {
		t.Fatalf("crossing clip = %g..%g %v", x1, x2, ok)
	}
	// Fully outside: rejected.
	if _, _, _, _, ok := clipSegment(-10, -10, -5, -5, 0, 0, 10, 10); ok {
		t.Fatal("outside segment accepted")
	}
	// Parallel outside: rejected.
	if _, _, _, _, ok := clipSegment(-1, 20, 5, 20, 0, 0, 10, 10); ok {
		t.Fatal("parallel outside accepted")
	}
}

func TestLineHugeCoordinatesFast(t *testing.T) {
	c := New(16, 16)
	done := make(chan struct{})
	go func() {
		c.Line(-1e300, 8, 1e300, 8, black, 1) // horizontal through the canvas
		c.Line(1e308, 1e308, 1.5e308, 1.5e308, black, 1)
		c.Line(math.NaN(), 0, 5, 5, black, 1)
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Line with huge coordinates did not terminate promptly")
	}
	if c.At(8, 8) != black {
		t.Fatal("clipped horizontal line missing")
	}
}
