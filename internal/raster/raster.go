// Package raster is a dependency-free software 2D canvas used by the Jedule
// renderer for its PNG and JPEG outputs (the bitmap half of the paper's
// command-line mode). It draws axis-aligned rectangles, lines, and text with
// an embedded 5x7 bitmap font onto an image.RGBA, and encodes the result
// with the stdlib image codecs.
package raster

import (
	"fmt"
	"image"
	"image/color"
	"image/jpeg"
	"image/png"
	"io"
	"math"
	"os"
	"path/filepath"
	"strings"
)

// Canvas is a drawing surface backed by an image.RGBA. A canvas may be a
// clipped view of another canvas's pixels (see Sub); all drawing primitives
// route through FillRect, which discards pixels outside the clip rectangle.
type Canvas struct {
	img  *image.RGBA
	clip image.Rectangle
}

// New creates a canvas of the given pixel size filled with white.
func New(width, height int) *Canvas {
	if width < 1 {
		width = 1
	}
	if height < 1 {
		height = 1
	}
	img := image.NewRGBA(image.Rect(0, 0, width, height))
	c := &Canvas{img: img, clip: img.Bounds()}
	c.FillRect(0, 0, float64(width), float64(height), color.RGBA{255, 255, 255, 255})
	return c
}

// Sub returns a canvas that draws into the same backing image but only
// touches pixels inside r (intersected with the receiver's own clip). It
// reports the full canvas size, so layout code positions elements exactly as
// on the parent; only the painted region differs. Two Sub canvases with
// non-overlapping rectangles never write the same pixel, so independent
// goroutines can rasterize disjoint bands of one image concurrently and the
// composite needs no copy.
func (c *Canvas) Sub(r image.Rectangle) *Canvas {
	return &Canvas{img: c.img, clip: r.Intersect(c.clip)}
}

// Clip returns the writable pixel region of the canvas.
func (c *Canvas) Clip() image.Rectangle { return c.clip }

// Size returns the canvas dimensions.
func (c *Canvas) Size() (w, h float64) {
	b := c.img.Bounds()
	return float64(b.Dx()), float64(b.Dy())
}

// Image exposes the backing image (for tests and encoders).
func (c *Canvas) Image() *image.RGBA { return c.img }

// At returns the pixel color at integer coordinates, transparent black when
// out of bounds.
func (c *Canvas) At(x, y int) color.RGBA {
	if !(image.Point{x, y}).In(c.img.Bounds()) {
		return color.RGBA{}
	}
	return c.img.RGBAAt(x, y)
}

// FillRect fills the axis-aligned rectangle with origin (x, y).
func (c *Canvas) FillRect(x, y, w, h float64, col color.RGBA) {
	if w <= 0 || h <= 0 {
		return
	}
	x0, y0 := int(math.Floor(x)), int(math.Floor(y))
	x1, y1 := int(math.Ceil(x+w)), int(math.Ceil(y+h))
	r := image.Rect(x0, y0, x1, y1).Intersect(c.clip)
	if r.Empty() {
		return
	}
	// Paint the first row pixel by pixel, then replicate it with copy:
	// memmove beats per-pixel offset arithmetic by an order of magnitude
	// on the wide fills (panel backgrounds, zoomed-in tasks) that dominate
	// rasterization time.
	rowLen := 4 * r.Dx()
	off := c.img.PixOffset(r.Min.X, r.Min.Y)
	first := c.img.Pix[off : off+rowLen]
	first[0], first[1], first[2], first[3] = col.R, col.G, col.B, col.A
	for n := 4; n < rowLen; n *= 2 {
		copy(first[n:], first[:n]) // double the painted prefix each step
	}
	for py := r.Min.Y + 1; py < r.Max.Y; py++ {
		off += c.img.Stride
		copy(c.img.Pix[off:off+rowLen], first)
	}
}

// StrokeRect outlines the rectangle with the given line width.
func (c *Canvas) StrokeRect(x, y, w, h float64, col color.RGBA, lw float64) {
	if w <= 0 || h <= 0 || lw <= 0 {
		return
	}
	c.FillRect(x, y, w, lw, col)      // top
	c.FillRect(x, y+h-lw, w, lw, col) // bottom
	c.FillRect(x, y, lw, h, col)      // left
	c.FillRect(x+w-lw, y, lw, h, col) // right
}

// Line draws a straight segment using a DDA walk; lw widens it into a
// square brush. The segment is clipped to the canvas first, so arbitrarily
// distant endpoints cost nothing. It is clipped to the full canvas, not the
// Sub clip rectangle: the walk must visit the same brush positions on every
// view of the image so that clipped bands compose pixel-identically.
func (c *Canvas) Line(x1, y1, x2, y2 float64, col color.RGBA, lw float64) {
	if lw < 1 {
		lw = 1
	}
	if math.IsNaN(x1) || math.IsNaN(y1) || math.IsNaN(x2) || math.IsNaN(y2) {
		return
	}
	// Clamp absurd coordinates before clipping: beyond this range the
	// Liang-Barsky parameters lose all floating-point precision anyway,
	// and no real chart addresses pixels that far out.
	const limit = 1e7
	x1 = math.Max(-limit, math.Min(limit, x1))
	y1 = math.Max(-limit, math.Min(limit, y1))
	x2 = math.Max(-limit, math.Min(limit, x2))
	y2 = math.Max(-limit, math.Min(limit, y2))
	w, h := c.Size()
	x1, y1, x2, y2, ok := clipSegment(x1, y1, x2, y2, -lw, -lw, w+lw, h+lw)
	if !ok {
		return
	}
	dx, dy := x2-x1, y2-y1
	steps := math.Max(math.Abs(dx), math.Abs(dy))
	if steps < 1 {
		steps = 1
	}
	sx, sy := dx/steps, dy/steps
	half := lw / 2
	x, y := x1, y1
	for i := 0.0; i <= steps; i++ {
		c.FillRect(x-half, y-half, lw, lw, col)
		x += sx
		y += sy
	}
}

// clipSegment clips (x1,y1)-(x2,y2) to the rectangle [minX,maxX]x[minY,maxY]
// with the Liang-Barsky algorithm; ok is false when nothing remains.
func clipSegment(x1, y1, x2, y2, minX, minY, maxX, maxY float64) (cx1, cy1, cx2, cy2 float64, ok bool) {
	dx, dy := x2-x1, y2-y1
	t0, t1 := 0.0, 1.0
	clip := func(p, q float64) bool {
		if p == 0 {
			return q >= 0 // parallel: inside iff q >= 0
		}
		r := q / p
		if p < 0 {
			if r > t1 {
				return false
			}
			if r > t0 {
				t0 = r
			}
		} else {
			if r < t0 {
				return false
			}
			if r < t1 {
				t1 = r
			}
		}
		return true
	}
	if !clip(-dx, x1-minX) || !clip(dx, maxX-x1) ||
		!clip(-dy, y1-minY) || !clip(dy, maxY-y1) {
		return 0, 0, 0, 0, false
	}
	return x1 + t0*dx, y1 + t0*dy, x1 + t1*dx, y1 + t1*dy, true
}

// Text draws s with its top-left corner at (x, y) using the embedded font.
func (c *Canvas) Text(x, y float64, s string, size float64, col color.RGBA) {
	scale := FontScale(size)
	px := int(math.Round(x))
	py := int(math.Round(y))
	for _, r := range s {
		g := glyphFor(r)
		for row := 0; row < GlyphHeight; row++ {
			for colI := 0; colI < GlyphWidth; colI++ {
				if g[row][colI] != '#' {
					continue
				}
				c.FillRect(float64(px+colI*scale), float64(py+row*scale),
					float64(scale), float64(scale), col)
			}
		}
		px += GlyphAdvance * scale
	}
}

// TextWidth reports the width Text would cover, satisfying the renderer's
// Canvas interface.
func (c *Canvas) TextWidth(s string, size float64) float64 { return TextWidth(s, size) }

// TextHeight reports the glyph height at the size.
func (c *Canvas) TextHeight(size float64) float64 { return TextHeight(size) }

// VerticalText draws s rotated 90 degrees counter-clockwise (reading
// bottom-to-top), with (x, y) the top-left of the rotated block. Used for
// the resource-axis label.
func (c *Canvas) VerticalText(x, y float64, s string, size float64, col color.RGBA) {
	scale := FontScale(size)
	px := int(math.Round(x))
	py := int(math.Round(y)) + int(TextWidth(s, size))
	for _, r := range s {
		g := glyphFor(r)
		for row := 0; row < GlyphHeight; row++ {
			for colI := 0; colI < GlyphWidth; colI++ {
				if g[row][colI] != '#' {
					continue
				}
				// rotate (col,row) -> (row, -col)
				c.FillRect(float64(px+row*scale), float64(py-colI*scale),
					float64(scale), float64(scale), col)
			}
		}
		py -= GlyphAdvance * scale
	}
}

// EncodePNG writes the canvas as PNG.
func (c *Canvas) EncodePNG(w io.Writer) error { return png.Encode(w, c.img) }

// EncodeJPEG writes the canvas as JPEG at the given quality (1..100).
func (c *Canvas) EncodeJPEG(w io.Writer, quality int) error {
	return jpeg.Encode(w, c.img, &jpeg.Options{Quality: quality})
}

// WriteFile encodes to the format implied by the file extension: .png or
// .jpg/.jpeg.
func (c *Canvas) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	var encErr error
	switch strings.ToLower(filepath.Ext(path)) {
	case ".png":
		encErr = c.EncodePNG(f)
	case ".jpg", ".jpeg":
		encErr = c.EncodeJPEG(f, 92)
	default:
		encErr = fmt.Errorf("raster: unsupported extension %q (want .png, .jpg)", filepath.Ext(path))
	}
	if encErr != nil {
		f.Close()
		return encErr
	}
	return f.Close()
}
