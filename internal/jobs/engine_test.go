package jobs

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"
)

func newTestEngine(t *testing.T, workers int) *Engine {
	t.Helper()
	e := NewEngine(workers)
	t.Cleanup(e.Close)
	return e
}

func waitState(t *testing.T, j *Job, want State) Status {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := j.Wait(ctx); err != nil {
		t.Fatalf("job %s did not finish: %v", j.ID(), err)
	}
	st := j.Status()
	if st.State != want {
		t.Fatalf("job %s state = %s, want %s (err %q)", j.ID(), st.State, want, st.Err)
	}
	return st
}

func TestJobLifecycle(t *testing.T) {
	e := newTestEngine(t, 2)
	j := e.Submit("demo", 3, func(_ context.Context, j *Job) (any, error) {
		for i := 0; i < 3; i++ {
			j.Advance(1)
		}
		return "payload", nil
	})
	if j.ID() != "j1" {
		t.Fatalf("id = %q", j.ID())
	}
	st := waitState(t, j, Done)
	if st.Done != 3 || st.Total != 3 {
		t.Fatalf("progress = %d/%d", st.Done, st.Total)
	}
	if st.Created.IsZero() || st.Started.IsZero() || st.Finished.IsZero() {
		t.Fatalf("timestamps missing: %+v", st)
	}
	v, ok := j.Result()
	if !ok || v != "payload" {
		t.Fatalf("result = %v, %v", v, ok)
	}
}

func TestJobFailure(t *testing.T) {
	e := newTestEngine(t, 1)
	j := e.Submit("demo", 0, func(context.Context, *Job) (any, error) {
		return nil, fmt.Errorf("boom")
	})
	st := waitState(t, j, Failed)
	if st.Err != "boom" {
		t.Fatalf("err = %q", st.Err)
	}
	if _, ok := j.Result(); ok {
		t.Fatal("failed job has a result")
	}
}

func TestCancelRunningJob(t *testing.T) {
	e := newTestEngine(t, 1)
	started := make(chan struct{})
	j := e.Submit("demo", 0, func(ctx context.Context, _ *Job) (any, error) {
		close(started)
		<-ctx.Done()
		return nil, ctx.Err()
	})
	<-started
	j.Cancel()
	waitState(t, j, Cancelled)
}

func TestCancelQueuedJob(t *testing.T) {
	e := newTestEngine(t, 1)
	block := make(chan struct{})
	started := make(chan struct{})
	blocker := e.Submit("demo", 0, func(context.Context, *Job) (any, error) {
		close(started)
		<-block
		return nil, nil
	})
	<-started
	queued := e.Submit("demo", 0, func(context.Context, *Job) (any, error) {
		t.Error("cancelled queued job ran")
		return nil, nil
	})
	queued.Cancel()
	waitState(t, queued, Cancelled)
	close(block)
	waitState(t, blocker, Done)
}

func TestCancelIdempotent(t *testing.T) {
	e := newTestEngine(t, 1)
	j := e.Submit("demo", 0, func(ctx context.Context, _ *Job) (any, error) {
		<-ctx.Done()
		return nil, ctx.Err()
	})
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			j.Cancel()
		}()
	}
	wg.Wait()
	waitState(t, j, Cancelled)
}

func TestEngineGetListCancel(t *testing.T) {
	e := newTestEngine(t, 2)
	var jobs []*Job
	for i := 0; i < 3; i++ {
		jobs = append(jobs, e.Submit("demo", 0, func(context.Context, *Job) (any, error) {
			return nil, nil
		}))
	}
	for _, j := range jobs {
		waitState(t, j, Done)
		got, ok := e.Get(j.ID())
		if !ok || got != j {
			t.Fatalf("Get(%s) = %v, %v", j.ID(), got, ok)
		}
	}
	list := e.List()
	if len(list) != 3 || list[0].ID() != "j1" || list[2].ID() != "j3" {
		t.Fatalf("list = %v", list)
	}
	if _, ok := e.Get("j99"); ok {
		t.Fatal("Get of unknown id succeeded")
	}
	if _, ok := e.Cancel("j99"); ok {
		t.Fatal("Cancel of unknown id succeeded")
	}
	if _, ok := e.Cancel("j1"); !ok { // terminal: no-op, still found
		t.Fatal("Cancel of done job not found")
	}
	if st := jobs[0].Status(); st.State != Done {
		t.Fatalf("cancel after done changed state to %s", st.State)
	}
}

func TestSubmitAfterClose(t *testing.T) {
	e := NewEngine(1)
	e.Close()
	j := e.Submit("demo", 0, func(context.Context, *Job) (any, error) {
		t.Error("job ran after close")
		return nil, nil
	})
	st := waitState(t, j, Failed)
	if st.Err == "" {
		t.Fatal("no error on submit after close")
	}
	e.Close() // idempotent
}

// TestRetention pins the terminal-job cap: beyond it, the oldest finished
// jobs are dropped while live jobs always survive.
func TestRetention(t *testing.T) {
	e := newTestEngine(t, 1)
	e.SetRetention(2)
	var finished []*Job
	for i := 0; i < 4; i++ {
		j := e.Submit("demo", 0, func(context.Context, *Job) (any, error) { return nil, nil })
		waitState(t, j, Done)
		finished = append(finished, j)
	}
	// A live (running) job must never be pruned, no matter its age.
	block := make(chan struct{})
	started := make(chan struct{})
	live := e.Submit("demo", 0, func(context.Context, *Job) (any, error) {
		close(started)
		<-block
		return nil, nil
	})
	<-started
	e.Submit("demo", 0, func(context.Context, *Job) (any, error) { return nil, nil })

	if _, ok := e.Get(finished[0].ID()); ok {
		t.Fatal("oldest terminal job survived the retention cap")
	}
	if _, ok := e.Get(live.ID()); !ok {
		t.Fatal("running job was pruned")
	}
	if got := len(e.List()); got > 4 { // 2 retained terminal + live + queued
		t.Fatalf("list length %d exceeds retention expectations", got)
	}
	close(block)
	waitState(t, live, Done)

	// Lowering the cap prunes immediately.
	e.SetRetention(1)
	if got := len(e.List()); got > 2 {
		t.Fatalf("after cap drop, %d jobs retained", got)
	}
}

// TestWorkerPoolBound pins that at most `workers` jobs run concurrently.
func TestWorkerPoolBound(t *testing.T) {
	e := newTestEngine(t, 2)
	var mu sync.Mutex
	running, peak := 0, 0
	var jobs []*Job
	for i := 0; i < 8; i++ {
		jobs = append(jobs, e.Submit("demo", 0, func(context.Context, *Job) (any, error) {
			mu.Lock()
			running++
			if running > peak {
				peak = running
			}
			mu.Unlock()
			time.Sleep(5 * time.Millisecond)
			mu.Lock()
			running--
			mu.Unlock()
			return nil, nil
		}))
	}
	for _, j := range jobs {
		waitState(t, j, Done)
	}
	if peak > 2 {
		t.Fatalf("peak concurrency %d with 2 workers", peak)
	}
}

// TestEngineWait covers the engine-level wait primitive: it blocks until
// the job is terminal, honors ctx, and rejects unknown IDs.
func TestEngineWait(t *testing.T) {
	e := newTestEngine(t, 1)
	release := make(chan struct{})
	j := e.Submit("demo", 0, func(ctx context.Context, _ *Job) (any, error) {
		select {
		case <-release:
			return "ok", nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	})

	// A short deadline expires while the job still runs.
	short, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if got, err := e.Wait(short, j.ID()); err != context.DeadlineExceeded || got != j {
		t.Fatalf("Wait on running job = %v, %v; want job, DeadlineExceeded", got, err)
	}

	close(release)
	ctx, cancel2 := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel2()
	got, err := e.Wait(ctx, j.ID())
	if err != nil || got != j {
		t.Fatalf("Wait = %v, %v", got, err)
	}
	if st := got.Status(); st.State != Done {
		t.Fatalf("state after Wait = %s", st.State)
	}
	// Waiting on a terminal job returns immediately.
	if _, err := e.Wait(ctx, j.ID()); err != nil {
		t.Fatalf("Wait on done job = %v", err)
	}
	if _, err := e.Wait(ctx, "j99"); err == nil {
		t.Fatalf("Wait on unknown job succeeded")
	}
}
