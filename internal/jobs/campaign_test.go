package jobs

import (
	"context"
	"reflect"
	"testing"
	"time"

	"repro/internal/campaign"
)

func smallSpec() CampaignSpec {
	return CampaignSpec{
		Algos:        []string{"cpa", "mcpa"},
		Shapes:       []string{"serial", "wide"},
		DAGSizes:     []int{15},
		ClusterSizes: []int{16, 32},
		Replicates:   2,
		Seed:         11,
	}
}

func TestCampaignJobEndToEnd(t *testing.T) {
	e := newTestEngine(t, 2)
	j, err := SubmitCampaign(e, smallSpec())
	if err != nil {
		t.Fatal(err)
	}
	st := waitState(t, j, Done)
	if st.Kind != KindCampaign {
		t.Fatalf("kind = %q", st.Kind)
	}
	if st.Total != 4 || st.Done != 4 {
		t.Fatalf("progress = %d/%d, want 4/4", st.Done, st.Total)
	}
	out, err := CampaignResult(j)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Result.Cells) != 4 || out.Result.Total != 8 {
		t.Fatalf("result = %d cells, %d runs", len(out.Result.Cells), out.Result.Total)
	}

	// The job result must equal the synchronous run of the same spec, and
	// the outcome must carry the campaign's identity header.
	cfg, _, err := smallSpec().Resolve()
	if err != nil {
		t.Fatal(err)
	}
	if err := out.Header.Matches(cfg); err != nil {
		t.Fatal(err)
	}
	direct, err := campaign.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(out.Result, direct) {
		t.Fatal("job result differs from synchronous run")
	}
}

// TestShardedCampaignJobsMerge splits one campaign across two shard jobs
// and checks the merged result equals the unsharded job.
func TestShardedCampaignJobsMerge(t *testing.T) {
	e := newTestEngine(t, 2)
	full, err := SubmitCampaign(e, smallSpec())
	if err != nil {
		t.Fatal(err)
	}
	var parts []*campaign.Result
	for _, shard := range []string{"1/2", "2/2"} {
		spec := smallSpec()
		spec.Shard = shard
		j, err := SubmitCampaign(e, spec)
		if err != nil {
			t.Fatal(err)
		}
		st := waitState(t, j, Done)
		if st.Total != 2 {
			t.Fatalf("shard %s total = %d, want 2", shard, st.Total)
		}
		out, err := CampaignResult(j)
		if err != nil {
			t.Fatal(err)
		}
		parts = append(parts, out.Result)
	}
	merged, err := campaign.Merge(parts...)
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, full, Done)
	fullOut, err := CampaignResult(full)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(merged, fullOut.Result) {
		t.Fatal("merged shard jobs differ from the unsharded job")
	}
	if err := merged.Complete(4); err != nil {
		t.Fatal(err)
	}
}

// TestCancelMidCampaign cancels a campaign while its cells are running and
// checks the job lands in Cancelled without completing the factorial. Run
// under -race this exercises the engine/campaign cancellation handshake.
func TestCancelMidCampaign(t *testing.T) {
	e := newTestEngine(t, 2)
	spec := CampaignSpec{
		Algos:        []string{"cpa", "mcpa"},
		Shapes:       []string{"random", "forkjoin", "wide", "long"},
		DAGSizes:     []int{40, 80},
		ClusterSizes: []int{32, 64, 128},
		Replicates:   6,
		Seed:         5,
		Workers:      2,
	}
	j, err := SubmitCampaign(e, spec)
	if err != nil {
		t.Fatal(err)
	}
	// Let it make some progress, then cancel.
	deadline := time.Now().Add(30 * time.Second)
	for {
		st := j.Status()
		if st.State == Running && st.Done >= 1 {
			break
		}
		if st.State.Terminal() {
			t.Fatalf("campaign finished before cancel: %+v", st)
		}
		if time.Now().After(deadline) {
			t.Fatal("campaign never progressed")
		}
		time.Sleep(time.Millisecond)
	}
	j.Cancel()
	st := waitState(t, j, Cancelled)
	if st.Done >= st.Total {
		t.Fatalf("cancelled campaign completed all %d cells", st.Total)
	}
	if _, err := CampaignResult(j); err == nil {
		t.Fatal("cancelled job yielded a result")
	}
}

func TestSpecResolveDefaultsAndErrors(t *testing.T) {
	cfg, shard, err := CampaignSpec{}.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	def := campaign.DefaultConfig()
	if !reflect.DeepEqual(cfg, def) || !shard.IsZero() {
		t.Fatalf("empty spec = %+v, %v", cfg, shard)
	}
	for name, spec := range map[string]CampaignSpec{
		"bad shape":  {Shapes: []string{"blob"}},
		"bad algo":   {Algos: []string{"cpa", "nope"}},
		"one algo":   {Algos: []string{"cpa"}},
		"bad shard":  {Shard: "0/2"},
		"shard junk": {Shard: "a/b"},
	} {
		if _, _, err := spec.Resolve(); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
	if _, err := SubmitCampaign(newTestEngine(t, 1), CampaignSpec{Algos: []string{"cpa"}}); err == nil {
		t.Error("SubmitCampaign accepted a bad spec")
	}
}

func TestCampaignResultTypeChecks(t *testing.T) {
	e := newTestEngine(t, 1)
	j := e.Submit("other", 0, func(context.Context, *Job) (any, error) { return 42, nil })
	waitState(t, j, Done)
	if _, err := CampaignResult(j); err == nil {
		t.Fatal("non-campaign job yielded a campaign result")
	}
}
