package jobs

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"repro/internal/campaign"
	"repro/internal/persist"
)

// restartEngine simulates a process restart against the same store: a fresh
// engine with a fresh persister journaling into the same namespaces.
func restartEngine(t *testing.T, ps persist.Store, workers int) (*Engine, *Persister, RecoverStats) {
	t.Helper()
	e := newTestEngine(t, workers)
	p := NewPersister(ps, "jobs")
	e.SetJournal(p)
	stats, err := p.Recover(e)
	if err != nil {
		t.Fatal(err)
	}
	return e, p, stats
}

// outcomeJSON is the byte-identity yardstick: what /jobs/{id}/result
// ultimately serializes.
func outcomeJSON(t *testing.T, j *Job) []byte {
	t.Helper()
	out, err := CampaignResult(j)
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(out)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestPersistTerminalRoundTrip(t *testing.T) {
	ps := persist.Memory()
	e1, p1, _ := restartEngine(t, ps, 2)
	j, err := SubmitCampaign(e1, smallSpec())
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, j, Done)
	want := outcomeJSON(t, j)
	if n := p1.Errors(); n != 0 {
		t.Fatalf("persist errors = %d", n)
	}
	// The finished job's streamed cells must be gone — the outcome carries
	// them now.
	cells, err := ps.Load("jobs-cells")
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 0 {
		t.Fatalf("finished job left %d journaled cells", len(cells))
	}

	e2, _, stats := restartEngine(t, ps, 2)
	if stats.Restored != 1 || stats.Resumed != 0 || stats.Interrupted != 0 {
		t.Fatalf("recover stats = %+v", stats)
	}
	j2, ok := e2.Get(j.ID())
	if !ok {
		t.Fatalf("job %s not restored", j.ID())
	}
	st := j2.Status()
	if st.State != Done || st.Done != st.Total {
		t.Fatalf("restored status = %+v", st)
	}
	if got := outcomeJSON(t, j2); !bytes.Equal(got, want) {
		t.Fatalf("restored result differs:\n%s\nvs\n%s", got, want)
	}
	// The restored ID must be burned: the next submission picks a fresh one.
	next := e2.Submit("demo", 1, func(context.Context, *Job) (any, error) { return nil, nil })
	if next.ID() == j.ID() {
		t.Fatalf("sequence not bumped past restored %s", j.ID())
	}
}

func TestPersistResumeInterruptedCampaign(t *testing.T) {
	spec := smallSpec()
	cfg, _, err := spec.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	direct, err := campaign.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}

	// Fabricate the journal a crash leaves behind: a running record plus the
	// first two cells, and no terminal write.
	ps := persist.Memory()
	specJSON, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	rec := jobRecord{
		ID: "j1", Kind: KindCampaign, State: Running,
		Done: 2, Total: len(direct.Cells),
		Created: time.Now(), Started: time.Now(),
		Spec: specJSON,
	}
	b, err := json.Marshal(rec)
	if err != nil {
		t.Fatal(err)
	}
	if err := ps.PutDurable("jobs", rec.ID, b); err != nil {
		t.Fatal(err)
	}
	for _, c := range direct.Cells[:2] {
		cb, err := json.Marshal(c)
		if err != nil {
			t.Fatal(err)
		}
		if err := ps.Put("jobs-cells", cellKey(rec.ID, c.Index), cb); err != nil {
			t.Fatal(err)
		}
	}

	e, _, stats := restartEngine(t, ps, 2)
	if stats.Resumed != 1 || stats.Cells != 2 || stats.Restored != 0 {
		t.Fatalf("recover stats = %+v", stats)
	}
	j, ok := e.Get("j1")
	if !ok {
		t.Fatal("resumed job not listed")
	}
	st := waitState(t, j, Done)
	if st.Done != st.Total {
		t.Fatalf("progress = %d/%d", st.Done, st.Total)
	}
	out, err := CampaignResult(j)
	if err != nil {
		t.Fatal(err)
	}
	// Byte-identity with the uninterrupted run: the journaled cells were
	// skipped, not recomputed, and Merge restored enumeration order.
	got, err := json.Marshal(out.Result)
	if err != nil {
		t.Fatal(err)
	}
	want, err := json.Marshal(direct)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("resumed result differs:\n%s\nvs\n%s", got, want)
	}
}

func TestPersistInterruptedUnknownKind(t *testing.T) {
	ps := persist.Memory()
	rec := jobRecord{ID: "j1", Kind: "demo", State: Running, Total: 3, Created: time.Now()}
	b, err := json.Marshal(rec)
	if err != nil {
		t.Fatal(err)
	}
	if err := ps.PutDurable("jobs", rec.ID, b); err != nil {
		t.Fatal(err)
	}

	e, _, stats := restartEngine(t, ps, 1)
	if stats.Interrupted != 1 {
		t.Fatalf("recover stats = %+v", stats)
	}
	j, ok := e.Get("j1")
	if !ok {
		t.Fatal("interrupted job not listed")
	}
	st := j.Status()
	if st.State != Failed || !strings.Contains(st.Err, "interrupted by server restart") {
		t.Fatalf("status = %+v", st)
	}
	// The rewritten record is terminal: the next restart restores, not
	// re-interrupts.
	_, _, again := restartEngine(t, ps, 1)
	if again.Restored != 1 || again.Interrupted != 0 {
		t.Fatalf("second recover stats = %+v", again)
	}
}

func TestEvictionNotifiesJournal(t *testing.T) {
	ps := persist.Memory()
	e, _, _ := restartEngine(t, ps, 2)
	quick := func(context.Context, *Job) (any, error) { return "ok", nil }
	j1 := e.Submit("demo", 1, quick)
	j2 := e.Submit("demo", 1, quick)
	waitState(t, j1, Done)
	waitState(t, j2, Done)

	e.SetRetention(1)
	if n := e.Evictions(); n != 1 {
		t.Fatalf("evictions = %d, want 1", n)
	}
	if _, ok := e.Get(j1.ID()); ok {
		t.Fatal("oldest job survived the retention cap")
	}
	if _, found, err := ps.Get("jobs", j1.ID()); err != nil || found {
		t.Fatalf("evicted record still persisted (found=%v err=%v)", found, err)
	}
	if _, found, err := ps.Get("jobs", j2.ID()); err != nil || !found {
		t.Fatalf("retained record missing (found=%v err=%v)", found, err)
	}
}
