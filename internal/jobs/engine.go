// Package jobs is the asynchronous job engine behind long-running work on
// the REST surface: a bounded worker pool executing submitted functions,
// with job states (pending → running → done/failed/cancelled), monotonic
// progress counters, and context-based cancellation. HTTP handlers submit
// work and return immediately; clients poll the job until it reaches a
// terminal state and then fetch the result.
//
// The engine is generic — a job is any func(ctx, *Job) (any, error) — and
// campaign.go provides the campaign-specific driver that the /api/v1/jobs
// endpoints speak.
package jobs

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// State is a job's lifecycle phase.
type State string

// The job lifecycle: Pending → Running → one of the terminal states.
// Cancellation can also strike a job while it is still queued.
const (
	Pending   State = "pending"
	Running   State = "running"
	Done      State = "done"
	Failed    State = "failed"
	Cancelled State = "cancelled"
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool {
	return s == Done || s == Failed || s == Cancelled
}

// Fn is the work a job runs. It must honor ctx — returning promptly with
// ctx.Err() (or an error wrapping it) once cancelled — and may report
// progress through the job's SetTotal/Advance.
type Fn func(ctx context.Context, j *Job) (any, error)

// Observer receives job lifecycle notifications: change is "submitted",
// "started", "progress", or the terminal state name ("done", "failed",
// "cancelled"). Like the journal, it is captured per job at submission time
// and always invoked outside the job's lock — it may call Status freely but
// must not block for long.
type Observer func(j *Job, change string)

// Status is a point-in-time snapshot of a job, safe to hold after the job
// moved on.
type Status struct {
	ID    string
	Kind  string
	State State
	// Done and Total are the progress counters ("cells completed" for
	// campaigns); Total 0 means the job has no known extent.
	Done, Total int
	// Err is the failure or cancellation cause, empty otherwise.
	Err                        string
	Created, Started, Finished time.Time
}

// Job is one unit of asynchronous work tracked by an Engine.
type Job struct {
	id       string
	kind     string
	fn       Fn
	meta     []byte   // opaque submission descriptor, persisted for recovery
	journal  Journal  // engine journal at submission time; nil = no journaling
	observer Observer // engine observer at submission time; nil = none
	ctx      context.Context
	cancel   context.CancelFunc

	mu                         sync.Mutex
	state                      State
	done, total                int
	err                        error
	result                     any
	created, started, finished time.Time
	finishedCh                 chan struct{}
}

// ID returns the engine-assigned identifier ("j1", "j2", ...).
func (j *Job) ID() string { return j.id }

// Meta returns the opaque submission descriptor attached by SubmitWithMeta
// (nil otherwise). Callers must not mutate it.
func (j *Job) Meta() []byte { return j.meta }

// Status snapshots the job.
func (j *Job) Status() Status {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := Status{
		ID: j.id, Kind: j.kind, State: j.state,
		Done: j.done, Total: j.total,
		Created: j.created, Started: j.started, Finished: j.finished,
	}
	if j.err != nil {
		st.Err = j.err.Error()
	}
	return st
}

// Result returns the job's return value; ok is false until the job is Done.
func (j *Job) Result() (any, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.result, j.state == Done
}

// SetTotal sets the progress extent.
func (j *Job) SetTotal(total int) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.total = total
}

// Advance increments the progress counter by n.
func (j *Job) Advance(n int) {
	j.mu.Lock()
	j.done += n
	j.mu.Unlock()
	j.notify("progress")
}

// notify fires the observer, if any. Callers must not hold j.mu.
func (j *Job) notify(change string) {
	if j.observer != nil {
		j.observer(j, change)
	}
}

// Cancel requests cancellation: a queued job is cancelled immediately, a
// running one has its context cancelled and finishes as Cancelled when its
// Fn returns. Terminal jobs are unaffected. Cancel is idempotent.
func (j *Job) Cancel() {
	j.cancel()
	j.mu.Lock()
	finished := false
	if j.state == Pending {
		j.state = Cancelled
		j.err = context.Canceled
		j.finished = time.Now()
		close(j.finishedCh)
		finished = true
	}
	j.mu.Unlock()
	if finished {
		if j.journal != nil {
			j.journal.JobFinished(j)
		}
		j.notify(string(Cancelled))
	}
}

// Wait blocks until the job reaches a terminal state or ctx expires; the
// error is ctx's in the latter case, nil otherwise.
func (j *Job) Wait(ctx context.Context) error {
	select {
	case <-j.finishedCh:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// run executes the job on a worker goroutine.
func (j *Job) run() {
	j.mu.Lock()
	if j.state != Pending { // cancelled while queued; finishedCh already closed
		j.mu.Unlock()
		return
	}
	j.state = Running
	j.started = time.Now()
	j.mu.Unlock()
	j.notify("started")

	result, err := j.fn(j.ctx, j)

	j.mu.Lock()
	switch {
	case err == nil:
		j.state, j.result = Done, result
	case errors.Is(err, context.Canceled) || j.ctx.Err() != nil:
		j.state, j.err = Cancelled, err
	default:
		j.state, j.err = Failed, err
	}
	terminal := j.state
	j.finished = time.Now()
	close(j.finishedCh)
	j.mu.Unlock()
	// Journal the terminal transition after unlocking: the journal reads
	// the job's status itself, and a durable write has no place under j.mu.
	if j.journal != nil {
		j.journal.JobFinished(j)
	}
	j.notify(string(terminal))
}

// Engine runs submitted jobs on a fixed pool of worker goroutines. The
// submission queue is unbounded — Submit never blocks, so an HTTP handler
// can always accept a job and answer 202.
type Engine struct {
	mu       sync.Mutex
	cond     *sync.Cond
	seq      int
	prefix   string
	retain   int
	jobs     map[string]*Job
	order    []*Job
	queue    []*Job
	closed   bool
	journal  Journal  // nil = no persistence
	observer Observer // nil = no lifecycle notifications
	wg       sync.WaitGroup

	evictions atomic.Int64
}

// NewEngine starts an engine with the given worker count (0 means
// GOMAXPROCS).
func NewEngine(workers int) *Engine {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	e := &Engine{jobs: map[string]*Job{}, prefix: "j"}
	e.cond = sync.NewCond(&e.mu)
	e.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go e.worker()
	}
	return e
}

// Submit queues a job. total is the progress extent if known up front (0
// otherwise); kind labels the job family ("campaign"). Submission after
// Close returns an already-failed job rather than panicking, so shutdown
// races stay harmless.
func (e *Engine) Submit(kind string, total int, fn Fn) *Job {
	return e.SubmitWithMeta(kind, total, nil, fn)
}

// SubmitWithMeta is Submit with an opaque descriptor attached to the job:
// what the persistence journal stores so an interrupted job can be
// re-submitted after a restart (the campaign driver attaches the original
// CampaignSpec JSON).
func (e *Engine) SubmitWithMeta(kind string, total int, meta []byte, fn Fn) *Job {
	ctx, cancel := context.WithCancel(context.Background())
	j := &Job{
		kind: kind, fn: fn, meta: meta, ctx: ctx, cancel: cancel,
		state: Pending, total: total,
		created:    time.Now(),
		finishedCh: make(chan struct{}),
	}
	e.mu.Lock()
	e.seq++
	j.id = fmt.Sprintf("%s%d", e.prefix, e.seq)
	j.journal = e.journal
	j.observer = e.observer
	e.jobs[j.id] = j
	e.order = append(e.order, j)
	if e.closed {
		e.mu.Unlock()
		j.mu.Lock()
		j.state = Failed
		j.err = fmt.Errorf("jobs: engine closed")
		j.finished = time.Now()
		close(j.finishedCh)
		j.mu.Unlock()
		j.notify(string(Failed))
		return j
	}
	e.queue = append(e.queue, j)
	evicted := e.pruneLocked()
	e.cond.Signal()
	e.mu.Unlock()
	if j.journal != nil {
		j.journal.JobSubmitted(j)
	}
	j.notify("submitted")
	e.notifyEvicted(evicted)
	return j
}

// Resubmit queues a job under a pre-assigned ID — how an interrupted job
// from a previous process re-enters the engine with its published identity
// intact. No submission journal entry is written; the job's persisted
// record already exists.
func (e *Engine) Resubmit(id, kind string, total int, meta []byte, fn Fn) (*Job, error) {
	if id == "" {
		return nil, fmt.Errorf("jobs: resubmit needs an ID")
	}
	ctx, cancel := context.WithCancel(context.Background())
	j := &Job{
		id: id, kind: kind, fn: fn, meta: meta, ctx: ctx, cancel: cancel,
		state: Pending, total: total,
		created:    time.Now(),
		finishedCh: make(chan struct{}),
	}
	e.mu.Lock()
	if _, taken := e.jobs[id]; taken {
		e.mu.Unlock()
		cancel()
		return nil, fmt.Errorf("jobs: job %q already exists", id)
	}
	if e.closed {
		e.mu.Unlock()
		cancel()
		return nil, fmt.Errorf("jobs: engine closed")
	}
	j.journal = e.journal
	j.observer = e.observer
	e.jobs[id] = j
	e.order = append(e.order, j)
	e.bumpSeqLocked(id)
	e.queue = append(e.queue, j)
	e.cond.Signal()
	e.mu.Unlock()
	j.notify("submitted")
	return j, nil
}

// RestoreTerminal inserts an already-finished job from a persisted record:
// a restarted server lists it and serves its result exactly as the previous
// process did. The state must be terminal and the ID free.
func (e *Engine) RestoreTerminal(st Status, meta []byte, result any) (*Job, error) {
	if !st.State.Terminal() {
		return nil, fmt.Errorf("jobs: cannot restore non-terminal state %q", st.State)
	}
	if st.ID == "" {
		return nil, fmt.Errorf("jobs: restore needs an ID")
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // nothing left to cancel
	j := &Job{
		id: st.ID, kind: st.Kind, ctx: ctx, cancel: cancel,
		state: st.State, done: st.Done, total: st.Total,
		meta: meta, result: result,
		created: st.Created, started: st.Started, finished: st.Finished,
		finishedCh: make(chan struct{}),
	}
	if st.Err != "" {
		j.err = errors.New(st.Err)
	}
	close(j.finishedCh)
	e.mu.Lock()
	defer e.mu.Unlock()
	if _, taken := e.jobs[st.ID]; taken {
		return nil, fmt.Errorf("jobs: job %q already exists", st.ID)
	}
	e.jobs[st.ID] = j
	e.order = append(e.order, j)
	e.bumpSeqLocked(st.ID)
	return j, nil
}

// bumpSeqLocked keeps the generated-ID sequence past an externally assigned
// ID, so the next Submit cannot mint a colliding one.
func (e *Engine) bumpSeqLocked(id string) {
	if !strings.HasPrefix(id, e.prefix) {
		return
	}
	if n, err := strconv.Atoi(id[len(e.prefix):]); err == nil && n > e.seq {
		e.seq = n
	}
}

// SetIDPrefix changes the ID prefix ("j" by default) so several engines in
// one process mint non-colliding IDs. Call before the first Submit.
func (e *Engine) SetIDPrefix(p string) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.prefix = p
}

// SetJournal attaches a persistence journal: from now on, submissions,
// terminal transitions, and retention evictions are reported to it. Call
// before the first Submit; nil (the default) disables journaling.
func (e *Engine) SetJournal(jn Journal) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.journal = jn
}

// SetObserver attaches a lifecycle observer (the API server feeds it into
// the event bus). Call before the first Submit; nil (the default) disables
// notifications.
func (e *Engine) SetObserver(fn Observer) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.observer = fn
}

// Evictions counts terminal jobs dropped by the retention cap — each one a
// result that is no longer fetchable. Served on /api/v1/meta.
func (e *Engine) Evictions() int64 { return e.evictions.Load() }

// QueueDepth reports how many submitted jobs are waiting for a worker.
func (e *Engine) QueueDepth() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return len(e.queue)
}

// notifyEvicted counts and journals retention evictions, outside e.mu.
func (e *Engine) notifyEvicted(ids []string) {
	if len(ids) == 0 {
		return
	}
	e.evictions.Add(int64(len(ids)))
	e.mu.Lock()
	jn := e.journal
	e.mu.Unlock()
	if jn == nil {
		return
	}
	for _, id := range ids {
		jn.JobEvicted(id)
	}
}

// SetRetention caps how many terminal (done/failed/cancelled) jobs the
// engine keeps around for result fetches; 0 means unlimited. Beyond the
// cap the oldest terminal jobs are dropped on the next Submit — results
// must be fetched while the job is still retained, which bounds the memory
// a long-lived server pins for past campaigns.
func (e *Engine) SetRetention(n int) {
	e.mu.Lock()
	e.retain = n
	evicted := e.pruneLocked()
	e.mu.Unlock()
	e.notifyEvicted(evicted)
}

// pruneLocked drops the oldest terminal jobs beyond the retention cap,
// returning the evicted IDs so the caller can count and journal them after
// unlocking.
func (e *Engine) pruneLocked() []string {
	if e.retain <= 0 {
		return nil
	}
	terminal := 0
	for _, j := range e.order {
		if j.Status().State.Terminal() {
			terminal++
		}
	}
	if terminal <= e.retain {
		return nil
	}
	var evicted []string
	kept := e.order[:0]
	for _, j := range e.order {
		if terminal > e.retain && j.Status().State.Terminal() {
			terminal--
			delete(e.jobs, j.id)
			evicted = append(evicted, j.id)
			continue
		}
		kept = append(kept, j)
	}
	e.order = kept
	return evicted
}

// Get returns the job with the given ID.
func (e *Engine) Get(id string) (*Job, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	j, ok := e.jobs[id]
	return j, ok
}

// Wait blocks until the job with the given ID reaches a terminal state or
// ctx expires, returning the job either way it exists. This is the wait
// primitive pollers should use instead of sleep-looping over Get — the
// HTTP job surface exposes it as the ?wait= long-poll parameter.
func (e *Engine) Wait(ctx context.Context, id string) (*Job, error) {
	j, ok := e.Get(id)
	if !ok {
		return nil, fmt.Errorf("jobs: no job %q", id)
	}
	if err := j.Wait(ctx); err != nil {
		return j, err
	}
	return j, nil
}

// List returns every job in submission order.
func (e *Engine) List() []*Job {
	e.mu.Lock()
	defer e.mu.Unlock()
	return append([]*Job(nil), e.order...)
}

// Cancel cancels the job with the given ID, reporting whether it exists.
func (e *Engine) Cancel(id string) (*Job, bool) {
	j, ok := e.Get(id)
	if !ok {
		return nil, false
	}
	j.Cancel()
	return j, true
}

// Close cancels every job, stops the workers, and waits for them to drain.
// Jobs still queued finish as Cancelled.
func (e *Engine) Close() {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return
	}
	e.closed = true
	jobs := append([]*Job(nil), e.order...)
	e.cond.Broadcast()
	e.mu.Unlock()
	for _, j := range jobs {
		j.Cancel()
	}
	e.wg.Wait()
}

// worker pops and runs queued jobs until the engine closes.
func (e *Engine) worker() {
	defer e.wg.Done()
	for {
		e.mu.Lock()
		for len(e.queue) == 0 && !e.closed {
			e.cond.Wait()
		}
		if len(e.queue) == 0 && e.closed {
			e.mu.Unlock()
			return
		}
		j := e.queue[0]
		e.queue = e.queue[1:]
		e.mu.Unlock()
		j.run()
	}
}
