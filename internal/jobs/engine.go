// Package jobs is the asynchronous job engine behind long-running work on
// the REST surface: a bounded worker pool executing submitted functions,
// with job states (pending → running → done/failed/cancelled), monotonic
// progress counters, and context-based cancellation. HTTP handlers submit
// work and return immediately; clients poll the job until it reaches a
// terminal state and then fetch the result.
//
// The engine is generic — a job is any func(ctx, *Job) (any, error) — and
// campaign.go provides the campaign-specific driver that the /api/v1/jobs
// endpoints speak.
package jobs

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"
)

// State is a job's lifecycle phase.
type State string

// The job lifecycle: Pending → Running → one of the terminal states.
// Cancellation can also strike a job while it is still queued.
const (
	Pending   State = "pending"
	Running   State = "running"
	Done      State = "done"
	Failed    State = "failed"
	Cancelled State = "cancelled"
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool {
	return s == Done || s == Failed || s == Cancelled
}

// Fn is the work a job runs. It must honor ctx — returning promptly with
// ctx.Err() (or an error wrapping it) once cancelled — and may report
// progress through the job's SetTotal/Advance.
type Fn func(ctx context.Context, j *Job) (any, error)

// Status is a point-in-time snapshot of a job, safe to hold after the job
// moved on.
type Status struct {
	ID    string
	Kind  string
	State State
	// Done and Total are the progress counters ("cells completed" for
	// campaigns); Total 0 means the job has no known extent.
	Done, Total int
	// Err is the failure or cancellation cause, empty otherwise.
	Err                        string
	Created, Started, Finished time.Time
}

// Job is one unit of asynchronous work tracked by an Engine.
type Job struct {
	id     string
	kind   string
	fn     Fn
	ctx    context.Context
	cancel context.CancelFunc

	mu                         sync.Mutex
	state                      State
	done, total                int
	err                        error
	result                     any
	created, started, finished time.Time
	finishedCh                 chan struct{}
}

// ID returns the engine-assigned identifier ("j1", "j2", ...).
func (j *Job) ID() string { return j.id }

// Status snapshots the job.
func (j *Job) Status() Status {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := Status{
		ID: j.id, Kind: j.kind, State: j.state,
		Done: j.done, Total: j.total,
		Created: j.created, Started: j.started, Finished: j.finished,
	}
	if j.err != nil {
		st.Err = j.err.Error()
	}
	return st
}

// Result returns the job's return value; ok is false until the job is Done.
func (j *Job) Result() (any, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.result, j.state == Done
}

// SetTotal sets the progress extent.
func (j *Job) SetTotal(total int) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.total = total
}

// Advance increments the progress counter by n.
func (j *Job) Advance(n int) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.done += n
}

// Cancel requests cancellation: a queued job is cancelled immediately, a
// running one has its context cancelled and finishes as Cancelled when its
// Fn returns. Terminal jobs are unaffected. Cancel is idempotent.
func (j *Job) Cancel() {
	j.cancel()
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state == Pending {
		j.state = Cancelled
		j.err = context.Canceled
		j.finished = time.Now()
		close(j.finishedCh)
	}
}

// Wait blocks until the job reaches a terminal state or ctx expires; the
// error is ctx's in the latter case, nil otherwise.
func (j *Job) Wait(ctx context.Context) error {
	select {
	case <-j.finishedCh:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// run executes the job on a worker goroutine.
func (j *Job) run() {
	j.mu.Lock()
	if j.state != Pending { // cancelled while queued; finishedCh already closed
		j.mu.Unlock()
		return
	}
	j.state = Running
	j.started = time.Now()
	j.mu.Unlock()

	result, err := j.fn(j.ctx, j)

	j.mu.Lock()
	defer j.mu.Unlock()
	switch {
	case err == nil:
		j.state, j.result = Done, result
	case errors.Is(err, context.Canceled) || j.ctx.Err() != nil:
		j.state, j.err = Cancelled, err
	default:
		j.state, j.err = Failed, err
	}
	j.finished = time.Now()
	close(j.finishedCh)
}

// Engine runs submitted jobs on a fixed pool of worker goroutines. The
// submission queue is unbounded — Submit never blocks, so an HTTP handler
// can always accept a job and answer 202.
type Engine struct {
	mu     sync.Mutex
	cond   *sync.Cond
	seq    int
	prefix string
	retain int
	jobs   map[string]*Job
	order  []*Job
	queue  []*Job
	closed bool
	wg     sync.WaitGroup
}

// NewEngine starts an engine with the given worker count (0 means
// GOMAXPROCS).
func NewEngine(workers int) *Engine {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	e := &Engine{jobs: map[string]*Job{}, prefix: "j"}
	e.cond = sync.NewCond(&e.mu)
	e.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go e.worker()
	}
	return e
}

// Submit queues a job. total is the progress extent if known up front (0
// otherwise); kind labels the job family ("campaign"). Submission after
// Close returns an already-failed job rather than panicking, so shutdown
// races stay harmless.
func (e *Engine) Submit(kind string, total int, fn Fn) *Job {
	ctx, cancel := context.WithCancel(context.Background())
	j := &Job{
		kind: kind, fn: fn, ctx: ctx, cancel: cancel,
		state: Pending, total: total,
		created:    time.Now(),
		finishedCh: make(chan struct{}),
	}
	e.mu.Lock()
	e.seq++
	j.id = fmt.Sprintf("%s%d", e.prefix, e.seq)
	e.jobs[j.id] = j
	e.order = append(e.order, j)
	if e.closed {
		e.mu.Unlock()
		j.mu.Lock()
		j.state = Failed
		j.err = fmt.Errorf("jobs: engine closed")
		j.finished = time.Now()
		close(j.finishedCh)
		j.mu.Unlock()
		return j
	}
	e.queue = append(e.queue, j)
	e.pruneLocked()
	e.cond.Signal()
	e.mu.Unlock()
	return j
}

// SetIDPrefix changes the ID prefix ("j" by default) so several engines in
// one process mint non-colliding IDs. Call before the first Submit.
func (e *Engine) SetIDPrefix(p string) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.prefix = p
}

// SetRetention caps how many terminal (done/failed/cancelled) jobs the
// engine keeps around for result fetches; 0 means unlimited. Beyond the
// cap the oldest terminal jobs are dropped on the next Submit — results
// must be fetched while the job is still retained, which bounds the memory
// a long-lived server pins for past campaigns.
func (e *Engine) SetRetention(n int) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.retain = n
	e.pruneLocked()
}

// pruneLocked drops the oldest terminal jobs beyond the retention cap.
func (e *Engine) pruneLocked() {
	if e.retain <= 0 {
		return
	}
	terminal := 0
	for _, j := range e.order {
		if j.Status().State.Terminal() {
			terminal++
		}
	}
	if terminal <= e.retain {
		return
	}
	kept := e.order[:0]
	for _, j := range e.order {
		if terminal > e.retain && j.Status().State.Terminal() {
			terminal--
			delete(e.jobs, j.id)
			continue
		}
		kept = append(kept, j)
	}
	e.order = kept
}

// Get returns the job with the given ID.
func (e *Engine) Get(id string) (*Job, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	j, ok := e.jobs[id]
	return j, ok
}

// Wait blocks until the job with the given ID reaches a terminal state or
// ctx expires, returning the job either way it exists. This is the wait
// primitive pollers should use instead of sleep-looping over Get — the
// HTTP job surface exposes it as the ?wait= long-poll parameter.
func (e *Engine) Wait(ctx context.Context, id string) (*Job, error) {
	j, ok := e.Get(id)
	if !ok {
		return nil, fmt.Errorf("jobs: no job %q", id)
	}
	if err := j.Wait(ctx); err != nil {
		return j, err
	}
	return j, nil
}

// List returns every job in submission order.
func (e *Engine) List() []*Job {
	e.mu.Lock()
	defer e.mu.Unlock()
	return append([]*Job(nil), e.order...)
}

// Cancel cancels the job with the given ID, reporting whether it exists.
func (e *Engine) Cancel(id string) (*Job, bool) {
	j, ok := e.Get(id)
	if !ok {
		return nil, false
	}
	j.Cancel()
	return j, true
}

// Close cancels every job, stops the workers, and waits for them to drain.
// Jobs still queued finish as Cancelled.
func (e *Engine) Close() {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return
	}
	e.closed = true
	jobs := append([]*Job(nil), e.order...)
	e.cond.Broadcast()
	e.mu.Unlock()
	for _, j := range jobs {
		j.Cancel()
	}
	e.wg.Wait()
}

// worker pops and runs queued jobs until the engine closes.
func (e *Engine) worker() {
	defer e.wg.Done()
	for {
		e.mu.Lock()
		for len(e.queue) == 0 && !e.closed {
			e.cond.Wait()
		}
		if len(e.queue) == 0 && e.closed {
			e.mu.Unlock()
			return
		}
		j := e.queue[0]
		e.queue = e.queue[1:]
		e.mu.Unlock()
		j.run()
	}
}
