package jobs

import (
	"context"
	"encoding/json"
	"fmt"

	"repro/internal/campaign"
	"repro/internal/dag"
)

// KindCampaign labels campaign jobs.
const KindCampaign = "campaign"

// KindCoordinated labels coordinated (fan-out) campaign jobs: the
// coordinator dispatches the shards of one campaign to remote workers and
// the job completes with the merged full-factorial outcome.
const KindCoordinated = "campaign-coordinated"

// CampaignSpec is the JSON body of POST /api/v1/jobs: the campaign factorial
// with every dimension optional — absent fields keep the paper-sized
// defaults of campaign.DefaultConfig. Shard ("k/n") restricts the job to
// one partition of the cell enumeration, so several processes (or several
// jobs) can split a campaign and merge their results.
type CampaignSpec struct {
	Algos        []string `json:"algos,omitempty"`
	Shapes       []string `json:"shapes,omitempty"`
	DAGSizes     []int    `json:"dag_sizes,omitempty"`
	ClusterSizes []int    `json:"cluster_sizes,omitempty"`
	Replicates   int      `json:"replicates,omitempty"`
	Seed         int64    `json:"seed,omitempty"`
	Workers      int      `json:"workers,omitempty"`
	Shard        string   `json:"shard,omitempty"`
}

// Resolve validates the spec into a runnable config and shard.
func (s CampaignSpec) Resolve() (campaign.Config, campaign.Shard, error) {
	cfg := campaign.DefaultConfig()
	if len(s.Algos) > 0 {
		cfg.Algos = s.Algos
	}
	if len(s.Shapes) > 0 {
		cfg.Shapes = nil
		for _, name := range s.Shapes {
			shape, err := dag.ParseShape(name)
			if err != nil {
				return campaign.Config{}, campaign.Shard{}, err
			}
			cfg.Shapes = append(cfg.Shapes, shape)
		}
	}
	if len(s.DAGSizes) > 0 {
		cfg.DAGSizes = s.DAGSizes
	}
	if len(s.ClusterSizes) > 0 {
		cfg.ClusterSizes = s.ClusterSizes
	}
	if s.Replicates > 0 {
		cfg.Replicates = s.Replicates
	}
	if s.Seed != 0 {
		cfg.Seed = s.Seed
	}
	cfg.Workers = s.Workers
	if err := cfg.Validate(); err != nil {
		return campaign.Config{}, campaign.Shard{}, err
	}
	shard, err := campaign.ParseShard(s.Shard)
	if err != nil {
		return campaign.Config{}, campaign.Shard{}, err
	}
	return cfg, shard, nil
}

// CampaignOutcome is a completed campaign job's payload: the (possibly
// partial, if sharded) result plus the campaign identity header, so result
// consumers can refuse to merge jobs from different campaigns.
type CampaignOutcome struct {
	Header campaign.Header
	Result *campaign.Result
}

// SubmitCampaign validates the spec and queues it on the engine. The job's
// progress counts completed cells out of the shard's share of the
// factorial; its result is a *CampaignOutcome covering the shard (the full
// campaign for the zero shard).
func SubmitCampaign(e *Engine, spec CampaignSpec) (*Job, error) {
	cfg, shard, err := spec.Resolve()
	if err != nil {
		return nil, err
	}
	total := 0
	for _, cell := range campaign.Cells(cfg) {
		if shard.Includes(cell.Index) {
			total++
		}
	}
	// The spec rides along as the job's persisted descriptor: a restarted
	// server re-resolves it deterministically to resume the job.
	meta, err := json.Marshal(spec)
	if err != nil {
		return nil, err
	}
	return e.SubmitWithMeta(KindCampaign, total, meta, campaignFn(cfg, shard, nil)), nil
}

// ResubmitCampaign re-queues an interrupted campaign job from a previous
// process under its original ID, skipping the prior cells journaled before
// the crash and merging them into the final result — which therefore equals
// the uninterrupted run byte-for-byte (cells depend only on (cfg, index),
// and Merge restores enumeration order).
func ResubmitCampaign(e *Engine, id string, spec CampaignSpec, prior []campaign.Cell) (*Job, error) {
	cfg, shard, err := spec.Resolve()
	if err != nil {
		return nil, err
	}
	total := 0
	for _, cell := range campaign.Cells(cfg) {
		if shard.Includes(cell.Index) {
			total++
		}
	}
	meta, err := json.Marshal(spec)
	if err != nil {
		return nil, err
	}
	return e.Resubmit(id, KindCampaign, total, meta, campaignFn(cfg, shard, prior))
}

// campaignFn builds the job body: run the (remaining) cells, journal each
// completion, and merge prior cells back in.
func campaignFn(cfg campaign.Config, shard campaign.Shard, prior []campaign.Cell) Fn {
	return func(ctx context.Context, j *Job) (any, error) {
		skip := make(map[string]bool, len(prior))
		for _, c := range prior {
			skip[c.Key()] = true
		}
		j.Advance(len(prior))
		res, err := campaign.RunContext(ctx, cfg, campaign.RunOptions{
			Shard: shard,
			Skip:  skip,
			OnCell: func(c campaign.Cell) error {
				j.Advance(1)
				if j.journal != nil {
					j.journal.JobCell(j.id, c)
				}
				return nil
			},
		})
		if err != nil {
			return nil, err
		}
		if len(prior) > 0 {
			priorRes := &campaign.Result{Algos: append([]string(nil), cfg.Algos...), Cells: prior}
			for _, c := range prior {
				priorRes.Total += c.Runs
			}
			res, err = campaign.Merge(priorRes, res)
			if err != nil {
				return nil, err
			}
		}
		return &CampaignOutcome{Header: campaign.NewHeader(cfg), Result: res}, nil
	}
}

// CampaignResult extracts the campaign outcome of a Done campaign job
// (plain or coordinated — both complete with a *CampaignOutcome).
func CampaignResult(j *Job) (*CampaignOutcome, error) {
	st := j.Status()
	if st.Kind != KindCampaign && st.Kind != KindCoordinated {
		return nil, fmt.Errorf("jobs: %s is a %s job, not a campaign", st.ID, st.Kind)
	}
	if st.State != Done {
		return nil, fmt.Errorf("jobs: %s is %s", st.ID, st.State)
	}
	v, _ := j.Result()
	out, ok := v.(*CampaignOutcome)
	if !ok {
		return nil, fmt.Errorf("jobs: %s carries no campaign result", st.ID)
	}
	return out, nil
}
