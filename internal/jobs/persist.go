package jobs

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/campaign"
	"repro/internal/persist"
)

// Journal receives the engine's durable-state events. The engine calls it
// outside its own locks; implementations must be safe for concurrent use.
type Journal interface {
	// JobSubmitted records a freshly queued job (best-effort write).
	JobSubmitted(j *Job)
	// JobFinished records a terminal transition (durable write — a finished
	// result must survive the very next crash).
	JobFinished(j *Job)
	// JobEvicted removes the record of a job dropped by the retention cap.
	JobEvicted(id string)
	// JobCell journals one completed campaign cell of a running job — the
	// checkpoint a restart resumes from.
	JobCell(jobID string, cell campaign.Cell)
}

// jobRecord is the persisted form of one job (the engine's namespace,
// keyed by job ID).
type jobRecord struct {
	ID       string           `json:"id"`
	Kind     string           `json:"kind"`
	State    State            `json:"state"`
	Done     int              `json:"done"`
	Total    int              `json:"total"`
	Err      string           `json:"err,omitempty"`
	Created  time.Time        `json:"created"`
	Started  time.Time        `json:"started,omitzero"`
	Finished time.Time        `json:"finished,omitzero"`
	Spec     json.RawMessage  `json:"spec,omitempty"`
	Outcome  *CampaignOutcome `json:"outcome,omitempty"`
}

// Persister journals an engine's jobs into a persist.Store: job records in
// namespace ns, the streamed cells of running campaign jobs in ns+"-cells"
// (keyed "<job>/<index>" so one DeletePrefix drops them when the job
// finishes or is evicted). Writes are best-effort — a persistence failure
// is counted, never propagated into the job path.
type Persister struct {
	ps     persist.Store
	ns     string
	cellNS string
	errs   atomic.Int64
}

// NewPersister builds a journal writing into the given namespace.
func NewPersister(ps persist.Store, ns string) *Persister {
	return &Persister{ps: ps, ns: ns, cellNS: ns + "-cells"}
}

// Errors counts failed persistence writes.
func (p *Persister) Errors() int64 { return p.errs.Load() }

// cellKey zero-pads the index so lexical key order is numeric cell order.
func cellKey(jobID string, index int) string {
	return fmt.Sprintf("%s/%08d", jobID, index)
}

func (p *Persister) record(j *Job) jobRecord {
	st := j.Status()
	rec := jobRecord{
		ID: st.ID, Kind: st.Kind, State: st.State,
		Done: st.Done, Total: st.Total, Err: st.Err,
		Created: st.Created, Started: st.Started, Finished: st.Finished,
		Spec: j.Meta(),
	}
	if v, ok := j.Result(); ok {
		if out, ok := v.(*CampaignOutcome); ok {
			rec.Outcome = out
		}
	}
	return rec
}

func (p *Persister) write(rec jobRecord, durable bool) {
	b, err := json.Marshal(rec)
	if err != nil {
		p.errs.Add(1)
		return
	}
	if durable {
		err = p.ps.PutDurable(p.ns, rec.ID, b)
	} else {
		err = p.ps.Put(p.ns, rec.ID, b)
	}
	if err != nil {
		p.errs.Add(1)
	}
}

// JobSubmitted implements Journal.
func (p *Persister) JobSubmitted(j *Job) { p.write(p.record(j), false) }

// JobFinished implements Journal: the terminal record is durable, and the
// job's journaled cells are dropped — the outcome now carries them.
func (p *Persister) JobFinished(j *Job) {
	p.write(p.record(j), true)
	if err := p.ps.DeletePrefix(p.cellNS, j.ID()+"/"); err != nil {
		p.errs.Add(1)
	}
}

// JobEvicted implements Journal.
func (p *Persister) JobEvicted(id string) {
	if err := p.ps.Delete(p.ns, id); err != nil {
		p.errs.Add(1)
	}
	if err := p.ps.DeletePrefix(p.cellNS, id+"/"); err != nil {
		p.errs.Add(1)
	}
}

// JobCell implements Journal.
func (p *Persister) JobCell(jobID string, cell campaign.Cell) {
	b, err := json.Marshal(cell)
	if err != nil {
		p.errs.Add(1)
		return
	}
	if err := p.ps.Put(p.cellNS, cellKey(jobID, cell.Index), b); err != nil {
		p.errs.Add(1)
	}
}

// RecoverStats summarizes what Recover restored, served on /api/v1/meta.
type RecoverStats struct {
	// Restored counts terminal jobs re-listed with their results intact.
	Restored int `json:"restored"`
	// Resumed counts interrupted campaign jobs re-submitted from their
	// journaled cells.
	Resumed int `json:"resumed"`
	// Interrupted counts jobs that could not be resumed (coordinated
	// campaigns, undecodable specs); they reappear as failed.
	Interrupted int `json:"interrupted"`
	// Cells counts journaled cells the resumed jobs did not recompute.
	Cells int `json:"cells_skipped"`
}

// Recover replays the persisted job records of a previous process into the
// engine: terminal jobs are restored as-is (their results serve
// byte-identically), interrupted campaign jobs are re-submitted with their
// journaled cells skipped, and everything else reappears as failed with an
// explanatory error. Call once, after SetJournal and before serving.
func (p *Persister) Recover(e *Engine) (RecoverStats, error) {
	var stats RecoverStats
	records, err := p.ps.Load(p.ns)
	if err != nil {
		return stats, err
	}
	ids := make([]string, 0, len(records))
	for id := range records {
		ids = append(ids, id)
	}
	// Shorter-then-lexical sorts "j2" before "j10": submission order for
	// engine-minted IDs, which keeps the restored listing stable.
	sort.Slice(ids, func(a, b int) bool {
		if len(ids[a]) != len(ids[b]) {
			return len(ids[a]) < len(ids[b])
		}
		return ids[a] < ids[b]
	})
	for _, id := range ids {
		var rec jobRecord
		if err := json.Unmarshal(records[id], &rec); err != nil || rec.ID == "" {
			p.errs.Add(1)
			continue
		}
		switch {
		case rec.State.Terminal():
			var result any
			if rec.Outcome != nil {
				result = rec.Outcome
			}
			if _, err := e.RestoreTerminal(statusOf(rec), rec.Spec, result); err != nil {
				p.errs.Add(1)
				continue
			}
			stats.Restored++
		case rec.Kind == KindCampaign && len(rec.Spec) > 0:
			var spec CampaignSpec
			if err := json.Unmarshal(rec.Spec, &spec); err != nil {
				p.failInterrupted(e, rec, &stats)
				continue
			}
			prior := p.loadCells(rec.ID)
			if _, err := ResubmitCampaign(e, rec.ID, spec, prior); err != nil {
				p.failInterrupted(e, rec, &stats)
				continue
			}
			stats.Resumed++
			stats.Cells += len(prior)
		default:
			p.failInterrupted(e, rec, &stats)
		}
	}
	return stats, nil
}

// failInterrupted restores a non-resumable interrupted job as failed and
// rewrites its record so the next restart agrees.
func (p *Persister) failInterrupted(e *Engine, rec jobRecord, stats *RecoverStats) {
	rec.State = Failed
	rec.Err = "interrupted by server restart"
	rec.Outcome = nil
	if rec.Finished.IsZero() {
		rec.Finished = time.Now()
	}
	if _, err := e.RestoreTerminal(statusOf(rec), rec.Spec, nil); err != nil {
		p.errs.Add(1)
		return
	}
	p.write(rec, true)
	if err := p.ps.DeletePrefix(p.cellNS, rec.ID+"/"); err != nil {
		p.errs.Add(1)
	}
	stats.Interrupted++
}

func statusOf(rec jobRecord) Status {
	return Status{
		ID: rec.ID, Kind: rec.Kind, State: rec.State,
		Done: rec.Done, Total: rec.Total, Err: rec.Err,
		Created: rec.Created, Started: rec.Started, Finished: rec.Finished,
	}
}

// loadCells returns the journaled cells of one job, in index order.
func (p *Persister) loadCells(jobID string) []campaign.Cell {
	all, err := p.ps.Load(p.cellNS)
	if err != nil {
		p.errs.Add(1)
		return nil
	}
	prefix := jobID + "/"
	keys := make([]string, 0, len(all))
	for k := range all {
		if strings.HasPrefix(k, prefix) {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	cells := make([]campaign.Cell, 0, len(keys))
	for _, k := range keys {
		var c campaign.Cell
		if err := json.Unmarshal(all[k], &c); err != nil {
			p.errs.Add(1)
			continue
		}
		cells = append(cells, c)
	}
	return cells
}
