package figures

import (
	"bytes"
	"strings"
	"testing"
)

func TestFig1Schedule(t *testing.T) {
	s := Fig1Schedule()
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	task := s.Task("1")
	if task == nil || task.Type != "computation" || task.End != 0.31 || task.TotalHosts() != 8 {
		t.Fatalf("task = %+v", task)
	}
}

func TestFig3Composite(t *testing.T) {
	s := Fig3Composite()
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	composites := 0
	for i := range s.Tasks {
		if s.Tasks[i].Type == "composite" {
			composites++
		}
	}
	if composites < 2 {
		t.Fatalf("composites = %d, want >= 2 (two overlap regions)", composites)
	}
}

func TestFig4(t *testing.T) {
	r, err := Fig4()
	if err != nil {
		t.Fatal(err)
	}
	// The figure's finding, quantitatively.
	if r.MakespanCPA >= r.MakespanMCPA {
		t.Fatalf("CPA %g should beat MCPA %g", r.MakespanCPA, r.MakespanMCPA)
	}
	if r.UtilCPA <= r.UtilMCPA {
		t.Fatalf("CPA utilization %g should exceed MCPA %g", r.UtilCPA, r.UtilMCPA)
	}
	if r.MCPA2Chose != "cpa" {
		t.Fatalf("MCPA2 chose %s, want cpa", r.MCPA2Chose)
	}
	if err := r.CPA.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := r.MCPA.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestFig5(t *testing.T) {
	r, err := Fig5()
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Schedule.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := r.Backfilled.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(r.Result.Apps) != 4 {
		t.Fatal("want 4 applications")
	}
	// Four distinct app colors in the trace.
	if got := len(r.Schedule.TaskTypes()); got != 4 {
		t.Fatalf("task types = %d, want 4", got)
	}
	// Backfilling reduces (or keeps) idle time, never increases it.
	if r.IdleAfter > r.IdleBefore+1e-6 {
		t.Fatalf("backfilling increased idle: %g -> %g", r.IdleBefore, r.IdleAfter)
	}
}

func TestFig6DOT(t *testing.T) {
	var buf bytes.Buffer
	if err := Fig6DOT(&buf); err != nil {
		t.Fatal(err)
	}
	dot := buf.String()
	for _, stage := range []string{"mProjectPP", "mDiffFit", "mBgModel", "mJPEG"} {
		if !strings.Contains(dot, stage) {
			t.Fatalf("DOT missing stage %s", stage)
		}
	}
}

func TestFig8And9(t *testing.T) {
	r, err := Fig8And9()
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Flawed.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := r.Realistic.Validate(); err != nil {
		t.Fatal(err)
	}
	if r.CrossEdgesRealistic >= r.CrossEdgesFlawed {
		t.Fatalf("cross edges: %d -> %d, want reduction", r.CrossEdgesFlawed, r.CrossEdgesRealistic)
	}
	if r.BackgroundClustersReal > r.BackgroundClustersFlawed {
		t.Fatal("mBackground should consolidate")
	}
	if len(r.Flawed.Clusters) != 4 {
		t.Fatal("multi-cluster view lost")
	}
}

func TestFig11And12(t *testing.T) {
	r11, err := Fig11()
	if err != nil {
		t.Fatal(err)
	}
	r12, err := Fig12()
	if err != nil {
		t.Fatal(err)
	}
	if r11.Executed < 100 || r12.Executed < 100 {
		t.Fatal("too few tasks")
	}
	if f := r12.BusyFractionWithOneWorker(600); f < 0.3 {
		t.Fatalf("fig12 one-busy fraction = %g", f)
	}
}

func TestFig13(t *testing.T) {
	r, err := Fig13()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Schedule.Tasks) != 834 {
		t.Fatalf("jobs = %d", len(r.Schedule.Tasks))
	}
}

func TestColorMaps(t *testing.T) {
	mm := MontageMap()
	a := mm.Lookup("mProjectPP").BG
	b := mm.Lookup("mDiffFit").BG
	if a == b {
		t.Fatal("montage stages share a color")
	}
	am := AppMap(4)
	if am.Lookup("app0").BG == am.Lookup("app3").BG {
		t.Fatal("apps share a color")
	}
}
