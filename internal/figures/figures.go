// Package figures regenerates every figure of the paper's evaluation. Each
// FigN function builds the exact scenario of the corresponding figure and
// returns the schedule(s) to render; the cmd/figures binary writes them to
// image files and the root benchmark harness measures them. DESIGN.md maps
// each figure to the modules exercised here, and EXPERIMENTS.md records the
// paper-vs-measured outcome.
package figures

import (
	"fmt"
	"io"
	"math/rand"

	"repro/internal/colormap"
	"repro/internal/core"
	"repro/internal/dag"
	"repro/internal/platform"
	"repro/internal/sched/cpa"
	"repro/internal/sched/cra"
	"repro/internal/sched/heft"
	"repro/internal/taskpool"
	"repro/internal/workload"
)

// Fig1Schedule builds the schedule whose first task matches the XML
// listing of Figure 1: task "1", type computation, [0, 0.31], eight hosts
// of cluster 0.
func Fig1Schedule() *core.Schedule {
	s := core.NewSingleCluster("cluster-0", 8)
	s.Add("1", "computation", 0, 0.310, 0, 8)
	return s
}

// Fig3Composite builds a schedule exhibiting composite tasks as in
// Figure 3: blue computations, red transfers, and orange composite bands
// where they overlap on shared hosts.
func Fig3Composite() *core.Schedule {
	s := core.NewSingleCluster("cluster", 8)
	s.Add("c1", "computation", 0, 4, 0, 8)
	s.Add("t1", "transfer", 3, 5, 0, 4) // overlaps c1 on hosts 0-3
	s.Add("c2", "computation", 5, 9, 0, 4)
	s.Add("c3", "computation", 4.5, 9, 4, 4)
	s.Add("t2", "transfer", 8, 10, 2, 4) // overlaps c2 and c3
	return s.WithComposites()
}

// Fig4Result bundles the CPA-vs-MCPA comparison of Figure 4.
type Fig4Result struct {
	CPA, MCPA     *core.Schedule
	MakespanCPA   float64
	MakespanMCPA  float64
	UtilCPA       float64
	UtilMCPA      float64
	MCPA2Chose    string
	MCPA2Makespan float64
}

// Fig4 schedules the imbalanced-layer DAG with CPA and MCPA on a
// 16-processor cluster, reproducing the load-imbalance hole of Figure 4.
func Fig4() (*Fig4Result, error) {
	g := dag.ImbalancedLayer(14, 10)
	p := platform.Homogeneous(16, 1e9)
	out := &Fig4Result{}
	for _, variant := range []cpa.Variant{cpa.CPA, cpa.MCPA} {
		res, err := cpa.Schedule(g, p, variant)
		if err != nil {
			return nil, err
		}
		wr, err := cpa.Execute(res, p)
		if err != nil {
			return nil, err
		}
		st := wr.Schedule.ComputeStats()
		if variant == cpa.CPA {
			out.CPA, out.MakespanCPA, out.UtilCPA = wr.Schedule, wr.Makespan, st.Utilization
		} else {
			out.MCPA, out.MakespanMCPA, out.UtilMCPA = wr.Schedule, wr.Makespan, st.Utilization
		}
	}
	res2, err := cpa.Schedule(g, p, cpa.MCPA2)
	if err != nil {
		return nil, err
	}
	out.MCPA2Chose = res2.Chosen.String()
	out.MCPA2Makespan = res2.Makespan
	return out, nil
}

// Fig5Result bundles the multi-DAG schedule of Figure 5.
type Fig5Result struct {
	Schedule   *core.Schedule
	Backfilled *core.Schedule
	Result     *cra.Result
	IdleBefore float64
	IdleAfter  float64
}

// Fig5 schedules four mixed-parallel applications on a 20-processor
// cluster with CRA_WORK, plus the conservative backfilling comparison the
// case study describes.
func Fig5() (*Fig5Result, error) {
	graphs := []*dag.Graph{
		dag.Montage(6),
		mustGen(dag.ShapeForkJoin, 24, 11),
		mustGen(dag.ShapeRandom, 30, 12),
		mustGen(dag.ShapeLong, 18, 13),
	}
	p := platform.Homogeneous(20, 1e9)
	res, err := cra.Schedule(graphs, p, cra.Work, 0.5)
	if err != nil {
		return nil, err
	}
	bf, err := cra.Backfill(res.Placed, 20)
	if err != nil {
		return nil, err
	}
	meta := core.Property{Name: "algorithm", Value: res.Strategy.String()}
	return &Fig5Result{
		Schedule:   cra.Trace(res.Placed, 20, meta),
		Backfilled: cra.Trace(bf, 20, meta, core.Property{Name: "backfilled", Value: "yes"}),
		Result:     res,
		IdleBefore: cra.TotalIdle(res.Placed, 20),
		IdleAfter:  cra.TotalIdle(bf, 20),
	}, nil
}

func mustGen(shape dag.Shape, nodes int, seed int64) *dag.Graph {
	return dag.Generate(shape, dag.DefaultGenOptions(nodes), newRand(seed))
}

// Fig6DOT writes the Montage(12) structure (50 compute nodes) in DOT form,
// the textual equivalent of Figure 6.
func Fig6DOT(w io.Writer) error {
	return dag.Montage(12).WriteDOT(w)
}

// Fig8And9Result bundles the HEFT experiment pair.
type Fig8And9Result struct {
	Flawed, Realistic        *core.Schedule
	MakespanFlawed           float64
	MakespanRealistic        float64
	CrossEdgesFlawed         int
	CrossEdgesRealistic      int
	BackgroundClustersFlawed int
	BackgroundClustersReal   int
}

// Fig8And9 runs HEFT for Montage(12) on the Figure 7 platform twice: with
// the flawed backbone latency (Figure 8) and the realistic one (Figure 9).
func Fig8And9() (*Fig8And9Result, error) {
	g := dag.Montage(12)
	out := &Fig8And9Result{}
	for _, realistic := range []bool{false, true} {
		lat := platform.Figure7FlawedLatency
		if realistic {
			lat = platform.Figure7RealisticLatency
		}
		p := platform.Figure7(lat)
		res, err := heft.Schedule(g, p)
		if err != nil {
			return nil, err
		}
		trace, err := res.Trace(heft.TraceOptions{Transfers: true, TransferFloor: 0.05})
		if err != nil {
			return nil, err
		}
		trace.SetMeta("backbone_latency", fmt.Sprintf("%g", lat))
		if realistic {
			out.Realistic = trace
			out.MakespanRealistic = res.Makespan
			out.CrossEdgesRealistic = res.CrossClusterEdges()
			out.BackgroundClustersReal = len(res.ClustersUsedBy("mBackground"))
		} else {
			out.Flawed = trace
			out.MakespanFlawed = res.Makespan
			out.CrossEdgesFlawed = res.CrossClusterEdges()
			out.BackgroundClustersFlawed = len(res.ClustersUsedBy("mBackground"))
		}
	}
	return out, nil
}

// Fig11 simulates quicksort over 10M random integers on the 32-worker task
// pool (Figure 11).
func Fig11() (*taskpool.Result, error) {
	return taskpool.RunQuicksort(taskpool.DefaultConfig(), taskpool.Figure11Config())
}

// Fig12 simulates quicksort over 200M inversely sorted integers with
// middle pivots (Figure 12).
func Fig12() (*taskpool.Result, error) {
	return taskpool.RunQuicksort(taskpool.DefaultConfig(), taskpool.Figure12Config())
}

// Fig13 builds the synthetic LLNL Thunder day (Figure 13).
func Fig13() (*workload.Placed, error) {
	return workload.ThunderDay(workload.Figure13Config())
}

// MontageMap returns a color map with one color per Montage stage, like
// the per-type coloring of Figures 6/8/9.
func MontageMap() *colormap.Map {
	stages := dag.MontageStages()
	return colormap.Palette(len(stages), func(i int) string { return stages[i] })
}

// AppMap returns a per-application color map for n applications (Figure 5:
// "each application has its own color").
func AppMap(n int) *colormap.Map {
	return colormap.Palette(n, func(i int) string { return fmt.Sprintf("app%d", i) })
}

// newRand returns a deterministic generator for the figure scenarios.
func newRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }
