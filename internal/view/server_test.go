package view

import (
	"image/png"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/jedxml"
)

func newTestServer(t *testing.T) (*httptest.Server, *Viewport) {
	t.Helper()
	vp := New(demoSchedule(), 400, 300)
	ts := httptest.NewServer(NewServer(vp).Handler())
	t.Cleanup(ts.Close)
	return ts, vp
}

func get(t *testing.T, url string) (int, string, http.Header) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body), resp.Header
}

func TestIndexPage(t *testing.T) {
	ts, _ := newTestServer(t)
	code, body, hdr := get(t, ts.URL+"/")
	if code != 200 {
		t.Fatalf("status = %d", code)
	}
	if !strings.Contains(hdr.Get("Content-Type"), "text/html") {
		t.Error("content type")
	}
	for _, want := range []string{"/view.png", "zoom in", "reread", "alpha(8)", "beta(4)"} {
		if !strings.Contains(body, want) {
			t.Errorf("index missing %q", want)
		}
	}
	if code, _, _ := get(t, ts.URL+"/missing"); code != 404 {
		t.Error("unknown path should 404")
	}
}

func TestViewPNG(t *testing.T) {
	ts, _ := newTestServer(t)
	resp, err := http.Get(ts.URL + "/view.png")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	img, err := png.Decode(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if img.Bounds().Dx() != 400 {
		t.Fatalf("image width = %d", img.Bounds().Dx())
	}
}

func TestOps(t *testing.T) {
	ts, vp := newTestServer(t)
	if code, _, _ := get(t, ts.URL+"/op?op=zoomin"); code != 200 {
		t.Fatal("zoomin failed")
	}
	if vp.Window().Span() >= 120 {
		t.Fatal("zoomin had no effect")
	}
	get(t, ts.URL+"/op?op=zoomout")
	get(t, ts.URL+"/op?op=right")
	get(t, ts.URL+"/op?op=left")
	if code, _, _ := get(t, ts.URL+"/op?op=reset"); code != 200 {
		t.Fatal("reset failed")
	}
	if vp.Window().Span() != 120 {
		t.Fatal("reset had no effect")
	}
	get(t, ts.URL+"/op?op=mode")
	if vp.Mode != core.ScaledView {
		t.Fatal("mode toggle failed")
	}
	get(t, ts.URL+"/op?op=composites")
	if !vp.Composites {
		t.Fatal("composites toggle failed")
	}
	if code, _, _ := get(t, ts.URL+"/op?op=bogus"); code != 400 {
		t.Fatal("bogus op should 400")
	}
}

func TestZoomWheelEndpoints(t *testing.T) {
	ts, vp := newTestServer(t)
	if code, _, _ := get(t, ts.URL+"/zoom?x0=100&x1=300"); code != 200 {
		t.Fatal("zoom failed")
	}
	if vp.Window().Span() >= 120 {
		t.Fatal("rubber-band had no effect")
	}
	vp.Reset()
	if code, _, _ := get(t, ts.URL+"/wheel?x=200&dir=up"); code != 200 {
		t.Fatal("wheel failed")
	}
	if vp.Window().Span() >= 120 {
		t.Fatal("wheel had no effect")
	}
	get(t, ts.URL+"/wheel?x=200&dir=down")
	if code, _, _ := get(t, ts.URL+"/zoom?x0=abc&x1=1"); code != 400 {
		t.Fatal("bad zoom args should 400")
	}
	if code, _, _ := get(t, ts.URL+"/wheel?x=abc"); code != 400 {
		t.Fatal("bad wheel args should 400")
	}
}

func TestClickEndpoint(t *testing.T) {
	ts, vp := newTestServer(t)
	l := vp.Layout()
	p := l.Panels[0]
	x := int(p.Transform.XToScreen(40))
	y := int(p.Transform.YToScreen(0.5))
	code, body, _ := get(t, ts.URL+"/click?x="+itoa(x)+"&y="+itoa(y))
	if code != 200 || !strings.Contains(body, "start:") {
		t.Fatalf("click = %d %q", code, body)
	}
	_, body, _ = get(t, ts.URL+"/click?x=1&y=1")
	if !strings.Contains(body, "no task") {
		t.Fatalf("background click = %q", body)
	}
	if code, _, _ := get(t, ts.URL+"/click?x=a&y=b"); code != 400 {
		t.Fatal("bad click args should 400")
	}
}

func itoa(v int) string { return strconv.Itoa(v) }

func TestClustersEndpoint(t *testing.T) {
	ts, vp := newTestServer(t)
	if code, _, _ := get(t, ts.URL+"/clusters?ids=1"); code != 200 {
		t.Fatal("clusters failed")
	}
	if got := vp.SelectedClusters(); len(got) != 1 || got[0] != 1 {
		t.Fatalf("selection = %v", got)
	}
	get(t, ts.URL+"/clusters?ids=")
	if vp.SelectedClusters() != nil {
		t.Fatal("deselect failed")
	}
	if code, _, _ := get(t, ts.URL+"/clusters?ids=x"); code != 400 {
		t.Fatal("bad ids should 400")
	}
}

func TestRereadEndpoint(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/s.jed"
	if err := jedxml.WriteFile(path, demoSchedule()); err != nil {
		t.Fatal(err)
	}
	vp, err := Open(path, 200, 150)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(NewServer(vp).Handler())
	defer ts.Close()
	if code, _, _ := get(t, ts.URL+"/reread"); code != 200 {
		t.Fatal("reread failed")
	}
	// A viewport without a file reports the error.
	vp2 := New(demoSchedule(), 100, 100)
	ts2 := httptest.NewServer(NewServer(vp2).Handler())
	defer ts2.Close()
	if code, _, _ := get(t, ts2.URL+"/reread"); code != 500 {
		t.Fatal("file-less reread should 500")
	}
}

func TestExportEndpoint(t *testing.T) {
	ts, _ := newTestServer(t)
	code, body, hdr := get(t, ts.URL+"/export?format=pdf")
	if code != 200 || !strings.HasPrefix(body, "%PDF") {
		t.Fatalf("pdf export = %d", code)
	}
	if !strings.Contains(hdr.Get("Content-Type"), "pdf") {
		t.Error("pdf content type")
	}
	code, body, _ = get(t, ts.URL+"/export?format=svg")
	if code != 200 || !strings.Contains(body, "<svg") {
		t.Fatal("svg export")
	}
	code, _, hdr = get(t, ts.URL+"/export?format=png")
	if code != 200 || !strings.Contains(hdr.Get("Content-Type"), "png") {
		t.Fatal("png export")
	}
	if code, _, _ := get(t, ts.URL+"/export?format=bmp"); code != 400 {
		t.Fatal("unknown format should 400")
	}
}

func TestGrayscaleToggle(t *testing.T) {
	ts, vp := newTestServer(t)
	if code, _, _ := get(t, ts.URL+"/op?op=gray"); code != 200 {
		t.Fatal("gray toggle failed")
	}
	c := vp.Map.Lookup("computation").BG
	if c.R != c.G || c.G != c.B {
		t.Fatalf("map not grayscale: %+v", c)
	}
	get(t, ts.URL+"/op?op=gray")
	c = vp.Map.Lookup("computation").BG
	if c.R == c.G && c.G == c.B {
		t.Fatal("gray toggle did not restore color")
	}
}

func TestRecolorEndpoint(t *testing.T) {
	ts, vp := newTestServer(t)
	if code, _, _ := get(t, ts.URL+"/recolor?type=computation&bg=00ff00"); code != 200 {
		t.Fatal("recolor failed")
	}
	if got := vp.Map.Lookup("computation").BG; got.G != 255 || got.R != 0 {
		t.Fatalf("recolor had no effect: %+v", got)
	}
	if code, _, _ := get(t, ts.URL+"/recolor?type=computation&bg=00ff00&fg=ffffff"); code != 200 {
		t.Fatal("recolor with fg failed")
	}
	if got := vp.Map.Lookup("computation").FG; got.R != 255 {
		t.Fatalf("fg not applied: %+v", got)
	}
	if code, _, _ := get(t, ts.URL+"/recolor?bg=00ff00"); code != 400 {
		t.Fatal("missing type should 400")
	}
	if code, _, _ := get(t, ts.URL+"/recolor?type=x&bg=zz"); code != 400 {
		t.Fatal("bad bg should 400")
	}
	if code, _, _ := get(t, ts.URL+"/recolor?type=x&bg=00ff00&fg=zz"); code != 400 {
		t.Fatal("bad fg should 400")
	}
}

// TestAPIMounted checks the viewer is a thin client of the REST API: the
// schedule is reachable as session "default" under /api/v1/.
func TestAPIMounted(t *testing.T) {
	ts, _ := newTestServer(t)
	code, body, hdr := get(t, ts.URL+"/api/v1/sessions/default/stats")
	if code != 200 || !strings.Contains(hdr.Get("Content-Type"), "json") {
		t.Fatalf("api stats = %d %q", code, hdr.Get("Content-Type"))
	}
	if !strings.Contains(body, `"makespan": 120`) {
		t.Fatalf("stats body = %s", body)
	}
	code, body, _ = get(t, ts.URL+"/api/v1/sessions")
	if code != 200 || !strings.Contains(body, `"default"`) {
		t.Fatalf("session list = %d %s", code, body)
	}
}

// TestLegacyAliasRedirects checks the deprecated read routes redirect into
// the API, preserving the query string, and still work when followed.
func TestLegacyAliasRedirects(t *testing.T) {
	ts, _ := newTestServer(t)
	noFollow := &http.Client{
		CheckRedirect: func(*http.Request, []*http.Request) error { return http.ErrUseLastResponse },
	}
	for path, wantLoc := range map[string]string{
		"/stats":           "/api/v1/sessions/default/stats",
		"/stats?cluster=1": "/api/v1/sessions/default/stats?cluster=1",
		"/tasks":           "/api/v1/sessions/default/tasks",
		"/meta":            "/api/v1/sessions/default/meta",
	} {
		resp, err := noFollow.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusTemporaryRedirect {
			t.Fatalf("%s = %d, want 307", path, resp.StatusCode)
		}
		if got := resp.Header.Get("Location"); got != wantLoc {
			t.Fatalf("%s Location = %q, want %q", path, got, wantLoc)
		}
		if resp.Header.Get("Deprecation") != "true" {
			t.Errorf("%s missing Deprecation header", path)
		}
	}
	// Followed, the alias serves the API's JSON.
	code, body, _ := get(t, ts.URL+"/tasks")
	if code != 200 || !strings.Contains(body, `"tasks"`) {
		t.Fatalf("followed alias = %d %s", code, body)
	}
}

// TestExportUnified checks the satellite fix: every format goes through the
// same options-driven branch, so all three honor the current window and all
// three set an attachment disposition.
func TestExportUnified(t *testing.T) {
	ts, vp := newTestServer(t)
	vp.SelectClusters([]int{0})
	get(t, ts.URL+"/zoom?x0=100&x1=300") // leave a narrowed window behind
	for _, format := range []string{"png", "svg", "pdf"} {
		code, _, hdr := get(t, ts.URL+"/export?format="+format)
		if code != 200 {
			t.Fatalf("%s export = %d", format, code)
		}
		want := `attachment; filename="schedule.` + format + `"`
		if got := hdr.Get("Content-Disposition"); got != want {
			t.Errorf("%s disposition = %q, want %q", format, got, want)
		}
	}
	// The PNG path honors the cluster selection like the vector paths: the
	// export of cluster 0 only must differ from the full export.
	vp.Reset()
	_, onlyCluster0, _ := get(t, ts.URL+"/export?format=svg")
	vp.SelectClusters(nil)
	_, full, _ := get(t, ts.URL+"/export?format=svg")
	if strings.Contains(onlyCluster0, "beta") || !strings.Contains(full, "beta") {
		t.Fatal("cluster selection not honored by export")
	}
}

// TestRereadUpdatesAPISession checks reread swaps the schedule under the
// "default" API session too.
func TestRereadUpdatesAPISession(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/s.jed"
	if err := jedxml.WriteFile(path, demoSchedule()); err != nil {
		t.Fatal(err)
	}
	vp, err := Open(path, 200, 150)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(NewServer(vp).Handler())
	defer ts.Close()

	grown := demoSchedule()
	grown.Add("extra", "computation", 120, 200, 0, 2)
	if err := jedxml.WriteFile(path, grown); err != nil {
		t.Fatal(err)
	}
	get(t, ts.URL+"/reread")
	code, body, _ := get(t, ts.URL+"/api/v1/sessions/default/stats")
	if code != 200 || !strings.Contains(body, `"makespan": 200`) {
		t.Fatalf("stats after reread = %d %s", code, body)
	}
}
