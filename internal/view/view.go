// Package view implements the semantics of Jedule's interactive mode
// (paper section II-D.1) without a GUI toolkit: a Viewport holds the
// current zoom window, cluster selection, and view mode, and translates the
// user gestures the paper lists — mouse-wheel zoom at the cursor, drag
// panning, rubber-band zoom onto a selected region, clicking a task for its
// meta information, cluster selection, fast reread of the schedule file, and
// snapshot export.
//
// The Swing window of the original tool was a thin shell around exactly
// these operations; here they are exercised by unit tests and by the HTTP
// viewer in server.go.
package view

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"

	"repro/internal/colormap"
	"repro/internal/core"
	"repro/internal/jedxml"
	"repro/internal/raster"
	"repro/internal/render"
)

// minSpanFraction bounds how deep the zoom can go, relative to the full
// schedule extent.
const minSpanFraction = 1e-6

// Viewport is the interactive view state over one schedule.
type Viewport struct {
	mu sync.Mutex

	sched *core.Schedule
	path  string // source file for Reread; empty when constructed in memory

	Width, Height int
	Mode          core.ViewMode
	Map           *colormap.Map
	Labels        bool
	Composites    bool
	// Workers bounds the goroutines per rasterization (render.Options.
	// Workers): 0 = GOMAXPROCS, 1 = serial. Output is identical either way.
	Workers int
	// LOD enables level-of-detail rendering (render.Options.LOD): panels
	// past the density threshold aggregate sub-pixel tasks into density
	// bands instead of drawing each rectangle.
	LOD bool

	window   *core.Extent // nil = full extent
	clusters []int        // nil = all
}

// New creates a viewport over an in-memory schedule.
func New(s *core.Schedule, width, height int) *Viewport {
	return &Viewport{
		sched: s, Width: width, Height: height,
		Mode: core.AlignedView, Map: colormap.Default(), Labels: true,
	}
}

// Open creates a viewport reading the schedule from a Jedule XML file; the
// path is retained for Reread.
func Open(path string, width, height int) (*Viewport, error) {
	s, err := jedxml.ReadFile(path)
	if err != nil {
		return nil, err
	}
	v := New(s, width, height)
	v.path = path
	return v, nil
}

// Schedule returns the schedule currently shown.
func (v *Viewport) Schedule() *core.Schedule {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.sched
}

// Window returns the visible time range.
func (v *Viewport) Window() core.Extent {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.windowLocked()
}

func (v *Viewport) windowLocked() core.Extent {
	if v.window != nil {
		return *v.window
	}
	return v.sched.Extent()
}

// options builds the render options for the current state.
func (v *Viewport) options() render.Options {
	return render.Options{
		Mode: v.Mode, Map: v.Map, Clusters: v.clusters,
		Window: v.window, Labels: v.Labels, Composites: v.Composites,
		Workers: v.Workers, LOD: v.LOD,
	}
}

// Layout computes the current panel layout (for hit testing and gestures).
func (v *Viewport) Layout() *render.Layout {
	v.mu.Lock()
	defer v.mu.Unlock()
	return render.ComputeLayout(v.renderSchedule(), float64(v.Width), float64(v.Height), v.options())
}

func (v *Viewport) renderSchedule() *core.Schedule {
	if v.Composites {
		return v.sched.WithComposites()
	}
	return v.sched
}

// Render draws the current view onto a fresh raster canvas.
func (v *Viewport) Render() *raster.Canvas {
	v.mu.Lock()
	defer v.mu.Unlock()
	c := raster.New(v.Width, v.Height)
	opts := v.options()
	opts.Composites = false // renderSchedule already applied them
	render.Render(c, v.renderSchedule(), opts)
	return c
}

// timeAt converts a screen x coordinate to a time value using the first
// visible panel (all panels share the window in the interactive view).
func (v *Viewport) timeAt(x float64) (float64, bool) {
	l := render.ComputeLayout(v.sched, float64(v.Width), float64(v.Height), v.options())
	if len(l.Panels) == 0 {
		return 0, false
	}
	return l.Panels[0].Transform.XToWorld(x), true
}

// setWindow clamps and stores a new window.
func (v *Viewport) setWindow(lo, hi float64) {
	full := v.sched.Extent()
	minSpan := full.Span() * minSpanFraction
	if minSpan <= 0 {
		minSpan = 1e-12
	}
	if hi-lo < minSpan {
		mid := (lo + hi) / 2
		lo, hi = mid-minSpan/2, mid+minSpan/2
	}
	span := hi - lo
	if span >= full.Span() {
		v.window = nil
		return
	}
	if lo < full.Min {
		lo, hi = full.Min, full.Min+span
	}
	if hi > full.Max {
		lo, hi = full.Max-span, full.Max
	}
	v.window = &core.Extent{Min: lo, Max: hi}
}

// ZoomAt scales the time window by factor (>1 zooms in) keeping the instant
// under the screen x coordinate fixed — the paper's mouse-wheel zoom.
func (v *Viewport) ZoomAt(factor, x float64) {
	if factor <= 0 {
		return
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	t, ok := v.timeAt(x)
	if !ok {
		return
	}
	w := v.windowLocked()
	t = math.Max(w.Min, math.Min(w.Max, t))
	v.setWindow(t-(t-w.Min)/factor, t+(w.Max-t)/factor)
}

// Zoom scales about the window center (keyboard zoom).
func (v *Viewport) Zoom(factor float64) {
	if factor <= 0 {
		return
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	w := v.windowLocked()
	mid := (w.Min + w.Max) / 2
	v.setWindow(mid-w.Span()/(2*factor), mid+w.Span()/(2*factor))
}

// Pan shifts the window by a fraction of its span (positive = later times),
// the paper's drag gesture.
func (v *Viewport) Pan(fraction float64) {
	v.mu.Lock()
	defer v.mu.Unlock()
	w := v.windowLocked()
	d := w.Span() * fraction
	full := v.sched.Extent()
	if w.Min+d < full.Min {
		d = full.Min - w.Min
	}
	if w.Max+d > full.Max {
		d = full.Max - w.Max
	}
	if v.window == nil && d == 0 {
		return
	}
	v.setWindow(w.Min+d, w.Max+d)
}

// RubberBand zooms onto the time range between two screen x coordinates
// (the paper's "zoom in by selecting a rectangular part").
func (v *Viewport) RubberBand(x0, x1 float64) {
	v.mu.Lock()
	defer v.mu.Unlock()
	if x1 < x0 {
		x0, x1 = x1, x0
	}
	t0, ok0 := v.timeAt(x0)
	t1, ok1 := v.timeAt(x1)
	if !ok0 || !ok1 || t1 <= t0 {
		return
	}
	v.setWindow(t0, t1)
}

// SetGrayscale switches between the color and grayscale variants of the
// current map — the journal-figure use case, applied live.
func (v *Viewport) SetGrayscale(on bool) {
	v.mu.Lock()
	defer v.mu.Unlock()
	base := v.Map
	if base == nil {
		base = colormap.Default()
	}
	if on {
		v.Map = base.Grayscale()
		return
	}
	// Grayscale() derives "<name>-gray"; recover a colored default.
	v.Map = colormap.Default()
}

// Recolor assigns a new background color to one task type on the fly
// (paper section IX: "Color maps can also be changed on the fly, thus, the
// user can highlight different events when investigating a schedule").
func (v *Viewport) Recolor(taskType string, c colormap.Colors) {
	v.mu.Lock()
	defer v.mu.Unlock()
	if v.Map == nil {
		v.Map = colormap.Default()
	}
	m := v.Map.Clone()
	m.SetType(taskType, c)
	v.Map = m
}

// Reset restores the full extent.
func (v *Viewport) Reset() {
	v.mu.Lock()
	defer v.mu.Unlock()
	v.window = nil
}

// SelectClusters restricts the view to the given cluster IDs (nil = all).
func (v *Viewport) SelectClusters(ids []int) {
	v.mu.Lock()
	defer v.mu.Unlock()
	if ids == nil {
		v.clusters = nil
		return
	}
	v.clusters = append([]int(nil), ids...)
}

// SelectedClusters returns the current cluster filter (nil = all).
func (v *Viewport) SelectedClusters() []int {
	v.mu.Lock()
	defer v.mu.Unlock()
	if v.clusters == nil {
		return nil
	}
	return append([]int(nil), v.clusters...)
}

// TaskInfo is the meta information shown when a task is clicked.
type TaskInfo struct {
	ID, Type   string
	Start, End float64
	Resources  map[int][]int // cluster id -> host list
	Properties []core.Property
}

// String formats the info like the original tool's popup.
func (ti TaskInfo) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "task %s (%s)\nstart: %g\nfinish: %g\n", ti.ID, ti.Type, ti.Start, ti.End)
	clusters := make([]int, 0, len(ti.Resources))
	for c := range ti.Resources {
		clusters = append(clusters, c)
	}
	sort.Ints(clusters)
	for _, c := range clusters {
		fmt.Fprintf(&b, "cluster %d hosts: %v\n", c, ti.Resources[c])
	}
	for _, p := range ti.Properties {
		fmt.Fprintf(&b, "%s: %s\n", p.Name, p.Value)
	}
	return b.String()
}

// TaskAt resolves the task under a screen point — the paper's
// click-for-details gesture. ok is false over the background.
func (v *Viewport) TaskAt(x, y float64) (TaskInfo, bool) {
	v.mu.Lock()
	defer v.mu.Unlock()
	s := v.renderSchedule()
	l := render.ComputeLayout(s, float64(v.Width), float64(v.Height), v.options())
	idx, ok := l.HitTest(s, x, y)
	if !ok {
		return TaskInfo{}, false
	}
	t := &s.Tasks[idx]
	info := TaskInfo{
		ID: t.ID, Type: t.Type, Start: t.Start, End: t.End,
		Resources:  map[int][]int{},
		Properties: t.Properties,
	}
	for _, a := range t.Allocations {
		info.Resources[a.Cluster] = a.HostList()
	}
	return info, true
}

// Reread reloads the schedule from its source file (the paper's fast-reread
// keystroke, used while iterating on a scheduling algorithm). The current
// zoom and selection are preserved when still valid.
func (v *Viewport) Reread() error {
	v.mu.Lock()
	defer v.mu.Unlock()
	if v.path == "" {
		return fmt.Errorf("view: viewport has no backing file")
	}
	s, err := jedxml.ReadFile(v.path)
	if err != nil {
		return err
	}
	v.sched = s
	if v.window != nil {
		// Keep the part of the zoom window that still exists; drop it
		// entirely when it no longer overlaps the new schedule.
		clipped := v.window.Intersect(s.Extent())
		if !clipped.Valid() || clipped.Span() == 0 {
			v.window = nil
		} else {
			v.setWindow(clipped.Min, clipped.Max)
		}
	}
	var kept []int
	for _, id := range v.clusters {
		if _, ok := s.Cluster(id); ok {
			kept = append(kept, id)
		}
	}
	v.clusters = kept
	return nil
}

// Snapshot exports the current view to a file in any supported format (the
// paper's export/snapshot feature).
func (v *Viewport) Snapshot(path string) error {
	v.mu.Lock()
	opts := v.options()
	s := v.sched
	w, h := v.Width, v.Height
	v.mu.Unlock()
	return render.ToFile(path, s, w, h, opts)
}
