package view

import (
	"bytes"
	"fmt"
	"html"
	"net/http"
	"strconv"
	"strings"

	"repro/internal/api"
	"repro/internal/colormap"
	"repro/internal/core"
	"repro/internal/render"
)

// DefaultSessionID is the API session the legacy viewer's schedule is
// registered under.
const DefaultSessionID = "default"

// Server exposes a Viewport over HTTP, standing in for the Swing window of
// the original tool. It is a thin client of the versioned REST API: the
// viewport's schedule is registered as the session "default" of an
// internal/api session store, the full API is mounted at /api/v1/, and the
// legacy read routes are kept as deprecated aliases of the stateless API
// endpoints. Only the gesture routes still mutate the shared viewport.
//
// The page at / shows the schedule; every interactive gesture maps to an
// endpoint:
//
//	GET /view.png          current view as PNG
//	GET /op?op=zoomin      keyboard zoom in (also zoomout, reset)
//	GET /op?op=left        pan (also right)
//	GET /op?op=mode        toggle scaled/aligned view
//	GET /op?op=composites  toggle composite-task overlay
//	GET /op?op=gray        toggle grayscale colors
//	GET /recolor?type=X&bg=rrggbb[&fg=rrggbb]  recolor one task type live
//	GET /zoom?x0=&x1=      rubber-band zoom between two pixel columns
//	GET /wheel?x=&dir=up   mouse-wheel zoom at a pixel column
//	GET /click?x=&y=       task info under the cursor (text/plain)
//	GET /clusters?ids=0,1  cluster selection (empty ids = all)
//	GET /reread            reload the schedule file
//	GET /export?format=pdf download the current view (pdf, svg, png)
//
// Deprecated aliases, redirecting into the API (same query parameters):
//
//	GET /stats   -> /api/v1/sessions/default/stats
//	GET /tasks   -> /api/v1/sessions/default/tasks
//	GET /meta    -> /api/v1/sessions/default/meta
type Server struct {
	vp   *Viewport
	gray bool
	api  *api.Server
	sess *api.Session
}

// NewServer wraps a viewport, registering its schedule as the "default"
// session of a fresh API store.
func NewServer(vp *Viewport) *Server {
	store := api.NewStore()
	sess, err := store.Put(DefaultSessionID, "viewer", "viewer", vp.Schedule())
	if err != nil {
		panic(err) // unreachable: the store is empty
	}
	return &Server{vp: vp, api: api.NewServer(store), sess: sess}
}

// API returns the embedded REST server (its store holds the "default"
// session plus any sessions created over HTTP).
func (s *Server) API() *api.Server { return s.api }

// Handler returns the HTTP routes: the legacy viewer plus the mounted API.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/", s.index)
	mux.HandleFunc("/view.png", s.viewPNG)
	mux.HandleFunc("/op", s.op)
	mux.HandleFunc("/zoom", s.zoom)
	mux.HandleFunc("/wheel", s.wheel)
	mux.HandleFunc("/click", s.click)
	mux.HandleFunc("/clusters", s.clusters)
	mux.HandleFunc("/recolor", s.recolor)
	mux.HandleFunc("/reread", s.reread)
	mux.HandleFunc("/export", s.export)
	for _, alias := range []string{"stats", "tasks", "meta"} {
		mux.HandleFunc("/"+alias, s.apiAlias(alias))
	}
	mux.Handle("/api/v1/", s.api.Handler())
	return mux
}

// apiAlias serves a legacy read path by redirecting to the equivalent
// stateless endpoint on the default session, preserving the query string.
// The Deprecation and Link (successor-version) headers announce the move
// machine-readably; a future release drops the aliases.
func (s *Server) apiAlias(endpoint string) http.HandlerFunc {
	successor := "/api/v1/sessions/" + DefaultSessionID + "/" + endpoint
	return func(w http.ResponseWriter, r *http.Request) {
		target := successor
		if r.URL.RawQuery != "" {
			target += "?" + r.URL.RawQuery
		}
		w.Header().Set("Deprecation", "true")
		w.Header().Set("Link", fmt.Sprintf("<%s>; rel=\"successor-version\"", successor))
		http.Redirect(w, r, target, http.StatusTemporaryRedirect)
	}
}

// ListenAndServe runs the viewer on addr.
func (s *Server) ListenAndServe(addr string) error {
	return http.ListenAndServe(addr, s.Handler())
}

func (s *Server) index(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	sched := s.vp.Schedule()
	win := s.vp.Window()
	var clusterLinks strings.Builder
	for _, c := range sched.Clusters {
		fmt.Fprintf(&clusterLinks, `<a href="/clusters?ids=%d">%s(%d)</a> `,
			c.ID, html.EscapeString(c.DisplayName()), c.Hosts)
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	fmt.Fprintf(w, indexPage,
		win.Min, win.Max, clusterLinks.String())
}

const indexPage = `<!DOCTYPE html>
<html><head><title>jedule viewer</title></head>
<body>
<p>
<a href="/op?op=zoomin">zoom in</a>
<a href="/op?op=zoomout">zoom out</a>
<a href="/op?op=left">&larr; pan</a>
<a href="/op?op=right">pan &rarr;</a>
<a href="/op?op=reset">reset</a>
<a href="/op?op=mode">scaled/aligned</a>
<a href="/op?op=composites">composites</a>
<a href="/op?op=gray">grayscale</a>
<a href="/reread">reread</a>
<a href="/export?format=pdf">pdf</a>
<a href="/export?format=svg">svg</a>
<a href="/export?format=png">png</a>
<a href="/stats">stats</a>
<a href="/api/v1/sessions">api</a>
| window [%g, %g]
| clusters: <a href="/clusters?ids=">all</a> %s
</p>
<img id="v" src="/view.png" alt="schedule"
 onclick="fetch('/click?x='+event.offsetX+'&amp;y='+event.offsetY).then(r=>r.text()).then(t=>document.getElementById('info').textContent=t)">
<pre id="info">click a task for details</pre>
</body></html>
`

func (s *Server) viewPNG(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "image/png")
	if err := s.vp.Render().EncodePNG(w); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

func (s *Server) op(w http.ResponseWriter, r *http.Request) {
	switch r.URL.Query().Get("op") {
	case "zoomin":
		s.vp.Zoom(1.5)
	case "zoomout":
		s.vp.Zoom(1 / 1.5)
	case "left":
		s.vp.Pan(-0.25)
	case "right":
		s.vp.Pan(0.25)
	case "reset":
		s.vp.Reset()
	case "mode":
		if s.vp.Mode == core.AlignedView {
			s.vp.Mode = core.ScaledView
		} else {
			s.vp.Mode = core.AlignedView
		}
	case "composites":
		s.vp.Composites = !s.vp.Composites
	case "gray":
		s.gray = !s.gray
		s.vp.SetGrayscale(s.gray)
	default:
		http.Error(w, "unknown op", http.StatusBadRequest)
		return
	}
	http.Redirect(w, r, "/", http.StatusSeeOther)
}

func (s *Server) zoom(w http.ResponseWriter, r *http.Request) {
	x0, err0 := strconv.ParseFloat(r.URL.Query().Get("x0"), 64)
	x1, err1 := strconv.ParseFloat(r.URL.Query().Get("x1"), 64)
	if err0 != nil || err1 != nil {
		http.Error(w, "bad x0/x1", http.StatusBadRequest)
		return
	}
	s.vp.RubberBand(x0, x1)
	http.Redirect(w, r, "/", http.StatusSeeOther)
}

func (s *Server) wheel(w http.ResponseWriter, r *http.Request) {
	x, err := strconv.ParseFloat(r.URL.Query().Get("x"), 64)
	if err != nil {
		http.Error(w, "bad x", http.StatusBadRequest)
		return
	}
	factor := 1.25
	if r.URL.Query().Get("dir") == "down" {
		factor = 1 / factor
	}
	s.vp.ZoomAt(factor, x)
	http.Redirect(w, r, "/", http.StatusSeeOther)
}

func (s *Server) click(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	x, err0 := strconv.ParseFloat(q.Get("x"), 64)
	y, err1 := strconv.ParseFloat(q.Get("y"), 64)
	if err0 != nil || err1 != nil {
		http.Error(w, "bad x/y", http.StatusBadRequest)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	info, ok := s.vp.TaskAt(x, y)
	if !ok {
		fmt.Fprintln(w, "(no task)")
		return
	}
	fmt.Fprint(w, info.String())
}

func (s *Server) clusters(w http.ResponseWriter, r *http.Request) {
	raw := r.URL.Query().Get("ids")
	if raw == "" {
		s.vp.SelectClusters(nil)
		http.Redirect(w, r, "/", http.StatusSeeOther)
		return
	}
	var ids []int
	for _, part := range strings.Split(raw, ",") {
		id, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			http.Error(w, "bad ids", http.StatusBadRequest)
			return
		}
		ids = append(ids, id)
	}
	s.vp.SelectClusters(ids)
	http.Redirect(w, r, "/", http.StatusSeeOther)
}

func (s *Server) recolor(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	typ := q.Get("type")
	if typ == "" {
		http.Error(w, "missing type", http.StatusBadRequest)
		return
	}
	bg, err := colormap.ParseRGB(q.Get("bg"))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	c := colormap.Colors{FG: colormap.RGB(0, 0, 0), BG: bg}
	if fgRaw := q.Get("fg"); fgRaw != "" {
		fg, err := colormap.ParseRGB(fgRaw)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		c.FG = fg
	}
	s.vp.Recolor(typ, c)
	http.Redirect(w, r, "/", http.StatusSeeOther)
}

func (s *Server) reread(w http.ResponseWriter, r *http.Request) {
	if err := s.vp.Reread(); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	// Keep the API session pointing at the freshly loaded schedule.
	s.sess.Replace(s.vp.Schedule())
	http.Redirect(w, r, "/", http.StatusSeeOther)
}

// export downloads the current view. All formats run through the one
// options-driven render.Encode path, so PNG honors the same window,
// cluster selection, and color map as PDF and SVG, and every format gets
// the same attachment disposition.
func (s *Server) export(w http.ResponseWriter, r *http.Request) {
	format := r.URL.Query().Get("format")
	if format == "" {
		format = "png"
	}
	ct, ok := render.ContentType(format)
	if !ok {
		http.Error(w, fmt.Sprintf("unknown format %q (want %s)",
			format, strings.Join(render.EncodeFormats(), ", ")), http.StatusBadRequest)
		return
	}
	sched := s.vp.Schedule()
	opts := render.Options{
		Mode: s.vp.Mode, Map: s.vp.Map, Clusters: s.vp.SelectedClusters(),
		Labels: s.vp.Labels, Composites: s.vp.Composites,
	}
	win := s.vp.Window()
	if full := sched.Extent(); win != full {
		opts.Window = &win
	}
	var buf bytes.Buffer
	if err := render.Encode(&buf, format, sched, s.vp.Width, s.vp.Height, opts); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", ct)
	w.Header().Set("Content-Disposition", fmt.Sprintf(`attachment; filename="schedule.%s"`, format))
	w.Header().Set("Content-Length", strconv.Itoa(buf.Len()))
	buf.WriteTo(w) //nolint:errcheck
}
