package view

import (
	"fmt"
	"html"

	"net/http"
	"repro/internal/colormap"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/pdf"
	"repro/internal/render"
	"repro/internal/svg"
)

// Server exposes a Viewport over HTTP, standing in for the Swing window of
// the original tool. The page at / shows the schedule; every interactive
// gesture maps to an endpoint:
//
//	GET /view.png          current view as PNG
//	GET /op?op=zoomin      keyboard zoom in (also zoomout, reset)
//	GET /op?op=left        pan (also right)
//	GET /op?op=mode        toggle scaled/aligned view
//	GET /op?op=composites  toggle composite-task overlay
//	GET /op?op=gray        toggle grayscale colors
//	GET /recolor?type=X&bg=rrggbb[&fg=rrggbb]  recolor one task type live
//	GET /zoom?x0=&x1=      rubber-band zoom between two pixel columns
//	GET /wheel?x=&dir=up   mouse-wheel zoom at a pixel column
//	GET /click?x=&y=       task info under the cursor (text/plain)
//	GET /clusters?ids=0,1  cluster selection (empty ids = all)
//	GET /reread            reload the schedule file
//	GET /export?format=pdf download the current view (pdf, svg, png)
type Server struct {
	vp   *Viewport
	gray bool
}

// NewServer wraps a viewport.
func NewServer(vp *Viewport) *Server { return &Server{vp: vp} }

// Handler returns the HTTP routes.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/", s.index)
	mux.HandleFunc("/view.png", s.viewPNG)
	mux.HandleFunc("/op", s.op)
	mux.HandleFunc("/zoom", s.zoom)
	mux.HandleFunc("/wheel", s.wheel)
	mux.HandleFunc("/click", s.click)
	mux.HandleFunc("/clusters", s.clusters)
	mux.HandleFunc("/recolor", s.recolor)
	mux.HandleFunc("/reread", s.reread)
	mux.HandleFunc("/export", s.export)
	return mux
}

// ListenAndServe runs the viewer on addr.
func (s *Server) ListenAndServe(addr string) error {
	return http.ListenAndServe(addr, s.Handler())
}

func (s *Server) index(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	sched := s.vp.Schedule()
	win := s.vp.Window()
	var clusterLinks strings.Builder
	for _, c := range sched.Clusters {
		fmt.Fprintf(&clusterLinks, `<a href="/clusters?ids=%d">%s(%d)</a> `,
			c.ID, html.EscapeString(clusterName(c)), c.Hosts)
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	fmt.Fprintf(w, indexPage,
		win.Min, win.Max, clusterLinks.String())
}

const indexPage = `<!DOCTYPE html>
<html><head><title>jedule viewer</title></head>
<body>
<p>
<a href="/op?op=zoomin">zoom in</a>
<a href="/op?op=zoomout">zoom out</a>
<a href="/op?op=left">&larr; pan</a>
<a href="/op?op=right">pan &rarr;</a>
<a href="/op?op=reset">reset</a>
<a href="/op?op=mode">scaled/aligned</a>
<a href="/op?op=composites">composites</a>
<a href="/op?op=gray">grayscale</a>
<a href="/reread">reread</a>
<a href="/export?format=pdf">pdf</a>
<a href="/export?format=svg">svg</a>
<a href="/export?format=png">png</a>
| window [%g, %g]
| clusters: <a href="/clusters?ids=">all</a> %s
</p>
<img id="v" src="/view.png" alt="schedule"
 onclick="fetch('/click?x='+event.offsetX+'&amp;y='+event.offsetY).then(r=>r.text()).then(t=>document.getElementById('info').textContent=t)">
<pre id="info">click a task for details</pre>
</body></html>
`

func clusterName(c core.Cluster) string {
	if c.Name != "" {
		return c.Name
	}
	return fmt.Sprintf("cluster%d", c.ID)
}

func (s *Server) viewPNG(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "image/png")
	if err := s.vp.Render().EncodePNG(w); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

func (s *Server) op(w http.ResponseWriter, r *http.Request) {
	switch r.URL.Query().Get("op") {
	case "zoomin":
		s.vp.Zoom(1.5)
	case "zoomout":
		s.vp.Zoom(1 / 1.5)
	case "left":
		s.vp.Pan(-0.25)
	case "right":
		s.vp.Pan(0.25)
	case "reset":
		s.vp.Reset()
	case "mode":
		if s.vp.Mode == core.AlignedView {
			s.vp.Mode = core.ScaledView
		} else {
			s.vp.Mode = core.AlignedView
		}
	case "composites":
		s.vp.Composites = !s.vp.Composites
	case "gray":
		s.gray = !s.gray
		s.vp.SetGrayscale(s.gray)
	default:
		http.Error(w, "unknown op", http.StatusBadRequest)
		return
	}
	http.Redirect(w, r, "/", http.StatusSeeOther)
}

func (s *Server) zoom(w http.ResponseWriter, r *http.Request) {
	x0, err0 := strconv.ParseFloat(r.URL.Query().Get("x0"), 64)
	x1, err1 := strconv.ParseFloat(r.URL.Query().Get("x1"), 64)
	if err0 != nil || err1 != nil {
		http.Error(w, "bad x0/x1", http.StatusBadRequest)
		return
	}
	s.vp.RubberBand(x0, x1)
	http.Redirect(w, r, "/", http.StatusSeeOther)
}

func (s *Server) wheel(w http.ResponseWriter, r *http.Request) {
	x, err := strconv.ParseFloat(r.URL.Query().Get("x"), 64)
	if err != nil {
		http.Error(w, "bad x", http.StatusBadRequest)
		return
	}
	factor := 1.25
	if r.URL.Query().Get("dir") == "down" {
		factor = 1 / factor
	}
	s.vp.ZoomAt(factor, x)
	http.Redirect(w, r, "/", http.StatusSeeOther)
}

func (s *Server) click(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	x, err0 := strconv.ParseFloat(q.Get("x"), 64)
	y, err1 := strconv.ParseFloat(q.Get("y"), 64)
	if err0 != nil || err1 != nil {
		http.Error(w, "bad x/y", http.StatusBadRequest)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	info, ok := s.vp.TaskAt(x, y)
	if !ok {
		fmt.Fprintln(w, "(no task)")
		return
	}
	fmt.Fprint(w, info.String())
}

func (s *Server) clusters(w http.ResponseWriter, r *http.Request) {
	raw := r.URL.Query().Get("ids")
	if raw == "" {
		s.vp.SelectClusters(nil)
		http.Redirect(w, r, "/", http.StatusSeeOther)
		return
	}
	var ids []int
	for _, part := range strings.Split(raw, ",") {
		id, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			http.Error(w, "bad ids", http.StatusBadRequest)
			return
		}
		ids = append(ids, id)
	}
	s.vp.SelectClusters(ids)
	http.Redirect(w, r, "/", http.StatusSeeOther)
}

func (s *Server) recolor(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	typ := q.Get("type")
	if typ == "" {
		http.Error(w, "missing type", http.StatusBadRequest)
		return
	}
	bg, err := colormap.ParseRGB(q.Get("bg"))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	c := colormap.Colors{FG: colormap.RGB(0, 0, 0), BG: bg}
	if fgRaw := q.Get("fg"); fgRaw != "" {
		fg, err := colormap.ParseRGB(fgRaw)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		c.FG = fg
	}
	s.vp.Recolor(typ, c)
	http.Redirect(w, r, "/", http.StatusSeeOther)
}

func (s *Server) reread(w http.ResponseWriter, r *http.Request) {
	if err := s.vp.Reread(); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	http.Redirect(w, r, "/", http.StatusSeeOther)
}

func (s *Server) export(w http.ResponseWriter, r *http.Request) {
	format := r.URL.Query().Get("format")
	sched := s.vp.Schedule()
	opts := render.Options{
		Mode: s.vp.Mode, Map: s.vp.Map, Clusters: s.vp.SelectedClusters(),
		Labels: s.vp.Labels, Composites: s.vp.Composites,
	}
	win := s.vp.Window()
	full := sched.Extent()
	if win != full {
		opts.Window = &win
	}
	switch format {
	case "png":
		s.viewPNG(w, r)
	case "pdf":
		c := pdf.New(float64(s.vp.Width), float64(s.vp.Height))
		render.Render(c, sched, opts)
		w.Header().Set("Content-Type", "application/pdf")
		w.Header().Set("Content-Disposition", `attachment; filename="schedule.pdf"`)
		if err := c.Encode(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	case "svg":
		c := svg.New(float64(s.vp.Width), float64(s.vp.Height))
		render.Render(c, sched, opts)
		w.Header().Set("Content-Type", "image/svg+xml")
		if err := c.Encode(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	default:
		http.Error(w, "unknown format (want png, pdf, svg)", http.StatusBadRequest)
	}
}
