package view

import (
	"math"
	"strings"
	"testing"

	"repro/internal/colormap"
	"repro/internal/core"
	"repro/internal/jedxml"
)

func demoSchedule() *core.Schedule {
	s := core.New(
		core.Cluster{ID: 0, Name: "alpha", Hosts: 8},
		core.Cluster{ID: 1, Name: "beta", Hosts: 4},
	)
	s.Add("1", "computation", 0, 100, 0, 8)
	s.Add("2", "computation", 20, 60, 0, 4)
	s.AddTask(core.Task{ID: "3", Type: "transfer", Start: 100, End: 120,
		Allocations: []core.Allocation{{Cluster: 1, Hosts: []core.HostRange{{Start: 0, N: 4}}}}})
	return s
}

func approx(a, b float64) bool { return math.Abs(a-b) < 1e-6*(1+math.Abs(b)) }

func TestWindowDefaults(t *testing.T) {
	v := New(demoSchedule(), 800, 600)
	if w := v.Window(); w != (core.Extent{Min: 0, Max: 120}) {
		t.Fatalf("default window = %v", w)
	}
}

func TestZoomAndReset(t *testing.T) {
	v := New(demoSchedule(), 800, 600)
	v.Zoom(2)
	w := v.Window()
	if !approx(w.Span(), 60) {
		t.Fatalf("zoomed span = %g, want 60", w.Span())
	}
	if !approx((w.Min+w.Max)/2, 60) {
		t.Fatalf("zoom did not keep center: %v", w)
	}
	v.Reset()
	if w := v.Window(); w.Span() != 120 {
		t.Fatalf("reset window = %v", w)
	}
	// Zooming out past the full extent clamps to it.
	v.Zoom(0.1)
	if w := v.Window(); w.Span() != 120 {
		t.Fatalf("over-zoom-out window = %v", w)
	}
	// Invalid factor is ignored.
	v.Zoom(-1)
	if w := v.Window(); w.Span() != 120 {
		t.Fatal("negative factor changed the window")
	}
}

func TestZoomAtKeepsCursorTime(t *testing.T) {
	v := New(demoSchedule(), 800, 600)
	l := v.Layout()
	p := l.Panels[0]
	cursor := p.Transform.XToScreen(30) // time 30 under the cursor
	v.ZoomAt(2, cursor)
	// After zooming, time 30 must still be at the same screen position.
	l2 := v.Layout()
	back := l2.Panels[0].Transform.XToWorld(cursor)
	if !approx(back, 30) {
		t.Fatalf("cursor time drifted: %g, want 30 (window %v)", back, v.Window())
	}
}

func TestZoomMinimumSpan(t *testing.T) {
	v := New(demoSchedule(), 800, 600)
	for i := 0; i < 100; i++ {
		v.Zoom(10)
	}
	if span := v.Window().Span(); span <= 0 {
		t.Fatalf("span collapsed to %g", span)
	}
}

func TestPanClamped(t *testing.T) {
	v := New(demoSchedule(), 800, 600)
	v.Zoom(4) // span 30, centered at 60: [45, 75]
	v.Pan(0.5)
	w := v.Window()
	if !approx(w.Min, 60) || !approx(w.Max, 90) {
		t.Fatalf("pan window = %v, want [60,90]", w)
	}
	// Pan far right: clamps at the extent end.
	for i := 0; i < 20; i++ {
		v.Pan(0.5)
	}
	w = v.Window()
	if !approx(w.Max, 120) {
		t.Fatalf("right-clamped window = %v", w)
	}
	// Pan far left: clamps at the start.
	for i := 0; i < 40; i++ {
		v.Pan(-0.5)
	}
	w = v.Window()
	if !approx(w.Min, 0) {
		t.Fatalf("left-clamped window = %v", w)
	}
	// Panning a full view is a no-op.
	v.Reset()
	v.Pan(0.25)
	if v.Window().Span() != 120 {
		t.Fatal("pan of full view changed the window")
	}
}

func TestRubberBand(t *testing.T) {
	v := New(demoSchedule(), 800, 600)
	l := v.Layout()
	p := l.Panels[0]
	x0 := p.Transform.XToScreen(20)
	x1 := p.Transform.XToScreen(60)
	v.RubberBand(x1, x0) // reversed arguments are normalized
	w := v.Window()
	if !approx(w.Min, 20) || !approx(w.Max, 60) {
		t.Fatalf("rubber-band window = %v, want [20,60]", w)
	}
}

func TestTaskAtClick(t *testing.T) {
	v := New(demoSchedule(), 800, 600)
	l := v.Layout()
	p := l.Panels[0]
	x := p.Transform.XToScreen(40)
	y := p.Transform.YToScreen(1.5) // host 1 of cluster 0: tasks 1 and 2
	info, ok := v.TaskAt(x, y)
	if !ok {
		t.Fatal("click hit nothing")
	}
	if info.ID != "1" && info.ID != "2" {
		t.Fatalf("clicked task = %q", info.ID)
	}
	if len(info.Resources[0]) == 0 {
		t.Fatal("info lacks resource list")
	}
	str := info.String()
	for _, want := range []string{"task " + info.ID, "start:", "finish:", "cluster 0 hosts:"} {
		if !strings.Contains(str, want) {
			t.Errorf("info %q missing %q", str, want)
		}
	}
	if _, ok := v.TaskAt(1, 1); ok {
		t.Error("background click hit a task")
	}
}

func TestTaskAtPrefersComposite(t *testing.T) {
	s := core.NewSingleCluster("c", 2)
	s.Add("a", "computation", 0, 10, 0, 2)
	s.Add("b", "transfer", 4, 6, 0, 2)
	v := New(s, 400, 300)
	v.Composites = true
	l := v.Layout()
	p := l.Panels[0]
	x := p.Transform.XToScreen(5)
	y := p.Transform.YToScreen(0.5)
	info, ok := v.TaskAt(x, y)
	if !ok || info.Type != core.CompositeType {
		t.Fatalf("click = %+v, %v; want composite on top", info, ok)
	}
}

func TestClusterSelection(t *testing.T) {
	v := New(demoSchedule(), 800, 600)
	v.SelectClusters([]int{1})
	l := v.Layout()
	if len(l.Panels) != 1 || l.Panels[0].Cluster.ID != 1 {
		t.Fatalf("panels = %+v", l.Panels)
	}
	if got := v.SelectedClusters(); len(got) != 1 || got[0] != 1 {
		t.Fatalf("SelectedClusters = %v", got)
	}
	v.SelectClusters(nil)
	if len(v.Layout().Panels) != 2 {
		t.Fatal("deselect failed")
	}
}

func TestOpenAndReread(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/s.jed"
	s := demoSchedule()
	if err := jedxml.WriteFile(path, s); err != nil {
		t.Fatal(err)
	}
	v, err := Open(path, 640, 480)
	if err != nil {
		t.Fatal(err)
	}
	if len(v.Schedule().Tasks) != 3 {
		t.Fatal("open lost tasks")
	}
	v.Zoom(2)
	v.SelectClusters([]int{0, 1})

	// The algorithm developer rewrites the file; reread picks it up.
	s2 := core.NewSingleCluster("gamma", 4)
	s2.Add("new", "computation", 0, 50, 0, 4)
	if err := jedxml.WriteFile(path, s2); err != nil {
		t.Fatal(err)
	}
	if err := v.Reread(); err != nil {
		t.Fatal(err)
	}
	if len(v.Schedule().Tasks) != 1 || v.Schedule().Tasks[0].ID != "new" {
		t.Fatal("reread did not reload")
	}
	// Cluster 1 vanished; selection keeps only cluster 0.
	if got := v.SelectedClusters(); len(got) != 1 || got[0] != 0 {
		t.Fatalf("selection after reread = %v", got)
	}
	// Window [30,60] still overlaps [0,50]: kept.
	if v.Window().Span() >= 50 {
		t.Fatalf("window lost: %v", v.Window())
	}
}

func TestRereadStaleWindowAndErrors(t *testing.T) {
	v := New(demoSchedule(), 100, 100)
	if err := v.Reread(); err == nil {
		t.Fatal("Reread without a file must error")
	}
	dir := t.TempDir()
	path := dir + "/s.jed"
	if err := jedxml.WriteFile(path, demoSchedule()); err != nil {
		t.Fatal(err)
	}
	v2, err := Open(path, 100, 100)
	if err != nil {
		t.Fatal(err)
	}
	// Zoom to the far end, then shrink the schedule so the zoom is stale.
	v2.RubberBand(90, 99)
	s2 := core.NewSingleCluster("c", 2)
	s2.Add("t", "computation", 0, 1, 0, 2) // extent [0,1]
	if err := jedxml.WriteFile(path, s2); err != nil {
		t.Fatal(err)
	}
	if err := v2.Reread(); err != nil {
		t.Fatal(err)
	}
	if v2.Window() != (core.Extent{Min: 0, Max: 1}) {
		t.Fatalf("stale window not dropped: %v", v2.Window())
	}
}

func TestRenderAndSnapshot(t *testing.T) {
	v := New(demoSchedule(), 320, 240)
	c := v.Render()
	if w, h := c.Size(); w != 320 || h != 240 {
		t.Fatalf("canvas = %g x %g", w, h)
	}
	dir := t.TempDir()
	for _, name := range []string{"snap.png", "snap.pdf", "snap.svg"} {
		if err := v.Snapshot(dir + "/" + name); err != nil {
			t.Errorf("Snapshot(%s): %v", name, err)
		}
	}
}

func TestSetGrayscaleAndRecolor(t *testing.T) {
	v := New(demoSchedule(), 100, 100)
	v.SetGrayscale(true)
	c := v.Map.Lookup("computation").BG
	if c.R != c.G || c.G != c.B {
		t.Fatal("SetGrayscale(true) not gray")
	}
	v.SetGrayscale(false)
	c = v.Map.Lookup("computation").BG
	if c.R == c.G && c.G == c.B {
		t.Fatal("SetGrayscale(false) did not restore")
	}
	// Recolor derives a fresh map; the default map is untouched.
	v.Recolor("transfer", colormap.Colors{FG: colormap.RGB(1, 1, 1), BG: colormap.RGB(9, 9, 9)})
	if v.Map.Lookup("transfer").BG != colormap.RGB(9, 9, 9) {
		t.Fatal("recolor missing")
	}
	if colormap.Default().Lookup("transfer").BG == colormap.RGB(9, 9, 9) {
		t.Fatal("recolor mutated the shared default map")
	}
	// Nil-map viewports work too.
	v2 := &Viewport{sched: demoSchedule(), Width: 10, Height: 10}
	v2.SetGrayscale(true)
	v2.Recolor("x", colormap.Colors{})
}
