package fleet

import (
	"fmt"
	"time"

	"repro/internal/campaign"
	"repro/internal/jobs"
)

// RunConfig describes one campaign's shard queue. The coordinator resolves
// the spec, enumerates the cells, and decides which shards still need to
// run (resume skips the ones already checkpointed); the fleet only hands
// them out and verifies what comes back.
type RunConfig struct {
	// Spec is the shardless campaign spec; assignments carry it with Shard
	// set to the leased "k/n".
	Spec jobs.CampaignSpec
	// Shards is the n of k/n.
	Shards int
	// Pending lists the 1-based shard numbers still to execute.
	Pending []int
	// Header is the campaign identity every completion is verified against.
	Header campaign.Header
	// CellCount is the full factorial size, bounding cell indices.
	CellCount int
	// MaxAttempts bounds how often one shard may be leased before the run
	// fails (0 means 3). Lease expiry and verification failure burn an
	// attempt; a discarded duplicate does not.
	MaxAttempts int
	// Trace is the coordinator's request-trace ID. It rides along on every
	// lease assignment so workers can stamp their logs with it, and comes
	// back on each completion.
	Trace string
}

// ShardDone is one delivery on a Run's completion channel: a verified shard
// with its cells, or the terminal error that failed the run.
type ShardDone struct {
	K      int
	Worker string
	Cells  []campaign.Cell
	Err    error
	// Elapsed is the wall time from lease grant to verified completion —
	// the fleet's per-shard latency measure.
	Elapsed time.Duration
	// Trace echoes the trace ID the completing worker reported.
	Trace string
}

// ShardState mirrors the coordinator's per-shard progress view.
type ShardState struct {
	K        int
	State    string // pending | running | done
	Worker   string
	Attempts int
}

// shardTask is one queued shard plus its attempt history.
type shardTask struct {
	k        int
	attempts int
}

// shardLease is one granted shard: who holds it and until when.
type shardLease struct {
	id       string
	run      *Run
	k        int
	worker   string
	granted  time.Time
	expires  time.Time
	attempts int
}

// Run is the shard queue of one campaign. All state is guarded by the
// owning Manager's mutex.
type Run struct {
	id          string
	m           *Manager
	spec        jobs.CampaignSpec
	shards      int
	header      campaign.Header
	cellCount   int
	maxAttempts int
	trace       string

	queue       []shardTask
	leases      map[string]*shardLease // lease ID -> lease
	done        map[int]bool
	remaining   int
	ended       bool
	completions chan ShardDone
}

// StartRun opens a shard queue for the campaign; workers pulling leases
// will start receiving its shards immediately. The returned Run's
// Completions channel delivers each shard exactly once (or one terminal
// error), and is buffered to the full shard count so the manager never
// blocks on a slow consumer.
func (m *Manager) StartRun(rc RunConfig) (*Run, error) {
	if rc.Shards < 1 {
		return nil, fmt.Errorf("fleet: bad shard count %d", rc.Shards)
	}
	if rc.MaxAttempts == 0 {
		rc.MaxAttempts = 3
	}
	if rc.MaxAttempts < 1 {
		return nil, fmt.Errorf("fleet: bad attempt budget %d", rc.MaxAttempts)
	}
	if rc.Spec.Shard != "" {
		return nil, fmt.Errorf("fleet: spec must not set shard %q", rc.Spec.Shard)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.runSeq++
	r := &Run{
		id:          fmt.Sprintf("r%d", m.runSeq),
		m:           m,
		spec:        rc.Spec,
		shards:      rc.Shards,
		header:      rc.Header,
		cellCount:   rc.CellCount,
		maxAttempts: rc.MaxAttempts,
		trace:       rc.Trace,
		leases:      map[string]*shardLease{},
		done:        map[int]bool{},
		remaining:   len(rc.Pending),
		completions: make(chan ShardDone, len(rc.Pending)+1),
	}
	for _, k := range rc.Pending {
		if k < 1 || k > rc.Shards {
			return nil, fmt.Errorf("fleet: pending shard %d outside 1..%d", k, rc.Shards)
		}
		r.queue = append(r.queue, shardTask{k: k})
	}
	m.runs = append(m.runs, r)
	m.logf("fleet: run %s opened (%d shards pending)", r.id, len(rc.Pending))
	m.event(Event{Type: "run_start", Run: r.id, Shards: rc.Shards})
	return r, nil
}

// ID returns the manager-assigned run identifier.
func (r *Run) ID() string { return r.id }

// Completions is the delivery channel: one ShardDone per verified shard,
// or a single ShardDone carrying the terminal error.
func (r *Run) Completions() <-chan ShardDone { return r.completions }

// Snapshot reports per-shard progress for the pending shards.
func (r *Run) Snapshot() []ShardState {
	r.m.mu.Lock()
	defer r.m.mu.Unlock()
	states := map[int]ShardState{}
	for _, t := range r.queue {
		states[t.k] = ShardState{K: t.k, State: "pending", Attempts: t.attempts}
	}
	for _, l := range r.leases {
		states[l.k] = ShardState{K: l.k, State: "running", Worker: l.worker, Attempts: l.attempts}
	}
	for k := range r.done {
		states[k] = ShardState{K: k, State: "done"}
	}
	out := make([]ShardState, 0, len(states))
	for k := 1; k <= r.shards; k++ {
		if s, ok := states[k]; ok {
			out = append(out, s)
		}
	}
	return out
}

// End closes the queue: outstanding leases become inert (their completions
// are discarded) and no further shards are handed out. Idempotent; safe
// after the run finished on its own.
func (r *Run) End() {
	r.m.mu.Lock()
	defer r.m.mu.Unlock()
	r.m.endRunLocked(r)
}

func (m *Manager) endRunLocked(r *Run) {
	if r.ended {
		return
	}
	r.ended = true
	for _, l := range r.leases {
		if w, ok := m.workers[l.worker]; ok && w.lease == l {
			w.lease = nil
		}
	}
	r.leases = map[string]*shardLease{}
	r.queue = nil
	for i, run := range m.runs {
		if run == r {
			m.runs = append(m.runs[:i], m.runs[i+1:]...)
			break
		}
	}
	m.logf("fleet: run %s closed", r.id)
	m.event(Event{Type: "run_end", Run: r.id})
}

// failLocked ends the run with a terminal error on the completion channel.
func (r *Run) failLocked(err error) {
	if r.ended {
		return
	}
	r.completions <- ShardDone{Err: err}
	r.m.endRunLocked(r)
}

// Assignment is one leased shard, as sent to the worker: the campaign spec
// with Shard set, plus the lease identity the completion must echo.
type Assignment struct {
	Run      string            `json:"run"`
	Lease    string            `json:"lease"`
	Shard    int               `json:"shard"`  // k
	Shards   int               `json:"shards"` // n
	Spec     jobs.CampaignSpec `json:"spec"`
	LeaseTTL float64           `json:"lease_ttl_seconds"`
	// Trace is the coordinated run's trace ID; the worker stamps it on its
	// logs and echoes it in the completion report.
	Trace string `json:"trace,omitempty"`
}

// Lease hands the next unowned shard to the worker — the pull that makes
// work stealing automatic. nil with a nil error means no work is available
// (queues empty, or the worker is draining). A lease request is proof of
// life, so it also renews the worker's registration.
func (m *Manager) Lease(workerID string) (*Assignment, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.expireLocked(m.now())
	w, ok := m.workers[workerID]
	if !ok {
		return nil, ErrUnknownWorker
	}
	w.lastSeen = m.now()
	if w.draining {
		return nil, nil
	}
	if l := w.lease; l != nil {
		// A worker asking for new work while we think it still holds a
		// shard has abandoned it (crashed loop, lost response): requeue.
		w.lease = nil
		m.requeueLocked(l, false)
	}
	for _, r := range m.runs {
		if len(r.queue) == 0 {
			continue
		}
		t := r.queue[0]
		r.queue = r.queue[1:]
		m.leaseSeq++
		l := &shardLease{
			id:       fmt.Sprintf("l%d", m.leaseSeq),
			run:      r,
			k:        t.k,
			worker:   w.id,
			granted:  m.now(),
			expires:  m.now().Add(m.cfg.LeaseTTL),
			attempts: t.attempts + 1,
		}
		r.leases[l.id] = l
		w.lease = l
		m.stats.LeasesGranted++
		spec := r.spec
		spec.Shard = fmt.Sprintf("%d/%d", t.k, r.shards)
		m.logf("fleet: shard %s of %s -> worker %s (lease %s, attempt %d)",
			spec.Shard, r.id, w.id, l.id, l.attempts)
		m.event(Event{Type: "lease", Worker: w.id, Run: r.id, Shard: t.k, Shards: r.shards})
		return &Assignment{
			Run: r.id, Lease: l.id, Shard: t.k, Shards: r.shards,
			Spec:     spec,
			LeaseTTL: m.cfg.LeaseTTL.Seconds(),
			Trace:    r.trace,
		}, nil
	}
	return nil, nil
}

// requeueLocked returns a leased shard to the front of its run's queue (a
// reclaimed shard should be picked up before untouched ones). stolen marks
// the reassigned-while-healthy case for the counters. A shard that already
// burned its attempt budget fails the whole run instead.
func (m *Manager) requeueLocked(l *shardLease, stolen bool) {
	r := l.run
	delete(r.leases, l.id)
	if r.ended || r.done[l.k] {
		return
	}
	m.stats.LeasesExpired++
	if stolen {
		m.stats.ShardsStolen++
		m.logf("fleet: shard %d/%d of %s stolen from %s (lease %s expired)",
			l.k, r.shards, r.id, l.worker, l.id)
		m.event(Event{Type: "steal", Worker: l.worker, Run: r.id, Shard: l.k, Shards: r.shards})
	} else {
		m.event(Event{Type: "requeue", Worker: l.worker, Run: r.id, Shard: l.k, Shards: r.shards})
	}
	if l.attempts >= r.maxAttempts {
		r.failLocked(fmt.Errorf("fleet: shard %d/%d failed after %d attempts (last lease %s on %s expired)",
			l.k, r.shards, l.attempts, l.id, l.worker))
		return
	}
	r.queue = append([]shardTask{{k: l.k, attempts: l.attempts}}, r.queue...)
}

// CompleteRequest is a worker reporting one finished shard.
type CompleteRequest struct {
	Run    string          `json:"run"`
	Lease  string          `json:"lease"`
	Shard  int             `json:"shard"`
	Header campaign.Header `json:"header"`
	Cells  []campaign.Cell `json:"cells"`
	// Trace echoes the Assignment's trace ID back to the coordinator.
	Trace string `json:"trace,omitempty"`
}

// CompleteResponse tells the worker what happened to its result. Accepted
// false with a reason is not an error: the shard was already completed by
// someone else (a stolen lease racing its original holder) or the run
// ended — the worker just moves on.
type CompleteResponse struct {
	Accepted bool   `json:"accepted"`
	Reason   string `json:"reason,omitempty"`
}

// Complete verifies and records one finished shard. The first verified
// result for a shard wins, regardless of whether the reporting lease has
// expired meanwhile; later duplicates are discarded. A result failing the
// campaign-identity or cell-bounds check is an error (the fleet's version
// of the coordinator's header guard) and requeues the shard.
func (m *Manager) Complete(workerID string, req CompleteRequest) (CompleteResponse, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.expireLocked(m.now())
	w, ok := m.workers[workerID]
	if !ok {
		return CompleteResponse{}, ErrUnknownWorker
	}
	w.lastSeen = m.now()
	var r *Run
	for _, run := range m.runs {
		if run.id == req.Run {
			r = run
			break
		}
	}
	if r == nil {
		return CompleteResponse{Reason: fmt.Sprintf("run %s ended", req.Run)}, nil
	}
	if req.Shard < 1 || req.Shard > r.shards {
		return CompleteResponse{}, fmt.Errorf("fleet: shard %d outside 1..%d", req.Shard, r.shards)
	}
	if r.done[req.Shard] {
		m.stats.DuplicatesDiscarded++
		if w.lease != nil && w.lease.run == r && w.lease.k == req.Shard {
			delete(r.leases, w.lease.id)
			w.lease = nil
		}
		m.logf("fleet: duplicate completion of shard %d/%d of %s by %s discarded",
			req.Shard, r.shards, r.id, w.id)
		m.event(Event{Type: "duplicate", Worker: w.id, Run: r.id, Shard: req.Shard, Shards: r.shards})
		return CompleteResponse{Reason: "shard already complete (first verified result won)"}, nil
	}
	if err := m.verifyLocked(r, req); err != nil {
		// The result is unusable; if this worker held the live lease, the
		// shard goes back to the queue with the attempt burned.
		if w.lease != nil && w.lease.run == r && w.lease.k == req.Shard {
			l := w.lease
			w.lease = nil
			m.requeueLocked(l, false)
		}
		return CompleteResponse{}, err
	}
	// Accept: drop every live lease on this shard — the holder's own, and a
	// thief's still in flight (its eventual completion becomes a duplicate).
	// The reporting worker's own lease (when still live) dates the shard's
	// wall time; a completion whose lease already expired reports zero.
	var elapsed time.Duration
	for id, l := range r.leases {
		if l.k != req.Shard {
			continue
		}
		if l.worker == w.id {
			elapsed = m.now().Sub(l.granted)
		}
		if lw, ok := m.workers[l.worker]; ok && lw.lease == l {
			lw.lease = nil
		}
		delete(r.leases, id)
	}
	for i, t := range r.queue {
		if t.k == req.Shard {
			r.queue = append(r.queue[:i], r.queue[i+1:]...)
			break
		}
	}
	r.done[req.Shard] = true
	r.remaining--
	w.shardsDone++
	m.stats.ShardsCompleted++
	m.logf("fleet: shard %d/%d of %s completed by %s (%d cells, %d shards left)",
		req.Shard, r.shards, r.id, w.id, len(req.Cells), r.remaining)
	m.event(Event{Type: "complete", Worker: w.id, Run: r.id, Shard: req.Shard, Shards: r.shards})
	r.completions <- ShardDone{K: req.Shard, Worker: w.id, Cells: req.Cells,
		Elapsed: elapsed, Trace: req.Trace}
	if r.remaining == 0 {
		m.endRunLocked(r)
	}
	return CompleteResponse{Accepted: true}, nil
}

// verifyLocked is the identity and bounds guard on a completion: the header
// must match the campaign exactly, and the cells must be precisely the
// shard's slice of the enumeration — no more, no less, no strays.
func (m *Manager) verifyLocked(r *Run, req CompleteRequest) error {
	if err := req.Header.Equal(r.header); err != nil {
		return err
	}
	want := 0
	if req.Shard <= r.cellCount {
		want = (r.cellCount-req.Shard)/r.shards + 1
	}
	if len(req.Cells) != want {
		return fmt.Errorf("fleet: shard %d/%d returned %d cells, want %d",
			req.Shard, r.shards, len(req.Cells), want)
	}
	seen := map[int]bool{}
	for _, cell := range req.Cells {
		if cell.Index < 0 || cell.Index >= r.cellCount || cell.Index%r.shards != req.Shard-1 {
			return fmt.Errorf("fleet: cell %d outside shard %d/%d", cell.Index, req.Shard, r.shards)
		}
		if seen[cell.Index] {
			return fmt.Errorf("fleet: cell %d duplicated within shard %d/%d", cell.Index, req.Shard, r.shards)
		}
		seen[cell.Index] = true
	}
	return nil
}
