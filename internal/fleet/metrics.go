package fleet

import "repro/internal/obs"

// RegisterMetrics exposes the manager's counters and gauges on r as callback
// metrics, so each scrape reads the live Stats() snapshot in one pass. Both
// jedserve (api.SetFleet) and jedcoord's embedded fleet endpoint use it.
func RegisterMetrics(r *obs.Registry, m *Manager) {
	stat := func(f func(Stats) float64) func() float64 {
		return func() float64 { return f(m.Stats()) }
	}
	counters := []struct {
		name, help string
		f          func(Stats) float64
	}{
		{"jed_fleet_workers_joined_total", "Workers that ever joined.",
			func(s Stats) float64 { return float64(s.WorkersJoined) }},
		{"jed_fleet_workers_retired_total", "Workers retired after missed heartbeats.",
			func(s Stats) float64 { return float64(s.WorkersRetired) }},
		{"jed_fleet_workers_left_total", "Workers that left voluntarily.",
			func(s Stats) float64 { return float64(s.WorkersLeft) }},
		{"jed_fleet_leases_granted_total", "Shard leases granted.",
			func(s Stats) float64 { return float64(s.LeasesGranted) }},
		{"jed_fleet_leases_expired_total", "Leases that outlived their TTL.",
			func(s Stats) float64 { return float64(s.LeasesExpired) }},
		{"jed_fleet_shards_stolen_total", "Expired-lease shards requeued for theft.",
			func(s Stats) float64 { return float64(s.ShardsStolen) }},
		{"jed_fleet_shards_completed_total", "Shards completed and verified.",
			func(s Stats) float64 { return float64(s.ShardsCompleted) }},
		{"jed_fleet_duplicates_discarded_total", "Duplicate shard completions discarded.",
			func(s Stats) float64 { return float64(s.DuplicatesDiscarded) }},
	}
	for _, c := range counters {
		r.CounterFunc(c.name, c.help, stat(c.f))
	}
	gauges := []struct {
		name, help string
		f          func(Stats) float64
	}{
		{"jed_fleet_workers_active", "Workers currently holding a live heartbeat lease.",
			func(s Stats) float64 { return float64(s.WorkersActive) }},
		{"jed_fleet_workers_draining", "Workers finishing their last shard before leaving.",
			func(s Stats) float64 { return float64(s.WorkersDraining) }},
		{"jed_fleet_queue_depth", "Shards waiting for a worker lease.",
			func(s Stats) float64 { return float64(s.QueueDepth) }},
		{"jed_fleet_active_leases", "Shard leases currently outstanding.",
			func(s Stats) float64 { return float64(s.ActiveLeases) }},
		{"jed_fleet_active_runs", "Campaign runs currently dispatching.",
			func(s Stats) float64 { return float64(s.ActiveRuns) }},
	}
	for _, g := range gauges {
		r.GaugeFunc(g.name, g.help, stat(g.f))
	}
}
