// Package fleet is the elastic worker fleet behind distributed campaigns:
// instead of the coordinator pushing shards at a hand-listed pool of
// machines, workers *join* the coordinator, hold a heartbeat lease proving
// they are alive, and *pull* shards from a coordinator-owned queue. Fast
// workers come back for more work sooner, so load balances itself — the
// pull loop is the work-stealing mechanism — and capacity is elastic: a
// worker may join or leave mid-campaign without anyone editing a flag.
//
// Liveness is lease-based on two clocks. A worker silent past the worker
// TTL (a small multiple of the advertised heartbeat interval) is retired
// and its in-flight shards return to the queue. Independently, a shard
// lease held past the lease TTL is requeued even if the holder still
// heartbeats — a healthy-but-slow machine loses the shard to a faster one
// (counted as stolen), and whichever copy finishes first wins: the first
// verified completion is accepted, late duplicates are discarded. Both
// TTLs come from an injectable clock, so expiry paths are unit-testable
// without sleeping.
package fleet

import (
	"context"
	"fmt"
	"sync"
	"time"
)

// Default protocol pacing: workers heartbeat every HeartbeatInterval, are
// retired after workerTTLFactor missed beats, and hold a shard for at most
// LeaseTTL before it is requeued for stealing.
const (
	DefaultHeartbeatInterval = 5 * time.Second
	DefaultLeaseTTL          = 2 * time.Minute
	workerTTLFactor          = 3
)

// ErrUnknownWorker is returned for worker IDs that never joined, already
// left, or were retired after missing heartbeats — the worker's cue to
// rejoin under a fresh identity.
var ErrUnknownWorker = fmt.Errorf("fleet: unknown worker (lease expired or never joined; rejoin)")

// Config tunes a Manager.
type Config struct {
	// HeartbeatInterval is advertised to joining workers; a worker silent
	// for workerTTLFactor intervals is retired. 0 means the default.
	HeartbeatInterval time.Duration
	// LeaseTTL bounds how long one worker may hold a shard before it is
	// requeued for another worker to steal. 0 means the default.
	LeaseTTL time.Duration
	// Clock overrides time.Now for tests.
	Clock func() time.Time
	// Logf, when set, receives human-readable fleet events.
	Logf func(format string, args ...any)
}

// Event is one fleet lifecycle notification: a worker joining or going
// away, a shard changing hands, a run opening or closing. The API server
// forwards these onto its event bus as topic "fleet". Types: join, left,
// retired, drain, lease, steal, requeue, complete, duplicate, run_start,
// run_end.
type Event struct {
	Type   string `json:"type"`
	Worker string `json:"worker,omitempty"`
	Run    string `json:"run,omitempty"`
	Shard  int    `json:"shard,omitempty"`  // k of k/n
	Shards int    `json:"shards,omitempty"` // n of k/n
	Detail string `json:"detail,omitempty"`
}

// Stats is the counter snapshot exposed on GET /api/v1/meta.
type Stats struct {
	WorkersJoined       int64 `json:"workers_joined"`
	WorkersActive       int   `json:"workers_active"`
	WorkersDraining     int   `json:"workers_draining"`
	WorkersRetired      int64 `json:"workers_retired"`
	WorkersLeft         int64 `json:"workers_left"`
	LeasesGranted       int64 `json:"leases_granted"`
	LeasesExpired       int64 `json:"leases_expired"`
	ShardsStolen        int64 `json:"shards_stolen"`
	ShardsCompleted     int64 `json:"shards_completed"`
	DuplicatesDiscarded int64 `json:"duplicates_discarded"`
	QueueDepth          int   `json:"queue_depth"`
	ActiveLeases        int   `json:"active_leases"`
	ActiveRuns          int   `json:"active_runs"`
}

// Worker is the externally visible state of one fleet member.
type Worker struct {
	ID           string            `json:"id"`
	Name         string            `json:"name,omitempty"`
	Capabilities map[string]string `json:"capabilities,omitempty"`
	State        string            `json:"state"` // active | draining
	Joined       time.Time         `json:"joined"`
	LastSeen     time.Time         `json:"last_seen"`
	ShardsDone   int               `json:"shards_done"`
	Lease        string            `json:"lease,omitempty"` // "k/n of <run>" while holding a shard
}

// workerState is the registry entry behind a Worker snapshot.
type workerState struct {
	id         string
	name       string
	caps       map[string]string
	joined     time.Time
	lastSeen   time.Time
	draining   bool
	shardsDone int
	lease      *shardLease // at most one outstanding shard per worker
}

// Manager owns the registry and the shard queues of the active runs. All
// state shares one mutex: every operation is a handful of map and slice
// touches, and fleets are measured in machines, not thousands.
type Manager struct {
	cfg Config

	mu        sync.Mutex
	workerSeq int
	leaseSeq  int
	runSeq    int
	workers   map[string]*workerState
	runs      []*Run
	joinWake  chan struct{} // closed and replaced on every join, for WaitWorkers
	stats     Stats
	onEvent   func(Event)
}

// NewManager validates the config and returns an empty fleet.
func NewManager(cfg Config) *Manager {
	if cfg.HeartbeatInterval <= 0 {
		cfg.HeartbeatInterval = DefaultHeartbeatInterval
	}
	if cfg.LeaseTTL <= 0 {
		cfg.LeaseTTL = DefaultLeaseTTL
	}
	if cfg.Clock == nil {
		cfg.Clock = time.Now
	}
	return &Manager{
		cfg:      cfg,
		workers:  map[string]*workerState{},
		joinWake: make(chan struct{}),
	}
}

// HeartbeatInterval returns the pacing advertised to joining workers.
func (m *Manager) HeartbeatInterval() time.Duration { return m.cfg.HeartbeatInterval }

// LeaseTTL returns the shard lease bound.
func (m *Manager) LeaseTTL() time.Duration { return m.cfg.LeaseTTL }

func (m *Manager) now() time.Time { return m.cfg.Clock() }

// workerTTL is how long a worker may stay silent before retirement.
func (m *Manager) workerTTL() time.Duration {
	return m.cfg.HeartbeatInterval * workerTTLFactor
}

func (m *Manager) logf(format string, args ...any) {
	if m.cfg.Logf != nil {
		m.cfg.Logf(format, args...)
	}
}

// SetOnEvent registers fn to receive every fleet lifecycle Event. fn runs
// with the manager lock held, so it must not call back into the Manager;
// publishing to an event bus (which never blocks) is the intended use.
func (m *Manager) SetOnEvent(fn func(Event)) {
	m.mu.Lock()
	m.onEvent = fn
	m.mu.Unlock()
}

// event fires the lifecycle hook. Callers hold m.mu.
func (m *Manager) event(e Event) {
	if m.onEvent != nil {
		m.onEvent(e)
	}
}

// Join registers a worker and returns its identity plus the protocol
// pacing. Workers that lose their registration (ErrUnknownWorker anywhere)
// simply join again.
func (m *Manager) Join(name string, caps map[string]string) Worker {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.expireLocked(m.now())
	m.workerSeq++
	w := &workerState{
		id:       fmt.Sprintf("w%d", m.workerSeq),
		name:     name,
		caps:     caps,
		joined:   m.now(),
		lastSeen: m.now(),
	}
	m.workers[w.id] = w
	m.stats.WorkersJoined++
	m.logf("fleet: worker %s (%s) joined", w.id, w.name)
	m.event(Event{Type: "join", Worker: w.id, Detail: w.name})
	close(m.joinWake)
	m.joinWake = make(chan struct{})
	return m.snapshotLocked(w)
}

// Heartbeat renews the worker's registration lease.
func (m *Manager) Heartbeat(id string) (Worker, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.expireLocked(m.now())
	w, ok := m.workers[id]
	if !ok {
		return Worker{}, ErrUnknownWorker
	}
	w.lastSeen = m.now()
	return m.snapshotLocked(w), nil
}

// Drain marks the worker draining: it receives no further shards but may
// finish and complete the one it holds — the graceful-shutdown half of the
// protocol (jedserve -join runs it on SIGTERM).
func (m *Manager) Drain(id string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.expireLocked(m.now())
	w, ok := m.workers[id]
	if !ok {
		return ErrUnknownWorker
	}
	w.lastSeen = m.now()
	if !w.draining {
		w.draining = true
		m.logf("fleet: worker %s draining", w.id)
		m.event(Event{Type: "drain", Worker: w.id})
	}
	return nil
}

// Leave deregisters the worker immediately, requeueing any shard it still
// holds. Leaving twice (or after retirement) is not an error.
func (m *Manager) Leave(id string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	w, ok := m.workers[id]
	if !ok {
		return
	}
	m.dropWorkerLocked(w, "left")
	m.stats.WorkersLeft++
}

// dropWorkerLocked removes a worker from the registry and requeues its
// outstanding shard lease. cause is for the log line.
func (m *Manager) dropWorkerLocked(w *workerState, cause string) {
	if l := w.lease; l != nil {
		w.lease = nil
		m.requeueLocked(l, false)
	}
	delete(m.workers, w.id)
	m.logf("fleet: worker %s (%s) %s", w.id, w.name, cause)
	typ := "retired"
	if cause == "left" {
		typ = "left"
	}
	m.event(Event{Type: typ, Worker: w.id, Detail: cause})
}

// Workers snapshots the registry, joined-order sorted by ID sequence.
func (m *Manager) Workers() []Worker {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.expireLocked(m.now())
	out := make([]Worker, 0, len(m.workers))
	for _, w := range m.workers {
		out = append(out, m.snapshotLocked(w))
	}
	sortWorkers(out)
	return out
}

func sortWorkers(ws []Worker) {
	// IDs are "w<seq>": compare numerically via length-then-lexicographic.
	for i := 1; i < len(ws); i++ {
		for j := i; j > 0 && lessID(ws[j].ID, ws[j-1].ID); j-- {
			ws[j], ws[j-1] = ws[j-1], ws[j]
		}
	}
}

func lessID(a, b string) bool {
	if len(a) != len(b) {
		return len(a) < len(b)
	}
	return a < b
}

func (m *Manager) snapshotLocked(w *workerState) Worker {
	out := Worker{
		ID: w.id, Name: w.name, Capabilities: w.caps,
		State:  "active",
		Joined: w.joined, LastSeen: w.lastSeen,
		ShardsDone: w.shardsDone,
	}
	if w.draining {
		out.State = "draining"
	}
	if w.lease != nil {
		out.Lease = fmt.Sprintf("%d/%d of %s", w.lease.k, w.lease.run.shards, w.lease.run.id)
	}
	return out
}

// ActiveWorkers counts the workers currently able to take shards.
func (m *Manager) ActiveWorkers() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.expireLocked(m.now())
	return m.activeLocked()
}

func (m *Manager) activeLocked() int {
	n := 0
	for _, w := range m.workers {
		if !w.draining {
			n++
		}
	}
	return n
}

// Stats snapshots the fleet counters.
func (m *Manager) Stats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.expireLocked(m.now())
	st := m.stats
	for _, w := range m.workers {
		if w.draining {
			st.WorkersDraining++
		} else {
			st.WorkersActive++
		}
		if w.lease != nil {
			st.ActiveLeases++
		}
	}
	for _, r := range m.runs {
		st.QueueDepth += len(r.queue)
	}
	st.ActiveRuns = len(m.runs)
	return st
}

// Tick drives lease and registration expiry. Worker traffic already expires
// lazily on every call; a coordinator loop tickles Tick so a fleet gone
// completely silent still retires its dead.
func (m *Manager) Tick() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.expireLocked(m.now())
}

// expireLocked retires workers silent past the worker TTL and requeues
// shard leases held past the lease TTL. Retirement requeues the victim's
// shard immediately — no point waiting out a lease nobody will complete.
func (m *Manager) expireLocked(now time.Time) {
	ttl := m.workerTTL()
	for _, w := range m.workers {
		if now.Sub(w.lastSeen) > ttl {
			m.dropWorkerLocked(w, "retired (missed heartbeats)")
			m.stats.WorkersRetired++
		}
	}
	// Snapshot the run list: a requeue exhausting a shard's attempt budget
	// fails and removes its run mid-iteration.
	runs := append([]*Run(nil), m.runs...)
	for _, r := range runs {
		for _, l := range r.leases {
			if now.After(l.expires) {
				// The holder is still registered (retirement above already
				// requeued the dead), so this is a steal: a healthy-but-slow
				// worker loses the shard to whoever pulls next.
				if w, ok := m.workers[l.worker]; ok && w.lease == l {
					w.lease = nil
				}
				m.requeueLocked(l, true)
			}
		}
	}
}

// WaitWorkers blocks until at least n workers are active (joined, not
// draining) or ctx expires — the "-min-workers" gate a fleet coordinator
// applies before dispatching the first shard.
func (m *Manager) WaitWorkers(ctx context.Context, n int) error {
	for {
		m.mu.Lock()
		m.expireLocked(m.now())
		count := m.activeLocked()
		wake := m.joinWake
		m.mu.Unlock()
		if count >= n {
			return nil
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-wake:
		case <-time.After(m.workerTTL() / 2):
			// Re-check on a timer too: joins wake us, but retirements do not.
		}
	}
}
