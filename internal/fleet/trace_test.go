package fleet_test

import (
	"testing"
	"time"

	"repro/internal/fleet"
)

// TestTracePropagation follows one trace ID through the whole pull protocol:
// the RunConfig's trace rides every Assignment, the worker echoes it on
// Complete, and the ShardDone hands it back to the coordinator together with
// the wall time measured from the worker's own lease grant.
func TestTracePropagation(t *testing.T) {
	clk := newFakeClock()
	m := fleet.NewManager(fleet.Config{Clock: clk.Now})
	w := m.Join("tracer", nil)

	header, cells := testIdentity(t)
	run, err := m.StartRun(fleet.RunConfig{
		Spec: testSpec(), Shards: 2, Pending: []int{1, 2},
		Header: header, CellCount: cells, MaxAttempts: 3,
		Trace: "trace-fleet-42",
	})
	if err != nil {
		t.Fatal(err)
	}

	for i := 0; i < 2; i++ {
		a, err := m.Lease(w.ID)
		if err != nil || a == nil {
			t.Fatalf("lease %d = %v, %v", i, a, err)
		}
		if a.Trace != "trace-fleet-42" {
			t.Fatalf("assignment %d trace = %q", i, a.Trace)
		}
		clk.Advance(3 * time.Second) // simulated shard compute time
		resp, err := m.Complete(w.ID, fleet.CompleteRequest{
			Run: a.Run, Lease: a.Lease, Shard: a.Shard,
			Header: header, Cells: shardCells(a.Shard, 2, cells),
			Trace: a.Trace,
		})
		if err != nil || !resp.Accepted {
			t.Fatalf("completion %d = %+v, %v", i, resp, err)
		}
	}

	for i := 0; i < 2; i++ {
		select {
		case d := <-run.Completions():
			if d.Trace != "trace-fleet-42" {
				t.Fatalf("shard %d done trace = %q", d.K, d.Trace)
			}
			if d.Elapsed != 3*time.Second {
				t.Fatalf("shard %d elapsed = %v, want 3s (lease grant to completion)", d.K, d.Elapsed)
			}
		default:
			t.Fatalf("completion %d missing", i)
		}
	}
}

// TestTraceExpiredLeaseElapsedZero: a completion arriving after the lease was
// requeued cannot time itself against a lease it no longer holds, so Elapsed
// stays zero rather than inventing a number.
func TestTraceExpiredLeaseElapsedZero(t *testing.T) {
	clk := newFakeClock()
	m := fleet.NewManager(fleet.Config{
		HeartbeatInterval: 10 * time.Second,
		LeaseTTL:          5 * time.Second,
		Clock:             clk.Now,
	})
	w := m.Join("slow", nil)
	run, header, cells := startTestRun(t, m, []int{1, 2}, 3)

	a, err := m.Lease(w.ID)
	if err != nil || a == nil {
		t.Fatalf("lease = %v, %v", a, err)
	}
	clk.Advance(6 * time.Second)
	if _, err := m.Heartbeat(w.ID); err != nil {
		t.Fatal(err)
	}
	m.Tick() // lease expired, shard requeued

	// The worker immediately re-leases the stolen-back shard and completes:
	// the first verified result still wins, but it is timed against the NEW
	// lease, and a late echo of the old lease would have reported zero.
	a2, err := m.Lease(w.ID)
	if err != nil || a2 == nil || a2.Shard != a.Shard {
		t.Fatalf("re-lease = %v, %v", a2, err)
	}
	clk.Advance(time.Second)
	resp, err := m.Complete(w.ID, fleet.CompleteRequest{
		Run: a2.Run, Lease: a2.Lease, Shard: a2.Shard,
		Header: header, Cells: shardCells(a2.Shard, 2, cells),
		Trace: a2.Trace,
	})
	if err != nil || !resp.Accepted {
		t.Fatalf("completion = %+v, %v", resp, err)
	}
	select {
	case d := <-run.Completions():
		// Timed against the new lease (1s), not the original grant (7s ago).
		if d.Elapsed != time.Second {
			t.Fatalf("elapsed = %v, want 1s", d.Elapsed)
		}
	default:
		t.Fatal("completion missing")
	}
}
