package fleet

import (
	"encoding/json"
	"errors"
	"net/http"

	"repro/internal/apierr"
)

// The worker protocol, as served under /api/v1/:
//
//	POST   /api/v1/workers                 join: {name, capabilities} -> identity + pacing
//	GET    /api/v1/workers                 list the fleet
//	PUT    /api/v1/workers/{id}/heartbeat  renew the registration lease
//	POST   /api/v1/workers/{id}/lease      pull the next shard (204 = no work)
//	POST   /api/v1/workers/{id}/complete   report a finished shard
//	POST   /api/v1/workers/{id}/drain      stop receiving shards (graceful shutdown)
//	DELETE /api/v1/workers/{id}            leave; an outstanding shard is requeued
//
// Every endpoint that names a worker answers 404 ErrUnknownWorker once the
// registration lease expired — the worker's cue to rejoin.

// maxCompleteBytes bounds a completion body (shard results of paper-sized
// campaigns are a few hundred KB; 256 MiB matches the jobs client bound).
const maxCompleteBytes = 256 << 20

// JoinRequest is the body of POST /api/v1/workers.
type JoinRequest struct {
	Name         string            `json:"name,omitempty"`
	Capabilities map[string]string `json:"capabilities,omitempty"`
}

// JoinResponse hands the worker its identity and the protocol pacing.
type JoinResponse struct {
	ID               string  `json:"id"`
	HeartbeatSeconds float64 `json:"heartbeat_seconds"`
	WorkerTTLSeconds float64 `json:"worker_ttl_seconds"`
	LeaseTTLSeconds  float64 `json:"lease_ttl_seconds"`
}

// Handler serves the worker protocol for the manager. The api.Server mounts
// it inside its /api/v1/ mux; a standalone fleet coordinator (jedcoord
// -fleet) serves it directly.
func Handler(m *Manager) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /api/v1/workers", func(w http.ResponseWriter, r *http.Request) {
		var req JoinRequest
		if r.Body != nil && r.ContentLength != 0 {
			if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
				apierr.Write(w, http.StatusBadRequest, "bad_request", "bad join request: %v", err)
				return
			}
		}
		worker := m.Join(req.Name, req.Capabilities)
		fleetJSON(w, http.StatusCreated, JoinResponse{
			ID:               worker.ID,
			HeartbeatSeconds: m.HeartbeatInterval().Seconds(),
			WorkerTTLSeconds: (m.HeartbeatInterval() * workerTTLFactor).Seconds(),
			LeaseTTLSeconds:  m.LeaseTTL().Seconds(),
		})
	})
	mux.HandleFunc("GET /api/v1/workers", func(w http.ResponseWriter, _ *http.Request) {
		fleetJSON(w, http.StatusOK, map[string]any{"workers": m.Workers()})
	})
	mux.HandleFunc("PUT /api/v1/workers/{id}/heartbeat", func(w http.ResponseWriter, r *http.Request) {
		worker, err := m.Heartbeat(r.PathValue("id"))
		if err != nil {
			fleetErr(w, err)
			return
		}
		fleetJSON(w, http.StatusOK, map[string]string{"state": worker.State})
	})
	mux.HandleFunc("POST /api/v1/workers/{id}/lease", func(w http.ResponseWriter, r *http.Request) {
		a, err := m.Lease(r.PathValue("id"))
		if err != nil {
			fleetErr(w, err)
			return
		}
		if a == nil {
			w.WriteHeader(http.StatusNoContent)
			return
		}
		fleetJSON(w, http.StatusOK, a)
	})
	mux.HandleFunc("POST /api/v1/workers/{id}/complete", func(w http.ResponseWriter, r *http.Request) {
		body := http.MaxBytesReader(w, r.Body, maxCompleteBytes)
		defer body.Close()
		var req CompleteRequest
		if err := json.NewDecoder(body).Decode(&req); err != nil {
			apierr.Write(w, http.StatusBadRequest, "bad_request", "bad completion: %v", err)
			return
		}
		resp, err := m.Complete(r.PathValue("id"), req)
		if err != nil {
			if errors.Is(err, ErrUnknownWorker) {
				fleetErr(w, err)
			} else {
				// Verification failure: the result is rejected and the shard
				// requeued; 422 tells the worker its work was unusable.
				apierr.Write(w, http.StatusUnprocessableEntity, "completion_rejected", "%v", err)
			}
			return
		}
		fleetJSON(w, http.StatusOK, resp)
	})
	mux.HandleFunc("POST /api/v1/workers/{id}/drain", func(w http.ResponseWriter, r *http.Request) {
		if err := m.Drain(r.PathValue("id")); err != nil {
			fleetErr(w, err)
			return
		}
		fleetJSON(w, http.StatusOK, map[string]string{"state": "draining"})
	})
	mux.HandleFunc("DELETE /api/v1/workers/{id}", func(w http.ResponseWriter, r *http.Request) {
		m.Leave(r.PathValue("id"))
		w.WriteHeader(http.StatusNoContent)
	})
	return mux
}

func fleetJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // headers already sent
}

func fleetErr(w http.ResponseWriter, err error) {
	if errors.Is(err, ErrUnknownWorker) {
		apierr.Write(w, http.StatusNotFound, "unknown_worker", "%v", err)
		return
	}
	apierr.Write(w, http.StatusInternalServerError, "internal", "%v", err)
}
