package fleet_test

// Protocol tests run the real Handler over httptest and speak to it through
// the same Client the jedserve worker mode uses, so join, heartbeat, lease,
// complete, drain, and leave are exercised over genuine HTTP — including
// the full RunWorker loop computing a real campaign shard by shard.

import (
	"context"
	"net/http/httptest"
	"sort"
	"testing"
	"time"

	"repro/internal/fleet"
)

func newFleetServer(t *testing.T, cfg fleet.Config) (*fleet.Manager, *httptest.Server) {
	t.Helper()
	m := fleet.NewManager(cfg)
	ts := httptest.NewServer(fleet.Handler(m))
	t.Cleanup(ts.Close)
	return m, ts
}

// TestHTTPLifecycle walks one worker identity through every endpoint.
func TestHTTPLifecycle(t *testing.T) {
	clk := newFakeClock()
	m, ts := newFleetServer(t, fleet.Config{
		HeartbeatInterval: 10 * time.Second,
		LeaseTTL:          time.Minute,
		Clock:             clk.Now,
	})
	cl := fleet.NewClient(ts.URL)
	ctx := context.Background()

	join, err := cl.Join(ctx, fleet.JoinRequest{Name: "box", Capabilities: map[string]string{"arch": "amd64"}})
	if err != nil {
		t.Fatal(err)
	}
	if join.ID == "" || join.HeartbeatSeconds != 10 || join.WorkerTTLSeconds != 30 || join.LeaseTTLSeconds != 60 {
		t.Fatalf("join = %+v", join)
	}
	if err := cl.Heartbeat(ctx, join.ID); err != nil {
		t.Fatal(err)
	}
	// No runs yet: lease answers 204, decoded as no work.
	if a, err := cl.Lease(ctx, join.ID); err != nil || a != nil {
		t.Fatalf("idle lease = %v, %v", a, err)
	}

	_, header, cellCount := startTestRun(t, m, []int{1, 2}, 3)
	a, err := cl.Lease(ctx, join.ID)
	if err != nil || a == nil {
		t.Fatalf("lease = %v, %v", a, err)
	}
	if a.Spec.Shard == "" || a.Shards != 2 || a.LeaseTTL != 60 {
		t.Fatalf("assignment = %+v", a)
	}
	resp, err := cl.Complete(ctx, join.ID, fleet.CompleteRequest{
		Run: a.Run, Lease: a.Lease, Shard: a.Shard,
		Header: header, Cells: shardCells(a.Shard, 2, cellCount),
	})
	if err != nil || !resp.Accepted {
		t.Fatalf("complete = %+v, %v", resp, err)
	}

	// A lying completion is a 422, surfaced as a plain error (not a rejoin).
	a, err = cl.Lease(ctx, join.ID)
	if err != nil || a == nil {
		t.Fatalf("second lease = %v, %v", a, err)
	}
	bad := header
	bad.Seed = 999
	if _, err := cl.Complete(ctx, join.ID, fleet.CompleteRequest{
		Run: a.Run, Lease: a.Lease, Shard: a.Shard,
		Header: bad, Cells: shardCells(a.Shard, 2, cellCount),
	}); err == nil {
		t.Fatal("forged header accepted over HTTP")
	}

	if err := cl.Drain(ctx, join.ID); err != nil {
		t.Fatal(err)
	}
	if ws := m.Workers(); len(ws) != 1 || ws[0].State != "draining" {
		t.Fatalf("workers = %+v", ws)
	}
	if err := cl.Leave(ctx, join.ID); err != nil {
		t.Fatal(err)
	}
	// Every endpoint now answers the rejoin signal.
	if err := cl.Heartbeat(ctx, join.ID); err != fleet.ErrUnknownWorker {
		t.Fatalf("heartbeat after leave = %v", err)
	}
	if _, err := cl.Lease(ctx, join.ID); err != fleet.ErrUnknownWorker {
		t.Fatalf("lease after leave = %v", err)
	}
}

// TestRunWorkerComputesRun runs the real worker loop against the real
// handler: it joins, pulls both shards, computes them with the genuine
// campaign code path, and drains out cleanly on request.
func TestRunWorkerComputesRun(t *testing.T) {
	m, ts := newFleetServer(t, fleet.Config{
		HeartbeatInterval: 50 * time.Millisecond,
		LeaseTTL:          time.Minute,
	})
	run, _, cellCount := startTestRun(t, m, []int{1, 2}, 3)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	drain := make(chan struct{})
	workerErr := make(chan error, 1)
	go func() {
		workerErr <- fleet.RunWorker(ctx, fleet.WorkerConfig{
			Coordinator: ts.URL,
			Name:        "tester",
			Poll:        10 * time.Millisecond,
			Drain:       drain,
		})
	}()

	var indices []int
	deadline := time.After(60 * time.Second)
	for done := 0; done < 2; done++ {
		select {
		case d := <-run.Completions():
			if d.Err != nil {
				t.Fatal(d.Err)
			}
			for _, c := range d.Cells {
				indices = append(indices, c.Index)
			}
		case <-deadline:
			t.Fatal("timed out waiting for shard completions")
		}
	}
	sort.Ints(indices)
	for i, idx := range indices {
		if idx != i {
			t.Fatalf("merged cell indices = %v, want 0..%d", indices, cellCount-1)
		}
	}

	// Drain: the idle worker deregisters and the loop returns nil.
	close(drain)
	select {
	case err := <-workerErr:
		if err != nil {
			t.Fatalf("drained worker returned %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("worker did not drain")
	}
	if st := m.Stats(); st.ShardsCompleted != 2 || st.WorkersActive+st.WorkersDraining != 0 {
		t.Fatalf("final stats = %+v", st)
	}
}

// TestRunWorkerRejoinsAfterRetirement pins the rejoin path: a worker whose
// registration was dropped (coordinator restart, missed heartbeats) comes
// back under a fresh identity without operator help.
func TestRunWorkerRejoinsAfterRetirement(t *testing.T) {
	m, ts := newFleetServer(t, fleet.Config{
		HeartbeatInterval: 50 * time.Millisecond,
		LeaseTTL:          time.Minute,
	})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	workerErr := make(chan error, 1)
	go func() {
		workerErr <- fleet.RunWorker(ctx, fleet.WorkerConfig{
			Coordinator: ts.URL,
			Name:        "phoenix",
			Poll:        10 * time.Millisecond,
		})
	}()

	waitJoined := func(min int64) {
		t.Helper()
		deadline := time.After(30 * time.Second)
		for m.Stats().WorkersJoined < min {
			select {
			case <-deadline:
				t.Fatalf("stats = %+v, want %d joins", m.Stats(), min)
			case <-time.After(5 * time.Millisecond):
			}
		}
	}
	waitJoined(1)
	// Forcibly forget the worker; its next lease poll or heartbeat 404s and
	// the loop joins again.
	for _, w := range m.Workers() {
		m.Leave(w.ID)
	}
	waitJoined(2)
	cancel()
	<-workerErr
}
