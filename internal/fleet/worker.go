package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strings"
	"time"

	"repro/internal/apierr"
	"repro/internal/campaign"
)

// Client speaks the worker protocol against a fleet coordinator.
type Client struct {
	// Base is the coordinator's base URL, e.g. "http://host:9090".
	Base string
	// HTTP is the underlying client; nil means http.DefaultClient
	// (per-call contexts bound every request).
	HTTP *http.Client
}

// NewClient returns a client for the coordinator at base.
func NewClient(base string) *Client {
	return &Client{Base: strings.TrimRight(base, "/")}
}

func (c *Client) httpClient() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

// do issues one request, decoding a JSON answer into out (skipped when out
// is nil, and on 204). A 404 maps to ErrUnknownWorker — the rejoin signal.
func (c *Client) do(ctx context.Context, method, path string, body, out any) error {
	var rd io.Reader
	if body != nil {
		raw, err := json.Marshal(body)
		if err != nil {
			return fmt.Errorf("fleet: encode request: %w", err)
		}
		rd = bytes.NewReader(raw)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.Base+path, rd)
	if err != nil {
		return fmt.Errorf("fleet: %w", err)
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return fmt.Errorf("fleet: %s: %w", c.Base, err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, maxCompleteBytes))
	if err != nil {
		return fmt.Errorf("fleet: %s: read: %w", c.Base, err)
	}
	if resp.StatusCode == http.StatusNotFound {
		return ErrUnknownWorker
	}
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		if e, ok := apierr.Decode(raw); ok {
			return fmt.Errorf("fleet: coordinator answered %d: %s", resp.StatusCode, e.Message)
		}
		return fmt.Errorf("fleet: coordinator answered %d", resp.StatusCode)
	}
	if out == nil || resp.StatusCode == http.StatusNoContent {
		return nil
	}
	if err := json.Unmarshal(raw, out); err != nil {
		return fmt.Errorf("fleet: %s: decode: %w", c.Base, err)
	}
	return nil
}

// Join registers with the coordinator.
func (c *Client) Join(ctx context.Context, req JoinRequest) (JoinResponse, error) {
	var resp JoinResponse
	err := c.do(ctx, http.MethodPost, "/api/v1/workers", req, &resp)
	return resp, err
}

// Heartbeat renews the registration lease.
func (c *Client) Heartbeat(ctx context.Context, id string) error {
	return c.do(ctx, http.MethodPut, "/api/v1/workers/"+id+"/heartbeat", nil, nil)
}

// Lease pulls the next shard; nil with a nil error means no work right now.
func (c *Client) Lease(ctx context.Context, id string) (*Assignment, error) {
	var a Assignment
	if err := c.do(ctx, http.MethodPost, "/api/v1/workers/"+id+"/lease", nil, &a); err != nil {
		return nil, err
	}
	if a.Lease == "" { // 204: no assignment decoded
		return nil, nil
	}
	return &a, nil
}

// Complete reports one finished shard.
func (c *Client) Complete(ctx context.Context, id string, req CompleteRequest) (CompleteResponse, error) {
	var resp CompleteResponse
	err := c.do(ctx, http.MethodPost, "/api/v1/workers/"+id+"/complete", req, &resp)
	return resp, err
}

// Drain asks the coordinator to stop handing this worker shards.
func (c *Client) Drain(ctx context.Context, id string) error {
	return c.do(ctx, http.MethodPost, "/api/v1/workers/"+id+"/drain", nil, nil)
}

// Leave deregisters the worker.
func (c *Client) Leave(ctx context.Context, id string) error {
	return c.do(ctx, http.MethodDelete, "/api/v1/workers/"+id, nil, nil)
}

// Runner executes one leased shard, returning the campaign identity header
// and the shard's cells. RunAssignment is the default; tests substitute
// slow or broken runners.
type Runner func(ctx context.Context, a *Assignment) (campaign.Header, []campaign.Cell, error)

// RunAssignment resolves the assignment's spec and runs the shard
// in-process — the exact code path `campaign -shard k/n` uses, so a fleet
// worker's cells are byte-identical to any other execution strategy's.
func RunAssignment(ctx context.Context, a *Assignment) (campaign.Header, []campaign.Cell, error) {
	cfg, shard, err := a.Spec.Resolve()
	if err != nil {
		return campaign.Header{}, nil, err
	}
	res, err := campaign.RunContext(ctx, cfg, campaign.RunOptions{Shard: shard})
	if err != nil {
		return campaign.Header{}, nil, err
	}
	return campaign.NewHeader(cfg), res.Cells, nil
}

// WorkerConfig configures one worker loop.
type WorkerConfig struct {
	// Coordinator is the fleet coordinator's base URL (required).
	Coordinator string
	// Name labels the worker in the coordinator's registry (hostname-ish).
	Name string
	// Capabilities are free-form labels sent at join time.
	Capabilities map[string]string
	// Poll paces idle lease polls when the queue is empty (0 means 500ms).
	Poll time.Duration
	// Drain, when it becomes readable, makes the loop finish its current
	// shard, deregister, and return nil — the SIGTERM half of graceful
	// shutdown. A cancelled ctx is the hard stop: the in-flight shard is
	// abandoned (the coordinator requeues it on lease expiry).
	Drain <-chan struct{}
	// Run executes a leased shard (nil means RunAssignment).
	Run Runner
	// HTTP overrides the transport (tests).
	HTTP *http.Client
	// Logf, when set, receives human-readable progress lines.
	Logf func(format string, args ...any)
}

// RunWorker joins the coordinator and pulls shards until ctx is cancelled
// or a drain completes. It survives coordinator restarts and its own
// retirement by rejoining under a fresh identity.
func RunWorker(ctx context.Context, cfg WorkerConfig) error {
	if cfg.Coordinator == "" {
		return fmt.Errorf("fleet: no coordinator URL")
	}
	if cfg.Poll <= 0 {
		cfg.Poll = 500 * time.Millisecond
	}
	if cfg.Run == nil {
		cfg.Run = RunAssignment
	}
	logf := cfg.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	cl := &Client{Base: strings.TrimRight(cfg.Coordinator, "/"), HTTP: cfg.HTTP}

	for {
		join, err := joinWithRetry(ctx, cl, cfg, logf)
		if err != nil {
			return err
		}
		logf("fleet: joined %s as %s (heartbeat %gs, lease ttl %gs)",
			cl.Base, join.ID, join.HeartbeatSeconds, join.LeaseTTLSeconds)

		rejoin, err := workerSession(ctx, cl, cfg, join, logf)
		if !rejoin {
			return err
		}
		logf("fleet: registration lost, rejoining %s", cl.Base)
	}
}

// joinWithRetry joins with backoff until it succeeds or ctx ends.
func joinWithRetry(ctx context.Context, cl *Client, cfg WorkerConfig, logf func(string, ...any)) (JoinResponse, error) {
	backoff := cfg.Poll
	for {
		join, err := cl.Join(ctx, JoinRequest{Name: cfg.Name, Capabilities: cfg.Capabilities})
		if err == nil {
			return join, nil
		}
		if ctx.Err() != nil {
			return JoinResponse{}, ctx.Err()
		}
		logf("fleet: join %s failed (%v), retrying in %v", cl.Base, err, backoff)
		select {
		case <-ctx.Done():
			return JoinResponse{}, ctx.Err()
		case <-time.After(backoff):
		}
		if backoff < 5*time.Second {
			backoff *= 2
		}
	}
}

// workerSession is one registration's pull loop. It returns rejoin=true
// when the registration was lost and the caller should join again.
func workerSession(ctx context.Context, cl *Client, cfg WorkerConfig, join JoinResponse, logf func(string, ...any)) (rejoin bool, err error) {
	// The heartbeat loop runs beside the (potentially long) shard
	// computations. ±10% jitter keeps a fleet started by one script from
	// synchronizing its probes into coordinated bursts.
	interval := time.Duration(join.HeartbeatSeconds * float64(time.Second))
	if interval <= 0 {
		interval = DefaultHeartbeatInterval
	}
	hbCtx, stopHB := context.WithCancel(ctx)
	defer stopHB()
	lost := make(chan struct{}, 1)
	go func() {
		rng := rand.New(rand.NewSource(time.Now().UnixNano()))
		for {
			jittered := time.Duration(float64(interval) * (0.9 + 0.2*rng.Float64()))
			select {
			case <-hbCtx.Done():
				return
			case <-time.After(jittered):
			}
			if err := cl.Heartbeat(hbCtx, join.ID); err != nil {
				if errors.Is(err, ErrUnknownWorker) {
					select {
					case lost <- struct{}{}:
					default:
					}
					return
				}
				if hbCtx.Err() == nil {
					logf("fleet: heartbeat failed: %v", err)
				}
			}
		}
	}()

	draining := false
	for {
		// A lost registration (heartbeat 404) forces a rejoin; drain flips
		// the loop into its finish-and-leave mode.
		select {
		case <-lost:
			return true, nil
		case <-ctx.Done():
			leaveBestEffort(cl, join.ID)
			return false, ctx.Err()
		default:
		}
		if !draining && cfg.Drain != nil {
			select {
			case <-cfg.Drain:
				draining = true
				logf("fleet: draining (finishing current work, then leaving)")
				if err := cl.Drain(ctx, join.ID); err != nil {
					if errors.Is(err, ErrUnknownWorker) {
						// Already forgotten: nothing to finish gracefully.
						return false, nil
					}
					logf("fleet: drain request failed: %v", err)
				}
			default:
			}
		}

		a, err := cl.Lease(ctx, join.ID)
		if err != nil {
			if errors.Is(err, ErrUnknownWorker) {
				return true, nil
			}
			if ctx.Err() != nil {
				leaveBestEffort(cl, join.ID)
				return false, ctx.Err()
			}
			logf("fleet: lease poll failed: %v", err)
			a = nil
		}
		if a == nil {
			if draining {
				// Drained and nothing further to do: deregister and exit.
				leaveBestEffort(cl, join.ID)
				logf("fleet: drained, left %s", cl.Base)
				return false, nil
			}
			select {
			case <-ctx.Done():
				leaveBestEffort(cl, join.ID)
				return false, ctx.Err()
			case <-drainOrNil(cfg.Drain, draining):
				draining = true
				logf("fleet: draining (finishing current work, then leaving)")
				if err := cl.Drain(ctx, join.ID); err != nil && errors.Is(err, ErrUnknownWorker) {
					return false, nil
				}
			case <-lost:
				return true, nil
			case <-time.After(cfg.Poll):
			}
			continue
		}

		if a.Trace != "" {
			logf("fleet: leased shard %d/%d of %s (trace %s)", a.Shard, a.Shards, a.Run, a.Trace)
		} else {
			logf("fleet: leased shard %d/%d of %s", a.Shard, a.Shards, a.Run)
		}
		header, cells, err := cfg.Run(ctx, a)
		if err != nil {
			if ctx.Err() != nil {
				leaveBestEffort(cl, join.ID)
				return false, ctx.Err()
			}
			// No failure endpoint on purpose: the lease expires and the
			// shard is requeued — the same path a crashed worker takes.
			logf("fleet: shard %d/%d of %s failed locally: %v (lease will expire)",
				a.Shard, a.Shards, a.Run, err)
			continue
		}
		resp, err := cl.Complete(ctx, join.ID, CompleteRequest{
			Run: a.Run, Lease: a.Lease, Shard: a.Shard,
			Header: header, Cells: cells, Trace: a.Trace,
		})
		switch {
		case errors.Is(err, ErrUnknownWorker):
			return true, nil
		case err != nil:
			if ctx.Err() != nil {
				return false, ctx.Err()
			}
			logf("fleet: completion of shard %d/%d of %s rejected: %v", a.Shard, a.Shards, a.Run, err)
		case !resp.Accepted:
			logf("fleet: shard %d/%d of %s discarded: %s", a.Shard, a.Shards, a.Run, resp.Reason)
		default:
			logf("fleet: shard %d/%d of %s completed (%d cells)", a.Shard, a.Shards, a.Run, len(cells))
		}
	}
}

// drainOrNil returns the drain channel while it is still armed, or a
// never-ready channel once draining (or when no drain channel exists).
func drainOrNil(drain <-chan struct{}, draining bool) <-chan struct{} {
	if draining || drain == nil {
		return nil
	}
	return drain
}

// leaveBestEffort deregisters with a short independent timeout, so a hard
// stop still frees the worker's shard immediately instead of waiting out
// the lease TTL.
func leaveBestEffort(cl *Client, id string) {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	cl.Leave(ctx, id) //nolint:errcheck // the coordinator may be gone
}
