package fleet_test

// The manager tests drive lease and registration expiry through the
// injectable clock, so every liveness path — retirement, stealing, attempt
// exhaustion, late duplicates — is pinned without a single sleep.

import (
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/campaign"
	"repro/internal/fleet"
	"repro/internal/jobs"
	_ "repro/internal/sched/all"
)

// fakeClock is a hand-advanced time source.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t = c.t.Add(d)
}

// testSpec is the 4-cell campaign the coordinator tests use.
func testSpec() jobs.CampaignSpec {
	return jobs.CampaignSpec{
		Algos:        []string{"cpa", "mcpa"},
		Shapes:       []string{"serial", "wide"},
		DAGSizes:     []int{15},
		ClusterSizes: []int{16, 32},
		Replicates:   2,
		Seed:         11,
	}
}

// testIdentity resolves the spec into the header and cell count a RunConfig
// needs.
func testIdentity(t *testing.T) (campaign.Header, int) {
	t.Helper()
	cfg, _, err := testSpec().Resolve()
	if err != nil {
		t.Fatal(err)
	}
	return campaign.NewHeader(cfg), len(campaign.Cells(cfg))
}

// shardCells fabricates a shard's exact cell-index slice. The manager
// verifies identity and bounds, not cell payloads, so index-only cells are
// enough for queue tests.
func shardCells(k, n, total int) []campaign.Cell {
	var out []campaign.Cell
	for i := k - 1; i < total; i += n {
		out = append(out, campaign.Cell{Index: i})
	}
	return out
}

// startTestRun opens a 2-shard run over the test campaign.
func startTestRun(t *testing.T, m *fleet.Manager, pending []int, maxAttempts int) (*fleet.Run, campaign.Header, int) {
	t.Helper()
	header, cells := testIdentity(t)
	run, err := m.StartRun(fleet.RunConfig{
		Spec: testSpec(), Shards: 2, Pending: pending,
		Header: header, CellCount: cells, MaxAttempts: maxAttempts,
	})
	if err != nil {
		t.Fatal(err)
	}
	return run, header, cells
}

// TestLeaseExpiryStealAndDuplicate is the work-stealing core: a healthy but
// slow worker's lease expires, the shard is requeued and taken by the fast
// worker, and the slow worker's late completion is discarded — first
// verified result wins.
func TestLeaseExpiryStealAndDuplicate(t *testing.T) {
	clk := newFakeClock()
	m := fleet.NewManager(fleet.Config{
		HeartbeatInterval: 10 * time.Second, // worker TTL 30s
		LeaseTTL:          5 * time.Second,
		Clock:             clk.Now,
	})
	slow := m.Join("slow", nil)
	busy := m.Join("busy", nil)
	thief := m.Join("thief", nil)
	run, header, cells := startTestRun(t, m, []int{1, 2}, 3)

	a1, err := m.Lease(slow.ID)
	if err != nil || a1 == nil {
		t.Fatalf("slow lease = %v, %v", a1, err)
	}

	// The slow worker sits on its lease past the TTL while heartbeating: the
	// shard is requeued as stolen, ahead of the untouched second shard.
	clk.Advance(6 * time.Second)
	for _, id := range []string{slow.ID, busy.ID, thief.ID} {
		if _, err := m.Heartbeat(id); err != nil {
			t.Fatalf("heartbeat %s: %v", id, err)
		}
	}
	m.Tick()
	st := m.Stats()
	if st.ShardsStolen != 1 || st.LeasesExpired != 1 {
		t.Fatalf("stats after expiry = %+v, want 1 stolen / 1 expired", st)
	}

	// The thief takes the requeued shard and completes it first; the run is
	// still live (the second shard is outstanding).
	a3, err := m.Lease(thief.ID)
	if err != nil || a3 == nil || a3.Shard != a1.Shard {
		t.Fatalf("steal lease = %v, %v (want shard %d)", a3, err, a1.Shard)
	}
	resp, err := m.Complete(thief.ID, fleet.CompleteRequest{
		Run: a3.Run, Lease: a3.Lease, Shard: a3.Shard,
		Header: header, Cells: shardCells(a3.Shard, 2, cells),
	})
	if err != nil || !resp.Accepted {
		t.Fatalf("stolen completion = %+v, %v", resp, err)
	}

	// The slow worker finally reports the same shard: discarded, not merged.
	resp, err = m.Complete(slow.ID, fleet.CompleteRequest{
		Run: a1.Run, Lease: a1.Lease, Shard: a1.Shard,
		Header: header, Cells: shardCells(a1.Shard, 2, cells),
	})
	if err != nil || resp.Accepted {
		t.Fatalf("late duplicate = %+v, %v (want discarded)", resp, err)
	}

	// The busy worker picks up the remaining shard and finishes the run.
	a2, err := m.Lease(busy.ID)
	if err != nil || a2 == nil || a2.Shard == a1.Shard {
		t.Fatalf("busy lease = %v, %v", a2, err)
	}
	resp, err = m.Complete(busy.ID, fleet.CompleteRequest{
		Run: a2.Run, Lease: a2.Lease, Shard: a2.Shard,
		Header: header, Cells: shardCells(a2.Shard, 2, cells),
	})
	if err != nil || !resp.Accepted {
		t.Fatalf("busy completion = %+v, %v", resp, err)
	}
	if st := m.Stats(); st.DuplicatesDiscarded != 1 || st.ShardsCompleted != 2 {
		t.Fatalf("stats = %+v, want 1 duplicate / 2 completed", st)
	}

	// Both shards were delivered exactly once, neither by the slow worker.
	for i := 0; i < 2; i++ {
		select {
		case d := <-run.Completions():
			if d.Err != nil || d.Worker == slow.ID {
				t.Fatalf("completion %d = %+v", i, d)
			}
		default:
			t.Fatalf("completion %d missing", i)
		}
	}
	want := map[string]int{slow.ID: 0, busy.ID: 1, thief.ID: 1}
	for _, w := range m.Workers() {
		if w.ShardsDone != want[w.ID] {
			t.Fatalf("worker %s did %d shards, want %d", w.ID, w.ShardsDone, want[w.ID])
		}
	}
}

// TestWorkerRetirement pins the registration-TTL half of liveness: a silent
// worker is retired, its shard requeues immediately (not counted stolen),
// and every endpoint answers ErrUnknownWorker afterwards.
func TestWorkerRetirement(t *testing.T) {
	clk := newFakeClock()
	m := fleet.NewManager(fleet.Config{
		HeartbeatInterval: 10 * time.Second, // worker TTL 30s
		LeaseTTL:          2 * time.Minute,
		Clock:             clk.Now,
	})
	w1 := m.Join("doomed", nil)
	_, header, cells := startTestRun(t, m, []int{1}, 3)
	a1, err := m.Lease(w1.ID)
	if err != nil || a1 == nil {
		t.Fatalf("lease = %v, %v", a1, err)
	}

	clk.Advance(31 * time.Second)
	w2 := m.Join("successor", nil) // any manager call expires the silent
	st := m.Stats()
	if st.WorkersRetired != 1 || st.ShardsStolen != 0 {
		t.Fatalf("stats = %+v, want 1 retired / 0 stolen", st)
	}
	if _, err := m.Heartbeat(w1.ID); err == nil {
		t.Fatal("retired worker still heartbeats")
	}
	if _, err := m.Complete(w1.ID, fleet.CompleteRequest{
		Run: a1.Run, Lease: a1.Lease, Shard: a1.Shard,
		Header: header, Cells: shardCells(a1.Shard, 2, cells),
	}); err == nil {
		t.Fatal("retired worker's completion accepted")
	}

	// The requeued shard goes to the successor.
	a2, err := m.Lease(w2.ID)
	if err != nil || a2 == nil || a2.Shard != a1.Shard {
		t.Fatalf("successor lease = %v, %v", a2, err)
	}
}

// TestAttemptExhaustionFailsRun pins the attempt budget: a shard whose
// leases keep expiring fails the run with a terminal error instead of
// cycling forever.
func TestAttemptExhaustionFailsRun(t *testing.T) {
	clk := newFakeClock()
	m := fleet.NewManager(fleet.Config{
		HeartbeatInterval: 10 * time.Second,
		LeaseTTL:          5 * time.Second,
		Clock:             clk.Now,
	})
	w := m.Join("stuck", nil)
	run, _, _ := startTestRun(t, m, []int{1}, 2)

	for attempt := 1; attempt <= 2; attempt++ {
		a, err := m.Lease(w.ID)
		if err != nil || a == nil {
			t.Fatalf("lease attempt %d = %v, %v", attempt, a, err)
		}
		clk.Advance(6 * time.Second)
		if _, err := m.Heartbeat(w.ID); err != nil {
			t.Fatal(err)
		}
		m.Tick()
	}
	select {
	case d := <-run.Completions():
		if d.Err == nil || !strings.Contains(d.Err.Error(), "after 2 attempts") {
			t.Fatalf("terminal delivery = %+v, want attempt exhaustion", d)
		}
	default:
		t.Fatal("no terminal delivery after exhausting attempts")
	}
	if st := m.Stats(); st.ActiveRuns != 0 {
		t.Fatalf("failed run still active: %+v", st)
	}
}

// TestDrainAndLeave pins graceful shutdown: a draining worker gets no new
// shards but may complete the one it holds; Leave requeues anything left.
func TestDrainAndLeave(t *testing.T) {
	clk := newFakeClock()
	m := fleet.NewManager(fleet.Config{Clock: clk.Now})
	w := m.Join("leaver", nil)
	_, header, cells := startTestRun(t, m, []int{1, 2}, 3)

	a, err := m.Lease(w.ID)
	if err != nil || a == nil {
		t.Fatalf("lease = %v, %v", a, err)
	}
	if err := m.Drain(w.ID); err != nil {
		t.Fatal(err)
	}
	if ws := m.Workers(); len(ws) != 1 || ws[0].State != "draining" {
		t.Fatalf("workers = %+v, want one draining", ws)
	}
	if extra, err := m.Lease(w.ID); err != nil || extra != nil {
		t.Fatalf("draining worker got shard %v (err %v)", extra, err)
	}
	resp, err := m.Complete(w.ID, fleet.CompleteRequest{
		Run: a.Run, Lease: a.Lease, Shard: a.Shard,
		Header: header, Cells: shardCells(a.Shard, 2, cells),
	})
	if err != nil || !resp.Accepted {
		t.Fatalf("draining completion = %+v, %v", resp, err)
	}

	m.Leave(w.ID)
	st := m.Stats()
	if st.WorkersLeft != 1 || st.WorkersActive != 0 || st.WorkersDraining != 0 {
		t.Fatalf("stats after leave = %+v", st)
	}
	// The untouched shard is still queued for whoever joins next.
	w2 := m.Join("next", nil)
	if a2, err := m.Lease(w2.ID); err != nil || a2 == nil {
		t.Fatalf("post-leave lease = %v, %v", a2, err)
	}
}

// TestCompletionVerification pins the identity guard: wrong header, wrong
// cell count, and out-of-shard indices are all rejected (requeueing the
// shard), and only the exact shard slice is accepted.
func TestCompletionVerification(t *testing.T) {
	clk := newFakeClock()
	m := fleet.NewManager(fleet.Config{Clock: clk.Now})
	w := m.Join("liar", nil)
	_, header, cells := startTestRun(t, m, []int{1}, 10)

	lease := func() *fleet.Assignment {
		t.Helper()
		a, err := m.Lease(w.ID)
		if err != nil || a == nil {
			t.Fatalf("lease = %v, %v", a, err)
		}
		return a
	}

	a := lease()
	wrongHeader := header
	wrongHeader.Seed = 999
	if _, err := m.Complete(w.ID, fleet.CompleteRequest{
		Run: a.Run, Lease: a.Lease, Shard: a.Shard,
		Header: wrongHeader, Cells: shardCells(a.Shard, 2, cells),
	}); err == nil || !strings.Contains(err.Error(), "header") {
		t.Fatalf("wrong header accepted (err %v)", err)
	}

	a = lease()
	if _, err := m.Complete(w.ID, fleet.CompleteRequest{
		Run: a.Run, Lease: a.Lease, Shard: a.Shard,
		Header: header, Cells: shardCells(a.Shard, 2, cells)[:1],
	}); err == nil || !strings.Contains(err.Error(), "cells") {
		t.Fatalf("short shard accepted (err %v)", err)
	}

	a = lease()
	stray := shardCells(2, 2, cells) // the other shard's indices
	if _, err := m.Complete(w.ID, fleet.CompleteRequest{
		Run: a.Run, Lease: a.Lease, Shard: a.Shard,
		Header: header, Cells: stray,
	}); err == nil || !strings.Contains(err.Error(), "outside shard") {
		t.Fatalf("stray cells accepted (err %v)", err)
	}

	a = lease()
	resp, err := m.Complete(w.ID, fleet.CompleteRequest{
		Run: a.Run, Lease: a.Lease, Shard: a.Shard,
		Header: header, Cells: shardCells(a.Shard, 2, cells),
	})
	if err != nil || !resp.Accepted {
		t.Fatalf("honest completion = %+v, %v", resp, err)
	}
}

// TestCompletionForEndedRun pins that a completion racing the run's end is
// a polite no (not an error): the worker just moves on.
func TestCompletionForEndedRun(t *testing.T) {
	clk := newFakeClock()
	m := fleet.NewManager(fleet.Config{Clock: clk.Now})
	w := m.Join("late", nil)
	run, header, cells := startTestRun(t, m, []int{1}, 3)
	a, err := m.Lease(w.ID)
	if err != nil || a == nil {
		t.Fatalf("lease = %v, %v", a, err)
	}
	run.End()
	resp, err := m.Complete(w.ID, fleet.CompleteRequest{
		Run: a.Run, Lease: a.Lease, Shard: a.Shard,
		Header: header, Cells: shardCells(a.Shard, 2, cells),
	})
	if err != nil || resp.Accepted {
		t.Fatalf("completion for ended run = %+v, %v", resp, err)
	}
	if !strings.Contains(resp.Reason, "ended") {
		t.Fatalf("reason = %q", resp.Reason)
	}
}
