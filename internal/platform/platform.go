// Package platform describes the execution platforms of the paper's case
// studies: homogeneous clusters (section III), multi-clusters (section IV),
// and the heterogeneous four-cluster platform of Figure 7 (section V).
//
// A platform is a set of clusters; each cluster has hosts with a compute
// speed (flop/s), per-host network links, and an internal switch. Clusters
// are joined by a single backbone. The communication time between two hosts
// follows the usual latency + size/bandwidth model over the route between
// them, which is what makes the Figure 8 vs Figure 9 experiment work: the
// anomaly the paper found came from a backbone whose latency equaled the
// intra-cluster latency.
package platform

import (
	"fmt"
	"math"
)

// Host is one processor of a cluster.
type Host struct {
	Cluster int     // cluster ID
	Index   int     // index within the cluster
	Global  int     // global host number across the platform
	Speed   float64 // flop/s
}

// Cluster groups hosts behind a switch.
type Cluster struct {
	ID    int
	Name  string
	Hosts []Host
	// LinkLatency/LinkBandwidth describe each host's private link to the
	// cluster switch (seconds, bytes/s).
	LinkLatency   float64
	LinkBandwidth float64
}

// Platform is a multi-cluster system joined by one backbone.
type Platform struct {
	Clusters []*Cluster
	// Backbone link between cluster switches.
	BackboneLatency   float64
	BackboneBandwidth float64

	hosts []Host // flattened, by global number
}

// Builder-style construction ----------------------------------------------

// New creates an empty platform with the given backbone characteristics.
func New(backboneLatency, backboneBandwidth float64) *Platform {
	return &Platform{BackboneLatency: backboneLatency, BackboneBandwidth: backboneBandwidth}
}

// AddCluster appends a cluster of n hosts of the given speed and link
// characteristics, returning it.
func (p *Platform) AddCluster(name string, n int, speed, linkLat, linkBW float64) *Cluster {
	c := &Cluster{
		ID: len(p.Clusters), Name: name,
		LinkLatency: linkLat, LinkBandwidth: linkBW,
	}
	for i := 0; i < n; i++ {
		h := Host{Cluster: c.ID, Index: i, Global: len(p.hosts), Speed: speed}
		c.Hosts = append(c.Hosts, h)
		p.hosts = append(p.hosts, h)
	}
	p.Clusters = append(p.Clusters, c)
	return c
}

// Homogeneous builds a single-cluster platform of n hosts (the paper's
// section III/IV setting). Speed is per host in flop/s.
func Homogeneous(n int, speed float64) *Platform {
	p := New(1e-4, 1.25e9)
	p.AddCluster("cluster", n, speed, 5e-5, 1.25e9) // ~GigE with 50us links
	return p
}

// Figure7 builds the heterogeneous platform of the paper's Figure 7: two
// fast 2-host clusters (3.3 Gflop/s) and two slow 4-host clusters
// (1.65 Gflop/s), 12 processors in total, numbered so that the fast
// clusters hold processors 0-1 and 6-7 as in Figures 8/9. backboneLatency
// distinguishes the flawed platform description (equal to the intra-cluster
// link latency) from the realistic one (much higher).
func Figure7(backboneLatency float64) *Platform {
	const (
		slow    = 1.65e9
		fast    = 3.3e9
		linkLat = 1e-4
		linkBW  = 1.25e8 // 1 Gb/s
	)
	p := New(backboneLatency, linkBW)
	p.AddCluster("fast-0", 2, fast, linkLat, linkBW) // procs 0-1
	p.AddCluster("slow-0", 4, slow, linkLat, linkBW) // procs 2-5
	p.AddCluster("fast-1", 2, fast, linkLat, linkBW) // procs 6-7
	p.AddCluster("slow-1", 4, slow, linkLat, linkBW) // procs 8-11
	return p
}

// Figure7FlawedLatency is the backbone latency of the platform description
// that produced the Figure 8 anomaly: identical to the intra-cluster link
// latency.
const Figure7FlawedLatency = 1e-4

// Figure7RealisticLatency is the corrected backbone latency used for
// Figure 9 ("in reality the inter-cluster latency is usually much higher").
const Figure7RealisticLatency = 1.0

// Accessors ----------------------------------------------------------------

// NumHosts returns the platform size.
func (p *Platform) NumHosts() int { return len(p.hosts) }

// Host returns the host with the given global number.
func (p *Platform) Host(global int) (Host, error) {
	if global < 0 || global >= len(p.hosts) {
		return Host{}, fmt.Errorf("platform: host %d out of range [0,%d)", global, len(p.hosts))
	}
	return p.hosts[global], nil
}

// Hosts returns all hosts in global order.
func (p *Platform) Hosts() []Host { return p.hosts }

// Cluster returns the cluster with the given ID.
func (p *Platform) Cluster(id int) (*Cluster, error) {
	if id < 0 || id >= len(p.Clusters) {
		return nil, fmt.Errorf("platform: cluster %d out of range", id)
	}
	return p.Clusters[id], nil
}

// MeanSpeed returns the average host speed, used by HEFT's rank computation.
func (p *Platform) MeanSpeed() float64 {
	if len(p.hosts) == 0 {
		return 0
	}
	var sum float64
	for _, h := range p.hosts {
		sum += h.Speed
	}
	return sum / float64(len(p.hosts))
}

// Communication model -------------------------------------------------------

// CommTime returns the time to move `bytes` from host a to host b (global
// numbers). Same host: free. Same cluster: through the switch over both
// host links. Different clusters: host link + backbone + host link, with the
// bottleneck bandwidth.
func (p *Platform) CommTime(a, b int, bytes float64) (float64, error) {
	if bytes < 0 {
		return 0, fmt.Errorf("platform: negative transfer size %g", bytes)
	}
	ha, err := p.Host(a)
	if err != nil {
		return 0, err
	}
	hb, err := p.Host(b)
	if err != nil {
		return 0, err
	}
	if a == b {
		return 0, nil
	}
	ca := p.Clusters[ha.Cluster]
	cb := p.Clusters[hb.Cluster]
	if ha.Cluster == hb.Cluster {
		lat := 2 * ca.LinkLatency
		bw := ca.LinkBandwidth
		return lat + bytes/bw, nil
	}
	lat := ca.LinkLatency + p.BackboneLatency + cb.LinkLatency
	bw := math.Min(math.Min(ca.LinkBandwidth, cb.LinkBandwidth), p.BackboneBandwidth)
	return lat + bytes/bw, nil
}

// MeanCommTime returns the platform-average communication time for a
// transfer of the given size between two distinct random hosts; HEFT uses it
// for rank computation. It averages latency and bandwidth over all
// ordered host pairs on different or same clusters, weighted uniformly.
func (p *Platform) MeanCommTime(bytes float64) float64 {
	n := len(p.hosts)
	if n < 2 {
		return 0
	}
	var sum float64
	var pairs int
	for a := 0; a < n; a++ {
		for b := 0; b < n; b++ {
			if a == b {
				continue
			}
			t, err := p.CommTime(a, b, bytes)
			if err != nil {
				continue
			}
			sum += t
			pairs++
		}
	}
	if pairs == 0 {
		return 0
	}
	return sum / float64(pairs)
}

// GlobalOf maps (cluster, index) to the global host number.
func (p *Platform) GlobalOf(cluster, index int) (int, error) {
	c, err := p.Cluster(cluster)
	if err != nil {
		return 0, err
	}
	if index < 0 || index >= len(c.Hosts) {
		return 0, fmt.Errorf("platform: host %d out of range in cluster %d", index, cluster)
	}
	return c.Hosts[index].Global, nil
}

// Validate checks internal consistency.
func (p *Platform) Validate() error {
	if len(p.Clusters) == 0 {
		return fmt.Errorf("platform: no clusters")
	}
	global := 0
	for id, c := range p.Clusters {
		if c.ID != id {
			return fmt.Errorf("platform: cluster %d stored at index %d", c.ID, id)
		}
		if len(c.Hosts) == 0 {
			return fmt.Errorf("platform: cluster %d has no hosts", id)
		}
		if c.LinkBandwidth <= 0 || c.LinkLatency < 0 {
			return fmt.Errorf("platform: cluster %d has invalid link parameters", id)
		}
		for i, h := range c.Hosts {
			if h.Speed <= 0 {
				return fmt.Errorf("platform: host %d.%d has non-positive speed", id, i)
			}
			if h.Global != global || h.Cluster != id || h.Index != i {
				return fmt.Errorf("platform: host numbering broken at %d.%d", id, i)
			}
			global++
		}
	}
	if p.BackboneBandwidth <= 0 || p.BackboneLatency < 0 {
		return fmt.Errorf("platform: invalid backbone parameters")
	}
	return nil
}
