package platform

import (
	"math"
	"testing"
)

func TestHomogeneous(t *testing.T) {
	p := Homogeneous(32, 1e9)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if p.NumHosts() != 32 || len(p.Clusters) != 1 {
		t.Fatalf("hosts=%d clusters=%d", p.NumHosts(), len(p.Clusters))
	}
	for _, h := range p.Hosts() {
		if h.Speed != 1e9 {
			t.Fatal("speed wrong")
		}
	}
	if p.MeanSpeed() != 1e9 {
		t.Fatal("mean speed wrong")
	}
}

func TestFigure7Structure(t *testing.T) {
	p := Figure7(Figure7FlawedLatency)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if p.NumHosts() != 12 {
		t.Fatalf("hosts = %d, want 12", p.NumHosts())
	}
	if len(p.Clusters) != 4 {
		t.Fatalf("clusters = %d, want 4", len(p.Clusters))
	}
	// Paper numbering: fast clusters hold processors 0-1 and 6-7.
	for _, g := range []int{0, 1, 6, 7} {
		h, err := p.Host(g)
		if err != nil || h.Speed != 3.3e9 {
			t.Errorf("host %d speed = %g, want 3.3e9", g, h.Speed)
		}
	}
	for _, g := range []int{2, 3, 4, 5, 8, 9, 10, 11} {
		h, err := p.Host(g)
		if err != nil || h.Speed != 1.65e9 {
			t.Errorf("host %d speed = %g, want 1.65e9", g, h.Speed)
		}
	}
	// Fast hosts run twice as fast as slow hosts.
	f, _ := p.Host(0)
	s, _ := p.Host(2)
	if f.Speed != 2*s.Speed {
		t.Error("fast/slow speed ratio wrong")
	}
}

func TestCommTime(t *testing.T) {
	p := Figure7(Figure7FlawedLatency)
	// Same host: free.
	if ct, err := p.CommTime(0, 0, 1e6); err != nil || ct != 0 {
		t.Fatalf("same-host comm = %g, %v", ct, err)
	}
	// Same cluster: 2 link latencies + bytes/bw.
	intra, err := p.CommTime(0, 1, 1e6)
	if err != nil {
		t.Fatal(err)
	}
	want := 2*1e-4 + 1e6/1.25e8
	if math.Abs(intra-want) > 1e-12 {
		t.Fatalf("intra comm = %g, want %g", intra, want)
	}
	// Inter-cluster with flawed latency: nearly identical to intra.
	interFlawed, _ := p.CommTime(0, 2, 1e6)
	if interFlawed/intra > 1.1 {
		t.Fatalf("flawed platform should hide the backbone: inter %g vs intra %g", interFlawed, intra)
	}
	// Realistic backbone: inter-cluster much more expensive.
	pr := Figure7(Figure7RealisticLatency)
	interReal, _ := pr.CommTime(0, 2, 1e6)
	if interReal < 5*intra {
		t.Fatalf("realistic backbone not visible: inter %g vs intra %g", interReal, intra)
	}
	// Intra-cluster costs are unchanged by the backbone fix.
	intraReal, _ := pr.CommTime(0, 1, 1e6)
	if intraReal != intra {
		t.Fatal("backbone change leaked into intra-cluster costs")
	}
	// Errors.
	if _, err := p.CommTime(-1, 0, 1); err == nil {
		t.Error("negative host accepted")
	}
	if _, err := p.CommTime(0, 99, 1); err == nil {
		t.Error("out-of-range host accepted")
	}
	if _, err := p.CommTime(0, 1, -2); err == nil {
		t.Error("negative size accepted")
	}
}

func TestMeanCommTime(t *testing.T) {
	flawed := Figure7(Figure7FlawedLatency)
	real := Figure7(Figure7RealisticLatency)
	mf := flawed.MeanCommTime(1e6)
	mr := real.MeanCommTime(1e6)
	if mr <= mf {
		t.Fatalf("realistic mean comm %g should exceed flawed %g", mr, mf)
	}
	single := Homogeneous(1, 1e9)
	if single.MeanCommTime(1e6) != 0 {
		t.Error("single-host mean comm should be 0")
	}
}

func TestGlobalOf(t *testing.T) {
	p := Figure7(Figure7FlawedLatency)
	g, err := p.GlobalOf(1, 2) // cluster 1 = slow-0 (procs 2-5), index 2 -> global 4
	if err != nil || g != 4 {
		t.Fatalf("GlobalOf(1,2) = %d, %v", g, err)
	}
	if _, err := p.GlobalOf(9, 0); err == nil {
		t.Error("bad cluster accepted")
	}
	if _, err := p.GlobalOf(0, 9); err == nil {
		t.Error("bad index accepted")
	}
	// Round-trip through Host.
	h, err := p.Host(g)
	if err != nil || h.Cluster != 1 || h.Index != 2 {
		t.Fatalf("Host(%d) = %+v", g, h)
	}
}

func TestValidateErrors(t *testing.T) {
	if err := New(1e-4, 1e9).Validate(); err == nil {
		t.Error("empty platform accepted")
	}
	p := New(1e-4, 1e9)
	p.AddCluster("c", 2, 0, 1e-4, 1e9) // zero speed
	if err := p.Validate(); err == nil {
		t.Error("zero-speed host accepted")
	}
	p2 := New(-1, 1e9)
	p2.AddCluster("c", 2, 1e9, 1e-4, 1e9)
	if err := p2.Validate(); err == nil {
		t.Error("negative backbone latency accepted")
	}
	p3 := New(1e-4, 1e9)
	p3.AddCluster("c", 2, 1e9, 1e-4, 0)
	if err := p3.Validate(); err == nil {
		t.Error("zero link bandwidth accepted")
	}
}

func TestHostErrors(t *testing.T) {
	p := Homogeneous(4, 1e9)
	if _, err := p.Host(-1); err == nil {
		t.Error("negative host accepted")
	}
	if _, err := p.Host(4); err == nil {
		t.Error("out-of-range host accepted")
	}
	if _, err := p.Cluster(2); err == nil {
		t.Error("bad cluster accepted")
	}
}
