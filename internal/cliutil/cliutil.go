// Package cliutil holds the small flag-parsing helpers shared by the
// commands under cmd/.
package cliutil

import "strings"

// SplitList parses a comma-separated flag value, trimming whitespace and
// dropping empty elements.
func SplitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}
