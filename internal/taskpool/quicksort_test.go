package taskpool

import (
	"testing"
)

func TestQuicksortItemsErrors(t *testing.T) {
	bad := []QuicksortConfig{
		{N: 0, Threshold: 1, PartitionCost: 1, LeafFactor: 1},
		{N: 10, Threshold: 0, PartitionCost: 1, LeafFactor: 1},
		{N: 10, Threshold: 1, PartitionCost: 0, LeafFactor: 1},
		{N: 10, Threshold: 1, PartitionCost: 1, LeafFactor: 0},
	}
	for i, cfg := range bad {
		if _, err := QuicksortItems(cfg); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestPivotModelString(t *testing.T) {
	if RandomPivot.String() != "random" || MiddleInverse.String() != "middle-inverse" {
		t.Fatal("pivot strings")
	}
	if PivotModel(9).String() != "pivot(?)" {
		t.Fatal("unknown pivot")
	}
}

func TestQuicksortTaskTreeComplete(t *testing.T) {
	// Small instance: the executed leaf sizes must sum to N.
	cfg := QuicksortConfig{
		N: 100_000, Threshold: 10_000, Pivot: MiddleInverse,
		PartitionCost: 1e-9, SwapFactor: 2, LeafFactor: 1e-9,
	}
	res, err := RunQuicksort(Config{Workers: 4}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Executed < 3 {
		t.Fatalf("executed = %d", res.Executed)
	}
	// Perfect halving: 1+2+4+8 internal partitions plus 16 leaves = 31.
	if res.Executed != 31 {
		t.Fatalf("executed = %d, want 31 for perfect halving", res.Executed)
	}
}

// TestFigure11 reproduces the paper's Figure 11 observations for quicksort
// on 10M random integers with 32 processors: a serial warm-up while the
// initial partitions run, full parallelism later, and intermittent
// low-utilization windows.
func TestFigure11(t *testing.T) {
	res, err := RunQuicksort(DefaultConfig(), Figure11Config())
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Schedule.Validate(); err != nil {
		t.Fatal(err)
	}
	prof := res.Profile(400)
	// Serial prefix: the very beginning has one busy processor.
	if prof[0] != 1 {
		t.Fatalf("start busy = %d, want 1", prof[0])
	}
	// Full parallelism is reached at some point.
	max := 0
	for _, b := range prof {
		if b > max {
			max = b
		}
	}
	if max < 28 {
		t.Fatalf("peak parallelism = %d, want near 32", max)
	}
	// "There are still some periods with low utilization with only 2-4
	// processors actually running": at least one low window after start.
	if res.LowUtilizationWindows(5, 400) < 2 {
		t.Fatalf("low-utilization windows = %d, want >= 2", res.LowUtilizationWindows(5, 400))
	}
	// The paper notes >200,000 tasks in some experiments; this instance
	// stays smaller but must still be substantial.
	if res.Executed < 100 {
		t.Fatalf("tasks executed = %d", res.Executed)
	}
}

// TestFigure12 reproduces the paper's Figure 12: inversely sorted input
// with middle pivots. Only one processor is busy for roughly half the
// run, and the NUMA model later opens another low-utilization hole even
// though all splits are perfectly equal.
func TestFigure12(t *testing.T) {
	res, err := RunQuicksort(DefaultConfig(), Figure12Config())
	if err != nil {
		t.Fatal(err)
	}
	oneBusy := res.BusyFractionWithOneWorker(600)
	if oneBusy < 0.3 || oneBusy > 0.65 {
		t.Fatalf("one-processor fraction = %g, want ~0.5 ('almost half the total execution time')", oneBusy)
	}
	// A later hole: some sampled instant in the second half of the run
	// has fewer than half the workers busy.
	prof := res.Profile(600)
	hole := false
	for i := len(prof) * 3 / 5; i < len(prof); i++ {
		if prof[i] > 0 && prof[i] < 16 {
			hole = true
			break
		}
	}
	if !hole {
		t.Fatal("no late low-utilization hole despite NUMA imbalance")
	}
	// The first task dominates: it must be the longest by far.
	root := res.Schedule.Task("qs")
	if root == nil {
		t.Fatal("root task missing")
	}
	if root.Duration() < 0.25*res.Makespan {
		t.Fatalf("root spans %g of %g, want a large fraction", root.Duration(), res.Makespan)
	}
}

func TestFigure12SlowerThanFigure11PerElement(t *testing.T) {
	// The inversely sorted input takes much longer than random input of
	// the same size would ("it takes much longer than for the random
	// input case"): check the root tasks' per-element cost.
	r11, err := RunQuicksort(DefaultConfig(), Figure11Config())
	if err != nil {
		t.Fatal(err)
	}
	r12, err := RunQuicksort(DefaultConfig(), Figure12Config())
	if err != nil {
		t.Fatal(err)
	}
	per11 := r11.Schedule.Task("qs").Duration() / float64(Figure11Config().N)
	per12 := r12.Schedule.Task("qs").Duration() / float64(Figure12Config().N)
	if per12 <= per11 {
		t.Fatalf("per-element root cost: fig12 %g <= fig11 %g", per12, per11)
	}
}

func TestQuicksortDeterministic(t *testing.T) {
	a, err := RunQuicksort(DefaultConfig(), Figure11Config())
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunQuicksort(DefaultConfig(), Figure11Config())
	if err != nil {
		t.Fatal(err)
	}
	if a.Makespan != b.Makespan || a.Executed != b.Executed {
		t.Fatal("simulation not deterministic")
	}
}

func TestManyTasksCapability(t *testing.T) {
	// "Jedule can handle big data sets ... more than 200,000 individual
	// tasks": a deep-threshold run produces a large trace without issue.
	if testing.Short() {
		t.Skip("large trace")
	}
	cfg := Figure11Config()
	cfg.Threshold = 2_000 // many more leaves
	res, err := RunQuicksort(DefaultConfig(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Executed < 5_000 {
		t.Fatalf("executed = %d, want thousands", res.Executed)
	}
	if err := res.Schedule.Validate(); err != nil {
		t.Fatal(err)
	}
}
