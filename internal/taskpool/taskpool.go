// Package taskpool implements the paper's fourth case study (section VI): a
// task-pool runtime for irregular computations whose per-thread execution
// and waiting times are logged for offline analysis in Jedule.
//
// The execution scheme is the one of the paper's Figure 10: a master
// creates initial tasks; then every worker loops { get(); execute() —
// possibly creating new tasks; free(); } until the pool is empty and no
// task is running. The "waiting time covers the time for get() and free()
// calls while the task size covers the time for execution()".
//
// The original study ran on an SGI Altix 4700 (32 dual-core Itanium2
// processors). Here the machine is simulated: workers advance on a
// discrete-event clock, and a NUMA memory model reproduces the two effects
// the paper points at — bandwidth saturation when many memory-bound tasks
// run concurrently, and equal-sized tasks taking different times because of
// remote memory placement.
package taskpool

import (
	"fmt"
	"hash/fnv"
	"math"

	"repro/internal/core"
	"repro/internal/sim"
)

// Item is one task of the pool. Spawn, if non-nil, is called on completion
// and returns the child tasks (the recursive calls of the computation).
type Item struct {
	ID string
	// Cost is the pure compute time in seconds, before NUMA effects.
	Cost float64
	// MemBound marks tasks limited by memory bandwidth (large working
	// sets); only these feel contention and placement penalties.
	MemBound bool
	// Spawn produces the child tasks created by executing this item.
	Spawn func() []Item
}

// PoolKind selects the pool organization.
type PoolKind int

const (
	// Central is one shared LIFO pool ("central data structures").
	Central PoolKind = iota
	// Stealing gives each worker a private LIFO deque; idle workers steal
	// the oldest task from the fullest deque ("distributed data
	// structures ... hidden behind the task pool interface").
	Stealing
)

func (k PoolKind) String() string {
	switch k {
	case Central:
		return "central"
	case Stealing:
		return "stealing"
	default:
		return "pool(?)"
	}
}

// Config parameterizes the simulated run.
type Config struct {
	Workers int
	Pool    PoolKind
	// GetOverhead and FreeOverhead model the pool access costs that make
	// up the waiting time ("a low overhead of the task pool is an
	// important requirement").
	GetOverhead, FreeOverhead float64
	// MemChannels is the number of concurrent memory-bound tasks the
	// machine sustains at full speed; beyond it, memory-bound tasks slow
	// down proportionally. 0 disables contention.
	MemChannels int
	// RemotePenalty is the slowdown factor (>= 0) applied to the fraction
	// RemoteFraction of memory-bound tasks whose data happens to live on
	// a remote NUMA node; the affected tasks are chosen deterministically
	// by task ID hash.
	RemotePenalty  float64
	RemoteFraction float64
	// MinWaitRecorded suppresses waiting intervals shorter than this from
	// the trace (they would be sub-pixel).
	MinWaitRecorded float64
}

// DefaultConfig mirrors the case-study machine: 32 workers, a central pool
// with small access overheads, and the Altix-like NUMA model.
func DefaultConfig() Config {
	return Config{
		Workers: 32, Pool: Central,
		GetOverhead: 20e-6, FreeOverhead: 10e-6,
		MemChannels: 8, RemotePenalty: 0.8, RemoteFraction: 0.25,
		MinWaitRecorded: 1e-3,
	}
}

// Result is the outcome of a simulated run.
type Result struct {
	Schedule *core.Schedule
	Makespan float64
	Executed int     // tasks executed
	BusyTime float64 // total execution time across workers
	WaitTime float64 // total recorded waiting time
}

// Run simulates the task pool executing the initial items.
func Run(cfg Config, initial []Item) (*Result, error) {
	if cfg.Workers < 1 {
		return nil, fmt.Errorf("taskpool: need at least one worker")
	}
	if cfg.MemChannels < 0 || cfg.RemotePenalty < 0 || cfg.RemoteFraction < 0 || cfg.RemoteFraction > 1 {
		return nil, fmt.Errorf("taskpool: invalid NUMA parameters")
	}
	r := &runtime{
		cfg:    cfg,
		eng:    sim.NewEngine(),
		sched:  core.NewSingleCluster("altix", cfg.Workers),
		deques: make([][]Item, cfg.Workers),
		idleAt: make([]float64, cfg.Workers),
		isIdle: make([]bool, cfg.Workers),
	}
	r.sched.SetMeta("pool", cfg.Pool.String())
	r.sched.SetMeta("workers", fmt.Sprintf("%d", cfg.Workers))
	for w := 0; w < cfg.Workers; w++ {
		r.isIdle[w] = true
	}
	// The master thread creates the initial tasks (Figure 10).
	for _, it := range initial {
		r.push(0, it)
	}
	r.dispatch()
	r.eng.Run()
	// Close out trailing waits: workers idle at the end waited from their
	// idle time to the makespan.
	for w := 0; w < cfg.Workers; w++ {
		if r.isIdle[w] && r.makespan-r.idleAt[w] >= cfg.MinWaitRecorded {
			r.recordWait(w, r.idleAt[w], r.makespan)
		}
	}
	res := &Result{
		Schedule: r.sched, Makespan: r.makespan,
		Executed: r.executed, BusyTime: r.busyTime, WaitTime: r.waitTime,
	}
	res.Schedule.SortTasks()
	if err := res.Schedule.Validate(); err != nil {
		return nil, fmt.Errorf("taskpool: internal trace invalid: %w", err)
	}
	return res, nil
}

type runtime struct {
	cfg   Config
	eng   *sim.Engine
	sched *core.Schedule

	deques  [][]Item // deque 0 doubles as the central pool
	idleAt  []float64
	isIdle  []bool
	running int // tasks currently executing
	memBusy int // memory-bound tasks currently executing

	executed int
	busyTime float64
	waitTime float64
	makespan float64
	waitSeq  int
}

// push adds an item to the pool near the given worker.
func (r *runtime) push(worker int, it Item) {
	if r.cfg.Pool == Central {
		r.deques[0] = append(r.deques[0], it)
		return
	}
	r.deques[worker] = append(r.deques[worker], it)
}

// pop removes the next item for the worker, or false.
func (r *runtime) pop(worker int) (Item, bool) {
	if r.cfg.Pool == Central {
		q := r.deques[0]
		if len(q) == 0 {
			return Item{}, false
		}
		it := q[len(q)-1] // LIFO
		r.deques[0] = q[:len(q)-1]
		return it, true
	}
	// Own deque first, LIFO.
	if q := r.deques[worker]; len(q) > 0 {
		it := q[len(q)-1]
		r.deques[worker] = q[:len(q)-1]
		return it, true
	}
	// Steal the oldest task from the fullest deque.
	victim, best := -1, 0
	for w := range r.deques {
		if w != worker && len(r.deques[w]) > best {
			victim, best = w, len(r.deques[w])
		}
	}
	if victim < 0 {
		return Item{}, false
	}
	it := r.deques[victim][0]
	r.deques[victim] = r.deques[victim][1:]
	return it, true
}

// poolEmpty reports whether any deque has work.
func (r *runtime) poolEmpty() bool {
	for _, q := range r.deques {
		if len(q) > 0 {
			return false
		}
	}
	return true
}

// dispatch hands queued work to idle workers at the current time.
func (r *runtime) dispatch() {
	for w := 0; w < r.cfg.Workers; w++ {
		if !r.isIdle[w] {
			continue
		}
		it, ok := r.pop(w)
		if !ok {
			continue
		}
		r.start(w, it)
	}
}

// remote reports whether the item pays the NUMA placement penalty,
// deterministically from its ID.
func (r *runtime) remote(id string) bool {
	if r.cfg.RemotePenalty == 0 || r.cfg.RemoteFraction == 0 {
		return false
	}
	h := fnv.New32a()
	h.Write([]byte(id))
	return float64(h.Sum32()%1000)/1000 < r.cfg.RemoteFraction
}

// start begins executing an item on an idle worker at the current time.
func (r *runtime) start(w int, it Item) {
	now := r.eng.Now()
	if wait := now - r.idleAt[w]; wait >= r.cfg.MinWaitRecorded {
		r.recordWait(w, r.idleAt[w], now)
	}
	r.isIdle[w] = false
	r.running++
	if it.MemBound {
		r.memBusy++
	}
	dur := it.Cost
	if it.MemBound {
		if r.cfg.MemChannels > 0 && r.memBusy > r.cfg.MemChannels {
			dur *= float64(r.memBusy) / float64(r.cfg.MemChannels)
		}
		if r.remote(it.ID) {
			dur *= 1 + r.cfg.RemotePenalty
		}
	}
	execStart := now + r.cfg.GetOverhead
	execEnd := execStart + dur
	r.eng.At(execEnd, func() { r.finish(w, it, execStart) })
}

// finish completes an item: record it, spawn children, pick up more work.
func (r *runtime) finish(w int, it Item, execStart float64) {
	now := r.eng.Now()
	r.sched.Add(it.ID, "computation", execStart, now, w, 1)
	r.executed++
	r.busyTime += now - execStart
	r.running--
	if it.MemBound {
		r.memBusy--
	}
	if now > r.makespan {
		r.makespan = now
	}
	if it.Spawn != nil {
		for _, child := range it.Spawn() {
			r.push(w, child)
		}
	}
	done := now + r.cfg.FreeOverhead
	r.eng.At(done, func() {
		r.isIdle[w] = true
		r.idleAt[w] = r.eng.Now()
		r.dispatch()
	})
}

func (r *runtime) recordWait(w int, from, to float64) {
	r.waitSeq++
	r.sched.Add(fmt.Sprintf("w%d.wait%d", w, r.waitSeq), "waiting", from, to, w, 1)
	r.waitTime += to - from
}

// Utilization returns the busy fraction of the run: busy time over
// workers x makespan.
func (res *Result) Utilization() float64 {
	if res.Makespan <= 0 {
		return 0
	}
	return res.BusyTime / (float64(res.Schedule.TotalHosts()) * res.Makespan)
}

// Computations returns the trace restricted to execution intervals,
// excluding the explicit "waiting" tasks (which must not count as busy).
func (res *Result) Computations() *core.Schedule {
	return res.Schedule.Filter(func(t *core.Task) bool { return t.Type == "computation" })
}

// Profile samples how many workers are executing a task at n+1 evenly
// spaced instants.
func (res *Result) Profile(n int) []int {
	return res.Computations().UtilizationProfile(n)
}

// BusyFractionWithOneWorker returns the fraction of the makespan during
// which exactly one worker executes a task — the quantity behind the
// paper's Figure 12 observation ("only one processor is busy in almost half
// the total execution time"). It samples the run at n points.
func (res *Result) BusyFractionWithOneWorker(n int) float64 {
	prof := res.Profile(n)
	if len(prof) == 0 {
		return 0
	}
	hits := 0
	for _, busy := range prof {
		if busy == 1 {
			hits++
		}
	}
	return float64(hits) / float64(len(prof))
}

// LowUtilizationWindows counts maximal sampled windows in which fewer than
// k workers are busy (but at least one), mirroring the paper's "periods
// with low utilization with only 2-4 processors actually running".
func (res *Result) LowUtilizationWindows(k, samples int) int {
	prof := res.Profile(samples)
	windows := 0
	in := false
	for _, busy := range prof {
		low := busy > 0 && busy < k
		if low && !in {
			windows++
		}
		in = low
	}
	return windows
}

var _ = math.Inf // reserved for future cost models
