package taskpool

import (
	"fmt"
	"math"
	"math/rand"
)

// PivotModel selects how the simulated quicksort splits its input.
type PivotModel int

const (
	// RandomPivot models sorting random data with a random pivot choice:
	// split fractions are drawn from the run's seeded generator, including
	// occasionally terrible ones (the paper's "accidental bad choice of
	// the pivot element").
	RandomPivot PivotModel = iota
	// MiddleInverse models the specially crafted input of Figure 12:
	// inversely sorted numbers with the middle element as pivot, so every
	// partition splits exactly in half but must swap every pair of
	// elements, making the first task extremely expensive.
	MiddleInverse
)

func (m PivotModel) String() string {
	switch m {
	case RandomPivot:
		return "random"
	case MiddleInverse:
		return "middle-inverse"
	default:
		return "pivot(?)"
	}
}

// QuicksortConfig describes a simulated parallel quicksort instance.
type QuicksortConfig struct {
	N         int64 // elements to sort
	Threshold int64 // below this, sort sequentially (leaf task)
	Pivot     PivotModel
	Seed      int64 // randomness for RandomPivot splits
	// PartitionCost is the per-element partition scan cost in seconds.
	PartitionCost float64
	// SwapFactor multiplies the partition cost when the input forces a
	// swap of every pair (MiddleInverse); 1 otherwise.
	SwapFactor float64
	// LeafFactor scales the sequential-sort leaf cost (c·n·log2 n).
	LeafFactor float64
	// MemBoundAbove marks partition tasks over this many elements as
	// memory-bound (subject to the NUMA model).
	MemBoundAbove int64
}

// Figure11Config reproduces the workload of the paper's Figure 11:
// quicksort of 10,000,000 random integers on 32 processors.
func Figure11Config() QuicksortConfig {
	return QuicksortConfig{
		N: 10_000_000, Threshold: 20_000, Pivot: RandomPivot, Seed: 42,
		PartitionCost: 1.2e-9, SwapFactor: 1, LeafFactor: 0.35e-9,
		MemBoundAbove: 1_000_000,
	}
}

// Figure12Config reproduces the workload of the paper's Figure 12:
// quicksort of 200,000,000 inversely sorted integers with middle pivots.
func Figure12Config() QuicksortConfig {
	return QuicksortConfig{
		N: 200_000_000, Threshold: 400_000, Pivot: MiddleInverse, Seed: 1,
		PartitionCost: 1.2e-9, SwapFactor: 2.5, LeafFactor: 0.35e-9,
		MemBoundAbove: 2_000_000,
	}
}

// QuicksortItems builds the initial task (the whole array). Child tasks are
// created on execution, exactly like the recursive calls of the real code.
func QuicksortItems(cfg QuicksortConfig) ([]Item, error) {
	if cfg.N < 1 || cfg.Threshold < 1 {
		return nil, fmt.Errorf("taskpool: quicksort needs N >= 1 and Threshold >= 1")
	}
	if cfg.PartitionCost <= 0 || cfg.LeafFactor <= 0 {
		return nil, fmt.Errorf("taskpool: quicksort needs positive cost factors")
	}
	if cfg.SwapFactor < 1 {
		cfg.SwapFactor = 1
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	return []Item{sortTask(cfg, rng, "qs", cfg.N)}, nil
}

// sortTask builds the task for one (sub-)array of n elements.
func sortTask(cfg QuicksortConfig, rng *rand.Rand, id string, n int64) Item {
	if n <= cfg.Threshold {
		// Leaf: sequential sort, c·n·log2(n).
		cost := cfg.LeafFactor * float64(n) * math.Log2(float64(n)+1)
		return Item{ID: id, Cost: cost, MemBound: false}
	}
	// Partition: one scan over the array, swapping as needed.
	cost := cfg.PartitionCost * float64(n)
	if cfg.Pivot == MiddleInverse {
		cost *= cfg.SwapFactor
	}
	var left, right int64
	switch cfg.Pivot {
	case MiddleInverse:
		left, right = n/2, n-n/2
	default:
		// Random pivot quality: mostly balanced, sometimes terrible.
		f := 0.5
		switch r := rng.Float64(); {
		case r < 0.15:
			f = 0.02 + rng.Float64()*0.08 // bad pivot
		case r < 0.5:
			f = 0.2 + rng.Float64()*0.2
		default:
			f = 0.4 + rng.Float64()*0.2
		}
		left = int64(float64(n) * f)
		if left < 1 {
			left = 1
		}
		if left >= n {
			left = n - 1
		}
		right = n - left
	}
	return Item{
		ID: id, Cost: cost, MemBound: n >= cfg.MemBoundAbove,
		Spawn: func() []Item {
			return []Item{
				sortTask(cfg, rng, id+"l", left),
				sortTask(cfg, rng, id+"r", right),
			}
		},
	}
}

// RunQuicksort simulates the quicksort on the task pool.
func RunQuicksort(pool Config, qs QuicksortConfig) (*Result, error) {
	items, err := QuicksortItems(qs)
	if err != nil {
		return nil, err
	}
	res, err := Run(pool, items)
	if err != nil {
		return nil, err
	}
	res.Schedule.SetMeta("workload", "quicksort")
	res.Schedule.SetMeta("n", fmt.Sprintf("%d", qs.N))
	res.Schedule.SetMeta("pivot", qs.Pivot.String())
	return res, nil
}
