package taskpool

import (
	"strings"
	"testing"
)

func flatItems(n int, cost float64) []Item {
	items := make([]Item, n)
	for i := range items {
		items[i] = Item{ID: "t" + itoa(i), Cost: cost}
	}
	return items
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var b []byte
	for v > 0 {
		b = append([]byte{byte('0' + v%10)}, b...)
		v /= 10
	}
	return string(b)
}

func TestPoolKindString(t *testing.T) {
	if Central.String() != "central" || Stealing.String() != "stealing" {
		t.Fatal("pool strings")
	}
	if PoolKind(7).String() != "pool(?)" {
		t.Fatal("unknown pool string")
	}
}

func TestRunFlatTasks(t *testing.T) {
	cfg := Config{Workers: 4, GetOverhead: 0, FreeOverhead: 0}
	res, err := Run(cfg, flatItems(8, 1.0))
	if err != nil {
		t.Fatal(err)
	}
	if res.Executed != 8 {
		t.Fatalf("executed = %d", res.Executed)
	}
	// 8 unit tasks on 4 workers: two waves, makespan 2.
	if res.Makespan < 1.99 || res.Makespan > 2.01 {
		t.Fatalf("makespan = %g, want ~2", res.Makespan)
	}
	if res.Utilization() < 0.99 {
		t.Fatalf("utilization = %g, want ~1", res.Utilization())
	}
	if err := res.Schedule.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestOverheadsBecomeWaitingTime(t *testing.T) {
	cfg := Config{Workers: 2, GetOverhead: 0.1, FreeOverhead: 0.05, MinWaitRecorded: 0.01}
	res, err := Run(cfg, flatItems(4, 1.0))
	if err != nil {
		t.Fatal(err)
	}
	// Each task takes 1.0 of compute; overheads stretch the makespan.
	if res.Makespan <= 2.0 {
		t.Fatalf("makespan %g should exceed pure compute 2.0", res.Makespan)
	}
	// Execution intervals exclude the get overhead: no task interval may
	// start at its worker's previous end (gap >= free+get).
	if res.BusyTime < 3.99 || res.BusyTime > 4.01 {
		t.Fatalf("busy time = %g, want 4", res.BusyTime)
	}
}

func TestSpawnedChildren(t *testing.T) {
	// A root task spawning 3 children, each spawning 2 leaves: 1+3+6.
	leaf := func(id string) Item { return Item{ID: id, Cost: 0.5} }
	child := func(id string) Item {
		return Item{ID: id, Cost: 1, Spawn: func() []Item {
			return []Item{leaf(id + ".a"), leaf(id + ".b")}
		}}
	}
	root := Item{ID: "root", Cost: 1, Spawn: func() []Item {
		return []Item{child("c1"), child("c2"), child("c3")}
	}}
	res, err := Run(Config{Workers: 4}, []Item{root})
	if err != nil {
		t.Fatal(err)
	}
	if res.Executed != 10 {
		t.Fatalf("executed = %d, want 10", res.Executed)
	}
	// Children cannot start before the root ends.
	rootTask := res.Schedule.Task("root")
	for _, id := range []string{"c1", "c2", "c3"} {
		c := res.Schedule.Task(id)
		if c == nil || c.Start < rootTask.End {
			t.Fatalf("child %s starts before root ends", id)
		}
	}
}

func TestWaitingRecorded(t *testing.T) {
	// 1 long task then nothing: 3 of 4 workers wait the whole run.
	res, err := Run(Config{Workers: 4, MinWaitRecorded: 0.01}, []Item{{ID: "solo", Cost: 2}})
	if err != nil {
		t.Fatal(err)
	}
	waits := 0
	for i := range res.Schedule.Tasks {
		if res.Schedule.Tasks[i].Type == "waiting" {
			waits++
		}
	}
	if waits < 3 {
		t.Fatalf("recorded %d waiting intervals, want >= 3", waits)
	}
	if res.WaitTime < 5.9 {
		t.Fatalf("wait time = %g, want ~6 (3 workers x 2s)", res.WaitTime)
	}
}

func TestCentralVsStealingBothComplete(t *testing.T) {
	mk := func() []Item {
		var items []Item
		for i := 0; i < 40; i++ {
			items = append(items, Item{ID: "t" + itoa(i), Cost: 0.1 * float64(1+i%5)})
		}
		return items
	}
	for _, kind := range []PoolKind{Central, Stealing} {
		res, err := Run(Config{Workers: 8, Pool: kind}, mk())
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		if res.Executed != 40 {
			t.Fatalf("%v executed %d", kind, res.Executed)
		}
		if res.Schedule.MetaValue("pool") != kind.String() {
			t.Fatalf("%v meta missing", kind)
		}
	}
}

func TestStealingBalancesLoad(t *testing.T) {
	// All work spawns from one root: stealing must still use many workers.
	deep := func(id string, depth int) Item {
		it := Item{ID: id, Cost: 0.2}
		if depth > 0 {
			d := depth - 1
			it.Spawn = func() []Item {
				return []Item{
					deepHelper(id+"l", d), deepHelper(id+"r", d),
				}
			}
		}
		return it
	}
	res, err := Run(Config{Workers: 8, Pool: Stealing}, []Item{deep("r", 5)})
	if err != nil {
		t.Fatal(err)
	}
	busyWorkers := 0
	for w := 0; w < 8; w++ {
		if res.Schedule.HostBusyTime(0, w) > 0 {
			busyWorkers++
		}
	}
	if busyWorkers < 4 {
		t.Fatalf("stealing used only %d workers", busyWorkers)
	}
}

func deepHelper(id string, depth int) Item {
	it := Item{ID: id, Cost: 0.2}
	if depth > 0 {
		d := depth - 1
		it.Spawn = func() []Item {
			return []Item{deepHelper(id+"l", d), deepHelper(id+"r", d)}
		}
	}
	return it
}

func TestNUMAContentionSlowsMemBound(t *testing.T) {
	// 8 concurrent memory-bound tasks on 8 workers with 2 channels: each
	// runs 4x slower than alone.
	items := make([]Item, 8)
	for i := range items {
		items[i] = Item{ID: "m" + itoa(i), Cost: 1, MemBound: true}
	}
	contended, err := Run(Config{Workers: 8, MemChannels: 2}, items)
	if err != nil {
		t.Fatal(err)
	}
	free, err := Run(Config{Workers: 8, MemChannels: 0}, items)
	if err != nil {
		t.Fatal(err)
	}
	if contended.Makespan < 2*free.Makespan {
		t.Fatalf("contention had too little effect: %g vs %g", contended.Makespan, free.Makespan)
	}
	// Compute-bound tasks are unaffected.
	cb := make([]Item, 8)
	for i := range cb {
		cb[i] = Item{ID: "c" + itoa(i), Cost: 1}
	}
	cbRes, err := Run(Config{Workers: 8, MemChannels: 2}, cb)
	if err != nil {
		t.Fatal(err)
	}
	if cbRes.Makespan > 1.01 {
		t.Fatalf("compute-bound tasks were throttled: %g", cbRes.Makespan)
	}
}

func TestRemotePenaltyDeterministic(t *testing.T) {
	cfg := Config{Workers: 1, RemotePenalty: 1.0, RemoteFraction: 0.5}
	a, err := Run(cfg, []Item{{ID: "x", Cost: 1, MemBound: true}})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg, []Item{{ID: "x", Cost: 1, MemBound: true}})
	if err != nil {
		t.Fatal(err)
	}
	if a.Makespan != b.Makespan {
		t.Fatal("remote penalty not deterministic")
	}
	// With fraction 1, every mem-bound task pays the penalty.
	all, err := Run(Config{Workers: 1, RemotePenalty: 1.0, RemoteFraction: 1},
		[]Item{{ID: "x", Cost: 1, MemBound: true}})
	if err != nil {
		t.Fatal(err)
	}
	if all.Makespan < 1.99 {
		t.Fatalf("penalized makespan = %g, want ~2", all.Makespan)
	}
}

func TestRunErrors(t *testing.T) {
	if _, err := Run(Config{Workers: 0}, nil); err == nil {
		t.Error("zero workers accepted")
	}
	if _, err := Run(Config{Workers: 1, RemoteFraction: 2}, nil); err == nil {
		t.Error("bad fraction accepted")
	}
	if _, err := Run(Config{Workers: 1, MemChannels: -1}, nil); err == nil {
		t.Error("negative channels accepted")
	}
}

func TestResultMetrics(t *testing.T) {
	res, err := Run(Config{Workers: 2, MinWaitRecorded: 0.001}, []Item{
		{ID: "a", Cost: 2},
		{ID: "b", Cost: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if f := res.BusyFractionWithOneWorker(100); f < 0.4 || f > 0.6 {
		t.Fatalf("one-busy fraction = %g, want ~0.5", f)
	}
	if w := res.LowUtilizationWindows(2, 100); w != 1 {
		t.Fatalf("low windows = %d, want 1", w)
	}
	empty := &Result{Schedule: res.Schedule}
	if empty.Utilization() != 0 {
		t.Fatal("zero-makespan utilization")
	}
}

func TestTraceTypes(t *testing.T) {
	res, err := Run(Config{Workers: 2, MinWaitRecorded: 0.001}, []Item{{ID: "only", Cost: 1}})
	if err != nil {
		t.Fatal(err)
	}
	types := strings.Join(res.Schedule.TaskTypes(), ",")
	if !strings.Contains(types, "computation") || !strings.Contains(types, "waiting") {
		t.Fatalf("types = %s", types)
	}
}
