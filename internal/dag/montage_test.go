package dag

import (
	"bytes"
	"strings"
	"testing"
)

func TestMontageStructure(t *testing.T) {
	g := Montage(12)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// The case study uses a 50-node instance.
	if g.Len() != 50 {
		t.Fatalf("Montage(12) has %d nodes, want 50", g.Len())
	}
	counts := g.TypeCounts()
	want := map[string]int{
		"mProjectPP": 12, "mDiffFit": 20, "mConcatFit": 1, "mBgModel": 1,
		"mBackground": 12, "mImgtbl": 1, "mAdd": 1, "mShrink": 1, "mJPEG": 1,
	}
	for typ, n := range want {
		if counts[typ] != n {
			t.Errorf("%s count = %d, want %d", typ, counts[typ], n)
		}
	}
	// Pipeline order: every mDiffFit depends only on mProjectPP, the sink
	// chain ends with mJPEG.
	sinks := g.Sinks()
	if len(sinks) != 1 || sinks[0].Type != "mJPEG" {
		t.Fatalf("sink = %+v", sinks)
	}
	sources := g.Sources()
	for _, s := range sources {
		if s.Type != "mProjectPP" {
			t.Fatalf("source %s has type %s", s.Name, s.Type)
		}
	}
	// mBackground consumes both mBgModel and its own mProjectPP output.
	for _, n := range g.Nodes() {
		if n.Type != "mBackground" {
			continue
		}
		var types []string
		for _, e := range n.Preds() {
			types = append(types, e.From.Type)
		}
		joined := strings.Join(types, ",")
		if !strings.Contains(joined, "mBgModel") || !strings.Contains(joined, "mProjectPP") {
			t.Fatalf("mBackground preds = %v", types)
		}
	}
	// Synchronization bottleneck: mBgModel has a single predecessor chain
	// through mConcatFit which joins all mDiffFit outputs.
	concat := findByType(g, "mConcatFit")
	if len(concat.Preds()) != 20 {
		t.Fatalf("mConcatFit joins %d diffs, want 20", len(concat.Preds()))
	}
}

func findByType(g *Graph, typ string) *Node {
	for _, n := range g.Nodes() {
		if n.Type == typ {
			return n
		}
	}
	return nil
}

func TestMontageMinimumSize(t *testing.T) {
	g := Montage(1) // clamps to 2 images
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.TypeCounts()["mProjectPP"] != 2 {
		t.Fatal("clamp to 2 images failed")
	}
}

func TestMontageStages(t *testing.T) {
	stages := MontageStages()
	if len(stages) != 9 || stages[0] != "mProjectPP" || stages[8] != "mJPEG" {
		t.Fatalf("stages = %v", stages)
	}
}

func TestWriteDOT(t *testing.T) {
	g := Montage(4)
	var buf bytes.Buffer
	if err := g.WriteDOT(&buf); err != nil {
		t.Fatal(err)
	}
	dot := buf.String()
	if !strings.HasPrefix(dot, "digraph") || !strings.HasSuffix(strings.TrimSpace(dot), "}") {
		t.Fatal("not a DOT document")
	}
	if strings.Count(dot, "->") != len(g.Edges()) {
		t.Fatalf("edge count mismatch: %d vs %d", strings.Count(dot, "->"), len(g.Edges()))
	}
	// Same-type nodes share a fillcolor, different types differ.
	colorOf := map[string]string{}
	for _, line := range strings.Split(dot, "\n") {
		if !strings.Contains(line, "fillcolor=") {
			continue
		}
		name := line[strings.Index(line, `label="`)+7:]
		name = name[:strings.Index(name, `"`)]
		color := line[strings.Index(line, `fillcolor="`)+11:]
		color = color[:strings.Index(color, `"`)]
		typ := strings.SplitN(name, "_", 2)[0]
		if prev, ok := colorOf[typ]; ok && prev != color {
			t.Fatalf("type %s has two colors", typ)
		}
		colorOf[typ] = color
	}
	if colorOf["mProjectPP"] == colorOf["mDiffFit"] {
		t.Fatal("distinct types share a color")
	}
}
