// Package dag models the task graphs scheduled in the paper's case studies:
// directed acyclic graphs of moldable tasks (paper section III-A). A
// moldable task can run on a varying number of processors; its execution
// time T(v, p) follows an Amdahl-style cost model. Edges carry the amount of
// data communicated between tasks.
//
// The package provides graph analyses used by the CPA/MCPA and HEFT
// schedulers (topological order, precedence levels, critical path, top and
// bottom levels) plus the generators behind the experiments: the shaped
// random DAGs of section III ("long, wide, serial, etc."), the
// imbalanced-layer DAG of Figure 4, and the Montage workflow of Figure 6.
package dag

import (
	"fmt"
	"sort"
)

// Node is one moldable task of the graph.
type Node struct {
	ID   int
	Name string
	// Type groups nodes for coloring and analysis (Montage stage names,
	// or "computation" for generic DAGs).
	Type string
	// Work is the total computation of the task in flop.
	Work float64
	// SerialFraction is the Amdahl non-parallelizable fraction in [0, 1].
	SerialFraction float64

	preds, succs []*Edge
}

// Edge is a data dependency: To may start only after From completes and
// Bytes of data have been transferred.
type Edge struct {
	From, To *Node
	Bytes    float64
}

// Graph is a DAG of moldable tasks.
type Graph struct {
	Name  string
	nodes []*Node
	edges []*Edge
}

// New creates an empty graph.
func New(name string) *Graph { return &Graph{Name: name} }

// AddNode appends a task and returns it. IDs are assigned sequentially.
func (g *Graph) AddNode(name, typ string, work, serialFraction float64) *Node {
	n := &Node{
		ID: len(g.nodes), Name: name, Type: typ,
		Work: work, SerialFraction: serialFraction,
	}
	g.nodes = append(g.nodes, n)
	return n
}

// AddEdge connects from -> to carrying bytes of data.
func (g *Graph) AddEdge(from, to *Node, bytes float64) *Edge {
	e := &Edge{From: from, To: to, Bytes: bytes}
	g.edges = append(g.edges, e)
	from.succs = append(from.succs, e)
	to.preds = append(to.preds, e)
	return e
}

// Nodes returns the nodes in insertion (ID) order.
func (g *Graph) Nodes() []*Node { return g.nodes }

// Edges returns all edges.
func (g *Graph) Edges() []*Edge { return g.edges }

// Len returns the node count.
func (g *Graph) Len() int { return len(g.nodes) }

// Preds returns the incoming edges of n.
func (n *Node) Preds() []*Edge { return n.preds }

// Succs returns the outgoing edges of n.
func (n *Node) Succs() []*Edge { return n.succs }

// Time evaluates the moldable cost model: the execution time of the task on
// p processors of the given speed (flop/s), following Amdahl's law:
//
//	T(v, p) = Work/speed * (alpha + (1-alpha)/p)
//
// p < 1 is treated as 1.
func (n *Node) Time(p int, speed float64) float64 {
	if p < 1 {
		p = 1
	}
	if speed <= 0 {
		return 0
	}
	seq := n.SerialFraction
	return n.Work / speed * (seq + (1-seq)/float64(p))
}

// Validate checks that the graph is acyclic and internally consistent.
func (g *Graph) Validate() error {
	if _, err := g.TopoOrder(); err != nil {
		return err
	}
	for _, e := range g.edges {
		if e.From == e.To {
			return fmt.Errorf("dag %q: self-loop on node %d", g.Name, e.From.ID)
		}
		if e.Bytes < 0 {
			return fmt.Errorf("dag %q: negative edge data %g on %d->%d",
				g.Name, e.Bytes, e.From.ID, e.To.ID)
		}
	}
	for _, n := range g.nodes {
		if n.Work < 0 {
			return fmt.Errorf("dag %q: node %d has negative work", g.Name, n.ID)
		}
		if n.SerialFraction < 0 || n.SerialFraction > 1 {
			return fmt.Errorf("dag %q: node %d serial fraction %g outside [0,1]",
				g.Name, n.ID, n.SerialFraction)
		}
	}
	return nil
}

// TopoOrder returns the nodes in a topological order, or an error if the
// graph has a cycle.
func (g *Graph) TopoOrder() ([]*Node, error) {
	indeg := make([]int, len(g.nodes))
	for _, n := range g.nodes {
		indeg[n.ID] = len(n.preds)
	}
	queue := make([]*Node, 0, len(g.nodes))
	for _, n := range g.nodes {
		if indeg[n.ID] == 0 {
			queue = append(queue, n)
		}
	}
	var out []*Node
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		out = append(out, n)
		for _, e := range n.succs {
			indeg[e.To.ID]--
			if indeg[e.To.ID] == 0 {
				queue = append(queue, e.To)
			}
		}
	}
	if len(out) != len(g.nodes) {
		return nil, fmt.Errorf("dag %q: cycle detected (%d of %d nodes ordered)",
			g.Name, len(out), len(g.nodes))
	}
	return out, nil
}

// Levels assigns each node its precedence level: 0 for entry nodes, and
// 1 + max(level of predecessors) otherwise. MCPA constrains per-level
// allocations with this notion (paper section III-B).
func (g *Graph) Levels() ([]int, error) {
	order, err := g.TopoOrder()
	if err != nil {
		return nil, err
	}
	levels := make([]int, len(g.nodes))
	for _, n := range order {
		for _, e := range n.preds {
			if levels[e.From.ID]+1 > levels[n.ID] {
				levels[n.ID] = levels[e.From.ID] + 1
			}
		}
	}
	return levels, nil
}

// LevelSets groups node IDs by precedence level.
func (g *Graph) LevelSets() ([][]int, error) {
	levels, err := g.Levels()
	if err != nil {
		return nil, err
	}
	maxL := 0
	for _, l := range levels {
		if l > maxL {
			maxL = l
		}
	}
	sets := make([][]int, maxL+1)
	for id, l := range levels {
		sets[l] = append(sets[l], id)
	}
	return sets, nil
}

// CriticalPath returns the length of the longest path through the graph
// (sum of node execution times, communication excluded as in CPA's T_CP)
// under the given per-node time function, together with the node IDs on one
// such path in execution order.
func (g *Graph) CriticalPath(timeOf func(*Node) float64) (float64, []int, error) {
	order, err := g.TopoOrder()
	if err != nil {
		return 0, nil, err
	}
	dist := make([]float64, len(g.nodes)) // finish of longest path ending at node
	prev := make([]int, len(g.nodes))
	for i := range prev {
		prev[i] = -1
	}
	for _, n := range order {
		start := 0.0
		for _, e := range n.preds {
			if dist[e.From.ID] > start {
				start = dist[e.From.ID]
				prev[n.ID] = e.From.ID
			}
		}
		dist[n.ID] = start + timeOf(n)
	}
	best := -1
	for id, d := range dist {
		if best < 0 || d > dist[best] {
			best = id
		}
	}
	if best < 0 {
		return 0, nil, nil
	}
	var path []int
	for id := best; id >= 0; id = prev[id] {
		path = append(path, id)
	}
	// reverse
	for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
		path[i], path[j] = path[j], path[i]
	}
	return dist[best], path, nil
}

// TotalWork sums the work of all nodes.
func (g *Graph) TotalWork() float64 {
	var w float64
	for _, n := range g.nodes {
		w += n.Work
	}
	return w
}

// Sources returns the entry nodes (no predecessors).
func (g *Graph) Sources() []*Node {
	var out []*Node
	for _, n := range g.nodes {
		if len(n.preds) == 0 {
			out = append(out, n)
		}
	}
	return out
}

// Sinks returns the exit nodes (no successors).
func (g *Graph) Sinks() []*Node {
	var out []*Node
	for _, n := range g.nodes {
		if len(n.succs) == 0 {
			out = append(out, n)
		}
	}
	return out
}

// TypeCounts tallies nodes per type, useful for workflow structure checks.
func (g *Graph) TypeCounts() map[string]int {
	out := map[string]int{}
	for _, n := range g.nodes {
		out[n.Type]++
	}
	return out
}

// Clone returns a deep copy of the graph.
func (g *Graph) Clone() *Graph {
	out := New(g.Name)
	for _, n := range g.nodes {
		out.AddNode(n.Name, n.Type, n.Work, n.SerialFraction)
	}
	for _, e := range g.edges {
		out.AddEdge(out.nodes[e.From.ID], out.nodes[e.To.ID], e.Bytes)
	}
	return out
}

// Stats summarizes the graph shape.
func (g *Graph) Stats() string {
	sets, err := g.LevelSets()
	if err != nil {
		return fmt.Sprintf("dag %q: %v", g.Name, err)
	}
	widths := make([]int, len(sets))
	for i, s := range sets {
		widths[i] = len(s)
	}
	maxW := 0
	for _, w := range widths {
		if w > maxW {
			maxW = w
		}
	}
	return fmt.Sprintf("dag %q: %d nodes, %d edges, %d levels, max width %d",
		g.Name, len(g.nodes), len(g.edges), len(sets), maxW)
}

// NodesByID returns nodes sorted by ID (a fresh slice).
func (g *Graph) NodesByID() []*Node {
	out := append([]*Node(nil), g.nodes...)
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}
