package dag

import (
	"fmt"
	"io"
	"sort"
)

// Montage builds an instance of the Montage astronomy workflow (paper
// Figure 6, case study V) with the published stage structure:
//
//	mProjectPP (one per input image)      reproject input images
//	  -> mDiffFit (one per overlap pair)  fit plane differences
//	    -> mConcatFit (1)                 concatenate the fits
//	      -> mBgModel (1)                 model the background
//	        -> mBackground (one per image) correct each image
//	          -> mImgtbl (1)              build the image table
//	            -> mAdd (1)               co-add into the mosaic
//	              -> mShrink (1)          shrink the mosaic
//	                -> mJPEG (1)          render a preview
//
// Every mBackground also consumes the corresponding mProjectPP output.
// With images = 12 the instance has exactly 50 compute nodes, matching the
// 50-node instance of the case study.
func Montage(images int) *Graph {
	if images < 2 {
		images = 2
	}
	g := New(fmt.Sprintf("montage-%d", images))
	// Stage costs (flop) and data sizes (bytes), scaled so the 12-image
	// instance runs on the order of tens of seconds on the Figure 7 platform,
	// keeping computation and communication costs comparable as in the
	// original case study.
	const (
		projWork   = 4.0e9
		diffWork   = 1.2e9
		concatWork = 6.0e8
		bgmWork    = 3.0e9
		backWork   = 2.4e9
		imgtblWork = 6.0e8
		addWork    = 6.0e9
		shrinkWork = 1.5e9
		jpegWork   = 8.0e8
		imgBytes   = 4.0e7 // one reprojected image
		fitBytes   = 1.0e5 // a plane fit
	)
	proj := make([]*Node, images)
	for i := range proj {
		proj[i] = g.AddNode(fmt.Sprintf("mProjectPP_%d", i), "mProjectPP", projWork, 0.9)
	}
	// Overlap pairs: neighbours (i, i+1) and (i, i+2) minus the tail,
	// giving 2*images - 4 mDiffFit nodes (20 for images = 12).
	var diffs []*Node
	addDiff := func(a, b int) {
		d := g.AddNode(fmt.Sprintf("mDiffFit_%d_%d", a, b), "mDiffFit", diffWork, 0.9)
		g.AddEdge(proj[a], d, imgBytes)
		g.AddEdge(proj[b], d, imgBytes)
		diffs = append(diffs, d)
	}
	for i := 0; i+1 < images; i++ {
		addDiff(i, i+1)
	}
	for i := 0; i+2 < images && len(diffs) < 2*images-4; i++ {
		addDiff(i, i+2)
	}
	concat := g.AddNode("mConcatFit", "mConcatFit", concatWork, 1.0)
	for _, d := range diffs {
		g.AddEdge(d, concat, fitBytes)
	}
	bgm := g.AddNode("mBgModel", "mBgModel", bgmWork, 1.0)
	g.AddEdge(concat, bgm, fitBytes)
	back := make([]*Node, images)
	for i := range back {
		back[i] = g.AddNode(fmt.Sprintf("mBackground_%d", i), "mBackground", backWork, 0.9)
		g.AddEdge(bgm, back[i], fitBytes)
		g.AddEdge(proj[i], back[i], imgBytes)
	}
	imgtbl := g.AddNode("mImgtbl", "mImgtbl", imgtblWork, 1.0)
	for _, b := range back {
		g.AddEdge(b, imgtbl, fitBytes)
	}
	madd := g.AddNode("mAdd", "mAdd", addWork, 1.0)
	g.AddEdge(imgtbl, madd, fitBytes)
	for _, b := range back {
		g.AddEdge(b, madd, imgBytes)
	}
	shrink := g.AddNode("mShrink", "mShrink", shrinkWork, 1.0)
	g.AddEdge(madd, shrink, imgBytes)
	jpeg := g.AddNode("mJPEG", "mJPEG", jpegWork, 1.0)
	g.AddEdge(shrink, jpeg, imgBytes)
	return g
}

// MontageStages lists the stage type names in pipeline order.
func MontageStages() []string {
	return []string{"mProjectPP", "mDiffFit", "mConcatFit", "mBgModel",
		"mBackground", "mImgtbl", "mAdd", "mShrink", "mJPEG"}
}

// WriteDOT emits the graph in Graphviz DOT format, the textual equivalent of
// the paper's Figure 6 ("nodes with the same color are of same task type"):
// nodes of the same type share a fillcolor.
func (g *Graph) WriteDOT(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "digraph %q {\n  rankdir=TB;\n  node [style=filled];\n", g.Name); err != nil {
		return err
	}
	// Stable color per type.
	types := make([]string, 0)
	seen := map[string]bool{}
	for _, n := range g.nodes {
		if !seen[n.Type] {
			seen[n.Type] = true
			types = append(types, n.Type)
		}
	}
	sort.Strings(types)
	palette := []string{"lightblue", "salmon", "palegreen", "gold", "plum",
		"lightgray", "orange", "cyan", "wheat", "pink"}
	colorOf := map[string]string{}
	for i, t := range types {
		colorOf[t] = palette[i%len(palette)]
	}
	for _, n := range g.nodes {
		if _, err := fmt.Fprintf(w, "  n%d [label=%q fillcolor=%q];\n",
			n.ID, n.Name, colorOf[n.Type]); err != nil {
			return err
		}
	}
	for _, e := range g.edges {
		if _, err := fmt.Fprintf(w, "  n%d -> n%d;\n", e.From.ID, e.To.ID); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w, "}")
	return err
}
